// Tests for the differential-testing subsystem (src/testing/): the JSON
// repro format, the brute-force oracle, the generative harnesses, the
// shrinker, and — as the harness's own acceptance check — that an
// intentionally corrupted executor result is caught and minimized to a tiny
// regex (the "mutation check" documented in docs/TESTING.md).

#include <cmath>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "automata/algebra.hpp"
#include "automata/determinize.hpp"
#include "automata/ops.hpp"
#include "automata/regex.hpp"
#include "automata/regex_parser.hpp"
#include "automata/thompson.hpp"
#include "core/compiled_query.hpp"
#include "core/executor.hpp"
#include "model/ngram_model.hpp"
#include "testing/differential.hpp"
#include "testing/generators.hpp"
#include "testing/json.hpp"
#include "testing/oracle.hpp"
#include "testing/shrink.hpp"
#include "tokenizer/bpe.hpp"
#include "util/errors.hpp"
#include "util/rng.hpp"

namespace relm::testing {
namespace {

// ---------------------------------------------------------------------------
// Json

TEST(Json, RoundTripsTypedValues) {
  Json doc = Json::object();
  doc.set("int", Json::number(std::int64_t{-42}));
  doc.set("big", Json::number(std::uint64_t{1} << 62));
  doc.set("pi", Json::number(3.25));
  doc.set("flag", Json::boolean(true));
  doc.set("none", Json::null());
  doc.set("text", Json::string("a\"b\\c\n\t\x01"));
  Json arr = Json::array();
  arr.push_back(Json::number(std::int64_t{1}));
  arr.push_back(Json::string("two"));
  doc.set("arr", std::move(arr));

  const Json parsed = Json::parse(doc.dump());
  EXPECT_EQ(parsed.at("int").as_int(), -42);
  EXPECT_EQ(parsed.at("big").as_int(), std::int64_t{1} << 62);
  EXPECT_DOUBLE_EQ(parsed.at("pi").as_double(), 3.25);
  EXPECT_TRUE(parsed.at("flag").as_bool());
  EXPECT_TRUE(parsed.at("none").is_null());
  EXPECT_EQ(parsed.at("text").as_string(), "a\"b\\c\n\t\x01");
  EXPECT_EQ(parsed.at("arr").as_array().size(), 2u);
  // Insertion order survives a round trip (the repro files diff cleanly).
  EXPECT_EQ(parsed.dump(), doc.dump());
  EXPECT_EQ(Json::parse(doc.dump(true)).dump(), doc.dump());
}

TEST(Json, RejectsMalformedDocuments) {
  EXPECT_THROW(Json::parse(""), relm::Error);
  EXPECT_THROW(Json::parse("{\"a\":1} trailing"), relm::Error);
  EXPECT_THROW(Json::parse("{\"a\":1,\"a\":2}"), relm::Error);
  EXPECT_THROW(Json::parse("\"unterminated"), relm::Error);
  EXPECT_THROW(Json::parse("{\"a\":01}"), relm::Error);
  EXPECT_THROW(Json::parse("[1,]"), relm::Error);
  EXPECT_THROW(Json::parse("nul"), relm::Error);
}

TEST(Json, AccessorsEnforceKinds) {
  const Json doc = Json::parse("{\"n\": 1.5}");
  EXPECT_THROW(doc.at("n").as_string(), relm::Error);
  EXPECT_THROW(doc.at("n").as_int(), relm::Error);  // not integer-valued
  EXPECT_THROW(doc.at("missing"), relm::Error);
  EXPECT_EQ(doc.get("missing"), nullptr);
}

// ---------------------------------------------------------------------------
// Oracle

// The tokenizer sits behind a shared_ptr: CompiledQuery keeps a pointer to
// the tokenizer it was compiled against, so it needs a stable address that
// outlives the compile.
struct SmallCase {
  std::shared_ptr<tokenizer::BpeTokenizer> tok;
  std::shared_ptr<model::LanguageModel> model;
  core::SimpleSearchQuery query;
  core::CompiledQuery compiled;
};

SmallCase make_case(std::vector<std::string> vocab, const std::string& body,
                    bool require_eos, std::size_t seq_len) {
  const std::size_t vocab_size = vocab.size();
  auto tok = std::make_shared<tokenizer::BpeTokenizer>(
      tokenizer::BpeTokenizer::from_vocab(std::move(vocab)));
  auto model = std::make_shared<model::UniformModel>(vocab_size, 0, 24);
  core::SimpleSearchQuery query;
  query.query_string = {body, ""};
  query.require_eos = require_eos;
  query.sequence_length = seq_len;
  query.tokenization_strategy = core::TokenizationStrategy::kAllTokens;
  core::CompiledQuery compiled = core::CompiledQuery::compile(query, *tok);
  return {std::move(tok), std::move(model), std::move(query), std::move(compiled)};
}

TEST(Oracle, EnumeratesUniformLanguageExactly) {
  SmallCase c = make_case({"", "a", "b"}, "a|b", /*require_eos=*/false, 4);
  const Oracle oracle = build_oracle(*c.model, c.compiled, c.query);
  ASSERT_FALSE(oracle.truncated);
  ASSERT_EQ(oracle.by_text.size(), 2u);
  const double lp = std::log(1.0 / 3.0);  // one uniform token, no EOS factor
  for (const OraclePath& path : oracle.by_text) {
    EXPECT_NEAR(path.log_prob, lp, 1e-12);
    EXPECT_EQ(path.tokens.size(), 1u);
  }
  EXPECT_TRUE(oracle.log_prob_of("a").has_value());
  EXPECT_TRUE(oracle.log_prob_of("b").has_value());
  EXPECT_FALSE(oracle.log_prob_of("c").has_value());
  EXPECT_GE(oracle.max_width, 2u);
}

TEST(Oracle, RequireEosAddsTerminationFactor) {
  SmallCase c = make_case({"", "a", "b"}, "a", /*require_eos=*/true, 4);
  const Oracle oracle = build_oracle(*c.model, c.compiled, c.query);
  ASSERT_EQ(oracle.by_text.size(), 1u);
  EXPECT_NEAR(oracle.by_text[0].log_prob, 2 * std::log(1.0 / 3.0), 1e-12);
}

TEST(Oracle, CompareResultsFlagsEveryMismatchClass) {
  SmallCase c = make_case({"", "a", "b"}, "a|b|ab", /*require_eos=*/false, 4);
  const Oracle oracle = build_oracle(*c.model, c.compiled, c.query);
  core::ShortestPathSearch search(*c.model, c.compiled, c.query);
  std::vector<core::SearchResult> results = search.all();
  ASSERT_EQ(results.size(), oracle.by_text.size());
  EXPECT_EQ(compare_results(oracle, results, 1e-9, /*check_order=*/true),
            std::nullopt);

  std::vector<core::SearchResult> dropped = results;
  dropped.pop_back();
  EXPECT_NE(compare_results(oracle, dropped, 1e-9, true), std::nullopt);

  std::vector<core::SearchResult> perturbed = results;
  perturbed[0].log_prob += 1e-6;
  EXPECT_NE(compare_results(oracle, perturbed, 1e-9, true), std::nullopt);

  std::vector<core::SearchResult> duplicated = results;
  duplicated.push_back(duplicated.front());
  EXPECT_NE(compare_results(oracle, duplicated, 1e-9, true), std::nullopt);

  std::vector<core::SearchResult> swapped = results;
  std::swap(swapped.front(), swapped.back());
  EXPECT_NE(compare_results(oracle, swapped, 1e-9, /*check_order=*/true),
            std::nullopt);
  // The same out-of-order list is fine when order is not checked.
  EXPECT_EQ(compare_results(oracle, swapped, 1e-9, /*check_order=*/false),
            std::nullopt);
}

TEST(Oracle, CheckSamplesAcceptsSamplerOutput) {
  SmallCase c = make_case({"", "a", "b"}, "(a|b){1,2}", /*require_eos=*/true, 4);
  core::SimpleSearchQuery query = c.query;
  query.num_samples = 8;
  core::RandomSampler sampler(*c.model, c.compiled, query, /*seed=*/7);
  const std::vector<core::SearchResult> samples = sampler.sample_all();
  ASSERT_FALSE(samples.empty());
  EXPECT_EQ(check_samples(*c.model, c.compiled, query, samples, 1e-9),
            std::nullopt);

  std::vector<core::SearchResult> bad = samples;
  bad[0].log_prob += 1e-6;
  EXPECT_NE(check_samples(*c.model, c.compiled, query, bad, 1e-9), std::nullopt);
  bad = samples;
  bad[0].text = "zz";  // not in the language
  EXPECT_NE(check_samples(*c.model, c.compiled, query, bad, 1e-9), std::nullopt);
}

// ---------------------------------------------------------------------------
// Generators

// Property: pattern_of renders an AST into the dialect such that the parser
// accepts it AND describes the same language. Checked structurally: the DFA
// built straight from the generated AST must be equivalent to the DFA built
// from parsing the rendered pattern.
TEST(Generators, RenderedPatternsParseToTheSameLanguage) {
  RegexGenConfig config;
  for (std::uint64_t seed = 0; seed < 150; ++seed) {
    util::Pcg32 rng(seed);
    const automata::RegexPtr ast = random_regex(rng, config);
    const std::string pattern = pattern_of(*ast);
    SCOPED_TRACE("seed " + std::to_string(seed) + " pattern: " + pattern);
    // compile_ast handles the boolean-algebra nodes the generator can now
    // emit (thompson_construct alone would reject them).
    const automata::Dfa from_ast = automata::minimize(automata::compile_ast(*ast));
    automata::Dfa from_pattern(automata::compile_regex(pattern));
    ASSERT_TRUE(automata::equivalent(from_ast, from_pattern));
    EXPECT_GE(node_count(*ast), 1u);
  }
}

TEST(Generators, VocabulariesAreAlwaysLoadable) {
  VocabGenConfig config;
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    util::Pcg32 rng(seed);
    const std::vector<std::string> vocab = random_vocab(rng, config);
    ASSERT_GE(vocab.size(), 1 + config.alphabet.size());
    EXPECT_EQ(vocab[0], "");  // EOS first, id 0
    const tokenizer::BpeTokenizer tok =
        tokenizer::BpeTokenizer::from_vocab(vocab);
    EXPECT_EQ(tok.vocab_size(), vocab.size());
  }
}

TEST(Generators, TrialCaseJsonRoundTripIsByteIdentical) {
  for (std::uint64_t seed : {1ull, 17ull, 99ull, 12345ull}) {
    const TrialCase original = generate_case(seed);
    const std::string text = original.to_json().dump(true);
    const TrialCase reloaded = TrialCase::from_json(Json::parse(text));
    EXPECT_EQ(reloaded.to_json().dump(true), text) << "seed " << seed;
    EXPECT_EQ(reloaded.seed, seed);
    // The reloaded case must be runnable without the generator.
    EXPECT_NO_THROW({
      auto tok = tokenizer::BpeTokenizer::from_vocab(reloaded.vocab);
      auto model = reloaded.model.build();
      (void)core::CompiledQuery::compile(reloaded.query(), tok);
    });
  }
}

// ---------------------------------------------------------------------------
// Differential trials + shrinker

// Seeded smoke sweep of the full differential pipeline — the deterministic
// tier-1 slice of what `relm fuzz` and the CI job run at larger volume.
TEST(Differential, SeededSweepHasNoFailures) {
  DifferentialOptions options;
  options.num_samples = 8;  // keep the sampler volume test-sized
  std::size_t passes = 0;
  for (std::uint64_t seed = 9000; seed < 9048; ++seed) {
    const TrialReport report = run_trial(generate_case(seed), options);
    EXPECT_FALSE(report.failed())
        << "seed " << seed << " [" << report.failure_kind << "] "
        << report.detail;
    passes += report.status == TrialReport::Status::kPass;
  }
  // The sweep must be substantive, not a wall of skips.
  EXPECT_GE(passes, 40u);
}

// The mutation check (acceptance criterion): corrupting executor output must
// (a) be caught by the oracle and (b) shrink to a repro whose regex has at
// most 3 AST nodes.
TEST(Differential, MutationIsCaughtAndShrinksToTinyRegex) {
  DifferentialOptions options;
  options.num_samples = 8;
  options.mutate = Mutation::kDropResult;

  std::optional<TrialCase> failing;
  for (std::uint64_t seed = 1; seed < 64 && !failing; ++seed) {
    TrialCase trial = generate_case(seed);
    const TrialReport report = run_trial(trial, options);
    if (report.failed()) failing = std::move(trial);
  }
  ASSERT_TRUE(failing.has_value()) << "no seed in [1,64) tripped the mutation";

  const ShrinkResult shrunk = shrink_case(*failing, options);
  ASSERT_TRUE(shrunk.report.failed());
  EXPECT_EQ(shrunk.report.failure_kind, "oracle:shortest1");
  const automata::RegexPtr body = automata::parse_regex(shrunk.best.body);
  EXPECT_LE(node_count(*body), 3u)
      << "shrunk body still large: " << shrunk.best.body;
  // And the minimized case must be a genuine repro on its own.
  EXPECT_TRUE(run_trial(shrunk.best, options).failed());
  EXPECT_FALSE(run_trial(shrunk.best, DifferentialOptions{}).failed());
}

TEST(Differential, AllMutationKindsAreDetected) {
  // A fixed seed with a known multi-result language so every corruption mode
  // has something to corrupt.
  std::optional<TrialCase> trial;
  for (std::uint64_t seed = 1; seed < 128; ++seed) {
    TrialCase candidate = generate_case(seed);
    DifferentialOptions plain;
    plain.num_samples = 8;
    const TrialReport report = run_trial(candidate, plain);
    if (report.status == TrialReport::Status::kPass && report.language_size >= 2) {
      trial = std::move(candidate);
      break;
    }
  }
  ASSERT_TRUE(trial.has_value());
  for (Mutation mutation : {Mutation::kDropResult, Mutation::kPerturbLogProb,
                            Mutation::kDuplicateResult}) {
    DifferentialOptions options;
    options.num_samples = 8;
    options.mutate = mutation;
    EXPECT_TRUE(run_trial(*trial, options).failed())
        << "mutation " << static_cast<int>(mutation) << " not detected";
  }
}

// ---------------------------------------------------------------------------
// Corpus replay: every minimized repro checked into tests/fuzz_corpus/ must
// load through the strict JSON path and PASS against the fixed executors.
// (These files were harvested from real fuzzer failures; see docs/TESTING.md.)

std::vector<std::string> corpus_files() {
  return {
      std::string(RELM_FUZZ_CORPUS_DIR) + "/batched-dijkstra-premature-emit.json",
      std::string(RELM_FUZZ_CORPUS_DIR) + "/beam-eos-at-seq-limit.json",
      std::string(RELM_FUZZ_CORPUS_DIR) + "/sampler-require-eos-ignored.json",
  };
}

TEST(Corpus, ReprosReplayCleanAgainstFixedExecutors) {
  for (const std::string& path : corpus_files()) {
    SCOPED_TRACE(path);
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << "missing corpus file";
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const TrialCase trial = TrialCase::from_json(Json::parse(buffer.str()));
    const TrialReport report = run_trial(trial);
    EXPECT_FALSE(report.failed())
        << "[" << report.failure_kind << "] " << report.detail;
  }
}

}  // namespace
}  // namespace relm::testing
