// Tests for the boolean query algebra (src/automata/algebra.*): operator
// semantics, the algebraic laws (decided by dfa_equivalent, not examples),
// lazy vs eager determinization under a state budget, and the
// distinguishing-word machinery itself.

#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "automata/algebra.hpp"
#include "automata/determinize.hpp"
#include "automata/ops.hpp"
#include "automata/regex.hpp"
#include "automata/regex_ast.hpp"
#include "automata/regex_parser.hpp"
#include "automata/thompson.hpp"
#include "testing/generators.hpp"
#include "util/errors.hpp"
#include "util/rng.hpp"

namespace {

using namespace relm;
namespace rt = relm::testing;
using automata::AlgebraOptions;
using automata::compile_ast;
using automata::compile_regex;
using automata::dfa_equivalent;
using automata::Dfa;
using automata::RegexNode;
using automata::RegexPtr;

Dfa compile(const std::string& pattern, AlgebraOptions options = {}) {
  return compile_ast(*automata::parse_regex(pattern), options);
}

// ---------------------------------------------------------------------------
// Operator semantics
// ---------------------------------------------------------------------------

TEST(Algebra, IntersectionKeepsOnlyCommonStrings) {
  Dfa dfa = compile("(ab|cd|ef)&(ab|ef|gh)");
  EXPECT_TRUE(dfa.accepts_bytes("ab"));
  EXPECT_TRUE(dfa.accepts_bytes("ef"));
  EXPECT_FALSE(dfa.accepts_bytes("cd"));
  EXPECT_FALSE(dfa.accepts_bytes("gh"));
}

TEST(Algebra, IntersectionIsNAry) {
  Dfa dfa = compile("[ab]*&[bc]*&[bd]*");
  EXPECT_TRUE(dfa.accepts_bytes(""));
  EXPECT_TRUE(dfa.accepts_bytes("bbb"));
  EXPECT_FALSE(dfa.accepts_bytes("a"));
  EXPECT_FALSE(dfa.accepts_bytes("c"));
}

TEST(Algebra, ComplementIsRelativeToPrintableUniverse) {
  Dfa dfa = compile("~(ab)");
  EXPECT_FALSE(dfa.accepts_bytes("ab"));
  EXPECT_TRUE(dfa.accepts_bytes(""));
  EXPECT_TRUE(dfa.accepts_bytes("a"));
  EXPECT_TRUE(dfa.accepts_bytes("abc"));
  EXPECT_TRUE(dfa.accepts_bytes("hello world\n"));
  // Strings containing non-universe bytes are NOT in the complement: `~r`
  // means universe^* minus L(r), exactly like [^...] means universe minus
  // the listed bytes.
  EXPECT_FALSE(dfa.accepts_bytes(std::string("\x01", 1)));
}

TEST(Algebra, BangAndTildeAreSynonyms) {
  EXPECT_TRUE(dfa_equivalent(compile("!(ab)"), compile("~(ab)")));
}

TEST(Algebra, DifferenceIsExactSetDifference) {
  Dfa dfa = compile("(ab|cd|ef)-(cd)");
  EXPECT_TRUE(dfa.accepts_bytes("ab"));
  EXPECT_TRUE(dfa.accepts_bytes("ef"));
  EXPECT_FALSE(dfa.accepts_bytes("cd"));
}

TEST(Algebra, DifferenceKeepsNonUniverseBytesComplementDrops) {
  // `-` is exact set difference with no universe restriction, so a string
  // with a control byte survives subtraction; `&~` would lose it because the
  // complement operand only contains universe strings. This is the deliberate
  // semantic distinction between the two spellings.
  Dfa minus = compile("(\\x01|b)-(b)");
  EXPECT_TRUE(minus.accepts_bytes(std::string("\x01", 1)));
  EXPECT_FALSE(minus.accepts_bytes("b"));
  Dfa and_not = compile("(\\x01|b)&~(b)");
  EXPECT_FALSE(and_not.accepts_bytes(std::string("\x01", 1)));
}

TEST(Algebra, OperatorsComposeWithRegularOperators) {
  // Boolean subexpressions nest under concatenation and repetition.
  Dfa dfa = compile("x((ab|cd)-(cd))y");
  EXPECT_TRUE(dfa.accepts_bytes("xaby"));
  EXPECT_FALSE(dfa.accepts_bytes("xcdy"));
  Dfa rep = compile("((a|b)&(a|c))*");
  EXPECT_TRUE(rep.accepts_bytes(""));
  EXPECT_TRUE(rep.accepts_bytes("aaa"));
  EXPECT_FALSE(rep.accepts_bytes("b"));
}

TEST(Algebra, PrecedenceMatchesDocumentedTable) {
  // `|` < `-` < `&` < concat < `~` (see docs/cli.md).
  EXPECT_TRUE(dfa_equivalent(compile("a|b-c"), compile("a|(b-c)")));
  EXPECT_TRUE(dfa_equivalent(compile("ab-c&d"), compile("(ab)-((c)&(d))")));
  EXPECT_TRUE(dfa_equivalent(compile("a&bc"), compile("a&(bc)")));
  EXPECT_TRUE(dfa_equivalent(compile("~ab"), compile("(~a)b")));
  EXPECT_TRUE(dfa_equivalent(compile("~a*"), compile("~(a*)")));
  // `-` is left-associative: a-b-c = (a-b)-c.
  EXPECT_TRUE(dfa_equivalent(compile("a-b-c"), compile("(a-b)-c")));
}

// ---------------------------------------------------------------------------
// Algebraic laws, decided by dfa_equivalent over random ASTs
// ---------------------------------------------------------------------------

class AlgebraLaws : public ::testing::Test {
 protected:
  // Draw boolean-free operand ASTs: the laws quantify over arbitrary regular
  // operands; the operators under test are applied on top.
  RegexPtr draw(util::Pcg32& rng) {
    rt::RegexGenConfig config;
    config.max_depth = 3;
    config.algebra_weight = 0;
    return rt::random_regex(rng, config);
  }
};

TEST_F(AlgebraLaws, DoubleComplementIsIdentity) {
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    util::Pcg32 rng(seed, 0x11);
    RegexPtr a = draw(rng);
    SCOPED_TRACE("seed " + std::to_string(seed) + ": " +
                 rt::pattern_of(*a));
    Dfa lhs = compile_ast(*RegexNode::complement(
        RegexNode::complement(a->clone())));
    // !!A clips A to universe strings: compare against A ∩ universe^*.
    std::vector<RegexPtr> children;
    children.push_back(a->clone());
    children.push_back(RegexNode::repeat(
        RegexNode::char_class_node(AlgebraOptions::kDefaultUniverse()), 0,
        automata::kUnbounded));
    Dfa rhs = compile_ast(*RegexNode::intersect(std::move(children)));
    EXPECT_TRUE(dfa_equivalent(lhs, rhs));
  }
}

TEST_F(AlgebraLaws, DeMorgan) {
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    util::Pcg32 rng(seed, 0x22);
    RegexPtr a = draw(rng);
    RegexPtr b = draw(rng);
    SCOPED_TRACE("seed " + std::to_string(seed) + ": " +
                 rt::pattern_of(*a) + " , " + rt::pattern_of(*b));
    // ~(A|B) == ~A & ~B
    std::vector<RegexPtr> alt;
    alt.push_back(a->clone());
    alt.push_back(b->clone());
    Dfa lhs = compile_ast(
        *RegexNode::complement(RegexNode::alternate(std::move(alt))));
    std::vector<RegexPtr> both;
    both.push_back(RegexNode::complement(a->clone()));
    both.push_back(RegexNode::complement(b->clone()));
    Dfa rhs = compile_ast(*RegexNode::intersect(std::move(both)));
    EXPECT_TRUE(dfa_equivalent(lhs, rhs));
    // ~(A&B) == ~A | ~B
    std::vector<RegexPtr> inter;
    inter.push_back(a->clone());
    inter.push_back(b->clone());
    Dfa lhs2 = compile_ast(
        *RegexNode::complement(RegexNode::intersect(std::move(inter))));
    std::vector<RegexPtr> either;
    either.push_back(RegexNode::complement(a->clone()));
    either.push_back(RegexNode::complement(b->clone()));
    Dfa rhs2 = compile_ast(*RegexNode::alternate(std::move(either)));
    EXPECT_TRUE(dfa_equivalent(lhs2, rhs2));
  }
}

TEST_F(AlgebraLaws, DifferenceEqualsIntersectWithComplement) {
  // Over universe-alphabet operands (the generator draws from "abcd"),
  // A - B == A & ~B; the exact-difference distinction only shows up for
  // operands touching non-universe bytes (pinned separately above).
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    util::Pcg32 rng(seed, 0x33);
    RegexPtr a = draw(rng);
    RegexPtr b = draw(rng);
    SCOPED_TRACE("seed " + std::to_string(seed) + ": " +
                 rt::pattern_of(*a) + " , " + rt::pattern_of(*b));
    Dfa lhs = compile_ast(*RegexNode::difference(a->clone(), b->clone()));
    std::vector<RegexPtr> both;
    both.push_back(a->clone());
    both.push_back(RegexNode::complement(b->clone()));
    Dfa rhs = compile_ast(*RegexNode::intersect(std::move(both)));
    EXPECT_TRUE(dfa_equivalent(lhs, rhs));
  }
}

TEST_F(AlgebraLaws, SelfIntersectionWithComplementIsEmpty) {
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    util::Pcg32 rng(seed, 0x44);
    RegexPtr a = draw(rng);
    SCOPED_TRACE("seed " + std::to_string(seed) + ": " +
                 rt::pattern_of(*a));
    std::vector<RegexPtr> both;
    both.push_back(a->clone());
    both.push_back(RegexNode::complement(a->clone()));
    Dfa vacuous = compile_ast(*RegexNode::intersect(std::move(both)));
    EXPECT_TRUE(automata::is_empty_language(vacuous));
    Dfa self_diff = compile_ast(*RegexNode::difference(a->clone(), a->clone()));
    EXPECT_TRUE(automata::is_empty_language(self_diff));
  }
}

TEST_F(AlgebraLaws, LazyAndEagerAgree) {
  rt::RegexGenConfig config;
  config.max_depth = 3;
  config.algebra_weight = 2;  // force plenty of boolean nodes
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    util::Pcg32 rng(seed, 0x55);
    RegexPtr ast = rt::random_regex(rng, config);
    SCOPED_TRACE("seed " + std::to_string(seed) + ": " +
                 rt::pattern_of(*ast));
    AlgebraOptions lazy;
    lazy.lazy = true;
    AlgebraOptions eager;
    eager.lazy = false;
    EXPECT_TRUE(dfa_equivalent(compile_ast(*ast, lazy),
                               compile_ast(*ast, eager)));
  }
}

// ---------------------------------------------------------------------------
// Lazy determinization under a state budget
// ---------------------------------------------------------------------------

// The adversarial query: the left operand's NFA needs ~2^15 DFA states when
// determinized in isolation ((a|b)*a(a|b){14} — the classic subset-blowup
// family), but intersecting with a 4-state language makes almost all of that
// space unreachable. Lazy evaluation explores only the product states the
// intersection can visit and stays in the tens of states; eager evaluation
// determinizes the leaf first and blows the same budget.
constexpr char kAdversarialPattern[] = "((a|b)*a(a|b){14})&(a{0,3})";
constexpr std::size_t kAdversarialBudget = 4096;

TEST(AlgebraBudget, LazyCompilesAdversarialQueryWithinBudget) {
  AlgebraOptions options;
  options.lazy = true;
  options.state_budget = kAdversarialBudget;
  Dfa dfa = compile(kAdversarialPattern, options);
  // The intersection is empty (the left operand needs length >= 15).
  EXPECT_TRUE(automata::is_empty_language(dfa));
}

TEST(AlgebraBudget, EagerExceedsTheSameBudget) {
  AlgebraOptions options;
  options.lazy = false;
  options.state_budget = kAdversarialBudget;
  try {
    compile(kAdversarialPattern, options);
    FAIL() << "expected StateBudgetError";
  } catch (const relm::StateBudgetError& e) {
    EXPECT_EQ(e.budget(), kAdversarialBudget);
    EXPECT_NE(std::string(e.what()).find("budget"), std::string::npos);
  }
}

TEST(AlgebraBudget, EagerSucceedsUnbounded) {
  AlgebraOptions lazy;
  lazy.lazy = true;
  AlgebraOptions eager;
  eager.lazy = false;  // state_budget = 0: unlimited
  EXPECT_TRUE(dfa_equivalent(compile(kAdversarialPattern, lazy),
                             compile(kAdversarialPattern, eager)));
}

TEST(AlgebraBudget, TinyBudgetFailsEvenLazy) {
  AlgebraOptions options;
  options.lazy = true;
  options.state_budget = 2;
  EXPECT_THROW(compile("(abcdefgh)&(abcdefgh)", options),
               relm::StateBudgetError);
}

TEST(AlgebraBudget, PlainDeterminizeHonoursBudget) {
  automata::Nfa nfa =
      automata::thompson_construct(*automata::parse_regex("(a|b)*a(a|b){10}"));
  EXPECT_THROW(automata::determinize(nfa, 16), relm::StateBudgetError);
  Dfa unbounded = automata::determinize(nfa);
  EXPECT_TRUE(unbounded.accepts_bytes("babbbbbbbbbb"));
}

TEST(AlgebraBudget, EnvVariableControlsDefault) {
  ASSERT_EQ(setenv("RELM_DETERMINIZE_BUDGET", "12345", 1), 0);
  EXPECT_EQ(automata::determinize_budget_from_env(), 12345u);
  ASSERT_EQ(setenv("RELM_DETERMINIZE_BUDGET", "0", 1), 0);
  EXPECT_EQ(automata::determinize_budget_from_env(), 0u);  // unlimited
  ASSERT_EQ(unsetenv("RELM_DETERMINIZE_BUDGET"), 0);
  EXPECT_EQ(automata::determinize_budget_from_env(),
            automata::kDefaultDeterminizeBudget);

  ASSERT_EQ(setenv("RELM_DETERMINIZE_MODE", "eager", 1), 0);
  EXPECT_FALSE(automata::lazy_determinize_from_env());
  ASSERT_EQ(unsetenv("RELM_DETERMINIZE_MODE"), 0);
  EXPECT_TRUE(automata::lazy_determinize_from_env());
}

// ---------------------------------------------------------------------------
// dfa_equivalent / dfa_distinguishing_word
// ---------------------------------------------------------------------------

TEST(DfaEquivalent, AcceptsHandBuiltEquivalentPair) {
  // Two structurally different machines for "even number of a's".
  Dfa a(2);
  auto a0 = a.add_state(true);
  auto a1 = a.add_state(false);
  a.add_edge(a0, 0, a1);
  a.add_edge(a1, 0, a0);
  a.add_edge(a0, 1, a0);
  a.add_edge(a1, 1, a1);

  Dfa b(2);  // four states, same language (parity duplicated)
  auto b0 = b.add_state(true);
  auto b1 = b.add_state(false);
  auto b2 = b.add_state(true);
  auto b3 = b.add_state(false);
  b.add_edge(b0, 0, b1);
  b.add_edge(b1, 0, b2);
  b.add_edge(b2, 0, b3);
  b.add_edge(b3, 0, b0);
  b.add_edge(b0, 1, b0);
  b.add_edge(b1, 1, b3);
  b.add_edge(b2, 1, b2);
  b.add_edge(b3, 1, b1);
  EXPECT_TRUE(dfa_equivalent(a, b));
  EXPECT_FALSE(automata::dfa_distinguishing_word(a, b).has_value());
}

TEST(DfaEquivalent, RejectsWithShortestWitness) {
  Dfa a = compile_regex("ab*");
  Dfa b = compile_regex("ab*b");
  auto word = automata::dfa_distinguishing_word(a, b);
  ASSERT_TRUE(word.has_value());
  // Shortest distinguishing word is "a" (in L(a), not in L(b)).
  ASSERT_EQ(word->size(), 1u);
  EXPECT_EQ((*word)[0], static_cast<automata::Symbol>('a'));
  EXPECT_FALSE(dfa_equivalent(a, b));
}

TEST(DfaEquivalent, DistinguishesOnMissingEdges) {
  // kNoState (missing transition) must behave as an implicit dead state.
  Dfa a = compile_regex("a");
  Dfa b = compile_regex("a|b");
  auto word = automata::dfa_distinguishing_word(a, b);
  ASSERT_TRUE(word.has_value());
  ASSERT_EQ(word->size(), 1u);
  EXPECT_EQ((*word)[0], static_cast<automata::Symbol>('b'));
}

TEST(DfaEquivalent, EmptyVsEpsilonLanguages) {
  Dfa empty = compile("a&b");       // empty language
  Dfa epsilon = compile_regex("()");  // language { "" }
  auto word = automata::dfa_distinguishing_word(empty, epsilon);
  ASSERT_TRUE(word.has_value());
  EXPECT_TRUE(word->empty());  // "" itself is the witness
  EXPECT_TRUE(dfa_equivalent(empty, compile("c&d")));
}

TEST(DfaEquivalent, ThrowsOnAlphabetMismatch) {
  Dfa bytes(256);
  bytes.add_state(true);
  Dfa tokens(500);
  tokens.add_state(true);
  EXPECT_THROW((void)dfa_equivalent(bytes, tokens), relm::Error);
}

}  // namespace
