#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "tokenizer/bpe.hpp"
#include "util/errors.hpp"

namespace relm::tokenizer {
namespace {

// A small training corpus with enough repetition to learn merges for "The",
// "cat", "dog" and friends.
std::string training_corpus() {
  std::string corpus;
  for (int i = 0; i < 50; ++i) {
    corpus += "The cat sat on the mat. The dog ran to the cat. ";
    corpus += "The man was trained in art. The woman was trained in science. ";
  }
  return corpus;
}

BpeTokenizer make_tokenizer(std::size_t vocab = 400) {
  BpeTokenizer::TrainConfig config;
  config.vocab_size = vocab;
  return BpeTokenizer::train(training_corpus(), config);
}

TEST(Bpe, TrainingIsDeterministic) {
  BpeTokenizer a = make_tokenizer();
  BpeTokenizer b = make_tokenizer();
  ASSERT_EQ(a.vocab_size(), b.vocab_size());
  for (TokenId t = 0; t < a.vocab_size(); ++t) {
    EXPECT_EQ(a.token_string(t), b.token_string(t));
  }
}

TEST(Bpe, VocabularyContainsMergedUnits) {
  BpeTokenizer tok = make_tokenizer();
  // Frequent words must have been merged into multi-byte tokens.
  EXPECT_TRUE(tok.find("The").has_value());
  EXPECT_TRUE(tok.find(" cat").has_value() || tok.find("cat").has_value());
  EXPECT_GT(tok.max_token_length(), 1u);
}

TEST(Bpe, EncodeDecodeRoundTrip) {
  BpeTokenizer tok = make_tokenizer();
  for (const char* text :
       {"The cat", "The dog ran.", "a", "", "zebra quux 123", "   ", "The The The"}) {
    EXPECT_EQ(tok.decode(tok.encode(text)), text) << text;
  }
}

TEST(Bpe, EncodeIsCanonicalByConstruction) {
  BpeTokenizer tok = make_tokenizer();
  auto tokens = tok.encode("The cat sat on the mat.");
  EXPECT_TRUE(tok.is_canonical(tokens));
}

TEST(Bpe, NonCanonicalSequenceDetected) {
  BpeTokenizer tok = make_tokenizer();
  // Byte-by-byte spelling of "The" is a valid encoding but not canonical
  // once the merged token exists.
  ASSERT_TRUE(tok.find("The").has_value());
  std::vector<TokenId> spelled{*tok.find("T"), *tok.find("h"), *tok.find("e")};
  EXPECT_EQ(tok.decode(spelled), "The");
  EXPECT_FALSE(tok.is_canonical(spelled));
}

TEST(Bpe, TrailingEosIgnoredByCanonicalCheck) {
  BpeTokenizer tok = make_tokenizer();
  auto tokens = tok.encode("The cat");
  tokens.push_back(tok.eos());
  EXPECT_TRUE(tok.is_canonical(tokens));
}

TEST(Bpe, EosDecodesToEmpty) {
  BpeTokenizer tok = make_tokenizer();
  std::vector<TokenId> just_eos{tok.eos()};
  EXPECT_EQ(tok.decode(just_eos), "");
}

TEST(Bpe, EncodingCountGrowsWithMerges) {
  BpeTokenizer tok = make_tokenizer();
  // Figure 3: "The" has 4 encodings when T|h|e, Th|e, T|he, The all exist.
  // Our trained vocab has at least the byte spelling plus the full merge.
  double n = tok.count_encodings("The");
  EXPECT_GE(n, 2.0);
  // Upper bound: all 2^(n-1) segmentations.
  EXPECT_LE(n, 4.0);
}

TEST(Bpe, EncodingCountMatchesBruteForce) {
  BpeTokenizer tok = make_tokenizer();
  // Brute force: enumerate segmentations of a short string.
  std::string s = "cat";
  std::function<double(std::size_t)> ways = [&](std::size_t pos) -> double {
    if (pos == s.size()) return 1.0;
    double total = 0;
    for (TokenId t : tok.matches_at(s, pos)) {
      total += ways(pos + tok.token_string(t).size());
    }
    return total;
  };
  EXPECT_DOUBLE_EQ(tok.count_encodings(s), ways(0));
}

TEST(Bpe, FullyMergedStringHasExponentialEncodings) {
  // Train a corpus where "aaaa" dominates so all sub-spans merge.
  std::string corpus;
  for (int i = 0; i < 200; ++i) corpus += "aaaa ";
  BpeTokenizer::TrainConfig config;
  config.vocab_size = 400;
  BpeTokenizer tok = BpeTokenizer::train(corpus, config);
  if (tok.find("aa") && tok.find("aaa") && tok.find("aaaa")) {
    EXPECT_DOUBLE_EQ(tok.count_encodings("aaaa"), 8.0);  // 2^(4-1)
  }
}

TEST(Bpe, LongestMatchIsGreedy) {
  BpeTokenizer tok = make_tokenizer();
  auto best = tok.longest_match("The cat");
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(tok.token_string(*best), "The");
}

TEST(Bpe, MatchesAtReturnsAllPrefixTokens) {
  BpeTokenizer tok = make_tokenizer();
  auto matches = tok.matches_at("The", 0);
  std::set<std::string> strings;
  for (TokenId t : matches) strings.insert(tok.token_string(t));
  EXPECT_TRUE(strings.contains("T"));
  EXPECT_TRUE(strings.contains("The"));
}

TEST(Bpe, UnknownByteThrows) {
  BpeTokenizer tok = make_tokenizer();
  EXPECT_THROW(tok.encode("caf\xc3\xa9"), relm::Error);
}

TEST(Bpe, VocabSizeBudgetRespected) {
  BpeTokenizer::TrainConfig config;
  config.vocab_size = 150;
  BpeTokenizer tok = BpeTokenizer::train(training_corpus(), config);
  EXPECT_LE(tok.vocab_size(), 150u);
}

TEST(Bpe, MaxTokenLengthRespected) {
  BpeTokenizer::TrainConfig config;
  config.vocab_size = 2000;
  config.max_token_length = 4;
  BpeTokenizer tok = BpeTokenizer::train(training_corpus(), config);
  for (TokenId t = 0; t < tok.vocab_size(); ++t) {
    EXPECT_LE(tok.token_string(t).size(), 4u);
  }
}

TEST(Bpe, CanonicalEncodingIsStable) {
  // The paper: "the canonical encoding ... is stable under repeated
  // encodings and decodings".
  BpeTokenizer tok = make_tokenizer();
  std::string text = "The woman was trained in art.";
  auto once = tok.encode(text);
  auto twice = tok.encode(tok.decode(once));
  EXPECT_EQ(once, twice);
}

}  // namespace
}  // namespace relm::tokenizer

namespace relm::tokenizer {
namespace {

TEST(BpeRandom, EncodeRandomRoundTrips) {
  BpeTokenizer tok = make_tokenizer();
  util::Pcg32 rng(3);
  for (int i = 0; i < 50; ++i) {
    std::string text = "The cat sat on the mat.";
    auto tokens = tok.encode_random(text, rng, 0.5);
    EXPECT_EQ(tok.decode(tokens), text);
  }
}

TEST(BpeRandom, ZeroStepProbIsCanonical) {
  BpeTokenizer tok = make_tokenizer();
  util::Pcg32 rng(3);
  std::string text = "The dog ran to the cat.";
  EXPECT_EQ(tok.encode_random(text, rng, 0.0), tok.encode(text));
}

TEST(BpeRandom, HighStepProbProducesNonCanonical) {
  BpeTokenizer tok = make_tokenizer();
  util::Pcg32 rng(3);
  int non_canonical = 0;
  for (int i = 0; i < 50; ++i) {
    auto tokens = tok.encode_random("The cat sat on the mat.", rng, 0.9);
    if (!tok.is_canonical(tokens)) ++non_canonical;
  }
  EXPECT_GT(non_canonical, 30);
}

TEST(BpeForce, ForcedTokensExistAndWin) {
  BpeTokenizer::TrainConfig config;
  config.vocab_size = 300;
  config.max_token_length = 4;  // too small to merge the forced word
  config.force_tokens = {" blorgface"};
  BpeTokenizer tok = BpeTokenizer::train(training_corpus(), config);
  ASSERT_TRUE(tok.find(" blorgface").has_value());
  auto enc = tok.encode("a blorgface!");
  // The forced token is the longest match at its position.
  bool used = false;
  for (TokenId t : enc) used = used || tok.token_string(t) == " blorgface";
  EXPECT_TRUE(used);
  EXPECT_GE(tok.max_token_length(), 10u);
}

TEST(BpeBlocked, BlockedPrefixNeverExtends) {
  std::string corpus;
  for (int i = 0; i < 300; ++i) corpus += "the artbox and artwork ";
  BpeTokenizer::TrainConfig config;
  config.vocab_size = 500;
  config.blocked_token_prefixes = {" art"};
  BpeTokenizer tok = BpeTokenizer::train(corpus, config);
  for (TokenId t = 0; t < tok.vocab_size(); ++t) {
    const std::string& s = tok.token_string(t);
    EXPECT_FALSE(s.size() > 4 && s.compare(0, 4, " art") == 0) << s;
  }
  // " art" itself may exist and, if so, leads the canonical encoding.
  if (tok.find(" art")) {
    auto enc = tok.encode(" artbox");
    ASSERT_FALSE(enc.empty());
    EXPECT_EQ(tok.token_string(enc[0]), " art");
  }
}

}  // namespace
}  // namespace relm::tokenizer

namespace relm::tokenizer {
namespace {

// ---------------------------------------------------------------------------
// Fuzz sweeps: random text and random token sequences.
// ---------------------------------------------------------------------------

class TokenizerFuzz : public ::testing::TestWithParam<int> {};

TEST_P(TokenizerFuzz, RandomTextRoundTripsAndIsCanonical) {
  BpeTokenizer tok = make_tokenizer();
  util::Pcg32 rng(9000 + static_cast<std::uint64_t>(GetParam()));
  static const char kChars[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 .,!?";
  for (int round = 0; round < 100; ++round) {
    std::string text;
    std::size_t len = rng.bounded(40);
    for (std::size_t i = 0; i < len; ++i) {
      text.push_back(kChars[rng.bounded(sizeof(kChars) - 1)]);
    }
    auto tokens = tok.encode(text);
    EXPECT_EQ(tok.decode(tokens), text);
    EXPECT_TRUE(tok.is_canonical(tokens)) << '"' << text << '"';
    // Random alternative encodings decode to the same text.
    auto alt = tok.encode_random(text, rng, 0.6);
    EXPECT_EQ(tok.decode(alt), text);
    // Encoding count is at least 1 and bounded by 2^(n-1).
    double count = tok.count_encodings(text);
    EXPECT_GE(count, text.empty() ? 1.0 : 1.0);
    if (!text.empty() && text.size() <= 50) {
      EXPECT_LE(count, std::pow(2.0, static_cast<double>(text.size() - 1)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TokenizerFuzz, ::testing::Range(1, 7));

}  // namespace
}  // namespace relm::tokenizer
