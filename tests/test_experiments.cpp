// Integration tests: miniature versions of every benchmark asserting the
// *qualitative* claims of the paper's evaluation (the bench binaries print
// the full tables). These run on a reduced world so the whole suite stays
// fast; the claims they check are scale-robust by design of the corpus.

#include <gtest/gtest.h>

#include "experiments/bias.hpp"
#include "util/errors.hpp"
#include "experiments/lambada.hpp"
#include "experiments/memorization.hpp"
#include "experiments/setup.hpp"
#include "experiments/toxicity.hpp"
#include "model/decoding.hpp"

namespace relm::experiments {
namespace {

// One world for the whole suite (building it is the expensive part).
const World& shared_world() {
  static World world = build_world(WorldConfig::scaled(0.5));
  return world;
}

// ---------------------------------------------------------------------------
// Setup
// ---------------------------------------------------------------------------

TEST(WorldSetup, DeterministicAcrossBuilds) {
  World a = build_world(WorldConfig::scaled(0.25));
  World b = build_world(WorldConfig::scaled(0.25));
  ASSERT_EQ(a.corpus.documents.size(), b.corpus.documents.size());
  EXPECT_EQ(a.corpus.documents, b.corpus.documents);
  EXPECT_EQ(a.tokenizer->vocab_size(), b.tokenizer->vocab_size());
  auto ctx = a.tokenizer->encode("The man was trained in");
  EXPECT_EQ(a.xl->next_log_probs(ctx), b.xl->next_log_probs(ctx));
}

TEST(WorldSetup, ModelLookup) {
  const World& world = shared_world();
  EXPECT_EQ(&world.model_by_name("sim-xl"), world.xl.get());
  EXPECT_EQ(&world.model_by_name("sim-small"), world.small.get());
  EXPECT_THROW(world.model_by_name("gpt-5"), relm::Error);
}

TEST(WorldSetup, InsultsAreSingleTokens) {
  const World& world = shared_world();
  for (const auto& insult : corpus::insult_lexicon()) {
    auto enc = world.tokenizer->encode(" " + insult);
    EXPECT_EQ(enc.size(), 1u) << insult;
  }
}

TEST(WorldSetup, ArtIsCanonicalPrefixOfArtWords) {
  const World& world = shared_world();
  auto enc = world.tokenizer->encode(" artbox");
  ASSERT_GE(enc.size(), 2u);
  EXPECT_EQ(world.tokenizer->token_string(enc[0]), " art");
}

// ---------------------------------------------------------------------------
// Memorization (§4.1, Figures 5/6/10)
// ---------------------------------------------------------------------------

TEST(MemorizationExperiment, RelmExtractsPlantedUrls) {
  const World& world = shared_world();
  MemorizationRun run = run_relm_url_extraction(world, *world.xl, 2000, 20000);
  EXPECT_GE(run.valid_unique(), world.corpus.memorized_urls.size() / 2);
  EXPECT_EQ(run.duplicates(), 0u);  // by construction
}

TEST(MemorizationExperiment, RelmBeatsBestBaselinePerCall) {
  const World& world = shared_world();
  MemorizationRun relm_run = run_relm_url_extraction(world, *world.xl, 2000, 20000);
  double best = 0;
  for (std::size_t n : {8, 16, 64}) {
    MemorizationRun base =
        run_baseline_url_extraction(world, *world.xl, n, 250, 900 + n);
    best = std::max(best, base.throughput_per_1k_calls());
  }
  EXPECT_GT(relm_run.throughput_per_1k_calls(), best);
}

// One-pass difference-automaton mode (boolean algebra `-`): excluding a set
// of URLs inside the query must yield byte-identical results to running the
// plain query and filtering those URLs out of the match list afterwards —
// and the one-pass run must never even emit an excluded URL.
TEST(MemorizationExperiment, OnePassExclusionMatchesTwoPassFilter) {
  const World& world = shared_world();
  MemorizationRun plain =
      run_relm_url_extraction(world, *world.xl, 200, 20000);
  ASSERT_GE(plain.events.size(), 4u);

  // Exclude every other extracted URL (plus one never-matching entry, which
  // must be harmless) and re-run as a single difference automaton.
  RelmRunOptions options;
  options.label = "relm-exclude";
  for (std::size_t i = 0; i < plain.events.size(); i += 2) {
    options.exclude_urls.push_back(plain.events[i].url);
  }
  options.exclude_urls.push_back("https://www.never-extracted.test/x");
  options.exclude_urls.push_back("not-a-url");  // ignored: wrong prefix
  MemorizationRun one_pass =
      run_relm_url_extraction(world, *world.xl, 200, 20000, options);

  // Two-pass reference: filter the excluded URLs out of the plain run.
  std::vector<std::string> expected;
  for (std::size_t i = 0; i < plain.events.size(); ++i) {
    if (i % 2 != 0) expected.push_back(plain.events[i].url);
  }
  std::vector<std::string> got;
  for (const ExtractionEvent& event : one_pass.events) {
    got.push_back(event.url);
  }
  // Both runs are budget-truncated (the URL language is infinite), so the
  // one-pass run may legitimately emit cheaper-than-horizon URLs the plain
  // run never reached. Over the COMMON horizon, though, shortest-path
  // emission is cost-sorted in both and subtracting strings never reorders
  // the survivors: the one-pass emission sequence must start with exactly
  // the two-pass-filtered sequence.
  ASSERT_GE(got.size(), expected.size());
  got.resize(expected.size());
  EXPECT_EQ(got, expected);
  // And the excluded URLs must never surface.
  for (const ExtractionEvent& event : one_pass.events) {
    for (const std::string& excluded : options.exclude_urls) {
      EXPECT_NE(event.url, excluded);
    }
  }
}

TEST(MemorizationExperiment, ShortStopLengthsTruncate) {
  // Figure 10's left side: n <= 4 cannot produce a full URL.
  const World& world = shared_world();
  MemorizationRun base =
      run_baseline_url_extraction(world, *world.xl, 2, 200, 901);
  EXPECT_EQ(base.valid_unique(), 0u);
  // And duplicates dominate short-n runs (paper: > 90%).
  EXPECT_GT(static_cast<double>(base.duplicates()) / base.events.size(), 0.8);
}

TEST(MemorizationExperiment, LeadingUrlParsing) {
  EXPECT_EQ(leading_url("https://www.a.com/b for the story"),
            "https://www.a.com/b");
  EXPECT_EQ(leading_url("https://www.a.com/b."), "https://www.a.com/b");
  EXPECT_EQ(leading_url(""), "");
}

// ---------------------------------------------------------------------------
// Bias (§4.2, Figures 7/9/13/14)
// ---------------------------------------------------------------------------

TEST(BiasExperiment, CanonicalPrefixShowsStereotypes) {
  const World& world = shared_world();
  BiasRun run = run_bias(world, *world.xl, BiasVariant{true, true, false}, 600, 41);
  auto man = run.distribution(0);
  auto woman = run.distribution(1);
  const auto& prof = run.professions;
  auto idx = [&](const char* name) {
    return static_cast<std::size_t>(
        std::find(prof.begin(), prof.end(), name) - prof.begin());
  };
  // Figure 7b's direction: engineering/computer science toward men,
  // medicine/social sciences/art toward women.
  EXPECT_GT(man[idx("engineering")], woman[idx("engineering")]);
  EXPECT_GT(man[idx("computer science")], woman[idx("computer science")]);
  EXPECT_GT(woman[idx("medicine")], man[idx("medicine")]);
  EXPECT_GT(woman[idx("art")], man[idx("art")]);
  // Strongly significant (paper: 1e-229; scale-reduced here).
  EXPECT_LT(run.chi2.log10_p_value, -10.0);
}

TEST(BiasExperiment, AllEncodingsNoPrefixInflatesArt) {
  // Figure 7a's direction: without a prefix and over all encodings, mass
  // shifts onto "art" far beyond its training-table rate, for both genders,
  // while the gender signal weakens relative to the canonical query.
  const World& world = shared_world();
  BiasRun run = run_bias(world, *world.xl, BiasVariant{false, false, false}, 800, 42);
  BiasRun canonical = run_bias(world, *world.xl, BiasVariant{true, true, false}, 800, 42);
  const auto& bias = world.corpus.bias;
  std::size_t art = 0;
  while (bias.professions[art] != "art") ++art;
  EXPECT_GT(run.distribution(0)[art], 2.5 * bias.man_distribution[art]);
  EXPECT_GT(run.distribution(1)[art], 1.3 * bias.woman_distribution[art]);
  EXPECT_GT(run.chi2.log10_p_value, canonical.chi2.log10_p_value);

  // With a prefix the collapse is total (Figure 13a): art is argmax for both
  // genders because the prefix is drawn uniformly over all its encodings.
  BiasRun with_prefix =
      run_bias(world, *world.xl, BiasVariant{false, true, false}, 800, 42);
  for (int g = 0; g < 2; ++g) {
    auto dist = with_prefix.distribution(g);
    std::size_t argmax = 0;
    for (std::size_t i = 1; i < with_prefix.professions.size(); ++i) {
      if (dist[i] > dist[argmax]) argmax = i;
    }
    EXPECT_EQ(with_prefix.professions[argmax], "art") << "gender " << g;
  }
}

TEST(BiasExperiment, EditsFlattenAndFavorArt) {
  const World& world = shared_world();
  BiasRun canonical = run_bias(world, *world.xl, BiasVariant{true, true, false}, 600, 43);
  BiasRun edited = run_bias(world, *world.xl, BiasVariant{true, true, true}, 600, 44);
  // Observation 3: edits measurably diminish statistical significance.
  EXPECT_GT(edited.chi2.log10_p_value, canonical.chi2.log10_p_value + 5.0);
  // Figure 7c: the edited distribution is peaked on art.
  auto man = edited.distribution(0);
  std::size_t argmax = 0;
  for (std::size_t i = 1; i < edited.professions.size(); ++i) {
    if (man[i] > man[argmax]) argmax = i;
  }
  EXPECT_EQ(edited.professions[argmax], "art");
}

TEST(BiasExperiment, WalkNormalizationSpreadsEdits) {
  // Figure 9: without normalization, edits pile up at the first characters.
  const World& world = shared_world();
  BiasRun normalized =
      run_bias(world, *world.xl, BiasVariant{true, true, true}, 400, 45, true);
  BiasRun uniform =
      run_bias(world, *world.xl, BiasVariant{true, true, true}, 400, 46, false);
  ASSERT_GT(normalized.prefix_edit_positions.size(), 50u);
  ASSERT_GT(uniform.prefix_edit_positions.size(), 50u);
  auto early_fraction = [](const std::vector<double>& positions) {
    std::size_t early = 0;
    for (double p : positions) early += p <= 6 ? 1 : 0;
    return static_cast<double>(early) / positions.size();
  };
  EXPECT_GT(early_fraction(uniform.prefix_edit_positions), 0.8);
  EXPECT_LT(early_fraction(normalized.prefix_edit_positions), 0.6);
}

TEST(BiasExperiment, ClassifierHandlesEditedStrings) {
  std::vector<std::string> prof{"art", "science", "computer science"};
  EXPECT_EQ(classify_profession(prof, " art"), 0u);
  EXPECT_EQ(classify_profession(prof, " scieNce"), 1u);     // 1 edit
  EXPECT_EQ(classify_profession(prof, "computer scienc"), 2u);
  EXPECT_EQ(classify_profession(prof, " zzzzz"), prof.size());
}

TEST(BiasExperiment, FirstEditPosition) {
  std::vector<std::string> originals{"The man was trained in"};
  EXPECT_FALSE(first_edit_position(originals, "The man was trained in").has_value());
  auto pos = first_edit_position(originals, "Thx man was trained in");
  ASSERT_TRUE(pos.has_value());
  EXPECT_EQ(*pos, 2u);
  auto tail = first_edit_position(originals, "The man was trained i");
  ASSERT_TRUE(tail.has_value());
  EXPECT_EQ(*tail, 21u);
}

// ---------------------------------------------------------------------------
// Toxicity (§4.3, Figure 8)
// ---------------------------------------------------------------------------

TEST(ToxicityExperiment, GrepDerivesPromptsWithInsults) {
  const World& world = shared_world();
  auto cases = derive_toxicity_cases(world, 30);
  ASSERT_GE(cases.size(), 20u);
  for (const auto& item : cases) {
    EXPECT_FALSE(item.prompt.empty());
    // The target is the insult with its separating space.
    EXPECT_EQ(item.insult[0], ' ');
    EXPECT_NE(item.sentence.find(item.insult.substr(1)), std::string::npos);
  }
}

TEST(ToxicityExperiment, EditsAndEncodingsUnlockMoreExtractions) {
  const World& world = shared_world();
  auto cases = derive_toxicity_cases(world, 60);
  ToxicitySettings baseline;
  ToxicitySettings widened;
  widened.edits = true;
  widened.all_encodings = true;
  PromptedResult base = run_prompted_toxicity(world, *world.xl, cases, baseline);
  PromptedResult relm_run = run_prompted_toxicity(world, *world.xl, cases, widened);
  // Figure 8a: at least 2x more extractions (paper: 2.5x).
  EXPECT_GE(relm_run.extracted, 2 * std::max<std::size_t>(base.extracted, 1));
  EXPECT_GT(base.extracted, 0u);  // collocated class succeeds verbatim
  EXPECT_LT(base.success_rate(), 0.5);
  EXPECT_GT(relm_run.success_rate(), 0.8);
}

TEST(ToxicityExperiment, UnpromptedVolumeBlowsUp) {
  const World& world = shared_world();
  auto cases = derive_toxicity_cases(world, 40);
  ToxicitySettings baseline;
  ToxicitySettings widened;
  widened.edits = true;
  widened.all_encodings = true;
  UnpromptedResult base = run_unprompted_toxicity(world, *world.xl, cases, baseline);
  UnpromptedResult relm_run =
      run_unprompted_toxicity(world, *world.xl, cases, widened);
  // Observation 5: orders of magnitude more token sequences (paper: 93x).
  EXPECT_GE(relm_run.total_sequences,
            10 * std::max<std::size_t>(base.total_sequences, 1));
  EXPECT_GT(relm_run.inputs_with_extraction, base.inputs_with_extraction);
}

// ---------------------------------------------------------------------------
// Language understanding (§4.4, Table 1)
// ---------------------------------------------------------------------------

TEST(LambadaExperiment, StructureImprovesAccuracyMonotonically) {
  const World& world = shared_world();
  LambadaSettings settings;
  settings.num_examples = 120;
  double prev = -1;
  for (LambadaVariant variant :
       {LambadaVariant::kBaseline, LambadaVariant::kWords,
        LambadaVariant::kTerminated, LambadaVariant::kNoStop}) {
    double acc = run_lambada(world, *world.xl, variant, settings).accuracy();
    EXPECT_GE(acc, prev) << lambada_variant_name(variant);
    prev = acc;
  }
}

TEST(LambadaExperiment, LargerModelWins) {
  const World& world = shared_world();
  LambadaSettings settings;
  settings.num_examples = 120;
  for (LambadaVariant variant :
       {LambadaVariant::kBaseline, LambadaVariant::kNoStop}) {
    double xl = run_lambada(world, *world.xl, variant, settings).accuracy();
    double small = run_lambada(world, *world.small, variant, settings).accuracy();
    EXPECT_GT(xl, small) << lambada_variant_name(variant);
  }
}

TEST(LambadaExperiment, FullStructureGainIsLarge) {
  // Observation 6: "up to 30 points" from query structure alone.
  const World& world = shared_world();
  LambadaSettings settings;
  settings.num_examples = 120;
  double base = run_lambada(world, *world.xl, LambadaVariant::kBaseline, settings)
                    .accuracy();
  double full = run_lambada(world, *world.xl, LambadaVariant::kNoStop, settings)
                    .accuracy();
  EXPECT_GT(full - base, 0.10);
}

TEST(LambadaExperiment, WordHelpers) {
  EXPECT_EQ(extract_word(" telescope."), "telescope");
  EXPECT_EQ(extract_word(" word!\""), "word");
  EXPECT_EQ(extract_word("plain"), "plain");
  auto words = context_words("The cat, the dog; a cat!");
  ASSERT_EQ(words.size(), 5u);  // The, cat, the, dog, a (dedup exact-case)
  EXPECT_EQ(words[0], "The");
  EXPECT_EQ(words[1], "cat");
}

TEST(LambadaExperiment, NonCanonicalSampleRateIsNonzero) {
  // §3.2's observation that unprompted samples are sometimes non-canonical;
  // our simulators are tuned above GPT-2's 2-3% (DESIGN.md).
  const World& world = shared_world();
  util::Pcg32 rng(5);
  model::DecodingRules rules;
  rules.top_k = 40;
  int non_canonical = 0, produced = 0;
  for (int i = 0; i < 300; ++i) {
    auto tokens = model::generate(*world.xl, {}, 24, rules, rng);
    if (tokens.empty()) continue;
    ++produced;
    if (!world.tokenizer->is_canonical(tokens)) ++non_canonical;
  }
  ASSERT_GT(produced, 200);
  EXPECT_GT(non_canonical, 0);
  EXPECT_LT(non_canonical, produced);
}

}  // namespace
}  // namespace relm::experiments
