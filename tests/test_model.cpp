#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "model/decoding.hpp"
#include "model/ngram_model.hpp"
#include "tokenizer/bpe.hpp"
#include "util/errors.hpp"
#include "util/rng.hpp"

namespace relm::model {
namespace {

std::string training_corpus() {
  std::string corpus;
  for (int i = 0; i < 40; ++i) {
    corpus += "The cat sat on the mat. ";
    corpus += "The dog ran to the park. ";
    corpus += "https://www.example.com/path ";
  }
  return corpus;
}

struct Fixture {
  tokenizer::BpeTokenizer tok;
  std::shared_ptr<NgramModel> model;

  Fixture() : tok(tokenizer::BpeTokenizer::train(training_corpus(), {})) {
    NgramModel::Config config;
    config.order = 4;
    config.alpha = 0.3;
    std::vector<std::string> docs;
    for (int i = 0; i < 20; ++i) {
      docs.push_back("The cat sat on the mat.");
      docs.push_back("The dog ran to the park.");
      docs.push_back("https://www.example.com/path");
    }
    model = NgramModel::train(tok, docs, config);
  }
};

double logsumexp(std::span<const double> v) {
  double m = *std::max_element(v.begin(), v.end());
  double z = 0;
  for (double x : v) z += std::exp(x - m);
  return m + std::log(z);
}

TEST(NgramModel, LogProbsNormalize) {
  Fixture f;
  std::vector<tokenizer::TokenId> ctx = f.tok.encode("The cat");
  auto lp = f.model->next_log_probs(ctx);
  ASSERT_EQ(lp.size(), f.tok.vocab_size());
  EXPECT_NEAR(logsumexp(lp), 0.0, 1e-9);
}

TEST(NgramModel, EmptyContextNormalizes) {
  Fixture f;
  auto lp = f.model->next_log_probs({});
  EXPECT_NEAR(logsumexp(lp), 0.0, 1e-9);
}

TEST(NgramModel, TrainedContinuationPreferred) {
  Fixture f;
  // After "The cat sat on the" the next canonical token should be that of
  // " mat" (or its first sub-token), far more likely than a random token.
  auto ctx = f.tok.encode("The cat sat on the");
  auto lp = f.model->next_log_probs(ctx);
  auto continuation = f.tok.encode(" mat");
  ASSERT_FALSE(continuation.empty());
  double trained = lp[continuation[0]];
  double uniform = -std::log(static_cast<double>(f.tok.vocab_size()));
  EXPECT_GT(trained, uniform + 2.0);  // much more likely than chance
}

TEST(NgramModel, MemorizationOfTrainingSpans) {
  Fixture f;
  // Whole-sequence log prob of a memorized string beats a novel permutation.
  auto ctx = f.tok.encode("The cat");
  double memorized = f.model->sequence_log_prob(ctx, f.tok.encode(" sat on the mat."));
  double novel = f.model->sequence_log_prob(ctx, f.tok.encode(" ran on the park."));
  EXPECT_GT(memorized, novel);
}

TEST(NgramModel, HigherOrderMemorizesHarder) {
  Fixture f;
  NgramModel::Config small_config;
  small_config.order = 2;
  small_config.alpha = 1.5;
  std::vector<std::string> docs(20, "The cat sat on the mat.");
  auto small = NgramModel::train(f.tok, docs, small_config);

  NgramModel::Config xl_config;
  xl_config.order = 5;
  xl_config.alpha = 0.1;
  auto xl = NgramModel::train(f.tok, docs, xl_config);

  auto ctx = f.tok.encode("The cat sat on");
  auto target = f.tok.encode(" the mat.");
  EXPECT_GT(xl->sequence_log_prob(ctx, target), small->sequence_log_prob(ctx, target));
}

TEST(NgramModel, EosLikelyAtDocumentEnd) {
  Fixture f;
  auto ctx = f.tok.encode("The cat sat on the mat.");
  auto lp = f.model->next_log_probs(ctx);
  double uniform = -std::log(static_cast<double>(f.tok.vocab_size()));
  EXPECT_GT(lp[f.model->eos()], uniform);
}

TEST(NgramModel, RejectsZeroOrder) {
  NgramModel::Config config;
  config.order = 0;
  EXPECT_THROW(
      NgramModel::train_on_tokens(10, 0, {{1, 2, 3}}, config), relm::Error);
}

TEST(UniformModel, AllTokensEqual) {
  UniformModel model(10, 9);
  auto lp = model.next_log_probs({});
  for (double v : lp) EXPECT_DOUBLE_EQ(v, -std::log(10.0));
  EXPECT_NEAR(logsumexp(lp), 0.0, 1e-12);
}

TEST(CachingModel, HitsAfterRepeats) {
  Fixture f;
  CachingModel cached(f.model);
  auto ctx = f.tok.encode("The cat");
  auto a = cached.next_log_probs(ctx);
  auto b = cached.next_log_probs(ctx);
  EXPECT_EQ(a, b);
  EXPECT_EQ(cached.hits(), 1u);
  EXPECT_EQ(cached.misses(), 1u);
}

TEST(CachingModel, DistinguishesContexts) {
  Fixture f;
  CachingModel cached(f.model);
  auto a = cached.next_log_probs(f.tok.encode("The cat"));
  auto b = cached.next_log_probs(f.tok.encode("The dog"));
  EXPECT_NE(a, b);
  EXPECT_EQ(cached.hits(), 0u);
}

TEST(NgramModel, SuffixEquivalence) {
  // The model's distribution depends on at most order-1 trailing tokens:
  // next_log_probs(ctx) must equal next_log_probs(suffix) exactly. This is
  // the contract relevant_context_length() advertises and the suffix-keyed
  // cache relies on.
  Fixture f;
  ASSERT_EQ(f.model->relevant_context_length(), f.model->config().order - 1);
  auto ctx = f.tok.encode("The dog ran to the park. The cat sat on the");
  ASSERT_GT(ctx.size(), f.model->relevant_context_length());
  std::vector<tokenizer::TokenId> suffix(
      ctx.end() - static_cast<std::ptrdiff_t>(f.model->relevant_context_length()),
      ctx.end());
  EXPECT_EQ(f.model->next_log_probs(ctx), f.model->next_log_probs(suffix));

  // relevant_suffix() computes exactly that view.
  auto view = relevant_suffix(*f.model, ctx);
  EXPECT_EQ(std::vector<tokenizer::TokenId>(view.begin(), view.end()), suffix);
}

TEST(CachingModel, SuffixKeyedHits) {
  // Distinct full contexts sharing their last order-1 tokens map to one
  // cache entry: the second lookup is a hit, not a second miss.
  Fixture f;
  CachingModel cached(f.model);
  auto a = cached.next_log_probs(
      f.tok.encode("The dog ran to the park. The cat sat on the"));
  auto b = cached.next_log_probs(f.tok.encode("The dog sat on the"));
  EXPECT_EQ(a, b);
  EXPECT_EQ(cached.hits(), 1u);
  EXPECT_EQ(cached.misses(), 1u);
  EXPECT_EQ(cached.entries(), 1u);
}

TEST(CachingModel, EntryCountNeverExceedsCapacity) {
  // Regression: the old half-table purge keyed on hash buckets, so the
  // table could hold up to 2x capacity entries. The LRU bounds *entries*.
  Fixture f;
  const std::size_t capacity = 10;
  CachingModel cached(f.model, capacity);
  EXPECT_EQ(cached.capacity(), capacity);
  for (tokenizer::TokenId t = 0; t < 100; ++t) {
    std::vector<tokenizer::TokenId> ctx = {
        t, static_cast<tokenizer::TokenId>(t + 1)};
    cached.next_log_probs(ctx);
    EXPECT_LE(cached.entries(), capacity);
  }
  EXPECT_EQ(cached.misses(), 100u);
  // Every eviction and every resident entry came from a miss (with a
  // capacity below the shard count, some inserts are dropped outright, so
  // this is an inequality).
  EXPECT_LE(cached.evictions() + cached.entries(), cached.misses());
  EXPECT_GT(cached.evictions(), 0u);
}

TEST(CachingModel, BatchDeduplicatesMisses) {
  // A batch with repeated (suffix-equivalent) contexts evaluates each
  // distinct suffix once; duplicates count as hits.
  Fixture f;
  CachingModel cached(f.model);
  auto ctx_a = f.tok.encode("The cat sat on the");
  auto ctx_b = f.tok.encode("The dog ran to the");
  std::vector<std::vector<tokenizer::TokenId>> batch = {ctx_a, ctx_b, ctx_a,
                                                        ctx_b, ctx_a};
  auto out = cached.next_log_probs_batch(batch);
  ASSERT_EQ(out.size(), batch.size());
  EXPECT_EQ(out[0], out[2]);
  EXPECT_EQ(out[0], out[4]);
  EXPECT_EQ(out[1], out[3]);
  EXPECT_EQ(out[0], f.model->next_log_probs(ctx_a));
  EXPECT_EQ(cached.misses(), 2u);
  EXPECT_EQ(cached.hits(), 3u);

  auto stats = cached.cache_stats();
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->hits, 3u);
  EXPECT_EQ(stats->misses, 2u);
  EXPECT_EQ(stats->entries, 2u);
  EXPECT_EQ(stats->evictions, 0u);

  // The inner model reports no cache.
  EXPECT_FALSE(f.model->cache_stats().has_value());
}

// ---------------------------------------------------------------------------
// Decoding rules
// ---------------------------------------------------------------------------

TEST(Decoding, TopKKeepsExactlyK) {
  std::vector<double> lp{std::log(0.4), std::log(0.3), std::log(0.2), std::log(0.1)};
  DecodingRules rules;
  rules.top_k = 2;
  auto mask = allowed_tokens(lp, rules);
  EXPECT_TRUE(mask[0]);
  EXPECT_TRUE(mask[1]);
  EXPECT_FALSE(mask[2]);
  EXPECT_FALSE(mask[3]);
}

TEST(Decoding, TopKLargerThanVocabAllowsAll) {
  std::vector<double> lp{std::log(0.5), std::log(0.5)};
  DecodingRules rules;
  rules.top_k = 40;
  auto mask = allowed_tokens(lp, rules);
  EXPECT_TRUE(mask[0]);
  EXPECT_TRUE(mask[1]);
}

TEST(Decoding, TopPNucleus) {
  std::vector<double> lp{std::log(0.5), std::log(0.3), std::log(0.15), std::log(0.05)};
  DecodingRules rules;
  rules.top_p = 0.8;
  auto mask = allowed_tokens(lp, rules);
  EXPECT_TRUE(mask[0]);
  EXPECT_TRUE(mask[1]);  // cumulative hits 0.8 here
  EXPECT_FALSE(mask[2]);
  EXPECT_FALSE(mask[3]);
}

TEST(Decoding, UnrestrictedAllowsEverything) {
  std::vector<double> lp{std::log(0.999), std::log(0.001)};
  DecodingRules rules;
  auto mask = allowed_tokens(lp, rules);
  EXPECT_TRUE(mask[0]);
  EXPECT_TRUE(mask[1]);
  EXPECT_TRUE(rules.unrestricted());
}

TEST(Decoding, InvalidParamsThrow) {
  std::vector<double> lp{0.0};
  DecodingRules bad_k;
  bad_k.top_k = 0;
  EXPECT_THROW(allowed_tokens(lp, bad_k), relm::Error);
  DecodingRules bad_p;
  bad_p.top_p = 1.5;
  EXPECT_THROW(allowed_tokens(lp, bad_p), relm::Error);
  EXPECT_THROW(apply_temperature(lp, 0.0), relm::Error);
}

TEST(Decoding, TemperatureSharpens) {
  std::vector<double> lp{std::log(0.6), std::log(0.4)};
  auto cold = apply_temperature(lp, 0.5);
  EXPECT_GT(cold[0], lp[0]);  // more peaked
  EXPECT_NEAR(logsumexp(cold), 0.0, 1e-9);
  auto hot = apply_temperature(lp, 2.0);
  EXPECT_LT(hot[0], lp[0]);  // flatter
}

TEST(Decoding, SampleTokenHonorsMask) {
  util::Pcg32 rng(11);
  std::vector<double> lp{std::log(0.9), std::log(0.05), std::log(0.05)};
  util::TokenBitset mask(3, true);
  mask.reset(0);
  for (int i = 0; i < 200; ++i) {
    tokenizer::TokenId t = sample_token(lp, mask, rng);
    EXPECT_NE(t, 0u);
    EXPECT_LT(t, 3u);
  }
}

TEST(Decoding, SampleTokenZeroMass) {
  util::Pcg32 rng(11);
  std::vector<double> lp{std::log(1.0)};
  util::TokenBitset mask(1, false);
  EXPECT_EQ(sample_token(lp, mask, rng), 1u);
}

TEST(Decoding, SamplingFollowsDistribution) {
  util::Pcg32 rng(17);
  std::vector<double> lp{std::log(0.75), std::log(0.25)};
  int zero = 0;
  const int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    if (sample_token(lp, {}, rng) == 0) ++zero;
  }
  EXPECT_NEAR(static_cast<double>(zero) / kTrials, 0.75, 0.02);
}

TEST(Decoding, GenerateStopsAtEos) {
  Fixture f;
  util::Pcg32 rng(23);
  DecodingRules rules;
  rules.top_k = 5;
  auto ctx = f.tok.encode("The cat sat on the mat.");
  bool saw_eos_stop = false;
  for (int i = 0; i < 50 && !saw_eos_stop; ++i) {
    auto out = generate(*f.model, ctx, 32, rules, rng);
    if (!out.empty() && out.back() == f.model->eos() && out.size() < 32) {
      saw_eos_stop = true;
    }
  }
  EXPECT_TRUE(saw_eos_stop);
}

TEST(Decoding, GenerateRespectsLengthBudget) {
  Fixture f;
  util::Pcg32 rng(29);
  DecodingRules rules;
  auto out = generate(*f.model, {}, 7, rules, rng, /*stop_at_eos=*/false);
  EXPECT_LE(out.size(), 7u);
}

TEST(Decoding, GeneratedTextOftenEchoesTraining) {
  // Sanity link between model and decoding: with a sharp model and greedy-ish
  // top-k, generations starting from a training prefix reproduce corpus text.
  Fixture f;
  util::Pcg32 rng(31);
  DecodingRules rules;
  rules.top_k = 1;
  auto ctx = f.tok.encode("The cat sat");
  auto out = generate(*f.model, ctx, 8, rules, rng);
  std::vector<tokenizer::TokenId> text_tokens;
  for (auto t : out) {
    if (t != f.model->eos()) text_tokens.push_back(t);
  }
  std::string text = f.tok.decode(text_tokens);
  EXPECT_EQ(text.substr(0, 11), " on the mat");
}

}  // namespace
}  // namespace relm::model

namespace relm::model {
namespace {

TEST(NgramModel, NonCanonicalTrainingGivesAlternativeEncodingsMass) {
  tokenizer::BpeTokenizer tok =
      tokenizer::BpeTokenizer::train(
          [] {
            std::string s;
            for (int i = 0; i < 60; ++i) s += "The cat sat on the mat. ";
            return s;
          }(),
          {});
  std::vector<std::string> docs(40, "The cat sat on the mat.");

  NgramModel::Config canonical_only;
  canonical_only.order = 3;
  auto plain = NgramModel::train(tok, docs, canonical_only);

  NgramModel::Config mixed = canonical_only;
  mixed.non_canonical_document_rate = 0.5;
  auto noisy = NgramModel::train(tok, docs, mixed);

  // Probability of a non-canonical spelling of "The": byte "T" then "h"...
  auto t_tok = *tok.find("T");
  auto ctx = std::vector<tokenizer::TokenId>{};
  double plain_p = plain->next_log_probs(ctx)[t_tok];
  double noisy_p = noisy->next_log_probs(ctx)[t_tok];
  EXPECT_GT(noisy_p, plain_p);
}

TEST(NgramModel, SubwordPriorDocumentsAlwaysRandomized) {
  tokenizer::BpeTokenizer tok =
      tokenizer::BpeTokenizer::train(
          [] {
            std::string s;
            for (int i = 0; i < 60; ++i) s += "The cat sat on the mat. ";
            return s;
          }(),
          {});
  NgramModel::Config config;
  config.order = 3;
  auto model = NgramModel::train(tok, {}, config,
                                 std::vector<std::string>(40, "The cat sat."));
  // The model has contexts (it trained on something).
  EXPECT_GT(model->num_contexts(), 0u);
}

TEST(NgramModel, EmptyContextAnchorsToDocumentStart) {
  tokenizer::BpeTokenizer tok =
      tokenizer::BpeTokenizer::train(
          [] {
            std::string s;
            for (int i = 0; i < 60; ++i) s += "Zebras run far. The cat sat. ";
            return s;
          }(),
          {});
  NgramModel::Config config;
  config.order = 3;
  // Documents always START with "Zebras" but contain "The" more often overall.
  std::vector<std::string> docs(30, "Zebras eat. The cat. The dog. The mat.");
  auto model = NgramModel::train(tok, docs, config);
  auto lp = model->next_log_probs({});
  auto zeb = tok.encode("Zebras")[0];
  auto the = tok.encode("The")[0];
  // Document-anchored: the document-initial token dominates the globally
  // frequent one.
  EXPECT_GT(lp[zeb], lp[the]);
}

}  // namespace
}  // namespace relm::model
