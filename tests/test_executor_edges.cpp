// Executor edge cases surfaced (or made precisely testable) by the
// differential fuzz harness: empty intersections, EOS-only matches, budget
// exhaustion mid-frontier, degenerate vocabularies, canonical-vs-greedy
// tokenization, and minimized regressions for the three executor bugs the
// fuzzer found (beam text-dedup keeping the wrong path, beam require_eos at
// the sequence limit, sampler require_eos termination).

#include <cmath>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/compiled_query.hpp"
#include "core/executor.hpp"
#include "model/ngram_model.hpp"
#include "testing/generators.hpp"
#include "testing/oracle.hpp"
#include "tokenizer/bpe.hpp"
#include "util/thread_pool.hpp"

namespace relm::core {
namespace {

using tokenizer::TokenId;

// The tokenizer lives behind a shared_ptr because CompiledQuery holds a
// pointer to the tokenizer it was compiled against — it must outlive the
// compile and stay at a stable address.
struct Fixture {
  std::shared_ptr<tokenizer::BpeTokenizer> tok;
  std::shared_ptr<model::LanguageModel> model;
  SimpleSearchQuery query;
  CompiledQuery compiled;
};

Fixture uniform_fixture(std::vector<std::string> vocab, const std::string& body,
                        SimpleSearchQuery base = {}) {
  const std::size_t vocab_size = vocab.size();
  auto tok = std::make_shared<tokenizer::BpeTokenizer>(
      tokenizer::BpeTokenizer::from_vocab(std::move(vocab)));
  auto model = std::make_shared<model::UniformModel>(vocab_size, 0, 24);
  base.query_string = {body, ""};
  CompiledQuery compiled = CompiledQuery::compile(base, *tok);
  return {std::move(tok), std::move(model), std::move(base), std::move(compiled)};
}

// Runs all three executors and asserts each against the brute-force oracle.
void expect_all_executors_match_oracle(const Fixture& f) {
  const testing::Oracle oracle =
      testing::build_oracle(*f.model, f.compiled, f.query);
  ASSERT_FALSE(oracle.truncated);

  SimpleSearchQuery query = f.query;
  query.max_results = oracle.by_text.size() + 4;
  query.beam_width = std::max<std::size_t>(oracle.max_width, 1);
  ShortestPathSearch shortest(*f.model, f.compiled, query);
  EXPECT_EQ(testing::compare_results(oracle, shortest.all(), 1e-9, true),
            std::nullopt);
  BeamSearch beam(*f.model, f.compiled, query);
  EXPECT_EQ(testing::compare_results(oracle, beam.run(), 1e-9, true),
            std::nullopt);
  query.num_samples = 8;
  RandomSampler sampler(*f.model, f.compiled, query, /*seed=*/11);
  EXPECT_EQ(testing::check_samples(*f.model, f.compiled, query,
                                   sampler.sample_all(), 1e-9),
            std::nullopt);
}

// --------------------------------------------------------------------------
// Empty intersection: the pattern needs more tokens than the budget allows,
// so the compiled language within the sequence limit is empty. Every
// traversal must terminate cleanly with zero matches (and the sampler must
// give up rather than loop).
TEST(ExecutorEdges, EmptyIntersectionYieldsNoResults) {
  SimpleSearchQuery base;
  base.sequence_length = 3;
  Fixture f = uniform_fixture({"", "a"}, "a{5}", base);

  ShortestPathSearch shortest(*f.model, f.compiled, f.query);
  EXPECT_TRUE(shortest.all().empty());
  BeamSearch beam(*f.model, f.compiled, f.query);
  EXPECT_TRUE(beam.run().empty());
  SimpleSearchQuery query = f.query;
  query.num_samples = 3;
  RandomSampler sampler(*f.model, f.compiled, query, 5);
  EXPECT_TRUE(sampler.sample_all().empty());
}

// Statically empty language (boolean algebra can produce provably-empty
// queries like `a&!a`): the compile marks the artifact empty_language and
// every executor must return immediately WITHOUT a single model call — the
// fast path exists precisely so a vacuous query costs no inference.
class CallCountingModel : public model::LanguageModel {
 public:
  std::size_t vocab_size() const override { return 2; }
  TokenId eos() const override { return 0; }
  std::size_t max_sequence_length() const override { return 24; }
  std::vector<double> next_log_probs(std::span<const TokenId>) const override {
    ++calls;
    return {std::log(0.5), std::log(0.5)};
  }
  mutable std::size_t calls = 0;
};

TEST(ExecutorEdges, EmptyLanguageSkipsModelEntirely) {
  tokenizer::BpeTokenizer tok = tokenizer::BpeTokenizer::from_vocab({"", "a"});
  CallCountingModel model;
  SimpleSearchQuery query;
  query.query_string = {"a&!a", ""};
  query.sequence_length = 6;
  query.num_samples = 5;
  const CompiledQuery compiled = CompiledQuery::compile(query, tok);
  ASSERT_TRUE(compiled.empty_language());

  ShortestPathSearch shortest(model, compiled, query);
  EXPECT_TRUE(shortest.all().empty());
  BeamSearch beam(model, compiled, query);
  EXPECT_TRUE(beam.run().empty());
  RandomSampler sampler(model, compiled, query, 7);
  EXPECT_TRUE(sampler.sample_all().empty());
  EXPECT_EQ(model.calls, 0u);

  // A non-empty query through the same code path still works (the flag is
  // per-artifact, not sticky global state).
  SimpleSearchQuery live = query;
  live.query_string = {"a", ""};
  const CompiledQuery live_compiled = CompiledQuery::compile(live, tok);
  EXPECT_FALSE(live_compiled.empty_language());
  ShortestPathSearch live_search(model, live_compiled, live);
  EXPECT_EQ(live_search.all().size(), 1u);
  EXPECT_GT(model.calls, 0u);
}

// EOS-only match: the body accepts exactly the empty string and EOS is
// required, so the sole result is "" with log_prob = log p(EOS | nothing).
TEST(ExecutorEdges, EosOnlyMatch) {
  SimpleSearchQuery base;
  base.require_eos = true;
  base.sequence_length = 2;
  Fixture f = uniform_fixture({"", "a"}, "()", base);
  const double lp_eos = std::log(0.5);

  ShortestPathSearch shortest(*f.model, f.compiled, f.query);
  const auto results = shortest.all();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].text, "");
  EXPECT_TRUE(results[0].tokens.empty());
  EXPECT_NEAR(results[0].log_prob, lp_eos, 1e-12);

  expect_all_executors_match_oracle(f);
}

// Budget exhaustion mid-frontier: an expansion budget far below what the
// language needs must stop the search cleanly, and whatever WAS emitted must
// be a prefix of the unconstrained emission sequence (Dijkstra order means a
// budget only ever truncates the tail).
TEST(ExecutorEdges, ExpansionBudgetTruncatesCleanly) {
  SimpleSearchQuery base;
  base.sequence_length = 6;
  base.max_results = 100;
  Fixture f = uniform_fixture({"", "a", "b"}, "(a|b)*", base);

  SimpleSearchQuery full_query = f.query;
  ShortestPathSearch full(*f.model, f.compiled, full_query);
  const auto full_results = full.all();
  ASSERT_GT(full_results.size(), 4u);

  SimpleSearchQuery starved_query = f.query;
  starved_query.max_expansions = 3;
  ShortestPathSearch starved(*f.model, f.compiled, starved_query);
  const auto starved_results = starved.all();
  EXPECT_LE(starved.stats().expansions, 3u);
  ASSERT_LT(starved_results.size(), full_results.size());
  for (std::size_t i = 0; i < starved_results.size(); ++i) {
    EXPECT_EQ(starved_results[i].text, full_results[i].text);
    EXPECT_EQ(starved_results[i].log_prob, full_results[i].log_prob);
  }
}

// Single-token vocabulary: EOS plus one real token. Exercises the smallest
// possible logit vectors and the all-mass-on-one-edge sampling path.
TEST(ExecutorEdges, SingleTokenVocab) {
  SimpleSearchQuery base;
  base.sequence_length = 4;
  Fixture f = uniform_fixture({"", "a"}, "a{1,3}", base);
  const testing::Oracle oracle =
      testing::build_oracle(*f.model, f.compiled, f.query);
  ASSERT_EQ(oracle.by_text.size(), 3u);  // a, aa, aaa
  expect_all_executors_match_oracle(f);
}

// Canonical vs greedy tokenization on an ambiguous vocabulary: "abc" has
// three encodings over {a,b,c,ab,bc}. kAllTokens must expose every encoding
// to the traversal (text-dedup then keeps the most probable); kCanonical
// must admit exactly the greedy longest-match path [ab, c].
TEST(ExecutorEdges, CanonicalVersusGreedyTokenization) {
  SimpleSearchQuery base;
  base.sequence_length = 4;
  base.tokenization_strategy = TokenizationStrategy::kAllTokens;
  Fixture all = uniform_fixture({"", "a", "b", "c", "ab", "bc"}, "abc", base);

  const testing::Oracle oracle =
      testing::build_oracle(*all.model, all.compiled, all.query);
  ASSERT_EQ(oracle.by_text.size(), 1u);
  ASSERT_EQ(oracle.paths.size(), 3u);  // [a,b,c], [ab,c], [a,bc]
  // Under a uniform model the two 2-token encodings tie and beat [a,b,c];
  // the deduped winner must be one of them.
  EXPECT_NEAR(oracle.by_text[0].log_prob, 2 * std::log(1.0 / 6.0), 1e-12);
  expect_all_executors_match_oracle(all);

  base.tokenization_strategy = TokenizationStrategy::kCanonicalTokens;
  Fixture canon = uniform_fixture({"", "a", "b", "c", "ab", "bc"}, "abc", base);
  ShortestPathSearch shortest(*canon.model, canon.compiled, canon.query);
  const auto results = shortest.all();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].text, "abc");
  EXPECT_EQ(results[0].tokens, (std::vector<TokenId>{4, 3}));  // [ab, c]
  EXPECT_NEAR(results[0].log_prob, 2 * std::log(1.0 / 6.0), 1e-12);
}

// --------------------------------------------------------------------------
// Regression: beam search text-dedup must keep the MOST PROBABLE token path,
// not the first one found. A one-token encoding completes a step earlier
// than a two-token encoding of the same text, so first-wins dedup locked in
// the wrong log-prob whenever the longer path was more probable.
//
// Model: p(ab) = 0.1 up front, but p(a) * p(b | a) = 0.6 * 0.5 = 0.3.

class TwoStepModel : public model::LanguageModel {
 public:
  std::size_t vocab_size() const override { return 4; }  // "", a, b, ab
  TokenId eos() const override { return 0; }
  std::size_t max_sequence_length() const override { return 8; }
  std::size_t relevant_context_length() const override { return 1; }
  std::vector<double> next_log_probs(std::span<const TokenId> context) const override {
    if (!context.empty() && context.back() == 1) {  // after "a"
      return {std::log(0.2), std::log(0.1), std::log(0.5), std::log(0.2)};
    }
    return {std::log(0.1), std::log(0.6), std::log(0.2), std::log(0.1)};
  }
};

TEST(ExecutorEdges, BeamDedupKeepsMostProbablePath) {
  tokenizer::BpeTokenizer tok =
      tokenizer::BpeTokenizer::from_vocab({"", "a", "b", "ab"});
  TwoStepModel model;
  SimpleSearchQuery query;
  query.query_string = {"ab", ""};
  query.tokenization_strategy = TokenizationStrategy::kAllTokens;
  query.sequence_length = 4;
  query.beam_width = 8;
  const CompiledQuery compiled = CompiledQuery::compile(query, tok);

  BeamSearch beam(model, compiled, query);
  const auto results = beam.run();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].text, "ab");
  EXPECT_EQ(results[0].tokens, (std::vector<TokenId>{1, 2}));  // [a, b]
  EXPECT_NEAR(results[0].log_prob, std::log(0.6 * 0.5), 1e-12);

  // Dijkstra's first-pop-wins gives the same answer; the two must agree.
  ShortestPathSearch shortest(model, compiled, query);
  const auto sp = shortest.all();
  ASSERT_EQ(sp.size(), 1u);
  EXPECT_EQ(sp[0].log_prob, results[0].log_prob);
  EXPECT_EQ(sp[0].tokens, results[0].tokens);
}

// Regression: with expansion_batch > 1, a batched round pops the cheapest
// DISCOVERED nodes — a match can pop before a cheaper encoding of the same
// text is even discovered (its parent sits in the same batch). Matches must
// be held back until provably optimal, or first-wins text dedup locks in
// the wrong log-prob. Here [ab] (p = 0.1) and [a] (p = 0.6) are the round-2
// batch; popping [ab] emits "ab" before [a, b] (p = 0.3) exists.
TEST(ExecutorEdges, BatchedDijkstraHoldsMatchesUntilSettled) {
  tokenizer::BpeTokenizer tok =
      tokenizer::BpeTokenizer::from_vocab({"", "a", "b", "ab"});
  TwoStepModel model;
  SimpleSearchQuery query;
  query.query_string = {"ab", ""};
  query.tokenization_strategy = TokenizationStrategy::kAllTokens;
  query.sequence_length = 4;
  query.expansion_batch_size = 2;
  const CompiledQuery compiled = CompiledQuery::compile(query, tok);

  ShortestPathSearch batched(model, compiled, query);
  const auto results = batched.all();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].tokens, (std::vector<TokenId>{1, 2}));  // [a, b]
  EXPECT_NEAR(results[0].log_prob, std::log(0.6 * 0.5), 1e-12);

  // Batched and strict traversals must produce identical results.
  SimpleSearchQuery strict_query = query;
  strict_query.expansion_batch_size = 1;
  ShortestPathSearch strict(model, compiled, strict_query);
  const auto strict_results = strict.all();
  ASSERT_EQ(strict_results.size(), 1u);
  EXPECT_EQ(strict_results[0].log_prob, results[0].log_prob);
  EXPECT_EQ(strict_results[0].tokens, results[0].tokens);
}

// Regression: with require_eos, a path whose body fills the whole sequence
// budget has no slot left for EOS and is NOT a match. Beam search used to
// emit such paths from its final-survivors pass.
TEST(ExecutorEdges, BeamRequireEosNeedsBudgetSlot) {
  SimpleSearchQuery base;
  base.require_eos = true;
  base.beam_width = 4;
  base.sequence_length = 3;
  Fixture tight = uniform_fixture({"", "a"}, "aaa", base);
  BeamSearch beam_tight(*tight.model, tight.compiled, tight.query);
  EXPECT_TRUE(beam_tight.run().empty());
  ShortestPathSearch sp_tight(*tight.model, tight.compiled, tight.query);
  EXPECT_TRUE(sp_tight.all().empty());

  base.sequence_length = 4;  // now EOS fits
  Fixture roomy = uniform_fixture({"", "a"}, "aaa", base);
  BeamSearch beam_roomy(*roomy.model, roomy.compiled, roomy.query);
  const auto results = beam_roomy.run();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_NEAR(results[0].log_prob, 4 * std::log(0.5), 1e-12);  // aaa + EOS
  expect_all_executors_match_oracle(roomy);
}

// Regression: the sampler must PAY for EOS when the query requires it — stop
// only by drawing EOS under the mask (adding log p(EOS | path)), and treat a
// budget-filling body as a dead end, exactly like the other executors.
TEST(ExecutorEdges, SamplerRequireEosPaysTerminationCost) {
  SimpleSearchQuery base;
  base.require_eos = true;
  base.sequence_length = 2;
  base.num_samples = 6;
  Fixture f = uniform_fixture({"", "a", "b"}, "()", base);

  RandomSampler sampler(*f.model, f.compiled, f.query, 3);
  const auto samples = sampler.sample_all();
  ASSERT_EQ(samples.size(), 6u);
  for (const SearchResult& sample : samples) {
    EXPECT_EQ(sample.text, "");
    EXPECT_NEAR(sample.log_prob, std::log(1.0 / 3.0), 1e-12);
  }
  EXPECT_EQ(testing::check_samples(*f.model, f.compiled, f.query, samples, 1e-9),
            std::nullopt);

  // With the body consuming the entire budget, every attempt dead-ends.
  SimpleSearchQuery tight = f.query;
  tight.query_string = {"aa", ""};
  tight.num_samples = 3;
  const CompiledQuery compiled_tight = CompiledQuery::compile(tight, *f.tok);
  RandomSampler starved(*f.model, compiled_tight, tight, 3);
  EXPECT_TRUE(starved.sample_all().empty());
  EXPECT_GT(starved.stats().sample_dead_ends, 0u);
}

// --------------------------------------------------------------------------
// Async-pipeline edges. The pipeline's scheduling (selection horizon,
// occupancy controller, budget clamp) is a pure function of search state, so
// its OUTPUT must be byte-identical to lockstep at any thread count; only the
// speculative-work counters are allowed to differ from zero.

// Like uniform_fixture but with a skewed ngram model so sibling costs differ
// strictly — uniform models tie at every depth, which hides any scheduling
// behaviour keyed on cost comparisons (horizon clips, waste accounting).
Fixture skewed_fixture(std::vector<std::string> vocab, const std::string& body,
                       SimpleSearchQuery base = {}) {
  const std::size_t vocab_size = vocab.size();
  auto tok = std::make_shared<tokenizer::BpeTokenizer>(
      tokenizer::BpeTokenizer::from_vocab(std::move(vocab)));
  testing::ModelSpec spec;
  spec.kind = testing::ModelSpec::Kind::kNgram;
  spec.vocab_size = vocab_size;
  spec.eos = 0;
  spec.max_sequence_length = 24;
  // Heavily favour token 1 so P(token 1) >> P(token 2) everywhere.
  for (int i = 0; i < 12; ++i) spec.sequences.push_back({1});
  spec.sequences.push_back({2});
  auto model = spec.build();
  base.query_string = {body, ""};
  CompiledQuery compiled = CompiledQuery::compile(base, *tok);
  return {std::move(tok), std::move(model), std::move(base), std::move(compiled)};
}

void expect_exact_match(const std::vector<SearchResult>& got,
                        const std::vector<SearchResult>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].text, want[i].text) << "index " << i;
    EXPECT_EQ(got[i].tokens, want[i].tokens) << "index " << i;
    EXPECT_EQ(got[i].log_prob, want[i].log_prob) << "index " << i;
  }
}

TEST(ExecutorEdges, PipelineMatchesLockstepAcrossThreadCounts) {
  SimpleSearchQuery base;
  base.sequence_length = 6;
  base.max_results = 100;
  Fixture f = uniform_fixture({"", "a", "b"}, "(a|b)*", base);

  SimpleSearchQuery lockstep = f.query;
  lockstep.speculative_expansion = false;
  ShortestPathSearch serial(*f.model, f.compiled, lockstep);
  const auto want = serial.all();
  ASSERT_GT(want.size(), 4u);

  const std::size_t restore = util::ThreadPool::shared().threads();
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                              std::size_t{8}}) {
    util::ThreadPool::set_shared_threads(threads);
    SimpleSearchQuery pipe = f.query;
    pipe.speculative_expansion = true;
    ShortestPathSearch search(*f.model, f.compiled, pipe);
    const auto got = search.all();
    expect_exact_match(got, want);
    EXPECT_GT(search.stats().pump_rounds, 0u) << "threads=" << threads;
  }
  util::ThreadPool::set_shared_threads(restore);
}

// The selection horizon must defer nodes costlier than round_min + horizon:
// with a near-zero horizon and strictly skewed sibling costs, at least one
// selection round clips — and the output is still exactly the lockstep one,
// because clipping only DELAYS an expansion, never changes its result.
TEST(ExecutorEdges, SpeculationHorizonClipsCostlierNodes) {
  SimpleSearchQuery base;
  base.sequence_length = 4;
  base.max_results = 8;
  Fixture f = skewed_fixture({"", "a", "b"}, "(a|b)a?", base);

  SimpleSearchQuery lockstep = f.query;
  lockstep.speculative_expansion = false;
  ShortestPathSearch serial(*f.model, f.compiled, lockstep);
  const auto want = serial.all();
  ASSERT_FALSE(want.empty());

  SimpleSearchQuery pipe = f.query;
  pipe.speculative_expansion = true;
  pipe.speculation_horizon = 1e-9;
  pipe.target_occupancy = 8;
  ShortestPathSearch clipped(*f.model, f.compiled, pipe);
  const auto got = clipped.all();
  EXPECT_GE(clipped.stats().horizon_clips, 1u);
  expect_exact_match(got, want);
}

// The mid-selection budget clamp: when admitting one more evaluation would
// overrun max_expansions, the selector cancels the remainder of the round
// (speculative_cancelled) instead of blowing the budget — and the truncated
// emission sequence is a prefix of the unconstrained one, exactly as in the
// lockstep budget test above.
TEST(ExecutorEdges, BudgetClampCancelsSpeculativeSelection) {
  SimpleSearchQuery base;
  base.sequence_length = 6;
  base.max_results = 100;
  Fixture f = uniform_fixture({"", "a", "b"}, "(a|b)*", base);

  SimpleSearchQuery full_query = f.query;
  full_query.speculative_expansion = true;
  full_query.target_occupancy = 8;
  ShortestPathSearch full(*f.model, f.compiled, full_query);
  const auto full_results = full.all();
  ASSERT_GT(full_results.size(), 4u);

  SimpleSearchQuery starved_query = full_query;
  starved_query.max_expansions = 2;
  ShortestPathSearch starved(*f.model, f.compiled, starved_query);
  const auto starved_results = starved.all();
  EXPECT_LE(starved.stats().expansions, 2u);
  EXPECT_GE(starved.stats().speculative_cancelled, 1u);
  ASSERT_LT(starved_results.size(), full_results.size());
  for (std::size_t i = 0; i < starved_results.size(); ++i) {
    EXPECT_EQ(starved_results[i].text, full_results[i].text);
    EXPECT_EQ(starved_results[i].log_prob, full_results[i].log_prob);
  }
}

// Waste accounting, no-emission branch: a search that evaluates nodes but
// never emits counts EVERY evaluated node as speculative waste — all of that
// model work bought nothing.
TEST(ExecutorEdges, SpeculativeWasteCountedWhenNothingEmits) {
  SimpleSearchQuery base;
  base.sequence_length = 3;
  Fixture f = uniform_fixture({"", "a"}, "a{5}", base);

  SimpleSearchQuery pipe = f.query;
  pipe.speculative_expansion = true;
  ShortestPathSearch search(*f.model, f.compiled, pipe);
  EXPECT_TRUE(search.all().empty());
  EXPECT_GE(search.stats().speculative_wasted, 1u);
}

// Waste accounting, beyond-last-emission branch: with max_results = 1 and a
// strictly costlier sibling selected in the same round (large horizon), the
// sibling's evaluation lands above the last emitted cost and is counted as
// wasted speculation.
TEST(ExecutorEdges, SpeculativeWasteCountsEvalsBeyondLastEmission) {
  SimpleSearchQuery base;
  base.sequence_length = 4;
  base.max_results = 1;
  Fixture f = skewed_fixture({"", "a", "b"}, "(a|b)a?", base);

  SimpleSearchQuery pipe = f.query;
  pipe.speculative_expansion = true;
  pipe.target_occupancy = 8;
  pipe.speculation_horizon = 100.0;  // admit the costlier sibling
  ShortestPathSearch search(*f.model, f.compiled, pipe);
  const auto results = search.all();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].text, "a");  // the skew makes "a" strictly cheapest
  EXPECT_GE(search.stats().speculative_expanded, 1u);
  EXPECT_GE(search.stats().speculative_wasted, 1u);
}

// --------------------------------------------------------------------------
// Incremental canonicality: canonical_prefix_advance resumed token-by-token
// must agree with the from-scratch canonical_prefix_ok at every prefix, and
// canonical_body from the settled state must agree with re-encode-and-compare
// on the complete body — for the canonical path and both impostors.
TEST(ExecutorEdges, CanonicalAdvanceAndBodyMatchFromScratchChecks) {
  auto tok = tokenizer::BpeTokenizer::from_vocab({"", "a", "b", "c", "ab", "bc"});
  SimpleSearchQuery query;
  // Infinite language: canonical encodings cannot be enumerated at compile
  // time, so the artifact carries dynamic_canonical and the executor prunes
  // non-greedy paths at traversal time — the machinery under test here.
  query.query_string = {"[abc]+", ""};
  query.tokenization_strategy = TokenizationStrategy::kCanonicalTokens;
  query.sequence_length = 4;
  const CompiledQuery compiled = CompiledQuery::compile(query, tok);
  ASSERT_TRUE(compiled.dynamic_canonical());

  const std::vector<std::vector<TokenId>> paths = {
      {4, 3},     // [ab, c]   — the canonical (greedy) encoding
      {1, 5},     // [a, bc]   — same text, non-canonical split
      {1, 2, 3},  // [a, b, c] — fully unmerged
  };
  for (const auto& path : paths) {
    CompiledQuery::CanonState state;
    std::string text;
    bool advance_ok = true;
    for (std::size_t i = 0; i < path.size(); ++i) {
      text += tok.token_string(path[i]);
      const std::span<const TokenId> prefix(path.data(), i + 1);
      if (advance_ok) {
        advance_ok = compiled.canonical_prefix_advance(prefix, text, state);
      }
      EXPECT_EQ(advance_ok, compiled.canonical_prefix_ok(prefix, text))
          << "path[0]=" << path[0] << " prefix_len=" << (i + 1);
    }
    if (advance_ok) {
      const bool canonical = tok.encode(text) == path;
      EXPECT_EQ(compiled.canonical_body(path, text, state), canonical)
          << "path[0]=" << path[0];
      // A default (nothing-settled) state must give the same verdict.
      EXPECT_EQ(compiled.canonical_body(path, text, {}), canonical)
          << "path[0]=" << path[0];
    }
  }
}

}  // namespace
}  // namespace relm::core
