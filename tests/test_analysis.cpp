#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/invariants.hpp"
#include "analysis/verify.hpp"
#include "automata/regex.hpp"
#include "core/compiled_query.hpp"
#include "core/compiler.hpp"
#include "core/pipeline/artifact.hpp"
#include "core/pipeline/pipeline.hpp"
#include "model/mlp_model.hpp"
#include "model/ngram_model.hpp"
#include "tokenizer/bpe.hpp"

namespace relm::analysis {
namespace {

using automata::Dfa;
using automata::Edge;
using automata::Nfa;
using automata::StateId;
using automata::Symbol;
using tokenizer::TokenId;

// ---------------------------------------------------------------------------
// InvariantReport
// ---------------------------------------------------------------------------

TEST(InvariantReport, StartsClean) {
  InvariantReport report;
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.to_string(), "ok\n");
}

TEST(InvariantReport, RecordsAndFormats) {
  InvariantReport report;
  report.fail("dfa.determinism", "state 3 has two transitions on symbol 7");
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has("dfa.determinism"));
  EXPECT_FALSE(report.has("dfa.start-range"));
  std::string text = report.to_string();
  EXPECT_NE(text.find("dfa.determinism"), std::string::npos);
  EXPECT_NE(text.find("state 3"), std::string::npos);
}

TEST(InvariantReport, SuppressesFloodsPerCheck) {
  InvariantReport report;
  for (int i = 0; i < 100; ++i) {
    report.fail("ngram.row-total", "row " + std::to_string(i));
  }
  report.fail("dfa.determinism", "independent check is not suppressed");
  // kMaxPerCheck details + one suppression marker + the other check.
  EXPECT_EQ(report.violations().size(), InvariantReport::kMaxPerCheck + 2);
  EXPECT_NE(report.to_string().find("suppressed"), std::string::npos);
  EXPECT_TRUE(report.has("dfa.determinism"));
}

// ---------------------------------------------------------------------------
// (a) automata checkers
// ---------------------------------------------------------------------------

TEST(CheckDfa, CompiledRegexIsClean) {
  Dfa dfa = automata::compile_regex("(cat)|(dog)");
  InvariantReport report;
  check_dfa(dfa, report);
  check_trim(dfa, report);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(CheckDfa, FlagsDanglingTransition) {
  // Two states, but an edge jumps to nonexistent state 7.
  Dfa dfa = Dfa::from_parts(
      /*num_symbols=*/256, /*start=*/0,
      {{Edge{'a', 1}, Edge{'b', 7}}, {}},
      {false, true});
  InvariantReport report;
  check_dfa(dfa, report);
  EXPECT_TRUE(report.has("dfa.transition-range")) << report.to_string();
}

TEST(CheckDfa, FlagsNondeterminism) {
  // Two transitions out of state 0 on the same symbol — an NFA smuggled into
  // a Dfa (possible via deserialization or from_parts, never via add_edge).
  Dfa dfa = Dfa::from_parts(
      256, 0, {{Edge{'a', 1}, Edge{'a', 2}}, {}, {}}, {false, true, true});
  InvariantReport report;
  check_dfa(dfa, report);
  EXPECT_TRUE(report.has("dfa.determinism")) << report.to_string();
}

TEST(CheckDfa, FlagsUnsortedEdges) {
  Dfa dfa = Dfa::from_parts(
      256, 0, {{Edge{'b', 1}, Edge{'a', 1}}, {}}, {false, true});
  InvariantReport report;
  check_dfa(dfa, report);
  EXPECT_TRUE(report.has("dfa.determinism"));
}

TEST(CheckDfa, FlagsEpsilonAndOutOfAlphabetSymbols) {
  Dfa dfa = Dfa::from_parts(
      256, 0, {{Edge{automata::kEpsilon, 1}, Edge{300, 1}}, {}}, {false, true});
  InvariantReport report;
  check_dfa(dfa, report);
  EXPECT_TRUE(report.has("dfa.symbol-range"));
  EXPECT_NE(report.to_string().find("epsilon"), std::string::npos);
}

TEST(CheckDfa, FlagsStartOutOfRange) {
  Dfa dfa = Dfa::from_parts(256, /*start=*/5, {{}}, {true});
  InvariantReport report;
  check_dfa(dfa, report);
  EXPECT_TRUE(report.has("dfa.start-range"));
}

TEST(CheckTrim, FlagsUnreachableAcceptingState) {
  // State 1 accepts but nothing reaches it: the machine's language is empty
  // while its structure claims otherwise.
  Dfa dfa = Dfa::from_parts(256, 0, {{}, {}}, {false, true});
  InvariantReport report;
  check_trim(dfa, report);
  EXPECT_TRUE(report.has("dfa.reachability")) << report.to_string();
  EXPECT_TRUE(report.has("dfa.accept-reachability"));
}

TEST(CheckTrim, FlagsDeadState) {
  // State 2 is reachable but can never reach the accepting state 1.
  Dfa dfa = Dfa::from_parts(
      256, 0, {{Edge{'a', 1}, Edge{'b', 2}}, {}, {}}, {false, true, false});
  InvariantReport report;
  check_trim(dfa, report);
  EXPECT_TRUE(report.has("dfa.coreachability")) << report.to_string();
}

TEST(CheckTrim, AcceptsCanonicalEmptyMachine) {
  Dfa empty(256);
  empty.set_start(empty.add_state(false));
  InvariantReport report;
  check_dfa(empty, report);
  check_trim(empty, report);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(CheckNfa, EpsilonIsLegalButFlaggedByEpsilonFree) {
  Nfa nfa(256);
  StateId a = nfa.add_state();
  StateId b = nfa.add_state(true);
  nfa.set_start(a);
  nfa.add_edge(a, automata::kEpsilon, b);
  InvariantReport report;
  check_nfa(nfa, report);
  EXPECT_TRUE(report.ok()) << report.to_string();
  check_epsilon_free(nfa, report);
  EXPECT_TRUE(report.has("nfa.epsilon-free"));
}

TEST(CheckNfa, FlagsDanglingTransition) {
  Nfa nfa(256);
  StateId a = nfa.add_state(true);
  nfa.set_start(a);
  nfa.add_edge(a, 'x', 9);
  InvariantReport report;
  check_nfa(nfa, report);
  EXPECT_TRUE(report.has("nfa.transition-range"));
}

// ---------------------------------------------------------------------------
// token automata
// ---------------------------------------------------------------------------

tokenizer::BpeTokenizer tiny_tokenizer() {
  std::vector<std::string> vocab{""};  // EOS
  for (unsigned char c = 'a'; c <= 'z'; ++c) vocab.emplace_back(1, c);
  vocab.push_back(" ");
  vocab.push_back("cat");
  vocab.push_back("dog");
  vocab.push_back("ca");
  return tokenizer::BpeTokenizer::from_vocab(std::move(vocab));
}

TEST(CheckTokenAutomaton, CompilerOutputIsClean) {
  tokenizer::BpeTokenizer tok = tiny_tokenizer();
  Dfa char_dfa = automata::compile_regex("(cat)|(dog)");
  core::TokenAutomaton token =
      core::compile_token_automaton(char_dfa, tok,
                                    core::TokenizationStrategy::kAllTokens);
  InvariantReport report;
  check_token_automaton(token.dfa, tok, report);
  check_trim(token.dfa, report);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(CheckTokenAutomaton, FlagsAlphabetMismatch) {
  tokenizer::BpeTokenizer tok = tiny_tokenizer();
  Dfa wrong(tok.vocab_size() + 5);
  wrong.set_start(wrong.add_state(true));
  InvariantReport report;
  check_token_automaton(wrong, tok, report);
  EXPECT_TRUE(report.has("token.alphabet"));
}

TEST(CheckTokenAutomaton, FlagsEosTransition) {
  tokenizer::BpeTokenizer tok = tiny_tokenizer();
  Dfa dfa(static_cast<Symbol>(tok.vocab_size()));
  StateId a = dfa.add_state(false);
  StateId b = dfa.add_state(true);
  dfa.set_start(a);
  dfa.add_edge(a, tok.eos(), b);
  InvariantReport report;
  check_token_automaton(dfa, tok, report);
  EXPECT_TRUE(report.has("token.eos-edge"));
}

// ---------------------------------------------------------------------------
// (b) models
// ---------------------------------------------------------------------------

std::shared_ptr<model::NgramModel> tiny_ngram(std::size_t vocab_size = 8) {
  std::vector<std::vector<TokenId>> sequences{
      {1, 2, 3, 1, 2}, {2, 3, 1, 2, 3}, {1, 1, 4, 5}, {6, 7, 6, 7, 6}};
  model::NgramModel::Config config;
  config.order = 3;
  return model::NgramModel::train_on_tokens(vocab_size, /*eos=*/0, sequences,
                                            config);
}

TEST(CheckNgram, TrainedModelIsClean) {
  InvariantReport report;
  check_ngram_model(*tiny_ngram(), report);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

// Corrupts the first stored row of a serialized model (line 4:
// "<key_hex> <total> <n> <token> <count> ...") and reloads it.
std::shared_ptr<model::NgramModel> perturbed_ngram(int field, long delta) {
  std::ostringstream out;
  tiny_ngram()->save(out);
  std::istringstream lines(out.str());
  std::string line, rebuilt;
  for (int n = 1; std::getline(lines, line); ++n) {
    if (n == 4) {
      std::istringstream fields(line);
      std::vector<std::string> parts;
      std::string f;
      while (fields >> f) parts.push_back(f);
      parts[static_cast<std::size_t>(field)] = std::to_string(
          std::stol(parts[static_cast<std::size_t>(field)]) + delta);
      line.clear();
      for (std::size_t i = 0; i < parts.size(); ++i) {
        line += (i ? " " : "") + parts[i];
      }
    }
    rebuilt += line + "\n";
  }
  std::istringstream in(rebuilt);
  return model::NgramModel::load(in);
}

TEST(CheckNgram, FlagsPerturbedRowTotal) {
  // Field 1 is the row total; +1000 breaks total == sum(counts), which
  // un-normalizes every distribution interpolated through the row.
  std::shared_ptr<model::NgramModel> corrupt = perturbed_ngram(1, 1000);
  InvariantReport report;
  check_ngram_model(*corrupt, report);
  EXPECT_TRUE(report.has("ngram.row-total")) << report.to_string();
  // The black-box distribution probe sees the fallout too: the unigram row
  // is part of every interpolated distribution.
  EXPECT_TRUE(report.has("model.row-sum")) << report.to_string();
}

TEST(CheckNgram, FlagsOutOfVocabularyToken) {
  // Rebuild the tiny model claiming a smaller vocabulary than its counts use.
  std::ostringstream out;
  tiny_ngram(/*vocab_size=*/8)->save(out);
  std::string text = out.str();
  // Header line 2: "<order> <alpha> <max_seq_len> <vocab_size> <eos>".
  std::size_t line2 = text.find('\n') + 1;
  std::size_t line3 = text.find('\n', line2);
  std::string header = text.substr(line2, line3 - line2);
  std::size_t pos = header.rfind(" 8 ");
  ASSERT_NE(pos, std::string::npos);
  header.replace(pos, 3, " 3 ");
  text.replace(line2, line3 - line2, header);
  std::istringstream in(text);
  std::shared_ptr<model::NgramModel> corrupt = model::NgramModel::load(in);
  InvariantReport report;
  check_ngram_model(*corrupt, report);
  EXPECT_TRUE(report.has("ngram.token-range")) << report.to_string();
}

// A deliberately broken LanguageModel for the black-box distribution checks.
class BrokenModel : public model::LanguageModel {
 public:
  enum class Mode { kWrongSize, kNan, kUnnormalized, kPositive };
  explicit BrokenModel(Mode mode) : mode_(mode) {}

  std::size_t vocab_size() const override { return 8; }
  TokenId eos() const override { return 0; }
  std::size_t max_sequence_length() const override { return 16; }
  std::vector<double> next_log_probs(std::span<const TokenId>) const override {
    switch (mode_) {
      case Mode::kWrongSize:
        return std::vector<double>(3, std::log(1.0 / 3.0));
      case Mode::kNan: {
        std::vector<double> lp(8, std::log(1.0 / 8.0));
        lp[5] = std::numeric_limits<double>::quiet_NaN();
        return lp;
      }
      case Mode::kUnnormalized:
        return std::vector<double>(8, std::log(1.0 / 4.0));  // sums to 2
      case Mode::kPositive: {
        std::vector<double> lp(8, std::log(1.0 / 8.0));
        lp[2] = 0.5;  // p > 1
        return lp;
      }
    }
    return {};
  }

 private:
  Mode mode_;
};

TEST(CheckModel, FlagsWrongDistributionSize) {
  InvariantReport report;
  check_model_distributions(BrokenModel(BrokenModel::Mode::kWrongSize), report);
  EXPECT_TRUE(report.has("model.distribution-size"));
}

TEST(CheckModel, FlagsNanLogit) {
  InvariantReport report;
  check_model_distributions(BrokenModel(BrokenModel::Mode::kNan), report);
  EXPECT_TRUE(report.has("model.nan-logit"));
}

TEST(CheckModel, FlagsUnnormalizedRow) {
  InvariantReport report;
  check_model_distributions(BrokenModel(BrokenModel::Mode::kUnnormalized), report);
  EXPECT_TRUE(report.has("model.row-sum"));
}

TEST(CheckModel, FlagsPositiveLogit) {
  InvariantReport report;
  check_model_distributions(BrokenModel(BrokenModel::Mode::kPositive), report);
  EXPECT_TRUE(report.has("model.positive-logit"));
}

TEST(CheckModel, MlpModelEmitsFiniteNormalizedRows) {
  std::vector<std::vector<TokenId>> sequences{
      {1, 2, 3, 1, 2}, {2, 3, 1, 2, 3}, {4, 5, 4, 5}};
  model::MlpModel::Config config;
  config.epochs = 1;
  config.embedding_dim = 4;
  config.hidden_dim = 8;
  auto mlp = model::MlpModel::train_on_tokens(8, /*eos=*/0, sequences, config);
  InvariantReport report;
  ModelCheckOptions options;
  options.probe_contexts = 12;
  check_model_distributions(*mlp, report, options, "mlp");
  EXPECT_TRUE(report.ok()) << report.to_string();
}

// ---------------------------------------------------------------------------
// (c) compiled queries + verify layer
// ---------------------------------------------------------------------------

TEST(CheckCompiledQuery, BothStrategiesProduceCleanOutput) {
  tokenizer::BpeTokenizer tok = tiny_tokenizer();
  for (auto strategy : {core::TokenizationStrategy::kCanonicalTokens,
                        core::TokenizationStrategy::kAllTokens}) {
    core::SimpleSearchQuery query;
    query.query_string.query_str = "the (cat)|(dog) ran";
    query.query_string.prefix_str = "";
    query.tokenization_strategy = strategy;
    core::CompiledQuery compiled = core::CompiledQuery::compile(query, tok);
    InvariantReport report;
    check_compiled_query(compiled, report);
    EXPECT_TRUE(report.ok()) << report.to_string();
  }
}

TEST(Verify, TokenizerSelfChecksPass) {
  InvariantReport report;
  verify_tokenizer(tiny_tokenizer(), report);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(Verify, QueryCompilationProbesPass) {
  InvariantReport report;
  verify_query_compilation(tiny_tokenizer(), {"(cat)|(dog)", "ca*t"}, report);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(Verify, ModelTokenizerMismatchIsFlagged) {
  tokenizer::BpeTokenizer tok = tiny_tokenizer();
  // Vocabulary size disagrees with the tokenizer's.
  auto model = tiny_ngram(/*vocab_size=*/tok.vocab_size() + 3);
  InvariantReport report;
  verify_model(*model, tok, "mismatched", report);
  EXPECT_TRUE(report.has("artifact.vocab-mismatch")) << report.to_string();
}

// ---------------------------------------------------------------------------
// pipeline artifacts / compile-cache auditing
// ---------------------------------------------------------------------------

core::pipeline::QueryArtifact tiny_artifact(
    const tokenizer::BpeTokenizer& tok,
    core::TokenizationStrategy strategy =
        core::TokenizationStrategy::kCanonicalTokens) {
  core::SimpleSearchQuery query;
  query.query_string.query_str = "(cat)|(dog)";
  query.tokenization_strategy = strategy;
  return core::pipeline::compile_query_artifact(query, tok);
}

TEST(CheckQueryArtifact, PipelineOutputIsClean) {
  tokenizer::BpeTokenizer tok = tiny_tokenizer();
  for (auto strategy : {core::TokenizationStrategy::kCanonicalTokens,
                        core::TokenizationStrategy::kAllTokens}) {
    core::pipeline::QueryArtifact artifact = tiny_artifact(tok, strategy);
    InvariantReport report;
    check_query_artifact(artifact, &tok, report);
    EXPECT_TRUE(report.ok()) << report.to_string();
  }
}

TEST(CheckQueryArtifact, FlagsIncoherentStrategyFlags) {
  tokenizer::BpeTokenizer tok = tiny_tokenizer();
  core::pipeline::QueryArtifact artifact =
      tiny_artifact(tok, core::TokenizationStrategy::kAllTokens);
  artifact.body.dynamic_canonical = true;
  InvariantReport report;
  check_query_artifact(artifact, &tok, report);
  EXPECT_TRUE(report.has("artifact.strategy-flags")) << report.to_string();
}

TEST(CheckQueryArtifact, FlagsAlphabetSplit) {
  tokenizer::BpeTokenizer tok = tiny_tokenizer();
  core::pipeline::QueryArtifact artifact = tiny_artifact(tok);
  // Replace the prefix machine with one over a different alphabet.
  Dfa other(7);
  other.set_start(other.add_state(true));
  artifact.prefix = core::TokenAutomaton{std::move(other), false, {}};
  InvariantReport report;
  check_query_artifact(artifact, /*tok=*/nullptr, report);
  EXPECT_TRUE(report.has("artifact.alphabet")) << report.to_string();
}

TEST(CheckQueryArtifact, SkipsVocabularyChecksOnFingerprintMismatch) {
  // An artifact from another vocabulary is structurally audited but not
  // flagged: shared cache directories legitimately mix vocabularies.
  tokenizer::BpeTokenizer tok = tiny_tokenizer();
  core::pipeline::QueryArtifact artifact = tiny_artifact(tok);
  artifact.vocab_fingerprint ^= 1;
  InvariantReport report;
  check_query_artifact(artifact, &tok, report);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(VerifyCompileCacheDir, CleanStoreAndEveryCorruptionMode) {
  namespace fs = std::filesystem;
  tokenizer::BpeTokenizer tok = tiny_tokenizer();
  const fs::path dir =
      fs::temp_directory_path() / "relm_test_verify_cache_dir";
  fs::remove_all(dir);
  fs::create_directories(dir);

  core::pipeline::QueryArtifact artifact = tiny_artifact(tok);
  core::pipeline::save_artifact_file(
      artifact, (dir / (artifact.key.hex() + ".relmq")).string());
  InvariantReport clean;
  EXPECT_EQ(verify_compile_cache_dir(dir.string(), &tok, clean), 1u);
  EXPECT_TRUE(clean.ok()) << clean.to_string();

  // Truncated entry, misnamed entry, key/filename mismatch — each must be
  // reported with its own check id; non-.relmq files are ignored.
  std::ofstream(dir / (std::string(32, '0') + ".relmq")) << "RELM_ART";
  core::pipeline::save_artifact_file(artifact,
                                     (dir / "notakey.relmq").string());
  core::pipeline::save_artifact_file(
      artifact, (dir / (std::string(31, '0') + "1.relmq")).string());
  std::ofstream(dir / "README.txt") << "not an artifact";

  InvariantReport report;
  EXPECT_EQ(verify_compile_cache_dir(dir.string(), &tok, report), 4u);
  EXPECT_TRUE(report.has("cache.corrupt-entry")) << report.to_string();
  EXPECT_TRUE(report.has("cache.entry-name")) << report.to_string();
  EXPECT_TRUE(report.has("cache.key-mismatch")) << report.to_string();
  fs::remove_all(dir);
}

TEST(VerifyCompileCacheDir, MissingDirectoryIsAViolation) {
  InvariantReport report;
  EXPECT_EQ(verify_compile_cache_dir("/nonexistent/cache-dir", nullptr,
                                     report),
            0u);
  EXPECT_TRUE(report.has("cache.missing-dir"));
}

}  // namespace
}  // namespace relm::analysis
