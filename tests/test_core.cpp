#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <map>
#include <set>

#include "automata/levenshtein.hpp"
#include "automata/ops.hpp"
#include "automata/regex.hpp"
#include "util/strings.hpp"
#include "automata/walks.hpp"
#include "core/analyzer.hpp"
#include "core/compiled_query.hpp"
#include "core/compiler.hpp"
#include "core/executor.hpp"
#include "core/preprocessors.hpp"
#include "core/relm.hpp"
#include "model/ngram_model.hpp"
#include "util/errors.hpp"
#include "util/thread_pool.hpp"

namespace relm::core {
namespace {

using tokenizer::BpeTokenizer;
using tokenizer::TokenId;

std::string fixture_text() {
  std::string text;
  for (int i = 0; i < 60; ++i) {
    text += "The cat sat on the mat. The dog ran far. ";
    text += "The cat and the dog met at the park. ";
  }
  return text;
}

const BpeTokenizer& fixture_tokenizer() {
  static const BpeTokenizer tok = [] {
    BpeTokenizer::TrainConfig config;
    config.vocab_size = 420;
    return BpeTokenizer::train(fixture_text(), config);
  }();
  return tok;
}

std::shared_ptr<model::NgramModel> fixture_model() {
  model::NgramModel::Config config;
  config.order = 4;
  config.alpha = 0.3;
  config.max_sequence_length = 48;
  std::vector<std::string> docs;
  for (int i = 0; i < 30; ++i) {
    docs.push_back("The cat sat on the mat.");
    docs.push_back("The dog ran far.");
  }
  return model::NgramModel::train(fixture_tokenizer(), docs, config);
}

// A deterministic test model whose next-token distribution is fixed and
// context-independent: probability proportional to weight(token), default 1.
class FixedModel : public model::LanguageModel {
 public:
  FixedModel(std::size_t vocab, TokenId eos, std::map<TokenId, double> boosts = {})
      : vocab_(vocab), eos_(eos) {
    log_probs_.assign(vocab, 0.0);
    double z = 0;
    std::vector<double> w(vocab, 1.0);
    for (auto [t, boost] : boosts) w[t] = boost;
    for (double x : w) z += x;
    for (std::size_t t = 0; t < vocab; ++t) log_probs_[t] = std::log(w[t] / z);
  }
  std::size_t vocab_size() const override { return vocab_; }
  TokenId eos() const override { return eos_; }
  std::size_t max_sequence_length() const override { return 32; }
  std::vector<double> next_log_probs(std::span<const TokenId>) const override {
    return log_probs_;
  }

 private:
  std::size_t vocab_;
  TokenId eos_;
  std::vector<double> log_probs_;
};

// ---------------------------------------------------------------------------
// QueryString
// ---------------------------------------------------------------------------

TEST(QueryString, BodySplitsAfterPrefix) {
  QueryString q{"The ((cat)|(dog))", "The"};
  EXPECT_EQ(q.body_str(), " ((cat)|(dog))");
}

TEST(QueryString, EmptyPrefixKeepsWholeQuery) {
  QueryString q{"abc", ""};
  EXPECT_EQ(q.body_str(), "abc");
}

TEST(QueryString, NonPrefixThrows) {
  QueryString q{"The cat", "A dog"};
  EXPECT_THROW(q.body_str(), relm::QueryError);
}

// ---------------------------------------------------------------------------
// Graph compiler (§3.2)
// ---------------------------------------------------------------------------

TEST(Compiler, AllTokensEncodingCountMatchesTokenizer) {
  // Figure 3a: the token automaton for a literal string has exactly as many
  // accepting paths as the tokenizer has encodings of that string.
  const BpeTokenizer& tok = fixture_tokenizer();
  for (const char* word : {"The", "cat", "The cat", "dog"}) {
    automata::Dfa chars = automata::compile_regex(util::regex_escape(word));
    TokenAutomaton ta = compile_token_automaton(
        chars, tok, TokenizationStrategy::kAllTokens);
    EXPECT_FALSE(ta.dynamic_canonical);
    automata::WalkCounts walks(ta.dfa, 32);
    EXPECT_DOUBLE_EQ(walks.total(), tok.count_encodings(word)) << word;
  }
}

TEST(Compiler, AllTokensAcceptsEveryEncoding) {
  const BpeTokenizer& tok = fixture_tokenizer();
  automata::Dfa chars = automata::compile_regex("The");
  TokenAutomaton ta =
      compile_token_automaton(chars, tok, TokenizationStrategy::kAllTokens);
  // Canonical encoding accepted.
  auto canonical = tok.encode("The");
  std::vector<automata::Symbol> symbols(canonical.begin(), canonical.end());
  EXPECT_TRUE(ta.dfa.accepts(symbols));
  // Byte-by-byte spelling accepted too.
  std::vector<automata::Symbol> spelled{*tok.find("T"), *tok.find("h"), *tok.find("e")};
  EXPECT_TRUE(ta.dfa.accepts(spelled));
  // A wrong word is not.
  std::vector<automata::Symbol> wrong{*tok.find("T"), *tok.find("h")};
  EXPECT_FALSE(ta.dfa.accepts(wrong));
}

TEST(Compiler, CanonicalHasExactlyOnePathPerString) {
  const BpeTokenizer& tok = fixture_tokenizer();
  automata::Dfa chars = automata::compile_regex("(cat)|(dog)|(mat)");
  TokenAutomaton ta = compile_token_automaton(
      chars, tok, TokenizationStrategy::kCanonicalTokens);
  EXPECT_FALSE(ta.dynamic_canonical);
  automata::WalkCounts walks(ta.dfa, 32);
  EXPECT_DOUBLE_EQ(walks.total(), 3.0);
  for (const char* word : {"cat", "dog", "mat"}) {
    auto enc = tok.encode(word);
    std::vector<automata::Symbol> symbols(enc.begin(), enc.end());
    EXPECT_TRUE(ta.dfa.accepts(symbols)) << word;
  }
  // Non-canonical spelling of a member is rejected.
  std::vector<automata::Symbol> spelled{*tok.find("c"), *tok.find("a"), *tok.find("t")};
  if (tok.encode("cat").size() < 3) {
    EXPECT_FALSE(ta.dfa.accepts(spelled));
  }
}

TEST(Compiler, CanonicalFallsBackToDynamicForInfiniteLanguages) {
  const BpeTokenizer& tok = fixture_tokenizer();
  automata::Dfa chars = automata::compile_regex("(cat)+");
  TokenAutomaton ta = compile_token_automaton(
      chars, tok, TokenizationStrategy::kCanonicalTokens);
  EXPECT_TRUE(ta.dynamic_canonical);
}

TEST(Compiler, CanonicalFallsBackWhenOverBudget) {
  const BpeTokenizer& tok = fixture_tokenizer();
  automata::Dfa chars = automata::compile_regex("[a-z]{4}");  // 456k strings
  TokenAutomaton ta = compile_token_automaton(
      chars, tok, TokenizationStrategy::kCanonicalTokens, /*budget=*/1000);
  EXPECT_TRUE(ta.dynamic_canonical);
}

TEST(Compiler, RejectsNonByteAutomaton) {
  const BpeTokenizer& tok = fixture_tokenizer();
  automata::Dfa token_alphabet(tok.vocab_size());
  token_alphabet.set_start(token_alphabet.add_state(true));
  EXPECT_THROW(compile_token_automaton(token_alphabet, tok,
                                       TokenizationStrategy::kAllTokens),
               relm::QueryError);
}

// ---------------------------------------------------------------------------
// CompiledQuery hand-off semantics
// ---------------------------------------------------------------------------

SimpleSearchQuery cat_dog_query() {
  SimpleSearchQuery query;
  query.query_string = {"The ((cat)|(dog))", "The"};
  query.tokenization_strategy = TokenizationStrategy::kCanonicalTokens;
  return query;
}

TEST(CompiledQuery, InitialStateHasPrefixLive) {
  CompiledQuery compiled =
      CompiledQuery::compile(cat_dog_query(), fixture_tokenizer());
  auto init = compiled.initial();
  EXPECT_NE(init.prefix_state, automata::kNoState);
  // "The" does not accept epsilon, so the body is not yet live.
  EXPECT_EQ(init.body_state, automata::kNoState);
  EXPECT_FALSE(compiled.is_match(init));
  EXPECT_TRUE(compiled.has_continuation(init));
}

TEST(CompiledQuery, WalkReachesMatch) {
  const BpeTokenizer& tok = fixture_tokenizer();
  CompiledQuery compiled = CompiledQuery::compile(cat_dog_query(), tok);
  // Drive the machine along the canonical encoding of "The cat".
  auto tokens = tok.encode("The cat");
  auto set = compiled.initial();
  for (TokenId t : tokens) {
    auto steps = compiled.expand(set);
    auto it = std::find_if(steps.begin(), steps.end(),
                           [&](const auto& s) { return s.token == t; });
    ASSERT_NE(it, steps.end()) << "token " << tok.token_string(t);
    set = it->next;
  }
  EXPECT_TRUE(compiled.is_match(set));
}

TEST(CompiledQuery, PrefixStepsAreMarkedPrefixOnly) {
  CompiledQuery compiled =
      CompiledQuery::compile(cat_dog_query(), fixture_tokenizer());
  auto steps = compiled.expand(compiled.initial());
  ASSERT_FALSE(steps.empty());
  for (const auto& step : steps) {
    EXPECT_TRUE(step.prefix_only);
    EXPECT_FALSE(step.body_advanced);
  }
}

TEST(CompiledQuery, EmptyBodyCompilesToEmptyLanguage) {
  // A preprocessor that filters out every string used to be a compile error;
  // under the boolean algebra an empty language is a legitimate query result
  // (`a & !a` produces one too), flagged so executors skip the model.
  SimpleSearchQuery query;
  query.query_string = {"a", ""};
  query.preprocessors.push_back(
      std::make_shared<FilterPreprocessor>(std::vector<std::string>{"a"}));
  CompiledQuery compiled = CompiledQuery::compile(query, fixture_tokenizer());
  EXPECT_TRUE(compiled.empty_language());
}

// ---------------------------------------------------------------------------
// Shortest-path executor (§3.3)
// ---------------------------------------------------------------------------

TEST(ShortestPath, EnumeratesFiniteLanguageCompletely) {
  const BpeTokenizer& tok = fixture_tokenizer();
  FixedModel model(tok.vocab_size(), tok.eos());
  SimpleSearchQuery query;
  query.query_string = {"(cat)|(dog)|(mat)|(park)", ""};
  query.max_results = 10;
  CompiledQuery compiled = CompiledQuery::compile(query, tok);
  ShortestPathSearch search(model, compiled, query);
  auto results = search.all();
  std::set<std::string> texts;
  for (const auto& r : results) texts.insert(r.text);
  EXPECT_EQ(texts, (std::set<std::string>{"cat", "dog", "mat", "park"}));
}

TEST(ShortestPath, EmitsInDecreasingProbabilityOrder) {
  auto model = fixture_model();
  const BpeTokenizer& tok = fixture_tokenizer();
  SimpleSearchQuery query;
  query.query_string = {"The ((cat)|(dog)|(mat))", "The"};
  query.max_results = 3;
  CompiledQuery compiled = CompiledQuery::compile(query, tok);
  ShortestPathSearch search(*model, compiled, query);
  auto results = search.all();
  ASSERT_EQ(results.size(), 3u);
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_GE(results[i - 1].log_prob, results[i].log_prob);
  }
  // The trained model strongly prefers "The cat"/"The dog" over "The mat"
  // as sentence openers.
  EXPECT_NE(results[0].text, "The mat");
}

TEST(ShortestPath, MatchesTrueSequenceProbabilities) {
  auto model = fixture_model();
  const BpeTokenizer& tok = fixture_tokenizer();
  SimpleSearchQuery query;
  query.query_string = {"The ((cat)|(dog))", "The"};
  query.max_results = 2;
  CompiledQuery compiled = CompiledQuery::compile(query, tok);
  auto results = ShortestPathSearch(*model, compiled, query).all();
  ASSERT_EQ(results.size(), 2u);
  for (const auto& r : results) {
    double expected = model->sequence_log_prob({}, r.tokens);
    EXPECT_NEAR(r.log_prob, expected, 1e-9) << r.text;
  }
}

TEST(ShortestPath, TopKPrunesTransitively) {
  const BpeTokenizer& tok = fixture_tokenizer();
  // Boost everything except the first token of "dog"; with top_k = 1 only
  // the most likely automaton edge survives at each step.
  auto cat_first = tok.encode(" cat")[0];
  FixedModel model(tok.vocab_size(), tok.eos(), {{cat_first, 1000.0}});
  SimpleSearchQuery query;
  query.query_string = {"The(( cat)|( dog))", "The"};
  query.decoding.top_k = 1;
  query.max_results = 10;
  CompiledQuery compiled = CompiledQuery::compile(query, tok);
  ShortestPathSearch search(model, compiled, query);
  auto results = search.all();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].text, "The cat");
  // On the mask fast path rule prunes are counted by the word-wise scan
  // (mask_pruned); the probe path counts them in pruned_by_rules.
  EXPECT_GT(search.stats().pruned_by_rules + search.stats().mask_pruned, 0u);
}

TEST(ShortestPath, PrefixBypassesTopK) {
  const BpeTokenizer& tok = fixture_tokenizer();
  // Make "The" prefix tokens maximally unlikely; with top_k=1 a body token
  // would be pruned, but prefixes must survive.
  std::map<TokenId, double> boosts;
  for (TokenId t : tok.encode("The")) boosts[t] = 1e-6;
  auto cat_first = tok.encode(" cat")[0];
  boosts[cat_first] = 1000.0;
  FixedModel model(tok.vocab_size(), tok.eos(), boosts);
  SimpleSearchQuery query;
  query.query_string = {"The(( cat)|( dog))", "The"};
  query.decoding.top_k = 1;
  query.max_results = 1;
  CompiledQuery compiled = CompiledQuery::compile(query, tok);
  auto results = ShortestPathSearch(model, compiled, query).all();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].text, "The cat");
}

TEST(ShortestPath, RequireEosAddsTerminationCost) {
  auto model = fixture_model();
  const BpeTokenizer& tok = fixture_tokenizer();
  SimpleSearchQuery query;
  query.query_string = {"The ((cat)|(dog))", "The"};
  query.max_results = 2;
  query.require_eos = true;
  CompiledQuery compiled = CompiledQuery::compile(query, tok);
  auto results = ShortestPathSearch(*model, compiled, query).all();
  ASSERT_EQ(results.size(), 2u);
  for (const auto& r : results) {
    // Tokens exclude EOS, but the cost includes it.
    std::vector<TokenId> with_eos(r.tokens);
    with_eos.push_back(model->eos());
    EXPECT_NEAR(r.log_prob, model->sequence_log_prob({}, with_eos), 1e-9);
    EXPECT_EQ(tok.decode(r.tokens), r.text);
  }
}

TEST(ShortestPath, DedupCollapsesEncodings) {
  const BpeTokenizer& tok = fixture_tokenizer();
  FixedModel model(tok.vocab_size(), tok.eos());
  SimpleSearchQuery query;
  query.query_string = {"The", ""};
  query.tokenization_strategy = TokenizationStrategy::kAllTokens;
  query.max_results = 50;
  CompiledQuery compiled = CompiledQuery::compile(query, tok);

  ShortestPathSearch dedup(model, compiled, query);
  auto unique_results = dedup.all();
  EXPECT_EQ(unique_results.size(), 1u);

  ShortestPathSearch full(model, compiled, query);
  full.set_dedup_text(false);
  auto all_results = full.all();
  EXPECT_DOUBLE_EQ(static_cast<double>(all_results.size()),
                   tok.count_encodings("The"));
}

TEST(ShortestPath, ExpansionBudgetRespected) {
  const BpeTokenizer& tok = fixture_tokenizer();
  FixedModel model(tok.vocab_size(), tok.eos());
  SimpleSearchQuery query;
  query.query_string = {"[a-z]{1,8}", ""};
  query.max_results = 100000;
  query.max_expansions = 50;
  CompiledQuery compiled = CompiledQuery::compile(query, tok);
  ShortestPathSearch search(model, compiled, query);
  search.all();
  EXPECT_LE(search.stats().expansions, 50u);
}

TEST(ShortestPath, DynamicCanonicalPrunesSpelledPaths) {
  const BpeTokenizer& tok = fixture_tokenizer();
  FixedModel model(tok.vocab_size(), tok.eos());
  SimpleSearchQuery query;
  // Infinite language forces the dynamic-canonical fallback.
  query.query_string = {"(cat)+", ""};
  query.tokenization_strategy = TokenizationStrategy::kCanonicalTokens;
  query.max_results = 3;
  query.sequence_length = 12;
  CompiledQuery compiled = CompiledQuery::compile(query, tok);
  ASSERT_TRUE(compiled.dynamic_canonical());
  ShortestPathSearch search(model, compiled, query);
  search.set_dedup_text(false);
  auto results = search.all();
  // Each emitted text appears exactly once: only its canonical encoding
  // survives the pruning.
  std::map<std::string, int> counts;
  for (const auto& r : results) {
    ++counts[r.text];
    EXPECT_EQ(tok.encode(r.text), r.tokens) << r.text;
  }
  for (const auto& [text, n] : counts) EXPECT_EQ(n, 1) << text;
}

// ---------------------------------------------------------------------------
// Random sampling executor (§3.3)
// ---------------------------------------------------------------------------

TEST(RandomSampler, SamplesStayInLanguage) {
  auto model = fixture_model();
  const BpeTokenizer& tok = fixture_tokenizer();
  SimpleSearchQuery query;
  query.query_string = {"The ((cat)|(dog)|(mat))", "The"};
  query.search_strategy = SearchStrategy::kRandomSampling;
  query.num_samples = 50;
  automata::Dfa lang = automata::compile_regex("The ((cat)|(dog)|(mat))");
  CompiledQuery compiled = CompiledQuery::compile(query, tok);
  RandomSampler sampler(*model, compiled, query, /*seed=*/7);
  auto results = sampler.sample_all();
  ASSERT_EQ(results.size(), 50u);
  for (const auto& r : results) {
    EXPECT_TRUE(lang.accepts_bytes(r.text)) << r.text;
  }
}

TEST(RandomSampler, FollowsModelDistribution) {
  const BpeTokenizer& tok = fixture_tokenizer();
  // cat 3x more likely than dog at the branch token.
  auto cat_first = tok.encode(" cat")[0];
  auto dog_first = tok.encode(" dog")[0];
  FixedModel model(tok.vocab_size(), tok.eos(),
                   {{cat_first, 30.0}, {dog_first, 10.0}});
  SimpleSearchQuery query;
  query.query_string = {"The(( cat)|( dog))", "The"};
  query.search_strategy = SearchStrategy::kRandomSampling;
  query.num_samples = 4000;
  CompiledQuery compiled = CompiledQuery::compile(query, tok);
  RandomSampler sampler(model, compiled, query, 11);
  auto results = sampler.sample_all();
  int cat = 0;
  for (const auto& r : results) {
    if (r.text == "The cat") ++cat;
  }
  EXPECT_NEAR(static_cast<double>(cat) / results.size(), 0.75, 0.03);
}

TEST(RandomSampler, UniformOverEditedPrefixWalks) {
  // Levenshtein-expanded prefix: walk normalization must sample prefix
  // strings without positional bias (Appendix C mechanism; the full CDF
  // comparison is the fig09 bench).
  const BpeTokenizer& tok = fixture_tokenizer();
  FixedModel model(tok.vocab_size(), tok.eos());
  SimpleSearchQuery query;
  query.query_string = {"The cat( sat)?", "The cat"};
  query.search_strategy = SearchStrategy::kRandomSampling;
  query.num_samples = 300;
  query.preprocessors.push_back(std::make_shared<LevenshteinPreprocessor>(
      1, Preprocessor::Target::kPrefix));
  CompiledQuery compiled = CompiledQuery::compile(query, tok);
  RandomSampler sampler(model, compiled, query, 13);
  auto results = sampler.sample_all();
  ASSERT_FALSE(results.empty());
  std::set<std::string> prefixes;
  automata::Dfa edited = automata::levenshtein_expand(
      automata::compile_regex("The cat"), 1, automata::printable_ascii());
  int sampled = 0;
  for (const auto& r : results) {
    (void)r;
  }
  // Re-sample one at a time to observe prefix texts.
  RandomSampler sampler2(model, compiled, query, 17);
  for (int i = 0; i < 200; ++i) {
    auto r = sampler2.sample_once();
    if (!r) continue;
    ++sampled;
    EXPECT_TRUE(edited.accepts_bytes(sampler2.last_prefix_text()))
        << sampler2.last_prefix_text();
    prefixes.insert(sampler2.last_prefix_text());
  }
  EXPECT_GT(sampled, 100);
  EXPECT_GT(prefixes.size(), 20u);  // many distinct edited prefixes drawn
}

TEST(RandomSampler, DeterministicGivenSeed) {
  auto model = fixture_model();
  const BpeTokenizer& tok = fixture_tokenizer();
  SimpleSearchQuery query;
  query.query_string = {"The ((cat)|(dog))", "The"};
  query.search_strategy = SearchStrategy::kRandomSampling;
  query.num_samples = 20;
  CompiledQuery compiled = CompiledQuery::compile(query, tok);
  auto a = RandomSampler(*model, compiled, query, 42).sample_all();
  auto b = RandomSampler(*model, compiled, query, 42).sample_all();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].text, b[i].text);
}

// ---------------------------------------------------------------------------
// Facade
// ---------------------------------------------------------------------------

TEST(Facade, SearchReturnsMemorizedStringFirst) {
  auto model = fixture_model();
  const BpeTokenizer& tok = fixture_tokenizer();
  SimpleSearchQuery query;
  query.query_string = {"The cat sat on the ((mat)|(dog)|(park))",
                        "The cat sat on the "};
  query.max_results = 1;
  auto outcome = relm::search(*model, tok, query);
  ASSERT_EQ(outcome.results.size(), 1u);
  EXPECT_EQ(outcome.results[0].text, "The cat sat on the mat");
  EXPECT_GT(outcome.stats.llm_calls, 0u);
}

TEST(Facade, RandomStrategyRuns) {
  auto model = fixture_model();
  const BpeTokenizer& tok = fixture_tokenizer();
  SimpleSearchQuery query;
  query.query_string = {"The ((cat)|(dog))", "The"};
  query.search_strategy = SearchStrategy::kRandomSampling;
  query.num_samples = 5;
  auto outcome = relm::search(*model, tok, query, 3);
  EXPECT_EQ(outcome.results.size(), 5u);
}

TEST(Facade, MalformedRegexSurfacesAsRegexError) {
  auto model = fixture_model();
  SimpleSearchQuery query;
  query.query_string = {"(((", ""};
  EXPECT_THROW(relm::search(*model, fixture_tokenizer(), query),
               relm::RegexError);
}

// ---------------------------------------------------------------------------
// Preprocessors (§3.4)
// ---------------------------------------------------------------------------

TEST(Preprocessors, LevenshteinExpandsQueryLanguage) {
  const BpeTokenizer& tok = fixture_tokenizer();
  FixedModel model(tok.vocab_size(), tok.eos());
  SimpleSearchQuery query;
  query.query_string = {"cat", ""};
  query.preprocessors.push_back(std::make_shared<LevenshteinPreprocessor>(
      1, Preprocessor::Target::kBody,
      automata::ByteSet(automata::digit_set() | automata::word_set())));
  query.max_results = 500;
  query.max_expansions = 100000;
  auto outcome = relm::search(model, tok, query);
  std::set<std::string> texts;
  for (const auto& r : outcome.results) texts.insert(r.text);
  EXPECT_TRUE(texts.contains("cat"));
  EXPECT_TRUE(texts.contains("cut"));   // substitution
  EXPECT_TRUE(texts.contains("at"));    // deletion
  EXPECT_TRUE(texts.contains("cats"));  // insertion
  EXPECT_FALSE(texts.contains("cut3s"));
}

TEST(Preprocessors, FilterRemovesStopWords) {
  const BpeTokenizer& tok = fixture_tokenizer();
  FixedModel model(tok.vocab_size(), tok.eos());
  SimpleSearchQuery query;
  query.query_string = {"(the)|(cat)|(her)|(dog)", ""};
  query.preprocessors.push_back(std::make_shared<FilterPreprocessor>(
      std::vector<std::string>{"the", "her"}));
  query.max_results = 10;
  auto outcome = relm::search(model, tok, query);
  std::set<std::string> texts;
  for (const auto& r : outcome.results) texts.insert(r.text);
  EXPECT_EQ(texts, (std::set<std::string>{"cat", "dog"}));
}

}  // namespace
}  // namespace relm::core

namespace relm::core {
namespace {

// ---------------------------------------------------------------------------
// Beam search
// ---------------------------------------------------------------------------

TEST(BeamSearch, FindsTopResultLikeDijkstra) {
  auto model = fixture_model();
  const BpeTokenizer& tok = fixture_tokenizer();
  SimpleSearchQuery query;
  query.query_string = {"The ((cat)|(dog)|(mat))", "The"};
  query.max_results = 3;
  CompiledQuery compiled = CompiledQuery::compile(query, tok);

  auto dijkstra = ShortestPathSearch(*model, compiled, query).all();
  query.search_strategy = SearchStrategy::kBeam;
  query.beam_width = 8;
  auto beam = BeamSearch(*model, compiled, query).run();
  ASSERT_FALSE(beam.empty());
  ASSERT_FALSE(dijkstra.empty());
  EXPECT_EQ(beam[0].text, dijkstra[0].text);
  EXPECT_NEAR(beam[0].log_prob, dijkstra[0].log_prob, 1e-9);
}

TEST(BeamSearch, WidthOneIsGreedy) {
  auto model = fixture_model();
  const BpeTokenizer& tok = fixture_tokenizer();
  SimpleSearchQuery query;
  query.query_string = {"The ((cat)|(dog))", "The"};
  query.search_strategy = SearchStrategy::kBeam;
  query.beam_width = 1;
  query.max_results = 5;
  CompiledQuery compiled = CompiledQuery::compile(query, tok);
  auto results = BeamSearch(*model, compiled, query).run();
  // A width-1 beam can follow only one path, so at most one match.
  EXPECT_LE(results.size(), 1u);
}

TEST(BeamSearch, BoundedLlmCalls) {
  const BpeTokenizer& tok = fixture_tokenizer();
  FixedModel model(tok.vocab_size(), tok.eos());
  SimpleSearchQuery query;
  query.query_string = {"[a-z]{1,10}", ""};
  query.search_strategy = SearchStrategy::kBeam;
  query.beam_width = 4;
  query.sequence_length = 10;
  query.max_results = 100;
  CompiledQuery compiled = CompiledQuery::compile(query, tok);
  BeamSearch search(model, compiled, query);
  search.run();
  // At most width calls per step plus the final require-free pass.
  EXPECT_LE(search.stats().llm_calls, 4u * 10u + 4u);
}

TEST(BeamSearch, RespectsTopK) {
  const BpeTokenizer& tok = fixture_tokenizer();
  auto cat_first = tok.encode(" cat")[0];
  FixedModel model(tok.vocab_size(), tok.eos(), {{cat_first, 1000.0}});
  SimpleSearchQuery query;
  query.query_string = {"The(( cat)|( dog))", "The"};
  query.search_strategy = SearchStrategy::kBeam;
  query.decoding.top_k = 1;
  query.max_results = 5;
  CompiledQuery compiled = CompiledQuery::compile(query, tok);
  auto results = BeamSearch(model, compiled, query).run();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].text, "The cat");
}

TEST(BeamSearch, RequireEosChargesTermination) {
  auto model = fixture_model();
  const BpeTokenizer& tok = fixture_tokenizer();
  SimpleSearchQuery query;
  query.query_string = {"The ((cat)|(dog))", "The"};
  query.search_strategy = SearchStrategy::kBeam;
  query.require_eos = true;
  query.max_results = 2;
  CompiledQuery compiled = CompiledQuery::compile(query, tok);
  auto results = BeamSearch(*model, compiled, query).run();
  ASSERT_FALSE(results.empty());
  for (const auto& r : results) {
    std::vector<TokenId> with_eos(r.tokens);
    with_eos.push_back(model->eos());
    EXPECT_NEAR(r.log_prob, model->sequence_log_prob({}, with_eos), 1e-9);
  }
}

TEST(BeamSearch, FacadeDispatch) {
  auto model = fixture_model();
  SimpleSearchQuery query;
  query.query_string = {"The ((cat)|(dog))", "The"};
  query.search_strategy = SearchStrategy::kBeam;
  auto outcome = relm::search(*model, fixture_tokenizer(), query);
  EXPECT_FALSE(outcome.results.empty());
}

// ---------------------------------------------------------------------------
// Case-insensitive / synonym preprocessors
// ---------------------------------------------------------------------------

TEST(Preprocessors, CaseInsensitiveExpandsBothWays) {
  CaseInsensitivePreprocessor pre;
  automata::Dfa lang = pre.apply(automata::compile_regex("The Cat"));
  EXPECT_TRUE(lang.accepts_bytes("The Cat"));
  EXPECT_TRUE(lang.accepts_bytes("the cat"));
  EXPECT_TRUE(lang.accepts_bytes("THE CAT"));
  EXPECT_TRUE(lang.accepts_bytes("tHe cAt"));
  EXPECT_FALSE(lang.accepts_bytes("the cut"));
}

TEST(Preprocessors, CaseInsensitiveLeavesNonAlphaAlone) {
  CaseInsensitivePreprocessor pre;
  automata::Dfa lang = pre.apply(automata::compile_regex("a1\\!"));
  EXPECT_TRUE(lang.accepts_bytes("A1!"));
  EXPECT_FALSE(lang.accepts_bytes("a2!"));
}

using SynonymMap = std::vector<std::pair<std::string, std::vector<std::string>>>;

TEST(Preprocessors, SynonymsAddAlternatives) {
  SynonymPreprocessor pre(SynonymMap{{"cat", {"kitten", "feline"}}});
  automata::Dfa lang = pre.apply(automata::compile_regex("The (cat|dog) ran"));
  EXPECT_TRUE(lang.accepts_bytes("The cat ran"));      // original kept
  EXPECT_TRUE(lang.accepts_bytes("The kitten ran"));   // synonym
  EXPECT_TRUE(lang.accepts_bytes("The feline ran"));
  EXPECT_TRUE(lang.accepts_bytes("The dog ran"));      // untouched branch
  EXPECT_FALSE(lang.accepts_bytes("The kitty ran"));
}

TEST(Preprocessors, SynonymsApplyAtEveryOccurrence) {
  SynonymPreprocessor pre(SynonymMap{{"ab", {"z"}}});
  automata::Dfa lang = pre.apply(automata::compile_regex("abab"));
  EXPECT_TRUE(lang.accepts_bytes("abab"));
  EXPECT_TRUE(lang.accepts_bytes("zab"));
  EXPECT_TRUE(lang.accepts_bytes("abz"));
  EXPECT_TRUE(lang.accepts_bytes("zz"));
}

TEST(Preprocessors, SynonymValidation) {
  EXPECT_THROW(SynonymPreprocessor(SynonymMap{{"", {"x"}}}), relm::QueryError);
  EXPECT_THROW(SynonymPreprocessor(SynonymMap{{"x", {""}}}), relm::QueryError);
}

TEST(Preprocessors, SynonymInsideQueryPipeline) {
  const BpeTokenizer& tok = fixture_tokenizer();
  FixedModel model(tok.vocab_size(), tok.eos());
  SimpleSearchQuery query;
  query.query_string = {"the cat", ""};
  query.preprocessors.push_back(std::make_shared<SynonymPreprocessor>(
      std::vector<std::pair<std::string, std::vector<std::string>>>{
          {"cat", {"dog"}}}));
  query.max_results = 10;
  auto outcome = relm::search(model, tok, query);
  std::set<std::string> texts;
  for (const auto& r : outcome.results) texts.insert(r.text);
  EXPECT_TRUE(texts.contains("the cat"));
  EXPECT_TRUE(texts.contains("the dog"));
}

}  // namespace
}  // namespace relm::core

namespace relm::core {
namespace {

// ---------------------------------------------------------------------------
// Property sweep: shortest-path output must equal brute-force ranking.
// ---------------------------------------------------------------------------

struct RankingCase {
  const char* pattern;
  const char* prefix;
};

class ShortestPathRanking : public ::testing::TestWithParam<RankingCase> {};

TEST_P(ShortestPathRanking, MatchesBruteForceOrdering) {
  auto model = fixture_model();
  const BpeTokenizer& tok = fixture_tokenizer();
  const auto& param = GetParam();

  SimpleSearchQuery query;
  query.query_string = {param.pattern, param.prefix};
  query.max_results = 64;
  query.max_expansions = 50000;
  CompiledQuery compiled = CompiledQuery::compile(query, tok);
  auto results = ShortestPathSearch(*model, compiled, query).all();

  // Brute force: enumerate the language, encode canonically, score exactly.
  automata::Dfa lang = automata::compile_regex(param.pattern);
  auto strings = automata::enumerate_strings(lang, 256, 64);
  std::vector<std::pair<double, std::string>> scored;
  for (const auto& s : strings) {
    auto tokens = tok.encode(s);
    scored.push_back({model->sequence_log_prob({}, tokens), s});
  }
  std::sort(scored.begin(), scored.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });

  ASSERT_EQ(results.size(), std::min<std::size_t>(scored.size(), 64));
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_NEAR(results[i].log_prob, scored[i].first, 1e-9)
        << "rank " << i << ": " << results[i].text << " vs " << scored[i].second;
  }
  // Texts agree wherever scores are not tied.
  for (std::size_t i = 0; i < results.size(); ++i) {
    bool tied = (i > 0 && std::abs(scored[i].first - scored[i - 1].first) < 1e-12) ||
                (i + 1 < scored.size() &&
                 std::abs(scored[i].first - scored[i + 1].first) < 1e-12);
    if (!tied) {
      EXPECT_EQ(results[i].text, scored[i].second) << "rank " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Queries, ShortestPathRanking,
    ::testing::Values(
        RankingCase{"The ((cat)|(dog)|(mat))", "The"},
        RankingCase{"The ((cat)|(dog)|(mat))", ""},
        RankingCase{"The (cat|dog)( (sat|ran))?", "The"},
        RankingCase{"((The)|(A)) cat", ""},
        RankingCase{"The c(a|o)t", "The"}));

// ---------------------------------------------------------------------------
// Random-sampling frequencies track exact conditional probabilities.
// ---------------------------------------------------------------------------

TEST(RandomSamplerProperty, FrequenciesMatchExactConditionals) {
  auto model = fixture_model();
  const BpeTokenizer& tok = fixture_tokenizer();
  SimpleSearchQuery query;
  query.query_string = {"The ((cat)|(dog)|(mat))", "The"};
  query.search_strategy = SearchStrategy::kRandomSampling;
  query.num_samples = 6000;
  CompiledQuery compiled = CompiledQuery::compile(query, tok);
  auto samples = RandomSampler(*model, compiled, query, 77).sample_all();

  // Exact conditionals: p(x | in language, given prefix), via the chain rule
  // restricted to automaton-allowed continuations at every step — mirror of
  // the sampler's renormalization semantics (§3.3).
  automata::Dfa lang = automata::compile_regex("The ((cat)|(dog)|(mat))");
  auto strings = automata::enumerate_strings(lang, 16, 32);
  ASSERT_EQ(strings.size(), 3u);

  std::map<std::string, int> counts;
  for (const auto& s : samples) ++counts[s.text];
  ASSERT_EQ(samples.size(), 6000u);
  // All three appear; frequencies ordered like the model's joint scores.
  std::vector<std::pair<double, std::string>> scored;
  for (const auto& s : strings) {
    scored.push_back({model->sequence_log_prob({}, tok.encode(s)), s});
  }
  std::sort(scored.begin(), scored.end(), std::greater<>());
  EXPECT_GE(counts[scored[0].second], counts[scored[1].second]);
  EXPECT_GE(counts[scored[1].second], counts[scored[2].second]);
}

}  // namespace
}  // namespace relm::core

namespace relm::core {
namespace {

// ---------------------------------------------------------------------------
// Batched frontier expansion
// ---------------------------------------------------------------------------

TEST(BatchedExpansion, SameResultSetAsStrictDijkstra) {
  auto model = fixture_model();
  const BpeTokenizer& tok = fixture_tokenizer();
  SimpleSearchQuery query;
  query.query_string = {"The ((cat)|(dog)|(mat))( (sat|ran))?", "The"};
  query.max_results = 20;
  query.speculative_expansion = false;  // the lockstep batch path under test
  CompiledQuery compiled = CompiledQuery::compile(query, tok);

  auto strict = ShortestPathSearch(*model, compiled, query).all();
  query.expansion_batch_size = 8;
  auto batched = ShortestPathSearch(*model, compiled, query).all();

  ASSERT_EQ(strict.size(), batched.size());
  // Same result set; emission order may differ only within a batch window,
  // and scores are identical per text.
  std::map<std::string, double> strict_scores, batched_scores;
  for (const auto& r : strict) strict_scores[r.text] = r.log_prob;
  for (const auto& r : batched) batched_scores[r.text] = r.log_prob;
  EXPECT_EQ(strict_scores.size(), batched_scores.size());
  for (const auto& [text, score] : strict_scores) {
    ASSERT_TRUE(batched_scores.contains(text)) << text;
    EXPECT_NEAR(batched_scores[text], score, 1e-9) << text;
  }
  // The top result is still the global optimum (the first pump's best pop
  // precedes everything it could spawn).
  EXPECT_EQ(strict[0].text, batched[0].text);
}

TEST(BatchedExpansion, BatchModelCalledWithMultipleContexts) {
  // Instrumented model: records the largest batch it saw.
  class CountingModel : public model::LanguageModel {
   public:
    explicit CountingModel(std::shared_ptr<model::LanguageModel> inner)
        : inner_(std::move(inner)) {}
    std::size_t vocab_size() const override { return inner_->vocab_size(); }
    tokenizer::TokenId eos() const override { return inner_->eos(); }
    std::size_t max_sequence_length() const override {
      return inner_->max_sequence_length();
    }
    std::vector<double> next_log_probs(
        std::span<const tokenizer::TokenId> ctx) const override {
      return inner_->next_log_probs(ctx);
    }
    std::vector<std::vector<double>> next_log_probs_batch(
        std::span<const std::vector<tokenizer::TokenId>> contexts) const override {
      max_batch_ = std::max(max_batch_, contexts.size());
      return inner_->next_log_probs_batch(contexts);
    }
    mutable std::size_t max_batch_ = 0;

   private:
    std::shared_ptr<model::LanguageModel> inner_;
  };

  CountingModel counting(fixture_model());
  SimpleSearchQuery query;
  query.query_string = {"The ((cat)|(dog)|(mat)) ((sat)|(ran))", "The"};
  query.max_results = 6;
  query.expansion_batch_size = 4;
  query.speculative_expansion = false;  // batching exists only in lockstep mode
  CompiledQuery compiled = CompiledQuery::compile(query, fixture_tokenizer());
  ShortestPathSearch(counting, compiled, query).all();
  EXPECT_GT(counting.max_batch_, 1u);
  EXPECT_LE(counting.max_batch_, 4u);
}

// ---------------------------------------------------------------------------
// Failure injection: degenerate models must not crash the engine.
// ---------------------------------------------------------------------------

class DeadModel : public model::LanguageModel {
 public:
  DeadModel(std::size_t vocab, TokenId eos) : vocab_(vocab), eos_(eos) {}
  std::size_t vocab_size() const override { return vocab_; }
  TokenId eos() const override { return eos_; }
  std::size_t max_sequence_length() const override { return 16; }
  std::vector<double> next_log_probs(std::span<const TokenId>) const override {
    // All mass on EOS: every non-EOS continuation has -inf log-prob.
    std::vector<double> lp(vocab_, -std::numeric_limits<double>::infinity());
    lp[eos_] = 0.0;
    return lp;
  }

 private:
  std::size_t vocab_;
  TokenId eos_;
};

TEST(FailureInjection, AllMassOnEosStillTerminates) {
  const BpeTokenizer& tok = fixture_tokenizer();
  DeadModel model(tok.vocab_size(), tok.eos());
  SimpleSearchQuery query;
  query.query_string = {"The ((cat)|(dog))", "The"};
  query.max_results = 5;
  query.max_expansions = 100;
  CompiledQuery compiled = CompiledQuery::compile(query, tok);
  // Shortest path: matches exist (prefix bypass + infinite costs), engine
  // terminates and reports them with -inf scores rather than hanging.
  auto results = ShortestPathSearch(model, compiled, query).all();
  for (const auto& r : results) EXPECT_TRUE(std::isinf(r.log_prob));
  // Random sampling: every attempt dead-ends; sample_all gives up after the
  // retry budget instead of looping forever.
  query.search_strategy = SearchStrategy::kRandomSampling;
  query.num_samples = 3;
  RandomSampler sampler(model, compiled, query, 1);
  auto samples = sampler.sample_all();
  EXPECT_TRUE(samples.empty());
  EXPECT_GT(sampler.stats().sample_dead_ends, 0u);
}

// ---------------------------------------------------------------------------
// Parallel batch evaluation: determinism and cache accounting
// ---------------------------------------------------------------------------

TEST(ParallelBatch, SearchResultsIndependentOfThreadCount) {
  // The determinism guarantee: identical result streams (tokens, text,
  // scores, call counts) for any shared-pool size, including pool sizes
  // larger and smaller than the expansion batch.
  auto model = fixture_model();
  const BpeTokenizer& tok = fixture_tokenizer();
  SimpleSearchQuery query;
  query.query_string = {"The ((cat)|(dog)|(mat))( (sat|ran))?", "The"};
  query.max_results = 20;
  query.expansion_batch_size = 8;
  CompiledQuery compiled = CompiledQuery::compile(query, tok);

  util::ThreadPool::set_shared_threads(1);
  auto reference = ShortestPathSearch(*model, compiled, query).all();
  ASSERT_FALSE(reference.empty());

  for (std::size_t threads : {2u, 4u, 16u}) {
    util::ThreadPool::set_shared_threads(threads);
    auto parallel = ShortestPathSearch(*model, compiled, query).all();
    ASSERT_EQ(parallel.size(), reference.size()) << threads << " threads";
    for (std::size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ(parallel[i].tokens, reference[i].tokens);
      EXPECT_EQ(parallel[i].text, reference[i].text);
      EXPECT_DOUBLE_EQ(parallel[i].log_prob, reference[i].log_prob);
      EXPECT_EQ(parallel[i].llm_calls_at_emission,
                reference[i].llm_calls_at_emission);
    }
  }
  util::ThreadPool::set_shared_threads(1);
}

TEST(ParallelBatch, ModelBatchMatchesSerialEvaluation) {
  // The default next_log_probs_batch fans out over the shared pool; results
  // must land in input order with values identical to serial calls.
  auto model = fixture_model();
  const BpeTokenizer& tok = fixture_tokenizer();
  std::vector<std::vector<TokenId>> contexts;
  for (const char* s : {"The cat", "The dog ran", "The", "The cat sat on",
                        "The dog", "The mat", "The cat sat", "The dog ran far"}) {
    contexts.push_back(tok.encode(s));
  }
  std::vector<std::vector<double>> serial;
  for (const auto& ctx : contexts) serial.push_back(model->next_log_probs(ctx));

  for (std::size_t threads : {1u, 3u, 8u}) {
    util::ThreadPool::set_shared_threads(threads);
    EXPECT_EQ(model->next_log_probs_batch(contexts), serial)
        << threads << " threads";
  }
  util::ThreadPool::set_shared_threads(1);
}

TEST(ParallelBatch, SearchStatsReportCacheActivity) {
  // A search over a caching model attributes the cache's hit/miss deltas to
  // its own stats; the same search on the bare model reports zeros.
  auto inner = fixture_model();
  SimpleSearchQuery query;
  query.query_string = {"The ((cat)|(dog)|(mat)) ((sat)|(ran))", "The"};
  query.max_results = 10;
  query.expansion_batch_size = 4;
  CompiledQuery compiled = CompiledQuery::compile(query, fixture_tokenizer());

  ShortestPathSearch bare(*inner, compiled, query);
  bare.all();
  EXPECT_EQ(bare.stats().cache_hits, 0u);
  EXPECT_EQ(bare.stats().cache_misses, 0u);
  EXPECT_EQ(bare.stats().cache_hit_rate(), 0.0);

  model::CachingModel cached(inner);
  // Pre-existing counters must not leak into the search's deltas.
  cached.next_log_probs(fixture_tokenizer().encode("The cat"));
  const std::size_t warm_misses = cached.misses();
  EXPECT_GT(warm_misses, 0u);

  ShortestPathSearch first(cached, compiled, query);
  first.all();
  EXPECT_GT(first.stats().cache_misses, 0u);
  EXPECT_EQ(first.stats().cache_misses + warm_misses, cached.misses());

  // A repeated run hits what the first one populated.
  ShortestPathSearch second(cached, compiled, query);
  second.all();
  EXPECT_GT(second.stats().cache_hits, 0u);
  EXPECT_GT(second.stats().cache_hit_rate(), 0.0);
  EXPECT_LT(second.stats().cache_misses, first.stats().cache_misses);
}

TEST(FailureInjection, ZeroExpansionBatchTreatedAsOne) {
  auto model = fixture_model();
  SimpleSearchQuery query;
  query.query_string = {"The ((cat)|(dog))", "The"};
  query.expansion_batch_size = 0;
  query.max_results = 2;
  CompiledQuery compiled = CompiledQuery::compile(query, fixture_tokenizer());
  auto results = ShortestPathSearch(*model, compiled, query).all();
  EXPECT_EQ(results.size(), 2u);
}

}  // namespace
}  // namespace relm::core

namespace relm::core {
namespace {

// ---------------------------------------------------------------------------
// Query analyzer
// ---------------------------------------------------------------------------

TEST(Analyzer, FiniteMultipleChoiceQuery) {
  const BpeTokenizer& tok = fixture_tokenizer();
  SimpleSearchQuery query;
  query.query_string = {"The ((cat)|(dog))", "The"};
  QueryAnalysis analysis = analyze_query(query, tok);
  EXPECT_FALSE(analysis.body_infinite);
  EXPECT_EQ(analysis.body_string_count, 2u);
  EXPECT_FALSE(analysis.dynamic_canonical);
  ASSERT_TRUE(analysis.shortest_match_length.has_value());
  EXPECT_EQ(*analysis.shortest_match_length, 4u);  // " cat"
  EXPECT_DOUBLE_EQ(analysis.body_token_paths, 2.0);
  EXPECT_NE(analysis.summary().find("finite"), std::string::npos);
}

TEST(Analyzer, InfiniteQueryFlagsDynamicCanonical) {
  const BpeTokenizer& tok = fixture_tokenizer();
  SimpleSearchQuery query;
  query.query_string = {"(cat)+", ""};
  QueryAnalysis analysis = analyze_query(query, tok);
  EXPECT_TRUE(analysis.body_infinite);
  EXPECT_TRUE(analysis.dynamic_canonical);
  EXPECT_GT(analysis.max_body_branching, 0.0);
  EXPECT_NE(analysis.summary().find("infinite"), std::string::npos);
}

TEST(Analyzer, PreprocessorsGrowTheLanguage) {
  const BpeTokenizer& tok = fixture_tokenizer();
  SimpleSearchQuery plain;
  plain.query_string = {"cat", ""};
  QueryAnalysis before = analyze_query(plain, tok);

  SimpleSearchQuery edited = plain;
  edited.preprocessors.push_back(std::make_shared<LevenshteinPreprocessor>(
      1, Preprocessor::Target::kBody,
      automata::ByteSet(automata::word_set())));
  QueryAnalysis after = analyze_query(edited, tok);
  EXPECT_GT(after.body_string_count, before.body_string_count);
  EXPECT_GT(after.body_token_paths, before.body_token_paths);
}

TEST(Analyzer, AllTokensCountsEncodings) {
  const BpeTokenizer& tok = fixture_tokenizer();
  SimpleSearchQuery query;
  query.query_string = {"The", ""};
  query.tokenization_strategy = TokenizationStrategy::kAllTokens;
  QueryAnalysis analysis = analyze_query(query, tok);
  EXPECT_DOUBLE_EQ(analysis.body_token_paths, tok.count_encodings("The"));
}

}  // namespace
}  // namespace relm::core

namespace relm::core {
namespace {

// ---------------------------------------------------------------------------
// Appendix-B reference construction == trie-optimized construction
// ---------------------------------------------------------------------------

class ShortcutEdgeEquivalence : public ::testing::TestWithParam<const char*> {};

TEST_P(ShortcutEdgeEquivalence, TrieVariantMatchesLiteralAlgorithm) {
  const BpeTokenizer& tok = fixture_tokenizer();
  automata::Dfa chars = automata::compile_regex(GetParam());
  TokenAutomaton fast =
      compile_token_automaton(chars, tok, TokenizationStrategy::kAllTokens);
  automata::Dfa reference = build_all_tokens_trie_variant(chars, tok);
  // Identical machines, not merely equivalent: both mirror the trimmed char
  // DFA's states and add exactly the same shortcut edges.
  EXPECT_EQ(fast.dfa, reference) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Patterns, ShortcutEdgeEquivalence,
                         ::testing::Values("The", "The ((cat)|(dog))",
                                           "(cat)+", "[a-d]{1,3}",
                                           "The cat sat on the mat."));

}  // namespace
}  // namespace relm::core
