// Tests for the observability layer (src/obs): metrics registry correctness
// under ThreadPool concurrency (the tsan CI job includes every test whose
// name contains "Obs"), span nesting/ordering, and a round-trip check that
// the emitted Chrome-trace JSON parses and contains the expected phase
// names for an in-process query.

#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "core/relm.hpp"
#include "model/ngram_model.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace relm::obs {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON parser — just enough to round-trip what obs emits (objects,
// arrays, strings, numbers, booleans). Parse failures throw std::runtime_error
// so a malformed trace fails the test with a position.
// ---------------------------------------------------------------------------

struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string,
               std::shared_ptr<JsonArray>, std::shared_ptr<JsonObject>>
      v;

  bool is_object() const {
    return std::holds_alternative<std::shared_ptr<JsonObject>>(v);
  }
  const JsonObject& object() const {
    return *std::get<std::shared_ptr<JsonObject>>(v);
  }
  const JsonArray& array() const {
    return *std::get<std::shared_ptr<JsonArray>>(v);
  }
  double number() const { return std::get<double>(v); }
  const std::string& str() const { return std::get<std::string>(v); }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("json parse error at " + std::to_string(pos_) +
                             ": " + why);
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end");
    return text_[pos_];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  JsonValue value() {
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return JsonValue{string()};
      case 't': literal("true"); return JsonValue{true};
      case 'f': literal("false"); return JsonValue{false};
      case 'n': literal("null"); return JsonValue{nullptr};
      default: return JsonValue{number()};
    }
  }
  void literal(const std::string& lit) {
    if (text_.compare(pos_, lit.size(), lit) != 0) fail("bad literal");
    pos_ += lit.size();
  }
  std::string string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("bad escape");
        char e = text_[pos_++];
        switch (e) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'u': pos_ += 4; out += '?'; break;  // tests don't need \u
          default: out += e; break;
        }
      } else {
        out += c;
      }
    }
    if (pos_ >= text_.size()) fail("unterminated string");
    ++pos_;  // closing quote
    return out;
  }
  double number() {
    std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            std::string("+-.eE").find(text_[pos_]) != std::string::npos)) {
      ++pos_;
    }
    if (pos_ == start) fail("expected number");
    return std::stod(text_.substr(start, pos_ - start));
  }
  JsonValue object() {
    expect('{');
    auto obj = std::make_shared<JsonObject>();
    if (peek() == '}') {
      ++pos_;
      return JsonValue{obj};
    }
    for (;;) {
      std::string key = string();
      expect(':');
      (*obj)[key] = value();
      if (peek() == ',') { ++pos_; continue; }
      expect('}');
      return JsonValue{obj};
    }
  }
  JsonValue array() {
    expect('[');
    auto arr = std::make_shared<JsonArray>();
    if (peek() == ']') {
      ++pos_;
      return JsonValue{arr};
    }
    for (;;) {
      arr->push_back(value());
      if (peek() == ',') { ++pos_; continue; }
      expect(']');
      return JsonValue{arr};
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

TEST(ObsMetrics, CounterAddValueReset) {
  Counter& c = Registry::instance().counter("test.obs.counter_basic");
  c.reset();
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsMetrics, SameNameReturnsSameHandle) {
  Counter& a = Registry::instance().counter("test.obs.counter_same");
  Counter& b = Registry::instance().counter("test.obs.counter_same");
  EXPECT_EQ(&a, &b);
}

TEST(ObsMetrics, KindMismatchThrows) {
  Registry::instance().counter("test.obs.kind_mismatch");
  EXPECT_THROW(Registry::instance().gauge("test.obs.kind_mismatch"),
               std::logic_error);
  EXPECT_THROW(Registry::instance().histogram("test.obs.kind_mismatch"),
               std::logic_error);
}

TEST(ObsMetrics, GaugeSetAndAdd) {
  Gauge& g = Registry::instance().gauge("test.obs.gauge");
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(ObsMetrics, HistogramBucketsCountSum) {
  const double bounds[] = {1.0, 10.0, 100.0};
  Histogram& h =
      Registry::instance().histogram("test.obs.hist_buckets", bounds);
  h.reset();
  h.observe(0.5);    // bucket 0
  h.observe(1.0);    // bucket 0 (le semantics)
  h.observe(5.0);    // bucket 1
  h.observe(50.0);   // bucket 2
  h.observe(500.0);  // overflow
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 556.5);
  EXPECT_DOUBLE_EQ(h.mean(), 556.5 / 5.0);
  std::vector<std::uint64_t> buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(buckets[3], 1u);
}

// Striped counters fold to an exact total once writers have joined. Runs the
// adds through ThreadPool::parallel_for so the tsan job sees the same
// write path the executor uses.
TEST(ObsMetrics, CounterConcurrentUnderThreadPool) {
  Counter& c = Registry::instance().counter("test.obs.counter_mt");
  c.reset();
  util::ThreadPool pool(4);
  const std::size_t tasks = 64;
  const std::size_t adds_per_task = 1000;
  pool.parallel_for(tasks, [&](std::size_t) {
    for (std::size_t i = 0; i < adds_per_task; ++i) c.add();
  });
  EXPECT_EQ(c.value(), tasks * adds_per_task);
}

TEST(ObsMetrics, HistogramConcurrentUnderThreadPool) {
  Histogram& h = Registry::instance().histogram(
      "test.obs.hist_mt", Histogram::default_size_bounds());
  h.reset();
  util::ThreadPool pool(4);
  const std::size_t tasks = 64;
  const std::size_t per_task = 200;
  pool.parallel_for(tasks, [&](std::size_t t) {
    for (std::size_t i = 0; i < per_task; ++i) {
      h.observe(static_cast<double>(t % 8));
    }
  });
  EXPECT_EQ(h.count(), tasks * per_task);
  std::uint64_t total = 0;
  for (std::uint64_t b : h.bucket_counts()) total += b;
  EXPECT_EQ(total, tasks * per_task);
}

TEST(ObsMetrics, SnapshotJsonRoundTrips) {
  Registry::instance().counter("test.obs.snap_counter").add(7);
  Registry::instance().gauge("test.obs.snap_gauge").set(3.0);
  Registry::instance()
      .histogram("test.obs.snap_hist", Histogram::default_size_bounds())
      .observe(2.0);
  std::string json = Registry::instance().snapshot().to_json();
  JsonValue root = JsonParser(json).parse();
  ASSERT_TRUE(root.is_object());
  const JsonObject& counters = root.object().at("counters").object();
  EXPECT_GE(counters.at("test.obs.snap_counter").number(), 7.0);
  const JsonObject& gauges = root.object().at("gauges").object();
  EXPECT_DOUBLE_EQ(gauges.at("test.obs.snap_gauge").number(), 3.0);
  const JsonObject& hist =
      root.object().at("histograms").object().at("test.obs.snap_hist").object();
  EXPECT_GE(hist.at("count").number(), 1.0);
  EXPECT_FALSE(hist.at("buckets").array().empty());
}

// ---------------------------------------------------------------------------
// Tracing spans
// ---------------------------------------------------------------------------

TEST(ObsTrace, DisabledSpanRecordsNothing) {
  Trace::start();  // clear any prior events
  Trace::stop();
  const std::size_t before = Trace::event_count();
  { RELM_TRACE_SPAN("test.disabled"); }
  EXPECT_EQ(Trace::event_count(), before);
}

TEST(ObsTrace, SpanNestingAndOrdering) {
  Trace::start();
  {
    Span outer("test.outer");
    { Span inner("test.inner"); }
  }
  Trace::stop();
  EXPECT_EQ(Trace::event_count(), 2u);

  std::ostringstream out;
  Trace::write_chrome_trace(out);
  JsonValue root = JsonParser(out.str()).parse();
  const JsonArray& events = root.object().at("traceEvents").array();
  ASSERT_EQ(events.size(), 2u);
  const JsonObject* outer = nullptr;
  const JsonObject* inner = nullptr;
  for (const JsonValue& e : events) {
    const JsonObject& obj = e.object();
    if (obj.at("name").str() == "test.outer") outer = &obj;
    if (obj.at("name").str() == "test.inner") inner = &obj;
    EXPECT_EQ(obj.at("ph").str(), "X");
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  // RAII nesting: the inner interval lies within the outer interval.
  const double outer_ts = outer->at("ts").number();
  const double outer_end = outer_ts + outer->at("dur").number();
  const double inner_ts = inner->at("ts").number();
  const double inner_end = inner_ts + inner->at("dur").number();
  EXPECT_GE(inner_ts, outer_ts);
  EXPECT_LE(inner_end, outer_end);
}

TEST(ObsTrace, SpanFeedsLatencyHistogram) {
  Trace::start();
  { RELM_TRACE_SPAN("test_hist_phase"); }
  Trace::stop();
  Histogram& h =
      Registry::instance().histogram("span.test_hist_phase.seconds");
  EXPECT_GE(h.count(), 1u);
}

// Spans recorded from pool threads land in per-thread buffers; all of them
// must survive into the serialized trace (tsan-covered).
TEST(ObsTrace, ConcurrentSpansFromThreadPool) {
  Trace::start();
  util::ThreadPool pool(4);
  const std::size_t tasks = 32;
  pool.parallel_for(tasks, [&](std::size_t) {
    RELM_TRACE_SPAN("test.concurrent");
  });
  Trace::stop();
  // parallel_for itself contributes one span on the calling thread.
  EXPECT_GE(Trace::event_count(), tasks);
  std::ostringstream out;
  Trace::write_chrome_trace(out);
  JsonValue root = JsonParser(out.str()).parse();
  std::size_t seen = 0;
  for (const JsonValue& e : root.object().at("traceEvents").array()) {
    if (e.object().at("name").str() == "test.concurrent") ++seen;
  }
  EXPECT_EQ(seen, tasks);
}

TEST(ObsTrace, JsonlEveryLineParses) {
  Trace::start();
  { RELM_TRACE_SPAN("test.jsonl_a"); }
  { RELM_TRACE_SPAN("test.jsonl_b"); }
  Trace::stop();
  std::ostringstream out;
  Trace::write_jsonl(out);
  std::istringstream in(out.str());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    JsonValue v = JsonParser(line).parse();
    ASSERT_TRUE(v.is_object());
    EXPECT_TRUE(v.object().contains("name"));
    ++lines;
  }
  EXPECT_GE(lines, 2u);
}

// ---------------------------------------------------------------------------
// End-to-end: an in-process query, traced, must produce a parseable Chrome
// trace containing the parse/determinize/compile/executor phases.
// ---------------------------------------------------------------------------

TEST(ObsTrace, QueryTraceContainsExpectedPhases) {
  std::string text;
  for (int i = 0; i < 40; ++i) {
    text += "The cat sat on the mat. The dog ran far. ";
  }
  tokenizer::BpeTokenizer::TrainConfig tok_config;
  tok_config.vocab_size = 300;
  tokenizer::BpeTokenizer tok =
      tokenizer::BpeTokenizer::train(text, tok_config);
  model::NgramModel::Config model_config;
  model_config.order = 3;
  model_config.max_sequence_length = 32;
  std::vector<std::string> docs(20, "The cat sat on the mat.");
  std::shared_ptr<model::NgramModel> model =
      model::NgramModel::train(tok, docs, model_config);

  core::SimpleSearchQuery query;
  query.query_string.query_str = "The ((cat)|(dog))";
  query.max_results = 2;

  Trace::start();
  SearchOutcome outcome = search(*model, tok, query);
  Trace::stop();
  EXPECT_FALSE(outcome.results.empty());

  std::ostringstream out;
  Trace::write_chrome_trace(out);
  JsonValue root = JsonParser(out.str()).parse();
  std::vector<std::string> names;
  for (const JsonValue& e : root.object().at("traceEvents").array()) {
    names.push_back(e.object().at("name").str());
  }
  auto has = [&](const std::string& name) {
    return std::find(names.begin(), names.end(), name) != names.end();
  };
  EXPECT_TRUE(has("regex.parse"));
  EXPECT_TRUE(has("automata.determinize"));
  EXPECT_TRUE(has("compile.query"));
  EXPECT_TRUE(has("executor.pump"));
  EXPECT_TRUE(has("relm.search"));
}

}  // namespace
}  // namespace relm::obs
