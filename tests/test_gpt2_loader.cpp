#include <gtest/gtest.h>

#include <sstream>

#include "tokenizer/gpt2_loader.hpp"
#include "util/errors.hpp"

namespace relm::tokenizer {
namespace {

// A miniature vocab.json in the real file's conventions: byte-level tokens
// in the GPT-2 alias alphabet, 'Ġ' (U+0120) for a leading space, and the
// <|endoftext|> special.
std::string mini_vocab_json() {
  // ids must be contiguous from 0.
  return R"({
    "T": 0, "h": 1, "e": 2, "c": 3, "a": 4, "t": 5,
    "The": 6, "Ġcat": 7, "Ġ": 8, "at": 9,
    "<|endoftext|>": 10, "ÿþ": 11
  })";
}

TEST(Gpt2Loader, ByteToUnicodeTableMatchesKnownValues) {
  const auto& table = gpt2_byte_to_unicode();
  EXPECT_EQ(table['!'], U'!');
  EXPECT_EQ(table['~'], U'~');
  EXPECT_EQ(table[' '], char32_t{0x120});   // the famous Ġ
  EXPECT_EQ(table['\n'], char32_t{0x10a});  // Ċ
  // Bijective: 256 distinct code points.
  std::set<char32_t> seen(table.begin(), table.end());
  EXPECT_EQ(seen.size(), 256u);
}

TEST(Gpt2Loader, LoadsAndEncodesLikeGpt2) {
  std::stringstream in(mini_vocab_json());
  BpeTokenizer tok = load_gpt2_vocab(in);
  EXPECT_EQ(tok.vocab_size(), 12u);
  EXPECT_EQ(tok.eos(), 10u);

  // "The cat" -> [The][Ġcat] under greedy longest match.
  auto enc = tok.encode("The cat");
  ASSERT_EQ(enc.size(), 2u);
  EXPECT_EQ(enc[0], 6u);
  EXPECT_EQ(enc[1], 7u);
  EXPECT_EQ(tok.decode(enc), "The cat");

  // The aliased space token decodes to a raw space.
  EXPECT_EQ(tok.token_string(8), " ");
}

TEST(Gpt2Loader, TwoByteAliasesDecode) {
  // "ÿþ" are direct-mapped bytes 0xff, 0xfe (UTF-8 encoded in the
  // JSON); the loader must invert the UTF-8, not copy it.
  std::stringstream in(mini_vocab_json());
  BpeTokenizer tok = load_gpt2_vocab(in);
  ASSERT_EQ(tok.token_string(11).size(), 2u);
  EXPECT_EQ(static_cast<unsigned char>(tok.token_string(11)[0]), 0xffu);
  EXPECT_EQ(static_cast<unsigned char>(tok.token_string(11)[1]), 0xfeu);
}

TEST(Gpt2Loader, RejectsMalformedInput) {
  std::stringstream not_json("hello");
  EXPECT_THROW(load_gpt2_vocab(not_json), relm::Error);

  std::stringstream gap(R"({"a": 0, "b": 2, "<|endoftext|>": 3})");
  EXPECT_THROW(load_gpt2_vocab(gap), relm::Error);

  std::stringstream no_eos(R"({"a": 0, "b": 1})");
  EXPECT_THROW(load_gpt2_vocab(no_eos), relm::Error);

  std::stringstream dup(R"({"a": 0, "b": 0, "<|endoftext|>": 1})");
  EXPECT_THROW(load_gpt2_vocab(dup), relm::Error);

  EXPECT_THROW(load_gpt2_vocab_file("/nonexistent/vocab.json"), relm::Error);
}

TEST(Gpt2Loader, SurrogatePairEscapesParse) {
  // An astral-plane escape decodes as UTF-8 and, being outside the alias
  // alphabet, is kept as an id-stable placeholder token.
  std::stringstream in(R"({"a": 0, "😀": 1, "<|endoftext|>": 2})");
  BpeTokenizer tok = load_gpt2_vocab(in);
  EXPECT_EQ(tok.vocab_size(), 3u);
  EXPECT_EQ(tok.token_string(1)[0], '\xff');  // placeholder, never matches text
}

}  // namespace
}  // namespace relm::tokenizer
