// Properties of the batched multi-stream generation engine
// (src/core/generate/): per-stream RNG isolation, batched-vs-solo
// equivalence across thread counts, suspend/resume and late-join
// equivalence, EOS/budget retirement edges, and oracle-checked conditional
// probabilities of the emitted samples. Plus the StreamRng regression pin:
// stream 0 must reproduce the bare Pcg32 sequence the sampler has always
// used, bit for bit.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/compiled_query.hpp"
#include "core/executor.hpp"
#include "core/generate/generate_engine.hpp"
#include "model/ngram_model.hpp"
#include "testing/oracle.hpp"
#include "tokenizer/bpe.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace relm::core::generate {
namespace {

using tokenizer::TokenId;

// ---------------------------------------------------------------------------
// StreamRng: the named per-stream seeding shared by the sampler and the
// engine.

// Stream 0 IS Pcg32(master): the sampler predates multi-stream generation
// and its RNG stream must not move when seeding goes through StreamRng.
TEST(StreamRng, StreamZeroMatchesBarePcg32BitForBit) {
  for (std::uint64_t seed :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{42},
        std::uint64_t{0xdeadbeef}, util::StreamRng::kDefaultSeed}) {
    util::Pcg32 bare(seed);
    util::Pcg32 stream0 = util::StreamRng::stream(seed, 0);
    for (int i = 0; i < 64; ++i) {
      ASSERT_EQ(bare.next(), stream0.next()) << "seed " << seed;
    }
  }
}

// Golden pin: these draws were recorded when StreamRng was introduced. If
// this test breaks, every stored seed in every script and doc changes
// meaning — do not update the constants without a migration note.
TEST(StreamRng, GoldenDrawsArePinned) {
  const std::uint32_t want0[] = {0x713066eau, 0x3c7a0d56u, 0xf424216au,
                                 0x25c89145u};
  const std::uint32_t want1[] = {0xbf8b8e1au, 0x530db62fu, 0x59f309ceu,
                                 0xa2fc55e9u};
  const std::uint32_t want2[] = {0x2297b6c3u, 0xd850c4feu, 0x33c31a1du,
                                 0x247b29e3u};
  util::Pcg32 s0 = util::StreamRng::stream(42, 0);
  util::Pcg32 s1 = util::StreamRng::stream(42, 1);
  util::Pcg32 s2 = util::StreamRng::stream(42, 2);
  for (std::uint32_t want : want0) EXPECT_EQ(s0.next(), want);
  for (std::uint32_t want : want1) EXPECT_EQ(s1.next(), want);
  for (std::uint32_t want : want2) EXPECT_EQ(s2.next(), want);
}

TEST(StreamRng, StreamsAreIndependentAndReproducible) {
  // Same (master, index) twice -> identical draws; different indices ->
  // different draws (the splitmix64 mix plus distinct PCG sequence constants
  // make a collision effectively impossible for small indices).
  for (std::uint64_t index : {std::uint64_t{0}, std::uint64_t{1},
                              std::uint64_t{2}, std::uint64_t{7},
                              std::uint64_t{63}}) {
    util::Pcg32 a = util::StreamRng::stream(9, index);
    util::Pcg32 b = util::StreamRng::stream(9, index);
    for (int i = 0; i < 16; ++i) ASSERT_EQ(a.next(), b.next());
  }
  util::Pcg32 s1 = util::StreamRng::stream(9, 1);
  util::Pcg32 s2 = util::StreamRng::stream(9, 2);
  bool all_equal = true;
  for (int i = 0; i < 16; ++i) all_equal &= (s1.next() == s2.next());
  EXPECT_FALSE(all_equal);
}

// ---------------------------------------------------------------------------
// Engine fixtures.

struct Fixture {
  std::shared_ptr<tokenizer::BpeTokenizer> tok;
  std::shared_ptr<model::LanguageModel> model;
  SimpleSearchQuery query;
  CompiledQuery compiled;
};

Fixture uniform_fixture(std::vector<std::string> vocab, const std::string& body,
                        SimpleSearchQuery base = {}) {
  const std::size_t vocab_size = vocab.size();
  auto tok = std::make_shared<tokenizer::BpeTokenizer>(
      tokenizer::BpeTokenizer::from_vocab(std::move(vocab)));
  auto model = std::make_shared<model::UniformModel>(vocab_size, 0, 24);
  base.query_string = {body, ""};
  CompiledQuery compiled = CompiledQuery::compile(base, *tok);
  return {std::move(tok), std::move(model), std::move(base),
          std::move(compiled)};
}

// Everything a stream emitted, for byte-identical comparison.
struct StreamOutput {
  StreamState state;
  std::vector<TokenId> tokens;
  std::string text;
  double log_prob = 0.0;

  bool operator==(const StreamOutput&) const = default;
};

StreamOutput snapshot(const GenerateEngine& engine,
                      GenerateEngine::StreamId id) {
  StreamOutput out{engine.state(id), {}, "", 0.0};
  if (const auto& r = engine.result(id)) {
    out.tokens = r->tokens;
    out.text = r->text;
    out.log_prob = r->log_prob;
  }
  return out;
}

// Runs stream `rng_stream` alone in its own engine and returns its output.
StreamOutput solo_run(const Fixture& f, std::uint64_t master_seed,
                      std::uint64_t rng_stream, StreamSpec spec = {}) {
  GenerateEngine engine(*f.model, f.compiled, f.query, master_seed);
  spec.rng_stream = rng_stream;
  const GenerateEngine::StreamId id = engine.add_stream(spec);
  engine.run();
  return snapshot(engine, id);
}

// ---------------------------------------------------------------------------
// Engine <-> sampler equivalence: a default-spec stream at rng_stream 0 is
// exactly one RandomSampler attempt with the same seed.

TEST(GenerateEngine, SingleStreamMatchesSamplerAttemptByteForByte) {
  Fixture f = uniform_fixture({"", "a", "b", "ab", "c"}, "(a|b|c){1,4}");
  for (std::uint64_t seed = 0; seed < 24; ++seed) {
    RandomSampler sampler(*f.model, f.compiled, f.query, seed);
    std::optional<SearchResult> want = sampler.sample_once();

    StreamOutput got = solo_run(f, seed, /*rng_stream=*/0);
    if (want) {
      ASSERT_EQ(got.state, StreamState::kDone) << "seed " << seed;
      EXPECT_EQ(got.tokens, want->tokens) << "seed " << seed;
      EXPECT_EQ(got.text, want->text) << "seed " << seed;
      EXPECT_EQ(got.log_prob, want->log_prob) << "seed " << seed;
    } else {
      EXPECT_EQ(got.state, StreamState::kDeadEnd) << "seed " << seed;
    }
  }
}

// ---------------------------------------------------------------------------
// RNG isolation: co-tenants cannot perturb a stream.

TEST(GenerateEngine, CoTenantsNeverChangeAStreamsOutput) {
  Fixture f = uniform_fixture({"", "a", "b", "ab"}, "(a|b){1,6}");
  const std::uint64_t seed = 5;

  const StreamOutput solo0 = solo_run(f, seed, 0);
  const StreamOutput solo1 = solo_run(f, seed, 1);

  // Two co-tenants.
  {
    GenerateEngine engine(*f.model, f.compiled, f.query, seed);
    auto id0 = engine.add_stream();
    auto id1 = engine.add_stream();
    engine.run();
    EXPECT_EQ(snapshot(engine, id0), solo0);
    EXPECT_EQ(snapshot(engine, id1), solo1);
  }

  // Eight co-tenants, one cancelled mid-run: streams 0 and 1 still match
  // their solo runs exactly.
  {
    GenerateEngine engine(*f.model, f.compiled, f.query, seed);
    std::vector<GenerateEngine::StreamId> ids;
    for (int i = 0; i < 8; ++i) ids.push_back(engine.add_stream());
    engine.tick();
    engine.cancel(ids[7]);
    engine.run();
    EXPECT_EQ(engine.state(ids[7]), StreamState::kCancelled);
    EXPECT_EQ(snapshot(engine, ids[0]), solo0);
    EXPECT_EQ(snapshot(engine, ids[1]), solo1);
  }
}

// ---------------------------------------------------------------------------
// Cursor control: suspend/resume and late joiners change scheduling, never
// content.

TEST(GenerateEngine, SuspendResumeIsOutputNeutral) {
  Fixture f = uniform_fixture({"", "a", "b"}, "(a|b){2,8}");
  const std::uint64_t seed = 11;
  const StreamOutput solo0 = solo_run(f, seed, 0);
  const StreamOutput solo1 = solo_run(f, seed, 1);

  GenerateEngine engine(*f.model, f.compiled, f.query, seed);
  auto id0 = engine.add_stream();
  auto id1 = engine.add_stream();
  engine.tick();  // both activate and take their first step
  engine.suspend(id1);
  engine.tick();  // stream 0 runs alone
  engine.tick();
  engine.resume(id1);
  engine.run();
  EXPECT_EQ(snapshot(engine, id0), solo0);
  EXPECT_EQ(snapshot(engine, id1), solo1);
}

TEST(GenerateEngine, SuspendBeforeFirstTickStillActivatesOnResume) {
  Fixture f = uniform_fixture({"", "a", "b"}, "(a|b){1,4}");
  const std::uint64_t seed = 3;
  const StreamOutput solo1 = solo_run(f, seed, 1);

  GenerateEngine engine(*f.model, f.compiled, f.query, seed);
  auto id0 = engine.add_stream();
  auto id1 = engine.add_stream();
  engine.suspend(id1);  // never ran: must not skip prefix activation later
  engine.run();         // drives stream 0 to retirement, stream 1 frozen
  EXPECT_EQ(engine.live_streams(), 1u);
  engine.resume(id1);
  engine.run();
  EXPECT_EQ(snapshot(engine, id1), solo1);
  (void)id0;
}

TEST(GenerateEngine, LateJoinersMatchTheirSoloRuns) {
  Fixture f = uniform_fixture({"", "a", "b"}, "(a|b){2,8}");
  const std::uint64_t seed = 17;
  const StreamOutput solo2 = solo_run(f, seed, 2);

  GenerateEngine engine(*f.model, f.compiled, f.query, seed);
  engine.add_stream();
  engine.add_stream();
  engine.tick();
  engine.tick();
  StreamSpec spec;
  spec.rng_stream = 2;
  auto late = engine.add_stream(spec);  // enters at the next tick
  engine.run();
  EXPECT_EQ(snapshot(engine, late), solo2);
}

// ---------------------------------------------------------------------------
// Retirement edges: token budget and EOS.

TEST(GenerateEngine, BudgetExhaustionAtNonFinalStateIsADeadEnd) {
  // "a{5}" needs five body tokens; a two-token budget can never reach a
  // final state, so the stream must retire kDeadEnd with no result.
  Fixture f = uniform_fixture({"", "a"}, "a{5}");
  StreamSpec spec;
  spec.max_new_tokens = 2;
  StreamOutput out = solo_run(f, 1, 0, spec);
  EXPECT_EQ(out.state, StreamState::kDeadEnd);
  EXPECT_TRUE(out.tokens.empty());
}

TEST(GenerateEngine, BudgetExhaustionAtFinalStateAccepts) {
  // After two 'a' tokens the automaton for "a{2,5}" is final; exhausting the
  // budget there accepts, exactly like the sampler's sequence budget.
  Fixture f = uniform_fixture({"", "a"}, "a{2,5}");
  StreamSpec spec;
  spec.max_new_tokens = 2;
  StreamOutput out = solo_run(f, 1, 0, spec);
  ASSERT_EQ(out.state, StreamState::kDone);
  EXPECT_EQ(out.text, "aa");
}

TEST(GenerateEngine, EosRetirementEmitsOnlyLanguageStrings) {
  // At final states EOS competes with the continuations; whenever it wins
  // the stream retires kDone with a string of the language.
  Fixture f = uniform_fixture({"", "a"}, "a{1,3}");
  GenerateEngine engine(*f.model, f.compiled, f.query, 7);
  for (int i = 0; i < 16; ++i) engine.add_stream();
  engine.run();
  std::size_t done = 0;
  for (GenerateEngine::StreamId id = 0; id < engine.num_streams(); ++id) {
    if (engine.state(id) != StreamState::kDone) continue;
    ++done;
    const std::string& text = engine.result(id)->text;
    EXPECT_TRUE(text == "a" || text == "aa" || text == "aaa") << text;
  }
  EXPECT_GT(done, 0u);
  EXPECT_EQ(engine.live_streams(), 0u);
  EXPECT_EQ(engine.stats().streams_retired, engine.num_streams());
}

// ---------------------------------------------------------------------------
// The tentpole invariant, at test scale: a 64-stream batch is byte-identical
// per stream to its solo runs, at every thread count.

TEST(GenerateEngine, SixtyFourStreamsMatchSoloAtEveryThreadCount) {
  Fixture f = uniform_fixture({"", "a", "b", "ab", "c"}, "(a|b|c|ab){1,6}");
  const std::uint64_t seed = 29;
  constexpr std::size_t kStreams = 64;

  const std::size_t restore = util::ThreadPool::shared().threads();
  util::ThreadPool::set_shared_threads(1);
  std::vector<StreamOutput> solo;
  for (std::size_t i = 0; i < kStreams; ++i) {
    solo.push_back(solo_run(f, seed, i));
  }

  for (std::size_t threads : {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
    util::ThreadPool::set_shared_threads(threads);
    GenerateEngine engine(*f.model, f.compiled, f.query, seed);
    for (std::size_t i = 0; i < kStreams; ++i) engine.add_stream();
    engine.run();
    for (std::size_t i = 0; i < kStreams; ++i) {
      ASSERT_EQ(snapshot(engine, i), solo[i])
          << "stream " << i << " threads " << threads;
    }
  }
  util::ThreadPool::set_shared_threads(restore);
}

// ---------------------------------------------------------------------------
// Oracle: the engine's accepted samples carry correct conditional
// probabilities, validated by the same machinery that checks the sampler.

TEST(GenerateEngine, DoneResultsPassOracleCheckSamples) {
  Fixture f = uniform_fixture({"", "a", "b", "ab"}, "(a|b|ab){1,4}");
  GenerateEngine engine(*f.model, f.compiled, f.query, 13);
  for (int i = 0; i < 24; ++i) engine.add_stream();
  engine.run();

  std::vector<SearchResult> samples;
  for (GenerateEngine::StreamId id = 0; id < engine.num_streams(); ++id) {
    if (engine.state(id) == StreamState::kDone) {
      samples.push_back(*engine.result(id));
    }
  }
  ASSERT_FALSE(samples.empty());
  EXPECT_EQ(testing::check_samples(*f.model, f.compiled, f.query, samples,
                                   1e-9),
            std::nullopt);
}

// Engine bookkeeping: dedup hits are real (lock-step streams share evals)
// and the stats add up.
TEST(GenerateEngine, LockStepStreamsShareModelEvaluations) {
  // Two streams with the SAME rng_stream walk identical paths, so every tick
  // evaluates one unique context and the second stream is a dedup hit.
  Fixture f = uniform_fixture({"", "a", "b"}, "(a|b){2,8}");
  GenerateEngine engine(*f.model, f.compiled, f.query, 19);
  StreamSpec spec;
  spec.rng_stream = 4;
  auto id0 = engine.add_stream(spec);
  auto id1 = engine.add_stream(spec);
  engine.run();
  EXPECT_EQ(snapshot(engine, id0), snapshot(engine, id1));
  EXPECT_GT(engine.stats().batch_dedup_hits, 0u);
  EXPECT_EQ(engine.stats().streams_retired, 2u);
}

}  // namespace
}  // namespace relm::core::generate
