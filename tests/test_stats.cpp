#include <gtest/gtest.h>

#include <cmath>

#include "stats/stats.hpp"
#include "util/errors.hpp"

namespace relm::stats {
namespace {

TEST(GammaQ, KnownValues) {
  // Q(0.5, x/2) is the chi-squared survival with 1 dof.
  // chi2 sf(3.841, df=1) ~= 0.05.
  EXPECT_NEAR(std::exp(log_gamma_q(0.5, 3.841 / 2)), 0.05, 0.001);
  // chi2 sf(6.635, df=1) ~= 0.01.
  EXPECT_NEAR(std::exp(log_gamma_q(0.5, 6.635 / 2)), 0.01, 0.0005);
  // chi2 sf(16.919, df=9) ~= 0.05.
  EXPECT_NEAR(std::exp(log_gamma_q(4.5, 16.919 / 2)), 0.05, 0.001);
}

TEST(GammaQ, BoundaryCases) {
  EXPECT_DOUBLE_EQ(log_gamma_q(1.0, 0.0), 0.0);  // Q = 1
  // Q(1, x) = exp(-x) exactly.
  EXPECT_NEAR(log_gamma_q(1.0, 5.0), -5.0, 1e-10);
  EXPECT_NEAR(log_gamma_q(1.0, 500.0), -500.0, 1e-8);
}

TEST(GammaQ, ExtremeTailsStayFinite) {
  // The paper reports p ~ 1e-229; the log-space path must handle far beyond
  // double underflow.
  double log_p = log_gamma_q(4.5, 1200.0);
  EXPECT_LT(log_p, -1000.0);
  EXPECT_TRUE(std::isfinite(log_p));
}

TEST(GammaQ, InvalidInputsThrow) {
  EXPECT_THROW(log_gamma_q(0.0, 1.0), relm::Error);
  EXPECT_THROW(log_gamma_q(1.0, -1.0), relm::Error);
}

TEST(Chi2, IndependentTableHighP) {
  // Perfectly proportional rows: statistic 0, p = 1.
  Chi2Result r = chi2_independence_test({{50, 100, 150}, {100, 200, 300}});
  EXPECT_NEAR(r.statistic, 0.0, 1e-9);
  EXPECT_NEAR(r.p_value(), 1.0, 1e-9);
  EXPECT_EQ(r.degrees_of_freedom, 2u);
}

TEST(Chi2, TextbookTwoByTwo) {
  // Classic example: statistic = N(ad-bc)^2 / ((a+b)(c+d)(a+c)(b+d)).
  Chi2Result r = chi2_independence_test({{20, 30}, {30, 20}});
  EXPECT_NEAR(r.statistic, 4.0, 1e-9);
  EXPECT_EQ(r.degrees_of_freedom, 1u);
  EXPECT_NEAR(r.p_value(), 0.0455, 0.001);
}

TEST(Chi2, StrongDependenceTinyP) {
  Chi2Result r = chi2_independence_test({{1000, 10}, {10, 1000}});
  EXPECT_LT(r.log10_p_value, -100.0);
  EXPECT_EQ(r.p_value(), 0.0);  // clamped below representable range
}

TEST(Chi2, MoreSamplesMoreSignificant) {
  // The paper's Observation 3 mechanism: the same effect size measured with
  // sharper counts yields a (much) smaller p-value.
  Chi2Result weak = chi2_independence_test({{60, 40}, {40, 60}});
  Chi2Result strong = chi2_independence_test({{600, 400}, {400, 600}});
  EXPECT_LT(strong.log10_p_value, weak.log10_p_value);
}

TEST(Chi2, DropsEmptyColumns) {
  Chi2Result r = chi2_independence_test({{20, 30, 0}, {30, 20, 0}});
  EXPECT_EQ(r.degrees_of_freedom, 1u);
  EXPECT_NEAR(r.statistic, 4.0, 1e-9);
}

TEST(Chi2, RejectsDegenerateTables) {
  EXPECT_THROW(chi2_independence_test({}), relm::Error);
  EXPECT_THROW(chi2_independence_test({{1, 2}}), relm::Error);
  EXPECT_THROW(chi2_independence_test({{1, 2}, {1}}), relm::Error);
  // Only one live column.
  EXPECT_THROW(chi2_independence_test({{5, 0}, {9, 0}}), relm::Error);
}

TEST(EmpiricalCdf, BasicShape) {
  EmpiricalCdf cdf;
  for (double v : {1.0, 2.0, 3.0, 4.0}) cdf.add(v);
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(10.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 4.0);
}

TEST(EmpiricalCdf, AddAfterQueryResorts) {
  EmpiricalCdf cdf;
  cdf.add(5.0);
  EXPECT_DOUBLE_EQ(cdf.at(5.0), 1.0);
  cdf.add(1.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.5);
}

TEST(NormalizeCounts, SumsToOne) {
  auto p = normalize_counts({2, 3, 5});
  EXPECT_DOUBLE_EQ(p[0], 0.2);
  EXPECT_DOUBLE_EQ(p[1], 0.3);
  EXPECT_DOUBLE_EQ(p[2], 0.5);
}

TEST(NormalizeCounts, ZeroTotal) {
  auto p = normalize_counts({0, 0});
  EXPECT_DOUBLE_EQ(p[0], 0.0);
  EXPECT_DOUBLE_EQ(p[1], 0.0);
}

}  // namespace
}  // namespace relm::stats
