#include <gtest/gtest.h>

#include <cmath>

#include "core/relm.hpp"
#include "model/decoding.hpp"
#include "model/mlp_model.hpp"
#include "tokenizer/bpe.hpp"
#include "util/errors.hpp"

namespace relm::model {
namespace {

using tokenizer::BpeTokenizer;

std::string fixture_text() {
  std::string text;
  for (int i = 0; i < 40; ++i) {
    text += "the cat sat on the mat . the dog ran far . ";
  }
  return text;
}

const BpeTokenizer& fixture_tokenizer() {
  static const BpeTokenizer tok = [] {
    BpeTokenizer::TrainConfig config;
    config.vocab_size = 120;
    config.max_token_length = 6;
    return BpeTokenizer::train(fixture_text(), config);
  }();
  return tok;
}

std::shared_ptr<MlpModel> fixture_model() {
  static std::shared_ptr<MlpModel> model = [] {
    MlpModel::Config config;
    config.context_size = 3;
    config.embedding_dim = 12;
    config.hidden_dim = 24;
    config.epochs = 6;
    std::vector<std::string> docs;
    for (int i = 0; i < 25; ++i) {
      docs.push_back("the cat sat on the mat .");
      docs.push_back("the dog ran far .");
    }
    return MlpModel::train(fixture_tokenizer(), docs, config);
  }();
  return model;
}

double logsumexp(std::span<const double> v) {
  double m = *std::max_element(v.begin(), v.end());
  double z = 0;
  for (double x : v) z += std::exp(x - m);
  return m + std::log(z);
}

TEST(MlpModel, LogProbsNormalize) {
  auto model = fixture_model();
  auto lp = model->next_log_probs(fixture_tokenizer().encode("the cat"));
  ASSERT_EQ(lp.size(), fixture_tokenizer().vocab_size());
  EXPECT_NEAR(logsumexp(lp), 0.0, 1e-9);
  auto lp_empty = model->next_log_probs({});
  EXPECT_NEAR(logsumexp(lp_empty), 0.0, 1e-9);
}

TEST(MlpModel, TrainingReducesLoss) {
  auto model = fixture_model();
  const auto& losses = model->epoch_losses();
  ASSERT_GE(losses.size(), 2u);
  EXPECT_LT(losses.back(), losses.front() * 0.8);
}

TEST(MlpModel, LearnsTrainedContinuations) {
  auto model = fixture_model();
  const auto& tok = fixture_tokenizer();
  auto ctx = tok.encode("the cat sat on");
  auto lp = model->next_log_probs(ctx);
  auto good = tok.encode(" the")[0];
  double uniform = -std::log(static_cast<double>(tok.vocab_size()));
  EXPECT_GT(lp[good], uniform + 1.0);
}

TEST(MlpModel, DeterministicGivenSeed) {
  MlpModel::Config config;
  config.context_size = 2;
  config.embedding_dim = 6;
  config.hidden_dim = 8;
  config.epochs = 1;
  std::vector<std::string> docs(5, "the cat .");
  auto a = MlpModel::train(fixture_tokenizer(), docs, config);
  auto b = MlpModel::train(fixture_tokenizer(), docs, config);
  auto ctx = fixture_tokenizer().encode("the");
  EXPECT_EQ(a->next_log_probs(ctx), b->next_log_probs(ctx));
}

TEST(MlpModel, CrossEntropyBeatsUniform) {
  auto model = fixture_model();
  const auto& tok = fixture_tokenizer();
  std::vector<std::vector<tokenizer::TokenId>> held_out{
      tok.encode("the cat sat on the mat .")};
  double ce = model->cross_entropy(held_out);
  EXPECT_LT(ce, std::log(static_cast<double>(tok.vocab_size())));
}

TEST(MlpModel, RejectsBadConfig) {
  MlpModel::Config config;
  config.context_size = 0;
  EXPECT_THROW(MlpModel::train_on_tokens(10, 0, {{1, 2}}, config), relm::Error);
  MlpModel::Config ok;
  EXPECT_THROW(MlpModel::train_on_tokens(10, 0, {}, ok), relm::Error);
}

TEST(MlpModel, WorksBehindTheRelmEngine) {
  // The headline: a full ReLM query over a neural model, no engine changes.
  auto model = fixture_model();
  core::SimpleSearchQuery query;
  query.query_string = {"the ((cat)|(dog)|(mat))", "the"};
  query.max_results = 3;
  auto outcome = relm::search(*model, fixture_tokenizer(), query);
  ASSERT_EQ(outcome.results.size(), 3u);
  for (std::size_t i = 1; i < outcome.results.size(); ++i) {
    EXPECT_GE(outcome.results[i - 1].log_prob, outcome.results[i].log_prob);
  }
  // The trained bigrams put "the cat"/"the dog" above "the mat" as openers.
  EXPECT_NE(outcome.results[0].text, "the mat");
}

TEST(MlpModel, GeneralizesToUnseenContexts) {
  // Unlike the n-gram, a never-seen context still yields a usable
  // distribution through the embedding space (no hard backoff cliff).
  auto model = fixture_model();
  const auto& tok = fixture_tokenizer();
  auto lp = model->next_log_probs(tok.encode("far mat dog the"));
  EXPECT_NEAR(logsumexp(lp), 0.0, 1e-9);
  double max_lp = *std::max_element(lp.begin(), lp.end());
  EXPECT_GT(max_lp, -std::log(static_cast<double>(tok.vocab_size())));
}

}  // namespace
}  // namespace relm::model
