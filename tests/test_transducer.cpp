#include <gtest/gtest.h>

#include "automata/levenshtein.hpp"
#include "automata/ops.hpp"
#include "automata/regex.hpp"
#include "automata/transducer.hpp"
#include "core/preprocessors.hpp"
#include "util/errors.hpp"

namespace relm::automata {
namespace {

ByteSet abc() {
  ByteSet set;
  for (char c : {'a', 'b', 'c'}) set.set(static_cast<unsigned char>(c));
  return set;
}

// ---------------------------------------------------------------------------
// Identity and projections
// ---------------------------------------------------------------------------

TEST(Transducer, IdentityAppliesToItself) {
  Dfa lang = compile_regex("(cat)|(dog)");
  Fst id = Fst::identity(lang);
  EXPECT_TRUE(equivalent(input_projection(id), lang));
  EXPECT_TRUE(equivalent(output_projection(id), lang));
  EXPECT_TRUE(equivalent(apply(id, lang), lang));
}

TEST(Transducer, ComposeIdentityIsIdentity) {
  Dfa lang = compile_regex("ab*c");
  Fst id = Fst::identity(lang);
  Fst twice = compose(id, id);
  EXPECT_TRUE(equivalent(output_projection(twice), lang));
}

TEST(Transducer, ComposeMismatchedAlphabetsThrow) {
  Fst a(256), b(100);
  a.set_start(a.add_state(true));
  b.set_start(b.add_state(true));
  EXPECT_THROW(compose(a, b), relm::Error);
}

// ---------------------------------------------------------------------------
// Edit transducer == direct Levenshtein construction
// ---------------------------------------------------------------------------

class EditTransducerEquivalence : public ::testing::TestWithParam<const char*> {};

TEST_P(EditTransducerEquivalence, MatchesLevenshteinExpand) {
  Dfa lang = compile_regex(GetParam());
  Fst editor = edit_transducer(1, abc());
  Dfa via_transducer = apply(editor, lang);
  Dfa direct = levenshtein_expand(lang, 1, abc());
  EXPECT_TRUE(equivalent(via_transducer, direct)) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Patterns, EditTransducerEquivalence,
                         ::testing::Values("ab", "(abc)|(ca)", "a+", "a(b|c)a",
                                           "(ab){1,3}", "c"));

TEST(EditTransducer, DistanceTwoByComposition) {
  // Composing two distance-1 transducers equals one distance-2 transducer —
  // the paper's "an edit distance of 2 corresponds to two chained
  // Levenshtein automata", at the transducer level.
  Dfa lang = compile_regex("ab");
  Fst one = edit_transducer(1, abc());
  Dfa chained = apply(one, apply(one, lang));
  Dfa direct = apply(edit_transducer(2, abc()), lang);
  EXPECT_TRUE(equivalent(chained, direct));
  EXPECT_TRUE(equivalent(direct, levenshtein_expand(lang, 2, abc())));
}

TEST(EditTransducer, ZeroDistanceIsIdentity) {
  Dfa lang = compile_regex("(ab)|(ba)");
  EXPECT_TRUE(equivalent(apply(edit_transducer(0, abc()), lang), lang));
}

// ---------------------------------------------------------------------------
// Case folding == CaseInsensitivePreprocessor
// ---------------------------------------------------------------------------

TEST(CaseFold, MatchesPreprocessor) {
  Dfa lang = compile_regex("The Cat\\!");
  Dfa via_transducer = apply(case_fold_transducer(), lang);
  Dfa via_preprocessor = core::CaseInsensitivePreprocessor().apply(lang);
  EXPECT_TRUE(equivalent(via_transducer, via_preprocessor));
  EXPECT_TRUE(via_transducer.accepts_bytes("tHE cAT!"));
}

// ---------------------------------------------------------------------------
// Optional rewrite == SynonymPreprocessor
// ---------------------------------------------------------------------------

TEST(Replace, MatchesSynonymPreprocessor) {
  Dfa lang = compile_regex("the cat ran");
  ByteSet pass = printable_ascii();
  Dfa via_transducer = apply(replace_transducer("cat", "kitten", pass), lang);
  core::SynonymPreprocessor pre(
      std::vector<std::pair<std::string, std::vector<std::string>>>{
          {"cat", {"kitten"}}});
  Dfa via_preprocessor = pre.apply(lang);
  EXPECT_TRUE(equivalent(via_transducer, via_preprocessor));
}

TEST(Replace, OverlappingOccurrences) {
  Dfa lang = compile_regex("abab");
  Dfa rewritten = apply(replace_transducer("ab", "z", printable_ascii()), lang);
  for (const char* s : {"abab", "zab", "abz", "zz"}) {
    EXPECT_TRUE(rewritten.accepts_bytes(s)) << s;
  }
  EXPECT_FALSE(rewritten.accepts_bytes("zb"));
}

TEST(Replace, EmptySourceThrows) {
  EXPECT_THROW(replace_transducer("", "x", printable_ascii()), relm::Error);
}

TEST(Replace, CanDeleteOccurrences) {
  // Rewriting to the empty string: the filter-ish deletion rewrite.
  Dfa lang = compile_regex("a cat sat");
  Dfa rewritten = apply(replace_transducer("cat ", "", printable_ascii()), lang);
  EXPECT_TRUE(rewritten.accepts_bytes("a cat sat"));
  EXPECT_TRUE(rewritten.accepts_bytes("a sat"));
}

// ---------------------------------------------------------------------------
// The paper's framing: tokenization as a transducer (§3.2) in miniature.
// ---------------------------------------------------------------------------

TEST(Transducer, ShortcutRewriteInMiniature) {
  // "the sequence T-h-e is optionally rewritten to The": model the merged
  // token as a private symbol (here byte 0x01) and check both paths exist.
  Dfa lang = compile_regex("The cat");
  Fst rewrite = replace_transducer("The", "\x01", printable_ascii_and_ws());
  Dfa out = apply(rewrite, lang);
  EXPECT_TRUE(out.accepts_bytes("The cat"));            // un-rewritten
  EXPECT_TRUE(out.accepts_bytes("\x01 cat"));           // token shortcut
  EXPECT_FALSE(out.accepts_bytes("\x01\x01 cat"));
}

}  // namespace
}  // namespace relm::automata
