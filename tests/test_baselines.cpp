#include <gtest/gtest.h>

#include "baselines/sampling_baseline.hpp"
#include "model/ngram_model.hpp"

namespace relm::baselines {
namespace {

using tokenizer::BpeTokenizer;

std::string fixture_text() {
  std::string text;
  for (int i = 0; i < 50; ++i) {
    text += "George Washington was born on February 22, 1732. ";
    text += "The meeting was held on July 4, 1776. ";
  }
  return text;
}

const BpeTokenizer& fixture_tokenizer() {
  static const BpeTokenizer tok = [] {
    BpeTokenizer::TrainConfig config;
    config.vocab_size = 450;
    return BpeTokenizer::train(fixture_text(), config);
  }();
  return tok;
}

std::shared_ptr<model::NgramModel> fixture_model() {
  model::NgramModel::Config config;
  config.order = 4;
  config.alpha = 0.2;
  std::vector<std::string> docs;
  for (int i = 0; i < 30; ++i) {
    docs.push_back("George Washington was born on February 22, 1732.");
    docs.push_back("The meeting was held on July 4, 1776.");
  }
  return model::NgramModel::train(fixture_tokenizer(), docs, config);
}

TEST(SamplingBaseline, AttemptStartsWithPrefix) {
  auto model = fixture_model();
  SamplingBaseline::Config config;
  config.stop_length = 8;
  config.decoding.top_k = 40;
  SamplingBaseline baseline(*model, fixture_tokenizer(), config, 1);
  auto attempt = baseline.attempt("George Washington was");
  EXPECT_EQ(attempt.text.rfind("George Washington was", 0), 0u);
  EXPECT_GT(attempt.llm_calls, 0u);
}

TEST(SamplingBaseline, DetectsDuplicates) {
  auto model = fixture_model();
  SamplingBaseline::Config config;
  config.stop_length = 4;
  config.decoding.top_k = 1;  // greedy: every attempt identical
  SamplingBaseline baseline(*model, fixture_tokenizer(), config, 1);
  auto first = baseline.attempt("George Washington was born on");
  auto second = baseline.attempt("George Washington was born on");
  EXPECT_FALSE(first.duplicate);
  EXPECT_TRUE(second.duplicate);
  EXPECT_EQ(first.text, second.text);
}

TEST(SamplingBaseline, ShortStopLengthTruncates) {
  auto model = fixture_model();
  SamplingBaseline::Config config;
  config.stop_length = 1;
  SamplingBaseline baseline(*model, fixture_tokenizer(), config, 5);
  auto attempt = baseline.attempt("The meeting was");
  // At most one token of continuation text.
  EXPECT_LE(attempt.text.size(),
            std::string("The meeting was").size() +
                fixture_tokenizer().max_token_length());
}

TEST(SamplingBaseline, LlmCallsAccumulate) {
  auto model = fixture_model();
  SamplingBaseline::Config config;
  config.stop_length = 4;
  SamplingBaseline baseline(*model, fixture_tokenizer(), config, 9);
  baseline.attempt("The");
  std::size_t after_one = baseline.llm_calls();
  baseline.attempt("The");
  EXPECT_GT(baseline.llm_calls(), after_one);
}

TEST(MultipleChoice, RanksMemorizedDateFirst) {
  // Figure 1a: the trained model must rank the memorized birth date above
  // the distractors.
  auto model = fixture_model();
  auto ranked = rank_choices(*model, fixture_tokenizer(),
                             "George Washington was born on",
                             {" July 4, 1776", " February 22, 1732"});
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].completion, " February 22, 1732");
  EXPECT_GT(ranked[0].log_prob, ranked[1].log_prob);
}

TEST(MultipleChoice, ScoresAreLogProbs) {
  auto model = fixture_model();
  auto ranked = rank_choices(*model, fixture_tokenizer(), "The", {" meeting"});
  ASSERT_EQ(ranked.size(), 1u);
  EXPECT_LT(ranked[0].log_prob, 0.0);
}

}  // namespace
}  // namespace relm::baselines
