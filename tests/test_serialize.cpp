#include <gmock/gmock.h>
#include <gtest/gtest.h>

#include <sstream>

#include "automata/regex.hpp"
#include "automata/serialize.hpp"
#include "model/ngram_model.hpp"
#include "tokenizer/serialize.hpp"
#include "util/errors.hpp"

namespace relm {
namespace {

using tokenizer::BpeTokenizer;

std::string fixture_corpus() {
  std::string corpus;
  for (int i = 0; i < 40; ++i) {
    corpus += "The cat sat on the mat. Strange bytes: \t tabs! ";
  }
  return corpus;
}

BpeTokenizer fixture_tokenizer() {
  BpeTokenizer::TrainConfig config;
  config.vocab_size = 360;
  return BpeTokenizer::train(fixture_corpus(), config);
}

TEST(TokenizerSerialize, RoundTripPreservesVocabulary) {
  BpeTokenizer tok = fixture_tokenizer();
  std::stringstream buffer;
  tokenizer::save_tokenizer(tok, buffer);
  BpeTokenizer loaded = tokenizer::load_tokenizer(buffer);

  ASSERT_EQ(loaded.vocab_size(), tok.vocab_size());
  EXPECT_EQ(loaded.eos(), tok.eos());
  EXPECT_EQ(loaded.max_token_length(), tok.max_token_length());
  for (tokenizer::TokenId t = 0; t < tok.vocab_size(); ++t) {
    EXPECT_EQ(loaded.token_string(t), tok.token_string(t));
  }
  // Encoding behaviour is identical.
  for (const char* text : {"The cat sat", "tabs!\t", "zebra"}) {
    EXPECT_EQ(loaded.encode(text), tok.encode(text)) << text;
  }
}

TEST(TokenizerSerialize, RejectsGarbage) {
  std::stringstream buffer("not a tokenizer file");
  EXPECT_THROW(tokenizer::load_tokenizer(buffer), relm::Error);
}

TEST(TokenizerSerialize, RejectsTruncated) {
  BpeTokenizer tok = fixture_tokenizer();
  std::stringstream buffer;
  tokenizer::save_tokenizer(tok, buffer);
  std::string text = buffer.str();
  std::stringstream cut(text.substr(0, text.size() / 2));
  EXPECT_THROW(tokenizer::load_tokenizer(cut), relm::Error);
}

TEST(TokenizerFromVocab, ValidatesInput) {
  EXPECT_THROW(BpeTokenizer::from_vocab({"a", "b"}), relm::Error);       // no EOS
  EXPECT_THROW(BpeTokenizer::from_vocab({"a", "", ""}), relm::Error);    // two EOS
  EXPECT_THROW(BpeTokenizer::from_vocab({"a", "a", ""}), relm::Error);   // dup
  auto tok = BpeTokenizer::from_vocab({"a", "b", "ab", ""});
  EXPECT_EQ(tok.eos(), 3u);
  EXPECT_EQ(tok.encode("ab").size(), 1u);  // longest match
}

TEST(ModelSerialize, RoundTripPreservesDistributions) {
  BpeTokenizer tok = fixture_tokenizer();
  model::NgramModel::Config config;
  config.order = 4;
  config.alpha = 0.25;
  config.non_canonical_document_rate = 0.3;
  std::vector<std::string> docs(25, "The cat sat on the mat.");
  auto model = model::NgramModel::train(tok, docs, config);

  std::stringstream buffer;
  model->save(buffer);
  auto loaded = model::NgramModel::load(buffer);

  EXPECT_EQ(loaded->vocab_size(), model->vocab_size());
  EXPECT_EQ(loaded->eos(), model->eos());
  EXPECT_EQ(loaded->num_contexts(), model->num_contexts());
  EXPECT_EQ(loaded->config().order, model->config().order);
  EXPECT_DOUBLE_EQ(loaded->config().alpha, model->config().alpha);

  for (const char* ctx_text : {"", "The", "The cat sat on"}) {
    auto ctx = tok.encode(ctx_text);
    auto a = model->next_log_probs(ctx);
    auto b = loaded->next_log_probs(ctx);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t t = 0; t < a.size(); ++t) {
      EXPECT_DOUBLE_EQ(a[t], b[t]) << ctx_text << " token " << t;
    }
  }
}

TEST(ModelSerialize, RejectsGarbage) {
  std::stringstream buffer("RELM_NGRAM v9\n");
  EXPECT_THROW(model::NgramModel::load(buffer), relm::Error);
  std::stringstream empty;
  EXPECT_THROW(model::NgramModel::load(empty), relm::Error);
}

TEST(ModelSerialize, FileRoundTrip) {
  BpeTokenizer tok = fixture_tokenizer();
  model::NgramModel::Config config;
  config.order = 3;
  auto model = model::NgramModel::train(tok, {"The cat sat."}, config);
  std::string path = testing::TempDir() + "relm_model_test.relm";
  model->save_file(path);
  auto loaded = model::NgramModel::load_file(path);
  EXPECT_EQ(loaded->num_contexts(), model->num_contexts());
  EXPECT_THROW(model::NgramModel::load_file("/nonexistent/x.relm"), relm::Error);
}

}  // namespace
}  // namespace relm

namespace relm {
namespace {

TEST(DfaSerialize, RoundTripPreservesLanguage) {
  automata::Dfa dfa = automata::compile_regex(
      "https://www.([a-zA-Z0-9]|\\-)+.([a-zA-Z0-9]|/)+");
  std::stringstream buffer;
  automata::save_dfa(dfa, buffer);
  automata::Dfa loaded = automata::load_dfa(buffer);
  EXPECT_EQ(loaded, dfa);  // canonical structural equality
  EXPECT_TRUE(loaded.accepts_bytes("https://www.a-b.com/x"));
  EXPECT_FALSE(loaded.accepts_bytes("http://a"));
}

TEST(DfaSerialize, TokenAlphabetRoundTrip) {
  // A token-level automaton (non-byte alphabet) serializes fine too.
  automata::Dfa dfa(5000);
  auto s0 = dfa.add_state(false);
  auto s1 = dfa.add_state(true);
  dfa.set_start(s0);
  dfa.add_edge(s0, 4321, s1);
  std::stringstream buffer;
  automata::save_dfa(dfa, buffer);
  automata::Dfa loaded = automata::load_dfa(buffer);
  EXPECT_EQ(loaded, dfa);
}

TEST(DfaSerialize, RejectsCorruptInput) {
  std::stringstream garbage("hello");
  EXPECT_THROW(automata::load_dfa(garbage), relm::Error);
  std::stringstream bad_edge("RELM_DFA v1\n256 2 0 1\n01\n0 999999 5\n");
  EXPECT_THROW(automata::load_dfa(bad_edge), relm::Error);
  std::stringstream bad_start("RELM_DFA v1\n256 2 7 0\n01\n");
  EXPECT_THROW(automata::load_dfa(bad_start), relm::Error);
}

// Each corruption mode must fail with a *located* diagnostic, not a generic
// parse error — the message is what a user sees when a cache entry or saved
// artifact goes bad.
std::string load_error(const std::string& text) {
  std::stringstream in(text);
  try {
    automata::load_dfa(in);
  } catch (const relm::Error& e) {
    return e.what();
  }
  return "";
}

TEST(DfaSerialize, CorruptHeaderDiagnostics) {
  EXPECT_NE(load_error(""), "");
  EXPECT_THAT(load_error(""), testing::HasSubstr("truncated before header"));
  EXPECT_THAT(load_error("RELM_NOPE v1\n"), testing::HasSubstr("not a RELM_DFA"));
  EXPECT_THAT(load_error("RELM_DFA v9\n"), testing::HasSubstr("not a RELM_DFA"));
  EXPECT_THAT(load_error("RELM_DFA v1\n256 2"),
              testing::HasSubstr("truncated header"));
  EXPECT_THAT(load_error("RELM_DFA v1\n256 0 0 0\n"),
              testing::HasSubstr("zero states"));
  EXPECT_THAT(load_error("RELM_DFA v1\n0 2 0 0\n01\n"),
              testing::HasSubstr("empty alphabet"));
  EXPECT_THAT(load_error("RELM_DFA v1\n256 2 9 0\n01\n"),
              testing::HasSubstr("start state 9 out of range"));
}

TEST(DfaSerialize, RejectsAbsurdEdgeCount) {
  // 2 states x 4 symbols bounds a DFA at 8 edges; a count of 9 cannot be a
  // DFA and must be rejected before the read loop trusts it.
  EXPECT_THAT(load_error("RELM_DFA v1\n4 2 0 9\n01\n"),
              testing::HasSubstr("exceeds num_states * num_symbols"));
}

TEST(DfaSerialize, RejectsBadFinality) {
  EXPECT_THAT(load_error("RELM_DFA v1\n256 3 0 0\n01\n"),
              testing::HasSubstr("finality bits"));
  EXPECT_THAT(load_error("RELM_DFA v1\n256 2 0 0\n0x\n"),
              testing::HasSubstr("not 0/1"));
}

TEST(DfaSerialize, RejectsShortRead) {
  // Header promises two edges; the file ends after one.
  EXPECT_THAT(load_error("RELM_DFA v1\n256 2 0 2\n01\n0 97 1\n"),
              testing::HasSubstr("truncated at edge 1 of 2"));
}

TEST(DfaSerialize, RejectsOutOfRangeEdgeFields) {
  EXPECT_THAT(load_error("RELM_DFA v1\n256 2 0 1\n01\n5 97 1\n"),
              testing::HasSubstr("edge 0 out of range"));
  EXPECT_THAT(load_error("RELM_DFA v1\n256 2 0 1\n01\n0 97 5\n"),
              testing::HasSubstr("edge 0 out of range"));
  EXPECT_THAT(load_error("RELM_DFA v1\n256 2 0 1\n01\n0 400 1\n"),
              testing::HasSubstr("edge 0 out of range"));
}

TEST(DfaStructuralHash, DistinguishesStructureAndMatchesSelf) {
  automata::Dfa a = automata::compile_regex("(cat)|(dog)");
  automata::Dfa b = automata::compile_regex("(cat)|(dog)");
  automata::Dfa c = automata::compile_regex("(cat)|(dot)");
  EXPECT_EQ(automata::dfa_structural_hash(a), automata::dfa_structural_hash(b));
  EXPECT_NE(automata::dfa_structural_hash(a), automata::dfa_structural_hash(c));

  // Finality flips and edge retargets must change the hash.
  automata::Dfa d(2);
  auto s0 = d.add_state(false);
  auto s1 = d.add_state(true);
  d.set_start(s0);
  d.add_edge(s0, 0, s1);
  automata::Dfa e(2);
  auto t0 = e.add_state(false);
  auto t1 = e.add_state(true);
  e.set_start(t0);
  e.add_edge(t0, 1, t1);
  EXPECT_NE(automata::dfa_structural_hash(d), automata::dfa_structural_hash(e));
}

}  // namespace
}  // namespace relm
