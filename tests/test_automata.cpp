#include <gtest/gtest.h>

#include <algorithm>
#include <regex>
#include <set>
#include <string>
#include <vector>

#include "automata/determinize.hpp"
#include "automata/grep.hpp"
#include "automata/io.hpp"
#include "automata/levenshtein.hpp"
#include "automata/ops.hpp"
#include "automata/regex.hpp"
#include "automata/regex_parser.hpp"
#include "automata/walks.hpp"
#include "util/errors.hpp"
#include "util/rng.hpp"

namespace relm::automata {
namespace {

// Enumerates all strings over `alphabet` with length <= max_len.
std::vector<std::string> all_strings(const std::string& alphabet, std::size_t max_len) {
  std::vector<std::string> out{""};
  std::vector<std::string> frontier{""};
  for (std::size_t l = 0; l < max_len; ++l) {
    std::vector<std::string> next;
    for (const auto& s : frontier) {
      for (char c : alphabet) {
        next.push_back(s + c);
        out.push_back(s + c);
      }
    }
    frontier = std::move(next);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Parser basics
// ---------------------------------------------------------------------------

TEST(RegexParser, RejectsMalformed) {
  EXPECT_THROW(parse_regex("("), relm::RegexError);
  EXPECT_THROW(parse_regex(")"), relm::RegexError);
  EXPECT_THROW(parse_regex("a{2,1}"), relm::RegexError);
  EXPECT_THROW(parse_regex("a{"), relm::RegexError);
  EXPECT_THROW(parse_regex("[a-"), relm::RegexError);
  EXPECT_THROW(parse_regex("*"), relm::RegexError);
  EXPECT_THROW(parse_regex("a**b("), relm::RegexError);
  EXPECT_THROW(parse_regex("\\"), relm::RegexError);
  EXPECT_THROW(parse_regex("\\q"), relm::RegexError);
  EXPECT_THROW(parse_regex("[z-a]"), relm::RegexError);
}

TEST(RegexParser, ErrorCarriesPosition) {
  try {
    parse_regex("abc(");
    FAIL() << "expected RegexError";
  } catch (const relm::RegexError& e) {
    EXPECT_EQ(e.position(), 4u);
  }
}

TEST(RegexParser, ErrorCarriesOperatorSpan) {
  // Counted-repeat bound errors anchor to the whole {m,n} construct.
  try {
    parse_regex("a{3,1}b");
    FAIL() << "expected RegexError";
  } catch (const relm::RegexError& e) {
    EXPECT_EQ(e.position(), 1u);
    EXPECT_EQ(e.length(), 5u);  // "{3,1}"
    EXPECT_NE(std::string(e.what()).find("span 5"), std::string::npos);
  }
}

// Every malformed boolean-algebra form must be rejected with a diagnostic
// anchored at the operator, not wherever the cursor happened to stop.
TEST(RegexParser, RejectsUnbalancedAlgebraOperators) {
  struct Case {
    const char* pattern;
    std::size_t position;  // expected error anchor
  };
  const Case cases[] = {
      {"&a", 0},     // missing left operand
      {"a&", 1},     // missing right operand
      {"a&&b", 1},   // empty middle operand (right of first '&')
      {"-a", 0},     // missing left operand
      {"a-", 1},     // missing right operand
      {"a--b", 1},   // first '-' finds an empty rhs (second '-' stops it)
      {"~", 0},      // complement with nothing to negate
      {"!", 0},
      {"a~", 1},     // trailing complement inside concat
      {"(a&)", 2},   // missing right operand before ')'
      {"(&a)", 1},   // missing left operand after '('
      {"~|a", 0},    // complement directly against an alternation bar
      {"a&|b", 1},   // '&' whose operand is an empty branch
      {"a-&b", 2},   // the '&' inside the rhs has no left operand
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.pattern);
    try {
      parse_regex(c.pattern);
      FAIL() << "expected RegexError for \"" << c.pattern << "\"";
    } catch (const relm::RegexError& e) {
      EXPECT_EQ(e.position(), c.position) << e.what();
    }
  }
}

TEST(RegexParser, EscapedAlgebraCharactersAreLiterals) {
  automata::Dfa dfa = automata::compile_regex("a\\&b\\-c\\~d\\!e");
  EXPECT_TRUE(dfa.accepts_bytes("a&b-c~d!e"));
  EXPECT_FALSE(dfa.accepts_bytes("abcde"));
  // Inside [...] classes, '-' keeps the range meaning and the algebra
  // characters are plain members.
  automata::Dfa cls = automata::compile_regex("[&!~]+");
  EXPECT_TRUE(cls.accepts_bytes("&!~"));
  EXPECT_FALSE(cls.accepts_bytes("a"));
}

TEST(RegexParser, AcceptsPaperQueries) {
  // Queries from the paper's evaluation must parse. Since grammar v2 made
  // `-` and `!` boolean-algebra operators, the literal hyphen/bang uses in
  // the originals are escaped here.
  EXPECT_NO_THROW(parse_regex(
      "https://www.([a-zA-Z0-9]|\\-|_|#|%)+.([a-zA-Z0-9]|\\-|_|#|%|/)+"));
  EXPECT_NO_THROW(parse_regex("My phone number is ([0-9]{3}) ([0-9]{3}) ([0-9]{4})"));
  EXPECT_NO_THROW(parse_regex("The ((cat)|(dog))"));
  EXPECT_NO_THROW(parse_regex(
      "George Washington was born on ((January)|(February)|(March)|(April)|(May)|"
      "(June)|(July)|(August)|(September)|(October)|(November)|(December)) "
      "[0-9]{1,2}, [0-9]{4}"));
  EXPECT_NO_THROW(parse_regex("([a-zA-Z]+)(\\.|\\!|\\?)?(\")?"));
}

// ---------------------------------------------------------------------------
// Property test: our engine agrees with std::regex on a shared dialect
// ---------------------------------------------------------------------------

struct RegexCase {
  const char* pattern;
  const char* alphabet;
};

class RegexAgreement : public ::testing::TestWithParam<RegexCase> {};

TEST_P(RegexAgreement, MatchesStdRegex) {
  const auto& param = GetParam();
  Dfa dfa = compile_regex(param.pattern);
  std::regex reference(param.pattern, std::regex::ECMAScript);
  for (const auto& s : all_strings(param.alphabet, 5)) {
    bool ours = dfa.accepts_bytes(s);
    bool theirs = std::regex_match(s, reference);
    EXPECT_EQ(ours, theirs) << "pattern=" << param.pattern << " input=\"" << s << '"';
  }
}

INSTANTIATE_TEST_SUITE_P(
    Dialect, RegexAgreement,
    ::testing::Values(
        RegexCase{"abc", "abc"},
        RegexCase{"a*", "ab"},
        RegexCase{"a+b?", "ab"},
        RegexCase{"(a|b)*c", "abc"},
        RegexCase{"a{2,3}", "a"},
        RegexCase{"a{2}b{0,2}", "ab"},
        RegexCase{"(ab)+", "ab"},
        RegexCase{"[abc]+", "abcd"},
        RegexCase{"[a-c]x[0-1]", "abcx01"},
        RegexCase{"a(b|c)*d", "abcd"},
        RegexCase{"(a|ab)(c|bc)", "abc"},
        RegexCase{"x(yz)?", "xyz"},
        RegexCase{"(0|1){1,4}", "01"},
        RegexCase{"a|b|c|abc", "abc"},
        RegexCase{"((a)|(bb))*", "ab"},
        RegexCase{"\\.a\\*", ".a*x"},
        RegexCase{"a.c", "abc."},
        RegexCase{"[ab]{2,}", "ab"}));

// ---------------------------------------------------------------------------
// Determinize / minimize
// ---------------------------------------------------------------------------

TEST(Determinize, ResultIsDeterministicAndEquivalent) {
  Dfa dfa = compile_regex_unminimized("(a|ab)(c|bc)");
  // accepts exactly: ac, abc (two derivations), abbc
  EXPECT_TRUE(dfa.accepts_bytes("ac"));
  EXPECT_TRUE(dfa.accepts_bytes("abc"));
  EXPECT_TRUE(dfa.accepts_bytes("abbc"));
  EXPECT_FALSE(dfa.accepts_bytes("a"));
  EXPECT_FALSE(dfa.accepts_bytes("abcc"));
}

TEST(Minimize, ClassicRedundantStates) {
  // (a|b)*abb has a known 4-state minimal DFA.
  Dfa m = minimize(compile_regex_unminimized("(a|b)*abb"));
  EXPECT_EQ(m.num_states(), 4u);
  EXPECT_TRUE(m.accepts_bytes("abb"));
  EXPECT_TRUE(m.accepts_bytes("aabb"));
  EXPECT_TRUE(m.accepts_bytes("babb"));
  EXPECT_FALSE(m.accepts_bytes("ab"));
}

TEST(Minimize, CanonicalFormEnablesEquality) {
  // Structurally different regexes for the same language minimize to equal DFAs.
  EXPECT_EQ(minimize(compile_regex_unminimized("a(b|c)")),
            minimize(compile_regex_unminimized("ab|ac")));
  EXPECT_EQ(minimize(compile_regex_unminimized("(a*)*")),
            minimize(compile_regex_unminimized("a*")));
  EXPECT_EQ(minimize(compile_regex_unminimized("aa*")),
            minimize(compile_regex_unminimized("a+")));
}

TEST(Minimize, EmptyLanguage) {
  Dfa m = minimize(compile_regex_unminimized("a{2}"));
  Dfa never = intersect(compile_regex("a"), compile_regex("b"));
  EXPECT_TRUE(is_empty_language(never));
  EXPECT_FALSE(is_empty_language(m));
}

TEST(Minimize, AllStatesFinal) {
  // a* has every trim state final; regression test for partition init.
  Dfa m = minimize(compile_regex_unminimized("a*"));
  EXPECT_EQ(m.num_states(), 1u);
  EXPECT_TRUE(m.is_final(m.start()));
}

// ---------------------------------------------------------------------------
// Language operations
// ---------------------------------------------------------------------------

TEST(Ops, Intersection) {
  Dfa a = compile_regex("[ab]*");
  Dfa b = compile_regex("(ab)+");
  Dfa both = intersect(a, b);
  EXPECT_TRUE(both.accepts_bytes("ab"));
  EXPECT_TRUE(both.accepts_bytes("abab"));
  EXPECT_FALSE(both.accepts_bytes("aba"));
  EXPECT_TRUE(equivalent(both, b));
}

TEST(Ops, UnionOf) {
  Dfa u = union_of(compile_regex("cat"), compile_regex("dog"));
  EXPECT_TRUE(u.accepts_bytes("cat"));
  EXPECT_TRUE(u.accepts_bytes("dog"));
  EXPECT_FALSE(u.accepts_bytes("cow"));
  EXPECT_TRUE(equivalent(u, compile_regex("(cat)|(dog)")));
}

TEST(Ops, ComplementAndDifference) {
  ByteSet universe;
  for (char c : {'a', 'b'}) universe.set(static_cast<unsigned char>(c));
  Dfa not_a = complement(compile_regex("a"), universe);
  EXPECT_FALSE(not_a.accepts_bytes("a"));
  EXPECT_TRUE(not_a.accepts_bytes(""));
  EXPECT_TRUE(not_a.accepts_bytes("b"));
  EXPECT_TRUE(not_a.accepts_bytes("ab"));

  // Difference: words except stop words — the no_stop filter mechanism (§4.4).
  Dfa words = compile_regex("(the)|(fox)|(ran)");
  Dfa stops = compile_regex("(the)");
  ByteSet letters;
  for (int c = 'a'; c <= 'z'; ++c) letters.set(c);
  Dfa filtered = difference(words, stops, letters);
  EXPECT_FALSE(filtered.accepts_bytes("the"));
  EXPECT_TRUE(filtered.accepts_bytes("fox"));
  EXPECT_TRUE(filtered.accepts_bytes("ran"));
}

TEST(Ops, DoubleComplementIsIdentity) {
  ByteSet universe;
  for (char c : {'x', 'y', 'z'}) universe.set(static_cast<unsigned char>(c));
  Dfa lang = compile_regex("x(y|z)*");
  Dfa twice = complement(complement(lang, universe), universe);
  EXPECT_TRUE(equivalent(lang, twice));
}

TEST(Ops, Concat) {
  Dfa joined = concat(compile_regex("The "), compile_regex("(cat)|(dog)"));
  EXPECT_TRUE(joined.accepts_bytes("The cat"));
  EXPECT_TRUE(joined.accepts_bytes("The dog"));
  EXPECT_FALSE(joined.accepts_bytes("The "));
  EXPECT_TRUE(equivalent(joined, compile_regex("The ((cat)|(dog))")));
}

TEST(Ops, ConcatWithAmbiguousBoundary) {
  // a* . a* == a* — boundary nondeterminism must be resolved correctly.
  Dfa joined = concat(compile_regex("a*"), compile_regex("a*"));
  EXPECT_TRUE(equivalent(joined, compile_regex("a*")));
}

TEST(Ops, CountStrings) {
  EXPECT_EQ(count_strings(compile_regex("(cat)|(dog)"), 10), 2u);
  EXPECT_EQ(count_strings(compile_regex("[01]{3}"), 10), 8u);
  EXPECT_EQ(count_strings(compile_regex("a{0,4}"), 10), 5u);
  // Bounded count of an infinite language.
  EXPECT_EQ(count_strings(compile_regex("a*"), 3), 4u);
  // Date pattern from Figure 1: 12 months x 2-digit day space x 4-digit years.
  Dfa dates = compile_regex(
      "((January)|(February)|(March)|(April)|(May)|(June)|(July)|(August)|"
      "(September)|(October)|(November)|(December)) [0-9]{1,2}, [0-9]{4}");
  EXPECT_EQ(count_strings(dates, 64), 12u * (10 + 100) * 10000);
}

TEST(Ops, EnumerateShortestFirst) {
  auto strings = enumerate_strings(compile_regex("a|ab|abb|b"), 10, 10);
  ASSERT_EQ(strings.size(), 4u);
  EXPECT_EQ(strings[0], "a");
  EXPECT_EQ(strings[1], "b");
  EXPECT_EQ(strings[2], "ab");
  EXPECT_EQ(strings[3], "abb");
}

TEST(Ops, EnumerateHonorsLimit) {
  auto strings = enumerate_strings(compile_regex("[ab]*"), 5, 10);
  EXPECT_EQ(strings.size(), 5u);
  EXPECT_EQ(strings[0], "");
}

TEST(Ops, InfiniteLanguageDetection) {
  EXPECT_TRUE(is_infinite_language(compile_regex("ab*")));
  EXPECT_FALSE(is_infinite_language(compile_regex("ab{0,100}")));
  EXPECT_FALSE(is_infinite_language(compile_regex("(cat)|(dog)")));
}

TEST(Ops, ShortestStringLength) {
  EXPECT_EQ(shortest_string_length(compile_regex("aaa|aa|aaaa")), 2u);
  EXPECT_EQ(shortest_string_length(compile_regex("a*")), 0u);
  Dfa never = intersect(compile_regex("a"), compile_regex("b"));
  EXPECT_FALSE(shortest_string_length(never).has_value());
}

// ---------------------------------------------------------------------------
// Walk counting (§3.3, Appendix C)
// ---------------------------------------------------------------------------

TEST(Walks, CountsMatchStringCounts) {
  // On a DFA, accepting walks == accepted strings.
  Dfa dfa = compile_regex("(a|b){1,3}");
  WalkCounts walks(dfa, 8);
  EXPECT_DOUBLE_EQ(walks.total(), 2 + 4 + 8);
}

TEST(Walks, PaperExampleLanguage) {
  // The paper's example: language {a, b, bb, bbb}. Uniform sampling of the
  // first transition would pick a 50% of the time; walk weighting must pick
  // it 25% of the time.
  Dfa dfa = compile_regex("a|(b{1,3})");
  WalkCounts walks(dfa, 8);
  EXPECT_DOUBLE_EQ(walks.total(), 4.0);

  util::Pcg32 rng(123);
  int a_count = 0;
  const int kTrials = 20000;
  std::vector<Symbol> walk;
  for (int i = 0; i < kTrials; ++i) {
    ASSERT_TRUE(walks.sample_uniform_walk(dfa, rng, walk));
    if (walk.size() == 1 && walk[0] == static_cast<Symbol>('a')) ++a_count;
  }
  EXPECT_NEAR(static_cast<double>(a_count) / kTrials, 0.25, 0.02);
}

TEST(Walks, UniformOverFixedLengthLanguage) {
  Dfa dfa = compile_regex("[ab]{2}");
  WalkCounts walks(dfa, 4);
  util::Pcg32 rng(99);
  std::map<std::string, int> hits;
  std::vector<Symbol> walk;
  const int kTrials = 12000;
  for (int i = 0; i < kTrials; ++i) {
    ASSERT_TRUE(walks.sample_uniform_walk(dfa, rng, walk));
    std::string s;
    for (Symbol sym : walk) s.push_back(static_cast<char>(sym));
    ++hits[s];
  }
  ASSERT_EQ(hits.size(), 4u);
  for (const auto& [s, n] : hits) {
    EXPECT_NEAR(static_cast<double>(n) / kTrials, 0.25, 0.03) << s;
  }
}

TEST(Walks, LengthBoundTruncatesCycles) {
  Dfa dfa = compile_regex("a*");
  WalkCounts walks(dfa, 3);
  EXPECT_DOUBLE_EQ(walks.total(), 4.0);  // "", a, aa, aaa
  util::Pcg32 rng(1);
  std::vector<Symbol> walk;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(walks.sample_uniform_walk(dfa, rng, walk));
    EXPECT_LE(walk.size(), 3u);
  }
}

TEST(Walks, EmptyLanguage) {
  Dfa never = trim(intersect(compile_regex("a"), compile_regex("b")));
  WalkCounts walks(never, 4);
  EXPECT_DOUBLE_EQ(walks.total(), 0.0);
  util::Pcg32 rng(1);
  std::vector<Symbol> walk;
  EXPECT_FALSE(walks.sample_uniform_walk(never, rng, walk));
}

// ---------------------------------------------------------------------------
// Levenshtein expansion (§3.4)
// ---------------------------------------------------------------------------

ByteSet small_alphabet() {
  ByteSet set;
  for (char c : {'a', 'b', 'c'}) set.set(static_cast<unsigned char>(c));
  return set;
}

TEST(Levenshtein, DistanceZeroIsIdentity) {
  Dfa lang = compile_regex("ab|ba");
  Dfa same = levenshtein_expand(lang, 0, small_alphabet());
  EXPECT_TRUE(equivalent(lang, same));
}

TEST(Levenshtein, MatchesBruteForceDistanceOne) {
  Dfa lang = compile_regex("ab");
  Dfa edited = levenshtein_expand(lang, 1, small_alphabet());
  for (const auto& s : all_strings("abc", 4)) {
    bool in = edited.accepts_bytes(s);
    bool expected = edit_distance(s, "ab") <= 1;
    EXPECT_EQ(in, expected) << '"' << s << '"';
  }
}

TEST(Levenshtein, MatchesBruteForceDistanceTwoMultiString) {
  Dfa lang = compile_regex("(abc)|(ca)");
  Dfa edited = levenshtein_expand(lang, 2, small_alphabet());
  for (const auto& s : all_strings("abc", 5)) {
    std::size_t d = std::min(edit_distance(s, "abc"), edit_distance(s, "ca"));
    EXPECT_EQ(edited.accepts_bytes(s), d <= 2) << '"' << s << '"';
  }
}

TEST(Levenshtein, ChainedCompositionEqualsHigherOrder) {
  // Paper: "an edit distance of 2 corresponds to two chained Levenshtein
  // automata".
  Dfa lang = compile_regex("ab");
  Dfa chained =
      levenshtein_expand(levenshtein_expand(lang, 1, small_alphabet()), 1,
                         small_alphabet());
  Dfa direct = levenshtein_expand(lang, 2, small_alphabet());
  EXPECT_TRUE(equivalent(chained, direct));
}

TEST(Levenshtein, InfiniteLanguage) {
  Dfa lang = compile_regex("a+");
  Dfa edited = levenshtein_expand(lang, 1, small_alphabet());
  EXPECT_TRUE(edited.accepts_bytes(""));    // delete the single a
  EXPECT_TRUE(edited.accepts_bytes("b"));   // substitute
  EXPECT_TRUE(edited.accepts_bytes("ab"));  // insert b
  EXPECT_TRUE(edited.accepts_bytes("aab"));
  EXPECT_FALSE(edited.accepts_bytes("bb"));
  EXPECT_FALSE(edited.accepts_bytes("abb"));
}

TEST(Levenshtein, EditDistanceReference) {
  EXPECT_EQ(edit_distance("", ""), 0u);
  EXPECT_EQ(edit_distance("abc", ""), 3u);
  EXPECT_EQ(edit_distance("kitten", "sitting"), 3u);
  EXPECT_EQ(edit_distance("flaw", "lawn"), 2u);
}

// ---------------------------------------------------------------------------
// Grep (the toxicity pipeline's corpus scan, §4.3)
// ---------------------------------------------------------------------------

TEST(Grep, FindsAllNonOverlapping) {
  Dfa pattern = compile_regex("ab+");
  auto matches = grep_strings(pattern, "xxabbbyyabzzb");
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0], "abbb");  // leftmost-longest
  EXPECT_EQ(matches[1], "ab");
}

TEST(Grep, OffsetsAreCorrect) {
  Dfa pattern = compile_regex("(cat)|(dog)");
  std::string text = "the cat saw the dog and the cat";
  auto matches = grep_all(pattern, text);
  ASSERT_EQ(matches.size(), 3u);
  EXPECT_EQ(text.substr(matches[0].offset, matches[0].length), "cat");
  EXPECT_EQ(text.substr(matches[1].offset, matches[1].length), "dog");
  EXPECT_EQ(matches[2].offset, 28u);
}

TEST(Grep, NoMatches) {
  EXPECT_TRUE(grep_all(compile_regex("zz"), "abcabc").empty());
}

TEST(Grep, InsultLexiconStyleQuery) {
  // The shape of the paper's §4.3 scan: disjunction of several fixed words.
  Dfa lexicon = compile_regex("(blorg)|(snarf)|(grumph)");
  std::string doc = "he said blorg! then snarf, then blorg again";
  auto matches = grep_strings(lexicon, doc);
  ASSERT_EQ(matches.size(), 3u);
  EXPECT_EQ(matches[0], "blorg");
  EXPECT_EQ(matches[1], "snarf");
  EXPECT_EQ(matches[2], "blorg");
}

// ---------------------------------------------------------------------------
// Dot output
// ---------------------------------------------------------------------------

TEST(Io, DotContainsStatesAndLabels) {
  Dfa dfa = compile_regex("ab");
  std::string dot = to_dot(dfa, byte_symbol_name);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("label=\"a\""), std::string::npos);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);
}

TEST(Io, SpaceRendersAsGDot) {
  Dfa dfa = compile_regex("a b");
  std::string dot = to_dot(dfa, byte_symbol_name);
  EXPECT_NE(dot.find("Ġ"), std::string::npos);
}

}  // namespace
}  // namespace relm::automata

namespace relm::automata {
namespace {

// ---------------------------------------------------------------------------
// Hopcroft minimization: must agree exactly with the Moore implementation.
// ---------------------------------------------------------------------------

class MinimizationAgreement : public ::testing::TestWithParam<const char*> {};

TEST_P(MinimizationAgreement, HopcroftEqualsMoore) {
  Dfa raw = compile_regex_unminimized(GetParam());
  Dfa moore = minimize(raw);
  Dfa hopcroft = minimize_hopcroft(raw);
  EXPECT_EQ(moore.num_states(), hopcroft.num_states()) << GetParam();
  // Both are canonical (BFS-renumbered minimal machines), so structural
  // equality is language equality.
  EXPECT_EQ(moore, hopcroft) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, MinimizationAgreement,
    ::testing::Values("(a|b)*abb", "a*", "(a|ab)(c|bc)", "((a)|(bb))*",
                      "[a-f]{2,5}", "(cat)|(dog)|(cow)|(c.t)",
                      "x(y|z)*x|zz*", "(0|1(01*0)*1)*",  // binary multiples of 3
                      "a{3,7}b{0,4}", "(the )?((cat)|(dog)) (ran|sat)"));

TEST(Hopcroft, LevenshteinAutomaton) {
  // A bigger machine: the Levenshtein-1 expansion of a sentence prefix.
  Dfa lang = compile_regex("The man was trained in");
  ByteSet alpha;
  for (int c = 'a'; c <= 'z'; ++c) alpha.set(c);
  Nfa nfa(256);
  (void)nfa;
  Dfa edited = levenshtein_expand(lang, 1, alpha);  // already minimized (Moore)
  Dfa again = minimize_hopcroft(edited);
  EXPECT_EQ(again.num_states(), edited.num_states());
  EXPECT_TRUE(equivalent(again, edited));
}

TEST(Hopcroft, EmptyAndTrivial) {
  Dfa never = intersect(compile_regex("a"), compile_regex("b"));
  EXPECT_EQ(minimize_hopcroft(never).num_states(), minimize(never).num_states());
  EXPECT_EQ(minimize_hopcroft(compile_regex_unminimized("a*")),
            minimize(compile_regex_unminimized("a*")));
}

// ---------------------------------------------------------------------------
// Property sweep: randomized regexes, algebraic identities.
// ---------------------------------------------------------------------------

std::string random_regex(util::Pcg32& rng, int depth) {
  if (depth <= 0) {
    static const char* kAtoms[] = {"a", "b", "c", "[ab]", "[bc]", "."};
    return kAtoms[rng.bounded(6)];
  }
  switch (rng.bounded(6)) {
    case 0: return random_regex(rng, depth - 1) + random_regex(rng, depth - 1);
    case 1:
      return "(" + random_regex(rng, depth - 1) + ")|(" +
             random_regex(rng, depth - 1) + ")";
    case 2: return "(" + random_regex(rng, depth - 1) + ")*";
    case 3: return "(" + random_regex(rng, depth - 1) + ")?";
    case 4: return "(" + random_regex(rng, depth - 1) + "){1,2}";
    default: return random_regex(rng, depth - 1);
  }
}

class RandomRegexProperties : public ::testing::TestWithParam<int> {};

TEST_P(RandomRegexProperties, AlgebraicIdentitiesHold) {
  util::Pcg32 rng(static_cast<std::uint64_t>(GetParam()));
  std::string ra = random_regex(rng, 3);
  std::string rb = random_regex(rng, 3);
  SCOPED_TRACE("A=" + ra + "  B=" + rb);
  Dfa a = compile_regex(ra);
  Dfa b = compile_regex(rb);
  ByteSet universe;
  for (char c : {'a', 'b', 'c'}) universe.set(static_cast<unsigned char>(c));

  // Hopcroft agrees with Moore on random machines.
  EXPECT_EQ(minimize_hopcroft(a), a);  // a is already canonical
  // Idempotence.
  EXPECT_TRUE(equivalent(union_of(a, a), a));
  EXPECT_TRUE(equivalent(intersect(a, a), a));
  // Commutativity.
  EXPECT_TRUE(equivalent(union_of(a, b), union_of(b, a)));
  EXPECT_TRUE(equivalent(intersect(a, b), intersect(b, a)));
  // De Morgan over the shared universe (restrict to universe-only strings by
  // intersecting with universe* first).
  Dfa u_star = [&] {
    Dfa d(256);
    StateId s = d.add_state(true);
    d.set_start(s);
    for (unsigned cb = 0; cb < 256; ++cb) {
      if (universe.test(cb)) d.add_edge(s, cb, s);
    }
    return d;
  }();
  Dfa ua = intersect(a, u_star);
  Dfa ub = intersect(b, u_star);
  Dfa lhs = complement(union_of(ua, ub), universe);
  Dfa rhs = intersect(complement(ua, universe), complement(ub, universe));
  EXPECT_TRUE(equivalent(lhs, rhs));
  // Difference definition.
  EXPECT_TRUE(equivalent(difference(ua, ub, universe),
                         intersect(ua, complement(ub, universe))));
  // Double complement.
  EXPECT_TRUE(equivalent(complement(complement(ua, universe), universe), ua));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomRegexProperties,
                         ::testing::Range(1, 21));

class RandomRegexMembership : public ::testing::TestWithParam<int> {};

TEST_P(RandomRegexMembership, EnumerationMembersAccepted) {
  util::Pcg32 rng(1000 + static_cast<std::uint64_t>(GetParam()));
  std::string pattern = random_regex(rng, 3);
  SCOPED_TRACE(pattern);
  Dfa dfa = compile_regex(pattern);
  // Every enumerated string is accepted, and enumeration is sorted by length.
  auto strings = enumerate_strings(dfa, 40, 6);
  std::size_t prev_len = 0;
  for (const auto& s : strings) {
    EXPECT_TRUE(dfa.accepts_bytes(s)) << '"' << s << '"';
    EXPECT_GE(s.size(), prev_len);
    prev_len = s.size();
  }
  // Bounded count is consistent with enumeration when it did not truncate.
  if (strings.size() < 40) {
    std::uint64_t count = count_strings(dfa, 6);
    EXPECT_EQ(count >= strings.size(), true);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomRegexMembership,
                         ::testing::Range(1, 16));

}  // namespace
}  // namespace relm::automata

namespace relm::automata {
namespace {

// ---------------------------------------------------------------------------
// Parser robustness: random byte soup must parse or throw, never crash, and
// a successful parse must compile to an automaton.
// ---------------------------------------------------------------------------

class ParserFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ParserFuzz, NeverCrashes) {
  util::Pcg32 rng(5000 + static_cast<std::uint64_t>(GetParam()));
  static const char kSoup[] = "ab(|)*+?{}[]\\.-^0123456789,c ";
  for (int round = 0; round < 200; ++round) {
    std::string pattern;
    std::size_t len = rng.bounded(18);
    for (std::size_t i = 0; i < len; ++i) {
      pattern.push_back(kSoup[rng.bounded(sizeof(kSoup) - 1)]);
    }
    try {
      Dfa dfa = compile_regex(pattern);
      // If it parsed, the automaton is well-formed: accepts() terminates and
      // trim/minimize idempotence holds.
      dfa.accepts_bytes("abc");
      EXPECT_EQ(minimize(dfa), dfa) << pattern;
    } catch (const relm::RegexError&) {
      // Fine: malformed input is rejected with a typed error.
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Range(1, 9));

}  // namespace
}  // namespace relm::automata

namespace relm::automata {
namespace {

// ---------------------------------------------------------------------------
// Edge cases and error paths
// ---------------------------------------------------------------------------

TEST(Ops, PrefixClosure) {
  Dfa closed = prefix_closure(compile_regex("The cat"));
  EXPECT_TRUE(closed.accepts_bytes(""));
  EXPECT_TRUE(closed.accepts_bytes("The"));
  EXPECT_TRUE(closed.accepts_bytes("The ca"));
  EXPECT_TRUE(closed.accepts_bytes("The cat"));
  EXPECT_FALSE(closed.accepts_bytes("The cats"));
  EXPECT_FALSE(closed.accepts_bytes("cat"));
}

TEST(Ops, PrefixClosureOfEmptyLanguageStaysEmpty) {
  Dfa never = intersect(compile_regex("a"), compile_regex("b"));
  EXPECT_TRUE(is_empty_language(prefix_closure(never)));
}

TEST(Ops, MismatchedAlphabetsThrow) {
  Dfa bytes = compile_regex("a");
  Dfa tokens(100);
  tokens.set_start(tokens.add_state(true));
  EXPECT_THROW(union_of(bytes, tokens), relm::Error);
  EXPECT_THROW(intersect(bytes, tokens), relm::Error);
  EXPECT_THROW(concat(bytes, tokens), relm::Error);
}

TEST(Grep, StarPatternMatchesRunsNotEmpties) {
  // Zero-length matches are skipped by contract; "a*" finds the maximal runs.
  auto matches = grep_strings(compile_regex("a*"), "xaaayazaa");
  ASSERT_EQ(matches.size(), 3u);
  EXPECT_EQ(matches[0], "aaa");
  EXPECT_EQ(matches[1], "a");
  EXPECT_EQ(matches[2], "aa");
}

TEST(RegexParser, NegatedClassAndHexEscape) {
  Dfa not_vowel = compile_regex("[^aeiou]");
  EXPECT_TRUE(not_vowel.accepts_bytes("z"));
  EXPECT_TRUE(not_vowel.accepts_bytes("7"));
  EXPECT_FALSE(not_vowel.accepts_bytes("e"));
  EXPECT_FALSE(not_vowel.accepts_bytes("zz"));

  Dfa hex = compile_regex("\\x41\\x2e");  // "A."
  EXPECT_TRUE(hex.accepts_bytes("A."));
  EXPECT_FALSE(hex.accepts_bytes("A!"));
}

TEST(Walks, CountClampsBeyondTable) {
  Dfa dfa = compile_regex("a{0,2}");
  WalkCounts walks(dfa, 4);
  EXPECT_DOUBLE_EQ(walks.count(dfa.start(), 4), walks.count(dfa.start(), 100));
}

}  // namespace
}  // namespace relm::automata
