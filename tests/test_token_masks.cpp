// Tests for the precomputed per-state token bitmask fast path: the
// util::TokenBitset currency, the token_masks compile pass and its
// TokenMaskTable, the expand_masked executor primitive (vs the per-edge
// reference path), the v2 artifact container with its v1 back-compat, the
// decoding-rule membership test, and the `relm verify` mask invariants.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <new>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/invariants.hpp"
#include "core/compiled_query.hpp"
#include "core/executor.hpp"
#include "core/pipeline/artifact.hpp"
#include "core/pipeline/cache.hpp"
#include "core/pipeline/pipeline.hpp"
#include "core/token_masks.hpp"
#include "model/decoding.hpp"
#include "model/ngram_model.hpp"
#include "testing/fuzz_targets.hpp"
#include "tokenizer/bpe.hpp"
#include "util/errors.hpp"
#include "util/rng.hpp"
#include "util/token_bitset.hpp"

// ---------------------------------------------------------------------------
// Global allocation counter: replaces the global allocator for this binary so
// TokenAllowed.NoAllocation can pin the "no allocation" contract, not just
// eyeball it. Counting is the only side effect.
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::size_t> g_alloc_count{0};
}

// GCC inlines these and then flags free() against the malloc inside the
// replaced new as a mismatched pair; the pair is internally consistent.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace relm {
namespace {

using core::CompiledQuery;
using core::SimpleSearchQuery;
using core::TokenizationStrategy;
using core::TokenMaskTable;
using model::DecodingRules;
using tokenizer::BpeTokenizer;
using tokenizer::TokenId;
using util::TokenBitset;

// ---------------------------------------------------------------------------
// Fixtures
// ---------------------------------------------------------------------------

const BpeTokenizer& fixture_tokenizer() {
  static const BpeTokenizer tok = [] {
    std::string text;
    for (int i = 0; i < 60; ++i) {
      text += "The cat sat on the mat. The dog ran far. ";
      text += "abe acde abbbe fine dine. ";
    }
    BpeTokenizer::TrainConfig config;
    config.vocab_size = 400;
    return BpeTokenizer::train(text, config);
  }();
  return tok;
}

std::shared_ptr<model::NgramModel> fixture_model() {
  static const std::shared_ptr<model::NgramModel> model = [] {
    model::NgramModel::Config config;
    config.order = 4;
    config.alpha = 0.3;
    config.max_sequence_length = 48;
    std::vector<std::string> docs;
    for (int i = 0; i < 30; ++i) {
      docs.push_back("The cat sat on the mat.");
      docs.push_back("The dog ran far.");
      docs.push_back("abe acde abbbe.");
    }
    return model::NgramModel::train(fixture_tokenizer(), docs, config);
  }();
  return model;
}

// The stable tiny vocabulary the checked-in v1 fixture artifact was compiled
// against (see tests/fuzz_corpus/README-like comment in the fixture
// generator test below). from_vocab is exact — no training randomness — so
// the vocab fingerprint is reproducible forever.
BpeTokenizer tiny_tokenizer() {
  return BpeTokenizer::from_vocab({"", "a", "b", "c", "ab", "bc", "abc"});
}

SimpleSearchQuery make_query(const std::string& pattern,
                             TokenizationStrategy strategy,
                             const std::string& prefix = "") {
  SimpleSearchQuery query;
  query.query_string.query_str = pattern;
  query.query_string.prefix_str = prefix;
  query.tokenization_strategy = strategy;
  query.max_results = 20;
  return query;
}

SimpleSearchQuery tiny_fixture_query() {
  SimpleSearchQuery query = make_query("(ab|c)(a|bc)",
                                       TokenizationStrategy::kCanonicalTokens);
  return query;
}

struct TempDir {
  std::filesystem::path path;
  explicit TempDir(const std::string& name)
      : path(std::filesystem::temp_directory_path() /
             ("relm_token_masks_test_" + name)) {
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string str() const { return path.string(); }
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing file: " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// ---------------------------------------------------------------------------
// TokenBitset
// ---------------------------------------------------------------------------

TEST(TokenBitset, SetTestResetAcrossWordBoundaries) {
  TokenBitset bits(130);
  EXPECT_EQ(bits.size(), 130u);
  EXPECT_EQ(bits.num_words(), 3u);
  EXPECT_TRUE(bits.none());
  bits.set(0);
  bits.set(63);
  bits.set(64);
  bits.set(129);
  EXPECT_TRUE(bits[0] && bits[63] && bits[64] && bits[129]);
  EXPECT_FALSE(bits[1] || bits[65] || bits[128]);
  EXPECT_EQ(bits.count(), 4u);
  bits.reset(64);
  EXPECT_FALSE(bits[64]);
  EXPECT_EQ(bits.count(), 3u);
}

TEST(TokenBitset, TrailingBitsStayZero) {
  TokenBitset bits(70, true);
  EXPECT_EQ(bits.count(), 70u);  // not 128: bits past size() must be clear
  bits.set_all();
  EXPECT_EQ(bits.count(), 70u);
  EXPECT_EQ(bits.word(1) >> 6, 0ull);  // only the low 6 bits of word 1 used
}

TEST(TokenBitset, AndWithIntersects) {
  TokenBitset a(100), b(100);
  for (std::size_t i = 0; i < 100; i += 2) a.set(i);
  for (std::size_t i = 0; i < 100; i += 3) b.set(i);
  a.and_with(b);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(a[i], i % 6 == 0) << i;
  }
}

TEST(TokenBitset, ForEachSetAscending) {
  TokenBitset bits(200);
  std::vector<std::size_t> want{0, 5, 63, 64, 127, 128, 199};
  for (std::size_t i : want) bits.set(i);
  std::vector<std::size_t> got;
  bits.for_each_set([&](std::size_t i) { got.push_back(i); });
  EXPECT_EQ(got, want);
}

TEST(TokenBitset, DefaultConstructedIsEmpty) {
  TokenBitset bits;
  EXPECT_TRUE(bits.empty());
  EXPECT_EQ(bits.num_words(), 0u);
}

// ---------------------------------------------------------------------------
// TokenMaskTable: build + mismatch detection
// ---------------------------------------------------------------------------

automata::Dfa tiny_dfa() {
  // 3 states over a 70-symbol alphabet (so masks straddle a word boundary).
  automata::Dfa dfa(70);
  automata::StateId s0 = dfa.add_state(false);
  automata::StateId s1 = dfa.add_state(false);
  automata::StateId s2 = dfa.add_state(true);
  dfa.set_start(s0);
  dfa.add_edge(s0, 2, s1);
  dfa.add_edge(s0, 65, s2);
  dfa.add_edge(s1, 0, s2);
  dfa.add_edge(s1, 69, s1);
  return dfa;
}

TEST(TokenMasks, BuildMatchesEdges) {
  automata::Dfa dfa = tiny_dfa();
  TokenMaskTable table = core::build_token_masks(dfa);
  EXPECT_EQ(table.num_states, 3u);
  EXPECT_EQ(table.words_per_state, 2u);
  EXPECT_EQ(table.num_edges(), 4u);
  EXPECT_EQ(table.memory_bytes(), core::token_mask_table_bytes(dfa));
  // State 0: tokens 2 and 65.
  EXPECT_EQ(table.state_words(0)[0], 1ull << 2);
  EXPECT_EQ(table.state_words(0)[1], 1ull << 1);
  // State 1: tokens 0 and 69.
  EXPECT_EQ(table.state_words(1)[0], 1ull << 0);
  EXPECT_EQ(table.state_words(1)[1], 1ull << 5);
  // State 2: nothing.
  EXPECT_EQ(table.state_words(2)[0], 0ull);
  EXPECT_EQ(table.state_words(2)[1], 0ull);
  // CSR slices in token order.
  EXPECT_EQ(table.edge_offsets, (std::vector<std::uint32_t>{0, 2, 4, 4}));
  EXPECT_EQ(table.edge_tokens, (std::vector<std::uint32_t>{2, 65, 0, 69}));
  EXPECT_EQ(table.edge_targets, (std::vector<std::uint32_t>{1, 2, 2, 1}));
  EXPECT_EQ(core::masks_mismatch(dfa, table), std::nullopt);
}

TEST(TokenMasks, MismatchDetectsEveryCorruption) {
  automata::Dfa dfa = tiny_dfa();
  const TokenMaskTable good = core::build_token_masks(dfa);

  TokenMaskTable bad = good;
  bad.words[0] |= 1ull << 10;  // phantom token bit
  ASSERT_TRUE(core::masks_mismatch(dfa, bad).has_value());

  bad = good;
  bad.words[0] &= ~(1ull << 2);  // dropped token bit
  ASSERT_TRUE(core::masks_mismatch(dfa, bad).has_value());

  bad = good;
  bad.edge_targets[1] = 0;  // edge rerouted
  ASSERT_TRUE(core::masks_mismatch(dfa, bad).has_value());

  bad = good;
  bad.edge_tokens[2] = 7;  // wrong token label
  ASSERT_TRUE(core::masks_mismatch(dfa, bad).has_value());

  bad = good;
  bad.edge_offsets[1] = 1;  // broken CSR slicing
  ASSERT_TRUE(core::masks_mismatch(dfa, bad).has_value());

  bad = good;
  bad.num_states = 2;  // wrong dimensions
  ASSERT_TRUE(core::masks_mismatch(dfa, bad).has_value());
}

TEST(TokenMasks, PipelineBuildsMasksForBothAutomata) {
  SimpleSearchQuery query = make_query("The ((cat)|(dog))",
                                       TokenizationStrategy::kCanonicalTokens,
                                       "The ");
  auto artifact =
      core::pipeline::Pipeline::standard().run(query, fixture_tokenizer())
          .artifact;
  ASSERT_FALSE(artifact.prefix.masks.empty());
  ASSERT_FALSE(artifact.body.masks.empty());
  EXPECT_EQ(core::masks_mismatch(artifact.prefix.dfa, artifact.prefix.masks),
            std::nullopt);
  EXPECT_EQ(core::masks_mismatch(artifact.body.dfa, artifact.body.masks),
            std::nullopt);
}

// ---------------------------------------------------------------------------
// expand_masked == expand + rule filter, on every reachable state set
// ---------------------------------------------------------------------------

std::vector<CompiledQuery::Step> reference_expand(const CompiledQuery& cq,
                                                  const CompiledQuery::StateSet& set,
                                                  const TokenBitset* rule_mask) {
  std::vector<CompiledQuery::Step> out;
  for (const CompiledQuery::Step& step : cq.expand(set)) {
    if (!step.prefix_only && rule_mask && !(*rule_mask)[step.token]) continue;
    out.push_back(step);
  }
  return out;
}

void expect_steps_equal(const std::vector<CompiledQuery::Step>& got,
                        const std::vector<CompiledQuery::Step>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].token, want[i].token) << i;
    EXPECT_EQ(got[i].next, want[i].next) << i;
    EXPECT_EQ(got[i].prefix_only, want[i].prefix_only) << i;
    EXPECT_EQ(got[i].body_advanced, want[i].body_advanced) << i;
  }
}

void check_expand_equivalence(const SimpleSearchQuery& query) {
  CompiledQuery cq = CompiledQuery::compile(query, fixture_tokenizer());
  ASSERT_TRUE(cq.has_masks());
  const std::size_t vocab = fixture_tokenizer().vocab_size();
  util::Pcg32 rng(99);

  // BFS the reachable state sets (unmasked) and test each against the
  // reference on several rule masks plus the unrestricted case.
  std::vector<CompiledQuery::StateSet> frontier{cq.initial()};
  std::vector<CompiledQuery::StateSet> seen{cq.initial()};
  std::size_t tested = 0;
  std::vector<CompiledQuery::Step> fast;
  while (!frontier.empty() && tested < 200) {
    CompiledQuery::StateSet set = frontier.back();
    frontier.pop_back();
    ++tested;

    for (int variant = 0; variant < 4; ++variant) {
      TokenBitset mask(vocab);
      const TokenBitset* rule = nullptr;
      if (variant > 0) {
        // Densities 1/2, 1/8, and ~0 cover merge, heavy-prune, and
        // everything-pruned behavior.
        const std::uint32_t keep = variant == 1 ? 2 : variant == 2 ? 8 : 997;
        for (std::size_t t = 0; t < vocab; ++t) {
          if (rng.bounded(keep) == 0) mask.set(t);
        }
        rule = &mask;
      }
      CompiledQuery::MaskExpandStats stats;
      cq.expand_masked(set, rule, fast, stats);
      expect_steps_equal(fast, reference_expand(cq, set, rule));
      EXPECT_GT(stats.words_scanned, 0u);

      // mask_pruned must equal the rule-filtered non-prefix-only step count.
      std::size_t want_pruned = 0;
      for (const CompiledQuery::Step& step : cq.expand(set)) {
        if (!step.prefix_only && rule && !(*rule)[step.token]) ++want_pruned;
      }
      EXPECT_EQ(stats.pruned, want_pruned);
    }

    for (const CompiledQuery::Step& step : cq.expand(set)) {
      if (std::find(seen.begin(), seen.end(), step.next) == seen.end()) {
        seen.push_back(step.next);
        frontier.push_back(step.next);
      }
    }
  }
  EXPECT_GT(tested, 1u);
}

TEST(ExpandMasked, MatchesReferenceCanonical) {
  check_expand_equivalence(make_query("The ((cat)|(dog))",
                                      TokenizationStrategy::kCanonicalTokens,
                                      "The "));
}

TEST(ExpandMasked, MatchesReferenceAllTokens) {
  check_expand_equivalence(
      make_query("The ((cat)|(dog))", TokenizationStrategy::kAllTokens, "The "));
}

TEST(ExpandMasked, MatchesReferenceDynamicCanonical) {
  SimpleSearchQuery query =
      make_query("ab+e", TokenizationStrategy::kCanonicalTokens);
  query.canonical_enumeration_budget = 1;  // force dynamic canonicality
  check_expand_equivalence(query);
}

TEST(ExpandMasked, MatchesReferenceNoPrefix) {
  check_expand_equivalence(
      make_query("(cat)|(dog)", TokenizationStrategy::kCanonicalTokens));
}

// ---------------------------------------------------------------------------
// Executors: masks on vs off must be byte-identical; counters move
// ---------------------------------------------------------------------------

TEST(Executors, MaskFastPathIsByteIdenticalAndCounted) {
  SimpleSearchQuery query = make_query("The ((cat)|(dog))",
                                       TokenizationStrategy::kCanonicalTokens,
                                       "The ");
  query.decoding.top_k = 200;  // prunes plenty of the 400-token vocab while
                               // leaving the query's language reachable
  CompiledQuery cq = CompiledQuery::compile(query, fixture_tokenizer());
  ASSERT_TRUE(cq.has_masks());

  SimpleSearchQuery off = query;
  off.use_token_masks = false;

  core::ShortestPathSearch on_search(*fixture_model(), cq, query);
  core::ShortestPathSearch off_search(*fixture_model(), cq, off);
  auto on_results = on_search.all();
  auto off_results = off_search.all();
  ASSERT_EQ(on_results.size(), off_results.size());
  ASSERT_FALSE(on_results.empty());
  for (std::size_t i = 0; i < on_results.size(); ++i) {
    EXPECT_EQ(on_results[i].tokens, off_results[i].tokens);
    EXPECT_EQ(on_results[i].text, off_results[i].text);
    EXPECT_EQ(on_results[i].log_prob, off_results[i].log_prob);  // exact
  }

  // The probe path's per-edge rule prunes move wholesale to mask_pruned;
  // EOS-closure prunes (if any) are the only pruned_by_rules left.
  const core::SearchStats& on_stats = on_search.stats();
  const core::SearchStats& off_stats = off_search.stats();
  EXPECT_GT(on_stats.mask_words_scanned, 0u);
  EXPECT_EQ(off_stats.mask_words_scanned, 0u);
  EXPECT_EQ(on_stats.mask_pruned + on_stats.pruned_by_rules,
            off_stats.pruned_by_rules);

  // Beam: same comparison.
  core::BeamSearch on_beam(*fixture_model(), cq, query);
  core::BeamSearch off_beam(*fixture_model(), cq, off);
  auto beam_on = on_beam.run();
  auto beam_off = off_beam.run();
  ASSERT_EQ(beam_on.size(), beam_off.size());
  for (std::size_t i = 0; i < beam_on.size(); ++i) {
    EXPECT_EQ(beam_on[i].tokens, beam_off[i].tokens);
    EXPECT_EQ(beam_on[i].log_prob, beam_off[i].log_prob);
  }
  EXPECT_GT(on_beam.stats().mask_words_scanned, 0u);

  // Sampler: identical draws from identical seeds.
  core::RandomSampler on_sampler(*fixture_model(), cq, query, 42);
  core::RandomSampler off_sampler(*fixture_model(), cq, off, 42);
  auto samples_on = on_sampler.sample_all();
  auto samples_off = off_sampler.sample_all();
  ASSERT_EQ(samples_on.size(), samples_off.size());
  for (std::size_t i = 0; i < samples_on.size(); ++i) {
    EXPECT_EQ(samples_on[i].tokens, samples_off[i].tokens);
    EXPECT_EQ(samples_on[i].log_prob, samples_off[i].log_prob);
  }
  EXPECT_GT(on_sampler.stats().mask_words_scanned, 0u);
}

// ---------------------------------------------------------------------------
// token_allowed: no allocation, agreement with allowed_tokens
// ---------------------------------------------------------------------------

std::vector<double> random_log_probs(util::Pcg32& rng, std::size_t vocab,
                                     bool uniform) {
  std::vector<double> p(vocab);
  double total = 0.0;
  for (double& v : p) {
    v = uniform ? 1.0 : 0.05 + rng.uniform();
    total += v;
  }
  std::vector<double> lp(vocab);
  for (std::size_t i = 0; i < vocab; ++i) lp[i] = std::log(p[i] / total);
  return lp;
}

TEST(TokenAllowed, AgreesWithAllowedTokensIncludingTies) {
  util::Pcg32 rng(7);
  std::vector<DecodingRules> rule_sets(4);
  rule_sets[1].top_k = 5;
  rule_sets[2].top_p = 0.7;
  rule_sets[3].top_k = 9;
  rule_sets[3].top_p = 0.85;
  rule_sets[3].temperature = 0.6;
  DecodingRules hot;
  hot.top_p = 0.5;
  hot.temperature = 1.7;
  rule_sets.push_back(hot);

  for (int trial = 0; trial < 12; ++trial) {
    // Half the trials are fully uniform distributions: every log-prob ties,
    // the worst case for rank-order agreement between the two functions.
    const bool uniform = trial % 2 == 0;
    std::vector<double> lp = random_log_probs(rng, 50 + trial * 13, uniform);
    for (const DecodingRules& rules : rule_sets) {
      TokenBitset mask = model::allowed_tokens(lp, rules);
      for (std::size_t t = 0; t < lp.size(); ++t) {
        EXPECT_EQ(mask[t],
                  model::token_allowed(lp, rules, static_cast<TokenId>(t)))
            << "trial " << trial << " token " << t
            << (uniform ? " (uniform)" : "");
      }
    }
  }
}

TEST(TokenAllowed, NoAllocation) {
  util::Pcg32 rng(13);
  std::vector<double> lp = random_log_probs(rng, 512, /*uniform=*/false);
  DecodingRules rules;
  rules.top_k = 7;
  rules.top_p = 0.9;
  rules.temperature = 0.7;
  (void)model::token_allowed(lp, rules, 3);  // warm-up (lazy runtime state)

  const std::size_t before = g_alloc_count.load(std::memory_order_relaxed);
  bool any = false;
  for (std::size_t t = 0; t < lp.size(); ++t) {
    any |= model::token_allowed(lp, rules, static_cast<TokenId>(t));
  }
  const std::size_t after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before) << "token_allowed allocated on a membership test";
  EXPECT_TRUE(any);
}

// ---------------------------------------------------------------------------
// Artifact container: v2 round-trip, corruption rejection, v1 back-compat
// ---------------------------------------------------------------------------

TEST(ArtifactV2, RoundTripPreservesMasks) {
  SimpleSearchQuery query = make_query("The ((cat)|(dog))",
                                       TokenizationStrategy::kCanonicalTokens,
                                       "The ");
  auto artifact =
      core::pipeline::Pipeline::standard().run(query, fixture_tokenizer())
          .artifact;
  std::ostringstream sink;
  core::pipeline::save_artifact(artifact, sink);
  EXPECT_NE(sink.str().find("RELM_ARTIFACT v2"), std::string::npos);
  EXPECT_NE(sink.str().find("RELM_MASKS v1"), std::string::npos);

  std::istringstream source(sink.str());
  core::pipeline::QueryArtifact reloaded = core::pipeline::load_artifact(source);
  EXPECT_EQ(reloaded.prefix.masks, artifact.prefix.masks);
  EXPECT_EQ(reloaded.body.masks, artifact.body.masks);
  EXPECT_EQ(core::pipeline::artifact_checksum(reloaded),
            core::pipeline::artifact_checksum(artifact));
}

std::string v2_container_text() {
  SimpleSearchQuery query = make_query("The ((cat)|(dog))",
                                       TokenizationStrategy::kCanonicalTokens,
                                       "The ");
  auto artifact =
      core::pipeline::Pipeline::standard().run(query, fixture_tokenizer())
          .artifact;
  std::ostringstream sink;
  core::pipeline::save_artifact(artifact, sink);
  return sink.str();
}

void expect_load_fails_with(const std::string& text, const std::string& needle) {
  std::istringstream in(text);
  try {
    (void)core::pipeline::load_artifact(in);
    FAIL() << "corrupt container loaded cleanly (wanted \"" << needle << "\")";
  } catch (const relm::Error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "diagnostic was: " << e.what();
  }
}

TEST(ArtifactV2, BitFlippedMaskWordRejected) {
  std::string text = v2_container_text();
  // Flip one hex digit inside the first "bits" payload line.
  std::size_t bits_pos = text.find("\nbits ");
  ASSERT_NE(bits_pos, std::string::npos);
  std::size_t digit = bits_pos + 6;
  text[digit] = text[digit] == '0' ? '1' : '0';
  expect_load_fails_with(text, "masks_checksum mismatch");
}

TEST(ArtifactV2, TruncatedMaskSectionRejectedWithLocation) {
  std::string text = v2_container_text();
  std::size_t bits_pos = text.find("\nbits ");
  ASSERT_NE(bits_pos, std::string::npos);
  expect_load_fails_with(text.substr(0, bits_pos + 8), "masks");
}

TEST(ArtifactV2, MaskDimensionForgeryRejectedBeforeAllocation) {
  std::string text = v2_container_text();
  // Forge an absurd state count in the first RELM_MASKS header (the DFA
  // section's own dimensions line carries no field labels, so anchor on the
  // masks section). The loader must refuse by comparing against the
  // already-loaded DFA instead of allocating what the header claims.
  std::size_t masks_pos = text.find("RELM_MASKS");
  ASSERT_NE(masks_pos, std::string::npos);
  std::size_t pos = text.find("states ", masks_pos);
  ASSERT_NE(pos, std::string::npos);
  std::size_t digits = pos + 7;
  std::size_t digits_end = text.find(' ', digits);
  ASSERT_NE(digits_end, std::string::npos);
  text.replace(digits, digits_end - digits, "99999999");
  expect_load_fails_with(text, "states");
}

TEST(ArtifactV2, UnsupportedVersionNamesReadableRange) {
  expect_load_fails_with("RELM_ARTIFACT v3\nkey junk\n", "v1-v2");
}

TEST(ArtifactV1, LegacyWriterOutputReloadsWithRecomputedMasks) {
  for (auto strategy : {TokenizationStrategy::kCanonicalTokens,
                        TokenizationStrategy::kAllTokens}) {
    SimpleSearchQuery query =
        make_query("The ((cat)|(dog))", strategy, "The ");
    auto artifact =
        core::pipeline::Pipeline::standard().run(query, fixture_tokenizer())
            .artifact;
    std::ostringstream sink;
    core::pipeline::save_artifact_v1(artifact, sink);
    EXPECT_NE(sink.str().find("RELM_ARTIFACT v1"), std::string::npos);
    EXPECT_EQ(sink.str().find("RELM_MASKS"), std::string::npos);

    std::istringstream source(sink.str());
    core::pipeline::QueryArtifact reloaded =
        core::pipeline::load_artifact(source);
    // Masks were not in the file; the loader recomputes them, bit-identical
    // to the fresh compile's token_masks pass.
    EXPECT_EQ(reloaded.prefix.masks, artifact.prefix.masks);
    EXPECT_EQ(reloaded.body.masks, artifact.body.masks);
  }
}

TEST(ArtifactV1, DynamicCanonicalReloadDrivesExecutorsIdentically) {
  SimpleSearchQuery query =
      make_query("ab+e", TokenizationStrategy::kCanonicalTokens);
  query.canonical_enumeration_budget = 1;  // force dynamic canonicality
  query.require_eos = false;
  auto fresh =
      core::pipeline::Pipeline::standard().run(query, fixture_tokenizer())
          .artifact;
  ASSERT_TRUE(fresh.body.dynamic_canonical);

  std::ostringstream sink;
  core::pipeline::save_artifact_v1(fresh, sink);
  std::istringstream source(sink.str());
  auto reloaded = std::make_shared<core::pipeline::QueryArtifact>(
      core::pipeline::load_artifact(source));

  CompiledQuery from_fresh = CompiledQuery::from_artifact(
      std::make_shared<core::pipeline::QueryArtifact>(fresh),
      fixture_tokenizer());
  CompiledQuery from_v1 =
      CompiledQuery::from_artifact(reloaded, fixture_tokenizer());

  core::ShortestPathSearch fresh_search(*fixture_model(), from_fresh, query);
  core::ShortestPathSearch v1_search(*fixture_model(), from_v1, query);
  auto fresh_results = fresh_search.all();
  auto v1_results = v1_search.all();
  ASSERT_FALSE(fresh_results.empty());
  ASSERT_EQ(fresh_results.size(), v1_results.size());
  for (std::size_t i = 0; i < fresh_results.size(); ++i) {
    EXPECT_EQ(fresh_results[i].tokens, v1_results[i].tokens);
    EXPECT_EQ(fresh_results[i].log_prob, v1_results[i].log_prob);  // bitwise
  }
}

// The checked-in fixture: a v1 container written by the legacy writer against
// the stable tiny_tokenizer() vocabulary. It must keep loading forever, and
// drive the executors exactly like a fresh v2 compile of the same query.
TEST(ArtifactV1, CheckedInFixtureMatchesFreshCompile) {
  const std::string path =
      std::string(RELM_FUZZ_CORPUS_DIR) + "/artifact-v1-tiny.relmq";
  BpeTokenizer tok = tiny_tokenizer();
  std::string text = slurp(path);
  ASSERT_NE(text.find("RELM_ARTIFACT v1"), std::string::npos);

  std::istringstream in(text);
  auto reloaded = std::make_shared<core::pipeline::QueryArtifact>(
      core::pipeline::load_artifact(in));
  ASSERT_FALSE(reloaded->prefix.masks.empty());
  ASSERT_FALSE(reloaded->body.masks.empty());

  SimpleSearchQuery query = tiny_fixture_query();
  auto fresh = core::pipeline::Pipeline::standard().run(query, tok).artifact;
  EXPECT_EQ(reloaded->key, fresh.key) << "fixture was built for another query";
  EXPECT_EQ(reloaded->prefix.masks, fresh.prefix.masks);
  EXPECT_EQ(reloaded->body.masks, fresh.body.masks);

  model::NgramModel::Config config;
  config.order = 2;
  config.max_sequence_length = 16;
  auto model = model::NgramModel::train(tok, {"aba", "cbc", "abc"}, config);

  CompiledQuery from_fixture = CompiledQuery::from_artifact(reloaded, tok);
  CompiledQuery from_fresh = CompiledQuery::from_artifact(
      std::make_shared<core::pipeline::QueryArtifact>(fresh), tok);
  core::ShortestPathSearch fixture_search(*model, from_fixture, query);
  core::ShortestPathSearch fresh_search(*model, from_fresh, query);
  auto fixture_results = fixture_search.all();
  auto fresh_results = fresh_search.all();
  ASSERT_FALSE(fresh_results.empty());
  ASSERT_EQ(fixture_results.size(), fresh_results.size());
  for (std::size_t i = 0; i < fresh_results.size(); ++i) {
    EXPECT_EQ(fixture_results[i].tokens, fresh_results[i].tokens);
    EXPECT_EQ(fixture_results[i].log_prob, fresh_results[i].log_prob);
  }
}

// ---------------------------------------------------------------------------
// Fuzz corpus: corrupt v2 containers must be rejected, never crash
// ---------------------------------------------------------------------------

TEST(FuzzCorpus, CorruptV2ArtifactsRejectedWithDiagnostics) {
  for (const char* name :
       {"artifact-v2-truncated-masks.relmq", "artifact-v2-mask-bitflip.relmq"}) {
    SCOPED_TRACE(name);
    std::string text = slurp(std::string(RELM_FUZZ_CORPUS_DIR) + "/" + name);
    ASSERT_FALSE(text.empty());
    // The fuzz entry point must treat the input as a clean rejection (return
    // 0 without aborting) ...
    EXPECT_EQ(testing::fuzz_artifact_loader(
                  reinterpret_cast<const std::uint8_t*>(text.data()),
                  text.size()),
              0);
    // ... and the loader must say *where* it gave up.
    std::istringstream in(text);
    try {
      (void)core::pipeline::load_artifact(in);
      FAIL() << "corrupt corpus file loaded cleanly";
    } catch (const relm::Error& e) {
      EXPECT_NE(std::string(e.what()).find("masks"), std::string::npos)
          << "diagnostic was: " << e.what();
    }
  }
}

// ---------------------------------------------------------------------------
// Compile cache: a disk entry with a corrupted mask section falls back to
// recompilation (counted), never crashes or serves wrong masks
// ---------------------------------------------------------------------------

TEST(ArtifactCache, CorruptMaskSectionFallsBackToRecompile) {
  using core::pipeline::ArtifactCache;
  using core::pipeline::ArtifactCacheConfig;
  using core::pipeline::ArtifactKey;

  TempDir dir("corrupt_masks");
  SimpleSearchQuery query = make_query("(cat)|(dog)",
                                       TokenizationStrategy::kCanonicalTokens);
  ArtifactCacheConfig config;
  config.disk_dir = dir.str();

  ArtifactKey key;
  {
    ArtifactCache warm(config);
    key = core::pipeline::compile_cached(query, fixture_tokenizer(), &warm)->key;
  }
  const std::string path = dir.str() + "/" + key.hex() + ".relmq";
  {
    std::string contents = slurp(path);
    std::size_t bits_pos = contents.find("\nbits ");
    ASSERT_NE(bits_pos, std::string::npos);
    std::size_t digit = bits_pos + 6;
    contents[digit] = contents[digit] == '0' ? '1' : '0';
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    out << contents;
  }

  ArtifactCache cold(config);
  EXPECT_EQ(cold.lookup(key), nullptr);  // corrupt = miss, never a crash
  EXPECT_EQ(cold.stats().disk_errors, 1u);

  auto artifact = core::pipeline::compile_cached(query, fixture_tokenizer(), &cold);
  ASSERT_NE(artifact, nullptr);
  EXPECT_EQ(core::masks_mismatch(artifact->body.dfa, artifact->body.masks),
            std::nullopt);
}

// ---------------------------------------------------------------------------
// relm verify: persisted masks are audited against the automata
// ---------------------------------------------------------------------------

TEST(CheckQueryArtifact, FlagsMaskMismatchAndHalfPresence) {
  SimpleSearchQuery query = make_query("(cat)|(dog)",
                                       TokenizationStrategy::kCanonicalTokens);
  auto artifact =
      core::pipeline::Pipeline::standard().run(query, fixture_tokenizer())
          .artifact;

  {
    analysis::InvariantReport report;
    analysis::check_query_artifact(artifact, nullptr, report);
    EXPECT_FALSE(report.has("artifact.token-masks")) << report.to_string();
  }
  {
    core::pipeline::QueryArtifact bad = artifact;
    bad.body.masks.words[0] ^= 1;  // one flipped mask bit
    analysis::InvariantReport report;
    analysis::check_query_artifact(bad, nullptr, report);
    EXPECT_TRUE(report.has("artifact.token-masks")) << report.to_string();
  }
  {
    core::pipeline::QueryArtifact bad = artifact;
    bad.prefix.masks = core::TokenMaskTable{};  // half-present pair
    analysis::InvariantReport report;
    analysis::check_query_artifact(bad, nullptr, report);
    EXPECT_TRUE(report.has("artifact.token-masks")) << report.to_string();
  }
}

}  // namespace
}  // namespace relm
