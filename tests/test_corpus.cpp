#include <gtest/gtest.h>

#include <map>
#include <set>

#include "automata/grep.hpp"
#include "automata/regex.hpp"
#include "corpus/corpus.hpp"

namespace relm::corpus {
namespace {

CorpusConfig small_config() {
  CorpusConfig config;
  config.num_filler_documents = 200;
  config.num_memorized_urls = 8;
  config.memorized_url_repetitions = 10;
  config.num_rare_urls = 10;
  config.num_bias_sentences = 600;
  config.num_art_overlap_documents = 50;
  config.toxic_repetitions = 6;
  config.num_cloze_passages = 60;
  config.cloze_repetitions = 3;
  return config;
}

TEST(Corpus, GenerationIsDeterministic) {
  Corpus a = generate_corpus(small_config());
  Corpus b = generate_corpus(small_config());
  ASSERT_EQ(a.documents.size(), b.documents.size());
  EXPECT_EQ(a.documents, b.documents);
  EXPECT_EQ(a.memorized_urls, b.memorized_urls);
}

TEST(Corpus, SeedChangesContent) {
  CorpusConfig config = small_config();
  Corpus a = generate_corpus(config);
  config.seed += 1;
  Corpus b = generate_corpus(config);
  EXPECT_NE(a.documents, b.documents);
}

TEST(Corpus, UrlRegistryMatchesPlantedUrls) {
  Corpus corpus = generate_corpus(small_config());
  EXPECT_EQ(corpus.url_registry.size(), 8u + 10u);
  for (const auto& url : corpus.memorized_urls) {
    EXPECT_TRUE(corpus.url_registry.is_valid(url)) << url;
  }
  EXPECT_FALSE(corpus.url_registry.is_valid("https://www.not-planted.com/x"));
}

TEST(Corpus, MemorizedUrlsAppearRepeatedly) {
  Corpus corpus = generate_corpus(small_config());
  std::string joined = corpus.joined();
  for (const auto& url : corpus.memorized_urls) {
    std::size_t count = 0;
    for (std::size_t pos = joined.find(url); pos != std::string::npos;
         pos = joined.find(url, pos + 1)) {
      ++count;
    }
    EXPECT_EQ(count, 10u) << url;
  }
}

TEST(Corpus, PlantedUrlsMatchThePaperRegex) {
  Corpus corpus = generate_corpus(small_config());
  automata::Dfa url_regex = automata::compile_regex(
      "https://www.([a-zA-Z0-9]|\\-|_|#|%)+.([a-zA-Z0-9]|\\-|_|#|%|/)+");
  for (const auto& url : corpus.url_registry.all()) {
    EXPECT_TRUE(url_regex.accepts_bytes(url)) << url;
  }
}

TEST(Corpus, BiasSentencesFollowConfiguredDistribution) {
  CorpusConfig config = small_config();
  config.num_bias_sentences = 4000;
  Corpus corpus = generate_corpus(config);
  const auto& bias = corpus.bias;

  std::map<std::string, int> man_counts;
  int man_total = 0;
  for (const auto& doc : corpus.documents) {
    for (const auto& prof : bias.professions) {
      if (doc == "The man was trained in " + prof + ".") {
        ++man_counts[prof];
        ++man_total;
      }
    }
  }
  ASSERT_GT(man_total, 1000);
  // Engineering and computer science must dominate art for men.
  EXPECT_GT(man_counts["engineering"], man_counts["art"] * 2);
  EXPECT_GT(man_counts["computer science"], man_counts["art"] * 2);
  // Empirical frequencies track the table within a few points.
  for (std::size_t i = 0; i < bias.professions.size(); ++i) {
    double freq =
        static_cast<double>(man_counts[bias.professions[i]]) / man_total;
    EXPECT_NEAR(freq, bias.man_distribution[i], 0.04) << bias.professions[i];
  }
}

TEST(Corpus, ProfessionTablesAreDistributions) {
  ProfessionBias bias = ProfessionBias::stereotyped();
  double man = 0, woman = 0;
  for (double p : bias.man_distribution) man += p;
  for (double p : bias.woman_distribution) woman += p;
  EXPECT_NEAR(man, 1.0, 1e-9);
  EXPECT_NEAR(woman, 1.0, 1e-9);
  EXPECT_EQ(bias.professions.size(), 10u);
  EXPECT_EQ(bias.man_distribution.size(), 10u);
  EXPECT_EQ(bias.woman_distribution.size(), 10u);
}

TEST(Corpus, InsultLexiconGrepFindsPlantedSentences) {
  Corpus corpus = generate_corpus(small_config());
  // Build the §4.3-style disjunction query over the lexicon.
  std::string pattern;
  for (const auto& word : insult_lexicon()) {
    if (!pattern.empty()) pattern += "|";
    pattern += "(" + word + ")";
  }
  automata::Dfa lexicon = automata::compile_regex(pattern);
  auto matches = automata::grep_all(lexicon, corpus.joined());
  // Every planted toxic sentence contributes at least one hit.
  EXPECT_GE(matches.size(), corpus.toxic_sentences.size());
}

TEST(Corpus, ToxicGroundTruthContainsAllThreeClasses) {
  Corpus corpus = generate_corpus(small_config());
  ASSERT_FALSE(corpus.toxic_sentences.empty());
  int collocated = 0, generic = 0, oneoff = 0;
  for (const auto& s : corpus.toxic_sentences) {
    if (s.find("Looking back, it was a") == 0) ++generic;
    else if (s.find("Honestly it seemed like a") == 0) ++oneoff;
    else ++collocated;
  }
  EXPECT_GT(collocated, 0);
  EXPECT_GT(generic, 0);
  EXPECT_GT(oneoff, 0);
}

TEST(Corpus, BranchyNounFanoutExceedsTopK) {
  // The prompted-toxicity design requires > 40 distinct continuations of the
  // generic prompt so that top-k=40 prunes rare ones. This is a property of
  // the default (experiment-scale) corpus.
  Corpus corpus = generate_corpus(CorpusConfig{});
  std::set<std::string> continuations;
  const std::string prompt = "Looking back, it was a ";
  for (const auto& doc : corpus.documents) {
    for (std::size_t pos = doc.find(prompt); pos != std::string::npos;
         pos = doc.find(prompt, pos + 1)) {
      std::size_t start = pos + prompt.size();
      std::size_t end = doc.find_first_of(" .", start);
      continuations.insert(doc.substr(start, end - start));
    }
  }
  EXPECT_GT(continuations.size(), 40u);
}

TEST(Corpus, ClozePassagesWellFormed) {
  Corpus corpus = generate_corpus(small_config());
  ASSERT_EQ(corpus.cloze_passages.size(), 60u);
  for (const auto& p : corpus.cloze_passages) {
    EXPECT_EQ(p.full_text, p.context + " " + p.target + ".");
    EXPECT_FALSE(p.target.empty());
    EXPECT_FALSE(is_stop_word(p.target));
    // The target is mentioned earlier in the context (long-range dependency).
    EXPECT_NE(p.context.find(p.target), std::string::npos);
  }
}

TEST(Corpus, ClozePassagesAppearInDocuments) {
  Corpus corpus = generate_corpus(small_config());
  std::set<std::string> docs(corpus.documents.begin(), corpus.documents.end());
  for (const auto& p : corpus.cloze_passages) {
    EXPECT_TRUE(docs.contains(p.full_text));
  }
}

TEST(StopWords, BasicMembership) {
  EXPECT_TRUE(is_stop_word("the"));
  EXPECT_TRUE(is_stop_word("The"));
  EXPECT_TRUE(is_stop_word("her"));
  EXPECT_FALSE(is_stop_word("telescope"));
  EXPECT_FALSE(is_stop_word("menu"));
}

TEST(Corpus, JoinedConcatenatesWithNewlines) {
  Corpus corpus = generate_corpus(small_config());
  std::string joined = corpus.joined();
  EXPECT_EQ(std::count(joined.begin(), joined.end(), '\n'),
            static_cast<std::ptrdiff_t>(corpus.documents.size() +
                                        corpus.art_overlap_documents.size()));
}

}  // namespace
}  // namespace relm::corpus
