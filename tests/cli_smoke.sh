#!/bin/sh
# End-to-end smoke test for the relm CLI: build artifacts, reload them, run a
# query, sample, grep, and verify error handling. Invoked by CTest with the
# binary path as $1.
set -e
RELM="$1"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT

"$RELM" build --out "$DIR" --scale 0.15 >/dev/null
test -f "$DIR/tokenizer.relm"
test -f "$DIR/sim-xl.relm"
test -f "$DIR/sim-small.relm"

"$RELM" info --dir "$DIR" | grep -q "sim-xl"

OUT="$("$RELM" query --dir "$DIR" \
  --pattern 'The ((man)|(woman)) was trained in ((art)|(science))' \
  --prefix 'The ((man)|(woman)) was trained in' --results 4 2>/dev/null)"
echo "$OUT" | grep -q "was trained in"
test "$(echo "$OUT" | wc -l)" -eq 4

"$RELM" analyze --dir "$DIR" --pattern "(cat)|(dog)" | grep -q "finite"

"$RELM" sample --dir "$DIR" --n 3 --seed 1 2>/dev/null | grep -q '"'

"$RELM" grep --dir "$DIR" --pattern 'blorgface' --max 1 | grep -q blorgface

# Error paths: bad flag usage and bad regex exit non-zero with a message.
if "$RELM" query --dir "$DIR" 2>/dev/null; then exit 1; fi
if "$RELM" query --dir "$DIR" --pattern '(((' 2>/dev/null; then exit 1; fi
if "$RELM" info --dir /nonexistent 2>/dev/null; then exit 1; fi

echo "cli smoke: ok"
