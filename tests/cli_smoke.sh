#!/bin/sh
# End-to-end smoke test for the relm CLI: build artifacts, reload them, run a
# query, sample, grep, and verify error handling. Invoked by CTest with the
# binary path as $1.
set -e
RELM="$1"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT

"$RELM" build --out "$DIR" --scale 0.15 >/dev/null
test -f "$DIR/tokenizer.relm"
test -f "$DIR/sim-xl.relm"
test -f "$DIR/sim-small.relm"

"$RELM" info --dir "$DIR" | grep -q "sim-xl"

OUT="$("$RELM" query --dir "$DIR" \
  --pattern 'The ((man)|(woman)) was trained in ((art)|(science))' \
  --prefix 'The ((man)|(woman)) was trained in' --results 4 2>/dev/null)"
echo "$OUT" | grep -q "was trained in"
test "$(echo "$OUT" | wc -l)" -eq 4

# The parallel/caching knobs must not change query results: same rows as
# the serial run above, and the cache stats line lands on stderr.
PAR="$("$RELM" query --dir "$DIR" \
  --pattern 'The ((man)|(woman)) was trained in ((art)|(science))' \
  --prefix 'The ((man)|(woman)) was trained in' --results 4 \
  --threads 2 --cache-capacity 1024 --batch 4 2>"$DIR/stderr.txt")"
test "$PAR" = "$OUT"
grep -q "cache:" "$DIR/stderr.txt"

# Observability: `relm run` (alias for query) with tracing and metrics. The
# trace must be Chrome-trace JSON with the compile/executor phase spans; the
# metrics line must carry the registry's cache and executor counters.
RUN_OUT="$("$RELM" run --dir "$DIR" \
  --pattern 'The ((man)|(woman)) was trained in ((art)|(science))' \
  --prefix 'The ((man)|(woman)) was trained in' --results 4 \
  --trace-out "$DIR/trace.json" --trace-jsonl "$DIR/trace.jsonl" \
  --metrics 2>/dev/null)"
test "$(echo "$RUN_OUT" | grep -v '^METRICS ')" = "$OUT"
echo "$RUN_OUT" | grep -q '^METRICS {.*"executor.llm_calls"'
test -f "$DIR/trace.json"
grep -q '"traceEvents"' "$DIR/trace.json"
grep -q '"compile.query"' "$DIR/trace.json"
grep -q '"executor.pump"' "$DIR/trace.json"
grep -q '"relm.search"' "$DIR/trace.json"
grep -q '"name"' "$DIR/trace.jsonl"
if command -v python3 >/dev/null 2>&1; then
  python3 -m json.tool "$DIR/trace.json" >/dev/null
fi

"$RELM" analyze --dir "$DIR" --pattern "(cat)|(dog)" | grep -q "finite"

"$RELM" sample --dir "$DIR" --n 3 --seed 1 2>/dev/null | grep -q '"'

"$RELM" grep --dir "$DIR" --pattern 'blorgface' --max 1 | grep -q blorgface

# Structural verification: fresh artifacts are clean.
"$RELM" verify --dir "$DIR" | grep -q "ok"

# A corrupted artifact must fail verification with a diagnostic. Bump the
# first stored n-gram row total (file line 4: "<key> <total> <n> ...") so it
# no longer matches the sum of the row's counts.
CORRUPT="$DIR/corrupt"
mkdir -p "$CORRUPT"
cp "$DIR/tokenizer.relm" "$DIR/sim-xl.relm" "$DIR/meta.txt" "$CORRUPT/"
awk 'NR == 4 { $2 = $2 + 1000 } { print }' "$DIR/sim-small.relm" \
  > "$CORRUPT/sim-small.relm"
if "$RELM" verify --dir "$CORRUPT" 2>/dev/null; then exit 1; fi
"$RELM" verify --dir "$CORRUPT" 2>&1 >/dev/null | grep -q "ngram.row-total"

# Error paths: bad flag usage and bad regex exit non-zero with a message.
if "$RELM" query --dir "$DIR" 2>/dev/null; then exit 1; fi
if "$RELM" query --dir "$DIR" --pattern '(((' 2>/dev/null; then exit 1; fi
if "$RELM" info --dir /nonexistent 2>/dev/null; then exit 1; fi
if "$RELM" verify --dir /nonexistent 2>/dev/null; then exit 1; fi

echo "cli smoke: ok"
