#!/bin/sh
# End-to-end smoke test for the relm CLI: build artifacts, reload them, run a
# query, sample, grep, and verify error handling. Invoked by CTest with the
# binary path as $1.
set -e
RELM="$1"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT

"$RELM" build --out "$DIR" --scale 0.15 >/dev/null
test -f "$DIR/tokenizer.relm"
test -f "$DIR/sim-xl.relm"
test -f "$DIR/sim-small.relm"

"$RELM" info --dir "$DIR" | grep -q "sim-xl"

OUT="$("$RELM" query --dir "$DIR" \
  --pattern 'The ((man)|(woman)) was trained in ((art)|(science))' \
  --prefix 'The ((man)|(woman)) was trained in' --results 4 2>/dev/null)"
echo "$OUT" | grep -q "was trained in"
test "$(echo "$OUT" | wc -l)" -eq 4

# The parallel/caching knobs must not change query results: same rows as
# the serial run above, and the cache stats line lands on stderr.
PAR="$("$RELM" query --dir "$DIR" \
  --pattern 'The ((man)|(woman)) was trained in ((art)|(science))' \
  --prefix 'The ((man)|(woman)) was trained in' --results 4 \
  --threads 2 --cache-capacity 1024 --batch 4 2>"$DIR/stderr.txt")"
test "$PAR" = "$OUT"
grep -q "cache:" "$DIR/stderr.txt"

# Observability: `relm run` (alias for query) with tracing and metrics. The
# trace must be Chrome-trace JSON with the compile/executor phase spans; the
# metrics line must carry the registry's cache and executor counters.
RUN_OUT="$("$RELM" run --dir "$DIR" \
  --pattern 'The ((man)|(woman)) was trained in ((art)|(science))' \
  --prefix 'The ((man)|(woman)) was trained in' --results 4 \
  --trace-out "$DIR/trace.json" --trace-jsonl "$DIR/trace.jsonl" \
  --metrics 2>/dev/null)"
test "$(echo "$RUN_OUT" | grep -v '^METRICS ')" = "$OUT"
echo "$RUN_OUT" | grep -q '^METRICS {.*"executor.llm_calls"'
test -f "$DIR/trace.json"
grep -q '"traceEvents"' "$DIR/trace.json"
grep -q '"compile.query"' "$DIR/trace.json"
grep -q '"executor.pump"' "$DIR/trace.json"
grep -q '"relm.search"' "$DIR/trace.json"
grep -q '"name"' "$DIR/trace.jsonl"
if command -v python3 >/dev/null 2>&1; then
  python3 -m json.tool "$DIR/trace.json" >/dev/null
fi

"$RELM" analyze --dir "$DIR" --pattern "(cat)|(dog)" | grep -q "finite"

"$RELM" sample --dir "$DIR" --n 3 --seed 1 2>/dev/null | grep -q '"'

"$RELM" grep --dir "$DIR" --pattern 'blorgface' --max 1 | grep -q blorgface

# Structural verification: fresh artifacts are clean.
"$RELM" verify --dir "$DIR" | grep -q "ok"

# Batched multi-stream generation: two streams with a fixed seed emit one
# JSONL line each, identically on every run and at every thread count.
GEN="$("$RELM" generate --dir "$DIR" \
  --pattern 'The ((man)|(woman)) was trained in ((art)|(science))' \
  --streams 2 --seed 7 2>"$DIR/gen.txt")"
test "$(echo "$GEN" | wc -l)" -eq 2
echo "$GEN" | grep -q '"stream":0'
echo "$GEN" | grep -q '"stream":1'
grep -q "generate: 2 streams" "$DIR/gen.txt"

GEN_T4="$("$RELM" generate --dir "$DIR" \
  --pattern 'The ((man)|(woman)) was trained in ((art)|(science))' \
  --streams 2 --seed 7 --threads 4 2>/dev/null)"
test "$GEN_T4" = "$GEN"

# The token-mask fast path is an optimization, never a semantic change: the
# same streams with masks disabled emit identical lines.
GEN_NOMASK="$("$RELM" generate --dir "$DIR" \
  --pattern 'The ((man)|(woman)) was trained in ((art)|(science))' \
  --streams 2 --seed 7 --no-token-masks 2>/dev/null)"
test "$GEN_NOMASK" = "$GEN"

# A corrupted artifact must fail verification with a diagnostic. Bump the
# first stored n-gram row total (file line 4: "<key> <total> <n> ...") so it
# no longer matches the sum of the row's counts.
CORRUPT="$DIR/corrupt"
mkdir -p "$CORRUPT"
cp "$DIR/tokenizer.relm" "$DIR/sim-xl.relm" "$DIR/meta.txt" "$CORRUPT/"
awk 'NR == 4 { $2 = $2 + 1000 } { print }' "$DIR/sim-small.relm" \
  > "$CORRUPT/sim-small.relm"
if "$RELM" verify --dir "$CORRUPT" 2>/dev/null; then exit 1; fi
"$RELM" verify --dir "$CORRUPT" 2>&1 >/dev/null | grep -q "ngram.row-total"

# Compile-cache lifecycle: cold compile stores an artifact on disk, a warm
# run serves it back (identical results), and a corrupted entry falls back
# to a recompile instead of crashing.
CACHE="$DIR/compile-cache"
COLD="$("$RELM" query --dir "$DIR" \
  --pattern 'The ((man)|(woman)) was trained in ((art)|(science))' \
  --prefix 'The ((man)|(woman)) was trained in' --results 4 \
  --compile-cache "$CACHE" 2>"$DIR/cold.txt")"
test "$COLD" = "$OUT"
grep -q "compile cache: 0 hits / 1 misses" "$DIR/cold.txt"
ENTRY="$(ls "$CACHE"/*.relmq)"
test -f "$ENTRY"

WARM="$("$RELM" query --dir "$DIR" \
  --pattern 'The ((man)|(woman)) was trained in ((art)|(science))' \
  --prefix 'The ((man)|(woman)) was trained in' --results 4 \
  --compile-cache "$CACHE" --metrics 2>"$DIR/warm.txt")"
test "$(echo "$WARM" | grep -v '^METRICS ')" = "$OUT"
grep -q "compile cache: 1 hits / 0 misses, 1 disk loads" "$DIR/warm.txt"
echo "$WARM" | grep -q '"compile_cache.hit":1'

# The cache directory passes verification while its entries are intact.
"$RELM" verify --dir "$DIR" --cache "$CACHE" --skip-queries | grep -q "ok"

# Truncate the stored entry: the query must recompile (corrupt counted, same
# results), and verify must flag the directory.
head -c 60 "$ENTRY" > "$ENTRY.tmp" && mv "$ENTRY.tmp" "$ENTRY"
if "$RELM" verify --dir "$DIR" --cache "$CACHE" --skip-queries 2>/dev/null; then exit 1; fi
"$RELM" verify --dir "$DIR" --cache "$CACHE" --skip-queries 2>&1 >/dev/null \
  | grep -q "cache.corrupt-entry"
CORRUPTED="$("$RELM" query --dir "$DIR" \
  --pattern 'The ((man)|(woman)) was trained in ((art)|(science))' \
  --prefix 'The ((man)|(woman)) was trained in' --results 4 \
  --compile-cache "$CACHE" 2>"$DIR/corrupted.txt")"
test "$CORRUPTED" = "$OUT"
grep -q "1 corrupt entries" "$DIR/corrupted.txt"
# The recompile overwrote the bad entry; the cache verifies clean again.
"$RELM" verify --dir "$DIR" --cache "$CACHE" --skip-queries | grep -q "ok"

# --no-compile-cache must run without touching the cache machinery.
NOCACHE="$("$RELM" query --dir "$DIR" \
  --pattern 'The ((man)|(woman)) was trained in ((art)|(science))' \
  --prefix 'The ((man)|(woman)) was trained in' --results 4 \
  --no-compile-cache 2>"$DIR/nocache.txt")"
test "$NOCACHE" = "$OUT"
if grep -q "compile cache:" "$DIR/nocache.txt"; then exit 1; fi

# Error paths: bad flag usage and bad regex exit non-zero with a message.
if "$RELM" query --dir "$DIR" 2>/dev/null; then exit 1; fi
if "$RELM" query --dir "$DIR" --pattern '(((' 2>/dev/null; then exit 1; fi
if "$RELM" info --dir /nonexistent 2>/dev/null; then exit 1; fi
if "$RELM" verify --dir /nonexistent 2>/dev/null; then exit 1; fi

# generate: missing artifacts, a corrupt tokenizer, and a zero stream count
# all fail with a diagnostic instead of generating garbage.
if "$RELM" generate --dir /nonexistent --pattern 'a' 2>/dev/null; then exit 1; fi
TRUNC="$DIR/trunc"
mkdir -p "$TRUNC"
cp "$DIR/sim-xl.relm" "$DIR/sim-small.relm" "$DIR/meta.txt" "$TRUNC/"
head -c 50 "$DIR/tokenizer.relm" > "$TRUNC/tokenizer.relm"
if "$RELM" generate --dir "$TRUNC" --pattern 'a' 2>/dev/null; then exit 1; fi
"$RELM" generate --dir "$TRUNC" --pattern 'a' 2>&1 >/dev/null | grep -q "truncated"
if "$RELM" generate --dir "$DIR" --pattern 'a' --streams 0 2>/dev/null; then exit 1; fi

echo "cli smoke: ok"
