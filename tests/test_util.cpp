#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace relm::util {
namespace {

TEST(Pcg32, Deterministic) {
  Pcg32 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Pcg32, DifferentSeedsDiffer) {
  Pcg32 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Pcg32, BoundedStaysInBound) {
  Pcg32 rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.bounded(17), 17u);
  }
}

TEST(Pcg32, UniformInUnitInterval) {
  Pcg32 rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Pcg32, RangeInclusive) {
  Pcg32 rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    auto v = rng.range(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    if (v == -2) saw_lo = true;
    if (v == 2) saw_hi = true;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Pcg32, WeightedRespectsWeights) {
  Pcg32 rng(5);
  std::array<double, 3> weights{1.0, 0.0, 3.0};
  std::array<int, 3> hits{};
  for (int i = 0; i < 8000; ++i) {
    std::size_t pick = rng.weighted(weights);
    ASSERT_LT(pick, 3u);
    ++hits[pick];
  }
  EXPECT_EQ(hits[1], 0);
  EXPECT_NEAR(static_cast<double>(hits[2]) / hits[0], 3.0, 0.4);
}

TEST(Pcg32, WeightedZeroTotal) {
  Pcg32 rng(5);
  std::array<double, 2> weights{0.0, 0.0};
  EXPECT_EQ(rng.weighted(weights), weights.size());
}

TEST(Strings, Split) {
  auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(Strings, SplitTrailingDelimiter) {
  auto parts = split("a,", ',');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[1], "");
}

TEST(Strings, SplitWhitespace) {
  auto parts = split_whitespace("  the\tquick \n fox ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "the");
  EXPECT_EQ(parts[1], "quick");
  EXPECT_EQ(parts[2], "fox");
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, "|"), "a|b|c");
  EXPECT_EQ(join({}, "|"), "");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("https://www.x", "https://"));
  EXPECT_FALSE(starts_with("http", "https://"));
  EXPECT_TRUE(ends_with("file.txt", ".txt"));
  EXPECT_FALSE(ends_with("txt", ".txt"));
}

TEST(Strings, ToLower) { EXPECT_EQ(to_lower("MiXeD 42!"), "mixed 42!"); }

TEST(Strings, EscapeForDisplay) {
  EXPECT_EQ(escape_for_display("ab"), "ab");
  EXPECT_EQ(escape_for_display("a\nb"), "a\\nb");
  EXPECT_EQ(escape_for_display(std::string("\x01", 1)), "\\x01");
  EXPECT_EQ(escape_for_display("a\\b"), "a\\\\b");
}

TEST(Strings, RegexEscapeRoundTrip) {
  // The escaped form must parse as a literal; spot-check metacharacters.
  EXPECT_EQ(regex_escape("a.b"), "a\\.b");
  EXPECT_EQ(regex_escape("x{2}"), "x\\{2\\}");
  EXPECT_EQ(regex_escape("(a|b)*"), "\\(a\\|b\\)\\*");
}

// ---------------------------------------------------------------------------
// Thread pool
// ---------------------------------------------------------------------------

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(257);
  pool.parallel_for(touched.size(),
                    [&](std::size_t i) { touched[i].fetch_add(1); });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPool, ResultsInInputOrderAnyThreadCount) {
  // out[i] must equal f(i) regardless of which thread ran it; more items
  // than threads so the queue wraps.
  for (std::size_t threads : {1u, 2u, 3u, 8u}) {
    ThreadPool pool(threads);
    std::vector<std::size_t> out(1000, 0);
    pool.parallel_for(out.size(), [&](std::size_t i) { out[i] = i * i; });
    for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
  }
}

TEST(ThreadPool, SingleThreadRunsOnCaller) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.threads(), 1u);
  std::vector<int> out(16, 0);
  pool.parallel_for(out.size(), [&](std::size_t i) { out[i] = 1; });
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 16);
}

TEST(ThreadPool, NestedParallelForFallsBackToSerial) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  pool.parallel_for(8, [&](std::size_t) {
    // Re-entrant use from a worker must not deadlock; it runs serially on
    // the calling thread.
    pool.parallel_for(8, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPool, ExceptionPropagatesAndPoolSurvives) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](std::size_t i) {
                                   if (i == 37) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // The pool remains usable after a failed job.
  std::atomic<int> total{0};
  pool.parallel_for(10, [&](std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 10);
}

TEST(ThreadPool, SharedPoolResizable) {
  ThreadPool::set_shared_threads(3);
  EXPECT_EQ(ThreadPool::shared().threads(), 3u);
  std::vector<int> out(64, 0);
  ThreadPool::shared().parallel_for(out.size(),
                                    [&](std::size_t i) { out[i] = 1; });
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 64);
  ThreadPool::set_shared_threads(1);
}

}  // namespace
}  // namespace relm::util
