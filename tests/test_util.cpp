#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "util/rng.hpp"
#include "util/strings.hpp"

namespace relm::util {
namespace {

TEST(Pcg32, Deterministic) {
  Pcg32 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Pcg32, DifferentSeedsDiffer) {
  Pcg32 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Pcg32, BoundedStaysInBound) {
  Pcg32 rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.bounded(17), 17u);
  }
}

TEST(Pcg32, UniformInUnitInterval) {
  Pcg32 rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Pcg32, RangeInclusive) {
  Pcg32 rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    auto v = rng.range(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    if (v == -2) saw_lo = true;
    if (v == 2) saw_hi = true;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Pcg32, WeightedRespectsWeights) {
  Pcg32 rng(5);
  std::array<double, 3> weights{1.0, 0.0, 3.0};
  std::array<int, 3> hits{};
  for (int i = 0; i < 8000; ++i) {
    std::size_t pick = rng.weighted(weights);
    ASSERT_LT(pick, 3u);
    ++hits[pick];
  }
  EXPECT_EQ(hits[1], 0);
  EXPECT_NEAR(static_cast<double>(hits[2]) / hits[0], 3.0, 0.4);
}

TEST(Pcg32, WeightedZeroTotal) {
  Pcg32 rng(5);
  std::array<double, 2> weights{0.0, 0.0};
  EXPECT_EQ(rng.weighted(weights), weights.size());
}

TEST(Strings, Split) {
  auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(Strings, SplitTrailingDelimiter) {
  auto parts = split("a,", ',');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[1], "");
}

TEST(Strings, SplitWhitespace) {
  auto parts = split_whitespace("  the\tquick \n fox ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "the");
  EXPECT_EQ(parts[1], "quick");
  EXPECT_EQ(parts[2], "fox");
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, "|"), "a|b|c");
  EXPECT_EQ(join({}, "|"), "");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("https://www.x", "https://"));
  EXPECT_FALSE(starts_with("http", "https://"));
  EXPECT_TRUE(ends_with("file.txt", ".txt"));
  EXPECT_FALSE(ends_with("txt", ".txt"));
}

TEST(Strings, ToLower) { EXPECT_EQ(to_lower("MiXeD 42!"), "mixed 42!"); }

TEST(Strings, EscapeForDisplay) {
  EXPECT_EQ(escape_for_display("ab"), "ab");
  EXPECT_EQ(escape_for_display("a\nb"), "a\\nb");
  EXPECT_EQ(escape_for_display(std::string("\x01", 1)), "\\x01");
  EXPECT_EQ(escape_for_display("a\\b"), "a\\\\b");
}

TEST(Strings, RegexEscapeRoundTrip) {
  // The escaped form must parse as a literal; spot-check metacharacters.
  EXPECT_EQ(regex_escape("a.b"), "a\\.b");
  EXPECT_EQ(regex_escape("x{2}"), "x\\{2\\}");
  EXPECT_EQ(regex_escape("(a|b)*"), "\\(a\\|b\\)\\*");
}

}  // namespace
}  // namespace relm::util
