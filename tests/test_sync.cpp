// Tests for the annotated synchronization layer (util/sync.hpp): lock-rank
// deadlock detection, contention observability, and the CondVar/ScopedLock
// contracts. Built with RELM_ENABLE_DCHECKS=1 so the rank detector is active
// regardless of the outer build type.

#include "util/sync.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace relm::util {
namespace {

using ::relm::obs::Registry;

// Death tests fork; the style must be thread-safe because several tests in
// this binary spawn threads.
class SyncDeathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  }
};

TEST(SyncTest, OrderedNestingPasses) {
  Mutex outer(LockRank::kPoolState);
  Mutex inner(LockRank::kPoolJob);
  ScopedLock a(outer);
  ScopedLock b(inner);
  SUCCEED();
}

TEST(SyncTest, FullSubsystemChainPasses) {
  // The deepest realistic nesting: pool caller -> cache shard -> model shard
  // -> trace -> metrics -> logging, strictly increasing all the way down.
  Mutex caller(LockRank::kPoolCaller);
  Mutex compile(LockRank::kCompileCacheShard);
  Mutex model(LockRank::kModelCacheShard);
  Mutex sink(LockRank::kTraceSink);
  Mutex registry(LockRank::kMetricsRegistry);
  Mutex logging(LockRank::kLogging);
  ScopedLock l1(caller);
  ScopedLock l2(compile);
  ScopedLock l3(model);
  ScopedLock l4(sink);
  ScopedLock l5(registry);
  ScopedLock l6(logging);
  SUCCEED();
}

TEST_F(SyncDeathTest, InvertedAcquisitionDies) {
  // Deliberate inversion: acquire a low rank while holding a high one. This
  // is the exact shape of a cross-thread deadlock, caught deterministically
  // on one thread.
  EXPECT_DEATH(
      {
        Mutex logging(LockRank::kLogging);
        Mutex shard(LockRank::kModelCacheShard);
        ScopedLock high(logging);
        ScopedLock low(shard);
      },
      "lock rank order violation");
}

TEST_F(SyncDeathTest, EqualRankNestingDies) {
  // Two shards of the same cache share a rank; holding both at once is the
  // classic shard-A/shard-B vs shard-B/shard-A deadlock.
  EXPECT_DEATH(
      {
        Mutex shard_a(LockRank::kModelCacheShard);
        Mutex shard_b(LockRank::kModelCacheShard);
        ScopedLock a(shard_a);
        ScopedLock b(shard_b);
      },
      "lock rank order violation");
}

TEST_F(SyncDeathTest, TryLockCheckedAgainstRank) {
  // A try_lock that would succeed out of order is the same latent deadlock.
  EXPECT_DEATH(
      {
        Mutex logging(LockRank::kLogging);
        Mutex shard(LockRank::kModelCacheShard);
        ScopedLock high(logging);
        shard.try_lock();
      },
      "lock rank order violation");
}

TEST_F(SyncDeathTest, AssertHeldDiesWhenNotHeld) {
  EXPECT_DEATH(
      {
        Mutex m(LockRank::kPoolJob);
        m.assert_held();
      },
      "assert_held");
}

TEST(SyncTest, ReleaseRestoresRankHeadroom) {
  Mutex high(LockRank::kLogging);
  Mutex low(LockRank::kPoolJob);
  {
    ScopedLock l(high);
  }
  // The high rank was released, so a lower acquisition is legal again.
  ScopedLock l(low);
  SUCCEED();
}

TEST(SyncTest, TryLockSucceedsAndTracksRank) {
  Mutex m(LockRank::kPoolJob);
  ASSERT_TRUE(m.try_lock());
  m.assert_held();
  m.unlock();
}

TEST(SyncTest, TryLockFailsOnContendedMutex) {
  Mutex m(LockRank::kPoolJob);
  std::atomic<bool> held{false};
  std::atomic<bool> done{false};
  std::thread holder([&] {
    ScopedLock lock(m);
    held.store(true);
    while (!done.load()) std::this_thread::yield();
  });
  while (!held.load()) std::this_thread::yield();
  EXPECT_FALSE(m.try_lock());
  done.store(true);
  holder.join();
}

TEST(SyncTest, ScopedLockUnlockRelock) {
  Mutex m(LockRank::kPoolState);
  ScopedLock lock(m);
  EXPECT_TRUE(lock.owns_lock());
  lock.unlock();
  EXPECT_FALSE(lock.owns_lock());
  lock.lock();
  EXPECT_TRUE(lock.owns_lock());
  m.assert_held();
}

TEST(SyncTest, ScopedLockUnlockAllowsReacquireLowerRank) {
  // The worker-loop pattern: drop the state lock around running the job.
  // While it is dropped the thread's rank headroom must fully reset, so even
  // a lower-ranked acquisition is legal.
  Mutex state(LockRank::kPoolState);
  Mutex caller(LockRank::kPoolCaller);
  ScopedLock lock(state);
  lock.unlock();
  {
    ScopedLock other(caller);  // lower rank: legal only because state is free
  }
  lock.lock();
}

TEST(SyncTest, CondVarWaitNotify) {
  Mutex m(LockRank::kPoolJob);
  CondVar cv;
  bool ready = false;  // guarded by m
  std::thread producer([&] {
    {
      ScopedLock lock(m);
      ready = true;
    }
    cv.notify_one();
  });
  {
    ScopedLock lock(m);
    while (!ready) cv.wait(lock);
    EXPECT_TRUE(ready);
    // The lock is held again after wait(): the rank stack must agree.
    m.assert_held();
  }
  producer.join();
}

TEST(SyncTest, CondVarWaitReleasesRankWhileBlocked) {
  // While one thread is parked in wait(), another thread must be able to
  // acquire the same mutex (wait released it) and, on the waiter side, the
  // reacquisition must not trip the rank detector.
  Mutex m(LockRank::kPoolState);
  CondVar cv;
  int stage = 0;  // guarded by m
  std::thread waiter([&] {
    ScopedLock lock(m);
    stage = 1;
    cv.notify_all();
    while (stage != 2) cv.wait(lock);
    stage = 3;
    cv.notify_all();
  });
  {
    ScopedLock lock(m);
    while (stage != 1) cv.wait(lock);
    stage = 2;
    cv.notify_all();
    while (stage != 3) cv.wait(lock);
  }
  waiter.join();
  EXPECT_EQ(stage, 3);
}

TEST(SyncTest, SharedMutexAllowsConcurrentReaders) {
  SharedMutex m(LockRank::kCompileCacheConfig);
  std::atomic<int> readers{0};
  std::atomic<int> peak{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&] {
      while (!go.load()) std::this_thread::yield();
      SharedScopedLock lock(m);
      const int now = readers.fetch_add(1) + 1;
      int expect = peak.load();
      while (now > expect && !peak.compare_exchange_weak(expect, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      readers.fetch_sub(1);
    });
  }
  go.store(true);
  for (auto& t : threads) t.join();
  // With four readers sleeping 20ms inside the shared section, at least two
  // must have overlapped unless the scheduler serialized them pathologically.
  EXPECT_GE(peak.load(), 2);
}

TEST_F(SyncDeathTest, SharedAcquisitionObeysRankOrder) {
  // Readers can block writers, so shared acquisitions follow the same rule.
  EXPECT_DEATH(
      {
        Mutex shard(LockRank::kModelCacheShard);
        SharedMutex config(LockRank::kCompileCacheConfig);
        ScopedLock high(shard);
        SharedScopedLock low(config);
      },
      "lock rank order violation");
}

TEST(SyncTest, ContentionCountersIncrement) {
  obs::Counter& contended = Registry::instance().counter("sync.lock.contended");
  obs::Histogram& wait =
      Registry::instance().histogram("sync.lock.wait_seconds");
  const std::uint64_t contended_before = contended.value();
  const std::uint64_t wait_before = wait.count();

  // Retry until the race lands: the holder must still be inside the critical
  // section when the main thread calls lock(). A 20ms hold per attempt makes
  // a miss essentially impossible, but looping keeps the test deterministic.
  bool observed = false;
  for (int attempt = 0; attempt < 50 && !observed; ++attempt) {
    Mutex m(LockRank::kPoolJob);
    std::atomic<bool> held{false};
    std::thread holder([&] {
      ScopedLock lock(m);
      held.store(true);
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    });
    while (!held.load()) std::this_thread::yield();
    {
      ScopedLock lock(m);  // blocks until the holder's sleep expires
    }
    holder.join();
    observed = contended.value() > contended_before;
  }
  EXPECT_TRUE(observed) << "lock() never observed contention in 50 attempts";
  EXPECT_GT(wait.count(), wait_before);
}

TEST(SyncTest, UncontendedLockDoesNotCountAsContended) {
  obs::Counter& contended = Registry::instance().counter("sync.lock.contended");
  const std::uint64_t before = contended.value();
  Mutex m(LockRank::kPoolJob);
  for (int i = 0; i < 100; ++i) {
    ScopedLock lock(m);
  }
  EXPECT_EQ(contended.value(), before);
}

TEST(SyncTest, InstrumentOffLockSkipsMetrics) {
  obs::Counter& contended = Registry::instance().counter("sync.lock.contended");
  const std::uint64_t before = contended.value();
  Mutex m(LockRank::kMetricsRegistry, Instrument::kOff);
  std::atomic<bool> held{false};
  std::thread holder([&] {
    ScopedLock lock(m);
    held.store(true);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  });
  while (!held.load()) std::this_thread::yield();
  {
    ScopedLock lock(m);  // contends, but must not report
  }
  holder.join();
  EXPECT_EQ(contended.value(), before);
}

TEST(SyncTest, LockRankNamesCoverAllRanks) {
  for (LockRank rank :
       {LockRank::kPoolShared, LockRank::kPoolCaller, LockRank::kPoolState,
        LockRank::kPoolJob, LockRank::kCompileCacheConfig,
        LockRank::kCompileCacheShard, LockRank::kModelCacheShard,
        LockRank::kTraceSink, LockRank::kTraceBuffer,
        LockRank::kMetricsRegistry, LockRank::kLogging}) {
    EXPECT_STRNE(lock_rank_name(rank), "?");
  }
}

}  // namespace
}  // namespace relm::util
