// Tests for the compile pass pipeline, the RELM_ARTIFACT container, and the
// content-addressed artifact cache (src/core/pipeline/).
//
// The load-bearing guarantee is byte-identity: a query compiled fresh, served
// from the in-memory cache, or reloaded from a serialized artifact must drive
// the executors to exactly the same matches at exactly the same costs. The
// Equivalence tests prove that end to end for both tokenization strategies,
// including the dynamic-canonical fallback.

#include <gmock/gmock.h>
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/compiled_query.hpp"
#include "core/executor.hpp"
#include "core/pipeline/artifact.hpp"
#include "core/pipeline/cache.hpp"
#include "core/pipeline/pipeline.hpp"
#include "core/preprocessors.hpp"
#include "model/ngram_model.hpp"
#include "tokenizer/bpe.hpp"
#include "util/errors.hpp"

namespace relm {
namespace {

using core::SimpleSearchQuery;
using core::TokenizationStrategy;
using core::pipeline::ArtifactCache;
using core::pipeline::ArtifactCacheConfig;
using core::pipeline::ArtifactKey;
using core::pipeline::QueryArtifact;
using tokenizer::BpeTokenizer;

const BpeTokenizer& fixture_tokenizer() {
  static const BpeTokenizer tok = [] {
    std::string text;
    for (int i = 0; i < 60; ++i) {
      text += "The cat sat on the mat. The dog ran far. ";
      text += "abe acde abbbe fine dine. ";
    }
    BpeTokenizer::TrainConfig config;
    config.vocab_size = 400;
    return BpeTokenizer::train(text, config);
  }();
  return tok;
}

std::shared_ptr<model::NgramModel> fixture_model() {
  static const std::shared_ptr<model::NgramModel> model = [] {
    model::NgramModel::Config config;
    config.order = 4;
    config.alpha = 0.3;
    config.max_sequence_length = 48;
    std::vector<std::string> docs;
    for (int i = 0; i < 30; ++i) {
      docs.push_back("The cat sat on the mat.");
      docs.push_back("The dog ran far.");
      docs.push_back("abe acde abbbe.");
    }
    return model::NgramModel::train(fixture_tokenizer(), docs, config);
  }();
  return model;
}

SimpleSearchQuery make_query(const std::string& pattern,
                             TokenizationStrategy strategy,
                             const std::string& prefix = "") {
  SimpleSearchQuery query;
  query.query_string.query_str = pattern;
  query.query_string.prefix_str = prefix;
  query.tokenization_strategy = strategy;
  query.max_results = 20;
  return query;
}

// A scratch directory unique to the test, removed on destruction.
struct TempDir {
  std::filesystem::path path;
  explicit TempDir(const std::string& name)
      : path(std::filesystem::temp_directory_path() /
             ("relm_pipeline_test_" + name)) {
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string str() const { return path.string(); }
};

// ---------------------------------------------------------------------------
// Pipeline structure
// ---------------------------------------------------------------------------

TEST(Pipeline, StandardPassSequence) {
  std::vector<std::string> names;
  for (const char* name : core::pipeline::Pipeline::standard().pass_names()) {
    names.push_back(name);
  }
  EXPECT_THAT(names,
              testing::ElementsAre("parse", "thompson", "determinize",
                                   "minimize", "preprocess", "token_lift",
                                   "token_masks", "assemble"));
}

TEST(Pipeline, RunRecordsEveryPass) {
  SimpleSearchQuery query =
      make_query("(cat)|(dog)", TokenizationStrategy::kCanonicalTokens);
  core::pipeline::CompileResult result =
      core::pipeline::Pipeline::standard().run(query, fixture_tokenizer());
  ASSERT_EQ(result.passes.size(), 8u);
  EXPECT_STREQ(result.passes.front().name, "parse");
  EXPECT_STREQ(result.passes.back().name, "assemble");
  for (const auto& record : result.passes) {
    EXPECT_GE(record.seconds, 0.0) << record.name;
  }
  EXPECT_FALSE(result.artifact.key.is_zero());
}

TEST(Pipeline, StateExposesIntermediates) {
  SimpleSearchQuery query = make_query(
      "The ((cat)|(dog))", TokenizationStrategy::kCanonicalTokens, "The ");
  core::pipeline::CompileState state =
      core::pipeline::Pipeline::standard().run_to_state(query,
                                                        fixture_tokenizer());
  ASSERT_TRUE(state.body_ast != nullptr);
  ASSERT_TRUE(state.body_nfa.has_value());
  ASSERT_TRUE(state.body_chars.has_value());
  ASSERT_TRUE(state.prefix_chars.has_value());
  ASSERT_TRUE(state.body_tokens.has_value());
  ASSERT_TRUE(state.artifact.has_value());
  EXPECT_EQ(state.body_pattern, "((cat)|(dog))");
  EXPECT_EQ(state.prefix_pattern, "The ");
  // The char-level DFA operates over bytes; the token automaton over the
  // vocabulary.
  EXPECT_EQ(state.body_chars->num_symbols(), 256u);
  EXPECT_EQ(state.body_tokens->dfa.num_symbols(),
            fixture_tokenizer().vocab_size());
}

TEST(Pipeline, EmptyPrefixSkipsPrefixStages) {
  SimpleSearchQuery query =
      make_query("(cat)|(dog)", TokenizationStrategy::kCanonicalTokens);
  core::pipeline::CompileState state =
      core::pipeline::Pipeline::standard().run_to_state(query,
                                                        fixture_tokenizer());
  EXPECT_TRUE(state.prefix_ast == nullptr);
  EXPECT_FALSE(state.prefix_chars.has_value());
  ASSERT_TRUE(state.artifact.has_value());
  // The epsilon prefix automaton: accepts only the empty token sequence.
  EXPECT_EQ(state.artifact->prefix.dfa.num_states(), 1u);
  EXPECT_TRUE(
      state.artifact->prefix.dfa.is_final(state.artifact->prefix.dfa.start()));
}

TEST(Pipeline, InvalidRegexThrowsRegexError) {
  SimpleSearchQuery query =
      make_query("(unclosed", TokenizationStrategy::kCanonicalTokens);
  EXPECT_THROW(
      core::pipeline::Pipeline::standard().run(query, fixture_tokenizer()),
      relm::RegexError);
}

// ---------------------------------------------------------------------------
// Key derivation
// ---------------------------------------------------------------------------

TEST(ArtifactKey, StableAcrossCalls) {
  SimpleSearchQuery query =
      make_query("(cat)|(dog)", TokenizationStrategy::kCanonicalTokens);
  auto k1 = core::pipeline::derive_artifact_key(query, fixture_tokenizer());
  auto k2 = core::pipeline::derive_artifact_key(query, fixture_tokenizer());
  ASSERT_TRUE(k1 && k2);
  EXPECT_EQ(*k1, *k2);
  EXPECT_FALSE(k1->is_zero());
}

TEST(ArtifactKey, SensitiveToEveryInput) {
  const BpeTokenizer& tok = fixture_tokenizer();
  SimpleSearchQuery base =
      make_query("(cat)|(dog)", TokenizationStrategy::kCanonicalTokens);
  auto base_key = core::pipeline::derive_artifact_key(base, tok);
  ASSERT_TRUE(base_key);

  SimpleSearchQuery other = base;
  other.query_string.query_str = "(cat)|(dot)";
  EXPECT_NE(*core::pipeline::derive_artifact_key(other, tok), *base_key);

  other = base;
  other.tokenization_strategy = TokenizationStrategy::kAllTokens;
  EXPECT_NE(*core::pipeline::derive_artifact_key(other, tok), *base_key);

  other = base;
  other.canonical_enumeration_budget = 7;
  EXPECT_NE(*core::pipeline::derive_artifact_key(other, tok), *base_key);

  other = base;
  other.preprocessors.push_back(
      std::make_shared<core::LevenshteinPreprocessor>(1));
  EXPECT_NE(*core::pipeline::derive_artifact_key(other, tok), *base_key);

  // Same pattern against a different vocabulary must produce a different key.
  BpeTokenizer::TrainConfig config;
  config.vocab_size = 300;
  BpeTokenizer other_tok =
      BpeTokenizer::train("cat dog cat dog cat dog mat hat", config);
  EXPECT_NE(*core::pipeline::derive_artifact_key(base, other_tok), *base_key);
}

TEST(ArtifactKey, PrefixVersusPatternSplit) {
  // "The cat" with and without a prefix are different compiles (the prefix
  // machine bypasses decoding rules) and must not share a key.
  const BpeTokenizer& tok = fixture_tokenizer();
  SimpleSearchQuery no_prefix =
      make_query("The cat", TokenizationStrategy::kCanonicalTokens);
  SimpleSearchQuery with_prefix =
      make_query("The cat", TokenizationStrategy::kCanonicalTokens, "The ");
  auto k1 = core::pipeline::derive_artifact_key(no_prefix, tok);
  auto k2 = core::pipeline::derive_artifact_key(with_prefix, tok);
  ASSERT_TRUE(k1 && k2);
  EXPECT_NE(*k1, *k2);
}

TEST(ArtifactKey, EquivalentPreprocessorConfigsShareKeys) {
  const BpeTokenizer& tok = fixture_tokenizer();
  SimpleSearchQuery a =
      make_query("(cat)|(dog)", TokenizationStrategy::kCanonicalTokens);
  a.preprocessors.push_back(std::make_shared<core::FilterPreprocessor>(
      std::vector<std::string>{"dog"}, core::Preprocessor::Target::kBody));
  SimpleSearchQuery b =
      make_query("(cat)|(dog)", TokenizationStrategy::kCanonicalTokens);
  b.preprocessors.push_back(std::make_shared<core::FilterPreprocessor>(
      "dog", core::Preprocessor::Target::kBody));
  auto ka = core::pipeline::derive_artifact_key(a, tok);
  auto kb = core::pipeline::derive_artifact_key(b, tok);
  ASSERT_TRUE(ka && kb);
  // Both preprocessors forbid the same language; their cache keys hash the
  // minimized forbidden DFA, so the configs collide deliberately.
  EXPECT_EQ(*ka, *kb);
}

TEST(ArtifactKey, UnkeyablePreprocessorDisablesKey) {
  // A preprocessor without a stable cache_key must make the whole query
  // unkeyable (compiling is fine; caching would risk wrong hits).
  class OpaquePreprocessor : public core::Preprocessor {
   public:
    automata::Dfa apply(const automata::Dfa& dfa) const override { return dfa; }
    Target target() const override { return Target::kBody; }
    std::string name() const override { return "opaque"; }
  };
  SimpleSearchQuery query =
      make_query("(cat)|(dog)", TokenizationStrategy::kCanonicalTokens);
  query.preprocessors.push_back(std::make_shared<OpaquePreprocessor>());
  EXPECT_FALSE(
      core::pipeline::derive_artifact_key(query, fixture_tokenizer()));
}

TEST(ArtifactKey, HexRoundTrip) {
  ArtifactKey key{0x0123456789abcdefull, 0xfedcba9876543210ull};
  std::string hex = key.hex();
  EXPECT_EQ(hex.size(), 32u);
  auto parsed = ArtifactKey::from_hex(hex);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(*parsed, key);
  EXPECT_FALSE(ArtifactKey::from_hex("short"));
  EXPECT_FALSE(ArtifactKey::from_hex(std::string(32, 'z')));
}

// ---------------------------------------------------------------------------
// Artifact serialization
// ---------------------------------------------------------------------------

QueryArtifact compile_artifact(const SimpleSearchQuery& query) {
  return core::pipeline::compile_query_artifact(query, fixture_tokenizer());
}

TEST(ArtifactSerialize, RoundTripPreservesEverything) {
  SimpleSearchQuery query = make_query(
      "The ((cat)|(dog))", TokenizationStrategy::kCanonicalTokens, "The ");
  QueryArtifact artifact = compile_artifact(query);
  std::stringstream buffer;
  core::pipeline::save_artifact(artifact, buffer);
  QueryArtifact loaded = core::pipeline::load_artifact(buffer);
  EXPECT_EQ(loaded.key, artifact.key);
  EXPECT_EQ(loaded.vocab_fingerprint, artifact.vocab_fingerprint);
  EXPECT_EQ(loaded.strategy, artifact.strategy);
  EXPECT_EQ(loaded.prefix.dynamic_canonical, artifact.prefix.dynamic_canonical);
  EXPECT_EQ(loaded.body.dynamic_canonical, artifact.body.dynamic_canonical);
  EXPECT_EQ(loaded.prefix.dfa, artifact.prefix.dfa);
  EXPECT_EQ(loaded.body.dfa, artifact.body.dfa);
}

TEST(ArtifactSerialize, RejectsCorruptContainers) {
  SimpleSearchQuery query =
      make_query("(cat)|(dog)", TokenizationStrategy::kCanonicalTokens);
  QueryArtifact artifact = compile_artifact(query);
  std::stringstream buffer;
  core::pipeline::save_artifact(artifact, buffer);
  const std::string good = buffer.str();

  auto load_from = [](const std::string& text) {
    std::stringstream in(text);
    return core::pipeline::load_artifact(in);
  };

  EXPECT_THROW(load_from(""), relm::Error);
  EXPECT_THROW(load_from("RELM_NOPE v1\n"), relm::Error);
  EXPECT_THROW(load_from("RELM_ARTIFACT v999\n"), relm::Error);
  // Truncation anywhere must be detected.
  EXPECT_THROW(load_from(good.substr(0, 40)), relm::Error);
  EXPECT_THROW(load_from(good.substr(0, good.size() / 2)), relm::Error);
  EXPECT_THROW(load_from(good.substr(0, good.size() - 4)), relm::Error);

  // A bit-flip in the DFA payload must fail the checksum (flip a digit in
  // the last edge line, keeping the file well-formed).
  std::string flipped = good;
  std::size_t digit = flipped.find_last_of("0123456789");
  ASSERT_NE(digit, std::string::npos);
  flipped[digit] = flipped[digit] == '0' ? '1' : '0';
  EXPECT_THROW(load_from(flipped), relm::Error);
}

TEST(ArtifactSerialize, RejectsIncoherentStrategyFlags) {
  SimpleSearchQuery query =
      make_query("(cat)|(dog)", TokenizationStrategy::kAllTokens);
  QueryArtifact artifact = compile_artifact(query);
  ASSERT_FALSE(artifact.body.dynamic_canonical);
  // Forge the flag (and its checksum, to get past integrity) — the semantic
  // invariant must still reject it.
  artifact.body.dynamic_canonical = true;
  std::stringstream buffer;
  core::pipeline::save_artifact(artifact, buffer);
  std::stringstream in(buffer.str());
  EXPECT_THROW(core::pipeline::load_artifact(in), relm::Error);
}

TEST(ArtifactSerialize, FileRoundTrip) {
  TempDir dir("file_roundtrip");
  SimpleSearchQuery query =
      make_query("(cat)|(dog)", TokenizationStrategy::kAllTokens);
  QueryArtifact artifact = compile_artifact(query);
  const std::string path = dir.str() + "/artifact.relmq";
  core::pipeline::save_artifact_file(artifact, path);
  QueryArtifact loaded = core::pipeline::load_artifact_file(path);
  EXPECT_EQ(loaded.body.dfa, artifact.body.dfa);
  EXPECT_THROW(core::pipeline::load_artifact_file(dir.str() + "/missing"),
               relm::Error);
}

// ---------------------------------------------------------------------------
// Equivalence: fresh vs cached vs serialized+reloaded compiles
// ---------------------------------------------------------------------------

std::vector<core::SearchResult> run_search(const core::CompiledQuery& compiled,
                                           const SimpleSearchQuery& query) {
  core::ShortestPathSearch search(*fixture_model(), compiled, query);
  return search.all();
}

// Matches and costs must be *identical* — not approximately equal. The
// artifact stores exact automata and the model is deterministic, so any
// deviation marks a real semantic difference between the compile paths.
void expect_identical_results(const std::vector<core::SearchResult>& a,
                              const std::vector<core::SearchResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].tokens, b[i].tokens) << "result " << i;
    EXPECT_EQ(a[i].text, b[i].text) << "result " << i;
    // Bitwise equality: same automaton + same model = same float ops.
    EXPECT_EQ(a[i].log_prob, b[i].log_prob) << "result " << i;
  }
}

void check_equivalence(const SimpleSearchQuery& query) {
  const BpeTokenizer& tok = fixture_tokenizer();

  // Fresh compile through the pipeline, no cache involved.
  auto fresh = std::make_shared<const QueryArtifact>(
      core::pipeline::compile_query_artifact(query, tok));
  core::CompiledQuery from_fresh = core::CompiledQuery::from_artifact(fresh, tok);

  // Serialize, reload, rebind.
  std::stringstream buffer;
  core::pipeline::save_artifact(*fresh, buffer);
  auto reloaded = std::make_shared<const QueryArtifact>(
      core::pipeline::load_artifact(buffer));
  core::CompiledQuery from_disk =
      core::CompiledQuery::from_artifact(reloaded, tok);

  // Serve the same query through a private cache: miss then hit.
  ArtifactCache cache(ArtifactCacheConfig{});
  auto first = core::pipeline::compile_cached(query, tok, &cache);
  auto second = core::pipeline::compile_cached(query, tok, &cache);
  EXPECT_EQ(first.get(), second.get());  // the hit IS the stored artifact
  core::CompiledQuery from_cache =
      core::CompiledQuery::from_artifact(second, tok);

  std::vector<core::SearchResult> baseline = run_search(from_fresh, query);
  ASSERT_FALSE(baseline.empty());
  expect_identical_results(baseline, run_search(from_disk, query));
  expect_identical_results(baseline, run_search(from_cache, query));
}

TEST(Equivalence, CanonicalTokens) {
  check_equivalence(make_query("The ((cat)|(dog))",
                               TokenizationStrategy::kCanonicalTokens, "The "));
}

TEST(Equivalence, AllTokens) {
  check_equivalence(
      make_query("The ((cat)|(dog))", TokenizationStrategy::kAllTokens));
}

TEST(Equivalence, DynamicCanonicalFallback) {
  // An infinite language cannot be enumerated within any budget, so the
  // canonical strategy falls back to the all-tokens machine with dynamic
  // pruning — the flag must survive serialization and keep pruning.
  SimpleSearchQuery query =
      make_query("a(b|(cd))*e", TokenizationStrategy::kCanonicalTokens);
  auto artifact = std::make_shared<const QueryArtifact>(
      core::pipeline::compile_query_artifact(query, fixture_tokenizer()));
  ASSERT_TRUE(artifact->body.dynamic_canonical);
  check_equivalence(query);
}

TEST(Equivalence, CompiledQueryCompileMatchesPipeline) {
  // The public entry point must be a thin wrapper over the same pipeline.
  SimpleSearchQuery query = make_query(
      "The ((cat)|(dog))", TokenizationStrategy::kCanonicalTokens, "The ");
  const BpeTokenizer& tok = fixture_tokenizer();
  core::CompiledQuery a = core::CompiledQuery::compile(query, tok);
  auto b_artifact = std::make_shared<const QueryArtifact>(
      core::pipeline::compile_query_artifact(query, tok));
  core::CompiledQuery b = core::CompiledQuery::from_artifact(b_artifact, tok);
  EXPECT_EQ(a.prefix_automaton(), b.prefix_automaton());
  EXPECT_EQ(a.body_automaton(), b.body_automaton());
  EXPECT_EQ(a.dynamic_canonical(), b.dynamic_canonical());
}

TEST(Equivalence, FromArtifactRejectsWrongVocabulary) {
  SimpleSearchQuery query =
      make_query("cat dog", TokenizationStrategy::kCanonicalTokens);
  auto artifact = std::make_shared<const QueryArtifact>(
      core::pipeline::compile_query_artifact(query, fixture_tokenizer()));
  BpeTokenizer::TrainConfig config;
  config.vocab_size = 280;
  BpeTokenizer other = BpeTokenizer::train("cat dog cat dog hat mat", config);
  EXPECT_THROW(core::CompiledQuery::from_artifact(artifact, other),
               relm::QueryError);
}

// ---------------------------------------------------------------------------
// Cache behavior
// ---------------------------------------------------------------------------

TEST(ArtifactCache, MissThenHitAndStats) {
  ArtifactCache cache(ArtifactCacheConfig{});
  SimpleSearchQuery query =
      make_query("(cat)|(dog)", TokenizationStrategy::kCanonicalTokens);
  auto key = core::pipeline::derive_artifact_key(query, fixture_tokenizer());
  ASSERT_TRUE(key);

  EXPECT_EQ(cache.lookup(*key), nullptr);
  auto artifact = core::pipeline::compile_cached(query, fixture_tokenizer(),
                                                 &cache);
  ASSERT_TRUE(artifact);
  EXPECT_EQ(cache.lookup(*key).get(), artifact.get());

  ArtifactCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);  // explicit lookup + compile_cached's probe
  EXPECT_EQ(stats.entries, 1u);
}

TEST(ArtifactCache, ZeroKeyNeverCached) {
  ArtifactCache cache(ArtifactCacheConfig{});
  auto artifact = std::make_shared<const QueryArtifact>(compile_artifact(
      make_query("(cat)|(dog)", TokenizationStrategy::kCanonicalTokens)));
  cache.insert(ArtifactKey{}, artifact);
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.lookup(ArtifactKey{}), nullptr);
  // The zero-key lookup must not even count as a miss (nothing was keyed).
  EXPECT_EQ(cache.stats().misses, 0u);
}

TEST(ArtifactCache, DisabledCacheCompilesEveryTime) {
  ArtifactCacheConfig config;
  config.capacity = 0;
  ArtifactCache cache(config);
  EXPECT_FALSE(cache.enabled());
  SimpleSearchQuery query =
      make_query("(cat)|(dog)", TokenizationStrategy::kCanonicalTokens);
  auto a = core::pipeline::compile_cached(query, fixture_tokenizer(), &cache);
  auto b = core::pipeline::compile_cached(query, fixture_tokenizer(), &cache);
  ASSERT_TRUE(a && b);
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(ArtifactCache, EvictsLeastRecentlyUsed) {
  // Capacity 8 spread over 8 shards = 1 entry per shard: inserting two keys
  // landing in the same shard must evict the older one.
  ArtifactCacheConfig config;
  config.capacity = 8;
  ArtifactCache cache(config);
  auto artifact = std::make_shared<const QueryArtifact>(compile_artifact(
      make_query("(cat)|(dog)", TokenizationStrategy::kCanonicalTokens)));
  ArtifactKey k1{1, 8};   // shard 0
  ArtifactKey k2{2, 16};  // shard 0
  cache.insert(k1, artifact);
  cache.insert(k2, artifact);
  EXPECT_EQ(cache.lookup(k1), nullptr);
  EXPECT_NE(cache.lookup(k2), nullptr);
  EXPECT_GE(cache.stats().evictions, 1u);
}

TEST(ArtifactCache, DiskStoreSurvivesProcessRestart) {
  TempDir dir("disk_store");
  SimpleSearchQuery query = make_query(
      "The ((cat)|(dog))", TokenizationStrategy::kCanonicalTokens, "The ");
  ArtifactCacheConfig config;
  config.disk_dir = dir.str();

  ArtifactKey key;
  {
    ArtifactCache warm(config);
    auto artifact =
        core::pipeline::compile_cached(query, fixture_tokenizer(), &warm);
    key = artifact->key;
    EXPECT_EQ(warm.stats().disk_stores, 1u);
  }
  // A fresh cache instance simulates a new process: the entry must come back
  // from disk, not from a recompile.
  ArtifactCache cold(config);
  auto loaded = cold.lookup(key);
  ASSERT_TRUE(loaded);
  EXPECT_EQ(loaded->key, key);
  EXPECT_EQ(cold.stats().disk_loads, 1u);
  EXPECT_EQ(cold.stats().hits, 1u);
}

TEST(ArtifactCache, CorruptDiskEntryFallsBackToRecompile) {
  TempDir dir("corrupt_entry");
  SimpleSearchQuery query =
      make_query("(cat)|(dog)", TokenizationStrategy::kCanonicalTokens);
  ArtifactCacheConfig config;
  config.disk_dir = dir.str();

  ArtifactKey key;
  {
    ArtifactCache warm(config);
    key = core::pipeline::compile_cached(query, fixture_tokenizer(), &warm)
              ->key;
  }
  // Truncate the stored entry mid-payload.
  const std::string path = dir.str() + "/" + key.hex() + ".relmq";
  {
    std::ifstream in(path);
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    ASSERT_GT(contents.size(), 20u);
    std::ofstream out(path, std::ios::trunc);
    out << contents.substr(0, contents.size() / 2);
  }

  ArtifactCache cold(config);
  EXPECT_EQ(cold.lookup(key), nullptr);  // corrupt = miss, never a crash
  EXPECT_EQ(cold.stats().disk_errors, 1u);
  EXPECT_EQ(cold.stats().misses, 1u);

  // compile_cached must recover transparently and overwrite the bad entry.
  auto artifact =
      core::pipeline::compile_cached(query, fixture_tokenizer(), &cold);
  ASSERT_TRUE(artifact);
  QueryArtifact reread = core::pipeline::load_artifact_file(path);
  EXPECT_EQ(reread.key, key);
}

TEST(ArtifactCache, MismatchedKeyOnDiskTreatedAsCorrupt) {
  TempDir dir("key_mismatch");
  SimpleSearchQuery query =
      make_query("(cat)|(dog)", TokenizationStrategy::kCanonicalTokens);
  QueryArtifact artifact = compile_artifact(query);
  // Store a valid artifact under a *different* key's filename.
  ArtifactKey wrong{0xdead, 0xbeef};
  core::pipeline::save_artifact_file(artifact,
                                     dir.str() + "/" + wrong.hex() + ".relmq");
  ArtifactCacheConfig config;
  config.disk_dir = dir.str();
  ArtifactCache cache(config);
  EXPECT_EQ(cache.lookup(wrong), nullptr);
  EXPECT_EQ(cache.stats().disk_errors, 1u);
}

TEST(ArtifactCache, UnkeyableQueryBypassesCache) {
  class OpaquePreprocessor : public core::Preprocessor {
   public:
    automata::Dfa apply(const automata::Dfa& dfa) const override { return dfa; }
    Target target() const override { return Target::kBody; }
    std::string name() const override { return "opaque"; }
  };
  ArtifactCache cache(ArtifactCacheConfig{});
  SimpleSearchQuery query =
      make_query("(cat)|(dog)", TokenizationStrategy::kCanonicalTokens);
  query.preprocessors.push_back(std::make_shared<OpaquePreprocessor>());
  auto a = core::pipeline::compile_cached(query, fixture_tokenizer(), &cache);
  auto b = core::pipeline::compile_cached(query, fixture_tokenizer(), &cache);
  ASSERT_TRUE(a && b);
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(cache.stats().entries, 0u);
}

}  // namespace
}  // namespace relm
