file(REMOVE_RECURSE
  "CMakeFiles/fig03_encodings.dir/fig03_encodings.cpp.o"
  "CMakeFiles/fig03_encodings.dir/fig03_encodings.cpp.o.d"
  "fig03_encodings"
  "fig03_encodings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_encodings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
