# Empty compiler generated dependencies file for fig03_encodings.
# This may be replaced when dependencies are built.
