# Empty dependencies file for micro_executor.
# This may be replaced when dependencies are built.
