file(REMOVE_RECURSE
  "CMakeFiles/micro_executor.dir/micro_executor.cpp.o"
  "CMakeFiles/micro_executor.dir/micro_executor.cpp.o.d"
  "micro_executor"
  "micro_executor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_executor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
