# Empty dependencies file for fig10_memorization_full.
# This may be replaced when dependencies are built.
