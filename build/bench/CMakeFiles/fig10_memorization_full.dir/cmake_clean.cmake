file(REMOVE_RECURSE
  "CMakeFiles/fig10_memorization_full.dir/fig10_memorization_full.cpp.o"
  "CMakeFiles/fig10_memorization_full.dir/fig10_memorization_full.cpp.o.d"
  "fig10_memorization_full"
  "fig10_memorization_full.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_memorization_full.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
