# Empty dependencies file for fig13_bias_grid_xl.
# This may be replaced when dependencies are built.
