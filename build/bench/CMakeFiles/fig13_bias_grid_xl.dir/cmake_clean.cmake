file(REMOVE_RECURSE
  "CMakeFiles/fig13_bias_grid_xl.dir/fig13_bias_grid_xl.cpp.o"
  "CMakeFiles/fig13_bias_grid_xl.dir/fig13_bias_grid_xl.cpp.o.d"
  "fig13_bias_grid_xl"
  "fig13_bias_grid_xl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_bias_grid_xl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
