file(REMOVE_RECURSE
  "CMakeFiles/ablation_compiler.dir/ablation_compiler.cpp.o"
  "CMakeFiles/ablation_compiler.dir/ablation_compiler.cpp.o.d"
  "ablation_compiler"
  "ablation_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
