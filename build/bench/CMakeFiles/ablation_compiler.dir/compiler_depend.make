# Empty compiler generated dependencies file for ablation_compiler.
# This may be replaced when dependencies are built.
