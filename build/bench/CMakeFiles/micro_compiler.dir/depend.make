# Empty dependencies file for micro_compiler.
# This may be replaced when dependencies are built.
