# Empty compiler generated dependencies file for fig06_throughput.
# This may be replaced when dependencies are built.
