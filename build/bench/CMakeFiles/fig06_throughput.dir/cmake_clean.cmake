file(REMOVE_RECURSE
  "CMakeFiles/fig06_throughput.dir/fig06_throughput.cpp.o"
  "CMakeFiles/fig06_throughput.dir/fig06_throughput.cpp.o.d"
  "fig06_throughput"
  "fig06_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
