# Empty dependencies file for table1_lambada.
# This may be replaced when dependencies are built.
