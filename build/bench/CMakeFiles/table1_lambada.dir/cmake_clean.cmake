file(REMOVE_RECURSE
  "CMakeFiles/table1_lambada.dir/table1_lambada.cpp.o"
  "CMakeFiles/table1_lambada.dir/table1_lambada.cpp.o.d"
  "table1_lambada"
  "table1_lambada.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_lambada.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
