# Empty dependencies file for fig07_bias.
# This may be replaced when dependencies are built.
