file(REMOVE_RECURSE
  "CMakeFiles/fig07_bias.dir/fig07_bias.cpp.o"
  "CMakeFiles/fig07_bias.dir/fig07_bias.cpp.o.d"
  "fig07_bias"
  "fig07_bias.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_bias.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
