file(REMOVE_RECURSE
  "CMakeFiles/fig08_toxicity.dir/fig08_toxicity.cpp.o"
  "CMakeFiles/fig08_toxicity.dir/fig08_toxicity.cpp.o.d"
  "fig08_toxicity"
  "fig08_toxicity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_toxicity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
