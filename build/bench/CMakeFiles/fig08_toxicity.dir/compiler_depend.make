# Empty compiler generated dependencies file for fig08_toxicity.
# This may be replaced when dependencies are built.
