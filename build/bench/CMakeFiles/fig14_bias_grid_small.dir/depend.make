# Empty dependencies file for fig14_bias_grid_small.
# This may be replaced when dependencies are built.
