file(REMOVE_RECURSE
  "CMakeFiles/fig14_bias_grid_small.dir/fig14_bias_grid_small.cpp.o"
  "CMakeFiles/fig14_bias_grid_small.dir/fig14_bias_grid_small.cpp.o.d"
  "fig14_bias_grid_small"
  "fig14_bias_grid_small.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_bias_grid_small.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
