file(REMOVE_RECURSE
  "CMakeFiles/fig09_edit_weighting.dir/fig09_edit_weighting.cpp.o"
  "CMakeFiles/fig09_edit_weighting.dir/fig09_edit_weighting.cpp.o.d"
  "fig09_edit_weighting"
  "fig09_edit_weighting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_edit_weighting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
