# Empty dependencies file for fig09_edit_weighting.
# This may be replaced when dependencies are built.
