# Empty dependencies file for fig05_memorization.
# This may be replaced when dependencies are built.
