file(REMOVE_RECURSE
  "CMakeFiles/fig05_memorization.dir/fig05_memorization.cpp.o"
  "CMakeFiles/fig05_memorization.dir/fig05_memorization.cpp.o.d"
  "fig05_memorization"
  "fig05_memorization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_memorization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
