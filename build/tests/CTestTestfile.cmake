# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_automata[1]_include.cmake")
include("/root/repo/build/tests/test_tokenizer[1]_include.cmake")
include("/root/repo/build/tests/test_model[1]_include.cmake")
include("/root/repo/build/tests/test_corpus[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_experiments[1]_include.cmake")
include("/root/repo/build/tests/test_serialize[1]_include.cmake")
include("/root/repo/build/tests/test_mlp[1]_include.cmake")
include("/root/repo/build/tests/test_transducer[1]_include.cmake")
include("/root/repo/build/tests/test_gpt2_loader[1]_include.cmake")
add_test(cli_smoke "/root/repo/tests/cli_smoke.sh" "/root/repo/build/src/tools/relm")
set_tests_properties(cli_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;42;add_test;/root/repo/tests/CMakeLists.txt;0;")
