
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_core.cpp" "tests/CMakeFiles/test_core.dir/test_core.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/test_core.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/relm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/automata/CMakeFiles/relm_automata.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/relm_model.dir/DependInfo.cmake"
  "/root/repo/build/src/tokenizer/CMakeFiles/relm_tokenizer.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/relm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
