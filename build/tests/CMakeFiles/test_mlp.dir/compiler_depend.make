# Empty compiler generated dependencies file for test_mlp.
# This may be replaced when dependencies are built.
