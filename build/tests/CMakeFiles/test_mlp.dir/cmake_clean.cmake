file(REMOVE_RECURSE
  "CMakeFiles/test_mlp.dir/test_mlp.cpp.o"
  "CMakeFiles/test_mlp.dir/test_mlp.cpp.o.d"
  "test_mlp"
  "test_mlp.pdb"
  "test_mlp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mlp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
