file(REMOVE_RECURSE
  "CMakeFiles/test_automata.dir/test_automata.cpp.o"
  "CMakeFiles/test_automata.dir/test_automata.cpp.o.d"
  "test_automata"
  "test_automata.pdb"
  "test_automata[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_automata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
