
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_model.cpp" "tests/CMakeFiles/test_model.dir/test_model.cpp.o" "gcc" "tests/CMakeFiles/test_model.dir/test_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/relm_model.dir/DependInfo.cmake"
  "/root/repo/build/src/tokenizer/CMakeFiles/relm_tokenizer.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/relm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
