# Empty dependencies file for test_transducer.
# This may be replaced when dependencies are built.
