file(REMOVE_RECURSE
  "CMakeFiles/test_transducer.dir/test_transducer.cpp.o"
  "CMakeFiles/test_transducer.dir/test_transducer.cpp.o.d"
  "test_transducer"
  "test_transducer.pdb"
  "test_transducer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transducer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
