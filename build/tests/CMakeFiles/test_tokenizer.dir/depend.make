# Empty dependencies file for test_tokenizer.
# This may be replaced when dependencies are built.
