file(REMOVE_RECURSE
  "CMakeFiles/test_tokenizer.dir/test_tokenizer.cpp.o"
  "CMakeFiles/test_tokenizer.dir/test_tokenizer.cpp.o.d"
  "test_tokenizer"
  "test_tokenizer.pdb"
  "test_tokenizer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tokenizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
