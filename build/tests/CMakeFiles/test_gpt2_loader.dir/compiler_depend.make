# Empty compiler generated dependencies file for test_gpt2_loader.
# This may be replaced when dependencies are built.
