file(REMOVE_RECURSE
  "CMakeFiles/test_gpt2_loader.dir/test_gpt2_loader.cpp.o"
  "CMakeFiles/test_gpt2_loader.dir/test_gpt2_loader.cpp.o.d"
  "test_gpt2_loader"
  "test_gpt2_loader.pdb"
  "test_gpt2_loader[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gpt2_loader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
