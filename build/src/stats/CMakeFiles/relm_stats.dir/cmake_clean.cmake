file(REMOVE_RECURSE
  "CMakeFiles/relm_stats.dir/stats.cpp.o"
  "CMakeFiles/relm_stats.dir/stats.cpp.o.d"
  "librelm_stats.a"
  "librelm_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relm_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
