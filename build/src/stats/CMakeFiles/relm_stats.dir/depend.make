# Empty dependencies file for relm_stats.
# This may be replaced when dependencies are built.
