file(REMOVE_RECURSE
  "librelm_stats.a"
)
