
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/decoding.cpp" "src/model/CMakeFiles/relm_model.dir/decoding.cpp.o" "gcc" "src/model/CMakeFiles/relm_model.dir/decoding.cpp.o.d"
  "/root/repo/src/model/language_model.cpp" "src/model/CMakeFiles/relm_model.dir/language_model.cpp.o" "gcc" "src/model/CMakeFiles/relm_model.dir/language_model.cpp.o.d"
  "/root/repo/src/model/mlp_model.cpp" "src/model/CMakeFiles/relm_model.dir/mlp_model.cpp.o" "gcc" "src/model/CMakeFiles/relm_model.dir/mlp_model.cpp.o.d"
  "/root/repo/src/model/ngram_model.cpp" "src/model/CMakeFiles/relm_model.dir/ngram_model.cpp.o" "gcc" "src/model/CMakeFiles/relm_model.dir/ngram_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/relm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tokenizer/CMakeFiles/relm_tokenizer.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
