# Empty compiler generated dependencies file for relm_model.
# This may be replaced when dependencies are built.
