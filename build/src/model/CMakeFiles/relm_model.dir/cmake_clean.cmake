file(REMOVE_RECURSE
  "CMakeFiles/relm_model.dir/decoding.cpp.o"
  "CMakeFiles/relm_model.dir/decoding.cpp.o.d"
  "CMakeFiles/relm_model.dir/language_model.cpp.o"
  "CMakeFiles/relm_model.dir/language_model.cpp.o.d"
  "CMakeFiles/relm_model.dir/mlp_model.cpp.o"
  "CMakeFiles/relm_model.dir/mlp_model.cpp.o.d"
  "CMakeFiles/relm_model.dir/ngram_model.cpp.o"
  "CMakeFiles/relm_model.dir/ngram_model.cpp.o.d"
  "librelm_model.a"
  "librelm_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relm_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
