file(REMOVE_RECURSE
  "librelm_model.a"
)
