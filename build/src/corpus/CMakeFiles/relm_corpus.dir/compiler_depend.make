# Empty compiler generated dependencies file for relm_corpus.
# This may be replaced when dependencies are built.
