file(REMOVE_RECURSE
  "CMakeFiles/relm_corpus.dir/corpus.cpp.o"
  "CMakeFiles/relm_corpus.dir/corpus.cpp.o.d"
  "librelm_corpus.a"
  "librelm_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relm_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
