file(REMOVE_RECURSE
  "librelm_corpus.a"
)
