file(REMOVE_RECURSE
  "CMakeFiles/relm_cli.dir/relm_cli.cpp.o"
  "CMakeFiles/relm_cli.dir/relm_cli.cpp.o.d"
  "relm"
  "relm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relm_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
