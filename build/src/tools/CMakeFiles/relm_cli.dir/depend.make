# Empty dependencies file for relm_cli.
# This may be replaced when dependencies are built.
