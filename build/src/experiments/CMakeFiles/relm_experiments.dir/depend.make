# Empty dependencies file for relm_experiments.
# This may be replaced when dependencies are built.
