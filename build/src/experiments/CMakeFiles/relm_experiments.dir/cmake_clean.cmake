file(REMOVE_RECURSE
  "CMakeFiles/relm_experiments.dir/bias.cpp.o"
  "CMakeFiles/relm_experiments.dir/bias.cpp.o.d"
  "CMakeFiles/relm_experiments.dir/lambada.cpp.o"
  "CMakeFiles/relm_experiments.dir/lambada.cpp.o.d"
  "CMakeFiles/relm_experiments.dir/memorization.cpp.o"
  "CMakeFiles/relm_experiments.dir/memorization.cpp.o.d"
  "CMakeFiles/relm_experiments.dir/setup.cpp.o"
  "CMakeFiles/relm_experiments.dir/setup.cpp.o.d"
  "CMakeFiles/relm_experiments.dir/toxicity.cpp.o"
  "CMakeFiles/relm_experiments.dir/toxicity.cpp.o.d"
  "librelm_experiments.a"
  "librelm_experiments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relm_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
