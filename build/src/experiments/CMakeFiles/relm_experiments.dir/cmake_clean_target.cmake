file(REMOVE_RECURSE
  "librelm_experiments.a"
)
