
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/automata/automaton.cpp" "src/automata/CMakeFiles/relm_automata.dir/automaton.cpp.o" "gcc" "src/automata/CMakeFiles/relm_automata.dir/automaton.cpp.o.d"
  "/root/repo/src/automata/determinize.cpp" "src/automata/CMakeFiles/relm_automata.dir/determinize.cpp.o" "gcc" "src/automata/CMakeFiles/relm_automata.dir/determinize.cpp.o.d"
  "/root/repo/src/automata/grep.cpp" "src/automata/CMakeFiles/relm_automata.dir/grep.cpp.o" "gcc" "src/automata/CMakeFiles/relm_automata.dir/grep.cpp.o.d"
  "/root/repo/src/automata/io.cpp" "src/automata/CMakeFiles/relm_automata.dir/io.cpp.o" "gcc" "src/automata/CMakeFiles/relm_automata.dir/io.cpp.o.d"
  "/root/repo/src/automata/levenshtein.cpp" "src/automata/CMakeFiles/relm_automata.dir/levenshtein.cpp.o" "gcc" "src/automata/CMakeFiles/relm_automata.dir/levenshtein.cpp.o.d"
  "/root/repo/src/automata/ops.cpp" "src/automata/CMakeFiles/relm_automata.dir/ops.cpp.o" "gcc" "src/automata/CMakeFiles/relm_automata.dir/ops.cpp.o.d"
  "/root/repo/src/automata/regex.cpp" "src/automata/CMakeFiles/relm_automata.dir/regex.cpp.o" "gcc" "src/automata/CMakeFiles/relm_automata.dir/regex.cpp.o.d"
  "/root/repo/src/automata/regex_ast.cpp" "src/automata/CMakeFiles/relm_automata.dir/regex_ast.cpp.o" "gcc" "src/automata/CMakeFiles/relm_automata.dir/regex_ast.cpp.o.d"
  "/root/repo/src/automata/regex_parser.cpp" "src/automata/CMakeFiles/relm_automata.dir/regex_parser.cpp.o" "gcc" "src/automata/CMakeFiles/relm_automata.dir/regex_parser.cpp.o.d"
  "/root/repo/src/automata/serialize.cpp" "src/automata/CMakeFiles/relm_automata.dir/serialize.cpp.o" "gcc" "src/automata/CMakeFiles/relm_automata.dir/serialize.cpp.o.d"
  "/root/repo/src/automata/thompson.cpp" "src/automata/CMakeFiles/relm_automata.dir/thompson.cpp.o" "gcc" "src/automata/CMakeFiles/relm_automata.dir/thompson.cpp.o.d"
  "/root/repo/src/automata/transducer.cpp" "src/automata/CMakeFiles/relm_automata.dir/transducer.cpp.o" "gcc" "src/automata/CMakeFiles/relm_automata.dir/transducer.cpp.o.d"
  "/root/repo/src/automata/walks.cpp" "src/automata/CMakeFiles/relm_automata.dir/walks.cpp.o" "gcc" "src/automata/CMakeFiles/relm_automata.dir/walks.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/relm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
