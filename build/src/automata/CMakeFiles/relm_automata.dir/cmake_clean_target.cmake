file(REMOVE_RECURSE
  "librelm_automata.a"
)
