file(REMOVE_RECURSE
  "CMakeFiles/relm_automata.dir/automaton.cpp.o"
  "CMakeFiles/relm_automata.dir/automaton.cpp.o.d"
  "CMakeFiles/relm_automata.dir/determinize.cpp.o"
  "CMakeFiles/relm_automata.dir/determinize.cpp.o.d"
  "CMakeFiles/relm_automata.dir/grep.cpp.o"
  "CMakeFiles/relm_automata.dir/grep.cpp.o.d"
  "CMakeFiles/relm_automata.dir/io.cpp.o"
  "CMakeFiles/relm_automata.dir/io.cpp.o.d"
  "CMakeFiles/relm_automata.dir/levenshtein.cpp.o"
  "CMakeFiles/relm_automata.dir/levenshtein.cpp.o.d"
  "CMakeFiles/relm_automata.dir/ops.cpp.o"
  "CMakeFiles/relm_automata.dir/ops.cpp.o.d"
  "CMakeFiles/relm_automata.dir/regex.cpp.o"
  "CMakeFiles/relm_automata.dir/regex.cpp.o.d"
  "CMakeFiles/relm_automata.dir/regex_ast.cpp.o"
  "CMakeFiles/relm_automata.dir/regex_ast.cpp.o.d"
  "CMakeFiles/relm_automata.dir/regex_parser.cpp.o"
  "CMakeFiles/relm_automata.dir/regex_parser.cpp.o.d"
  "CMakeFiles/relm_automata.dir/serialize.cpp.o"
  "CMakeFiles/relm_automata.dir/serialize.cpp.o.d"
  "CMakeFiles/relm_automata.dir/thompson.cpp.o"
  "CMakeFiles/relm_automata.dir/thompson.cpp.o.d"
  "CMakeFiles/relm_automata.dir/transducer.cpp.o"
  "CMakeFiles/relm_automata.dir/transducer.cpp.o.d"
  "CMakeFiles/relm_automata.dir/walks.cpp.o"
  "CMakeFiles/relm_automata.dir/walks.cpp.o.d"
  "librelm_automata.a"
  "librelm_automata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relm_automata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
