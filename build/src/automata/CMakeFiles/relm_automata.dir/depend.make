# Empty dependencies file for relm_automata.
# This may be replaced when dependencies are built.
