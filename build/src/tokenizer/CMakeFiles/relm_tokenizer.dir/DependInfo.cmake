
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tokenizer/bpe.cpp" "src/tokenizer/CMakeFiles/relm_tokenizer.dir/bpe.cpp.o" "gcc" "src/tokenizer/CMakeFiles/relm_tokenizer.dir/bpe.cpp.o.d"
  "/root/repo/src/tokenizer/gpt2_loader.cpp" "src/tokenizer/CMakeFiles/relm_tokenizer.dir/gpt2_loader.cpp.o" "gcc" "src/tokenizer/CMakeFiles/relm_tokenizer.dir/gpt2_loader.cpp.o.d"
  "/root/repo/src/tokenizer/serialize.cpp" "src/tokenizer/CMakeFiles/relm_tokenizer.dir/serialize.cpp.o" "gcc" "src/tokenizer/CMakeFiles/relm_tokenizer.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/relm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
