file(REMOVE_RECURSE
  "CMakeFiles/relm_tokenizer.dir/bpe.cpp.o"
  "CMakeFiles/relm_tokenizer.dir/bpe.cpp.o.d"
  "CMakeFiles/relm_tokenizer.dir/gpt2_loader.cpp.o"
  "CMakeFiles/relm_tokenizer.dir/gpt2_loader.cpp.o.d"
  "CMakeFiles/relm_tokenizer.dir/serialize.cpp.o"
  "CMakeFiles/relm_tokenizer.dir/serialize.cpp.o.d"
  "librelm_tokenizer.a"
  "librelm_tokenizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relm_tokenizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
