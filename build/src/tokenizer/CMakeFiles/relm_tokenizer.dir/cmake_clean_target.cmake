file(REMOVE_RECURSE
  "librelm_tokenizer.a"
)
