# Empty dependencies file for relm_tokenizer.
# This may be replaced when dependencies are built.
