file(REMOVE_RECURSE
  "CMakeFiles/relm_core.dir/analyzer.cpp.o"
  "CMakeFiles/relm_core.dir/analyzer.cpp.o.d"
  "CMakeFiles/relm_core.dir/compiled_query.cpp.o"
  "CMakeFiles/relm_core.dir/compiled_query.cpp.o.d"
  "CMakeFiles/relm_core.dir/compiler.cpp.o"
  "CMakeFiles/relm_core.dir/compiler.cpp.o.d"
  "CMakeFiles/relm_core.dir/executor.cpp.o"
  "CMakeFiles/relm_core.dir/executor.cpp.o.d"
  "CMakeFiles/relm_core.dir/preprocessors.cpp.o"
  "CMakeFiles/relm_core.dir/preprocessors.cpp.o.d"
  "CMakeFiles/relm_core.dir/query.cpp.o"
  "CMakeFiles/relm_core.dir/query.cpp.o.d"
  "CMakeFiles/relm_core.dir/relm.cpp.o"
  "CMakeFiles/relm_core.dir/relm.cpp.o.d"
  "librelm_core.a"
  "librelm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
