
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analyzer.cpp" "src/core/CMakeFiles/relm_core.dir/analyzer.cpp.o" "gcc" "src/core/CMakeFiles/relm_core.dir/analyzer.cpp.o.d"
  "/root/repo/src/core/compiled_query.cpp" "src/core/CMakeFiles/relm_core.dir/compiled_query.cpp.o" "gcc" "src/core/CMakeFiles/relm_core.dir/compiled_query.cpp.o.d"
  "/root/repo/src/core/compiler.cpp" "src/core/CMakeFiles/relm_core.dir/compiler.cpp.o" "gcc" "src/core/CMakeFiles/relm_core.dir/compiler.cpp.o.d"
  "/root/repo/src/core/executor.cpp" "src/core/CMakeFiles/relm_core.dir/executor.cpp.o" "gcc" "src/core/CMakeFiles/relm_core.dir/executor.cpp.o.d"
  "/root/repo/src/core/preprocessors.cpp" "src/core/CMakeFiles/relm_core.dir/preprocessors.cpp.o" "gcc" "src/core/CMakeFiles/relm_core.dir/preprocessors.cpp.o.d"
  "/root/repo/src/core/query.cpp" "src/core/CMakeFiles/relm_core.dir/query.cpp.o" "gcc" "src/core/CMakeFiles/relm_core.dir/query.cpp.o.d"
  "/root/repo/src/core/relm.cpp" "src/core/CMakeFiles/relm_core.dir/relm.cpp.o" "gcc" "src/core/CMakeFiles/relm_core.dir/relm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/relm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/automata/CMakeFiles/relm_automata.dir/DependInfo.cmake"
  "/root/repo/build/src/tokenizer/CMakeFiles/relm_tokenizer.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/relm_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
