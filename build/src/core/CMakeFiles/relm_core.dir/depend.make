# Empty dependencies file for relm_core.
# This may be replaced when dependencies are built.
