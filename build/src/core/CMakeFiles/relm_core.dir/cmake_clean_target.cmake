file(REMOVE_RECURSE
  "librelm_core.a"
)
