# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("automata")
subdirs("tokenizer")
subdirs("model")
subdirs("corpus")
subdirs("stats")
subdirs("core")
subdirs("baselines")
subdirs("experiments")
subdirs("tools")
