file(REMOVE_RECURSE
  "librelm_util.a"
)
