# Empty dependencies file for relm_util.
# This may be replaced when dependencies are built.
