file(REMOVE_RECURSE
  "CMakeFiles/relm_util.dir/logging.cpp.o"
  "CMakeFiles/relm_util.dir/logging.cpp.o.d"
  "CMakeFiles/relm_util.dir/rng.cpp.o"
  "CMakeFiles/relm_util.dir/rng.cpp.o.d"
  "CMakeFiles/relm_util.dir/strings.cpp.o"
  "CMakeFiles/relm_util.dir/strings.cpp.o.d"
  "librelm_util.a"
  "librelm_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relm_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
