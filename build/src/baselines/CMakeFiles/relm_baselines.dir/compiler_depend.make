# Empty compiler generated dependencies file for relm_baselines.
# This may be replaced when dependencies are built.
