file(REMOVE_RECURSE
  "CMakeFiles/relm_baselines.dir/sampling_baseline.cpp.o"
  "CMakeFiles/relm_baselines.dir/sampling_baseline.cpp.o.d"
  "librelm_baselines.a"
  "librelm_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relm_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
