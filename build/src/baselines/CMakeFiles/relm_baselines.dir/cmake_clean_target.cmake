file(REMOVE_RECURSE
  "librelm_baselines.a"
)
