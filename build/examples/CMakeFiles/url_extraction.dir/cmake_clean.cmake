file(REMOVE_RECURSE
  "CMakeFiles/url_extraction.dir/url_extraction.cpp.o"
  "CMakeFiles/url_extraction.dir/url_extraction.cpp.o.d"
  "url_extraction"
  "url_extraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/url_extraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
