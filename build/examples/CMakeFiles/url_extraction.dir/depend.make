# Empty dependencies file for url_extraction.
# This may be replaced when dependencies are built.
