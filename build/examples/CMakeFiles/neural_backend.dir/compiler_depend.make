# Empty compiler generated dependencies file for neural_backend.
# This may be replaced when dependencies are built.
