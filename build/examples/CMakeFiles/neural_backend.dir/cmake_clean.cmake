file(REMOVE_RECURSE
  "CMakeFiles/neural_backend.dir/neural_backend.cpp.o"
  "CMakeFiles/neural_backend.dir/neural_backend.cpp.o.d"
  "neural_backend"
  "neural_backend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neural_backend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
