file(REMOVE_RECURSE
  "CMakeFiles/cat_dog_automaton.dir/cat_dog_automaton.cpp.o"
  "CMakeFiles/cat_dog_automaton.dir/cat_dog_automaton.cpp.o.d"
  "cat_dog_automaton"
  "cat_dog_automaton.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cat_dog_automaton.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
