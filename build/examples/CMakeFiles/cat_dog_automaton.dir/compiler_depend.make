# Empty compiler generated dependencies file for cat_dog_automaton.
# This may be replaced when dependencies are built.
