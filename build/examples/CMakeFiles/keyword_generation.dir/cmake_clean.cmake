file(REMOVE_RECURSE
  "CMakeFiles/keyword_generation.dir/keyword_generation.cpp.o"
  "CMakeFiles/keyword_generation.dir/keyword_generation.cpp.o.d"
  "keyword_generation"
  "keyword_generation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keyword_generation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
