# Empty dependencies file for keyword_generation.
# This may be replaced when dependencies are built.
