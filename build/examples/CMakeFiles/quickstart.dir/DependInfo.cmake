
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/experiments/CMakeFiles/relm_experiments.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/relm_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/relm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/relm_model.dir/DependInfo.cmake"
  "/root/repo/build/src/tokenizer/CMakeFiles/relm_tokenizer.dir/DependInfo.cmake"
  "/root/repo/build/src/automata/CMakeFiles/relm_automata.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/relm_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/relm_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/relm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
