# Empty dependencies file for toxicity_audit.
# This may be replaced when dependencies are built.
