file(REMOVE_RECURSE
  "CMakeFiles/toxicity_audit.dir/toxicity_audit.cpp.o"
  "CMakeFiles/toxicity_audit.dir/toxicity_audit.cpp.o.d"
  "toxicity_audit"
  "toxicity_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toxicity_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
