file(REMOVE_RECURSE
  "CMakeFiles/audit_report.dir/audit_report.cpp.o"
  "CMakeFiles/audit_report.dir/audit_report.cpp.o.d"
  "audit_report"
  "audit_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/audit_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
