# Empty dependencies file for audit_report.
# This may be replaced when dependencies are built.
