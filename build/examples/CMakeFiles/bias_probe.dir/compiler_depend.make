# Empty compiler generated dependencies file for bias_probe.
# This may be replaced when dependencies are built.
