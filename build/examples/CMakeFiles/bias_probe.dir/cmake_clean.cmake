file(REMOVE_RECURSE
  "CMakeFiles/bias_probe.dir/bias_probe.cpp.o"
  "CMakeFiles/bias_probe.dir/bias_probe.cpp.o.d"
  "bias_probe"
  "bias_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bias_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
