file(REMOVE_RECURSE
  "CMakeFiles/date_knowledge.dir/date_knowledge.cpp.o"
  "CMakeFiles/date_knowledge.dir/date_knowledge.cpp.o.d"
  "date_knowledge"
  "date_knowledge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/date_knowledge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
