# Empty dependencies file for date_knowledge.
# This may be replaced when dependencies are built.
