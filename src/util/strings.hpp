#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace relm::util {

// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> split(std::string_view text, char delim);

// Splits on any whitespace; drops empty fields.
std::vector<std::string> split_whitespace(std::string_view text);

std::string join(const std::vector<std::string>& parts, std::string_view sep);

bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);

std::string to_lower(std::string_view text);

// Renders a string for human display: printable ASCII kept, everything else
// escaped as \xNN. Used by automata/tokenizer debug dumps.
std::string escape_for_display(std::string_view text);

// Escapes regex metacharacters so the result matches `text` literally.
std::string regex_escape(std::string_view text);

}  // namespace relm::util
