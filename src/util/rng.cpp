#include "util/rng.hpp"

namespace relm::util {

std::uint32_t Pcg32::bounded(std::uint32_t bound) {
  // Lemire-style rejection to remove modulo bias.
  std::uint32_t threshold = (-bound) % bound;
  for (;;) {
    std::uint32_t r = next();
    if (r >= threshold) return r % bound;
  }
}

double Pcg32::uniform() {
  // 53 random bits -> double in [0, 1).
  std::uint64_t hi = next();
  std::uint64_t lo = next();
  std::uint64_t bits = ((hi << 32) | lo) >> 11;
  return static_cast<double>(bits) * 0x1.0p-53;
}

std::int64_t Pcg32::range(std::int64_t lo, std::int64_t hi) {
  std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  // span fits in 32 bits for all our uses; chain two draws if it does not.
  if (span <= 0xffffffffULL) {
    return lo + static_cast<std::int64_t>(bounded(static_cast<std::uint32_t>(span)));
  }
  std::uint64_t r = (static_cast<std::uint64_t>(next()) << 32) | next();
  return lo + static_cast<std::int64_t>(r % span);
}

std::size_t Pcg32::weighted(std::span<const double> weights) {
  double total = 0;
  for (double w : weights) total += w;
  if (total <= 0) return weights.size();
  double r = uniform() * total;
  double acc = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  // Floating point slack: return the last positive-weight index.
  for (std::size_t i = weights.size(); i > 0; --i) {
    if (weights[i - 1] > 0) return i - 1;
  }
  return weights.size();
}

}  // namespace relm::util
