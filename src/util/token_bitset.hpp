#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace relm::util {

// Dense bitset over token ids, stored as 64-bit words. This is the shared
// currency of the mask-and-scan fast path (Willard & Louf): decoding rules
// produce one (model::allowed_tokens), the compile pipeline persists one per
// token-automaton state, and the executors intersect the two word-wise and
// iterate only the surviving bits — O(vocab/64) per step instead of a probe
// per automaton edge.
//
// Invariant: bits at positions >= size() in the last word are zero, so
// popcounts and word-wise ANDs over whole words never see phantom tokens.
class TokenBitset {
 public:
  static constexpr std::size_t kWordBits = 64;

  TokenBitset() = default;
  explicit TokenBitset(std::size_t size, bool value = false)
      : size_(size), words_(words_for(size), value ? ~0ull : 0ull) {
    clear_trailing();
  }

  static constexpr std::size_t words_for(std::size_t bits) {
    return (bits + kWordBits - 1) / kWordBits;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t num_words() const { return words_.size(); }

  bool test(std::size_t i) const {
    return (words_[i / kWordBits] >> (i % kWordBits)) & 1u;
  }
  bool operator[](std::size_t i) const { return test(i); }

  void set(std::size_t i) { words_[i / kWordBits] |= 1ull << (i % kWordBits); }
  void reset(std::size_t i) {
    words_[i / kWordBits] &= ~(1ull << (i % kWordBits));
  }
  void reset_all() { words_.assign(words_.size(), 0); }
  void set_all() {
    words_.assign(words_.size(), ~0ull);
    clear_trailing();
  }

  std::uint64_t word(std::size_t w) const { return words_[w]; }
  void set_word(std::size_t w, std::uint64_t bits) { words_[w] = bits; }
  std::span<const std::uint64_t> words() const { return words_; }

  // In-place intersection. Sizes must match.
  void and_with(const TokenBitset& other) {
    for (std::size_t w = 0; w < words_.size(); ++w) words_[w] &= other.words_[w];
  }

  std::size_t count() const {
    std::size_t n = 0;
    for (std::uint64_t w : words_) n += static_cast<std::size_t>(std::popcount(w));
    return n;
  }
  bool any() const {
    for (std::uint64_t w : words_) {
      if (w != 0) return true;
    }
    return false;
  }
  bool none() const { return !any(); }

  // Calls fn(index) for every set bit in ascending order.
  template <typename Fn>
  void for_each_set(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t bits = words_[w];
      while (bits != 0) {
        unsigned b = static_cast<unsigned>(std::countr_zero(bits));
        fn(w * kWordBits + b);
        bits &= bits - 1;
      }
    }
  }

  friend bool operator==(const TokenBitset&, const TokenBitset&) = default;

 private:
  void clear_trailing() {
    if (size_ % kWordBits != 0 && !words_.empty()) {
      words_.back() &= (1ull << (size_ % kWordBits)) - 1;
    }
  }

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace relm::util
