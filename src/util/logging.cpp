#include "util/logging.hpp"

#include <atomic>
#include <cstdarg>
#include <cstdio>

#include "util/sync.hpp"

namespace relm::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};

// Serializes the prefix/body/newline stdio calls of one log line so lines
// from concurrent threads never interleave. kLogging is the maximum rank:
// any subsystem may log while holding its own locks, but nothing may be
// acquired while emitting a line (the body below is stdio only).
Mutex g_log_mutex{LockRank::kLogging};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

Timer& process_timer() {
  static Timer timer;
  return timer;
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void log(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  ScopedLock lock(g_log_mutex);
  std::fprintf(stderr, "[%8.3fs %-5s] ", process_timer().seconds(), level_tag(level));
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace relm::util
