#include "util/logging.hpp"

#include <atomic>
#include <cstdarg>
#include <cstdio>

namespace relm::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

Timer& process_timer() {
  static Timer timer;
  return timer;
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void log(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  std::fprintf(stderr, "[%8.3fs %-5s] ", process_timer().seconds(), level_tag(level));
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace relm::util
