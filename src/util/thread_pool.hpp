#pragma once

#include <cstddef>
#include <functional>
#include <memory>

namespace relm::util {

// Fixed-size fork-join thread pool for data-parallel loops.
//
// The only primitive is parallel_for(n, fn): fn(i) runs exactly once for
// every i in [0, n), distributed across the pool's threads plus the calling
// thread, and parallel_for returns only after all n indices completed. There
// is no work stealing and no task graph — the model-evaluation hot path
// (LanguageModel::next_log_probs_batch) needs exactly a parallel map, and a
// parallel map indexed by input position is deterministic by construction:
// whatever thread computes index i, the result lands in slot i, so outputs
// are identical for every thread count (see docs/PERFORMANCE.md).
//
// Nested parallel_for calls (fn itself calling parallel_for, on this or any
// pool) degrade to serial execution on the calling thread instead of
// deadlocking. Concurrent parallel_for calls from distinct threads are
// serialized.
//
// The second primitive is submit(n, fn): an asynchronous task batch with no
// barrier at submission. Tasks are claimed one at a time by the pool's
// workers (striped by index, with cross-stripe stealing once a stripe
// drains) and by any thread blocked in AsyncBatch::wait — the waiter "helps"
// by running unclaimed tasks itself instead of sleeping, so a pool with no
// workers degenerates to exact serial execution with no wakeups. This is the
// executor's pipeline seam: the coordinator submits a round of expansion
// tasks and retires results in submission order while later tasks are still
// running (docs/PERFORMANCE.md, "Async frontier pipeline").
class ThreadPool {
 public:
  // `threads` is the total parallelism including the calling thread:
  // ThreadPool(4) spawns 3 workers and the caller participates as the 4th.
  // threads <= 1 spawns no workers and parallel_for runs serially.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Total parallelism (workers + calling thread); >= 1.
  std::size_t threads() const;

  // Runs fn(i) for every i in [0, n), blocking until all complete. The first
  // exception thrown by any fn is rethrown on the calling thread after the
  // loop drains (remaining indices still run).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  // Handle to an in-flight submit() batch. Movable, not copyable; the
  // destructor drains the batch (without rethrowing — call wait_all +
  // rethrow_if_error for errors). fn runs exactly once per index on SOME
  // thread; which thread is unspecified, so fn must be a pure function of i
  // writing only to its own output slot — exactly the parallel_for contract.
  class AsyncBatch {
   public:
    AsyncBatch() = default;
    AsyncBatch(AsyncBatch&&) noexcept = default;
    AsyncBatch& operator=(AsyncBatch&&) noexcept;
    AsyncBatch(const AsyncBatch&) = delete;
    AsyncBatch& operator=(const AsyncBatch&) = delete;
    ~AsyncBatch();

    // Blocks until task i completed. Prefers claiming task i itself, then
    // helps with other unclaimed tasks, and only sleeps when every remaining
    // task is claimed by another thread.
    void wait(std::size_t i);
    void wait_all();
    // Rethrows the first exception any task threw (after wait_all).
    void rethrow_if_error();
    // Tasks executed by a lane other than their home stripe (contended
    // hand-offs; also surfaced process-wide as the pool.steals counter).
    std::size_t steals() const;

   private:
    friend class ThreadPool;
    struct State;
    explicit AsyncBatch(std::shared_ptr<State> state);
    std::shared_ptr<State> state_;
  };

  // Submits n tasks and returns immediately. Workers start claiming right
  // away (when the pool has any); the caller synchronizes per task with
  // wait(i) or all at once with wait_all().
  AsyncBatch submit(std::size_t n, std::function<void(std::size_t)> fn);

  // Process-wide pool used by LanguageModel::next_log_probs_batch. Sized on
  // first use from the RELM_THREADS environment variable, falling back to
  // std::thread::hardware_concurrency().
  static ThreadPool& shared();

  // Replaces the shared pool with one of the given size (clamped to >= 1).
  // Call at startup (e.g. from a --threads flag) before queries run; the old
  // pool is joined and destroyed, so no parallel_for may be in flight.
  static void set_shared_threads(std::size_t threads);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace relm::util
