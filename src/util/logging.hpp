#pragma once

#include <chrono>
#include <string>

namespace relm::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Process-wide log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

// printf-style logging to stderr with a level tag and elapsed-time stamp.
void log(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

// Monotonic wall-clock timer.
class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  void reset() { start_ = std::chrono::steady_clock::now(); }
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace relm::util

#define RELM_LOG_DEBUG(...) ::relm::util::log(::relm::util::LogLevel::kDebug, __VA_ARGS__)
#define RELM_LOG_INFO(...) ::relm::util::log(::relm::util::LogLevel::kInfo, __VA_ARGS__)
#define RELM_LOG_WARN(...) ::relm::util::log(::relm::util::LogLevel::kWarn, __VA_ARGS__)
#define RELM_LOG_ERROR(...) ::relm::util::log(::relm::util::LogLevel::kError, __VA_ARGS__)
