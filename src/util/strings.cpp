#include "util/strings.hpp"

#include <cctype>
#include <cstdio>

namespace relm::util {

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delim) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_whitespace(std::string_view text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    std::size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string escape_for_display(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (unsigned char c : text) {
    if (c >= 0x20 && c < 0x7f && c != '\\') {
      out.push_back(static_cast<char>(c));
    } else if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else if (c == '\t') {
      out += "\\t";
    } else {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\x%02x", c);
      out += buf;
    }
  }
  return out;
}

std::string regex_escape(std::string_view text) {
  // Includes the boolean-algebra operators & ! ~ (and -, also a class
  // metacharacter) so escaped text stays literal under the extended grammar.
  static constexpr std::string_view kMeta = R"(\.[]{}()*+?|^$-&!~)";
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (kMeta.find(c) != std::string_view::npos) out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace relm::util
