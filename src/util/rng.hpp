#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace relm::util {

// PCG32 pseudo-random number generator (O'Neill, 2014).
//
// Small, fast, and deterministic across platforms, which matters here: every
// corpus, tokenizer, model, and experiment in this repository is seeded, so a
// benchmark run is reproducible bit-for-bit. std::mt19937 would also work but
// its distributions are not guaranteed identical across standard libraries;
// we implement our own distribution helpers below for the same reason.
class Pcg32 {
 public:
  using result_type = std::uint32_t;

  explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t stream = 0xda3e39cb94b95bdbULL) {
    state_ = 0;
    inc_ = (stream << 1u) | 1u;
    next();
    state_ += seed;
    next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }

  std::uint32_t next() {
    std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    std::uint32_t xorshifted =
        static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    std::uint32_t rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((-rot) & 31u));
  }

  // Uniform integer in [0, bound). bound must be > 0.
  std::uint32_t bounded(std::uint32_t bound);

  // Uniform double in [0, 1).
  double uniform();

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  // Draws an index from an unnormalized non-negative weight vector.
  // Returns weights.size() if the total weight is zero.
  std::size_t weighted(std::span<const double> weights);

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = bounded(static_cast<std::uint32_t>(i));
      std::swap(items[i - 1], items[j]);
    }
  }

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

// Counter-based per-stream seeding: StreamRng::stream(master, i) is an
// independent Pcg32 whose draws are a pure function of (master, i) — never of
// how many other streams exist, which order they were created in, or what
// they have drawn. Stream 0 IS Pcg32(master): the sampler seeded with a bare
// Pcg32 before multi-stream generation existed, and stream 0 reproduces that
// sequence bit-for-bit (pinned by a regression test), so existing seeds keep
// their outputs. Streams i > 0 get both a mixed seed (golden-ratio increment,
// the splitmix64 constant) and a distinct PCG sequence constant — two streams
// never share a state trajectory even if the seed mix collided.
class StreamRng {
 public:
  static constexpr std::uint64_t kDefaultSeed = 0x853c49e6748fea9bULL;
  static constexpr std::uint64_t kDefaultSequence = 0xda3e39cb94b95bdbULL;
  static constexpr std::uint64_t kGolden = 0x9E3779B97F4A7C15ULL;

  static Pcg32 stream(std::uint64_t master_seed, std::uint64_t index) {
    if (index == 0) return Pcg32(master_seed);
    return Pcg32(mix(master_seed + index * kGolden),
                 kDefaultSequence + index);
  }

 private:
  // splitmix64 finalizer: full-avalanche, so adjacent indices land far apart.
  static constexpr std::uint64_t mix(std::uint64_t z) {
    z ^= z >> 30;
    z *= 0xBF58476D1CE4E5B9ULL;
    z ^= z >> 27;
    z *= 0x94D049BB133111EBULL;
    z ^= z >> 31;
    return z;
  }
};

}  // namespace relm::util
