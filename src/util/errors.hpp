#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace relm {

// Base class for all errors raised by the ReLM library. User input (regexes,
// queries, configuration) never aborts the process; it throws one of these.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

// Malformed regular expression. `position` is a byte offset into the
// pattern; `length` is the number of bytes the diagnostic refers to (the
// span of an operator or construct, 1 for single-character errors).
class RegexError : public Error {
 public:
  RegexError(const std::string& what, std::size_t position,
             std::size_t length = 1)
      : Error(what + " (at position " + std::to_string(position) +
              (length > 1 ? ", span " + std::to_string(length) : "") + ")"),
        position_(position),
        length_(length) {}
  std::size_t position() const { return position_; }
  std::size_t length() const { return length_; }

 private:
  std::size_t position_;
  std::size_t length_;
};

// Invalid query construction or execution parameters.
class QueryError : public Error {
 public:
  explicit QueryError(const std::string& what) : Error(what) {}
};

// Determinization/product construction exceeded its state budget
// (RELM_DETERMINIZE_BUDGET). Subclasses QueryError so existing compile-path
// catch sites treat it like any other compile failure.
class StateBudgetError : public QueryError {
 public:
  StateBudgetError(const std::string& what, std::size_t budget)
      : QueryError(what + " (state budget " + std::to_string(budget) + ")"),
        budget_(budget) {}
  std::size_t budget() const { return budget_; }

 private:
  std::size_t budget_;
};

namespace detail {

[[noreturn]] inline void dcheck_fail(const char* condition, const char* message,
                                     const char* file, int line) {
  std::fprintf(stderr, "RELM_DCHECK failed: %s\n  %s\n  at %s:%d\n", condition,
               message, file, line);
  std::abort();
}

}  // namespace detail

// RELM_DCHECK(cond, "msg"): internal-invariant assertion for hot paths.
//
// This is NOT an error-reporting mechanism. The policy above stands: user
// input (regexes, queries, files, configuration) never aborts the process —
// it throws relm::Error. RELM_DCHECK guards invariants that only a bug in
// this library can violate (a determinized automaton with duplicate symbols,
// a model emitting the wrong distribution size, a negative path cost), where
// throwing would let corrupted state escape and poison downstream results.
//
// Enabled in Debug builds (NDEBUG unset) and whenever RELM_ENABLE_DCHECKS is
// defined (the CMake option RELM_DCHECKS, on in the sanitizer presets);
// compiled out entirely — condition unevaluated — otherwise. Keep guarded
// conditions O(1)-ish per call site; full structural audits belong in
// relm::analysis (src/analysis/invariants.hpp), which is always available at
// runtime via `relm verify`.
#if !defined(NDEBUG) || defined(RELM_ENABLE_DCHECKS)
#define RELM_DCHECK(cond, msg)                                          \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::relm::detail::dcheck_fail(#cond, (msg), __FILE__, __LINE__);    \
    }                                                                   \
  } while (false)
#else
#define RELM_DCHECK(cond, msg) static_cast<void>(0)
#endif

}  // namespace relm
