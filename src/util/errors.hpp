#pragma once

#include <stdexcept>
#include <string>

namespace relm {

// Base class for all errors raised by the ReLM library. User input (regexes,
// queries, configuration) never aborts the process; it throws one of these.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

// Malformed regular expression. `position` is a byte offset into the pattern.
class RegexError : public Error {
 public:
  RegexError(const std::string& what, std::size_t position)
      : Error(what + " (at position " + std::to_string(position) + ")"),
        position_(position) {}
  std::size_t position() const { return position_; }

 private:
  std::size_t position_;
};

// Invalid query construction or execution parameters.
class QueryError : public Error {
 public:
  explicit QueryError(const std::string& what) : Error(what) {}
};

}  // namespace relm
