#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdio>
#include <mutex>
#include <shared_mutex>

#include "obs/metrics.hpp"
#include "util/errors.hpp"

// Annotated synchronization layer: every mutex, lock, and condition variable
// in src/ goes through these wrappers (scripts/lint.sh rejects raw std sync
// primitives outside this header). They buy three things the std types do not
// give us:
//
//   1. Clang thread-safety analysis. The RELM_* attribute macros below expand
//      to clang's capability attributes, so a `cmake --preset tsa` build
//      (-Wthread-safety -Werror=thread-safety) proves at compile time that
//      every access to a RELM_GUARDED_BY member happens under its lock. Under
//      gcc the attributes expand to nothing and the wrappers compile to the
//      plain std types.
//
//   2. Lock ranks. Every Mutex/SharedMutex is constructed with a LockRank;
//      debug builds (NDEBUG unset, or RELM_DCHECKS=ON — same gate as
//      RELM_DCHECK) keep a per-thread stack of held ranks and abort on any
//      acquisition that is not strictly rank-increasing. A potential deadlock
//      (lock-order inversion between two threads) becomes a deterministic
//      single-thread test failure at the first out-of-order acquisition.
//
//   3. Contention observability. In debug builds, a lock() that does not
//      succeed immediately bumps the `sync.lock.contended` counter and feeds
//      the blocked time into the `sync.lock.wait_seconds` histogram
//      (docs/OBSERVABILITY.md). Release builds skip all of this: lock() is
//      exactly std::mutex::lock() (BM_SyncOverhead* in bench/micro_executor
//      holds the zero-overhead claim).
//
// Conventions (docs/STATIC_ANALYSIS.md has the full write-up and rank table):
//   - Annotate the data, not just the lock: every member a lock protects gets
//     RELM_GUARDED_BY(mutex); helpers called with the lock held get
//     RELM_REQUIRES(mutex).
//   - RELM_NO_THREAD_SAFETY_ANALYSIS may appear only inside this header
//     (enforced by scripts/lint.sh); everywhere else, restructure instead.
//   - Condition-variable predicates are re-checked in an explicit
//     `while (!pred) cv.wait(lock);` loop in the function that holds the
//     lock, never a lambda handed to a wait overload — clang analyzes lambda
//     bodies as separate functions that do not inherit the caller's lockset.

// ---------------------------------------------------------------------------
// Clang capability attributes (no-ops under gcc).
// ---------------------------------------------------------------------------

#if defined(__clang__)
#define RELM_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define RELM_THREAD_ANNOTATION(x)
#endif

#define RELM_CAPABILITY(x) RELM_THREAD_ANNOTATION(capability(x))
#define RELM_SCOPED_CAPABILITY RELM_THREAD_ANNOTATION(scoped_lockable)
#define RELM_GUARDED_BY(x) RELM_THREAD_ANNOTATION(guarded_by(x))
#define RELM_PT_GUARDED_BY(x) RELM_THREAD_ANNOTATION(pt_guarded_by(x))
#define RELM_ACQUIRED_BEFORE(...) \
  RELM_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define RELM_ACQUIRED_AFTER(...) \
  RELM_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define RELM_REQUIRES(...) \
  RELM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define RELM_REQUIRES_SHARED(...) \
  RELM_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define RELM_ACQUIRE(...) RELM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define RELM_ACQUIRE_SHARED(...) \
  RELM_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define RELM_RELEASE(...) RELM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELM_RELEASE_SHARED(...) \
  RELM_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define RELM_RELEASE_GENERIC(...) \
  RELM_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))
#define RELM_TRY_ACQUIRE(...) \
  RELM_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define RELM_EXCLUDES(...) RELM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define RELM_ASSERT_CAPABILITY(x) RELM_THREAD_ANNOTATION(assert_capability(x))
#define RELM_RETURN_CAPABILITY(x) RELM_THREAD_ANNOTATION(lock_returned(x))
#define RELM_NO_THREAD_SAFETY_ANALYSIS \
  RELM_THREAD_ANNOTATION(no_thread_safety_analysis)

// Debug gate for the rank detector and contention metrics; deliberately the
// same condition as RELM_DCHECK (util/errors.hpp) so the sanitizer presets
// (RELM_DCHECKS=ON) check lock discipline for the whole library.
#if !defined(NDEBUG) || defined(RELM_ENABLE_DCHECKS)
#define RELM_SYNC_DEBUG 1
#else
#define RELM_SYNC_DEBUG 0
#endif

namespace relm::util {

// Acquisition order for every lock in the library, one block per subsystem.
// A thread may only acquire a lock whose rank is STRICTLY GREATER than every
// rank it already holds — so equal-rank nesting (e.g. two cache shards) is
// also rejected. Values are spaced so a subsystem can grow internal levels
// without renumbering its neighbors. Keep this table in sync with
// docs/STATIC_ANALYSIS.md.
enum class LockRank : int {
  // util/thread_pool — outermost: parallel_for loop bodies run arbitrary
  // library code (model eval, caches, tracing) under kPoolCaller.
  kPoolShared = 10,  // shared-pool singleton pointer
  kPoolCaller = 11,  // serializes concurrent parallel_for callers
  kPoolState = 12,   // worker wake state: current job + stop flag
  kPoolJob = 13,     // per-job/batch error slot + completion condvar

  // core (executor sharded frontier). Between the pool (whose workers run
  // expansion tasks that never touch the frontier) and the caches (which a
  // frontier holder must never need): pushes/pops take exactly one shard.
  kFrontierShard = 15,

  // core/pipeline/cache (compiled-artifact cache).
  kCompileCacheConfig = 20,  // global cache singleton pointer
  kCompileCacheShard = 21,   // the 8 LRU shards

  // model (CachingModel logit cache). The in-flight table ranks BEFORE the
  // shards: a dedup waiter re-probes its shard while still registered, so
  // inflight -> shard nesting must be legal (never the reverse).
  kModelCacheInflight = 29,  // pending-computation dedup table + condvar
  kModelCacheShard = 30,     // the 16 suffix-keyed LRU shards

  // obs/trace.
  kTraceSink = 40,    // buffer registry + atexit output paths
  kTraceBuffer = 41,  // per-thread event buffers

  // obs/metrics — above the caches and trace: metric registration happens
  // under shard/buffer locks (first use of a cached handle).
  kMetricsRegistry = 50,

  // util/logging — innermost leaf: any subsystem may log mid-operation.
  kLogging = 60,
};

// Human-readable rank name for the detector's failure message.
inline const char* lock_rank_name(LockRank rank) {
  switch (rank) {
    case LockRank::kPoolShared: return "pool.shared";
    case LockRank::kPoolCaller: return "pool.caller";
    case LockRank::kPoolState: return "pool.state";
    case LockRank::kPoolJob: return "pool.job";
    case LockRank::kFrontierShard: return "frontier.shard";
    case LockRank::kCompileCacheConfig: return "compile_cache.config";
    case LockRank::kCompileCacheShard: return "compile_cache.shard";
    case LockRank::kModelCacheInflight: return "model_cache.inflight";
    case LockRank::kModelCacheShard: return "model_cache.shard";
    case LockRank::kTraceSink: return "trace.sink";
    case LockRank::kTraceBuffer: return "trace.buffer";
    case LockRank::kMetricsRegistry: return "metrics.registry";
    case LockRank::kLogging: return "logging";
  }
  return "?";
}

namespace sync_detail {

// Per-thread stack of held ranks. Function-local thread_local so the storage
// is header-only and initialized on first use from any TU.
struct HeldRanks {
  // A fixed array avoids an allocator round-trip on the first lock of every
  // thread; depth > kMax would mean > 16 simultaneously-held locks, which the
  // strictly-increasing rank rule over ~11 distinct ranks already forbids.
  static constexpr std::size_t kMax = 16;
  LockRank ranks[kMax];
  std::size_t depth = 0;
};

inline HeldRanks& held_ranks() {
  thread_local HeldRanks held;
  return held;
}

// Aborts (via the RELM_DCHECK reporter, so death tests can match on the
// message) when acquiring `rank` would violate the strict ordering.
inline void check_acquire(LockRank rank) {
  const HeldRanks& held = held_ranks();
  for (std::size_t i = 0; i < held.depth; ++i) {
    if (static_cast<int>(held.ranks[i]) >= static_cast<int>(rank)) {
      char msg[160];
      std::snprintf(msg, sizeof(msg),
                    "lock rank order violation: acquiring '%s' (%d) while "
                    "holding '%s' (%d); see the rank table in util/sync.hpp",
                    lock_rank_name(rank), static_cast<int>(rank),
                    lock_rank_name(held.ranks[i]),
                    static_cast<int>(held.ranks[i]));
      ::relm::detail::dcheck_fail("lock rank order", msg, __FILE__, __LINE__);
    }
  }
}

inline void push_rank(LockRank rank) {
  HeldRanks& held = held_ranks();
  if (held.depth >= HeldRanks::kMax) {
    ::relm::detail::dcheck_fail("held-rank stack overflow",
                                "more than 16 locks held by one thread",
                                __FILE__, __LINE__);
  }
  held.ranks[held.depth++] = rank;
}

inline void pop_rank(LockRank rank) {
  HeldRanks& held = held_ranks();
  // Unlocks are not always LIFO (ScopedLock::unlock, condvar waits): remove
  // the most recent instance of this rank wherever it sits.
  for (std::size_t i = held.depth; i > 0; --i) {
    if (held.ranks[i - 1] == rank) {
      for (std::size_t j = i - 1; j + 1 < held.depth; ++j) {
        held.ranks[j] = held.ranks[j + 1];
      }
      --held.depth;
      return;
    }
  }
  ::relm::detail::dcheck_fail("lock rank bookkeeping",
                              "releasing a lock rank this thread does not hold",
                              __FILE__, __LINE__);
}

inline bool rank_held(LockRank rank) {
  const HeldRanks& held = held_ranks();
  for (std::size_t i = 0; i < held.depth; ++i) {
    if (held.ranks[i] == rank) return true;
  }
  return false;
}

inline void dcheck_rank_held(LockRank rank) {
  if (!rank_held(rank)) {
    char msg[128];
    std::snprintf(msg, sizeof(msg),
                  "assert_held: lock rank '%s' is not held by this thread",
                  lock_rank_name(rank));
    ::relm::detail::dcheck_fail("assert_held", msg, __FILE__, __LINE__);
  }
}

// Contention metrics, registered lazily. The registry's own mutex is
// Instrument::kOff, so this lookup can never recurse into itself; callers
// fetch the handles BEFORE blocking so the registry lock is taken while the
// contended lock is still unheld (rank-clean even for high-rank locks).
struct SyncMetrics {
  obs::Counter& contended;
  obs::Histogram& wait_seconds;
};

inline SyncMetrics& sync_metrics() {
  static SyncMetrics m{
      obs::Registry::instance().counter("sync.lock.contended"),
      obs::Registry::instance().histogram("sync.lock.wait_seconds"),
  };
  return m;
}

template <typename StdMutex>
inline void lock_contended(StdMutex& m, bool instrumented) {
  if (!instrumented) {
    m.lock();
    return;
  }
  SyncMetrics& metrics = sync_metrics();
  const auto t0 = std::chrono::steady_clock::now();
  m.lock();
  metrics.contended.add();
  metrics.wait_seconds.observe(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count());
}

}  // namespace sync_detail

class CondVar;

// Whether a lock reports contention to the obs registry. kOff exists for the
// two locks that sit inside the reporting path itself (the metrics registry's
// own mutex) or rank above it; everything else uses the default.
enum class Instrument { kOff, kOn };

// std::mutex with a clang capability, a lock rank, and (debug builds only)
// contention counters. See the header comment for the three guarantees.
class RELM_CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(LockRank rank, Instrument instrument = Instrument::kOn)
      : rank_(rank), instrumented_(instrument == Instrument::kOn) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() RELM_ACQUIRE() {
#if RELM_SYNC_DEBUG
    sync_detail::check_acquire(rank_);
    if (!m_.try_lock()) sync_detail::lock_contended(m_, instrumented_);
    sync_detail::push_rank(rank_);
#else
    m_.lock();
#endif
  }

  bool try_lock() RELM_TRY_ACQUIRE(true) {
#if RELM_SYNC_DEBUG
    // A try_lock that succeeds out of rank order is the same latent deadlock
    // as a blocking lock, so the check applies before the attempt.
    sync_detail::check_acquire(rank_);
    if (!m_.try_lock()) return false;
    sync_detail::push_rank(rank_);
    return true;
#else
    return m_.try_lock();
#endif
  }

  void unlock() RELM_RELEASE() {
#if RELM_SYNC_DEBUG
    sync_detail::pop_rank(rank_);
#endif
    m_.unlock();
  }

  // Tells the static analysis (and, in debug builds, checks at runtime via
  // the rank stack) that the calling thread holds this lock. For the rare
  // spot where the analysis cannot see the acquisition.
  void assert_held() const RELM_ASSERT_CAPABILITY(this) {
#if RELM_SYNC_DEBUG
    sync_detail::dcheck_rank_held(rank_);
#endif
  }

  LockRank rank() const { return rank_; }

 private:
  friend class CondVar;

  std::mutex m_;
  const LockRank rank_;
  const bool instrumented_;
};

// std::shared_mutex wrapper; shared acquisitions obey the same rank rule as
// exclusive ones (a reader that blocks a writer can still deadlock).
class RELM_CAPABILITY("shared_mutex") SharedMutex {
 public:
  explicit SharedMutex(LockRank rank, Instrument instrument = Instrument::kOn)
      : rank_(rank), instrumented_(instrument == Instrument::kOn) {}

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() RELM_ACQUIRE() {
#if RELM_SYNC_DEBUG
    sync_detail::check_acquire(rank_);
    if (!m_.try_lock()) sync_detail::lock_contended(m_, instrumented_);
    sync_detail::push_rank(rank_);
#else
    m_.lock();
#endif
  }

  void unlock() RELM_RELEASE() {
#if RELM_SYNC_DEBUG
    sync_detail::pop_rank(rank_);
#endif
    m_.unlock();
  }

  void lock_shared() RELM_ACQUIRE_SHARED() {
#if RELM_SYNC_DEBUG
    sync_detail::check_acquire(rank_);
    if (!m_.try_lock_shared()) {
      sync_detail::SyncMetrics* metrics =
          instrumented_ ? &sync_detail::sync_metrics() : nullptr;
      const auto t0 = std::chrono::steady_clock::now();
      m_.lock_shared();
      if (metrics) {
        metrics->contended.add();
        metrics->wait_seconds.observe(
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                .count());
      }
    }
    sync_detail::push_rank(rank_);
#else
    m_.lock_shared();
#endif
  }

  void unlock_shared() RELM_RELEASE_SHARED() {
#if RELM_SYNC_DEBUG
    sync_detail::pop_rank(rank_);
#endif
    m_.unlock_shared();
  }

  void assert_held() const RELM_ASSERT_CAPABILITY(this) {
#if RELM_SYNC_DEBUG
    sync_detail::dcheck_rank_held(rank_);
#endif
  }

  LockRank rank() const { return rank_; }

 private:
  std::shared_mutex m_;
  const LockRank rank_;
  const bool instrumented_;
};

// RAII exclusive lock over a Mutex (or, for the rare exclusive phase of a
// read-mostly path, a SharedMutex). Relockable: unlock()/lock() support the
// worker-loop pattern of dropping the lock around a long operation, and
// CondVar::wait releases/reacquires through it.
class RELM_SCOPED_CAPABILITY ScopedLock {
 public:
  explicit ScopedLock(Mutex& m) RELM_ACQUIRE(m) : mutex_(&m) {
    m.lock();
    owned_ = true;
  }

  explicit ScopedLock(SharedMutex& m) RELM_ACQUIRE(m) : shared_(&m) {
    m.lock();
    owned_ = true;
  }

  ScopedLock(const ScopedLock&) = delete;
  ScopedLock& operator=(const ScopedLock&) = delete;

  ~ScopedLock() RELM_RELEASE() {
    if (owned_) release_impl();
  }

  void unlock() RELM_RELEASE() {
    RELM_DCHECK(owned_, "ScopedLock::unlock without the lock held");
    release_impl();
    owned_ = false;
  }

  void lock() RELM_ACQUIRE() {
    RELM_DCHECK(!owned_, "ScopedLock::lock while already holding the lock");
    if (mutex_ != nullptr) {
      mutex_->lock();
    } else {
      shared_->lock();
    }
    owned_ = true;
  }

  bool owns_lock() const { return owned_; }

 private:
  friend class CondVar;

  void release_impl() RELM_NO_THREAD_SAFETY_ANALYSIS {
    if (mutex_ != nullptr) {
      mutex_->unlock();
    } else {
      shared_->unlock();
    }
  }

  Mutex* mutex_ = nullptr;
  SharedMutex* shared_ = nullptr;
  bool owned_ = false;
};

// RAII shared (reader) lock over a SharedMutex.
class RELM_SCOPED_CAPABILITY SharedScopedLock {
 public:
  explicit SharedScopedLock(SharedMutex& m) RELM_ACQUIRE_SHARED(m)
      : mutex_(&m) {
    m.lock_shared();
  }

  SharedScopedLock(const SharedScopedLock&) = delete;
  SharedScopedLock& operator=(const SharedScopedLock&) = delete;

  ~SharedScopedLock() RELM_RELEASE_GENERIC() { mutex_->unlock_shared(); }

 private:
  SharedMutex* mutex_;
};

// Condition variable bound to relm::Mutex via ScopedLock. Waits are spurious-
// wakeup-prone by contract: call sites re-check their predicate in an
// explicit `while (!pred) cv.wait(lock);` loop (see the header comment for
// why a predicate overload is deliberately absent).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  // Atomically releases lock's Mutex, blocks, and reacquires before
  // returning. The lock is held on entry and on exit, which is exactly what
  // the (suppressed) static analysis would conclude.
  void wait(ScopedLock& lock) RELM_NO_THREAD_SAFETY_ANALYSIS {
    Mutex* m = lock.mutex_;
    RELM_DCHECK(m != nullptr && lock.owned_,
                "CondVar::wait needs an owned exclusive Mutex ScopedLock");
#if RELM_SYNC_DEBUG
    sync_detail::pop_rank(m->rank_);
#endif
    std::unique_lock<std::mutex> adopted(m->m_, std::adopt_lock);
    cv_.wait(adopted);
    adopted.release();
#if RELM_SYNC_DEBUG
    // No rank re-check: the wake reacquires the same lock from the same
    // nesting position the original (checked) acquisition validated.
    sync_detail::push_rank(m->rank_);
#endif
  }

 private:
  std::condition_variable cv_;
};

}  // namespace relm::util

namespace relm {
using util::CondVar;
using util::Instrument;
using util::LockRank;
using util::Mutex;
using util::ScopedLock;
using util::SharedMutex;
using util::SharedScopedLock;
}  // namespace relm
