#include "util/thread_pool.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/sync.hpp"

namespace relm::util {

namespace {

// True while the current thread is executing loop bodies for some pool;
// nested parallel_for calls fall back to serial execution.
thread_local bool t_in_parallel_region = false;

// Scheduling metrics: one jobs/tasks add per parallel_for call (never per
// index — the loop body is the hot path). "serial" counts the fast-path
// dispatches (no workers, n == 1, or a nested call).
struct PoolMetrics {
  obs::Counter& jobs;
  obs::Counter& tasks;
  obs::Counter& serial;
  obs::Histogram& job_tasks;

  static PoolMetrics& get() {
    static PoolMetrics m{
        obs::Registry::instance().counter("pool.jobs"),
        obs::Registry::instance().counter("pool.tasks"),
        obs::Registry::instance().counter("pool.serial_dispatches"),
        obs::Registry::instance().histogram(
            "pool.job.tasks", obs::Histogram::default_size_bounds())};
    return m;
  }
};

}  // namespace

struct ThreadPool::Impl {
  // One fork-join dispatch. Heap-allocated and shared so a worker woken late
  // (after the loop already drained) still holds a valid object: it grabs an
  // index >= n and exits without touching anything.
  struct Job {
    // fn and n are written by the dispatching caller before the job is
    // published through Impl::current (a mutex release/acquire), and are
    // read-only afterwards — deliberately not lock-guarded.
    std::function<void(std::size_t)> fn;
    std::size_t n = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> completed{0};
    Mutex mutex{LockRank::kPoolJob};
    CondVar done;
    std::exception_ptr error RELM_GUARDED_BY(mutex);
  };

  std::vector<std::thread> workers;
  Mutex mutex{LockRank::kPoolState};
  CondVar work_cv;
  std::shared_ptr<Job> current RELM_GUARDED_BY(mutex);
  bool stop RELM_GUARDED_BY(mutex) = false;
  // Serializes parallel_for callers; held for the whole loop.
  Mutex caller_mutex{LockRank::kPoolCaller};

  static void run(Job& job) {
    t_in_parallel_region = true;
    for (;;) {
      const std::size_t i = job.next.fetch_add(1);
      if (i >= job.n) break;
      try {
        job.fn(i);
      } catch (...) {
        ScopedLock lock(job.mutex);
        if (!job.error) job.error = std::current_exception();
      }
      if (job.completed.fetch_add(1) + 1 == job.n) {
        // Lock pairs with the caller's predicate check so the final
        // notification cannot slip between its check and its wait.
        ScopedLock lock(job.mutex);
        job.done.notify_all();
      }
    }
    t_in_parallel_region = false;
  }

  void worker_loop() {
    std::shared_ptr<Job> last;
    ScopedLock lock(mutex);
    for (;;) {
      while (!stop && (!current || current == last)) work_cv.wait(lock);
      if (stop) return;
      std::shared_ptr<Job> job = current;
      last = job;
      lock.unlock();
      run(*job);
      lock.lock();
    }
  }
};

ThreadPool::ThreadPool(std::size_t threads) : impl_(std::make_unique<Impl>()) {
  const std::size_t workers = threads > 1 ? threads - 1 : 0;
  impl_->workers.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    impl_->workers.emplace_back([impl = impl_.get()] { impl->worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    ScopedLock lock(impl_->mutex);
    impl_->stop = true;
  }
  impl_->work_cv.notify_all();
  for (std::thread& worker : impl_->workers) worker.join();
}

std::size_t ThreadPool::threads() const { return impl_->workers.size() + 1; }

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // Serial fast paths: no workers, a single index, or a nested call (which
  // would otherwise self-deadlock on caller_mutex).
  if (impl_->workers.empty() || n == 1 || t_in_parallel_region) {
    PoolMetrics::get().serial.add();
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  RELM_TRACE_SPAN("pool.parallel_for");
  PoolMetrics& metrics = PoolMetrics::get();
  metrics.jobs.add();
  metrics.tasks.add(n);
  metrics.job_tasks.observe(static_cast<double>(n));

  ScopedLock caller(impl_->caller_mutex);
  auto job = std::make_shared<Impl::Job>();
  job->fn = fn;
  job->n = n;
  {
    ScopedLock lock(impl_->mutex);
    impl_->current = job;
  }
  impl_->work_cv.notify_all();

  Impl::run(*job);  // the calling thread is one of the pool's lanes

  std::exception_ptr error;
  {
    ScopedLock lock(job->mutex);
    while (job->completed.load() != job->n) job->done.wait(lock);
    error = job->error;
  }
  {
    ScopedLock lock(impl_->mutex);
    impl_->current.reset();
  }
  if (error) std::rethrow_exception(error);
}

namespace {

std::size_t default_thread_count() {
  if (const char* env = std::getenv("RELM_THREADS")) {
    const long parsed = std::atol(env);
    if (parsed >= 1) return static_cast<std::size_t>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

Mutex g_shared_mutex{LockRank::kPoolShared};
std::unique_ptr<ThreadPool> g_shared_pool RELM_GUARDED_BY(g_shared_mutex);

}  // namespace

ThreadPool& ThreadPool::shared() {
  ScopedLock lock(g_shared_mutex);
  if (!g_shared_pool) {
    g_shared_pool = std::make_unique<ThreadPool>(default_thread_count());
    obs::Registry::instance().gauge("pool.threads")
        .set(static_cast<double>(g_shared_pool->threads()));
  }
  return *g_shared_pool;
}

void ThreadPool::set_shared_threads(std::size_t threads) {
  ScopedLock lock(g_shared_mutex);
  g_shared_pool = std::make_unique<ThreadPool>(threads > 0 ? threads : 1);
  obs::Registry::instance().gauge("pool.threads")
      .set(static_cast<double>(g_shared_pool->threads()));
}

}  // namespace relm::util
