#include "util/thread_pool.hpp"

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/sync.hpp"

namespace relm::util {

namespace {

// True while the current thread is executing loop bodies for some pool;
// nested parallel_for calls fall back to serial execution.
thread_local bool t_in_parallel_region = false;

// Scheduling metrics: one jobs/tasks add per parallel_for call (never per
// index — the loop body is the hot path). "serial" counts the fast-path
// dispatches (no workers, n == 1, or a nested call).
struct PoolMetrics {
  obs::Counter& jobs;
  obs::Counter& tasks;
  obs::Counter& serial;
  obs::Histogram& job_tasks;
  obs::Counter& async_batches;
  obs::Counter& async_tasks;
  obs::Counter& steals;

  static PoolMetrics& get() {
    static PoolMetrics m{
        obs::Registry::instance().counter("pool.jobs"),
        obs::Registry::instance().counter("pool.tasks"),
        obs::Registry::instance().counter("pool.serial_dispatches"),
        obs::Registry::instance().histogram(
            "pool.job.tasks", obs::Histogram::default_size_bounds()),
        obs::Registry::instance().counter("pool.async_batches"),
        obs::Registry::instance().counter("pool.async_tasks"),
        obs::Registry::instance().counter("pool.steals")};
    return m;
  }
};

constexpr std::size_t kNoTask = static_cast<std::size_t>(-1);

}  // namespace

// Shared state of one submit() batch. Task lifecycle is a per-index atomic
// byte: kTodo -> kClaimed (CAS by exactly one thread) -> kDone. All claiming
// is lock-free; the mutex guards only the error slot and backs the condvar a
// waiter sleeps on when every remaining task is claimed elsewhere.
struct ThreadPool::AsyncBatch::State {
  static constexpr std::uint8_t kTodo = 0;
  static constexpr std::uint8_t kClaimed = 1;
  static constexpr std::uint8_t kDone = 2;

  // fn, n, and lanes are written before the batch is published (through the
  // pool's state mutex) and read-only afterwards.
  std::function<void(std::size_t)> fn;
  std::size_t n = 0;
  std::size_t lanes = 1;  // workers + calling thread; task i's home is i % lanes
  std::unique_ptr<std::atomic<std::uint8_t>[]> status;
  std::atomic<std::size_t> unclaimed{0};
  std::atomic<std::size_t> completed{0};
  std::atomic<std::size_t> steals{0};
  // True while some thread may be sleeping in wait()/wait_all(); gates the
  // notify in run_one so uncontended completions never touch the mutex.
  std::atomic<bool> waiter{false};
  std::atomic<bool> steals_flushed{false};
  Mutex mutex{LockRank::kPoolJob};
  CondVar done;
  std::exception_ptr error RELM_GUARDED_BY(mutex);

  bool try_claim(std::size_t i) {
    std::uint8_t expected = kTodo;
    if (!status[i].compare_exchange_strong(expected, kClaimed)) return false;
    unclaimed.fetch_sub(1);
    return true;
  }

  // Claims a task for a pool worker: first a pass over the lane's home
  // stripe, then a stealing pass over everything else. Both passes walk
  // BACKWARDS from the last task: the submitter retires in submission order
  // and claims forward from the retirement head (claim_preferring), so
  // workers eating the tail keeps the head unclaimed for it. That matters
  // most on oversubscribed machines — a preempted worker holding a claim on
  // the next-to-retire task forces the submitter into a futex sleep per
  // hand-off — and is harmless on idle ones. All status transitions are
  // one-way, so a task claimable in the second pass is provably from a
  // foreign stripe.
  std::size_t claim(std::size_t lane) {
    if (unclaimed.load(std::memory_order_relaxed) == 0) return kNoTask;
    const std::size_t home = lane % lanes;
    if (home < n) {
      const std::size_t last = home + ((n - 1 - home) / lanes) * lanes;
      for (std::size_t i = last;; i -= lanes) {
        if (try_claim(i)) return i;
        if (i == home) break;
      }
    }
    for (std::size_t i = n; i > 0; --i) {
      if (try_claim(i - 1)) {
        steals.fetch_add(1);
        return i - 1;
      }
    }
    return kNoTask;
  }

  // Claim order for a thread blocked on task `want`: that task itself, then
  // the ones needed soonest after it (retirement is in submission order).
  std::size_t claim_preferring(std::size_t want) {
    if (unclaimed.load(std::memory_order_relaxed) == 0) return kNoTask;
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t i = (want + k) % n;
      if (try_claim(i)) {
        if (i % lanes != 0) steals.fetch_add(1);
        return i;
      }
    }
    return kNoTask;
  }

  void run_one(std::size_t i) {
    try {
      fn(i);
    } catch (...) {
      ScopedLock lock(mutex);
      if (!error) error = std::current_exception();
    }
    status[i].store(kDone);
    completed.fetch_add(1);
    // Seq-cst ordering of (status/completed store, waiter load) against the
    // waiter's (waiter store, status/completed check under the lock) makes a
    // lost wakeup impossible: if the waiter missed our completion, we see its
    // flag and the lock serializes the notify after its check, before its
    // wait.
    if (waiter.load()) {
      ScopedLock lock(mutex);
      done.notify_all();
    }
  }

  void flush_steals() {
    if (!steals_flushed.exchange(true)) {
      const std::size_t count = steals.load();
      if (count > 0) PoolMetrics::get().steals.add(count);
    }
  }
};

struct ThreadPool::Impl {
  // One fork-join dispatch. Heap-allocated and shared so a worker woken late
  // (after the loop already drained) still holds a valid object: it grabs an
  // index >= n and exits without touching anything.
  struct Job {
    // fn and n are written by the dispatching caller before the job is
    // published through Impl::current (a mutex release/acquire), and are
    // read-only afterwards — deliberately not lock-guarded.
    std::function<void(std::size_t)> fn;
    std::size_t n = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> completed{0};
    Mutex mutex{LockRank::kPoolJob};
    CondVar done;
    std::exception_ptr error RELM_GUARDED_BY(mutex);
  };

  std::vector<std::thread> workers;
  Mutex mutex{LockRank::kPoolState};
  CondVar work_cv;
  std::shared_ptr<Job> current RELM_GUARDED_BY(mutex);
  // Most recent submit() batch. A drained batch is left in place (its
  // unclaimed count is 0, so the worker predicate ignores it) and replaced
  // by the next submit; workers never block on a stale pointer.
  std::shared_ptr<AsyncBatch::State> async RELM_GUARDED_BY(mutex);
  bool stop RELM_GUARDED_BY(mutex) = false;
  // Serializes parallel_for callers; held for the whole loop.
  Mutex caller_mutex{LockRank::kPoolCaller};

  static void run(Job& job) {
    t_in_parallel_region = true;
    for (;;) {
      const std::size_t i = job.next.fetch_add(1);
      if (i >= job.n) break;
      try {
        job.fn(i);
      } catch (...) {
        ScopedLock lock(job.mutex);
        if (!job.error) job.error = std::current_exception();
      }
      if (job.completed.fetch_add(1) + 1 == job.n) {
        // Lock pairs with the caller's predicate check so the final
        // notification cannot slip between its check and its wait.
        ScopedLock lock(job.mutex);
        job.done.notify_all();
      }
    }
    t_in_parallel_region = false;
  }

  static void run_async(AsyncBatch::State& batch, std::size_t lane) {
    t_in_parallel_region = true;
    for (;;) {
      const std::size_t i = batch.claim(lane);
      if (i == kNoTask) break;
      batch.run_one(i);
    }
    t_in_parallel_region = false;
  }

  void worker_loop(std::size_t lane) {
    std::shared_ptr<Job> last;
    ScopedLock lock(mutex);
    for (;;) {
      while (!stop && (!current || current == last) &&
             (!async || async->unclaimed.load() == 0)) {
        work_cv.wait(lock);
      }
      if (stop) return;
      if (current && current != last) {
        std::shared_ptr<Job> job = current;
        last = job;
        lock.unlock();
        run(*job);
        lock.lock();
      } else {
        std::shared_ptr<AsyncBatch::State> batch = async;
        lock.unlock();
        run_async(*batch, lane);
        lock.lock();
      }
    }
  }
};

namespace {

// Physical cores available beyond the calling thread. Pool size is a
// *request*; on a machine with fewer cores than requested threads, waking a
// worker cannot add parallelism — it can only preempt the coordinator (futex
// wake + context switch per batch, ~10µs each, thousands of batches per
// search). Dispatch therefore never wakes more workers than spare cores; the
// caller drains whatever is left inline, which is the exact-serial fast path
// and produces byte-identical results (scheduling never affects output).
std::size_t spare_cores() {
  static const std::size_t spare = [] {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 1 ? static_cast<std::size_t>(hw - 1) : 0;
  }();
  return spare;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) : impl_(std::make_unique<Impl>()) {
  const std::size_t workers = threads > 1 ? threads - 1 : 0;
  impl_->workers.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    // Lane 0 is the calling/submitting thread; workers take 1..N.
    impl_->workers.emplace_back(
        [impl = impl_.get(), lane = i + 1] { impl->worker_loop(lane); });
  }
}

ThreadPool::~ThreadPool() {
  {
    ScopedLock lock(impl_->mutex);
    impl_->stop = true;
  }
  impl_->work_cv.notify_all();
  for (std::thread& worker : impl_->workers) worker.join();
}

std::size_t ThreadPool::threads() const { return impl_->workers.size() + 1; }

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // Serial fast paths: no workers, no spare core to run one, a single index,
  // or a nested call (which would otherwise self-deadlock on caller_mutex).
  if (impl_->workers.empty() || spare_cores() == 0 || n == 1 ||
      t_in_parallel_region) {
    PoolMetrics::get().serial.add();
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  RELM_TRACE_SPAN("pool.parallel_for");
  PoolMetrics& metrics = PoolMetrics::get();
  metrics.jobs.add();
  metrics.tasks.add(n);
  metrics.job_tasks.observe(static_cast<double>(n));

  ScopedLock caller(impl_->caller_mutex);
  auto job = std::make_shared<Impl::Job>();
  job->fn = fn;
  job->n = n;
  {
    ScopedLock lock(impl_->mutex);
    impl_->current = job;
  }
  impl_->work_cv.notify_all();

  Impl::run(*job);  // the calling thread is one of the pool's lanes

  std::exception_ptr error;
  {
    ScopedLock lock(job->mutex);
    while (job->completed.load() != job->n) job->done.wait(lock);
    error = job->error;
  }
  {
    ScopedLock lock(impl_->mutex);
    impl_->current.reset();
  }
  if (error) std::rethrow_exception(error);
}

ThreadPool::AsyncBatch::AsyncBatch(std::shared_ptr<State> state)
    : state_(std::move(state)) {}

ThreadPool::AsyncBatch& ThreadPool::AsyncBatch::operator=(
    AsyncBatch&& other) noexcept {
  if (this != &other) {
    if (state_) wait_all();
    state_ = std::move(other.state_);
  }
  return *this;
}

ThreadPool::AsyncBatch::~AsyncBatch() {
  // Drain without rethrowing: the error (if any) was already capturable via
  // rethrow_if_error, and a throwing destructor is worse than a dropped one.
  if (state_) wait_all();
}

void ThreadPool::AsyncBatch::wait(std::size_t i) {
  State& s = *state_;
  for (;;) {
    if (s.status[i].load() == State::kDone) return;
    const std::size_t j = s.claim_preferring(i);
    if (j != kNoTask) {
      s.run_one(j);
      continue;
    }
    // Task i is claimed by another thread and nothing else is claimable.
    // Yield a few quanta first: on an oversubscribed machine the owner is
    // likely just preempted, and ceding the CPU lets it finish without the
    // futex round-trip (the owner also skips its notify when nobody set the
    // waiter flag). Only then fall back to sleeping on the condvar.
    bool done = false;
    for (int spin = 0; spin < 32 && !done; ++spin) {
      std::this_thread::yield();
      done = s.status[i].load() == State::kDone;
    }
    if (done) return;
    s.waiter.store(true);
    {
      ScopedLock lock(s.mutex);
      while (s.status[i].load() != State::kDone) s.done.wait(lock);
    }
    s.waiter.store(false);
    return;
  }
}

void ThreadPool::AsyncBatch::wait_all() {
  if (!state_) return;
  State& s = *state_;
  for (;;) {
    const std::size_t j = s.claim_preferring(0);
    if (j == kNoTask) break;
    s.run_one(j);
  }
  if (s.completed.load() != s.n) {
    bool done = false;
    for (int spin = 0; spin < 32 && !done; ++spin) {
      std::this_thread::yield();
      done = s.completed.load() == s.n;
    }
    if (!done) {
      s.waiter.store(true);
      {
        ScopedLock lock(s.mutex);
        while (s.completed.load() != s.n) s.done.wait(lock);
      }
      s.waiter.store(false);
    }
  }
  s.flush_steals();
}

void ThreadPool::AsyncBatch::rethrow_if_error() {
  if (!state_) return;
  std::exception_ptr error;
  {
    ScopedLock lock(state_->mutex);
    error = state_->error;
  }
  if (error) std::rethrow_exception(error);
}

std::size_t ThreadPool::AsyncBatch::steals() const {
  return state_ ? state_->steals.load() : 0;
}

ThreadPool::AsyncBatch ThreadPool::submit(std::size_t n,
                                          std::function<void(std::size_t)> fn) {
  auto state = std::make_shared<AsyncBatch::State>();
  state->fn = std::move(fn);
  state->n = n;
  state->lanes = impl_->workers.size() + 1;
  if (n > 0) {
    state->status = std::make_unique<std::atomic<std::uint8_t>[]>(n);
    for (std::size_t i = 0; i < n; ++i) {
      state->status[i].store(AsyncBatch::State::kTodo,
                             std::memory_order_relaxed);
    }
    state->unclaimed.store(n);
  }
  PoolMetrics& metrics = PoolMetrics::get();
  metrics.async_batches.add();
  metrics.async_tasks.add(n);
  // Publish to workers unless there are none, none could run on a spare
  // core, or we are already inside a parallel region: then the caller drains
  // everything in wait()/wait_all(), which is the exact-serial fast path.
  // Wake only as many workers as there are tasks AND spare cores: a surplus
  // worker would wake, find nothing claimable (or preempt the coordinator),
  // and sleep again — pure context-switch churn on oversubscribed machines.
  const std::size_t wake =
      std::min({n, impl_->workers.size(), spare_cores()});
  if (wake > 0 && !t_in_parallel_region) {
    {
      ScopedLock lock(impl_->mutex);
      impl_->async = state;
    }
    if (wake >= impl_->workers.size()) {
      impl_->work_cv.notify_all();
    } else {
      for (std::size_t w = 0; w < wake; ++w) impl_->work_cv.notify_one();
    }
  }
  return AsyncBatch(std::move(state));
}

namespace {

std::size_t default_thread_count() {
  if (const char* env = std::getenv("RELM_THREADS")) {
    const long parsed = std::atol(env);
    if (parsed >= 1) return static_cast<std::size_t>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

Mutex g_shared_mutex{LockRank::kPoolShared};
std::unique_ptr<ThreadPool> g_shared_pool RELM_GUARDED_BY(g_shared_mutex);

}  // namespace

ThreadPool& ThreadPool::shared() {
  ScopedLock lock(g_shared_mutex);
  if (!g_shared_pool) {
    g_shared_pool = std::make_unique<ThreadPool>(default_thread_count());
    obs::Registry::instance().gauge("pool.threads")
        .set(static_cast<double>(g_shared_pool->threads()));
  }
  return *g_shared_pool;
}

void ThreadPool::set_shared_threads(std::size_t threads) {
  ScopedLock lock(g_shared_mutex);
  g_shared_pool = std::make_unique<ThreadPool>(threads > 0 ? threads : 1);
  obs::Registry::instance().gauge("pool.threads")
      .set(static_cast<double>(g_shared_pool->threads()));
}

}  // namespace relm::util
