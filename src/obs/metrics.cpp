#include "obs/metrics.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <deque>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "util/sync.hpp"

namespace relm::obs {

namespace detail {

std::size_t stripe_index() {
  // Round-robin assignment spreads threads evenly across stripes even when
  // thread ids cluster; the index is stable for the thread's lifetime.
  static std::atomic<std::size_t> next{0};
  thread_local std::size_t index =
      next.fetch_add(1, std::memory_order_relaxed) % kStripes;
  return index;
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

std::span<const double> Histogram::default_latency_bounds() {
  // Seconds, x4 geometric from 1us: 1us..~17s plus the overflow bucket.
  static const std::array<double, 13> bounds = {
      1e-6,    4e-6,    1.6e-5, 6.4e-5, 2.56e-4, 1.024e-3, 4.096e-3,
      1.6384e-2, 6.5536e-2, 0.262144, 1.048576, 4.194304, 16.777216};
  return bounds;
}

std::span<const double> Histogram::default_size_bounds() {
  static const std::array<double, 13> bounds = {1,  2,   4,   8,    16,  32, 64,
                                                128, 256, 512, 1024, 2048, 4096};
  return bounds;
}

Histogram::Histogram(std::span<const double> bounds)
    : bounds_(bounds.begin(), bounds.end()), stripes_(detail::kStripes) {
  for (auto& stripe : stripes_) {
    stripe.buckets = std::vector<std::atomic<std::uint64_t>>(bounds_.size() + 1);
  }
}

void Histogram::observe(double v) noexcept {
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  Stripe& stripe = stripes_[detail::stripe_index()];
  stripe.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  stripe.count.fetch_add(1, std::memory_order_relaxed);
  detail::atomic_add(stripe.sum, v);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1, 0);
  for (const Stripe& stripe : stripes_) {
    for (std::size_t b = 0; b < out.size(); ++b) {
      out[b] += stripe.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return out;
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (const Stripe& s : stripes_) total += s.count.load(std::memory_order_relaxed);
  return total;
}

double Histogram::sum() const {
  double total = 0.0;
  for (const Stripe& s : stripes_) total += s.sum.load(std::memory_order_relaxed);
  return total;
}

void Histogram::reset() noexcept {
  for (Stripe& stripe : stripes_) {
    for (auto& bucket : stripe.buckets) {
      bucket.store(0, std::memory_order_relaxed);
    }
    stripe.count.store(0, std::memory_order_relaxed);
    stripe.sum.store(0.0, std::memory_order_relaxed);
  }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

struct Registry::Impl {
  // Instrument::kOff: this mutex is acquired by the sync layer's own
  // contention-metrics registration (util/sync.hpp), so reporting its
  // contention through that same path would recurse.
  mutable util::Mutex mutex{util::LockRank::kMetricsRegistry,
                            util::Instrument::kOff};
  // Node-stable storage: handles returned to callers must survive rehashes
  // (and escape the lock by design — the elements are internally
  // synchronized via their atomic stripes, the mutex only guards the name
  // index and the append itself, so the deques stay unannotated).
  std::deque<Counter> counters;
  std::deque<Gauge> gauges;
  std::deque<Histogram> histograms;
  struct Slot {
    MetricValue::Kind kind;
    std::size_t index;
  };
  std::unordered_map<std::string, Slot> by_name RELM_GUARDED_BY(mutex);
};

Registry::Impl& Registry::impl() const {
  // Leaked intentionally: metrics outlive static destruction order (atexit
  // trace flushes may still snapshot).
  static Impl* impl = new Impl();
  return *impl;
}

Registry& Registry::instance() {
  static Registry* registry = new Registry();
  return *registry;
}

namespace {

[[noreturn]] void kind_mismatch(std::string_view name) {
  throw std::logic_error("metric '" + std::string(name) +
                         "' already registered with a different kind");
}

}  // namespace

Counter& Registry::counter(std::string_view name) {
  Impl& im = impl();
  util::ScopedLock lock(im.mutex);
  auto it = im.by_name.find(std::string(name));
  if (it != im.by_name.end()) {
    if (it->second.kind != MetricValue::Kind::kCounter) kind_mismatch(name);
    return im.counters[it->second.index];
  }
  im.counters.emplace_back();
  im.by_name.emplace(std::string(name),
                     Impl::Slot{MetricValue::Kind::kCounter, im.counters.size() - 1});
  return im.counters.back();
}

Gauge& Registry::gauge(std::string_view name) {
  Impl& im = impl();
  util::ScopedLock lock(im.mutex);
  auto it = im.by_name.find(std::string(name));
  if (it != im.by_name.end()) {
    if (it->second.kind != MetricValue::Kind::kGauge) kind_mismatch(name);
    return im.gauges[it->second.index];
  }
  im.gauges.emplace_back();
  im.by_name.emplace(std::string(name),
                     Impl::Slot{MetricValue::Kind::kGauge, im.gauges.size() - 1});
  return im.gauges.back();
}

Histogram& Registry::histogram(std::string_view name,
                               std::span<const double> bounds) {
  Impl& im = impl();
  util::ScopedLock lock(im.mutex);
  auto it = im.by_name.find(std::string(name));
  if (it != im.by_name.end()) {
    if (it->second.kind != MetricValue::Kind::kHistogram) kind_mismatch(name);
    return im.histograms[it->second.index];
  }
  im.histograms.emplace_back(bounds);
  im.by_name.emplace(
      std::string(name),
      Impl::Slot{MetricValue::Kind::kHistogram, im.histograms.size() - 1});
  return im.histograms.back();
}

Snapshot Registry::snapshot() const {
  Impl& im = impl();
  util::ScopedLock lock(im.mutex);
  Snapshot snap;
  // relm-lint: ordered — folded into Snapshot::metrics, a sorted std::map,
  // so the unordered iteration order never reaches the serialized output.
  for (const auto& [name, slot] : im.by_name) {
    MetricValue value;
    value.kind = slot.kind;
    switch (slot.kind) {
      case MetricValue::Kind::kCounter:
        value.counter = im.counters[slot.index].value();
        break;
      case MetricValue::Kind::kGauge:
        value.gauge = im.gauges[slot.index].value();
        break;
      case MetricValue::Kind::kHistogram: {
        const Histogram& h = im.histograms[slot.index];
        value.bounds.assign(h.bounds().begin(), h.bounds().end());
        value.buckets = h.bucket_counts();
        value.count = h.count();
        value.sum = h.sum();
        break;
      }
    }
    snap.metrics.emplace(name, std::move(value));
  }
  return snap;
}

void Registry::reset() {
  Impl& im = impl();
  util::ScopedLock lock(im.mutex);
  for (Counter& c : im.counters) c.reset();
  for (Gauge& g : im.gauges) g.reset();
  for (Histogram& h : im.histograms) h.reset();
}

// ---------------------------------------------------------------------------
// Snapshot JSON
// ---------------------------------------------------------------------------

namespace {

void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out += buf;
}

}  // namespace

std::string Snapshot::to_json() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : metrics) {
    if (v.kind != MetricValue::Kind::kCounter) continue;
    if (!first) out += ',';
    first = false;
    out += '"' + name + "\":" + std::to_string(v.counter);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : metrics) {
    if (v.kind != MetricValue::Kind::kGauge) continue;
    if (!first) out += ',';
    first = false;
    out += '"' + name + "\":";
    append_double(out, v.gauge);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, v] : metrics) {
    if (v.kind != MetricValue::Kind::kHistogram) continue;
    if (!first) out += ',';
    first = false;
    out += '"' + name + "\":{\"count\":" + std::to_string(v.count) + ",\"sum\":";
    append_double(out, v.sum);
    out += ",\"mean\":";
    append_double(out, v.count ? v.sum / static_cast<double>(v.count) : 0.0);
    out += ",\"buckets\":[";
    for (std::size_t b = 0; b < v.buckets.size(); ++b) {
      if (b) out += ',';
      out += "[";
      if (b < v.bounds.size()) {
        append_double(out, v.bounds[b]);
      } else {
        out += "\"inf\"";
      }
      out += ',' + std::to_string(v.buckets[b]) + ']';
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

}  // namespace relm::obs
