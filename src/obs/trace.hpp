#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace relm::obs {

// Scoped tracing spans with Chrome-trace-format output.
//
// Tracing is off by default and costs one relaxed atomic load per span when
// disabled. It turns on either programmatically (Trace::start) or through
// the RELM_TRACE environment variable:
//
//   RELM_TRACE=trace.json relm query ...     # written at process exit
//   relm query ... --trace-out trace.json    # written by the CLI
//
// Spans record into per-thread buffers (one uncontended mutex each); the
// collected events serialize as Chrome trace "X" (complete) events —
// loadable in chrome://tracing or Perfetto — or as a JSONL stream, one
// event object per line. Span nesting is implicit: RAII scopes on one
// thread yield properly nested [ts, ts+dur] intervals, which the viewers
// render as flame stacks.
//
// Every span also feeds the metrics registry histogram
// "span.<name>.seconds", so --metrics reports per-phase latency
// distributions even without a trace file.

class Trace {
 public:
  static bool enabled() {
    return g_enabled.load(std::memory_order_relaxed);
  }

  // Starts collecting. Clears any previously collected events.
  static void start();
  // Stops collecting (events are kept until the next start()).
  static void stop();

  // If RELM_TRACE is set and non-empty, starts tracing and registers an
  // atexit hook that writes the Chrome trace to its value ("1"/"true" fall
  // back to "relm_trace.json"). RELM_TRACE_JSONL=<path> additionally
  // streams events as JSONL at exit. Called once from the first span-site
  // static initialization, so any relm binary honors the switch.
  static void init_from_env();

  // Serializes everything collected so far. Thread-safe, but concurrent
  // spans may be missed; call after joining parallel work.
  static void write_chrome_trace(std::ostream& out);
  static void write_jsonl(std::ostream& out);
  static void write_chrome_trace_file(const std::string& path);
  static void write_jsonl_file(const std::string& path);

  // Number of events currently buffered (for tests).
  static std::size_t event_count();

  // Records one completed span. `name` must be a string literal (stored by
  // pointer). Timestamps are microseconds on the process-local monotonic
  // clock.
  static void record(const char* name, double ts_us, double dur_us);

  // Microseconds since process start on the monotonic clock.
  static double now_us();

 private:
  static std::atomic<bool> g_enabled;
};

// RAII span. Near-zero cost when tracing is disabled (one relaxed load, no
// clock read). The per-phase histogram is updated only while tracing so the
// disabled path stays free.
class Span {
 public:
  explicit Span(const char* name) {
    if (Trace::enabled()) {
      name_ = name;
      start_us_ = Trace::now_us();
    }
  }
  ~Span() {
    if (name_ != nullptr) finish();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  void finish();

  const char* name_ = nullptr;
  double start_us_ = 0.0;
};

}  // namespace relm::obs

// Scoped span with an auto-generated variable name; `name` must be a string
// literal. Usage: RELM_TRACE_SPAN("regex.determinize");
#define RELM_TRACE_SPAN_CAT2(a, b) a##b
#define RELM_TRACE_SPAN_CAT(a, b) RELM_TRACE_SPAN_CAT2(a, b)
#define RELM_TRACE_SPAN(name) \
  ::relm::obs::Span RELM_TRACE_SPAN_CAT(relm_span_, __LINE__)(name)
