#include "obs/trace.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>
#include <vector>

#include "obs/metrics.hpp"
#include "util/sync.hpp"

namespace relm::obs {

std::atomic<bool> Trace::g_enabled{false};

namespace {

struct TraceEvent {
  const char* name;  // string literal
  double ts_us;
  double dur_us;
};

// One buffer per thread. The owning thread appends under the buffer's own
// (uncontended) mutex; serializers take every buffer mutex while iterating.
// Buffers are shared_ptr so events survive thread exit until serialized.
struct ThreadBuffer {
  util::Mutex mutex{util::LockRank::kTraceBuffer};
  // Written once at registration, before the buffer is visible to
  // serializers, and immutable afterwards — so not lock-guarded.
  std::uint32_t tid = 0;
  std::vector<TraceEvent> events RELM_GUARDED_BY(mutex);
};

struct TraceState {
  util::Mutex mutex{util::LockRank::kTraceSink};
  std::vector<std::shared_ptr<ThreadBuffer>> buffers RELM_GUARDED_BY(mutex);
  std::uint32_t next_tid RELM_GUARDED_BY(mutex) = 1;
  std::string atexit_chrome_path RELM_GUARDED_BY(mutex);
  std::string atexit_jsonl_path RELM_GUARDED_BY(mutex);
};

TraceState& state() {
  static TraceState* s = new TraceState();  // leaked: used from atexit
  return *s;
}

ThreadBuffer& local_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    auto b = std::make_shared<ThreadBuffer>();
    TraceState& s = state();
    util::ScopedLock lock(s.mutex);
    b->tid = s.next_tid++;
    s.buffers.push_back(b);
    return b;
  }();
  return *buffer;
}

std::chrono::steady_clock::time_point process_epoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

Histogram& span_histogram(const char* name) {
  // One registry lookup per (name, call thread) pair would still hash the
  // string; cache per name in a tiny thread-local map keyed by pointer
  // identity (names are literals).
  thread_local std::vector<std::pair<const char*, Histogram*>> cache;
  for (const auto& [key, hist] : cache) {
    if (key == name) return *hist;
  }
  Histogram& hist = Registry::instance().histogram(
      std::string("span.") + name + ".seconds",
      Histogram::default_latency_bounds());
  cache.emplace_back(name, &hist);
  return hist;
}

void atexit_flush() {
  TraceState& s = state();
  std::string chrome_path;
  std::string jsonl_path;
  {
    util::ScopedLock lock(s.mutex);
    chrome_path = s.atexit_chrome_path;
    jsonl_path = s.atexit_jsonl_path;
  }
  if (!chrome_path.empty()) Trace::write_chrome_trace_file(chrome_path);
  if (!jsonl_path.empty()) Trace::write_jsonl_file(jsonl_path);
}

}  // namespace

double Trace::now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - process_epoch())
      .count();
}

void Trace::start() {
  process_epoch();  // pin the epoch before the first event
  TraceState& s = state();
  {
    util::ScopedLock lock(s.mutex);
    for (auto& buffer : s.buffers) {
      util::ScopedLock buffer_lock(buffer->mutex);
      buffer->events.clear();
    }
  }
  g_enabled.store(true, std::memory_order_relaxed);
}

void Trace::stop() { g_enabled.store(false, std::memory_order_relaxed); }

void Trace::init_from_env() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* env = std::getenv("RELM_TRACE");
    const char* jsonl = std::getenv("RELM_TRACE_JSONL");
    const bool chrome_on = env && *env && std::string(env) != "0";
    const bool jsonl_on = jsonl && *jsonl && std::string(jsonl) != "0";
    if (!chrome_on && !jsonl_on) return;
    TraceState& s = state();
    {
      util::ScopedLock lock(s.mutex);
      if (chrome_on) {
        std::string path = env;
        if (path == "1" || path == "true") path = "relm_trace.json";
        s.atexit_chrome_path = path;
      }
      if (jsonl_on) s.atexit_jsonl_path = jsonl;
    }
    std::atexit(atexit_flush);
    start();
  });
}

void Trace::record(const char* name, double ts_us, double dur_us) {
  ThreadBuffer& buffer = local_buffer();
  util::ScopedLock lock(buffer.mutex);
  buffer.events.push_back(TraceEvent{name, ts_us, dur_us});
}

std::size_t Trace::event_count() {
  TraceState& s = state();
  util::ScopedLock lock(s.mutex);
  std::size_t n = 0;
  for (const auto& buffer : s.buffers) {
    util::ScopedLock buffer_lock(buffer->mutex);
    n += buffer->events.size();
  }
  return n;
}

void Trace::write_chrome_trace(std::ostream& out) {
  TraceState& s = state();
  util::ScopedLock lock(s.mutex);
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  char buf[256];
  for (const auto& buffer : s.buffers) {
    util::ScopedLock buffer_lock(buffer->mutex);
    for (const TraceEvent& e : buffer->events) {
      std::snprintf(buf, sizeof(buf),
                    "%s{\"name\":\"%s\",\"cat\":\"relm\",\"ph\":\"X\","
                    "\"pid\":1,\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f}",
                    first ? "" : ",", e.name, buffer->tid, e.ts_us, e.dur_us);
      out << buf;
      first = false;
    }
  }
  out << "]}\n";
}

void Trace::write_jsonl(std::ostream& out) {
  TraceState& s = state();
  util::ScopedLock lock(s.mutex);
  char buf[256];
  for (const auto& buffer : s.buffers) {
    util::ScopedLock buffer_lock(buffer->mutex);
    for (const TraceEvent& e : buffer->events) {
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"%s\",\"tid\":%u,\"ts_us\":%.3f,"
                    "\"dur_us\":%.3f}\n",
                    e.name, buffer->tid, e.ts_us, e.dur_us);
      out << buf;
    }
  }
}

void Trace::write_chrome_trace_file(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "relm: cannot write trace to %s\n", path.c_str());
    return;
  }
  write_chrome_trace(out);
}

void Trace::write_jsonl_file(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "relm: cannot write trace to %s\n", path.c_str());
    return;
  }
  write_jsonl(out);
}

void Span::finish() {
  const double end_us = Trace::now_us();
  const double dur_us = end_us - start_us_;
  Trace::record(name_, start_us_, dur_us);
  span_histogram(name_).observe(dur_us * 1e-6);
}

namespace {

// Any binary linking relm_obs honors RELM_TRACE without further wiring.
struct EnvInit {
  EnvInit() { Trace::init_from_env(); }
} g_env_init;

}  // namespace

}  // namespace relm::obs
