#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

namespace relm::obs {

// Process-wide metrics registry: named counters, gauges, and fixed-bucket
// histograms. The write path is lock-free — each metric holds a small array
// of cache-line-padded stripes and a thread adds to the stripe picked by its
// thread-local index, so concurrent writers from the ThreadPool never
// contend on one cache line. Readers fold the stripes on snapshot(); the
// folded value is exact once writers have quiesced (e.g. after a
// parallel_for join) and monotone-approximate while they run.
//
// Handles returned by Registry are valid for the life of the process;
// hot call sites cache them in a function-local static:
//
//   static obs::Counter& hits = obs::Registry::instance().counter("x.hits");
//   hits.add();
//
// Metric names form a dot-separated catalogue (docs/OBSERVABILITY.md).

namespace detail {

inline constexpr std::size_t kStripes = 16;

// Index of the calling thread's stripe, assigned round-robin on first use.
std::size_t stripe_index();

// C++20 atomic<double>::fetch_add is not yet universal; CAS-add works
// everywhere and the loop is uncontended by construction (striped writers).
inline void atomic_add(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

struct alignas(64) PaddedU64 {
  std::atomic<std::uint64_t> value{0};
};

struct alignas(64) PaddedF64 {
  std::atomic<double> value{0.0};
};

}  // namespace detail

class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    stripes_[detail::stripe_index()].value.fetch_add(delta,
                                                     std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& s : stripes_) total += s.value.load(std::memory_order_relaxed);
    return total;
  }
  void reset() noexcept {
    for (auto& s : stripes_) s.value.store(0, std::memory_order_relaxed);
  }

 private:
  detail::PaddedU64 stripes_[detail::kStripes];
};

// Last-write-wins instantaneous value (pool sizes, cache entry counts).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) noexcept { detail::atomic_add(value_, delta); }
  double value() const noexcept { return value_.load(std::memory_order_relaxed); }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

// Fixed-boundary histogram: bucket i counts observations <= bounds[i], with
// one implicit overflow bucket. Also tracks count and sum, so snapshots can
// report rates and means. Boundaries are fixed at construction; the write
// path is one bucket search plus two striped adds.
class Histogram {
 public:
  // Default boundaries suit latencies in seconds: ~1us to ~17s, x4 steps.
  static std::span<const double> default_latency_bounds();
  // Boundaries for size-ish distributions: 1, 2, 4, ... 4096.
  static std::span<const double> default_size_bounds();

  explicit Histogram(std::span<const double> bounds);

  void observe(double v) noexcept;

  std::span<const double> bounds() const { return bounds_; }
  // Folded per-bucket counts; the last entry is the overflow bucket, so the
  // result has bounds().size() + 1 entries.
  std::vector<std::uint64_t> bucket_counts() const;
  std::uint64_t count() const;
  double sum() const;
  double mean() const {
    const std::uint64_t n = count();
    return n ? sum() / static_cast<double>(n) : 0.0;
  }
  void reset() noexcept;

 private:
  struct alignas(64) Stripe {
    std::vector<std::atomic<std::uint64_t>> buckets;
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
  };

  std::vector<double> bounds_;
  std::vector<Stripe> stripes_;
};

// One folded metric value, as reported by Registry::snapshot().
struct MetricValue {
  enum class Kind { kCounter, kGauge, kHistogram };
  Kind kind = Kind::kCounter;
  std::uint64_t counter = 0;  // kCounter
  double gauge = 0.0;         // kGauge
  // kHistogram: bucket upper bounds (+inf implicit) and folded counts.
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;
  std::uint64_t count = 0;
  double sum = 0.0;
};

struct Snapshot {
  std::map<std::string, MetricValue> metrics;  // sorted for stable output

  // Compact single-line JSON object:
  //   {"counters":{...},"gauges":{...},"histograms":{"name":
  //    {"count":N,"sum":S,"mean":M,"buckets":[[le,count],...]}}}
  std::string to_json() const;
};

class Registry {
 public:
  static Registry& instance();

  // Returns the metric registered under `name`, creating it on first use.
  // Requesting an existing name with a different metric kind throws
  // std::logic_error (a programming bug, not a runtime condition).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(
      std::string_view name,
      std::span<const double> bounds = Histogram::default_latency_bounds());

  Snapshot snapshot() const;

  // Zeroes every registered metric (handles stay valid). For tests and
  // benchmark warmup isolation.
  void reset();

 private:
  Registry() = default;
  struct Impl;
  Impl& impl() const;
};

}  // namespace relm::obs
