#pragma once

#include <cstdint>

#include "testing/differential.hpp"

namespace relm::testing {

// Greedy failing-case minimizer.
//
// Given a trial that fails, repeatedly tries smaller candidates — simplified
// query parameters, a uniform model, a pruned vocabulary, reduced regex ASTs
// — and keeps any candidate that still fails with the SAME failure kind
// (TrialReport::failure_kind), so minimization cannot drift onto an
// unrelated bug. Candidates are ordered most-aggressive-first (replace a
// subtree by epsilon before trimming a repeat bound), which converges in few
// trials on typical executor bugs: the mutation self-test in
// tests/test_testing.cpp requires the final regex to be <= 3 AST nodes.

struct ShrinkResult {
  TrialCase best;            // smallest same-kind-failing case found
  TrialReport report;        // its failure report
  std::size_t trials = 0;    // run_trial invocations spent
  bool changed = false;      // best differs from the input case
};

// `max_trials` bounds the total run_trial calls (the input case's own
// verification run included). If the input does not fail, returns it
// unchanged with its passing report.
ShrinkResult shrink_case(const TrialCase& failing,
                         const DifferentialOptions& options,
                         std::size_t max_trials = 400);

}  // namespace relm::testing
