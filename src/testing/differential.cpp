#include "testing/differential.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "automata/regex.hpp"
#include "core/executor.hpp"
#include "core/generate/generate_engine.hpp"
#include "core/pipeline/cache.hpp"
#include "model/ngram_model.hpp"
#include "util/errors.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace relm::testing {

using core::BeamSearch;
using core::CompiledQuery;
using core::RandomSampler;
using core::SearchResult;
using core::ShortestPathSearch;
using core::SimpleSearchQuery;
using model::LanguageModel;
using tokenizer::BpeTokenizer;

namespace {

// Everything one configuration produces. Only (tokens, text, log_prob) are
// compared; the timing/attribution fields legitimately differ per run.
struct ExecutorOutputs {
  std::vector<SearchResult> shortest1;  // expansion_batch_size = 1 (ordered)
  std::vector<SearchResult> shortest3;  // expansion_batch_size = 3 (batched)
  std::vector<SearchResult> beam;
  std::vector<SearchResult> samples;
};

ExecutorOutputs run_executors(const LanguageModel& model,
                              const CompiledQuery& compiled,
                              const SimpleSearchQuery& base,
                              std::uint64_t sampler_seed) {
  ExecutorOutputs out;
  {
    // Pinned to the lockstep path: this is the strict-Dijkstra comparison
    // target the async pipeline (Configuration F) must reproduce bytewise.
    SimpleSearchQuery q = base;
    q.expansion_batch_size = 1;
    q.speculative_expansion = false;
    ShortestPathSearch search(model, compiled, q);
    out.shortest1 = search.all();
  }
  {
    SimpleSearchQuery q = base;
    q.expansion_batch_size = 3;
    q.speculative_expansion = false;
    ShortestPathSearch search(model, compiled, q);
    out.shortest3 = search.all();
  }
  {
    BeamSearch beam(model, compiled, base);
    out.beam = beam.run();
  }
  {
    RandomSampler sampler(model, compiled, base, sampler_seed);
    out.samples = sampler.sample_all();
  }
  return out;
}

// Byte-identical comparison across cache configurations: the caches replay
// stored vectors and the artifact roundtrip reloads identical automata, so
// every double must match EXACTLY — tolerance here would mask a cache that
// recomputes instead of replaying.
std::optional<std::string> diff_exact(const std::vector<SearchResult>& a,
                                      const std::vector<SearchResult>& b,
                                      const char* what) {
  auto describe = [&](std::size_t i) {
    std::ostringstream err;
    err << what << " diverges across cache configurations at index " << i;
    if (i < a.size() && i < b.size()) {
      err << ": \"" << a[i].text << "\" (log_prob " << a[i].log_prob
          << ") vs \"" << b[i].text << "\" (log_prob " << b[i].log_prob << ")";
    } else {
      err << ": length " << a.size() << " vs " << b.size();
    }
    return err.str();
  };
  if (a.size() != b.size()) return describe(std::min(a.size(), b.size()));
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].tokens != b[i].tokens || a[i].text != b[i].text ||
        a[i].log_prob != b[i].log_prob) {
      return describe(i);
    }
  }
  return std::nullopt;
}

void apply_mutation(std::vector<SearchResult>& results, Mutation mutation) {
  switch (mutation) {
    case Mutation::kNone:
      return;
    case Mutation::kDropResult:
      if (!results.empty()) results.pop_back();
      return;
    case Mutation::kPerturbLogProb:
      if (!results.empty()) results.front().log_prob += 1e-6;
      return;
    case Mutation::kSwapOrder:
      if (results.size() >= 2) std::swap(results[0], results[1]);
      return;
    case Mutation::kDuplicateResult:
      if (!results.empty()) results.push_back(results.front());
      return;
  }
}

}  // namespace

TrialReport run_trial(const TrialCase& trial,
                      const DifferentialOptions& options) {
  TrialReport report;
  auto fail = [&](std::string kind, std::string detail) {
    report.status = TrialReport::Status::kFail;
    report.failure_kind = std::move(kind);
    report.detail = std::move(detail);
    return report;
  };

  try {
    BpeTokenizer tok = BpeTokenizer::from_vocab(trial.vocab);
    std::shared_ptr<LanguageModel> base_model = trial.model.build();
    SimpleSearchQuery query = trial.query();
    query.num_samples = options.num_samples;

    // Fresh compile, no cache anywhere (nullptr = compile-through only).
    auto artifact = core::pipeline::compile_cached(query, tok, nullptr);
    CompiledQuery compiled = CompiledQuery::from_artifact(artifact, tok);

    Oracle oracle = build_oracle(*base_model, compiled, query, options.oracle);
    report.language_size = oracle.by_text.size();
    report.oracle_nodes = oracle.nodes_explored;
    report.max_width = oracle.max_width;
    if (oracle.truncated) {
      report.status = TrialReport::Status::kSkip;
      report.detail = "oracle truncated (language too large to enumerate)";
      return report;
    }

    // Budgets sized from ground truth so no executor limit bites: every
    // executor must exhaust the language, and the beam is wide enough to be
    // exact (beam_width >= the oracle's max frontier width).
    query.max_results = oracle.by_text.size() + 8;
    query.max_expansions = oracle.nodes_explored * 4 + 64;
    query.beam_width = std::max<std::size_t>(oracle.max_width, 1);

    // Configuration A: plain (the oracle's comparison target).
    ExecutorOutputs plain =
        run_executors(*base_model, compiled, query, trial.sampler_seed);

    // Compares another configuration's outputs against plain, filling the
    // report on the first divergence.
    auto check_config = [&](const ExecutorOutputs& out,
                            const char* config) -> bool {
      for (auto [got, want, what] :
           {std::tuple{&out.shortest1, &plain.shortest1, "shortest1"},
            std::tuple{&out.shortest3, &plain.shortest3, "shortest3"},
            std::tuple{&out.beam, &plain.beam, "beam"},
            std::tuple{&out.samples, &plain.samples, "samples"}}) {
        if (auto diff = diff_exact(*got, *want, what)) {
          fail(std::string("config:") + what,
               std::string(config) + ": " + *diff);
          return false;
        }
      }
      return true;
    };

    // Configuration B: logit cache between the executors and the model.
    {
      model::CachingModel cached(base_model, /*capacity=*/1 << 12);
      ExecutorOutputs out =
          run_executors(cached, compiled, query, trial.sampler_seed);
      if (!check_config(out, "logit-cache")) return report;
    }

    // Configuration C: second compile through a warm artifact cache. The
    // cached artifact must drive executors to byte-identical output.
    {
      core::pipeline::ArtifactCache cache({/*capacity=*/16, /*disk_dir=*/""});
      (void)core::pipeline::compile_cached(query, tok, &cache);   // cold
      auto warm = core::pipeline::compile_cached(query, tok, &cache);
      CompiledQuery recompiled = CompiledQuery::from_artifact(warm, tok);
      ExecutorOutputs out =
          run_executors(*base_model, recompiled, query, trial.sampler_seed);
      if (!check_config(out, "compile-cache")) return report;
    }

    // Configuration D: artifact serialized and reloaded, plus the logit
    // cache — the belt-and-braces stack a real deployment runs with.
    {
      std::ostringstream sink;
      core::pipeline::save_artifact(*artifact, sink);
      std::istringstream source(sink.str());
      auto reloaded = std::make_shared<core::pipeline::QueryArtifact>(
          core::pipeline::load_artifact(source));
      CompiledQuery rebound = CompiledQuery::from_artifact(reloaded, tok);
      model::CachingModel cached(base_model, /*capacity=*/1 << 12);
      ExecutorOutputs out =
          run_executors(cached, rebound, query, trial.sampler_seed);
      if (!check_config(out, "artifact-io")) return report;
    }

    // Configuration E: token-mask fast path disabled. Plain runs with the
    // precompiled per-state bitmasks (the default); this run takes the
    // per-edge probe path instead. Any divergence means the mask-and-scan
    // expansion is not a faithful replacement for edge probing.
    {
      SimpleSearchQuery no_masks = query;
      no_masks.use_token_masks = false;
      ExecutorOutputs out =
          run_executors(*base_model, compiled, no_masks, trial.sampler_seed);
      if (!check_config(out, "masks-off")) return report;
    }

    // Configuration F: the async pipeline (speculative expansion on) across
    // a shared-pool thread sweep. Pipeline scheduling is defined to be a
    // pure function of deterministic search state, so its output must be
    // byte-identical to the strict lockstep run at every thread count.
    {
      const std::size_t restore = util::ThreadPool::shared().threads();
      std::optional<std::string> diff;
      std::size_t bad_threads = 0;
      for (std::size_t threads : {std::size_t{1}, std::size_t{2},
                                  std::size_t{4}, std::size_t{8}}) {
        util::ThreadPool::set_shared_threads(threads);
        SimpleSearchQuery spec = query;
        spec.expansion_batch_size = 1;
        spec.speculative_expansion = true;
        ShortestPathSearch search(*base_model, compiled, spec);
        std::vector<SearchResult> got = search.all();
        diff = diff_exact(got, plain.shortest1, "pipeline");
        if (diff) {
          bad_threads = threads;
          break;
        }
      }
      util::ThreadPool::set_shared_threads(restore);
      if (diff) {
        return fail("config:pipeline",
                    "pipeline threads=" + std::to_string(bad_threads) + ": " +
                        *diff);
      }
    }

    // Configuration G: one-pass difference automaton. The query becomes
    // `prefix((body)-(body_b))` — a single compiled product automaton — and
    // must produce exactly the strings the two-pass flow yields: run the
    // plain query, then drop every result whose body text body_b accepts.
    // Deterministic executors are compared result-for-result after a
    // probability-major sort (the two automata may tie-break equal-probability
    // strings differently); the sampler, whose draw sequence legitimately
    // depends on automaton shape, is validated by set membership instead.
    if (!trial.body_b.empty()) {
      SimpleSearchQuery one_pass_query = query;
      one_pass_query.query_string.query_str =
          trial.prefix + "((" + trial.body + ")-(" + trial.body_b + "))";
      auto one_artifact =
          core::pipeline::compile_cached(one_pass_query, tok, nullptr);
      CompiledQuery one_compiled =
          CompiledQuery::from_artifact(one_artifact, tok);
      ExecutorOutputs one_pass = run_executors(
          *base_model, one_compiled, one_pass_query, trial.sampler_seed);

      automata::Dfa a_chars = automata::compile_regex(trial.body);
      automata::Dfa b_chars = automata::compile_regex(trial.body_b);
      auto body_text = [&](const SearchResult& r) {
        return r.text.substr(trial.prefix.size());
      };
      auto two_pass_filter = [&](const std::vector<SearchResult>& in) {
        std::vector<SearchResult> out;
        for (const SearchResult& r : in) {
          if (!b_chars.accepts_bytes(body_text(r))) out.push_back(r);
        }
        return out;
      };
      auto canonical_order = [](std::vector<SearchResult> results) {
        std::sort(results.begin(), results.end(),
                  [](const SearchResult& a, const SearchResult& b) {
                    if (a.log_prob != b.log_prob) return a.log_prob > b.log_prob;
                    if (a.text != b.text) return a.text < b.text;
                    return a.tokens < b.tokens;
                  });
        return results;
      };
      for (auto [got, reference, what] :
           {std::tuple{&one_pass.shortest1, &plain.shortest1, "shortest1"},
            std::tuple{&one_pass.shortest3, &plain.shortest3, "shortest3"},
            std::tuple{&one_pass.beam, &plain.beam, "beam"}}) {
        if (auto diff = diff_exact(canonical_order(*got),
                                   canonical_order(two_pass_filter(*reference)),
                                   what)) {
          return fail(std::string("difference:") + what,
                      "one-pass vs two-pass: " + *diff);
        }
      }
      for (const SearchResult& sample : one_pass.samples) {
        const std::string body = body_text(sample);
        if (!a_chars.accepts_bytes(body) || b_chars.accepts_bytes(body)) {
          return fail("difference:samples",
                      "one-pass sample \"" + sample.text +
                          "\" is outside L(A)-L(B)");
        }
      }
      // Thread sweep with masks on: the async pipeline over the difference
      // automaton must reproduce its own lockstep run bytewise.
      const std::size_t restore = util::ThreadPool::shared().threads();
      std::optional<std::string> diff;
      std::size_t bad_threads = 0;
      for (std::size_t threads :
           {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
        util::ThreadPool::set_shared_threads(threads);
        SimpleSearchQuery spec = one_pass_query;
        spec.expansion_batch_size = 1;
        spec.speculative_expansion = true;
        ShortestPathSearch search(*base_model, one_compiled, spec);
        std::vector<SearchResult> got = search.all();
        diff = diff_exact(got, one_pass.shortest1, "difference-pipeline");
        if (diff) {
          bad_threads = threads;
          break;
        }
      }
      util::ThreadPool::set_shared_threads(restore);
      if (diff) {
        return fail("difference:pipeline",
                    "difference pipeline threads=" +
                        std::to_string(bad_threads) + ": " + *diff);
      }
    }

    // Configuration H: batched multi-stream generation. Every stream of a
    // K-stream GenerateEngine must emit byte-identically to that stream run
    // alone in its own single-stream engine — the engine's core invariant:
    // batch composition, admission order, and thread count cannot leak into
    // any stream's output. The serial reference runs each stream solo at one
    // thread; the batched run admits all K in a shuffled order and sweeps
    // the shared pool across {1, 4, 8} threads.
    {
      using core::generate::GenerateEngine;
      using core::generate::StreamSpec;
      using core::generate::StreamState;

      constexpr std::size_t kStreams = 5;
      struct StreamOutput {
        StreamState state;
        std::vector<tokenizer::TokenId> tokens;
        std::string text;
        double log_prob = 0.0;
      };
      auto snapshot = [](const GenerateEngine& engine,
                         GenerateEngine::StreamId id) {
        StreamOutput out;
        out.state = engine.state(id);
        if (const auto& r = engine.result(id)) {
          out.tokens = r->tokens;
          out.text = r->text;
          out.log_prob = r->log_prob;
        }
        return out;
      };

      const std::size_t restore = util::ThreadPool::shared().threads();
      util::ThreadPool::set_shared_threads(1);
      std::vector<StreamOutput> serial;
      serial.reserve(kStreams);
      for (std::size_t i = 0; i < kStreams; ++i) {
        GenerateEngine engine(*base_model, compiled, query,
                              trial.sampler_seed);
        StreamSpec spec;
        spec.rng_stream = i;
        const GenerateEngine::StreamId id = engine.add_stream(spec);
        engine.run();
        serial.push_back(snapshot(engine, id));
      }

      util::Pcg32 admission_rng(trial.sampler_seed ^ util::StreamRng::kGolden);
      std::optional<std::string> diff;
      for (std::size_t threads :
           {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
        util::ThreadPool::set_shared_threads(threads);
        std::vector<std::size_t> order(kStreams);
        std::iota(order.begin(), order.end(), std::size_t{0});
        admission_rng.shuffle(order);
        GenerateEngine engine(*base_model, compiled, query,
                              trial.sampler_seed);
        std::vector<GenerateEngine::StreamId> id_of(kStreams);
        for (std::size_t stream : order) {
          StreamSpec spec;
          spec.rng_stream = stream;
          id_of[stream] = engine.add_stream(spec);
        }
        engine.run();
        for (std::size_t i = 0; i < kStreams; ++i) {
          const StreamOutput got = snapshot(engine, id_of[i]);
          const StreamOutput& want = serial[i];
          if (got.state != want.state || got.tokens != want.tokens ||
              got.text != want.text || got.log_prob != want.log_prob) {
            std::ostringstream err;
            err << "stream " << i << " threads=" << threads
                << " diverges from its solo run: batched ("
                << core::generate::to_string(got.state) << ", \"" << got.text
                << "\", log_prob " << got.log_prob << ") vs solo ("
                << core::generate::to_string(want.state) << ", \""
                << want.text << "\", log_prob " << want.log_prob << ")";
            diff = err.str();
            break;
          }
        }
        if (diff) break;
      }
      util::ThreadPool::set_shared_threads(restore);
      if (diff) return fail("config:generate", *diff);
    }

    // Oracle comparison (on the plain configuration, optionally mutated for
    // harness self-tests).
    apply_mutation(plain.shortest1, options.mutate);
    if (auto diff = compare_results(oracle, plain.shortest1, options.tolerance,
                                    /*check_order=*/true)) {
      return fail("oracle:shortest1", *diff);
    }
    if (auto diff = compare_results(oracle, plain.shortest3, options.tolerance,
                                    /*check_order=*/false)) {
      return fail("oracle:shortest3", *diff);
    }
    if (auto diff = compare_results(oracle, plain.beam, options.tolerance,
                                    /*check_order=*/true)) {
      return fail("oracle:beam", *diff);
    }
    if (auto diff = check_samples(*base_model, compiled, query, plain.samples,
                                  options.tolerance)) {
      return fail("oracle:samples", *diff);
    }
  } catch (const std::exception& e) {
    return fail("exception", e.what());
  }

  report.status = TrialReport::Status::kPass;
  return report;
}

}  // namespace relm::testing
