#include "testing/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>

#include "util/errors.hpp"

namespace relm::testing {

namespace {

[[noreturn]] void fail(const std::string& what, std::size_t pos) {
  throw relm::Error("json: " + what + " (at byte " + std::to_string(pos) + ")");
}

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20 || c >= 0x7f) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
}

class Reader {
 public:
  explicit Reader(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after document", pos_);
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input", pos_);
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "', got '" + peek() + "'", pos_);
    }
    ++pos_;
  }

  Json parse_value() {
    skip_ws();
    char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json::string(parse_string());
      case 't': parse_literal("true"); return Json::boolean(true);
      case 'f': parse_literal("false"); return Json::boolean(false);
      case 'n': parse_literal("null"); return Json::null();
      default: return parse_number();
    }
  }

  void parse_literal(const char* lit) {
    std::size_t len = std::strlen(lit);
    if (text_.substr(pos_, len) != lit) fail("invalid literal", pos_);
    pos_ += len;
  }

  Json parse_number() {
    std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    // RFC 8259: no leading zeros ("01" is two tokens, i.e. malformed here).
    if (pos_ + 1 < text_.size() && text_[pos_] == '0' &&
        text_[pos_ + 1] >= '0' && text_[pos_ + 1] <= '9') {
      fail("leading zero in number", start);
    }
    bool digits = false;
    bool integral = true;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        digits = true;
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (!digits) fail("invalid number", start);
    std::string lexeme(text_.substr(start, pos_ - start));
    if (integral) {
      errno = 0;
      char* end = nullptr;
      long long v = std::strtoll(lexeme.c_str(), &end, 10);
      if (errno == 0 && end && *end == '\0') {
        return Json::number(static_cast<std::int64_t>(v));
      }
    }
    errno = 0;
    char* end = nullptr;
    double d = std::strtod(lexeme.c_str(), &end);
    if (!end || *end != '\0') fail("invalid number '" + lexeme + "'", start);
    return Json::number(d);
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string", pos_);
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape", pos_);
        char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("truncated \\u escape", pos_);
            unsigned value = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              value <<= 4;
              if (h >= '0' && h <= '9') value |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') value |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') value |= static_cast<unsigned>(h - 'A' + 10);
              else fail("invalid \\u escape", pos_ - 1);
            }
            // The writer only emits \u00NN (single bytes); decode larger
            // code points as UTF-8 so foreign files still round-trip.
            if (value < 0x80) {
              out += static_cast<char>(value);
            } else if (value < 0x800) {
              out += static_cast<char>(0xc0 | (value >> 6));
              out += static_cast<char>(0x80 | (value & 0x3f));
            } else {
              out += static_cast<char>(0xe0 | (value >> 12));
              out += static_cast<char>(0x80 | ((value >> 6) & 0x3f));
              out += static_cast<char>(0x80 | (value & 0x3f));
            }
            break;
          }
          default: fail(std::string("invalid escape '\\") + e + "'", pos_ - 1);
        }
      } else {
        out += c;
      }
    }
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      char c = peek();
      if (c == ',') {
        ++pos_;
      } else if (c == ']') {
        ++pos_;
        return arr;
      } else {
        fail("expected ',' or ']'", pos_);
      }
    }
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      if (obj.has(key)) fail("duplicate key \"" + key + "\"", pos_);
      skip_ws();
      expect(':');
      obj.set(key, parse_value());
      skip_ws();
      char c = peek();
      if (c == ',') {
        ++pos_;
      } else if (c == '}') {
        ++pos_;
        return obj;
      } else {
        fail("expected ',' or '}'", pos_);
      }
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::null() { return Json(); }

Json Json::boolean(bool b) {
  Json j;
  j.kind_ = Kind::kBool;
  j.bool_ = b;
  return j;
}

Json Json::number(double d) {
  Json j;
  j.kind_ = Kind::kNumber;
  j.num_ = d;
  return j;
}

Json Json::number(std::int64_t i) {
  Json j;
  j.kind_ = Kind::kNumber;
  j.num_ = static_cast<double>(i);
  j.num_is_int_ = true;
  j.int_ = i;
  return j;
}

Json Json::string(std::string s) {
  Json j;
  j.kind_ = Kind::kString;
  j.str_ = std::move(s);
  return j;
}

Json Json::array(std::vector<Json> items) {
  Json j;
  j.kind_ = Kind::kArray;
  j.items_ = std::move(items);
  return j;
}

Json Json::object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

bool Json::as_bool() const {
  if (kind_ != Kind::kBool) throw relm::Error("json: not a boolean");
  return bool_;
}

double Json::as_double() const {
  if (kind_ != Kind::kNumber) throw relm::Error("json: not a number");
  return num_is_int_ ? static_cast<double>(int_) : num_;
}

std::int64_t Json::as_int() const {
  if (kind_ != Kind::kNumber) throw relm::Error("json: not a number");
  if (num_is_int_) return int_;
  double rounded = std::nearbyint(num_);
  if (rounded != num_) throw relm::Error("json: number is not an integer");
  return static_cast<std::int64_t>(rounded);
}

const std::string& Json::as_string() const {
  if (kind_ != Kind::kString) throw relm::Error("json: not a string");
  return str_;
}

const std::vector<Json>& Json::as_array() const {
  if (kind_ != Kind::kArray) throw relm::Error("json: not an array");
  return items_;
}

bool Json::has(const std::string& key) const { return get(key) != nullptr; }

const Json* Json::get(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    if (keys_[i] == key) return &values_[i];
  }
  return nullptr;
}

const Json& Json::at(const std::string& key) const {
  const Json* v = get(key);
  if (!v) throw relm::Error("json: missing key \"" + key + "\"");
  return *v;
}

void Json::push_back(Json value) {
  if (kind_ != Kind::kArray) throw relm::Error("json: push_back on non-array");
  items_.push_back(std::move(value));
}

void Json::set(const std::string& key, Json value) {
  if (kind_ != Kind::kObject) throw relm::Error("json: set on non-object");
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    if (keys_[i] == key) {
      values_[i] = std::move(value);
      return;
    }
  }
  keys_.push_back(key);
  values_.push_back(std::move(value));
}

void Json::dump_to(std::string& out, bool pretty, int indent) const {
  auto newline = [&](int level) {
    if (!pretty) return;
    out += '\n';
    out.append(static_cast<std::size_t>(level) * 2, ' ');
  };
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kNumber: {
      char buf[40];
      if (num_is_int_) {
        std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(int_));
      } else if (std::isfinite(num_)) {
        // %.17g is lossless for doubles; the parser's strtod restores the
        // identical bit pattern.
        std::snprintf(buf, sizeof buf, "%.17g", num_);
      } else {
        // JSON has no Inf/NaN; the repro schema never stores them, but be
        // defensive rather than emitting an unparseable token.
        std::snprintf(buf, sizeof buf, "null");
      }
      out += buf;
      break;
    }
    case Kind::kString: append_escaped(out, str_); break;
    case Kind::kArray: {
      if (items_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i) out += ',';
        newline(indent + 1);
        items_[i].dump_to(out, pretty, indent + 1);
      }
      newline(indent);
      out += ']';
      break;
    }
    case Kind::kObject: {
      if (keys_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < keys_.size(); ++i) {
        if (i) out += ',';
        newline(indent + 1);
        append_escaped(out, keys_[i]);
        out += pretty ? ": " : ":";
        values_[i].dump_to(out, pretty, indent + 1);
      }
      newline(indent);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(bool pretty) const {
  std::string out;
  dump_to(out, pretty, 0);
  if (pretty) out += '\n';
  return out;
}

Json Json::parse(std::string_view text) { return Reader(text).parse_document(); }

}  // namespace relm::testing
