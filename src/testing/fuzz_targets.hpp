#pragma once

#include <cstddef>
#include <cstdint>

namespace relm::testing {

// Structured fuzz entry points (libFuzzer signature: return 0, crash/abort
// on a bug). Each target feeds attacker-controlled bytes into one of the
// codebase's parse boundaries; the declared error type (relm::Error and
// subclasses) is the ONLY acceptable rejection path — any other exception,
// signal, or sanitizer report is a finding. See fuzz/ for the drivers (real
// libFuzzer under Clang, a seeded replay loop elsewhere) and docs/TESTING.md
// for how to run them.

// Regex dialect parser: parse; on success re-render via pattern_of and
// re-parse, which must succeed (renderer and parser must agree).
int fuzz_regex_parser(const std::uint8_t* data, std::size_t size);

// Hardened DFA deserializer (RELM_DFA v1). A successful load must satisfy
// the check_dfa structural invariants.
int fuzz_dfa_loader(const std::uint8_t* data, std::size_t size);

// Compiled-query artifact deserializer (RELM_ARTIFACT v1, the compile
// cache's disk format). A successful load must satisfy check_query_artifact.
int fuzz_artifact_loader(const std::uint8_t* data, std::size_t size);

// Boolean-algebra compiler: parse, then compile through the algebra
// product/subset construction under a small state budget (so adversarial
// complements terminate). On success with both evaluation modes inside the
// budget, the lazy and eager DFAs must be language-equivalent.
int fuzz_algebra_compile(const std::uint8_t* data, std::size_t size);

// Fuzz-repro JSON reader: strict Json::parse, then TrialCase::from_json on
// schema-tagged documents; a successfully loaded case must survive a
// serialize/parse round-trip.
int fuzz_repro_json(const std::uint8_t* data, std::size_t size);

}  // namespace relm::testing
