#include "testing/oracle.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <unordered_map>

#include "model/decoding.hpp"

namespace relm::testing {

using core::CompiledQuery;
using core::SearchResult;
using core::SimpleSearchQuery;
using model::LanguageModel;
using tokenizer::TokenId;

namespace {

// Full-context model evaluation with memoization. The executors trim
// contexts to the model's relevant suffix; the oracle deliberately does not,
// so a model whose relevant_context_length() over-promises shows up as a
// differential failure instead of being silently assumed correct.
class ScoringCache {
 public:
  explicit ScoringCache(const LanguageModel& model) : model_(model) {}

  const std::vector<double>& log_probs(const std::vector<TokenId>& context) {
    auto it = cache_.find(context);
    if (it != cache_.end()) return it->second;
    return cache_.emplace(context, model_.next_log_probs(context)).first->second;
  }

 private:
  const LanguageModel& model_;
  std::map<std::vector<TokenId>, std::vector<double>> cache_;
};

struct Walker {
  const LanguageModel& model;
  const CompiledQuery& compiled;
  const SimpleSearchQuery& query;
  const OracleConfig& config;
  ScoringCache scores;
  Oracle out;
  std::vector<std::size_t> width_at_depth;
  std::size_t seq_limit;

  Walker(const LanguageModel& m, const CompiledQuery& c,
         const SimpleSearchQuery& q, const OracleConfig& cfg)
      : model(m), compiled(c), query(q), config(cfg), scores(m) {
    seq_limit = std::min(q.sequence_length.value_or(m.max_sequence_length()),
                         m.max_sequence_length());
  }

  bool final_canonical_ok(const std::vector<TokenId>& tokens,
                          std::uint32_t body_len) {
    if (!compiled.dynamic_canonical()) return true;
    std::span<const TokenId> body(tokens.data() + (tokens.size() - body_len),
                                  body_len);
    std::string body_text = compiled.tokenizer().decode(body);
    std::vector<TokenId> canonical = compiled.tokenizer().encode(body_text);
    return canonical.size() == body.size() &&
           std::equal(canonical.begin(), canonical.end(), body.begin());
  }

  void record(const std::vector<TokenId>& tokens, double log_prob,
              std::uint32_t body_len) {
    if (!final_canonical_ok(tokens, body_len)) return;
    if (out.paths.size() >= config.max_paths) {
      out.truncated = true;
      return;
    }
    out.paths.push_back(OraclePath{tokens, compiled.tokenizer().decode(tokens),
                                   log_prob, body_len});
  }

  void visit(const CompiledQuery::StateSet& set, std::vector<TokenId>& tokens,
             double log_prob, std::uint32_t body_len) {
    if (out.truncated) return;
    if (++out.nodes_explored > config.max_nodes) {
      out.truncated = true;
      return;
    }
    const std::size_t depth = tokens.size();
    if (width_at_depth.size() <= depth) width_at_depth.resize(depth + 1, 0);
    ++width_at_depth[depth];

    const std::vector<double>& lp = scores.log_probs(tokens);
    util::TokenBitset mask;
    if (!query.decoding.unrestricted()) {
      mask = model::allowed_tokens(lp, query.decoding);
    }

    if (compiled.is_match(set)) {
      if (!query.require_eos) {
        record(tokens, log_prob, body_len);
      } else if (depth < seq_limit) {
        // EOS termination consumes one budget slot and must itself survive
        // the decoding rules (prefix bypass never applies to EOS).
        TokenId eos = model.eos();
        if (mask.empty() || mask[eos]) {
          record(tokens, log_prob + lp[eos], body_len);
        }
      }
    }

    if (depth >= seq_limit) return;
    for (const CompiledQuery::Step& step : compiled.expand(set)) {
      if (!step.prefix_only && !mask.empty() && !mask[step.token]) continue;
      if (compiled.dynamic_canonical() && step.body_advanced) {
        std::vector<TokenId> body;
        body.reserve(body_len + 1);
        for (std::size_t i = tokens.size() - body_len; i < tokens.size(); ++i) {
          body.push_back(tokens[i]);
        }
        body.push_back(step.token);
        std::string body_text = compiled.tokenizer().decode(body);
        if (!compiled.canonical_prefix_ok(body, body_text)) continue;
      }
      tokens.push_back(step.token);
      visit(step.next, tokens, log_prob + lp[step.token],
            step.body_advanced ? body_len + 1 : 0);
      tokens.pop_back();
      if (out.truncated) return;
    }
  }

  Oracle run() {
    std::vector<TokenId> tokens;
    visit(compiled.initial(), tokens, 0.0, 0);

    std::unordered_map<std::string, std::size_t> best;
    for (const OraclePath& path : out.paths) {
      auto [it, inserted] = best.emplace(path.text, &path - out.paths.data());
      if (!inserted && path.log_prob > out.paths[it->second].log_prob) {
        it->second = static_cast<std::size_t>(&path - out.paths.data());
      }
    }
    for (const auto& [text, idx] : best) out.by_text.push_back(out.paths[idx]);
    std::stable_sort(out.by_text.begin(), out.by_text.end(),
                     [](const OraclePath& a, const OraclePath& b) {
                       return a.log_prob > b.log_prob;
                     });
    for (std::size_t w : width_at_depth) out.max_width = std::max(out.max_width, w);
    return std::move(out);
  }
};

}  // namespace

std::optional<double> Oracle::log_prob_of(const std::string& text) const {
  for (const OraclePath& path : by_text) {
    if (path.text == text) return path.log_prob;
  }
  return std::nullopt;
}

Oracle build_oracle(const LanguageModel& model, const CompiledQuery& compiled,
                    const SimpleSearchQuery& query, const OracleConfig& config) {
  Walker walker(model, compiled, query, config);
  return walker.run();
}

std::optional<std::string> compare_results(
    const Oracle& oracle, const std::vector<SearchResult>& results,
    double tolerance, bool check_order) {
  std::ostringstream err;
  auto flush = [&]() -> std::optional<std::string> {
    std::string s = err.str();
    if (s.empty()) return std::nullopt;
    return s;
  };

  std::unordered_map<std::string, const OraclePath*> expected;
  for (const OraclePath& path : oracle.by_text) expected[path.text] = &path;

  std::unordered_map<std::string, std::size_t> seen;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const SearchResult& r = results[i];
    if (!seen.emplace(r.text, i).second) {
      err << "duplicate text emitted at rank " << i << ": \"" << r.text << "\"\n";
      continue;
    }
    auto it = expected.find(r.text);
    if (it == expected.end()) {
      err << "result not in oracle language at rank " << i << ": \"" << r.text
          << "\" (log_prob " << r.log_prob << ")\n";
      continue;
    }
    const OraclePath& want = *it->second;
    if (std::abs(r.log_prob - want.log_prob) > tolerance) {
      err << "log_prob mismatch for \"" << r.text << "\": executor "
          << r.log_prob << " vs oracle " << want.log_prob << " (delta "
          << (r.log_prob - want.log_prob) << ")\n";
    }
    // The emitted token path must be a genuine argmax witness: some oracle
    // path with exactly these tokens, at the text's best log-prob.
    bool witness = false;
    for (const OraclePath& path : oracle.paths) {
      if (path.text == r.text && path.tokens == r.tokens &&
          std::abs(path.log_prob - want.log_prob) <= tolerance) {
        witness = true;
        break;
      }
    }
    if (!witness) {
      err << "token path for \"" << r.text
          << "\" is not a most-probable encoding witness\n";
    }
  }

  if (results.size() != oracle.by_text.size()) {
    err << "result count mismatch: executor " << results.size() << " vs oracle "
        << oracle.by_text.size() << "\n";
    for (const OraclePath& path : oracle.by_text) {
      if (!seen.count(path.text)) {
        err << "  missing from executor: \"" << path.text << "\" (log_prob "
            << path.log_prob << ")\n";
      }
    }
  }

  if (check_order) {
    for (std::size_t i = 1; i < results.size(); ++i) {
      if (results[i].log_prob > results[i - 1].log_prob + tolerance) {
        err << "emission order violated at rank " << i << ": \""
            << results[i].text << "\" (" << results[i].log_prob
            << ") after \"" << results[i - 1].text << "\" ("
            << results[i - 1].log_prob << ")\n";
      }
    }
  }
  return flush();
}

std::optional<std::string> check_samples(
    const LanguageModel& model, const CompiledQuery& compiled,
    const SimpleSearchQuery& query, const std::vector<SearchResult>& samples,
    double tolerance) {
  ScoringCache scores(model);
  const std::size_t seq_limit =
      std::min(query.sequence_length.value_or(model.max_sequence_length()),
               model.max_sequence_length());
  const automata::Dfa& prefix = compiled.prefix_automaton();
  const automata::Dfa& body = compiled.body_automaton();
  std::ostringstream err;

  auto prefix_accepts = [&](std::span<const TokenId> tokens) {
    automata::StateId s = prefix.start();
    for (TokenId t : tokens) {
      s = prefix.next(s, t);
      if (s == automata::kNoState) return false;
    }
    return prefix.is_final(s);
  };

  for (std::size_t n = 0; n < samples.size(); ++n) {
    const SearchResult& sample = samples[n];
    if (compiled.tokenizer().decode(sample.tokens) != sample.text) {
      err << "sample " << n << ": text does not match decoded tokens\n";
      continue;
    }
    if (sample.tokens.size() > seq_limit) {
      err << "sample " << n << ": exceeds the sequence budget\n";
      continue;
    }
    const std::size_t len = sample.tokens.size();
    bool member = false;
    bool lp_match = false;
    for (std::size_t split = 0; split <= len && !lp_match; ++split) {
      std::span<const TokenId> pre(sample.tokens.data(), split);
      if (!prefix_accepts(pre)) continue;

      // Walk the body machine over the remainder, replaying the decoding
      // mask at every step on the full context.
      automata::StateId s = body.start();
      double lp_body = 0.0;
      bool ok = true;
      std::vector<TokenId> context(pre.begin(), pre.end());
      for (std::size_t i = split; i < len; ++i) {
        TokenId t = sample.tokens[i];
        automata::StateId next = body.next(s, t);
        if (next == automata::kNoState) {
          ok = false;
          break;
        }
        const std::vector<double>& lp = scores.log_probs(context);
        if (!query.decoding.unrestricted()) {
          if (!model::token_allowed(lp, query.decoding, t)) {
            ok = false;
            break;
          }
        }
        lp_body += lp[t];
        context.push_back(t);
        s = next;
      }
      if (!ok || !body.is_final(s)) continue;
      member = true;

      // Termination factor, replicating the sampler's stop semantics: a
      // terminated (require_eos) sample always pays p(EOS | string) and
      // needs a free budget slot; otherwise EOS is paid only when stopping
      // was ambiguous (the stop state still had outgoing body edges).
      double factor = 0.0;
      bool stop_ok = true;
      bool ambiguous = !body.edges(s).empty();
      if (query.require_eos || ambiguous) {
        if (len >= seq_limit && query.require_eos) {
          stop_ok = false;
        } else if (len >= seq_limit) {
          factor = 0.0;  // budget exhausted at a final state: forced stop
        } else {
          const std::vector<double>& lp = scores.log_probs(context);
          TokenId eos = model.eos();
          if (!query.decoding.unrestricted() &&
              !model::token_allowed(lp, query.decoding, eos)) {
            stop_ok = false;
          } else {
            factor = lp[eos];
          }
        }
      }
      if (!stop_ok) continue;
      if (std::abs(sample.log_prob - (lp_body + factor)) <= tolerance) {
        lp_match = true;
      }
    }
    if (!member) {
      err << "sample " << n << ": \"" << sample.text
          << "\" is not in the query language (no admissible prefix/body "
             "split)\n";
    } else if (!lp_match) {
      err << "sample " << n << ": \"" << sample.text << "\" log_prob "
          << sample.log_prob
          << " does not match the exact conditional for any split\n";
    }
  }
  std::string s = err.str();
  if (s.empty()) return std::nullopt;
  return s;
}

}  // namespace relm::testing
