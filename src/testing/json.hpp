#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace relm::testing {

// Minimal JSON document model for the fuzz-repro files (fuzz-repro-<seed>.json).
//
// This is deliberately not a general-purpose JSON library: it supports
// exactly the subset the differential harness writes — objects, arrays,
// strings, doubles, integers, booleans, null — with strict parsing (trailing
// garbage, duplicate keys, unterminated strings and malformed escapes are
// errors, thrown as relm::Error). Numbers round-trip losslessly for the
// integer-valued fields the repro schema uses (seeds, token ids, counts) and
// via shortest-round-trip formatting for doubles. The obs registry has a
// JSON *writer*; this adds the reader the replay path needs without pulling
// in an external dependency.
class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : kind_(Kind::kNull) {}
  static Json null();
  static Json boolean(bool b);
  static Json number(double d);
  static Json number(std::int64_t i);
  static Json number(std::uint64_t u) { return number(static_cast<std::int64_t>(u)); }
  static Json string(std::string s);
  static Json array(std::vector<Json> items = {});
  static Json object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }

  // Typed accessors. Throw relm::Error on a kind mismatch, so a malformed
  // repro file fails with a diagnostic instead of reading garbage.
  bool as_bool() const;
  double as_double() const;
  std::int64_t as_int() const;        // requires an integer-valued number
  const std::string& as_string() const;
  const std::vector<Json>& as_array() const;

  // Object access. `get` returns nullptr when the key is absent; `at` throws.
  bool has(const std::string& key) const;
  const Json* get(const std::string& key) const;
  const Json& at(const std::string& key) const;

  // Mutation (building documents).
  void push_back(Json value);                      // arrays
  void set(const std::string& key, Json value);    // objects

  // Serialization. `pretty` indents nested structures two spaces per level.
  std::string dump(bool pretty = false) const;

  // Strict parse of a complete document. Throws relm::Error with the byte
  // offset of the first problem.
  static Json parse(std::string_view text);

 private:
  void dump_to(std::string& out, bool pretty, int indent) const;

  Kind kind_;
  bool bool_ = false;
  double num_ = 0;
  bool num_is_int_ = false;
  std::int64_t int_ = 0;
  std::string str_;
  std::vector<Json> items_;
  // Insertion-ordered object representation: keys_ and values_ are parallel.
  std::vector<std::string> keys_;
  std::vector<Json> values_;
};

}  // namespace relm::testing
