#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/compiled_query.hpp"
#include "core/executor.hpp"
#include "core/query.hpp"
#include "model/language_model.hpp"

namespace relm::testing {

// Brute-force ground truth for query execution (the differential oracle).
//
// Over a small vocabulary and a bounded sequence length, the query language
// is finite and can be enumerated exhaustively by walking the compiled token
// automaton (CompiledQuery::expand) depth-first, scoring every path with the
// model's exact log-probabilities on the FULL context — no suffix trimming,
// no caching, no batching, no priority queue. Every fast path the executors
// use (relevant-suffix contexts, the sharded logit LRU, frontier batching,
// the compile cache) is therefore absent here by construction, which is what
// makes agreement meaningful: the oracle and an executor share only the
// compiled automaton and the model itself.
//
// Semantics replicated exactly (see docs/TESTING.md for the contract):
//   - decoding rules mask body transitions per step; prefix-only edges
//     bypass the mask but carry true costs;
//   - require_eos appends p(EOS | string) and consumes one budget slot, so a
//     match whose path already fills the sequence budget cannot terminate;
//   - dynamic-canonical queries prune settled deviations incrementally and
//     re-check the completed body against the canonical encoding;
//   - matches are deduplicated by decoded text keeping the most probable
//     token path (what the shortest-path traversal's first-pop-wins gives).
//
// Cost is O(paths): exponential in the worst case. The node cap turns a
// blow-up into `truncated = true` (the trial is skipped, never trusted).

struct OraclePath {
  std::vector<tokenizer::TokenId> tokens;  // full token path, EOS excluded
  std::string text;
  double log_prob;        // full-path log p, EOS included when require_eos
  std::uint32_t body_len; // trailing tokens consumed by the body machine
};

struct OracleConfig {
  std::size_t max_nodes = 200000;  // DFS nodes before giving up (truncated)
  std::size_t max_paths = 20000;   // accepted paths before giving up
};

struct Oracle {
  std::vector<OraclePath> paths;    // every accepted token path
  std::vector<OraclePath> by_text;  // text-deduped (max log_prob), sorted
                                    // by log_prob descending
  // Maximum number of live partial paths at any depth. A BeamSearch with
  // beam_width >= max_width never truncates, making it exact.
  std::size_t max_width = 0;
  std::size_t nodes_explored = 0;
  bool truncated = false;

  // Max log_prob for a decoded text, if the text is in the language.
  std::optional<double> log_prob_of(const std::string& text) const;
};

Oracle build_oracle(const model::LanguageModel& model,
                    const core::CompiledQuery& compiled,
                    const core::SimpleSearchQuery& query,
                    const OracleConfig& config = {});

// Verifies a shortest-path or (exact-width) beam result list against the
// oracle: set-completeness, per-result log-prob equality within `tolerance`,
// token paths that are genuine argmax witnesses, and — when `check_order` —
// non-increasing emission order. Returns a multi-line mismatch description,
// or nullopt when everything agrees.
std::optional<std::string> compare_results(
    const Oracle& oracle, const std::vector<core::SearchResult>& results,
    double tolerance, bool check_order);

// Verifies sampler output against exact conditionals: every sample must be a
// member of the query language (witnessed by some prefix/body split of its
// token path admissible under the decoding rules), and its log_prob must
// equal the model's exact body-given-prefix log-probability for one such
// split. Returns a mismatch description or nullopt.
std::optional<std::string> check_samples(
    const model::LanguageModel& model, const core::CompiledQuery& compiled,
    const core::SimpleSearchQuery& query,
    const std::vector<core::SearchResult>& samples, double tolerance);

}  // namespace relm::testing
