#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "automata/regex_ast.hpp"
#include "core/query.hpp"
#include "model/language_model.hpp"
#include "testing/json.hpp"
#include "tokenizer/bpe.hpp"
#include "util/rng.hpp"

namespace relm::testing {

// Generative harness: seeded random regexes, vocabularies, model configs and
// complete trial cases for the differential fuzzer.
//
// Everything here is a pure function of a Pcg32 stream, so a failing trial is
// identified by its seed alone; the repro file (TrialCase::to_json) addition-
// ally pins the fully expanded case so replay does not depend on generator
// code staying frozen across revisions.

// ---------------------------------------------------------------------------
// Random regex ASTs

struct RegexGenConfig {
  std::string alphabet = "abcd";  // chars drawn for literals / classes
  int max_depth = 4;              // nesting bound; depth 0 forces a leaf
  int max_repeat = 2;             // repeat bounds stay small: min in [0,2],
                                  // max = min + [0,2] (or unbounded)
  double unbounded_prob = 0.15;   // chance a repeat becomes r{min,}
  // Weight of each boolean-algebra bucket (intersect / complement /
  // difference) relative to concat's 4. 0 disables the algebra buckets and
  // restores the pre-algebra generator draw-for-draw.
  double algebra_weight = 1.0;
};

// Draws a valid AST: never kEmptySet, repeat bounds always satisfiable, every
// char class non-empty and drawn from `alphabet`. The weighting favours small
// shapes so most cases compile into automata an oracle can enumerate.
automata::RegexPtr random_regex(util::Pcg32& rng, const RegexGenConfig& config);

// Total AST nodes (the shrinker's progress measure and the "<= 3 node"
// acceptance bound for minimized repros).
std::size_t node_count(const automata::RegexNode& node);

// Renders an AST in this repository's regex dialect such that
// parse_regex(pattern_of(n)) accepts and describes the same language.
// Epsilon prints as "()"; kEmptySet has no dialect syntax and throws
// relm::Error (generators never produce it).
std::string pattern_of(const automata::RegexNode& node);

// ---------------------------------------------------------------------------
// Random vocabularies

struct VocabGenConfig {
  std::string alphabet = "abcd";
  std::size_t max_merged = 6;   // multi-char tokens beyond the base alphabet
  std::size_t max_token_len = 3;
};

// Token list acceptable to BpeTokenizer::from_vocab: exactly one "" entry
// (EOS) first, every single alphabet char (so all generated regexes stay
// encodable), plus up to max_merged random multi-char strings, deduplicated.
std::vector<std::string> random_vocab(util::Pcg32& rng,
                                      const VocabGenConfig& config);

// ---------------------------------------------------------------------------
// Model specifications (replayable: build() retrains deterministically)

struct ModelSpec {
  enum class Kind { kUniform, kNgram, kMlp };

  Kind kind = Kind::kUniform;
  std::size_t vocab_size = 0;
  tokenizer::TokenId eos = 0;
  std::size_t max_sequence_length = 24;

  // kNgram
  std::size_t ngram_order = 3;
  double ngram_alpha = 0.3;

  // kMlp
  std::size_t mlp_context = 3;
  std::size_t mlp_embedding = 8;
  std::size_t mlp_hidden = 16;
  std::size_t mlp_epochs = 2;
  std::uint64_t mlp_seed = 13;

  // Training documents (token ids, EOS excluded; trainers add the wrapping).
  std::vector<std::vector<tokenizer::TokenId>> sequences;

  std::shared_ptr<model::LanguageModel> build() const;

  Json to_json() const;
  static ModelSpec from_json(const Json& j);
};

// Draws a spec for the given vocabulary: random kind, random hyperparameters
// in small ranges, random training corpus over the full token id space.
ModelSpec random_model_spec(util::Pcg32& rng, std::size_t vocab_size,
                            tokenizer::TokenId eos);

// ---------------------------------------------------------------------------
// Complete trial cases

struct TrialCase {
  std::uint64_t seed = 0;            // generator seed (provenance only)
  std::vector<std::string> vocab;    // BpeTokenizer::from_vocab input
  ModelSpec model;
  std::string prefix;                // literal prefix pattern (may be empty)
  std::string body;                  // body pattern (dialect syntax)
  // Non-empty enables the difference configuration (G): the one-pass query
  // `prefix((body)-(body_b))` is compared against running `prefix(body)` and
  // filtering the results through body_b's character DFA afterwards.
  std::string body_b;
  bool all_tokens = false;           // kAllTokens vs kCanonicalTokens
  bool require_eos = false;
  std::size_t top_k = 0;             // 0 = off
  double top_p = 1.0;
  double temperature = 1.0;
  std::size_t sequence_length = 8;
  std::size_t num_samples = 24;
  std::size_t expansion_batch = 1;
  std::uint64_t sampler_seed = 1;
  std::size_t canonical_enumeration_budget = 50000;

  // Assembles the SimpleSearchQuery this case describes (strategy left at
  // the default; the differential runner overrides it per executor).
  core::SimpleSearchQuery query() const;

  Json to_json() const;
  static TrialCase from_json(const Json& j);
};

struct GenConfig {
  RegexGenConfig regex;
  VocabGenConfig vocab;
  double difference_prob = 0.25;   // chance the trial carries a body_b
  double prefix_prob = 0.35;       // chance the query carries a literal prefix
  double all_tokens_prob = 0.3;
  double require_eos_prob = 0.35;
  double decoding_prob = 0.3;      // chance of a non-trivial top-k/top-p
  std::size_t min_seq_len = 3;
  std::size_t max_seq_len = 8;
};

// Fully expands a seed into a trial case. Distinct Pcg32 streams are used for
// the independent components so tweaking one generator does not reshuffle the
// others' draws for the same seed.
TrialCase generate_case(std::uint64_t seed, const GenConfig& config = {});

}  // namespace relm::testing
