#include "testing/shrink.hpp"

#include <algorithm>

#include "automata/regex_parser.hpp"

namespace relm::testing {

using automata::RegexKind;
using automata::RegexNode;
using automata::RegexPtr;
using tokenizer::TokenId;

namespace {

// All one-step reductions of an AST, most aggressive first. Every candidate
// is strictly smaller by node_count (or equal-size but structurally simpler,
// e.g. a narrowed char class), so greedy acceptance terminates.
std::vector<RegexPtr> reductions(const RegexNode& node) {
  std::vector<RegexPtr> out;
  if (node.kind != RegexKind::kEpsilon) out.push_back(RegexNode::epsilon());
  for (const RegexPtr& child : node.children) out.push_back(child->clone());

  switch (node.kind) {
    case RegexKind::kEmptySet:
    case RegexKind::kEpsilon:
      break;
    case RegexKind::kCharClass:
      if (node.char_class.count() > 1) {
        for (std::size_t b = 0; b < 256; ++b) {
          if (node.char_class.test(b)) {
            automata::ByteSet single;
            single.set(b);
            out.push_back(RegexNode::char_class_node(single));
            break;
          }
        }
      }
      break;
    case RegexKind::kConcat:
    case RegexKind::kAlternate: {
      // Drop one child at a time (the factories collapse singletons).
      for (std::size_t skip = 0; skip < node.children.size(); ++skip) {
        std::vector<RegexPtr> rest;
        for (std::size_t i = 0; i < node.children.size(); ++i) {
          if (i != skip) rest.push_back(node.children[i]->clone());
        }
        out.push_back(node.kind == RegexKind::kConcat
                          ? RegexNode::concat(std::move(rest))
                          : RegexNode::alternate(std::move(rest)));
      }
      // Reduce one child in place.
      for (std::size_t i = 0; i < node.children.size(); ++i) {
        for (RegexPtr& variant : reductions(*node.children[i])) {
          std::vector<RegexPtr> rebuilt;
          for (std::size_t j = 0; j < node.children.size(); ++j) {
            rebuilt.push_back(i == j ? std::move(variant)
                                     : node.children[j]->clone());
          }
          out.push_back(node.kind == RegexKind::kConcat
                            ? RegexNode::concat(std::move(rebuilt))
                            : RegexNode::alternate(std::move(rebuilt)));
        }
      }
      break;
    }
    case RegexKind::kRepeat: {
      const RegexNode& child = *node.children.front();
      if (node.repeat_max == automata::kUnbounded) {
        out.push_back(RegexNode::repeat(child.clone(), node.repeat_min,
                                        std::max(node.repeat_min, 1)));
      } else if (node.repeat_max > node.repeat_min) {
        out.push_back(
            RegexNode::repeat(child.clone(), node.repeat_min, node.repeat_min));
      }
      if (node.repeat_min > 0) {
        out.push_back(RegexNode::repeat(child.clone(), 0, node.repeat_max));
      }
      for (RegexPtr& variant : reductions(child)) {
        out.push_back(RegexNode::repeat(std::move(variant), node.repeat_min,
                                        node.repeat_max));
      }
      break;
    }
    case RegexKind::kIntersect: {
      // Drop one operand (the factory collapses the singleton to its child),
      // then reduce one operand in place.
      for (std::size_t skip = 0; skip < node.children.size(); ++skip) {
        std::vector<RegexPtr> rest;
        for (std::size_t i = 0; i < node.children.size(); ++i) {
          if (i != skip) rest.push_back(node.children[i]->clone());
        }
        out.push_back(RegexNode::intersect(std::move(rest)));
      }
      for (std::size_t i = 0; i < node.children.size(); ++i) {
        for (RegexPtr& variant : reductions(*node.children[i])) {
          std::vector<RegexPtr> rebuilt;
          for (std::size_t j = 0; j < node.children.size(); ++j) {
            rebuilt.push_back(i == j ? std::move(variant)
                                     : node.children[j]->clone());
          }
          out.push_back(RegexNode::intersect(std::move(rebuilt)));
        }
      }
      break;
    }
    case RegexKind::kComplement:
      // The bare child is already a candidate (pushed above); also try
      // reducing under the complement.
      for (RegexPtr& variant : reductions(*node.children.front())) {
        out.push_back(RegexNode::complement(std::move(variant)));
      }
      break;
    case RegexKind::kDifference:
      for (std::size_t i = 0; i < 2; ++i) {
        for (RegexPtr& variant : reductions(*node.children[i])) {
          out.push_back(RegexNode::difference(
              i == 0 ? std::move(variant) : node.children[0]->clone(),
              i == 1 ? std::move(variant) : node.children[1]->clone()));
        }
      }
      break;
  }
  return out;
}

void set_body(TrialCase& trial, const RegexNode& ast) {
  trial.body = pattern_of(ast);
  // Operators looser than concatenation must stay grouped so prefix + body
  // concatenation (and QueryString's textual-prefix contract) is unambiguous.
  if (ast.kind == RegexKind::kAlternate ||
      ast.kind == RegexKind::kIntersect ||
      ast.kind == RegexKind::kDifference) {
    trial.body = "(" + trial.body + ")";
  }
}

// Removes the multi-char vocab entry at `index`, remapping model token ids
// (ids above the removed one shift down; occurrences of it are dropped from
// the training sequences).
TrialCase without_vocab_entry(const TrialCase& trial, std::size_t index) {
  TrialCase out = trial;
  TokenId removed = static_cast<TokenId>(index);
  out.vocab.erase(out.vocab.begin() + static_cast<std::ptrdiff_t>(index));
  out.model.vocab_size = out.vocab.size();
  for (std::vector<TokenId>& seq : out.model.sequences) {
    std::vector<TokenId> remapped;
    for (TokenId t : seq) {
      if (t == removed) continue;
      remapped.push_back(t > removed ? t - 1 : t);
    }
    seq = std::move(remapped);
  }
  return out;
}

// Parameter-level simplifications, cheapest and most effective first.
std::vector<TrialCase> parameter_candidates(const TrialCase& trial) {
  std::vector<TrialCase> out;
  auto push = [&](auto&& edit) {
    TrialCase candidate = trial;
    edit(candidate);
    out.push_back(std::move(candidate));
  };
  if (trial.model.kind != ModelSpec::Kind::kUniform) {
    push([](TrialCase& c) {
      c.model.kind = ModelSpec::Kind::kUniform;
      c.model.sequences.clear();
    });
  }
  for (std::size_t i = trial.vocab.size(); i-- > 0;) {
    if (trial.vocab[i].size() > 1) {
      out.push_back(without_vocab_entry(trial, i));
    }
  }
  if (!trial.prefix.empty()) push([](TrialCase& c) { c.prefix.clear(); });
  if (!trial.body_b.empty()) push([](TrialCase& c) { c.body_b.clear(); });
  if (trial.require_eos) push([](TrialCase& c) { c.require_eos = false; });
  if (trial.all_tokens) push([](TrialCase& c) { c.all_tokens = false; });
  if (trial.top_k > 0 || trial.top_p < 1.0 || trial.temperature != 1.0) {
    push([](TrialCase& c) {
      c.top_k = 0;
      c.top_p = 1.0;
      c.temperature = 1.0;
    });
  }
  if (trial.canonical_enumeration_budget == 0) {
    push([](TrialCase& c) { c.canonical_enumeration_budget = 50000; });
  }
  if (trial.sequence_length > 1) {
    push([](TrialCase& c) { c.sequence_length -= 1; });
    if (trial.sequence_length > 2) {
      push([](TrialCase& c) { c.sequence_length = 2; });
    }
  }
  if (trial.num_samples > 8) push([](TrialCase& c) { c.num_samples = 8; });
  return out;
}

}  // namespace

ShrinkResult shrink_case(const TrialCase& failing,
                         const DifferentialOptions& options,
                         std::size_t max_trials) {
  ShrinkResult result;
  result.best = failing;
  result.report = run_trial(failing, options);
  result.trials = 1;
  if (!result.report.failed()) return result;
  const std::string kind = result.report.failure_kind;

  auto try_candidate = [&](const TrialCase& candidate) {
    if (result.trials >= max_trials) return false;
    ++result.trials;
    TrialReport report = run_trial(candidate, options);
    if (report.failed() && report.failure_kind == kind) {
      result.best = candidate;
      result.report = std::move(report);
      result.changed = true;
      return true;
    }
    return false;
  };

  bool improved = true;
  while (improved && result.trials < max_trials) {
    improved = false;
    for (TrialCase& candidate : parameter_candidates(result.best)) {
      if (try_candidate(candidate)) {
        improved = true;
        break;
      }
    }
    if (improved) continue;

    RegexPtr ast;
    try {
      ast = automata::parse_regex(result.best.body);
    } catch (const std::exception&) {
      break;  // unparseable body (hand-written repro?) — keep as-is
    }
    for (RegexPtr& variant : reductions(*ast)) {
      TrialCase candidate = result.best;
      try {
        set_body(candidate, *variant);
      } catch (const std::exception&) {
        continue;  // e.g. empty-set has no syntax
      }
      if (try_candidate(candidate)) {
        improved = true;
        break;
      }
    }
  }
  return result;
}

}  // namespace relm::testing
