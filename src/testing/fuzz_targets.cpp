#include "testing/fuzz_targets.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

#include "analysis/invariants.hpp"
#include "automata/algebra.hpp"
#include "automata/ops.hpp"
#include "automata/regex_parser.hpp"
#include "automata/serialize.hpp"
#include "core/pipeline/artifact.hpp"
#include "testing/generators.hpp"
#include "testing/json.hpp"
#include "util/errors.hpp"

namespace relm::testing {

namespace {

// Invariant failure inside a fuzz target: print and abort so both libFuzzer
// and the fallback driver register a crash at this input.
[[noreturn]] void die(const char* target, const std::string& why) {
  std::fprintf(stderr, "%s: invariant violated: %s\n", target, why.c_str());
  std::abort();
}

}  // namespace

int fuzz_regex_parser(const std::uint8_t* data, std::size_t size) {
  std::string pattern(reinterpret_cast<const char*>(data), size);
  automata::RegexPtr ast;
  try {
    ast = automata::parse_regex(pattern);
  } catch (const relm::Error&) {
    return 0;  // rejection is the expected path for malformed patterns
  }
  // Renderer/parser agreement: what the parser accepted, pattern_of must be
  // able to print, and the printed form must parse again.
  std::string rendered;
  try {
    rendered = pattern_of(*ast);
  } catch (const relm::Error& e) {
    // Only the empty-set node is unprintable, and the parser never emits it.
    die("fuzz_regex_parser", std::string("unprintable parsed AST: ") + e.what());
  }
  try {
    automata::RegexPtr again = automata::parse_regex(rendered);
    (void)again;
  } catch (const relm::Error& e) {
    die("fuzz_regex_parser",
        "re-render of accepted pattern failed to parse: \"" + rendered +
            "\": " + e.what());
  }
  return 0;
}

int fuzz_dfa_loader(const std::uint8_t* data, std::size_t size) {
  std::istringstream in(
      std::string(reinterpret_cast<const char*>(data), size));
  automata::Dfa dfa(1);  // placeholder; Dfa has no default constructor
  try {
    dfa = automata::load_dfa(in);
  } catch (const relm::Error&) {
    return 0;
  }
  analysis::InvariantReport report;
  analysis::check_dfa(dfa, report, "fuzzed");
  if (!report.ok()) die("fuzz_dfa_loader", report.to_string());
  return 0;
}

int fuzz_artifact_loader(const std::uint8_t* data, std::size_t size) {
  std::istringstream in(
      std::string(reinterpret_cast<const char*>(data), size));
  core::pipeline::QueryArtifact artifact;
  try {
    artifact = core::pipeline::load_artifact(in);
  } catch (const relm::Error&) {
    return 0;
  }
  analysis::InvariantReport report;
  analysis::check_query_artifact(artifact, /*tok=*/nullptr, report, "fuzzed");
  if (!report.ok()) die("fuzz_artifact_loader", report.to_string());
  return 0;
}

int fuzz_algebra_compile(const std::uint8_t* data, std::size_t size) {
  // Bound the pattern: compile cost grows with pattern size and the point
  // here is operator interaction, not giant inputs.
  if (size > 64) size = 64;
  std::string pattern(reinterpret_cast<const char*>(data), size);
  automata::RegexPtr ast;
  try {
    ast = automata::parse_regex(pattern);
  } catch (const relm::Error&) {
    return 0;
  }
  automata::AlgebraOptions lazy;
  lazy.lazy = true;
  lazy.state_budget = 4096;  // adversarial complements must terminate
  automata::Dfa lazy_dfa(1);
  try {
    lazy_dfa = automata::compile_ast(*ast, lazy);
  } catch (const relm::StateBudgetError&) {
    return 0;  // over budget is an accepted outcome, not a finding
  } catch (const relm::Error& e) {
    die("fuzz_algebra_compile",
        std::string("non-budget compile failure on accepted parse: ") +
            e.what());
  }
  analysis::InvariantReport report;
  analysis::check_dfa(lazy_dfa, report, "algebra-lazy");
  if (!report.ok()) die("fuzz_algebra_compile", report.to_string());
  // Differential check against the eager reference path when it also fits
  // the budget: same language, or one of the two compilers is wrong.
  automata::AlgebraOptions eager = lazy;
  eager.lazy = false;
  try {
    automata::Dfa eager_dfa = automata::compile_ast(*ast, eager);
    if (!automata::dfa_equivalent(lazy_dfa, eager_dfa)) {
      die("fuzz_algebra_compile",
          "lazy and eager compiles disagree on \"" + pattern + "\"");
    }
  } catch (const relm::StateBudgetError&) {
    // Eager paying more than lazy is expected (it is why lazy exists).
  }
  return 0;
}

int fuzz_repro_json(const std::uint8_t* data, std::size_t size) {
  std::string text(reinterpret_cast<const char*>(data), size);
  Json doc;
  try {
    doc = Json::parse(text);
  } catch (const relm::Error&) {
    return 0;
  }
  TrialCase trial;
  try {
    trial = TrialCase::from_json(doc);
  } catch (const relm::Error&) {
    return 0;  // structurally valid JSON that is not a repro file
  }
  // A loaded case must round-trip: dump -> parse -> from_json -> dump equal.
  std::string dumped = trial.to_json().dump();
  TrialCase again;
  try {
    again = TrialCase::from_json(Json::parse(dumped));
  } catch (const relm::Error& e) {
    die("fuzz_repro_json",
        std::string("serialized case failed to re-load: ") + e.what());
  }
  if (again.to_json().dump() != dumped) {
    die("fuzz_repro_json", "case does not round-trip byte-identically");
  }
  return 0;
}

}  // namespace relm::testing
