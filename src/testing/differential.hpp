#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "testing/generators.hpp"
#include "testing/oracle.hpp"

namespace relm::testing {

// One differential trial: compile the case, enumerate ground truth with the
// oracle, run every executor under every cache configuration, and compare.
//
// Configurations exercised per trial (satellite: cache-config differential):
//   plain        — the model and a fresh compile, no caches anywhere
//   logit-cache  — the model behind CachingModel (sharded logit LRU)
//   compile-cache— second compile through a warm local ArtifactCache
//   artifact-io  — artifact serialized and reloaded (save/load roundtrip),
//                  model behind CachingModel
// Executor output must be BYTE-identical across configurations (exact double
// equality — the caches replay stored vectors, so even the last bit must
// match), and the plain configuration must agree with the oracle.

// Fault injection for harness self-tests: corrupts the plain shortest-path
// result list before comparison, so "the fuzzer catches an intentionally
// broken executor" is itself testable (docs/TESTING.md, mutation check).
enum class Mutation {
  kNone,
  kDropResult,      // delete the last result (completeness check must fire)
  kPerturbLogProb,  // add 1e-6 to one log-prob (tolerance check must fire)
  kSwapOrder,       // swap the two most probable results (order check)
  kDuplicateResult, // emit one result twice (dedup check)
};

struct DifferentialOptions {
  double tolerance = 1e-9;
  OracleConfig oracle;
  Mutation mutate = Mutation::kNone;
  std::size_t num_samples = 24;  // overrides the case's sampler volume
};

struct TrialReport {
  enum class Status { kPass, kSkip, kFail };

  Status status = Status::kPass;
  // Coarse failure class, stable across shrinking steps: the shrinker only
  // accepts a smaller case when it fails the SAME way, so minimization can
  // not wander off to an unrelated (e.g. invalid-input) failure.
  std::string failure_kind;
  std::string detail;  // human-readable mismatch / skip reason

  std::size_t language_size = 0;   // |oracle.by_text|
  std::size_t oracle_nodes = 0;
  std::size_t max_width = 0;

  bool failed() const { return status == Status::kFail; }
};

TrialReport run_trial(const TrialCase& trial,
                      const DifferentialOptions& options = {});

}  // namespace relm::testing
