#include "testing/generators.hpp"

#include <algorithm>
#include <set>

#include "model/mlp_model.hpp"
#include "model/ngram_model.hpp"
#include "util/errors.hpp"

namespace relm::testing {

using automata::ByteSet;
using automata::RegexKind;
using automata::RegexNode;
using automata::RegexPtr;
using tokenizer::TokenId;
using util::Pcg32;

namespace {

char pick_char(Pcg32& rng, const std::string& alphabet) {
  return alphabet[rng.bounded(static_cast<std::uint32_t>(alphabet.size()))];
}

RegexPtr gen_node(Pcg32& rng, const RegexGenConfig& config, int depth) {
  // Leaves: single char (5), small class (2), epsilon (1).
  // Internal (only when depth budget remains): concat (4), alternate (3),
  // repeat (2), then the boolean algebra — intersect / complement /
  // difference — at algebra_weight each (0 restores the pre-algebra
  // generator, draw-for-draw).
  const bool leaf_only = depth >= config.max_depth;
  double weights[9] = {5, 2, 1, 0, 0, 0, 0, 0, 0};
  if (!leaf_only) {
    weights[3] = 4;
    weights[4] = 3;
    weights[5] = 2;
    weights[6] = config.algebra_weight;
    weights[7] = config.algebra_weight;
    weights[8] = config.algebra_weight;
  }
  const std::size_t count = config.algebra_weight > 0 ? 9 : 6;
  const std::size_t bucket =
      rng.weighted(std::span<const double>(weights, count));
  switch (bucket) {
    case 0:
      return RegexNode::literal(
          static_cast<unsigned char>(pick_char(rng, config.alphabet)));
    case 1: {
      ByteSet set;
      std::size_t count = 2 + rng.bounded(2);  // 2 or 3 members
      for (std::size_t i = 0; i < count; ++i) {
        set.set(static_cast<unsigned char>(pick_char(rng, config.alphabet)));
      }
      return RegexNode::char_class_node(set);
    }
    case 2:
      return RegexNode::epsilon();
    case 3:
    case 4: {
      std::vector<RegexPtr> children;
      std::size_t count = 2 + rng.bounded(2);  // 2 or 3 children
      children.reserve(count);
      for (std::size_t i = 0; i < count; ++i) {
        children.push_back(gen_node(rng, config, depth + 1));
      }
      // The factories collapse degenerate shapes (empty/singleton lists), so
      // the result is always structurally valid.
      return bucket == 3 ? RegexNode::concat(std::move(children))
                         : RegexNode::alternate(std::move(children));
    }
    case 5: {
      int min = static_cast<int>(rng.bounded(
          static_cast<std::uint32_t>(config.max_repeat) + 1));
      int max = rng.uniform() < config.unbounded_prob
                    ? automata::kUnbounded
                    : min + static_cast<int>(rng.bounded(
                          static_cast<std::uint32_t>(config.max_repeat) + 1));
      return RegexNode::repeat(gen_node(rng, config, depth + 1), min, max);
    }
    case 6: {
      std::vector<RegexPtr> children;
      children.push_back(gen_node(rng, config, depth + 1));
      children.push_back(gen_node(rng, config, depth + 1));
      return RegexNode::intersect(std::move(children));
    }
    case 7:
      return RegexNode::complement(gen_node(rng, config, depth + 1));
    default:
      return RegexNode::difference(gen_node(rng, config, depth + 1),
                                   gen_node(rng, config, depth + 1));
  }
}

}  // namespace

RegexPtr random_regex(Pcg32& rng, const RegexGenConfig& config) {
  // weighted() above mixes concat/alternate through one bucket pair; keep the
  // top-level draw unbiased by delegating straight to the recursive helper.
  return gen_node(rng, config, 0);
}

std::size_t node_count(const RegexNode& node) {
  std::size_t total = 1;
  for (const RegexPtr& child : node.children) total += node_count(*child);
  return total;
}

namespace {

bool plain_literal(unsigned char c) {
  // `!`, `&`, `~` left this set when they became boolean-algebra operators;
  // append_literal now emits them escaped, keeping pattern_of round-trippable.
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == ' ' || c == '_' || c == ',' ||
         c == ':' || c == ';' || c == '<' || c == '>' || c == '=' ||
         c == '@' || c == '"' || c == '\'' || c == '`';
}

void append_literal(std::string& out, unsigned char c) {
  if (plain_literal(c)) {
    out += static_cast<char>(c);
    return;
  }
  switch (c) {
    case '\n': out += "\\n"; return;
    case '\t': out += "\\t"; return;
    case '\r': out += "\\r"; return;
    case '\f': out += "\\f"; return;
    case '\v': out += "\\v"; return;
    case '\0': out += "\\0"; return;
  }
  if (c >= 0x20 && c < 0x7f) {
    out += '\\';
    out += static_cast<char>(c);
    return;
  }
  char buf[8];
  std::snprintf(buf, sizeof buf, "\\x%02x", c);
  out += buf;
}

void append_class_member(std::string& out, unsigned char c) {
  // Inside brackets only the class metacharacters need escaping; the parser
  // accepts the same escape forms as outside.
  if (c == '\\' || c == ']' || c == '^' || c == '-') {
    out += '\\';
    out += static_cast<char>(c);
    return;
  }
  if (c >= 0x20 && c < 0x7f) {
    out += static_cast<char>(c);
    return;
  }
  append_literal(out, c);
}

void render(const RegexNode& node, std::string& out) {
  auto render_grouped = [&](const RegexNode& child) {
    bool group = child.kind == RegexKind::kAlternate ||
                 child.kind == RegexKind::kConcat ||
                 child.kind == RegexKind::kRepeat ||
                 child.kind == RegexKind::kIntersect ||
                 child.kind == RegexKind::kComplement ||
                 child.kind == RegexKind::kDifference;
    if (group) out += '(';
    render(child, out);
    if (group) out += ')';
  };
  switch (node.kind) {
    case RegexKind::kEmptySet:
      throw relm::Error(
          "pattern_of: the empty-set regex has no dialect syntax");
    case RegexKind::kEpsilon:
      out += "()";
      return;
    case RegexKind::kCharClass: {
      if (node.char_class.count() == 1) {
        for (std::size_t b = 0; b < 256; ++b) {
          if (node.char_class.test(b)) {
            append_literal(out, static_cast<unsigned char>(b));
            return;
          }
        }
      }
      out += '[';
      for (std::size_t b = 0; b < 256; ++b) {
        if (node.char_class.test(b)) {
          append_class_member(out, static_cast<unsigned char>(b));
        }
      }
      out += ']';
      return;
    }
    case RegexKind::kConcat:
      for (const RegexPtr& child : node.children) {
        // Operators looser than concatenation need grouping; a complement
        // child does not (`a~b` already parses as a·(~b)).
        if (child->kind == RegexKind::kAlternate ||
            child->kind == RegexKind::kIntersect ||
            child->kind == RegexKind::kDifference) {
          out += '(';
          render(*child, out);
          out += ')';
        } else {
          render(*child, out);
        }
      }
      return;
    case RegexKind::kAlternate:
      for (std::size_t i = 0; i < node.children.size(); ++i) {
        if (i) out += '|';
        render(*node.children[i], out);
      }
      return;
    case RegexKind::kIntersect:
      // `&` binds tighter than `|` and `-`: group children of those kinds.
      for (std::size_t i = 0; i < node.children.size(); ++i) {
        if (i) out += '&';
        const RegexNode& child = *node.children[i];
        bool group = child.kind == RegexKind::kAlternate ||
                     child.kind == RegexKind::kDifference;
        if (group) out += '(';
        render(child, out);
        if (group) out += ')';
      }
      return;
    case RegexKind::kDifference: {
      // `-` is left-associative and looser than `&`: the left child only
      // needs grouping when it is an alternation; the right child also when
      // it is itself a difference (else `a-b-c` re-associates to the left).
      const RegexNode& left = *node.children[0];
      const RegexNode& right = *node.children[1];
      bool group_left = left.kind == RegexKind::kAlternate;
      bool group_right = right.kind == RegexKind::kAlternate ||
                         right.kind == RegexKind::kDifference;
      if (group_left) out += '(';
      render(left, out);
      if (group_left) out += ')';
      out += '-';
      if (group_right) out += '(';
      render(right, out);
      if (group_right) out += ')';
      return;
    }
    case RegexKind::kComplement: {
      // `~` binds to the following repeated atom, so a repeat, another
      // complement, or a leaf may follow bare; anything looser is grouped
      // (`~ab` would parse as (~a)·b).
      out += '~';
      const RegexNode& child = *node.children.front();
      bool group = child.kind == RegexKind::kConcat ||
                   child.kind == RegexKind::kAlternate ||
                   child.kind == RegexKind::kIntersect ||
                   child.kind == RegexKind::kDifference;
      if (group) out += '(';
      render(child, out);
      if (group) out += ')';
      return;
    }
    case RegexKind::kRepeat: {
      render_grouped(*node.children.front());
      int min = node.repeat_min;
      int max = node.repeat_max;
      if (min == 0 && max == automata::kUnbounded) {
        out += '*';
      } else if (min == 1 && max == automata::kUnbounded) {
        out += '+';
      } else if (min == 0 && max == 1) {
        out += '?';
      } else if (max == automata::kUnbounded) {
        out += '{' + std::to_string(min) + ",}";
      } else if (min == max) {
        out += '{' + std::to_string(min) + '}';
      } else {
        out += '{' + std::to_string(min) + ',' + std::to_string(max) + '}';
      }
      return;
    }
  }
}

}  // namespace

std::string pattern_of(const RegexNode& node) {
  std::string out;
  render(node, out);
  return out;
}

std::vector<std::string> random_vocab(Pcg32& rng, const VocabGenConfig& config) {
  std::vector<std::string> vocab;
  vocab.emplace_back();  // EOS — from_vocab requires exactly one "" entry
  std::set<std::string> seen;
  for (char c : config.alphabet) {
    std::string tok(1, c);
    if (seen.insert(tok).second) vocab.push_back(tok);
  }
  std::size_t merged = rng.bounded(
      static_cast<std::uint32_t>(config.max_merged) + 1);
  for (std::size_t i = 0; i < merged; ++i) {
    std::size_t len =
        2 + rng.bounded(static_cast<std::uint32_t>(config.max_token_len - 1));
    std::string tok;
    for (std::size_t j = 0; j < len; ++j) tok += pick_char(rng, config.alphabet);
    if (seen.insert(tok).second) vocab.push_back(tok);
  }
  return vocab;
}

std::shared_ptr<model::LanguageModel> ModelSpec::build() const {
  switch (kind) {
    case Kind::kUniform:
      return std::make_shared<model::UniformModel>(vocab_size, eos,
                                                   max_sequence_length);
    case Kind::kNgram: {
      model::NgramModel::Config config;
      config.order = ngram_order;
      config.alpha = ngram_alpha;
      config.max_sequence_length = max_sequence_length;
      return model::NgramModel::train_on_tokens(vocab_size, eos, sequences,
                                                config);
    }
    case Kind::kMlp: {
      model::MlpModel::Config config;
      config.context_size = mlp_context;
      config.embedding_dim = mlp_embedding;
      config.hidden_dim = mlp_hidden;
      config.epochs = mlp_epochs;
      config.seed = mlp_seed;
      config.max_sequence_length = max_sequence_length;
      return model::MlpModel::train_on_tokens(vocab_size, eos, sequences,
                                              config);
    }
  }
  throw relm::Error("ModelSpec: unknown kind");
}

Json ModelSpec::to_json() const {
  Json j = Json::object();
  switch (kind) {
    case Kind::kUniform: j.set("kind", Json::string("uniform")); break;
    case Kind::kNgram: j.set("kind", Json::string("ngram")); break;
    case Kind::kMlp: j.set("kind", Json::string("mlp")); break;
  }
  j.set("vocab_size", Json::number(static_cast<std::int64_t>(vocab_size)));
  j.set("eos", Json::number(static_cast<std::int64_t>(eos)));
  j.set("max_sequence_length",
        Json::number(static_cast<std::int64_t>(max_sequence_length)));
  if (kind == Kind::kNgram) {
    j.set("ngram_order", Json::number(static_cast<std::int64_t>(ngram_order)));
    j.set("ngram_alpha", Json::number(ngram_alpha));
  }
  if (kind == Kind::kMlp) {
    j.set("mlp_context", Json::number(static_cast<std::int64_t>(mlp_context)));
    j.set("mlp_embedding",
          Json::number(static_cast<std::int64_t>(mlp_embedding)));
    j.set("mlp_hidden", Json::number(static_cast<std::int64_t>(mlp_hidden)));
    j.set("mlp_epochs", Json::number(static_cast<std::int64_t>(mlp_epochs)));
    j.set("mlp_seed", Json::number(static_cast<std::int64_t>(mlp_seed)));
  }
  if (kind != Kind::kUniform) {
    Json seqs = Json::array();
    for (const std::vector<TokenId>& seq : sequences) {
      Json row = Json::array();
      for (TokenId t : seq) row.push_back(Json::number(static_cast<std::int64_t>(t)));
      seqs.push_back(std::move(row));
    }
    j.set("sequences", std::move(seqs));
  }
  return j;
}

ModelSpec ModelSpec::from_json(const Json& j) {
  ModelSpec spec;
  const std::string& kind = j.at("kind").as_string();
  if (kind == "uniform") {
    spec.kind = Kind::kUniform;
  } else if (kind == "ngram") {
    spec.kind = Kind::kNgram;
  } else if (kind == "mlp") {
    spec.kind = Kind::kMlp;
  } else {
    throw relm::Error("ModelSpec: unknown kind \"" + kind + "\"");
  }
  spec.vocab_size = static_cast<std::size_t>(j.at("vocab_size").as_int());
  spec.eos = static_cast<TokenId>(j.at("eos").as_int());
  spec.max_sequence_length =
      static_cast<std::size_t>(j.at("max_sequence_length").as_int());
  if (const Json* v = j.get("ngram_order")) {
    spec.ngram_order = static_cast<std::size_t>(v->as_int());
  }
  if (const Json* v = j.get("ngram_alpha")) spec.ngram_alpha = v->as_double();
  if (const Json* v = j.get("mlp_context")) {
    spec.mlp_context = static_cast<std::size_t>(v->as_int());
  }
  if (const Json* v = j.get("mlp_embedding")) {
    spec.mlp_embedding = static_cast<std::size_t>(v->as_int());
  }
  if (const Json* v = j.get("mlp_hidden")) {
    spec.mlp_hidden = static_cast<std::size_t>(v->as_int());
  }
  if (const Json* v = j.get("mlp_epochs")) {
    spec.mlp_epochs = static_cast<std::size_t>(v->as_int());
  }
  if (const Json* v = j.get("mlp_seed")) {
    spec.mlp_seed = static_cast<std::uint64_t>(v->as_int());
  }
  if (const Json* v = j.get("sequences")) {
    for (const Json& row : v->as_array()) {
      std::vector<TokenId> seq;
      for (const Json& t : row.as_array()) {
        seq.push_back(static_cast<TokenId>(t.as_int()));
      }
      spec.sequences.push_back(std::move(seq));
    }
  }
  return spec;
}

ModelSpec random_model_spec(Pcg32& rng, std::size_t vocab_size, TokenId eos) {
  ModelSpec spec;
  spec.vocab_size = vocab_size;
  spec.eos = eos;
  spec.max_sequence_length = 24;
  const double kind_weights[3] = {1, 4, 2};  // uniform / ngram / mlp
  switch (rng.weighted(kind_weights)) {
    case 0: spec.kind = ModelSpec::Kind::kUniform; break;
    case 1: spec.kind = ModelSpec::Kind::kNgram; break;
    default: spec.kind = ModelSpec::Kind::kMlp; break;
  }
  if (spec.kind == ModelSpec::Kind::kNgram) {
    spec.ngram_order = 2 + rng.bounded(2);           // 2 or 3
    spec.ngram_alpha = 0.1 + 0.6 * rng.uniform();
  }
  if (spec.kind == ModelSpec::Kind::kMlp) {
    spec.mlp_context = 2 + rng.bounded(2);           // 2 or 3
    spec.mlp_embedding = 4 + rng.bounded(5);         // 4..8
    spec.mlp_hidden = 8 + rng.bounded(9);            // 8..16
    spec.mlp_epochs = 1 + rng.bounded(2);            // 1 or 2
    spec.mlp_seed = rng.next();
  }
  if (spec.kind != ModelSpec::Kind::kUniform) {
    std::size_t docs = 2 + rng.bounded(4);           // 2..5
    for (std::size_t d = 0; d < docs; ++d) {
      std::size_t len = 1 + rng.bounded(8);          // 1..8 tokens
      std::vector<TokenId> seq;
      for (std::size_t i = 0; i < len; ++i) {
        TokenId t = static_cast<TokenId>(
            rng.bounded(static_cast<std::uint32_t>(vocab_size)));
        if (t == eos) t = (t + 1) % static_cast<TokenId>(vocab_size);
        seq.push_back(t);
      }
      spec.sequences.push_back(std::move(seq));
    }
  }
  return spec;
}

core::SimpleSearchQuery TrialCase::query() const {
  core::SimpleSearchQuery q;
  q.query_string.query_str = prefix + body;
  q.query_string.prefix_str = prefix;
  q.tokenization_strategy = all_tokens
                                ? core::TokenizationStrategy::kAllTokens
                                : core::TokenizationStrategy::kCanonicalTokens;
  if (top_k > 0) q.decoding.top_k = static_cast<int>(top_k);
  if (top_p < 1.0) q.decoding.top_p = top_p;
  q.decoding.temperature = temperature;
  q.sequence_length = sequence_length;
  q.require_eos = require_eos;
  q.num_samples = num_samples;
  q.expansion_batch_size = expansion_batch;
  q.canonical_enumeration_budget = canonical_enumeration_budget;
  return q;
}

Json TrialCase::to_json() const {
  Json j = Json::object();
  j.set("relm_fuzz_repro", Json::number(static_cast<std::int64_t>(1)));
  j.set("seed", Json::number(static_cast<std::int64_t>(seed)));
  Json v = Json::array();
  for (const std::string& tok : vocab) v.push_back(Json::string(tok));
  j.set("vocab", std::move(v));
  j.set("model", model.to_json());
  j.set("prefix", Json::string(prefix));
  j.set("body", Json::string(body));
  if (!body_b.empty()) j.set("body_b", Json::string(body_b));
  j.set("all_tokens", Json::boolean(all_tokens));
  j.set("require_eos", Json::boolean(require_eos));
  j.set("top_k", Json::number(static_cast<std::int64_t>(top_k)));
  j.set("top_p", Json::number(top_p));
  j.set("temperature", Json::number(temperature));
  j.set("sequence_length",
        Json::number(static_cast<std::int64_t>(sequence_length)));
  j.set("num_samples", Json::number(static_cast<std::int64_t>(num_samples)));
  j.set("expansion_batch",
        Json::number(static_cast<std::int64_t>(expansion_batch)));
  j.set("sampler_seed", Json::number(static_cast<std::int64_t>(sampler_seed)));
  j.set("canonical_enumeration_budget",
        Json::number(static_cast<std::int64_t>(canonical_enumeration_budget)));
  return j;
}

TrialCase TrialCase::from_json(const Json& j) {
  if (!j.has("relm_fuzz_repro") || j.at("relm_fuzz_repro").as_int() != 1) {
    throw relm::Error("not a relm fuzz repro file (schema key missing)");
  }
  TrialCase c;
  c.seed = static_cast<std::uint64_t>(j.at("seed").as_int());
  for (const Json& tok : j.at("vocab").as_array()) {
    c.vocab.push_back(tok.as_string());
  }
  c.model = ModelSpec::from_json(j.at("model"));
  c.prefix = j.at("prefix").as_string();
  c.body = j.at("body").as_string();
  // Optional: repro files written before the difference configuration
  // existed (and trials without one) simply omit it.
  if (const Json* v = j.get("body_b")) c.body_b = v->as_string();
  c.all_tokens = j.at("all_tokens").as_bool();
  c.require_eos = j.at("require_eos").as_bool();
  c.top_k = static_cast<std::size_t>(j.at("top_k").as_int());
  c.top_p = j.at("top_p").as_double();
  c.temperature = j.at("temperature").as_double();
  c.sequence_length =
      static_cast<std::size_t>(j.at("sequence_length").as_int());
  c.num_samples = static_cast<std::size_t>(j.at("num_samples").as_int());
  c.expansion_batch =
      static_cast<std::size_t>(j.at("expansion_batch").as_int());
  c.sampler_seed = static_cast<std::uint64_t>(j.at("sampler_seed").as_int());
  c.canonical_enumeration_budget = static_cast<std::size_t>(
      j.at("canonical_enumeration_budget").as_int());
  return c;
}

TrialCase generate_case(std::uint64_t seed, const GenConfig& config) {
  // Independent streams per component: regenerating (say) only the model
  // hyperparameters for a seed does not disturb the regex draw.
  Pcg32 rng_regex(seed, 0x52454758);  // "REGX"
  Pcg32 rng_vocab(seed, 0x564f4341);  // "VOCA"
  Pcg32 rng_model(seed, 0x4d4f4445);  // "MODE"
  Pcg32 rng_param(seed, 0x50415241);  // "PARA"
  Pcg32 rng_diffb(seed, 0x44494642);  // "DIFB"

  TrialCase c;
  c.seed = seed;
  c.vocab = random_vocab(rng_vocab, config.vocab);

  // from_vocab keeps list order, so EOS ("" at index 0) is token id 0.
  c.model = random_model_spec(rng_model, c.vocab.size(), /*eos=*/0);

  RegexPtr ast = random_regex(rng_regex, config.regex);
  c.body = pattern_of(*ast);
  // Operators looser than concatenation must stay grouped so prefix + body
  // concatenation (QueryString's textual-prefix contract) is unambiguous.
  if (ast->kind == RegexKind::kAlternate ||
      ast->kind == RegexKind::kIntersect ||
      ast->kind == RegexKind::kDifference) {
    c.body = "(" + c.body + ")";
  }
  if (rng_diffb.uniform() < config.difference_prob) {
    // The subtrahend stays shallow and boolean-free: Configuration G's
    // two-pass reference filters through its character DFA directly, and a
    // small B keeps the one-pass product automaton oracle-enumerable.
    RegexGenConfig b_config = config.regex;
    b_config.max_depth = 2;
    b_config.algebra_weight = 0;
    c.body_b = pattern_of(*random_regex(rng_diffb, b_config));
  }
  if (rng_param.uniform() < config.prefix_prob) {
    std::size_t len = 1 + rng_param.bounded(2);
    for (std::size_t i = 0; i < len; ++i) {
      c.prefix += pick_char(rng_param, config.regex.alphabet);
    }
  }

  c.all_tokens = rng_param.uniform() < config.all_tokens_prob;
  c.require_eos = rng_param.uniform() < config.require_eos_prob;
  if (rng_param.uniform() < config.decoding_prob) {
    if (rng_param.uniform() < 0.5) {
      c.top_k = 1 + rng_param.bounded(
          static_cast<std::uint32_t>(c.vocab.size()));
    } else {
      c.top_p = 0.5 + 0.45 * rng_param.uniform();
    }
    if (rng_param.uniform() < 0.5) {
      c.temperature = 0.5 + 1.5 * rng_param.uniform();
    }
  }
  c.sequence_length = config.min_seq_len + rng_param.bounded(
      static_cast<std::uint32_t>(config.max_seq_len - config.min_seq_len) + 1);
  // Force the dynamic-canonicality path (§3.2 option 2) on a slice of the
  // canonical-tokenization cases; the enumeration path covers the rest.
  if (!c.all_tokens && rng_param.uniform() < 0.3) {
    c.canonical_enumeration_budget = 0;
  }
  c.sampler_seed = (seed * 0x9e3779b97f4a7c15ULL) ^ 0x5bf0363546e17aefULL;
  return c;
}

}  // namespace relm::testing
