#pragma once

#include <deque>
#include <optional>
#include <queue>
#include <unordered_set>

#include "automata/walks.hpp"
#include "core/compiled_query.hpp"
#include "model/language_model.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace relm::core {

// One matching tuple from a query, streamed to the user program (§3.1).
struct SearchResult {
  std::vector<tokenizer::TokenId> tokens;  // full token path (EOS excluded)
  std::string text;                        // decoded string
  double log_prob;                         // log p of the path (incl. EOS when required)
  std::size_t llm_calls_at_emission;       // cumulative model invocations
  double seconds_at_emission;              // since search start
};

struct SearchStats {
  std::size_t llm_calls = 0;
  std::size_t expansions = 0;          // shortest path: nodes expanded
  std::size_t pruned_by_rules = 0;     // edges cut by top-k/top-p (probe path)
  std::size_t pruned_non_canonical = 0;
  // Mask fast-path counters (use_token_masks): words examined by the
  // word-wise state∩rule intersection, and tokens it eliminated. On the
  // fast path mask_pruned carries exactly the prunes the probe path would
  // have counted in pruned_by_rules (EOS-closure prunes stay there).
  std::size_t mask_words_scanned = 0;
  std::size_t mask_pruned = 0;
  std::size_t sample_attempts = 0;     // random: attempts incl. dead ends
  std::size_t sample_dead_ends = 0;
  // Logit-cache activity attributed to this search (deltas against the
  // model's counters at construction). All zero when the model does not
  // memoize (LanguageModel::cache_stats() returns nullopt).
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  std::size_t cache_evictions = 0;
  double elapsed_seconds = 0;

  double cache_hit_rate() const {
    const std::size_t total = cache_hits + cache_misses;
    return total ? static_cast<double>(cache_hits) / static_cast<double>(total)
                 : 0.0;
  }
};

// Dijkstra / shortest-path traversal (§3.3): yields matches in decreasing
// probability order. Costs are -log p, non-negative, so the first pop of a
// match is globally optimal and subsequent pops enumerate the language in
// order. Prefix edges are never pruned by decoding rules but carry their
// true costs (the startup-latency heuristic).
class ShortestPathSearch {
 public:
  ShortestPathSearch(const model::LanguageModel& model, const CompiledQuery& compiled,
                     const SimpleSearchQuery& query);

  // Next match, or nullopt when the language (or a budget) is exhausted.
  // Matches with identical decoded text are emitted once (first = cheapest);
  // set dedup_text=false in the constructor-time query via
  // `SimpleSearchQuery` extensions if token-tuple granularity is wanted.
  std::optional<SearchResult> next();

  const SearchStats& stats() const { return stats_; }

  // Emit every result up to the query's max_results.
  std::vector<SearchResult> all();

  // When false, distinct token tuples decoding to the same text are all
  // reported (used by the unprompted-toxicity volume measurements, §4.3).
  void set_dedup_text(bool dedup) { dedup_text_ = dedup; }

 private:
  struct Node {
    CompiledQuery::StateSet set;
    std::int32_t parent;
    tokenizer::TokenId token;   // token on the edge from parent
    double cost;                // cumulative -log p
    std::uint32_t depth;
    std::uint32_t body_len;     // tokens consumed by the body machine
    bool terminal;              // EOS attached; emit on pop
    bool expanded = false;
  };
  struct QueueEntry {
    double cost;
    std::int32_t node;
    bool operator>(const QueueEntry& other) const { return cost > other.cost; }
  };

  // A match held back until it is provably optimal. With expansion_batch > 1
  // a round pops the k cheapest *discovered* nodes, so a popped match can be
  // costlier than a not-yet-discovered encoding of the same text (its parent
  // may sit in the same batch). Matches therefore wait in a cost-ordered
  // heap and are released only once no frontier node could still beat them;
  // text dedup happens at release time, keeping the most probable path.
  struct PendingResult {
    double cost;
    SearchResult result;
    bool operator>(const PendingResult& other) const {
      return cost > other.cost;
    }
  };

  std::vector<tokenizer::TokenId> path_of(std::int32_t node) const;
  // The model-visible context for a node: the last
  // model_.relevant_context_length() tokens of its path (the full path when
  // the model's dependence is unbounded). Walking only the relevant suffix
  // keeps per-pop cost O(window) instead of O(depth).
  std::vector<tokenizer::TokenId> context_of(std::int32_t node) const;
  void expand(std::int32_t node_id, const std::vector<double>& lp);
  // Pops up to expansion_batch_size nodes, batch-evaluates their contexts,
  // expands them, and pushes any matches onto pending_results_.
  void pump();
  void refresh_cache_stats();

  const model::LanguageModel& model_;
  const CompiledQuery& compiled_;
  const SimpleSearchQuery& query_;
  std::vector<Node> nodes_;
  std::vector<CompiledQuery::Step> scratch_steps_;  // reused across expansions
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> frontier_;
  std::unordered_set<std::string> emitted_texts_;
  std::priority_queue<PendingResult, std::vector<PendingResult>, std::greater<>>
      pending_results_;
  std::size_t emitted_ = 0;
  bool dedup_text_ = true;
  SearchStats stats_;
  model::LanguageModel::CacheStats cache_baseline_;
  bool model_has_cache_ = false;
  util::Timer timer_;
};

// Randomized traversal (§3.3): unbiased sampling from the query language.
// The prefix is drawn uniformly over prefix walks using walk-count edge
// normalization (Appendix C) — or uniformly over edges when the query
// disables normalization (the Figure 9 ablation) — and the suffix is drawn
// from the LLM restricted to the automaton and decoding rules, with EOS
// disambiguating stop-vs-continue at final states.
class RandomSampler {
 public:
  RandomSampler(const model::LanguageModel& model, const CompiledQuery& compiled,
                const SimpleSearchQuery& query, std::uint64_t seed);

  // One sample; nullopt if the attempt dead-ended (caller may retry).
  std::optional<SearchResult> sample_once();

  // Draws query.num_samples samples (with retries bounded by
  // query.max_sample_attempts_factor).
  std::vector<SearchResult> sample_all();

  const SearchStats& stats() const { return stats_; }

  // Decoded text of the prefix portion of the last successful sample
  // (empty for unconditional queries). Used by the edit-position analysis.
  const std::string& last_prefix_text() const { return last_prefix_text_; }

 private:
  bool sample_prefix_tokens(std::vector<tokenizer::TokenId>& out);
  std::optional<SearchResult> sample_once_impl();
  void refresh_cache_stats();

  const model::LanguageModel& model_;
  const CompiledQuery& compiled_;
  const SimpleSearchQuery& query_;
  automata::WalkCounts prefix_walks_;
  util::Pcg32 rng_;
  SearchStats stats_;
  model::LanguageModel::CacheStats cache_baseline_;
  bool model_has_cache_ = false;
  util::Timer timer_;
  std::string last_prefix_text_;
};

// Constrained beam search: the trie/automaton-constrained beam decoding the
// paper relates to (De Cao et al., 2021; §5). Keeps the `beam_width` most
// probable partial paths per step. Compared to Dijkstra it is approximate —
// a path outside the beam is gone for good — but its cost is bounded:
// at most beam_width LLM calls per step for at most sequence_length steps.
// Matches found along the way are collected and returned most probable
// first. Prefix edges bypass decoding rules exactly as in the other
// traversals; the prefix consumes beam slots like any other path.
class BeamSearch {
 public:
  BeamSearch(const model::LanguageModel& model, const CompiledQuery& compiled,
             const SimpleSearchQuery& query);

  // Runs to completion (all beams dead or sequence limit reached).
  std::vector<SearchResult> run();

  const SearchStats& stats() const { return stats_; }

 private:
  struct Beam {
    std::vector<tokenizer::TokenId> tokens;
    CompiledQuery::StateSet set;
    double log_prob = 0.0;
    std::uint32_t body_len = 0;
  };

  void refresh_cache_stats();

  const model::LanguageModel& model_;
  const CompiledQuery& compiled_;
  const SimpleSearchQuery& query_;
  SearchStats stats_;
  model::LanguageModel::CacheStats cache_baseline_;
  bool model_has_cache_ = false;
  util::Timer timer_;
};

}  // namespace relm::core
