#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <queue>
#include <unordered_map>
#include <unordered_set>

#include "automata/walks.hpp"
#include "core/compiled_query.hpp"
#include "core/frontier.hpp"
#include "core/mask_memo.hpp"
#include "model/language_model.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/token_bitset.hpp"

namespace relm::core {

// One matching tuple from a query, streamed to the user program (§3.1).
struct SearchResult {
  std::vector<tokenizer::TokenId> tokens;  // full token path (EOS excluded)
  std::string text;                        // decoded string
  double log_prob;                         // log p of the path (incl. EOS when required)
  std::size_t llm_calls_at_emission;       // cumulative model invocations
  double seconds_at_emission;              // since search start
};

struct SearchStats {
  std::size_t llm_calls = 0;
  std::size_t expansions = 0;          // shortest path: nodes expanded
  std::size_t pruned_by_rules = 0;     // edges cut by top-k/top-p (probe path)
  std::size_t pruned_non_canonical = 0;
  // Mask fast-path counters (use_token_masks): words examined by the
  // word-wise state∩rule intersection, and tokens it eliminated. On the
  // fast path mask_pruned carries exactly the prunes the probe path would
  // have counted in pruned_by_rules (EOS-closure prunes stay there).
  std::size_t mask_words_scanned = 0;
  std::size_t mask_pruned = 0;
  std::size_t sample_attempts = 0;     // random: attempts incl. dead ends
  std::size_t sample_dead_ends = 0;
  // Async-pipeline counters (speculative_expansion; all zero in lockstep
  // mode). pump_rounds counts pipeline rounds; speculative_expanded the
  // nodes popped beyond the first per round (work done ahead of
  // settlement); speculative_cancelled nodes deferred by the mid-selection
  // expansion-budget clamp; horizon_clips selections cut by the cost
  // horizon; speculative_wasted evaluations whose node cost exceeded the
  // last emitted result (counted once, when the search ends).
  std::size_t pump_rounds = 0;
  std::size_t speculative_expanded = 0;
  std::size_t speculative_cancelled = 0;
  std::size_t speculative_wasted = 0;
  std::size_t horizon_clips = 0;
  std::size_t frontier_shard_steals = 0;
  // Rule-mask memo activity (pipeline + restricted decoding): a hit reuses
  // the decoding mask of a suffix-equal node instead of recomputing
  // allowed_tokens over the whole vocabulary.
  std::size_t mask_memo_hits = 0;
  std::size_t mask_memo_misses = 0;
  // Logit-cache activity attributed to this search (deltas against the
  // model's counters at construction). All zero when the model does not
  // memoize (LanguageModel::cache_stats() returns nullopt).
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  std::size_t cache_evictions = 0;
  double elapsed_seconds = 0;

  double cache_hit_rate() const {
    const std::size_t total = cache_hits + cache_misses;
    return total ? static_cast<double>(cache_hits) / static_cast<double>(total)
                 : 0.0;
  }

  // Mean model evaluations per pipeline round — the occupancy the
  // target-occupancy controller actually achieved (gated by bench_compare).
  double mean_batch_occupancy() const {
    return pump_rounds ? static_cast<double>(expansions) /
                             static_cast<double>(pump_rounds)
                       : 0.0;
  }
};

// Dijkstra / shortest-path traversal (§3.3): yields matches in decreasing
// probability order. Costs are -log p, non-negative, so the first pop of a
// match is globally optimal and subsequent pops enumerate the language in
// order. Prefix edges are never pruned by decoding rules but carry their
// true costs (the startup-latency heuristic).
class ShortestPathSearch {
 public:
  ShortestPathSearch(const model::LanguageModel& model, const CompiledQuery& compiled,
                     const SimpleSearchQuery& query);

  // Next match, or nullopt when the language (or a budget) is exhausted.
  // Matches with identical decoded text are emitted once (first = cheapest);
  // set dedup_text=false in the constructor-time query via
  // `SimpleSearchQuery` extensions if token-tuple granularity is wanted.
  std::optional<SearchResult> next();

  const SearchStats& stats() const { return stats_; }

  // Emit every result up to the query's max_results.
  std::vector<SearchResult> all();

  // When false, distinct token tuples decoding to the same text are all
  // reported (used by the unprompted-toxicity volume measurements, §4.3).
  void set_dedup_text(bool dedup) { dedup_text_ = dedup; }

 private:
  struct Node {
    CompiledQuery::StateSet set;
    std::int32_t parent;
    tokenizer::TokenId token;   // token on the edge from parent
    double cost;                // cumulative -log p
    std::uint32_t depth;
    std::uint32_t body_len;     // tokens consumed by the body machine
    // Settled canonicality boundary of this node's body run (pipeline only):
    // children resume the greedy-deviation check here instead of re-walking
    // the whole body, keeping per-child verification O(newly settled).
    CompiledQuery::CanonState canon;
    bool terminal;              // EOS attached; emit on pop
    bool expanded = false;
    bool evaluated = false;     // consumed a model call (waste accounting)
  };
  struct QueueEntry {
    double cost;
    std::int32_t node;
    // Ties break on node id — the same (cost, node_id) total order the
    // pipeline's ShardedFrontier pops in, so lockstep and pipeline visit
    // equal-cost nodes in the same sequence instead of heap-shape order.
    bool operator>(const QueueEntry& other) const {
      if (cost != other.cost) return cost > other.cost;
      return node > other.node;
    }
  };

  // A match held back until it is provably optimal. With expansion_batch > 1
  // a round pops the k cheapest *discovered* nodes, so a popped match can be
  // costlier than a not-yet-discovered encoding of the same text (its parent
  // may sit in the same batch). Matches therefore wait in a cost-ordered
  // heap and are released only once no frontier node could still beat them;
  // text dedup happens at release time, keeping the most probable path.
  struct PendingResult {
    double cost;
    SearchResult result;
    // Equal-cost results release in token-lexicographic order: a canonical
    // tie-break that is a pure function of the result itself, so release
    // order never depends on heap insertion order.
    bool operator>(const PendingResult& other) const {
      if (cost != other.cost) return cost > other.cost;
      return result.tokens > other.result.tokens;
    }
  };

  // Per-slot input/output of the async pipeline. A task is captured fully at
  // selection time (coordinator) and evaluated by an arbitrary pool thread:
  // it must not read nodes_ (which the coordinator reallocates while tasks
  // run) or touch stats_; everything it needs travels by value and every
  // side effect comes back in the SlotOutput.
  struct SlotTask {
    CompiledQuery::StateSet set;
    double cost = 0.0;
    std::vector<tokenizer::TokenId> context;      // model-relevant suffix
    std::vector<tokenizer::TokenId> body_prefix;  // dynamic-canonical only
    std::string body_text;  // decoded body_prefix (dynamic-canonical only)
    CompiledQuery::CanonState canon;  // parent's settled boundary
    std::uint64_t suffix_hash = 0;
    std::shared_ptr<const util::TokenBitset> memo_mask;  // rule-mask memo hit
  };
  struct SlotOutput {
    std::shared_ptr<const std::vector<double>> lp;
    std::shared_ptr<const util::TokenBitset> mask;  // null when unrestricted
    bool mask_from_memo = false;
    std::vector<CompiledQuery::Step> steps;  // transitions surviving all rules
    // canon_states[i] is the settled boundary for steps[i] after filtering
    // (default for body resets); children inherit it at retirement.
    std::vector<CompiledQuery::CanonState> canon_states;
    bool has_eos = false;   // EOS closure fires for this node
    double eos_cost = 0.0;
    std::size_t mask_words = 0;
    std::size_t mask_pruned = 0;
    std::size_t pruned_rules = 0;
    std::size_t pruned_non_canonical = 0;
    std::vector<tokenizer::TokenId> body_scratch;  // reused per-step buffers
    std::string text_scratch;
    std::vector<double> value_scratch;  // allowed_tokens_into partition buffer
  };

  std::vector<tokenizer::TokenId> path_of(std::int32_t node) const;
  // The model-visible context for a node: the last
  // model_.relevant_context_length() tokens of its path (the full path when
  // the model's dependence is unbounded). Walking only the relevant suffix
  // keeps per-pop cost O(window) instead of O(depth). context_into writes
  // into a caller-owned buffer so hot paths can reuse its capacity.
  std::vector<tokenizer::TokenId> context_of(std::int32_t node) const;
  void context_into(std::int32_t node,
                    std::vector<tokenizer::TokenId>& out) const;
  void expand(std::int32_t node_id, const std::vector<double>& lp);
  // Pops up to expansion_batch_size nodes, batch-evaluates their contexts,
  // expands them, and pushes any matches onto pending_results_. The lockstep
  // path (speculative_expansion = false).
  void pump();
  // The async pipeline round (speculative_expansion = true): deterministic
  // selection up to the cost horizon / occupancy target, async submission,
  // in-order retirement overlapping later slots' evaluation.
  void pump_pipeline();
  // Fill-in-place forms: the pipeline reuses one SlotTask/SlotOutput per
  // round slot across rounds, so steady-state rounds allocate nothing.
  void make_task(std::int32_t node_id, SlotTask& task) const;
  void evaluate_slot(const SlotTask& task, SlotOutput& out) const;
  void emit_if_result(std::int32_t node_id);
  bool frontier_empty() const;
  double frontier_min_cost() const;
  void count_speculative_waste();
  void refresh_cache_stats();

  const model::LanguageModel& model_;
  const CompiledQuery& compiled_;
  const SimpleSearchQuery& query_;
  const bool pipeline_;  // speculative_expansion: async pipeline vs lockstep
  std::vector<Node> nodes_;
  std::vector<CompiledQuery::Step> scratch_steps_;  // reused across expansions
  // Lockstep mode's frontier; the pipeline uses the sharded one below.
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> frontier_;
  ShardedFrontier pipe_frontier_;
  // Rule-mask memo (pipeline + restricted decoding only). The query's shared
  // memo when its tag matches our rules + vocabulary, else a private one;
  // null when unrestricted or lockstep (see core/mask_memo.hpp).
  std::shared_ptr<MaskMemo> mask_memo_;
  // Per-round pipeline scratch, reused across rounds (kept capacity is what
  // makes steady-state rounds allocation-free). round_outputs_ slots are
  // written by pool workers during a round — one writer per slot, joined by
  // AsyncBatch::wait before the coordinator reads them.
  struct PipeSlot {
    std::int32_t node;
    std::size_t eval;  // index into round_tasks_, or SIZE_MAX (no model call)
  };
  std::vector<PipeSlot> round_slots_;
  std::vector<SlotTask> round_tasks_;
  std::vector<SlotOutput> round_outputs_;
  std::unordered_set<std::string> emitted_texts_;
  std::priority_queue<PendingResult, std::vector<PendingResult>, std::greater<>>
      pending_results_;
  std::size_t emitted_ = 0;
  bool dedup_text_ = true;
  double last_emitted_cost_ = 0.0;
  bool any_emitted_ = false;
  bool waste_counted_ = false;
  SearchStats stats_;
  model::LanguageModel::CacheStats cache_baseline_;
  bool model_has_cache_ = false;
  util::Timer timer_;
};

// Randomized traversal (§3.3): unbiased sampling from the query language.
// The prefix is drawn uniformly over prefix walks using walk-count edge
// normalization (Appendix C) — or uniformly over edges when the query
// disables normalization (the Figure 9 ablation) — and the suffix is drawn
// from the LLM restricted to the automaton and decoding rules, with EOS
// disambiguating stop-vs-continue at final states.
class RandomSampler {
 public:
  RandomSampler(const model::LanguageModel& model, const CompiledQuery& compiled,
                const SimpleSearchQuery& query, std::uint64_t seed);

  // One sample; nullopt if the attempt dead-ended (caller may retry).
  std::optional<SearchResult> sample_once();

  // Draws query.num_samples samples (with retries bounded by
  // query.max_sample_attempts_factor).
  std::vector<SearchResult> sample_all();

  const SearchStats& stats() const { return stats_; }

  // Decoded text of the prefix portion of the last successful sample
  // (empty for unconditional queries). Used by the edit-position analysis.
  const std::string& last_prefix_text() const { return last_prefix_text_; }

 private:
  bool sample_prefix_tokens(std::vector<tokenizer::TokenId>& out);
  std::optional<SearchResult> sample_once_impl();
  void refresh_cache_stats();

  const model::LanguageModel& model_;
  const CompiledQuery& compiled_;
  const SimpleSearchQuery& query_;
  automata::WalkCounts prefix_walks_;
  util::Pcg32 rng_;
  SearchStats stats_;
  model::LanguageModel::CacheStats cache_baseline_;
  bool model_has_cache_ = false;
  util::Timer timer_;
  std::string last_prefix_text_;
};

// Constrained beam search: the trie/automaton-constrained beam decoding the
// paper relates to (De Cao et al., 2021; §5). Keeps the `beam_width` most
// probable partial paths per step. Compared to Dijkstra it is approximate —
// a path outside the beam is gone for good — but its cost is bounded:
// at most beam_width LLM calls per step for at most sequence_length steps.
// Matches found along the way are collected and returned most probable
// first. Prefix edges bypass decoding rules exactly as in the other
// traversals; the prefix consumes beam slots like any other path.
class BeamSearch {
 public:
  BeamSearch(const model::LanguageModel& model, const CompiledQuery& compiled,
             const SimpleSearchQuery& query);

  // Runs to completion (all beams dead or sequence limit reached).
  std::vector<SearchResult> run();

  const SearchStats& stats() const { return stats_; }

 private:
  struct Beam {
    std::vector<tokenizer::TokenId> tokens;
    CompiledQuery::StateSet set;
    double log_prob = 0.0;
    std::uint32_t body_len = 0;
  };

  void refresh_cache_stats();

  const model::LanguageModel& model_;
  const CompiledQuery& compiled_;
  const SimpleSearchQuery& query_;
  SearchStats stats_;
  model::LanguageModel::CacheStats cache_baseline_;
  bool model_has_cache_ = false;
  util::Timer timer_;
};

}  // namespace relm::core
