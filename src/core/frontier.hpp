#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "util/sync.hpp"

namespace relm::core {

// Sharded min-frontier for the shortest-path executor's async pipeline.
//
// The frontier's total order is (cost, node_id): node ids are assigned in a
// deterministic order by the (single) coordinator, so the pop sequence is a
// pure function of search state — sharding changes which mutex a push takes,
// never which entry pops next. That is what keeps the pipeline byte-identical
// across 1/2/4/8 threads (the differential harness' thread-sweep
// configuration enforces it).
//
// Concurrency contract: push() may be called from any thread and locks
// exactly one shard (node & (kShards-1)); shard ranks are equal, so the rank
// checker statically forbids holding two shards at once. empty/min/pop/size
// are single-consumer (the coordinator): they read a private per-shard top
// cache, re-reading a shard under its lock only when that shard's version
// counter says it mutated since the last look. tests/test_core.cpp hammers
// concurrent pushes against a popping coordinator under tsan.
class ShardedFrontier {
 public:
  static constexpr std::size_t kShards = 8;

  struct Entry {
    double cost;
    std::uint32_t node;
  };

  // Min order with the deterministic node-id tiebreak.
  static bool entry_less(const Entry& a, const Entry& b) {
    if (a.cost != b.cost) return a.cost < b.cost;
    return a.node < b.node;
  }

  ShardedFrontier();
  ~ShardedFrontier();

  ShardedFrontier(const ShardedFrontier&) = delete;
  ShardedFrontier& operator=(const ShardedFrontier&) = delete;

  // Thread-safe.
  void push(double cost, std::uint32_t node);

  // Coordinator only: true when every shard is empty.
  bool empty() const;

  // Coordinator only: the global minimum entry. Precondition: !empty().
  Entry min() const;

  // Coordinator only: removes and returns the global minimum entry.
  // Precondition: !empty().
  Entry pop();

  // Total entries across shards (atomic tally; never takes a lock — the
  // occupancy controller reads this every round).
  std::size_t size() const { return size_.load(std::memory_order_relaxed); }

  // Pops served by a different shard than the previous pop (cross-shard
  // hand-offs; surfaced as the frontier.shard_steals counter).
  std::size_t shard_steals() const { return steals_; }

 private:
  struct Shard;

  // Ensures tops_[s] reflects shard s's current minimum.
  void refresh(std::size_t s) const;
  std::size_t min_shard() const;

  std::unique_ptr<Shard[]> shards_;
  // Coordinator-private mirror of each shard's minimum. Lets min()/pop()
  // scan kShards cached entries instead of taking kShards locks per pop.
  struct CachedTop {
    Entry top{0.0, 0};
    bool has = false;
    std::uint64_t seen_version = 0;
  };
  mutable std::unique_ptr<CachedTop[]> tops_;
  std::atomic<std::size_t> size_{0};
  std::size_t last_shard_ = kShards;  // shard that served the previous pop
  std::size_t steals_ = 0;
};

}  // namespace relm::core
