#include "core/executor.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <unordered_map>

#include "core/token_masks.hpp"
#include "model/decoding.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/errors.hpp"
#include "util/thread_pool.hpp"

namespace relm::core {

using model::allowed_tokens;
using tokenizer::TokenId;

namespace {

// Registry-backed executor metrics (docs/OBSERVABILITY.md catalogue). The
// per-search SearchStats counters stay the per-query attribution surface;
// these accumulate the same events process-wide so --metrics and the bench
// snapshots can attribute cost without a search handle.
struct ExecutorMetrics {
  obs::Counter& llm_calls;
  obs::Counter& expansions;
  obs::Counter& pruned_rules;
  obs::Counter& pruned_non_canonical;
  obs::Counter& mask_words_scanned;
  obs::Counter& mask_pruned;
  obs::Counter& results;
  obs::Histogram& batch_size;
  // Async-pipeline surface (docs/OBSERVABILITY.md): evaluations per pipeline
  // round (the occupancy the controller achieved), nodes popped ahead of
  // settlement, nodes deferred by the budget clamp, evaluations that never
  // beat the last emission, and selections cut by the cost horizon.
  obs::Histogram& batch_occupancy;
  obs::Counter& speculative_expanded;
  obs::Counter& speculative_cancelled;
  obs::Counter& speculative_wasted;
  obs::Counter& horizon_clips;

  static ExecutorMetrics& get() {
    static ExecutorMetrics m{
        obs::Registry::instance().counter("executor.llm_calls"),
        obs::Registry::instance().counter("executor.expansions"),
        obs::Registry::instance().counter("executor.pruned_by_rules"),
        obs::Registry::instance().counter("executor.pruned_non_canonical"),
        obs::Registry::instance().counter("executor.mask_words_scanned"),
        obs::Registry::instance().counter("executor.mask_pruned"),
        obs::Registry::instance().counter("executor.results"),
        obs::Registry::instance().histogram(
            "executor.batch.size", obs::Histogram::default_size_bounds()),
        obs::Registry::instance().histogram(
            "executor.batch_occupancy", obs::Histogram::default_size_bounds()),
        obs::Registry::instance().counter("executor.speculative_expanded"),
        obs::Registry::instance().counter("executor.speculative_cancelled"),
        obs::Registry::instance().counter("executor.speculative_wasted"),
        obs::Registry::instance().counter("executor.speculative_horizon_clips")};
    return m;
  }
};

// Snapshot of the model's cache counters at search start; deltas against it
// attribute cache work to this search in SearchStats.
model::LanguageModel::CacheStats cache_baseline_of(
    const model::LanguageModel& model, bool& has_cache) {
  if (auto stats = model.cache_stats()) {
    has_cache = true;
    return *stats;
  }
  has_cache = false;
  return {};
}

void fill_cache_stats(const model::LanguageModel& model,
                      const model::LanguageModel::CacheStats& baseline,
                      bool has_cache, SearchStats& stats) {
  if (!has_cache) return;
  auto current = model.cache_stats();
  if (!current) return;
  stats.cache_hits = current->hits - baseline.hits;
  stats.cache_misses = current->misses - baseline.misses;
  stats.cache_evictions = current->evictions - baseline.evictions;
}

// Fingerprint of everything a memoized decoding mask depends on besides the
// context suffix: the rules and the vocabulary size.
std::uint64_t mask_memo_tag(const model::DecodingRules& rules,
                            std::size_t vocab) {
  auto mix = [](std::uint64_t h, std::uint64_t v) {
    return h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
  };
  std::uint64_t tag = mix(0x726c6d5f6d61736bULL, vocab);
  tag = mix(tag, rules.top_k ? static_cast<std::uint64_t>(*rules.top_k) + 1
                             : 0);
  tag = mix(tag, rules.top_p ? std::bit_cast<std::uint64_t>(*rules.top_p) + 1
                             : 0);
  tag = mix(tag, std::bit_cast<std::uint64_t>(rules.temperature));
  return tag;
}

}  // namespace

// ---------------------------------------------------------------------------
// ShortestPathSearch
// ---------------------------------------------------------------------------

ShortestPathSearch::ShortestPathSearch(const model::LanguageModel& model,
                                       const CompiledQuery& compiled,
                                       const SimpleSearchQuery& query)
    : model_(model),
      compiled_(compiled),
      query_(query),
      pipeline_(query.speculative_expansion) {
  cache_baseline_ = cache_baseline_of(model_, model_has_cache_);
  if (pipeline_ && !query_.decoding.unrestricted()) {
    // Masks are only valid for one (rules, vocabulary) combination; the tag
    // lets a run share one memo across its queries while a mismatched memo
    // silently degrades to a private (cold but correct) one.
    const std::uint64_t tag = mask_memo_tag(query_.decoding,
                                            model_.vocab_size());
    if (query_.mask_memo && query_.mask_memo->bind_tag(tag)) {
      mask_memo_ = query_.mask_memo;
    } else {
      mask_memo_ = std::make_shared<MaskMemo>();
      mask_memo_->bind_tag(tag);
    }
  }
  Node root;
  root.set = compiled_.initial();
  root.parent = -1;
  root.token = 0;
  root.cost = 0.0;
  root.depth = 0;
  root.body_len = 0;
  root.terminal = false;
  // The node arena grows to roughly branching × expansions; pre-sizing it
  // keeps retirement from stalling on arena reallocation mid-round.
  nodes_.reserve(std::min<std::size_t>(
      std::max<std::size_t>(query_.max_expansions, 1024), 1u << 16));
  nodes_.push_back(root);
  if (pipeline_) {
    pipe_frontier_.push(0.0, 0);
  } else {
    frontier_.push(QueueEntry{0.0, 0});
  }
}

std::vector<TokenId> ShortestPathSearch::path_of(std::int32_t node) const {
  std::vector<TokenId> path;
  for (std::int32_t cur = node; cur > 0; cur = nodes_[cur].parent) {
    path.push_back(nodes_[cur].token);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<TokenId> ShortestPathSearch::context_of(std::int32_t node) const {
  std::vector<TokenId> context;
  context_into(node, context);
  return context;
}

void ShortestPathSearch::context_into(std::int32_t node,
                                      std::vector<TokenId>& out) const {
  const std::size_t depth = nodes_[node].depth;
  const std::size_t len = std::min<std::size_t>(
      depth, model_.relevant_context_length());
  out.resize(len);
  std::int32_t cur = node;
  for (std::size_t i = len; i > 0; --i) {
    out[i - 1] = nodes_[cur].token;
    cur = nodes_[cur].parent;
  }
}

void ShortestPathSearch::refresh_cache_stats() {
  fill_cache_stats(model_, cache_baseline_, model_has_cache_, stats_);
}

void ShortestPathSearch::expand(std::int32_t node_id,
                                const std::vector<double>& lp) {
  RELM_DCHECK(lp.size() == model_.vocab_size(),
              "model distribution size must equal the vocabulary");
  const std::size_t seq_limit = std::min(
      query_.sequence_length.value_or(model_.max_sequence_length()),
      model_.max_sequence_length());
  Node node = nodes_[node_id];  // copy: nodes_ may reallocate below
  if (node.depth >= seq_limit) return;

  util::TokenBitset mask;
  if (!query_.decoding.unrestricted()) {
    mask = allowed_tokens(lp, query_.decoding);
  }

  // Dynamic canonical pruning needs the body token subsequence, which is the
  // last `body_len` tokens of the path (tracked per node across the
  // prefix->body hand-off).
  auto body_path_ok = [&](TokenId next_token, const CompiledQuery::Step& step) {
    if (!compiled_.dynamic_canonical() || !step.body_advanced) return true;
    std::vector<TokenId> body_tokens;
    body_tokens.push_back(next_token);
    std::int32_t cur = node_id;
    for (std::uint32_t i = 0; i < node.body_len; ++i) {
      body_tokens.push_back(nodes_[cur].token);
      cur = nodes_[cur].parent;
    }
    std::reverse(body_tokens.begin(), body_tokens.end());
    std::string body_text = compiled_.tokenizer().decode(body_tokens);
    bool ok = compiled_.canonical_prefix_ok(body_tokens, body_text);
    if (!ok) ++stats_.pruned_non_canonical;
    return ok;
  };

  // Mask-and-scan fast path: the rule filter happens inside expand_masked
  // as a word-wise bitset intersection, so the per-edge probe loop (and its
  // O(vocab) worst case per expansion) disappears entirely.
  const bool fast = query_.use_token_masks && compiled_.has_masks();
  std::vector<CompiledQuery::Step>& steps = scratch_steps_;
  if (fast) {
    CompiledQuery::MaskExpandStats ms;
    compiled_.expand_masked(node.set, mask.empty() ? nullptr : &mask, steps, ms);
    stats_.mask_words_scanned += ms.words_scanned;
    stats_.mask_pruned += ms.pruned;
  } else {
    steps = compiled_.expand(node.set);
  }

  for (const CompiledQuery::Step& step : steps) {
    if (!fast && !step.prefix_only && !mask.empty() && !mask[step.token]) {
      ++stats_.pruned_by_rules;
      continue;  // pruned, and transitively all its extensions (§3.3)
    }
    if (!body_path_ok(step.token, step)) continue;
    RELM_DCHECK(step.token < lp.size(),
                "compiled query emitted a token outside the vocabulary");
    Node child;
    child.set = step.next;
    child.parent = node_id;
    child.token = step.token;
    child.cost = node.cost - lp[step.token];
    RELM_DCHECK(!std::isnan(child.cost) && child.cost >= node.cost - 1e-9,
                "Dijkstra edge costs must be non-negative (-log p)");
    child.depth = node.depth + 1;
    child.body_len = step.body_advanced ? node.body_len + 1 : 0;
    child.terminal = false;
    nodes_.push_back(child);
    frontier_.push(QueueEntry{child.cost, static_cast<std::int32_t>(nodes_.size() - 1)});
  }

  // EOS closure for terminated queries: a match becomes a result only after
  // paying for EOS.
  if (query_.require_eos && compiled_.is_match(node.set)) {
    TokenId eos = model_.eos();
    bool eos_allowed = mask.empty() || mask[eos];
    if (eos_allowed) {
      Node child = node;
      child.parent = node_id;
      child.token = eos;
      child.cost = node.cost - lp[eos];
      child.depth = node.depth + 1;
      child.terminal = true;
      child.expanded = false;
      nodes_.push_back(child);
      frontier_.push(
          QueueEntry{child.cost, static_cast<std::int32_t>(nodes_.size() - 1)});
    } else {
      ++stats_.pruned_by_rules;
    }
  }
}

// Queues `node_id` onto pending_results_ when it is a match (shared by the
// lockstep and pipeline retirement paths; both call it for every settled
// node, in deterministic order).
void ShortestPathSearch::emit_if_result(std::int32_t id) {
  const bool is_result =
      nodes_[id].terminal ||
      (!query_.require_eos && compiled_.is_match(nodes_[id].set));
  if (!is_result) return;

  // Only result nodes pay for a full path reconstruction.
  std::vector<TokenId> tokens = path_of(id);
  if (nodes_[id].terminal) tokens.pop_back();  // drop EOS from the tuple
  std::string text = compiled_.tokenizer().decode(tokens);
  // Final canonicality gate (§3.2 option 2): the incremental check can
  // only reject *settled* deviations; at emission the string is complete,
  // so the body tokens must equal the canonical encoding exactly.
  if (compiled_.dynamic_canonical()) {
    const std::uint32_t body_len = nodes_[id].body_len;
    std::span<const TokenId> body(tokens.data() + (tokens.size() - body_len),
                                  body_len);
    // The body text is the tail of the already-decoded result text; the
    // settled boundary carried on the node (default/empty for the lockstep
    // path) lets the finalizer walk only the unsettled suffix.
    std::size_t body_bytes = 0;
    for (TokenId t : body) {
      body_bytes += compiled_.tokenizer().token_string(t).size();
    }
    std::string_view body_text(text.data() + (text.size() - body_bytes),
                               body_bytes);
    if (!compiled_.canonical_body(body, body_text, nodes_[id].canon)) {
      ++stats_.pruned_non_canonical;
      return;
    }
  }
  // No dedup here: a costlier encoding of a text can reach this point
  // before a cheaper one is discovered (batched rounds pop ahead of
  // discovery). Dedup happens at release time in next(), once the result
  // is provably optimal.
  stats_.elapsed_seconds = timer_.seconds();
  pending_results_.push(PendingResult{
      nodes_[id].cost,
      SearchResult{std::move(tokens), std::move(text), -nodes_[id].cost,
                   stats_.llm_calls, stats_.elapsed_seconds}});
}

void ShortestPathSearch::pump() {
  // Pop the best frontier nodes; evaluate their contexts in one model batch
  // (default batch size 1 = strict Dijkstra); expand; queue any matches.
  RELM_TRACE_SPAN("executor.pump");
  ExecutorMetrics& metrics = ExecutorMetrics::get();
  const std::size_t pruned_rules_before = stats_.pruned_by_rules;
  const std::size_t pruned_non_canonical_before = stats_.pruned_non_canonical;
  const std::size_t mask_words_before = stats_.mask_words_scanned;
  const std::size_t mask_pruned_before = stats_.mask_pruned;
  const std::size_t results_before = pending_results_.size();
  const std::size_t batch = std::max<std::size_t>(query_.expansion_batch_size, 1);
  std::vector<std::int32_t> popped;
  while (popped.size() < batch && !frontier_.empty()) {
    QueueEntry entry = frontier_.top();
    frontier_.pop();
    if (nodes_[entry.node].expanded) continue;
    nodes_[entry.node].expanded = true;
    popped.push_back(entry.node);
  }
  if (popped.empty()) return;

  // Terminal nodes need no model call; the others evaluate in one parallel
  // batch over their model-relevant context suffixes (context_of walks only
  // the suffix, not the whole root-to-node path).
  std::vector<std::vector<TokenId>> eval_contexts;
  std::vector<std::size_t> eval_index(popped.size(), SIZE_MAX);
  for (std::size_t i = 0; i < popped.size(); ++i) {
    if (!nodes_[popped[i]].terminal) {
      eval_index[i] = eval_contexts.size();
      eval_contexts.push_back(context_of(popped[i]));
    }
  }
  std::vector<std::vector<double>> lps =
      model_.next_log_probs_batch(eval_contexts);
  RELM_DCHECK(lps.size() == eval_contexts.size(),
              "batched model evaluation must return one row per context");
  stats_.llm_calls += eval_contexts.size();
  stats_.expansions += eval_contexts.size();

  for (std::size_t i = 0; i < popped.size(); ++i) {
    std::int32_t id = popped[i];
    if (!nodes_[id].terminal) expand(id, lps[eval_index[i]]);
    emit_if_result(id);
  }
  refresh_cache_stats();
  metrics.llm_calls.add(eval_contexts.size());
  metrics.expansions.add(eval_contexts.size());
  metrics.pruned_rules.add(stats_.pruned_by_rules - pruned_rules_before);
  metrics.pruned_non_canonical.add(stats_.pruned_non_canonical -
                                   pruned_non_canonical_before);
  metrics.mask_words_scanned.add(stats_.mask_words_scanned - mask_words_before);
  metrics.mask_pruned.add(stats_.mask_pruned - mask_pruned_before);
  metrics.results.add(pending_results_.size() - results_before);
  metrics.batch_size.observe(static_cast<double>(popped.size()));
}

// ---------------------------------------------------------------------------
// Async pipeline (speculative_expansion)
// ---------------------------------------------------------------------------

void ShortestPathSearch::make_task(std::int32_t node_id,
                                   SlotTask& task) const {
  const Node& node = nodes_[node_id];
  task.set = node.set;
  task.cost = node.cost;
  context_into(node_id, task.context);
  task.body_prefix.clear();
  task.body_text.clear();
  task.canon = node.canon;
  if (compiled_.dynamic_canonical()) {
    // The body token subsequence is the last body_len tokens of the path;
    // captured here because workers must not walk nodes_ (the coordinator
    // reallocates it while they run).
    task.body_prefix.resize(node.body_len);
    std::int32_t cur = node_id;
    for (std::size_t i = node.body_len; i > 0; --i) {
      task.body_prefix[i - 1] = nodes_[cur].token;
      cur = nodes_[cur].parent;
    }
    const tokenizer::BpeTokenizer& tok = compiled_.tokenizer();
    for (TokenId id : task.body_prefix) {
      task.body_text.append(tok.token_string(id));
    }
  }
  task.suffix_hash = 0;
  task.memo_mask = nullptr;
  if (mask_memo_) {
    task.suffix_hash = model::hash_tokens(task.context);
    task.memo_mask = mask_memo_->probe(task.suffix_hash, task.context);
  }
}

void ShortestPathSearch::evaluate_slot(const SlotTask& task,
                                       SlotOutput& out) const {
  out.mask.reset();
  out.mask_from_memo = false;
  out.has_eos = false;
  out.eos_cost = 0.0;
  out.mask_words = 0;
  out.mask_pruned = 0;
  out.pruned_rules = 0;
  out.pruned_non_canonical = 0;
  out.lp = model_.next_log_probs_shared(task.context);
  const std::vector<double>& lp = *out.lp;
  RELM_DCHECK(lp.size() == model_.vocab_size(),
              "model distribution size must equal the vocabulary");

  if (!query_.decoding.unrestricted()) {
    if (task.memo_mask) {
      out.mask = task.memo_mask;
      out.mask_from_memo = true;
    } else {
      // Freshly allocated because the memo publishes it to later searches;
      // the value-select variant still avoids the index permutation.
      auto fresh = std::make_shared<util::TokenBitset>();
      model::allowed_tokens_into(lp, query_.decoding, *fresh,
                                 out.value_scratch);
      out.mask = std::move(fresh);
    }
  }
  // An empty bitset means "no restriction" (mirrors the lockstep path).
  const util::TokenBitset* mask =
      out.mask && !out.mask->empty() ? out.mask.get() : nullptr;

  const bool fast = query_.use_token_masks && compiled_.has_masks();
  if (fast) {
    CompiledQuery::MaskExpandStats ms;
    compiled_.expand_masked(task.set, mask, out.steps, ms);
    out.mask_words = ms.words_scanned;
    out.mask_pruned = ms.pruned;
  } else {
    out.steps = compiled_.expand(task.set);
  }

  std::size_t kept = 0;
  out.canon_states.clear();
  const bool check_canon = compiled_.dynamic_canonical();
  if (check_canon) {
    // Scratch = parent body + one placeholder slot, rewritten per step below
    // (cheaper than re-assembling the prefix for every candidate token).
    out.body_scratch.assign(task.body_prefix.begin(), task.body_prefix.end());
    out.body_scratch.push_back(0);
    out.text_scratch.assign(task.body_text);
  }
  const std::size_t text_base = task.body_text.size();
  for (const CompiledQuery::Step& step : out.steps) {
    if (!fast && !step.prefix_only && mask && !(*mask)[step.token]) {
      ++out.pruned_rules;
      continue;  // pruned, and transitively all its extensions (§3.3)
    }
    CompiledQuery::CanonState canon;  // default: body run resets
    if (check_canon && step.body_advanced) {
      // Child body = task body + this token; resume the settled-boundary
      // check from the parent's state instead of re-walking the body
      // (canonical_prefix_advance), on reused scratch buffers.
      out.body_scratch.back() = step.token;
      out.text_scratch.resize(text_base);
      out.text_scratch.append(compiled_.tokenizer().token_string(step.token));
      canon = task.canon;
      const bool ok = compiled_.canonical_prefix_advance(
          out.body_scratch, out.text_scratch, canon);
      if (!ok) {
        ++out.pruned_non_canonical;
        continue;
      }
    }
    RELM_DCHECK(step.token < lp.size(),
                "compiled query emitted a token outside the vocabulary");
    out.steps[kept] = step;
    out.canon_states.push_back(canon);
    ++kept;
  }
  out.steps.resize(kept);

  if (query_.require_eos && compiled_.is_match(task.set)) {
    const TokenId eos = model_.eos();
    if (!mask || (*mask)[eos]) {
      out.has_eos = true;
      out.eos_cost = task.cost - lp[eos];
    } else {
      ++out.pruned_rules;
    }
  }
}

void ShortestPathSearch::pump_pipeline() {
  RELM_TRACE_SPAN("executor.pump");
  ExecutorMetrics& metrics = ExecutorMetrics::get();
  const std::size_t pruned_rules_before = stats_.pruned_by_rules;
  const std::size_t pruned_non_canonical_before = stats_.pruned_non_canonical;
  const std::size_t mask_words_before = stats_.mask_words_scanned;
  const std::size_t mask_pruned_before = stats_.mask_pruned;
  const std::size_t results_before = pending_results_.size();
  const std::size_t seq_limit = std::min(
      query_.sequence_length.value_or(model_.max_sequence_length()),
      model_.max_sequence_length());
  const bool restricted = !query_.decoding.unrestricted();

  // ---- Selection: a pure function of (frontier, budget, knobs) — never of
  // thread count or timing, which is what keeps outputs byte-identical
  // across 1/2/4/8 threads.
  const std::size_t target = std::max<std::size_t>(query_.target_occupancy, 1);
  const std::size_t cap = std::max<std::size_t>(query_.max_in_flight, 1);
  const std::size_t budget_left =
      query_.max_expansions > stats_.expansions
          ? query_.max_expansions - stats_.expansions
          : 0;
  // Occupancy controller: track frontier depth toward 2x the target (the
  // classic keep-the-pipe-full setpoint), floor 1, ceiling max_in_flight.
  const std::size_t want = std::min(
      cap, std::max<std::size_t>(
               1, std::min(pipe_frontier_.size(), 2 * target)));

  round_slots_.clear();
  round_tasks_.clear();
  double round_min = 0.0;
  bool have_min = false;
  while (round_slots_.size() < want && !pipe_frontier_.empty()) {
    const ShardedFrontier::Entry top = pipe_frontier_.min();
    const std::int32_t id = static_cast<std::int32_t>(top.node);
    if (nodes_[id].expanded) {  // defensive: ids are pushed exactly once
      pipe_frontier_.pop();
      continue;
    }
    if (!have_min) {
      round_min = top.cost;
      have_min = true;
    } else if (top.cost > round_min + query_.speculation_horizon) {
      // Speculating past the horizon is nearly always wasted: this node's
      // children cannot settle before everything cheaper drains.
      ++stats_.horizon_clips;
      break;
    }
    const bool needs_eval =
        !nodes_[id].terminal && nodes_[id].depth < seq_limit;
    if (needs_eval && round_tasks_.size() >= budget_left) {
      // Budget clamp mid-selection: defer the node (the first eval of a
      // round is always admitted — next() only pumps with budget left — so
      // this cannot stall the search).
      ++stats_.speculative_cancelled;
      break;
    }
    pipe_frontier_.pop();
    nodes_[id].expanded = true;
    std::size_t eval = SIZE_MAX;
    if (needs_eval) {
      eval = round_tasks_.size();
      // Grow-and-fill instead of push_back: slots past the high-water mark
      // are constructed once, then refilled in place every round.
      if (round_tasks_.size() == eval) round_tasks_.resize(eval + 1);
      make_task(id, round_tasks_[eval]);
      nodes_[id].evaluated = true;
    }
    round_slots_.push_back(PipeSlot{id, eval});
  }
  if (round_slots_.empty()) return;
  if (round_slots_.size() > 1) {
    stats_.speculative_expanded += round_slots_.size() - 1;
  }
  const std::size_t n_tasks = round_tasks_.size();

  // ---- Submission: one async batch, no barrier. Each task is a pure
  // function of its SlotTask writing only its own output slot (the
  // resize happens before submission; workers never touch the vectors
  // themselves).
  if (round_outputs_.size() < n_tasks) round_outputs_.resize(n_tasks);
  util::ThreadPool::AsyncBatch batch;
  if (n_tasks > 0) {
    batch = util::ThreadPool::shared().submit(
        n_tasks, [this](std::size_t i) {
          evaluate_slot(round_tasks_[i], round_outputs_[i]);
        });
  }

  // ---- Retirement, in submission order: slot i's children/match land
  // while slots > i are still evaluating. All shared-state mutation (node
  // allocation, frontier pushes, stats) happens here, on the coordinator.
  for (const PipeSlot& slot : round_slots_) {
    if (slot.eval == SIZE_MAX) {
      emit_if_result(slot.node);
      continue;
    }
    batch.wait(slot.eval);
    batch.rethrow_if_error();
    ++stats_.llm_calls;
    ++stats_.expansions;
    SlotOutput& out = round_outputs_[slot.eval];
    stats_.mask_words_scanned += out.mask_words;
    stats_.mask_pruned += out.mask_pruned;
    stats_.pruned_by_rules += out.pruned_rules;
    stats_.pruned_non_canonical += out.pruned_non_canonical;
    if (restricted && out.mask) {
      if (out.mask_from_memo) {
        ++stats_.mask_memo_hits;
      } else {
        ++stats_.mask_memo_misses;
        // The suffix is copied (not moved) into the memo so the reused
        // task slot keeps its buffer capacity.
        mask_memo_->insert(round_tasks_[slot.eval].suffix_hash,
                           round_tasks_[slot.eval].context, out.mask);
      }
    }

    const Node parent = nodes_[slot.node];  // copy: nodes_ reallocates below
    for (std::size_t s = 0; s < out.steps.size(); ++s) {
      const CompiledQuery::Step& step = out.steps[s];
      Node child;
      child.set = step.next;
      child.parent = slot.node;
      child.token = step.token;
      child.cost = parent.cost - (*out.lp)[step.token];
      RELM_DCHECK(!std::isnan(child.cost) && child.cost >= parent.cost - 1e-9,
                  "Dijkstra edge costs must be non-negative (-log p)");
      child.depth = parent.depth + 1;
      child.body_len = step.body_advanced ? parent.body_len + 1 : 0;
      child.canon = out.canon_states[s];
      child.terminal = false;
      nodes_.push_back(child);
      pipe_frontier_.push(child.cost,
                          static_cast<std::uint32_t>(nodes_.size() - 1));
    }
    if (out.has_eos) {
      Node child = parent;
      child.parent = slot.node;
      child.token = model_.eos();
      child.cost = out.eos_cost;
      child.depth = parent.depth + 1;
      child.terminal = true;
      child.expanded = false;
      child.evaluated = false;
      nodes_.push_back(child);
      pipe_frontier_.push(child.cost,
                          static_cast<std::uint32_t>(nodes_.size() - 1));
    }
    emit_if_result(slot.node);
  }
  batch.wait_all();
  batch.rethrow_if_error();

  ++stats_.pump_rounds;
  stats_.frontier_shard_steals = pipe_frontier_.shard_steals();
  refresh_cache_stats();
  metrics.llm_calls.add(n_tasks);
  metrics.expansions.add(n_tasks);
  metrics.pruned_rules.add(stats_.pruned_by_rules - pruned_rules_before);
  metrics.pruned_non_canonical.add(stats_.pruned_non_canonical -
                                   pruned_non_canonical_before);
  metrics.mask_words_scanned.add(stats_.mask_words_scanned - mask_words_before);
  metrics.mask_pruned.add(stats_.mask_pruned - mask_pruned_before);
  metrics.results.add(pending_results_.size() - results_before);
  metrics.batch_size.observe(static_cast<double>(round_slots_.size()));
  if (n_tasks > 0) {
    metrics.batch_occupancy.observe(static_cast<double>(n_tasks));
  }
  if (round_slots_.size() > 1) {
    metrics.speculative_expanded.add(round_slots_.size() - 1);
  }
}

bool ShortestPathSearch::frontier_empty() const {
  return pipeline_ ? pipe_frontier_.empty() : frontier_.empty();
}

double ShortestPathSearch::frontier_min_cost() const {
  return pipeline_ ? pipe_frontier_.min().cost : frontier_.top().cost;
}

void ShortestPathSearch::count_speculative_waste() {
  if (!pipeline_ || waste_counted_) return;
  waste_counted_ = true;
  std::size_t wasted = 0;
  for (const Node& node : nodes_) {
    if (node.evaluated && (!any_emitted_ || node.cost > last_emitted_cost_)) {
      ++wasted;
    }
  }
  stats_.speculative_wasted = wasted;
  ExecutorMetrics::get().speculative_wasted.add(wasted);
}

std::optional<SearchResult> ShortestPathSearch::next() {
  // Empty-language fast path: a vacuous query (`a & !a`) has no frontier
  // worth expanding — return exhausted with zero model calls.
  if (compiled_.empty_language()) {
    stats_.elapsed_seconds = timer_.seconds();
    return std::nullopt;
  }
  for (;;) {
    // A pending match is settled once no frontier node could still tie it:
    // every undiscovered path must extend some frontier node, so it can only
    // cost more. The comparison is STRICT — an equal-cost frontier node may
    // itself be an undiscovered member of the same tie class, and holding the
    // release until the whole class is pending makes tie emission follow the
    // heap's canonical (cost, token-path) order instead of discovery order.
    // Discovery order differs between the lockstep and speculative pipelines
    // (and is why they would otherwise disagree on exact-cost ties); the
    // settled class is identical in both, so draining it from the heap is
    // what keeps their outputs byte-identical. When the expansion budget is
    // spent the frontier is dead and the held-back matches drain in cost
    // order.
    const bool budget_spent = stats_.expansions >= query_.max_expansions;
    while (!pending_results_.empty() &&
           (budget_spent || frontier_empty() ||
            pending_results_.top().cost < frontier_min_cost())) {
      if (emitted_ >= query_.max_results) {
        count_speculative_waste();
        return std::nullopt;
      }
      SearchResult result =
          std::move(const_cast<PendingResult&>(pending_results_.top()).result);
      pending_results_.pop();
      if (dedup_text_ && !emitted_texts_.insert(result.text).second) continue;
      ++emitted_;
      last_emitted_cost_ = -result.log_prob;
      any_emitted_ = true;
      return result;
    }
    if (emitted_ >= query_.max_results) {
      count_speculative_waste();
      return std::nullopt;
    }
    if (budget_spent) {
      count_speculative_waste();
      return std::nullopt;
    }
    if (frontier_empty()) {
      stats_.elapsed_seconds = timer_.seconds();
      count_speculative_waste();
      return std::nullopt;
    }
    if (pipeline_) {
      pump_pipeline();
    } else {
      pump();
    }
  }
}

std::vector<SearchResult> ShortestPathSearch::all() {
  std::vector<SearchResult> out;
  while (auto result = next()) out.push_back(std::move(*result));
  return out;
}

// ---------------------------------------------------------------------------
// RandomSampler
// ---------------------------------------------------------------------------

RandomSampler::RandomSampler(const model::LanguageModel& model,
                             const CompiledQuery& compiled,
                             const SimpleSearchQuery& query, std::uint64_t seed)
    : model_(model),
      compiled_(compiled),
      query_(query),
      prefix_walks_(compiled.prefix_automaton(),
                    std::min(query.sequence_length.value_or(model.max_sequence_length()),
                             model.max_sequence_length())),
      // Stream 0 of the counter-based scheme is Pcg32(seed) exactly, so the
      // sampler's draw sequence is unchanged by the StreamRng extraction
      // (pinned bit-for-bit by a regression test). The generate engine seeds
      // stream i of the same scheme for its i-th concurrent stream.
      rng_(util::StreamRng::stream(seed, 0)) {
  cache_baseline_ = cache_baseline_of(model_, model_has_cache_);
}

void RandomSampler::refresh_cache_stats() {
  fill_cache_stats(model_, cache_baseline_, model_has_cache_, stats_);
}

std::optional<SearchResult> RandomSampler::sample_once() {
  RELM_TRACE_SPAN("executor.sample");
  // Empty-language fast path: every attempt would dead-end; skip the model.
  if (compiled_.empty_language()) return std::nullopt;
  ExecutorMetrics& metrics = ExecutorMetrics::get();
  const std::size_t llm_calls_before = stats_.llm_calls;
  const std::size_t pruned_rules_before = stats_.pruned_by_rules;
  const std::size_t pruned_non_canonical_before = stats_.pruned_non_canonical;
  const std::size_t mask_words_before = stats_.mask_words_scanned;
  const std::size_t mask_pruned_before = stats_.mask_pruned;
  std::optional<SearchResult> result = sample_once_impl();
  refresh_cache_stats();
  metrics.llm_calls.add(stats_.llm_calls - llm_calls_before);
  metrics.pruned_rules.add(stats_.pruned_by_rules - pruned_rules_before);
  metrics.pruned_non_canonical.add(stats_.pruned_non_canonical -
                                   pruned_non_canonical_before);
  metrics.mask_words_scanned.add(stats_.mask_words_scanned - mask_words_before);
  metrics.mask_pruned.add(stats_.mask_pruned - mask_pruned_before);
  if (result) metrics.results.add(1);
  return result;
}

bool RandomSampler::sample_prefix_tokens(std::vector<TokenId>& out) {
  out.clear();
  const automata::Dfa& pa = compiled_.prefix_automaton();
  if (query_.walk_normalized_sampling) {
    std::vector<automata::Symbol> walk;
    if (!prefix_walks_.sample_uniform_walk(pa, rng_, walk)) return false;
    out.assign(walk.begin(), walk.end());
    return true;
  }
  // Unnormalized ablation (Appendix C / Figure 9): each decision — stop here
  // (if final) or take an outgoing edge — is uniform, which biases toward
  // early edits.
  automata::StateId state = pa.start();
  const std::size_t limit = prefix_walks_.max_len();
  for (std::size_t step = 0; step <= limit; ++step) {
    auto edges = pa.edges(state);
    bool can_stop = pa.is_final(state);
    std::size_t options = edges.size() + (can_stop ? 1 : 0);
    if (options == 0) return false;
    std::size_t pick = rng_.bounded(static_cast<std::uint32_t>(options));
    if (can_stop && pick == edges.size()) return true;
    const automata::Edge& e = edges[pick];
    out.push_back(static_cast<TokenId>(e.symbol));
    state = e.to;
  }
  return pa.is_final(state);
}

std::optional<SearchResult> RandomSampler::sample_once_impl() {
  ++stats_.sample_attempts;
  const std::size_t seq_limit = std::min(
      query_.sequence_length.value_or(model_.max_sequence_length()),
      model_.max_sequence_length());

  // Phase 1: prefix, uniform over prefix walks (bypasses decoding rules).
  std::vector<TokenId> prefix_tokens;
  if (!sample_prefix_tokens(prefix_tokens)) {
    ++stats_.sample_dead_ends;
    return std::nullopt;
  }

  // Phase 2: body, LLM-weighted within the automaton.
  std::vector<TokenId> context(prefix_tokens);
  std::vector<TokenId> body_tokens;
  std::string body_text;
  double body_log_prob = 0.0;
  automata::StateId body_state = compiled_.body_automaton().start();
  const automata::Dfa& ba = compiled_.body_automaton();

  for (;;) {
    if (context.size() >= seq_limit) {
      // Budget exhausted. A plain query accepts whatever the automaton
      // accepts; a terminated (require_eos) query cannot accept here — the
      // EOS token it still owes would exceed the sequence budget.
      if (ba.is_final(body_state) && !query_.require_eos) break;
      ++stats_.sample_dead_ends;
      return std::nullopt;
    }
    auto edges = ba.edges(body_state);
    bool at_final = ba.is_final(body_state);
    // An unambiguous stop (final state, no way to continue) ends a plain
    // sample for free. A terminated query still owes p(EOS | string): fall
    // through so the candidate loop below offers EOS as the only option —
    // paying its probability and respecting the decoding mask.
    if (edges.empty() && at_final && !query_.require_eos) break;

    std::vector<double> lp = model_.next_log_probs(context);
    ++stats_.llm_calls;
    RELM_DCHECK(lp.size() == model_.vocab_size(),
                "model distribution size must equal the vocabulary");
    util::TokenBitset mask;
    if (!query_.decoding.unrestricted()) {
      mask = allowed_tokens(lp, query_.decoding);
    }

    // Edges surviving the decoding rules, as indices into `edges`. The mask
    // fast path intersects the state's bitmask with the rule mask word-wise;
    // a surviving bit's rank within the state row *is* its edge index
    // (edges are token-sorted, and the CSR index was built in that order).
    std::vector<std::size_t> allowed_idx;
    allowed_idx.reserve(edges.size());
    if (query_.use_token_masks && compiled_.has_masks()) {
      const TokenMaskTable& bm = compiled_.artifact().body.masks;
      const std::uint64_t* row = bm.state_words(body_state);
      const std::uint64_t* rule_words =
          mask.empty() ? nullptr : mask.words().data();
      std::size_t rank_base = 0;
      for (std::uint32_t w = 0; w < bm.words_per_state; ++w) {
        const std::uint64_t word = row[w];
        const std::uint64_t surv = rule_words ? (word & rule_words[w]) : word;
        ++stats_.mask_words_scanned;
        stats_.mask_pruned += std::size_t(std::popcount(word)) -
                              std::size_t(std::popcount(surv));
        std::uint64_t bits = surv;
        while (bits != 0) {
          const int b = std::countr_zero(bits);
          bits &= bits - 1;
          allowed_idx.push_back(
              rank_base + std::size_t(std::popcount(word & ((1ull << b) - 1))));
        }
        rank_base += std::size_t(std::popcount(word));
      }
    } else {
      for (std::size_t i = 0; i < edges.size(); ++i) {
        TokenId t = static_cast<TokenId>(edges[i].symbol);
        if (!mask.empty() && !mask[t]) {
          ++stats_.pruned_by_rules;
          continue;
        }
        allowed_idx.push_back(i);
      }
    }

    // Candidate weights: surviving automaton edges (plus EOS-as-stop at
    // final states), renormalized over true model probabilities (§3.3).
    std::vector<double> weights;
    weights.reserve(allowed_idx.size() + 1);
    std::vector<std::size_t> candidate_edges;
    for (std::size_t i : allowed_idx) {
      TokenId t = static_cast<TokenId>(edges[i].symbol);
      // Dynamic canonical pruning of the candidate.
      if (compiled_.dynamic_canonical()) {
        std::vector<TokenId> candidate(body_tokens);
        candidate.push_back(t);
        std::string text = body_text + compiled_.tokenizer().token_string(t);
        if (!compiled_.canonical_prefix_ok(candidate, text)) {
          ++stats_.pruned_non_canonical;
          continue;
        }
      }
      candidate_edges.push_back(i);
      weights.push_back(std::exp(lp[t]));
    }
    bool eos_stop_available = false;
    if (at_final) {
      TokenId eos = model_.eos();
      bool allowed = mask.empty() || mask[eos];
      if (allowed) {
        eos_stop_available = true;
        weights.push_back(std::exp(lp[eos]));
      }
    }
    if (weights.empty()) {
      ++stats_.sample_dead_ends;
      return std::nullopt;
    }
    std::size_t pick = rng_.weighted(weights);
    if (pick >= weights.size()) {
      ++stats_.sample_dead_ends;
      return std::nullopt;
    }
    if (eos_stop_available && pick == weights.size() - 1) {
      body_log_prob += lp[model_.eos()];
      break;  // EOS: accept
    }

    const automata::Edge& e = edges[candidate_edges[pick]];
    TokenId t = static_cast<TokenId>(e.symbol);
    body_log_prob += lp[t];
    context.push_back(t);
    body_tokens.push_back(t);
    body_text += compiled_.tokenizer().token_string(t);
    body_state = e.to;
  }

  // Final canonicality gate for dynamic-canonical queries: the completed
  // body must be exactly its canonical encoding.
  if (compiled_.dynamic_canonical()) {
    std::vector<TokenId> canonical = compiled_.tokenizer().encode(body_text);
    if (canonical != body_tokens) {
      ++stats_.pruned_non_canonical;
      ++stats_.sample_dead_ends;
      return std::nullopt;
    }
  }

  last_prefix_text_ = compiled_.tokenizer().decode(prefix_tokens);
  std::string text = last_prefix_text_ + body_text;
  stats_.elapsed_seconds = timer_.seconds();
  // log_prob covers the body given the prefix (the prefix is uniform by
  // construction, not model-weighted).
  return SearchResult{std::move(context), std::move(text), body_log_prob,
                      stats_.llm_calls, stats_.elapsed_seconds};
}

std::vector<SearchResult> RandomSampler::sample_all() {
  std::vector<SearchResult> out;
  // Empty-language fast path: nothing to sample, zero model calls.
  if (compiled_.empty_language()) {
    stats_.elapsed_seconds = timer_.seconds();
    return out;
  }
  const std::size_t max_attempts =
      query_.num_samples * query_.max_sample_attempts_factor;
  std::size_t attempts = 0;
  while (out.size() < query_.num_samples && attempts < max_attempts) {
    ++attempts;
    if (auto result = sample_once()) out.push_back(std::move(*result));
  }
  stats_.elapsed_seconds = timer_.seconds();
  return out;
}

// ---------------------------------------------------------------------------
// BeamSearch
// ---------------------------------------------------------------------------

BeamSearch::BeamSearch(const model::LanguageModel& model,
                       const CompiledQuery& compiled,
                       const SimpleSearchQuery& query)
    : model_(model), compiled_(compiled), query_(query) {
  cache_baseline_ = cache_baseline_of(model_, model_has_cache_);
}

void BeamSearch::refresh_cache_stats() {
  fill_cache_stats(model_, cache_baseline_, model_has_cache_, stats_);
}

std::vector<SearchResult> BeamSearch::run() {
  RELM_TRACE_SPAN("executor.beam");
  // Empty-language fast path: no beam can ever reach a match.
  if (compiled_.empty_language()) {
    stats_.elapsed_seconds = timer_.seconds();
    return {};
  }
  ExecutorMetrics& metrics = ExecutorMetrics::get();
  const std::size_t seq_limit = std::min(
      query_.sequence_length.value_or(model_.max_sequence_length()),
      model_.max_sequence_length());
  const std::size_t width = std::max<std::size_t>(query_.beam_width, 1);

  std::vector<Beam> beams{Beam{{}, compiled_.initial(), 0.0, 0}};
  std::vector<SearchResult> matches;
  std::unordered_map<std::string, std::size_t> emitted;  // text -> match index

  auto record_match = [&](const Beam& beam, double final_log_prob) {
    if (compiled_.dynamic_canonical()) {
      // Final canonicality gate, as in the other traversals.
      std::span<const TokenId> body(
          beam.tokens.data() + (beam.tokens.size() - beam.body_len),
          beam.body_len);
      std::string body_text = compiled_.tokenizer().decode(body);
      std::vector<TokenId> canonical = compiled_.tokenizer().encode(body_text);
      if (canonical.size() != body.size() ||
          !std::equal(canonical.begin(), canonical.end(), body.begin())) {
        ++stats_.pruned_non_canonical;
        return;
      }
    }
    std::string text = compiled_.tokenizer().decode(beam.tokens);
    // Text dedup keeps the most probable token path for each string —
    // matching ShortestPathSearch, whose cheapest-first pops make its
    // first-wins dedup equivalent. Beam matches are recorded in depth
    // order, not cost order, so first-wins here would keep an arbitrary
    // (possibly worse) encoding of the same string.
    auto [it, inserted] = emitted.emplace(text, matches.size());
    if (!inserted) {
      if (final_log_prob > matches[it->second].log_prob) {
        stats_.elapsed_seconds = timer_.seconds();
        matches[it->second] =
            SearchResult{beam.tokens, std::move(text), final_log_prob,
                         stats_.llm_calls, stats_.elapsed_seconds};
      }
      return;
    }
    stats_.elapsed_seconds = timer_.seconds();
    matches.push_back(SearchResult{beam.tokens, std::move(text), final_log_prob,
                                   stats_.llm_calls, stats_.elapsed_seconds});
  };

  // Each step evaluates every live beam in one batched (parallel) model
  // call instead of a per-beam serial loop; contexts are trimmed to the
  // model's relevant suffix, which lets a CachingModel share entries across
  // beams with a common tail.
  auto beam_contexts = [&](const std::vector<Beam>& live) {
    std::vector<std::vector<TokenId>> contexts;
    contexts.reserve(live.size());
    for (const Beam& beam : live) {
      std::span<const TokenId> suffix = model::relevant_suffix(model_, beam.tokens);
      contexts.emplace_back(suffix.begin(), suffix.end());
    }
    return contexts;
  };

  for (std::size_t step = 0; step < seq_limit && !beams.empty(); ++step) {
    RELM_TRACE_SPAN("executor.beam_step");
    std::vector<std::vector<double>> lps =
        model_.next_log_probs_batch(beam_contexts(beams));
    RELM_DCHECK(lps.size() == beams.size(),
                "batched model evaluation must return one row per beam");
    stats_.llm_calls += beams.size();
    stats_.expansions += beams.size();
    metrics.llm_calls.add(beams.size());
    metrics.expansions.add(beams.size());
    metrics.batch_size.observe(static_cast<double>(beams.size()));

    std::vector<Beam> candidates;
    std::vector<CompiledQuery::Step> scratch_steps;
    const bool fast = query_.use_token_masks && compiled_.has_masks();
    for (std::size_t b = 0; b < beams.size(); ++b) {
      const Beam& beam = beams[b];
      const std::vector<double>& lp = lps[b];
      util::TokenBitset mask;
      if (!query_.decoding.unrestricted()) {
        mask = allowed_tokens(lp, query_.decoding);
      }

      // A match at this beam is recorded now (it may fall out of the beam).
      if (compiled_.is_match(beam.set)) {
        if (query_.require_eos) {
          TokenId eos = model_.eos();
          if (mask.empty() || mask[eos]) {
            record_match(beam, beam.log_prob + lp[eos]);
          }
        } else {
          record_match(beam, beam.log_prob);
        }
      }

      // Mask-and-scan fast path, as in ShortestPathSearch::expand: the rule
      // filter runs as a word-wise intersection inside expand_masked.
      std::vector<CompiledQuery::Step>& steps = scratch_steps;
      if (fast) {
        CompiledQuery::MaskExpandStats ms;
        compiled_.expand_masked(beam.set, mask.empty() ? nullptr : &mask,
                                steps, ms);
        stats_.mask_words_scanned += ms.words_scanned;
        stats_.mask_pruned += ms.pruned;
      } else {
        steps = compiled_.expand(beam.set);
      }
      for (const CompiledQuery::Step& next : steps) {
        if (!fast && !next.prefix_only && !mask.empty() && !mask[next.token]) {
          ++stats_.pruned_by_rules;
          continue;
        }
        Beam child;
        child.tokens = beam.tokens;
        child.tokens.push_back(next.token);
        child.set = next.next;
        child.log_prob = beam.log_prob + lp[next.token];
        child.body_len = next.body_advanced ? beam.body_len + 1 : 0;
        if (compiled_.dynamic_canonical() && next.body_advanced) {
          std::span<const TokenId> body(
              child.tokens.data() + (child.tokens.size() - child.body_len),
              child.body_len);
          std::string body_text = compiled_.tokenizer().decode(body);
          if (!compiled_.canonical_prefix_ok(body, body_text)) {
            ++stats_.pruned_non_canonical;
            continue;
          }
        }
        candidates.push_back(std::move(child));
      }
    }

    if (candidates.size() > width) {
      std::partial_sort(candidates.begin(),
                        candidates.begin() + static_cast<std::ptrdiff_t>(width),
                        candidates.end(), [](const Beam& a, const Beam& b) {
                          return a.log_prob > b.log_prob;
                        });
      candidates.resize(width);
    }
    beams = std::move(candidates);
  }

  // Sequence limit reached: surviving beams that sit on a match state are
  // still results — unless the query requires EOS termination, in which case
  // the EOS token itself would exceed the sequence budget. That mirrors
  // ShortestPathSearch, whose EOS closure refuses to extend a path already
  // at the limit: a terminated match needs room for its EOS.
  if (!query_.require_eos) {
    for (const Beam& beam : beams) {
      if (compiled_.is_match(beam.set)) record_match(beam, beam.log_prob);
    }
  }

  std::sort(matches.begin(), matches.end(),
            [](const SearchResult& a, const SearchResult& b) {
              return a.log_prob > b.log_prob;
            });
  if (matches.size() > query_.max_results) matches.resize(query_.max_results);
  stats_.elapsed_seconds = timer_.seconds();
  refresh_cache_stats();
  metrics.pruned_rules.add(stats_.pruned_by_rules);
  metrics.pruned_non_canonical.add(stats_.pruned_non_canonical);
  metrics.mask_words_scanned.add(stats_.mask_words_scanned);
  metrics.mask_pruned.add(stats_.mask_pruned);
  metrics.results.add(matches.size());
  return matches;
}

}  // namespace relm::core
