#pragma once

#include <cstdint>
#include <vector>

#include "core/executor.hpp"
#include "core/query.hpp"
#include "model/language_model.hpp"
#include "tokenizer/bpe.hpp"

namespace relm {

// Aggregate result of a query run: the matching tuples plus execution
// statistics. The streamed equivalents (ShortestPathSearch::next /
// RandomSampler::sample_once) live in core/executor.hpp.
struct SearchOutcome {
  std::vector<core::SearchResult> results;
  core::SearchStats stats;
};

// The top-level entry point, mirroring `relm.search(model, tokenizer, query)`
// from the paper's Python API (Fig 4 / Fig 11): compiles the query's regexes
// to token automata and executes them with the query's traversal strategy.
//
// `seed` drives random-sampling traversals; shortest-path traversals are
// deterministic and ignore it.
//
// Throws relm::RegexError / relm::QueryError on malformed input.
SearchOutcome search(const model::LanguageModel& model,
                     const tokenizer::BpeTokenizer& tokenizer,
                     const core::SimpleSearchQuery& query,
                     std::uint64_t seed = 0);

}  // namespace relm
