#include "core/compiler.hpp"

#include <vector>

#include "automata/determinize.hpp"
#include "automata/ops.hpp"
#include "obs/trace.hpp"
#include "util/errors.hpp"

namespace relm::core {

namespace {

using automata::Dfa;
using automata::Edge;
using automata::StateId;
using tokenizer::BpeTokenizer;
using tokenizer::TokenId;

// Appendix B, Algorithms 1 + 2, literally: for every DFA state and every
// vocabulary token, DFS-match the token's string from that state; surviving
// walks become shortcut edges. O(V * k * m_max), exactly the paper's bound.
// Measured (bench/micro_compiler) about 2x faster than the trie-sharing
// variant below on the dense cyclic automata real queries produce; the trie
// wins only when long shared literal prefixes dominate.
Dfa build_all_tokens(const Dfa& char_dfa, const BpeTokenizer& tok) {
  RELM_TRACE_SPAN("compile.all_tokens");
  Dfa source = automata::trim(char_dfa);
  Dfa out(static_cast<automata::Symbol>(tok.vocab_size()));
  for (StateId s = 0; s < source.num_states(); ++s) {
    out.add_state(source.is_final(s));
  }
  out.set_start(source.start());
  for (TokenId token = 0; token < tok.vocab_size(); ++token) {
    const std::string& word = tok.token_string(token);
    if (word.empty()) continue;  // EOS
    for (StateId origin = 0; origin < source.num_states(); ++origin) {
      StateId state = origin;
      bool alive = true;
      for (unsigned char c : word) {
        state = source.next(state, c);
        if (state == automata::kNoState) {
          alive = false;
          break;
        }
      }
      if (alive) out.add_edge(origin, token, state);
    }
  }
  return automata::trim(out);
}

// The trie-sharing alternative: from every DFA state, walk (trie node, DFA
// state) pairs; every trie node carrying a token contributes a shortcut
// edge. Shares prefix work across tokens — a win only for large sparse
// automata (long literals); kept as a property-tested alternative.
Dfa build_all_tokens_trie(const Dfa& char_dfa, const BpeTokenizer& tok) {
  Dfa source = automata::trim(char_dfa);
  Dfa out(static_cast<automata::Symbol>(tok.vocab_size()));
  for (StateId s = 0; s < source.num_states(); ++s) {
    out.add_state(source.is_final(s));
  }
  out.set_start(source.start());

  struct WalkItem {
    std::uint32_t trie_node;
    StateId dfa_state;
  };
  std::vector<WalkItem> stack;
  for (StateId origin = 0; origin < source.num_states(); ++origin) {
    stack.clear();
    stack.push_back({tok.trie_root(), origin});
    while (!stack.empty()) {
      WalkItem item = stack.back();
      stack.pop_back();
      for (const Edge& e : source.edges(item.dfa_state)) {
        if (e.symbol > 255) continue;  // character automaton invariant
        std::uint32_t child =
            tok.trie_child(item.trie_node, static_cast<unsigned char>(e.symbol));
        if (child == BpeTokenizer::kNoTrieNode) continue;
        if (auto token = tok.trie_token(child)) {
          out.add_edge(origin, *token, e.to);
        }
        stack.push_back({child, e.to});
      }
    }
  }
  return automata::trim(out);
}

// §3.2 option 1: enumerate every string, encode canonically, build a token
// trie, minimize.
Dfa build_canonical_by_enumeration(const Dfa& char_dfa, const BpeTokenizer& tok,
                                   std::size_t count_hint) {
  RELM_TRACE_SPAN("compile.canonical_enumeration");
  Dfa source = automata::trim(char_dfa);
  std::vector<std::string> strings = automata::enumerate_strings(
      source, count_hint, /*max_len=*/source.num_states() + 1);
  RELM_DCHECK(strings.size() == count_hint,
              "canonical enumeration and count_strings disagree on |L|");

  Dfa out(static_cast<automata::Symbol>(tok.vocab_size()));
  StateId root = out.add_state(false);
  out.set_start(root);
  for (const std::string& s : strings) {
    std::vector<TokenId> tokens = tok.encode(s);
    StateId cur = root;
    for (TokenId t : tokens) {
      StateId next = out.next(cur, t);
      if (next == automata::kNoState) {
        next = out.add_state(false);
        out.add_edge(cur, t, next);
      }
      cur = next;
    }
    out.set_final(cur);
  }
  return automata::minimize(out);
}

}  // namespace

TokenAutomaton compile_token_automaton(const automata::Dfa& char_dfa,
                                       const tokenizer::BpeTokenizer& tok,
                                       TokenizationStrategy strategy,
                                       std::size_t enumeration_budget) {
  RELM_TRACE_SPAN("compile.token_automaton");
  if (char_dfa.num_symbols() != 256) {
    throw relm::QueryError("token compilation requires a byte-level automaton");
  }
  TokenAutomaton result{automata::Dfa(1), false, {}};
  if (strategy == TokenizationStrategy::kAllTokens) {
    result.dfa = build_all_tokens(char_dfa, tok);
    RELM_DCHECK(result.dfa.num_symbols() == tok.vocab_size(),
                "token automaton alphabet must equal the vocabulary");
    return result;
  }

  // Canonical strategy.
  automata::Dfa trimmed = automata::trim(char_dfa);
  bool infinite = automata::is_infinite_language(trimmed);
  std::uint64_t count =
      infinite ? 0 : automata::count_strings(trimmed, trimmed.num_states() + 1);
  if (!infinite && count <= enumeration_budget) {
    result.dfa = build_canonical_by_enumeration(trimmed, tok, count);
  } else {
    result.dfa = build_all_tokens(trimmed, tok);
    result.dynamic_canonical = true;
  }
  RELM_DCHECK(result.dfa.num_symbols() == tok.vocab_size(),
              "token automaton alphabet must equal the vocabulary");
  return result;
}

automata::Dfa build_all_tokens_trie_variant(const automata::Dfa& char_dfa,
                                            const tokenizer::BpeTokenizer& tok) {
  if (char_dfa.num_symbols() != 256) {
    throw relm::QueryError("token compilation requires a byte-level automaton");
  }
  return build_all_tokens_trie(char_dfa, tok);
}

TokenAutomaton epsilon_token_automaton(const tokenizer::BpeTokenizer& tok) {
  automata::Dfa dfa(static_cast<automata::Symbol>(tok.vocab_size()));
  dfa.set_start(dfa.add_state(true));
  return TokenAutomaton{std::move(dfa), false, {}};
}

}  // namespace relm::core
