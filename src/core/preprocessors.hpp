#pragma once

#include <memory>
#include <string>
#include <vector>

#include "automata/automaton.hpp"
#include "automata/regex_ast.hpp"

namespace relm::core {

// Query preprocessors (§3.4): transducer-like rewrites of the Natural
// Language Automaton, applied before token compilation. Domain-specific
// invariances — misspellings, synonyms, stop-word removal — are expressed
// here instead of enumerated by hand.
class Preprocessor {
 public:
  enum class Target { kBody, kPrefix, kBoth };

  virtual ~Preprocessor() = default;
  virtual automata::Dfa apply(const automata::Dfa& language) const = 0;
  virtual Target target() const { return Target::kBody; }
  virtual std::string name() const = 0;

  // Stable fingerprint of the preprocessor's *full* configuration — two
  // preprocessors with equal cache_key() must rewrite every language
  // identically. The artifact cache (src/core/pipeline/cache.hpp) folds
  // these into the query's content address; an empty string marks the
  // preprocessor unkeyable and makes queries carrying it bypass the cache
  // (correct, just never cached). All built-ins are keyable.
  virtual std::string cache_key() const { return ""; }

 protected:
  // "body" / "prefix" / "both", for composing cache keys and diagnostics.
  static const char* target_tag(Target t);
};

// Levenshtein automaton composition: expands the language to all strings
// within `distance` character edits. One instance with distance d is
// equivalent to d chained distance-1 preprocessors.
class LevenshteinPreprocessor : public Preprocessor {
 public:
  explicit LevenshteinPreprocessor(int distance,
                                   Target target = Target::kBoth,
                                   automata::ByteSet alphabet = automata::printable_ascii());
  automata::Dfa apply(const automata::Dfa& language) const override;
  Target target() const override { return target_; }
  std::string name() const override;
  std::string cache_key() const override;

 private:
  int distance_;
  Target target_;
  automata::ByteSet alphabet_;
};

// Filter preprocessor: removes a set of strings from the language (maps them
// to the empty string, in the paper's transducer phrasing). Used for the
// LAMBADA no_stop query (§4.4) and for excluding known-bad content.
class FilterPreprocessor : public Preprocessor {
 public:
  // Removes exactly the given strings.
  FilterPreprocessor(std::vector<std::string> forbidden,
                     Target target = Target::kBody);
  // Removes the language of a regex.
  FilterPreprocessor(const std::string& forbidden_regex, Target target);

  automata::Dfa apply(const automata::Dfa& language) const override;
  Target target() const override { return target_; }
  std::string name() const override { return "filter"; }
  std::string cache_key() const override;

 private:
  automata::Dfa forbidden_;
  Target target_;
};

// Case-insensitivity: every alphabetic transition admits both cases, so the
// query matches regardless of capitalization — the kind of domain invariance
// §3.4 motivates without enumerating variants by hand.
class CaseInsensitivePreprocessor : public Preprocessor {
 public:
  explicit CaseInsensitivePreprocessor(Target target = Target::kBoth)
      : target_(target) {}
  automata::Dfa apply(const automata::Dfa& language) const override;
  Target target() const override { return target_; }
  std::string name() const override { return "case_insensitive"; }
  std::string cache_key() const override;

 private:
  Target target_;
};

// Synonym substitution: an optional rewrite (in the Mihov & Schulz sense the
// paper cites for its shortcut-edge construction) that lets any occurrence
// of a word inside the language also be matched as one of its synonyms.
// Implemented exactly like Appendix B's algorithm, at the character level:
// every walk spelling `word` gains a parallel bridge spelling each synonym.
class SynonymPreprocessor : public Preprocessor {
 public:
  // synonyms[i] = {word, {alternatives...}}.
  SynonymPreprocessor(
      std::vector<std::pair<std::string, std::vector<std::string>>> synonyms,
      Target target = Target::kBody);
  automata::Dfa apply(const automata::Dfa& language) const override;
  Target target() const override { return target_; }
  std::string name() const override { return "synonyms"; }
  std::string cache_key() const override;

 private:
  std::vector<std::pair<std::string, std::vector<std::string>>> synonyms_;
  Target target_;
};

}  // namespace relm::core
