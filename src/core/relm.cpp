#include "core/relm.hpp"

#include "core/compiled_query.hpp"
#include "obs/trace.hpp"

namespace relm {

SearchOutcome search(const model::LanguageModel& model,
                     const tokenizer::BpeTokenizer& tokenizer,
                     const core::SimpleSearchQuery& query, std::uint64_t seed) {
  RELM_TRACE_SPAN("relm.search");
  core::CompiledQuery compiled = core::CompiledQuery::compile(query, tokenizer);
  SearchOutcome outcome;
  RELM_TRACE_SPAN("relm.traverse");
  switch (query.search_strategy) {
    case core::SearchStrategy::kShortestPath: {
      core::ShortestPathSearch search(model, compiled, query);
      outcome.results = search.all();
      outcome.stats = search.stats();
      break;
    }
    case core::SearchStrategy::kRandomSampling: {
      core::RandomSampler sampler(model, compiled, query, seed);
      outcome.results = sampler.sample_all();
      outcome.stats = sampler.stats();
      break;
    }
    case core::SearchStrategy::kBeam: {
      core::BeamSearch beam(model, compiled, query);
      outcome.results = beam.run();
      outcome.stats = beam.stats();
      break;
    }
  }
  return outcome;
}

}  // namespace relm
