#include "core/preprocessors.hpp"

#include "automata/determinize.hpp"
#include "automata/levenshtein.hpp"
#include "automata/ops.hpp"
#include "automata/regex.hpp"
#include "util/errors.hpp"

namespace relm::core {

LevenshteinPreprocessor::LevenshteinPreprocessor(int distance, Target target,
                                                 automata::ByteSet alphabet)
    : distance_(distance), target_(target), alphabet_(alphabet) {
  if (distance < 0) throw relm::QueryError("Levenshtein distance must be >= 0");
}

automata::Dfa LevenshteinPreprocessor::apply(const automata::Dfa& language) const {
  return automata::levenshtein_expand(language, distance_, alphabet_);
}

std::string LevenshteinPreprocessor::name() const {
  return "levenshtein(" + std::to_string(distance_) + ")";
}

namespace {
automata::Dfa union_of_literals(const std::vector<std::string>& strings) {
  automata::Nfa nfa(256);
  automata::StateId start = nfa.add_state();
  nfa.set_start(start);
  for (const std::string& s : strings) {
    automata::StateId cur = start;
    for (unsigned char c : s) {
      automata::StateId next = nfa.add_state();
      nfa.add_edge(cur, c, next);
      cur = next;
    }
    nfa.set_final(cur);
  }
  return automata::minimize(automata::determinize(nfa));
}
}  // namespace

FilterPreprocessor::FilterPreprocessor(std::vector<std::string> forbidden,
                                       Target target)
    : forbidden_(union_of_literals(forbidden)), target_(target) {}

FilterPreprocessor::FilterPreprocessor(const std::string& forbidden_regex,
                                       Target target)
    : forbidden_(automata::compile_regex(forbidden_regex)), target_(target) {}

automata::Dfa FilterPreprocessor::apply(const automata::Dfa& language) const {
  return automata::minimize(automata::difference(
      language, forbidden_, automata::printable_ascii_and_ws()));
}

automata::Dfa CaseInsensitivePreprocessor::apply(
    const automata::Dfa& language) const {
  automata::Nfa nfa(256);
  for (automata::StateId s = 0; s < language.num_states(); ++s) {
    nfa.add_state(language.is_final(s));
  }
  for (automata::StateId s = 0; s < language.num_states(); ++s) {
    for (const automata::Edge& e : language.edges(s)) {
      nfa.add_edge(s, e.symbol, e.to);
      unsigned char c = static_cast<unsigned char>(e.symbol);
      if (c >= 'a' && c <= 'z') {
        nfa.add_edge(s, c - 'a' + 'A', e.to);
      } else if (c >= 'A' && c <= 'Z') {
        nfa.add_edge(s, c - 'A' + 'a', e.to);
      }
    }
  }
  nfa.set_start(language.start());
  return automata::minimize(automata::determinize(nfa));
}

SynonymPreprocessor::SynonymPreprocessor(
    std::vector<std::pair<std::string, std::vector<std::string>>> synonyms,
    Target target)
    : synonyms_(std::move(synonyms)), target_(target) {
  for (const auto& [word, alternatives] : synonyms_) {
    if (word.empty()) throw relm::QueryError("synonym source word is empty");
    for (const auto& alt : alternatives) {
      if (alt.empty()) throw relm::QueryError("synonym alternative is empty");
    }
  }
}

automata::Dfa SynonymPreprocessor::apply(const automata::Dfa& language) const {
  // Copy the DFA into an NFA, then for every walk spelling a source word,
  // bridge its endpoints with each alternative (Appendix B's optional
  // rewrite, with a multi-character bridge instead of one token edge).
  automata::Nfa nfa(256);
  for (automata::StateId s = 0; s < language.num_states(); ++s) {
    nfa.add_state(language.is_final(s));
  }
  for (automata::StateId s = 0; s < language.num_states(); ++s) {
    for (const automata::Edge& e : language.edges(s)) {
      nfa.add_edge(s, e.symbol, e.to);
    }
  }
  nfa.set_start(language.start());

  for (const auto& [word, alternatives] : synonyms_) {
    for (automata::StateId origin = 0; origin < language.num_states(); ++origin) {
      // Deterministic walk of `word` from origin.
      automata::StateId state = origin;
      bool alive = true;
      for (unsigned char c : word) {
        state = language.next(state, c);
        if (state == automata::kNoState) {
          alive = false;
          break;
        }
      }
      if (!alive) continue;
      for (const std::string& alt : alternatives) {
        automata::StateId cur = origin;
        for (std::size_t i = 0; i + 1 < alt.size(); ++i) {
          automata::StateId next = nfa.add_state(false);
          nfa.add_edge(cur, static_cast<unsigned char>(alt[i]), next);
          cur = next;
        }
        nfa.add_edge(cur, static_cast<unsigned char>(alt.back()), state);
      }
    }
  }
  return automata::minimize(automata::determinize(nfa));
}

}  // namespace relm::core
