#include "core/preprocessors.hpp"

#include <cinttypes>
#include <cstdio>
#include <string_view>

#include "automata/determinize.hpp"
#include "automata/levenshtein.hpp"
#include "automata/ops.hpp"
#include "automata/regex.hpp"
#include "automata/serialize.hpp"
#include "util/errors.hpp"

namespace relm::core {

namespace {

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
  return buf;
}

}  // namespace

const char* Preprocessor::target_tag(Target t) {
  switch (t) {
    case Target::kBody: return "body";
    case Target::kPrefix: return "prefix";
    case Target::kBoth: return "both";
  }
  return "?";
}

LevenshteinPreprocessor::LevenshteinPreprocessor(int distance, Target target,
                                                 automata::ByteSet alphabet)
    : distance_(distance), target_(target), alphabet_(alphabet) {
  if (distance < 0) throw relm::QueryError("Levenshtein distance must be >= 0");
}

automata::Dfa LevenshteinPreprocessor::apply(const automata::Dfa& language) const {
  return automata::levenshtein_expand(language, distance_, alphabet_);
}

std::string LevenshteinPreprocessor::name() const {
  return "levenshtein(" + std::to_string(distance_) + ")";
}

std::string LevenshteinPreprocessor::cache_key() const {
  // The alphabet participates: distance-1 over digits and distance-1 over
  // printable ASCII are different rewrites.
  std::uint64_t alpha_hash = 0xcbf29ce484222325ull;
  for (std::size_t c = 0; c < alphabet_.size(); ++c) {
    alpha_hash = (alpha_hash ^ (alphabet_[c] ? 0x31u : 0x30u)) * 0x100000001b3ull;
  }
  return "levenshtein:d=" + std::to_string(distance_) + ":t=" +
         target_tag(target_) + ":a=" + hex64(alpha_hash);
}

namespace {
automata::Dfa union_of_literals(const std::vector<std::string>& strings) {
  automata::Nfa nfa(256);
  automata::StateId start = nfa.add_state();
  nfa.set_start(start);
  for (const std::string& s : strings) {
    automata::StateId cur = start;
    for (unsigned char c : s) {
      automata::StateId next = nfa.add_state();
      nfa.add_edge(cur, c, next);
      cur = next;
    }
    nfa.set_final(cur);
  }
  return automata::minimize(automata::determinize(nfa));
}
}  // namespace

FilterPreprocessor::FilterPreprocessor(std::vector<std::string> forbidden,
                                       Target target)
    : forbidden_(union_of_literals(forbidden)), target_(target) {}

FilterPreprocessor::FilterPreprocessor(const std::string& forbidden_regex,
                                       Target target)
    : forbidden_(automata::compile_regex(forbidden_regex)), target_(target) {}

automata::Dfa FilterPreprocessor::apply(const automata::Dfa& language) const {
  return automata::minimize(automata::difference(
      language, forbidden_, automata::printable_ascii_and_ws()));
}

std::string FilterPreprocessor::cache_key() const {
  // Both constructors normalize to a minimized DFA, whose canonical
  // numbering makes the structural hash a language fingerprint.
  return std::string("filter:t=") + target_tag(target_) + ":l=" +
         hex64(automata::dfa_structural_hash(forbidden_));
}

std::string CaseInsensitivePreprocessor::cache_key() const {
  return std::string("case_insensitive:t=") + target_tag(target_);
}

automata::Dfa CaseInsensitivePreprocessor::apply(
    const automata::Dfa& language) const {
  automata::Nfa nfa(256);
  for (automata::StateId s = 0; s < language.num_states(); ++s) {
    nfa.add_state(language.is_final(s));
  }
  for (automata::StateId s = 0; s < language.num_states(); ++s) {
    for (const automata::Edge& e : language.edges(s)) {
      nfa.add_edge(s, e.symbol, e.to);
      unsigned char c = static_cast<unsigned char>(e.symbol);
      if (c >= 'a' && c <= 'z') {
        nfa.add_edge(s, c - 'a' + 'A', e.to);
      } else if (c >= 'A' && c <= 'Z') {
        nfa.add_edge(s, c - 'A' + 'a', e.to);
      }
    }
  }
  nfa.set_start(language.start());
  return automata::minimize(automata::determinize(nfa));
}

SynonymPreprocessor::SynonymPreprocessor(
    std::vector<std::pair<std::string, std::vector<std::string>>> synonyms,
    Target target)
    : synonyms_(std::move(synonyms)), target_(target) {
  for (const auto& [word, alternatives] : synonyms_) {
    if (word.empty()) throw relm::QueryError("synonym source word is empty");
    for (const auto& alt : alternatives) {
      if (alt.empty()) throw relm::QueryError("synonym alternative is empty");
    }
  }
}

std::string SynonymPreprocessor::cache_key() const {
  // Length-prefixed concatenation: unambiguous under any word/alternative
  // contents, so distinct synonym tables cannot collide textually.
  std::uint64_t h = 0xcbf29ce484222325ull;
  auto fold = [&h](std::string_view s) {
    h = (h ^ s.size()) * 0x100000001b3ull;
    for (unsigned char c : s) h = (h ^ c) * 0x100000001b3ull;
  };
  for (const auto& [word, alternatives] : synonyms_) {
    fold(word);
    for (const auto& alt : alternatives) fold(alt);
  }
  return std::string("synonyms:t=") + target_tag(target_) + ":s=" + hex64(h);
}

automata::Dfa SynonymPreprocessor::apply(const automata::Dfa& language) const {
  // Copy the DFA into an NFA, then for every walk spelling a source word,
  // bridge its endpoints with each alternative (Appendix B's optional
  // rewrite, with a multi-character bridge instead of one token edge).
  automata::Nfa nfa(256);
  for (automata::StateId s = 0; s < language.num_states(); ++s) {
    nfa.add_state(language.is_final(s));
  }
  for (automata::StateId s = 0; s < language.num_states(); ++s) {
    for (const automata::Edge& e : language.edges(s)) {
      nfa.add_edge(s, e.symbol, e.to);
    }
  }
  nfa.set_start(language.start());

  for (const auto& [word, alternatives] : synonyms_) {
    for (automata::StateId origin = 0; origin < language.num_states(); ++origin) {
      // Deterministic walk of `word` from origin.
      automata::StateId state = origin;
      bool alive = true;
      for (unsigned char c : word) {
        state = language.next(state, c);
        if (state == automata::kNoState) {
          alive = false;
          break;
        }
      }
      if (!alive) continue;
      for (const std::string& alt : alternatives) {
        automata::StateId cur = origin;
        for (std::size_t i = 0; i + 1 < alt.size(); ++i) {
          automata::StateId next = nfa.add_state(false);
          nfa.add_edge(cur, static_cast<unsigned char>(alt[i]), next);
          cur = next;
        }
        nfa.add_edge(cur, static_cast<unsigned char>(alt.back()), state);
      }
    }
  }
  return automata::minimize(automata::determinize(nfa));
}

}  // namespace relm::core
