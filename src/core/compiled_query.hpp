#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/compiler.hpp"
#include "core/pipeline/artifact.hpp"
#include "core/query.hpp"
#include "tokenizer/bpe.hpp"
#include "util/token_bitset.hpp"

namespace relm::core {

// A fully compiled query: an immutable pipeline::QueryArtifact (the prefix
// and body token automata plus identity metadata) bound to the tokenizer,
// with the glue the executor needs. The prefix automaton's strings bypass
// decoding rules (§2.4/§3.3); the body automaton's transitions are subject
// to them. The artifact is shared, not owned: the same compiled artifact —
// fresh from the pass pipeline, from the in-memory cache, or reloaded from
// disk — backs any number of CompiledQuery instances, which is what makes
// cached and fresh compiles byte-identical by construction.
//
// Execution state is a (prefix state, body state) pair with kNoState marking
// an inactive machine. Both machines are DFAs; nondeterminism only arises at
// the prefix->body hand-off (a prefix-final state starts the body while the
// prefix may also continue), so a state may have both machines live at once.
class CompiledQuery {
 public:
  struct StateSet {
    automata::StateId prefix_state = automata::kNoState;
    automata::StateId body_state = automata::kNoState;

    friend bool operator==(const StateSet&, const StateSet&) = default;
  };

  struct Step {
    tokenizer::TokenId token;
    StateSet next;
    // True when this token is reachable only through the prefix machine and
    // therefore bypasses decoding rules (it is still costed at its true
    // probability — the paper's startup-latency heuristic).
    bool prefix_only;
    // True when the body machine consumed this token (as opposed to going
    // live at its start state via the prefix hand-off). The executor uses
    // this to reconstruct the body token subsequence for canonicality checks.
    bool body_advanced;
  };

  // Compiles a query against a tokenizer through the pass pipeline
  // (src/core/pipeline/), consulting the process-global artifact cache: a
  // hot (pattern, preprocessors, strategy, vocabulary) tuple is served from
  // memory or disk instead of recompiled.
  static CompiledQuery compile(const SimpleSearchQuery& query,
                               const tokenizer::BpeTokenizer& tok);

  // Binds an already-compiled artifact (cache hit, disk load) to the
  // tokenizer. Throws relm::QueryError when the artifact was compiled
  // against a different vocabulary (fingerprint or alphabet mismatch).
  static CompiledQuery from_artifact(
      std::shared_ptr<const pipeline::QueryArtifact> artifact,
      const tokenizer::BpeTokenizer& tok);

  StateSet initial() const;

  // All token transitions out of `set`, prefix hand-off included.
  std::vector<Step> expand(const StateSet& set) const;

  // Counters fed into SearchStats by the executors: words examined by the
  // word-wise scan, and tokens whose body edge the rule mask eliminated.
  struct MaskExpandStats {
    std::uint64_t words_scanned = 0;
    std::uint64_t pruned = 0;
  };

  // The mask-and-scan fast path: equivalent to expand(set) followed by the
  // executor's rule filter (drop steps with !prefix_only whose token the
  // rule mask rejects), but computed by intersecting the precompiled
  // per-state bitmask with `rule_mask` word-wise and visiting only the
  // surviving bits — O(vocab/64 + survivors) instead of a probe per edge.
  // `rule_mask == nullptr` means unrestricted. Steps are appended to `out`
  // (cleared first) in exactly the slow path's order: body transitions in
  // token order, then unshadowed prefix transitions in token order.
  // Requires has_masks().
  void expand_masked(const StateSet& set, const util::TokenBitset* rule_mask,
                     std::vector<Step>& out, MaskExpandStats& stats) const;

  // True when both automata carry mask tables (the token_masks pass ran and
  // stayed within its memory budget), i.e. expand_masked is available.
  bool has_masks() const {
    return !artifact_->prefix.masks.empty() && !artifact_->body.masks.empty();
  }

  // True when the compiled language is empty (vacuous algebra query like
  // `a & !a`): no token sequence can ever match. Executors check this first
  // and return cleanly with zero model calls.
  bool empty_language() const { return artifact_->empty_language; }

  // A match requires the body machine to be in a final state. (A query with
  // an empty body pattern accepts at the hand-off itself.)
  bool is_match(const StateSet& set) const;

  // Whether any transition leaves the set (false = the only option is to
  // stop; used for EOS disambiguation in sampling, §3.3).
  bool has_continuation(const StateSet& set) const;

  const automata::Dfa& prefix_automaton() const { return artifact_->prefix.dfa; }
  const automata::Dfa& body_automaton() const { return artifact_->body.dfa; }
  bool dynamic_canonical() const { return artifact_->body.dynamic_canonical; }
  bool prefix_dynamic_canonical() const {
    return artifact_->prefix.dynamic_canonical;
  }

  // Dynamic canonicality pruning (§3.2 option 2). `body_text` is the decoded
  // body-so-far and `body_tokens` its token path; returns false when the
  // path already deviates from the canonical (greedy longest-match) encoding
  // on a settled boundary — i.e. a boundary more than max_token_length bytes
  // from the end, which no future input can re-merge.
  bool canonical_prefix_ok(std::span<const tokenizer::TokenId> body_tokens,
                           const std::string& body_text) const;

  // Resumable form of canonical_prefix_ok. Settled greedy decisions are
  // final, so a path that passed the check with `state` settled need not
  // re-verify them when it grows: the child check resumes from the parent's
  // state in O(newly settled decisions) instead of re-walking the whole body
  // (which made per-path verification quadratic in depth). A default state
  // means "nothing settled yet"; on return `state` holds the new settled
  // boundary and is valid for every extension of (body_tokens, body_text).
  struct CanonState {
    std::uint32_t pos = 0;  // settled byte offset into body_text
    std::uint32_t idx = 0;  // settled token index into body_tokens
  };
  bool canonical_prefix_advance(std::span<const tokenizer::TokenId> body_tokens,
                                std::string_view body_text,
                                CanonState& state) const;

  // Emission-time finalization: true iff `body_tokens` IS the canonical
  // (greedy longest-match) encoding of the complete `body_text`. `state` must
  // be a settled boundary previously produced for this body by
  // canonical_prefix_advance (default state = verify from scratch); only the
  // unsettled tail is walked. Equivalent to re-encoding the text and
  // comparing, without the two temporary buffers.
  bool canonical_body(std::span<const tokenizer::TokenId> body_tokens,
                      std::string_view body_text, CanonState state) const;

  const tokenizer::BpeTokenizer& tokenizer() const { return *tok_; }
  const pipeline::QueryArtifact& artifact() const { return *artifact_; }
  std::shared_ptr<const pipeline::QueryArtifact> shared_artifact() const {
    return artifact_;
  }

 private:
  CompiledQuery(std::shared_ptr<const pipeline::QueryArtifact> artifact,
                const tokenizer::BpeTokenizer& tok)
      : artifact_(std::move(artifact)), tok_(&tok) {}

  std::shared_ptr<const pipeline::QueryArtifact> artifact_;
  const tokenizer::BpeTokenizer* tok_;
};

}  // namespace relm::core
