#include "core/analyzer.hpp"

#include <cstdint>
#include <cstdio>

#include "automata/ops.hpp"
#include "automata/regex.hpp"
#include "automata/walks.hpp"
#include "core/compiled_query.hpp"

namespace relm::core {

QueryAnalysis analyze_query(const SimpleSearchQuery& query,
                            const tokenizer::BpeTokenizer& tok) {
  QueryAnalysis analysis;

  // Character automata, with preprocessors applied (same pipeline as
  // CompiledQuery::compile).
  automata::Dfa body_chars = automata::compile_regex(query.query_string.body_str());
  automata::Dfa prefix_chars =
      automata::compile_regex(query.query_string.prefix_str);
  for (const auto& pre : query.preprocessors) {
    using Target = Preprocessor::Target;
    Target t = pre->target();
    if (t == Target::kBody || t == Target::kBoth) body_chars = pre->apply(body_chars);
    if ((t == Target::kPrefix || t == Target::kBoth) &&
        !query.query_string.prefix_str.empty()) {
      prefix_chars = pre->apply(prefix_chars);
    }
  }
  analysis.prefix_char_states = prefix_chars.num_states();
  analysis.body_char_states = body_chars.num_states();
  analysis.body_infinite = automata::is_infinite_language(body_chars);
  analysis.body_string_count = automata::count_strings(
      body_chars, analysis.body_infinite ? 64 : body_chars.num_states() + 1);
  analysis.shortest_match_length = automata::shortest_string_length(body_chars);

  // Token automata via the real compiled query.
  CompiledQuery compiled = CompiledQuery::compile(query, tok);
  const automata::Dfa& prefix_ta = compiled.prefix_automaton();
  const automata::Dfa& body_ta = compiled.body_automaton();
  analysis.prefix_token_states = prefix_ta.num_states();
  analysis.prefix_token_edges = prefix_ta.num_edges();
  analysis.body_token_states = body_ta.num_states();
  analysis.body_token_edges = body_ta.num_edges();
  analysis.dynamic_canonical = compiled.dynamic_canonical();

  const std::size_t horizon = query.sequence_length.value_or(64);
  automata::WalkCounts prefix_walks(prefix_ta, horizon);
  automata::WalkCounts body_walks(body_ta, horizon);
  analysis.prefix_token_paths = prefix_walks.total();
  analysis.body_token_paths = body_walks.total();
  for (automata::StateId s = 0; s < body_ta.num_states(); ++s) {
    analysis.max_body_branching =
        std::max(analysis.max_body_branching,
                 static_cast<double>(body_ta.edges(s).size()));
  }

  // Exhaustion needs roughly one model call per distinct path node; paths x
  // average depth bounds it, branching caps per-node fanout. Per sample, the
  // random traversal costs one call per body token step.
  analysis.exhaustive_call_estimate =
      analysis.prefix_token_paths * std::max(1.0, analysis.body_token_paths);
  analysis.per_sample_call_estimate =
      static_cast<double>(analysis.shortest_match_length.value_or(0)) / 2.0 + 2.0;

  return analysis;
}

std::string QueryAnalysis::summary() const {
  char buffer[1024];
  std::snprintf(
      buffer, sizeof(buffer),
      "character level:\n"
      "  prefix DFA states: %zu\n"
      "  body DFA states:   %zu\n"
      "  body language:     %s (%llu strings%s)\n"
      "  shortest match:    %s\n"
      "token level:\n"
      "  prefix automaton:  %zu states, %zu edges, %.3g paths\n"
      "  body automaton:    %zu states, %zu edges, %.3g paths\n"
      "  canonicalization:  %s\n"
      "  max branching:     %.0f\n"
      "estimates:\n"
      "  exhaustive search: ~%.3g model calls upper bound\n"
      "  random sampling:   ~%.1f model calls per sample\n",
      prefix_char_states, body_char_states,
      body_infinite ? "infinite" : "finite",
      static_cast<unsigned long long>(body_string_count),
      body_string_count == UINT64_MAX ? " (saturated)"
                                      : (body_infinite ? " within 64 chars" : ""),
      shortest_match_length ? std::to_string(*shortest_match_length).c_str()
                            : "(empty language)",
      prefix_token_states, prefix_token_edges, prefix_token_paths,
      body_token_states, body_token_edges, body_token_paths,
      dynamic_canonical ? "dynamic pruning (infinite/over-budget language)"
                        : "exact (enumerated or all-encodings)",
      max_body_branching, exhaustive_call_estimate, per_sample_call_estimate);
  return buffer;
}

}  // namespace relm::core
