#include "core/analyzer.hpp"

#include <cstdint>
#include <cstdio>

#include "automata/ops.hpp"
#include "automata/walks.hpp"
#include "core/compiled_query.hpp"
#include "core/pipeline/pipeline.hpp"

namespace relm::core {

QueryAnalysis analyze_query(const SimpleSearchQuery& query,
                            const tokenizer::BpeTokenizer& tok) {
  QueryAnalysis analysis;

  // One pipeline run yields both the post-preprocessor character automata
  // (intermediates of the preprocess pass) and the final token artifact —
  // the analyzer no longer re-derives the char DFAs on its own.
  pipeline::CompileState state =
      pipeline::Pipeline::standard().run_to_state(query, tok);
  const automata::Dfa& body_chars = *state.body_chars;
  // An empty prefix never enters the char pipeline; its language is {ε},
  // a single-state machine.
  analysis.prefix_char_states =
      state.prefix_chars ? state.prefix_chars->num_states() : 1;
  analysis.body_char_states = body_chars.num_states();
  analysis.body_infinite = automata::is_infinite_language(body_chars);
  analysis.body_string_count = automata::count_strings(
      body_chars, analysis.body_infinite ? 64 : body_chars.num_states() + 1);
  analysis.shortest_match_length = automata::shortest_string_length(body_chars);

  // Token automata via the real compiled artifact.
  CompiledQuery compiled = CompiledQuery::from_artifact(
      std::make_shared<pipeline::QueryArtifact>(std::move(*state.artifact)),
      tok);
  const automata::Dfa& prefix_ta = compiled.prefix_automaton();
  const automata::Dfa& body_ta = compiled.body_automaton();
  analysis.prefix_token_states = prefix_ta.num_states();
  analysis.prefix_token_edges = prefix_ta.num_edges();
  analysis.body_token_states = body_ta.num_states();
  analysis.body_token_edges = body_ta.num_edges();
  analysis.dynamic_canonical = compiled.dynamic_canonical();

  const std::size_t horizon = query.sequence_length.value_or(64);
  automata::WalkCounts prefix_walks(prefix_ta, horizon);
  automata::WalkCounts body_walks(body_ta, horizon);
  analysis.prefix_token_paths = prefix_walks.total();
  analysis.body_token_paths = body_walks.total();
  for (automata::StateId s = 0; s < body_ta.num_states(); ++s) {
    analysis.max_body_branching =
        std::max(analysis.max_body_branching,
                 static_cast<double>(body_ta.edges(s).size()));
  }

  // Exhaustion needs roughly one model call per distinct path node; paths x
  // average depth bounds it, branching caps per-node fanout. Per sample, the
  // random traversal costs one call per body token step.
  analysis.exhaustive_call_estimate =
      analysis.prefix_token_paths * std::max(1.0, analysis.body_token_paths);
  analysis.per_sample_call_estimate =
      static_cast<double>(analysis.shortest_match_length.value_or(0)) / 2.0 + 2.0;

  return analysis;
}

std::string QueryAnalysis::summary() const {
  char buffer[1024];
  std::snprintf(
      buffer, sizeof(buffer),
      "character level:\n"
      "  prefix DFA states: %zu\n"
      "  body DFA states:   %zu\n"
      "  body language:     %s (%llu strings%s)\n"
      "  shortest match:    %s\n"
      "token level:\n"
      "  prefix automaton:  %zu states, %zu edges, %.3g paths\n"
      "  body automaton:    %zu states, %zu edges, %.3g paths\n"
      "  canonicalization:  %s\n"
      "  max branching:     %.0f\n"
      "estimates:\n"
      "  exhaustive search: ~%.3g model calls upper bound\n"
      "  random sampling:   ~%.1f model calls per sample\n",
      prefix_char_states, body_char_states,
      body_infinite ? "infinite" : "finite",
      static_cast<unsigned long long>(body_string_count),
      body_string_count == UINT64_MAX ? " (saturated)"
                                      : (body_infinite ? " within 64 chars" : ""),
      shortest_match_length ? std::to_string(*shortest_match_length).c_str()
                            : "(empty language)",
      prefix_token_states, prefix_token_edges, prefix_token_paths,
      body_token_states, body_token_edges, body_token_paths,
      dynamic_canonical ? "dynamic pruning (infinite/over-budget language)"
                        : "exact (enumerated or all-encodings)",
      max_body_branching, exhaustive_call_estimate, per_sample_call_estimate);
  return buffer;
}

}  // namespace relm::core
