#include "core/mask_memo.hpp"

#include <algorithm>

namespace relm::core {

namespace {
// Bounds total entries across all buckets. Generous: an entry is one suffix
// (a few tokens) plus one shared mask, so the memo stays a few MiB even at
// the cap.
constexpr std::size_t kMaskMemoCap = 8192;
}  // namespace

bool MaskMemo::bind_tag(std::uint64_t tag) {
  if (!tag_) {
    tag_ = tag;
    return true;
  }
  return *tag_ == tag;
}

MaskMemo::Mask MaskMemo::probe(
    std::uint64_t hash, std::span<const tokenizer::TokenId> suffix) const {
  auto it = map_.find(hash);
  if (it == map_.end()) return nullptr;
  for (const Entry& entry : it->second) {
    if (entry.suffix.size() == suffix.size() &&
        std::equal(entry.suffix.begin(), entry.suffix.end(), suffix.begin())) {
      return entry.mask;
    }
  }
  return nullptr;
}

void MaskMemo::insert(std::uint64_t hash,
                      std::vector<tokenizer::TokenId> suffix, Mask mask) {
  if (probe(hash, suffix)) return;  // same suffix retired twice in a round
  if (entries_ >= kMaskMemoCap) {
    map_.clear();
    entries_ = 0;
  }
  map_[hash].push_back(Entry{std::move(suffix), std::move(mask)});
  ++entries_;
}

}  // namespace relm::core
