#include "core/compiled_query.hpp"

#include <algorithm>

#include "core/pipeline/cache.hpp"
#include "obs/trace.hpp"
#include "util/errors.hpp"

namespace relm::core {

using automata::kNoState;
using automata::StateId;
using tokenizer::TokenId;

CompiledQuery CompiledQuery::compile(const SimpleSearchQuery& query,
                                     const tokenizer::BpeTokenizer& tok) {
  return from_artifact(pipeline::compile_cached(query, tok), tok);
}

CompiledQuery CompiledQuery::from_artifact(
    std::shared_ptr<const pipeline::QueryArtifact> artifact,
    const tokenizer::BpeTokenizer& tok) {
  if (!artifact) throw relm::QueryError("null query artifact");
  if (artifact->vocab_fingerprint != pipeline::vocab_fingerprint(tok)) {
    throw relm::QueryError(
        "query artifact was compiled against a different vocabulary "
        "(stale cache entry?)");
  }
  if (artifact->prefix.dfa.num_symbols() != tok.vocab_size() ||
      artifact->body.dfa.num_symbols() != tok.vocab_size()) {
    throw relm::QueryError(
        "query artifact alphabet does not match the tokenizer vocabulary");
  }
  return CompiledQuery(std::move(artifact), tok);
}

CompiledQuery::StateSet CompiledQuery::initial() const {
  const pipeline::QueryArtifact& a = *artifact_;
  StateSet set;
  set.prefix_state = a.prefix.dfa.start();
  if (a.prefix.dfa.is_final(set.prefix_state)) {
    set.body_state = a.body.dfa.start();
  }
  return set;
}

std::vector<CompiledQuery::Step> CompiledQuery::expand(const StateSet& set) const {
  const automata::Dfa& prefix = artifact_->prefix.dfa;
  const automata::Dfa& body = artifact_->body.dfa;
  std::vector<Step> steps;

  // Body transitions.
  if (set.body_state != kNoState) {
    for (const automata::Edge& e : body.edges(set.body_state)) {
      steps.push_back(Step{static_cast<TokenId>(e.symbol),
                           StateSet{kNoState, e.to}, /*prefix_only=*/false,
                           /*body_advanced=*/true});
    }
  }

  // Prefix transitions (merged with body steps on the same token).
  if (set.prefix_state != kNoState) {
    for (const automata::Edge& e : prefix.edges(set.prefix_state)) {
      TokenId token = static_cast<TokenId>(e.symbol);
      StateId body_after = kNoState;
      if (prefix.is_final(e.to)) body_after = body.start();

      auto it = std::find_if(steps.begin(), steps.end(),
                             [&](const Step& s) { return s.token == token; });
      if (it != steps.end()) {
        // Token reachable through both machines: keep both live; not
        // prefix-only (the body interpretation is subject to rules, but the
        // prefix interpretation guarantees admission).
        it->next.prefix_state = e.to;
        if (it->next.body_state == kNoState) it->next.body_state = body_after;
        it->prefix_only = false;
      } else {
        steps.push_back(Step{token, StateSet{e.to, body_after},
                             /*prefix_only=*/true, /*body_advanced=*/false});
      }
    }
  }
  return steps;
}

bool CompiledQuery::is_match(const StateSet& set) const {
  return set.body_state != kNoState && artifact_->body.dfa.is_final(set.body_state);
}

bool CompiledQuery::has_continuation(const StateSet& set) const {
  const pipeline::QueryArtifact& a = *artifact_;
  if (set.body_state != kNoState && !a.body.dfa.edges(set.body_state).empty()) {
    return true;
  }
  if (set.prefix_state != kNoState &&
      !a.prefix.dfa.edges(set.prefix_state).empty()) {
    return true;
  }
  return false;
}

bool CompiledQuery::canonical_prefix_ok(std::span<const TokenId> body_tokens,
                                        const std::string& body_text) const {
  if (!artifact_->body.dynamic_canonical || body_tokens.empty()) return true;

  // Greedy longest-match decisions are final ("settled") at byte offset p as
  // soon as p + max_token_length <= len: every candidate token starting at p
  // is fully visible, so appending more input cannot change the choice. The
  // path must agree with the canonical encoding on every settled decision;
  // the canonical token at p is the longest vocabulary match, so any
  // *different* valid token there is a strict deviation from canonical form.
  const std::size_t len = body_text.size();
  const std::size_t max_tok = tok_->max_token_length();

  std::size_t canon_pos = 0;
  std::size_t path_idx = 0;
  while (canon_pos + max_tok <= len && path_idx < body_tokens.size()) {
    auto match =
        tok_->longest_match(std::string_view(body_text).substr(canon_pos));
    if (!match) return true;  // byte outside vocab: cannot judge, do not prune
    if (body_tokens[path_idx] != *match) return false;
    canon_pos += tok_->token_string(*match).size();
    ++path_idx;
  }
  return true;
}

}  // namespace relm::core
