#include "core/compiled_query.hpp"

#include <algorithm>
#include <bit>

#include "core/pipeline/cache.hpp"
#include "obs/trace.hpp"
#include "util/errors.hpp"

namespace relm::core {

using automata::kNoState;
using automata::StateId;
using tokenizer::TokenId;

CompiledQuery CompiledQuery::compile(const SimpleSearchQuery& query,
                                     const tokenizer::BpeTokenizer& tok) {
  return from_artifact(pipeline::compile_cached(query, tok), tok);
}

CompiledQuery CompiledQuery::from_artifact(
    std::shared_ptr<const pipeline::QueryArtifact> artifact,
    const tokenizer::BpeTokenizer& tok) {
  if (!artifact) throw relm::QueryError("null query artifact");
  if (artifact->vocab_fingerprint != pipeline::vocab_fingerprint(tok)) {
    throw relm::QueryError(
        "query artifact was compiled against a different vocabulary "
        "(stale cache entry?)");
  }
  if (artifact->prefix.dfa.num_symbols() != tok.vocab_size() ||
      artifact->body.dfa.num_symbols() != tok.vocab_size()) {
    throw relm::QueryError(
        "query artifact alphabet does not match the tokenizer vocabulary");
  }
  return CompiledQuery(std::move(artifact), tok);
}

CompiledQuery::StateSet CompiledQuery::initial() const {
  const pipeline::QueryArtifact& a = *artifact_;
  StateSet set;
  set.prefix_state = a.prefix.dfa.start();
  if (a.prefix.dfa.is_final(set.prefix_state)) {
    set.body_state = a.body.dfa.start();
  }
  return set;
}

std::vector<CompiledQuery::Step> CompiledQuery::expand(const StateSet& set) const {
  const automata::Dfa& prefix = artifact_->prefix.dfa;
  const automata::Dfa& body = artifact_->body.dfa;
  std::vector<Step> steps;

  // Body transitions.
  if (set.body_state != kNoState) {
    for (const automata::Edge& e : body.edges(set.body_state)) {
      steps.push_back(Step{static_cast<TokenId>(e.symbol),
                           StateSet{kNoState, e.to}, /*prefix_only=*/false,
                           /*body_advanced=*/true});
    }
  }

  // Prefix transitions (merged with body steps on the same token).
  if (set.prefix_state != kNoState) {
    for (const automata::Edge& e : prefix.edges(set.prefix_state)) {
      TokenId token = static_cast<TokenId>(e.symbol);
      StateId body_after = kNoState;
      if (prefix.is_final(e.to)) body_after = body.start();

      auto it = std::find_if(steps.begin(), steps.end(),
                             [&](const Step& s) { return s.token == token; });
      if (it != steps.end()) {
        // Token reachable through both machines: keep both live; not
        // prefix-only (the body interpretation is subject to rules, but the
        // prefix interpretation guarantees admission).
        it->next.prefix_state = e.to;
        if (it->next.body_state == kNoState) it->next.body_state = body_after;
        it->prefix_only = false;
      } else {
        steps.push_back(Step{token, StateSet{e.to, body_after},
                             /*prefix_only=*/true, /*body_advanced=*/false});
      }
    }
  }
  return steps;
}

void CompiledQuery::expand_masked(const StateSet& set,
                                  const util::TokenBitset* rule_mask,
                                  std::vector<Step>& out,
                                  MaskExpandStats& stats) const {
  const TokenMaskTable& pmask = artifact_->prefix.masks;
  const TokenMaskTable& bmask = artifact_->body.masks;
  const automata::Dfa& prefix = artifact_->prefix.dfa;
  const automata::Dfa& body = artifact_->body.dfa;
  out.clear();

  const std::uint32_t W = bmask.words_per_state;  // == pmask.words_per_state
  const bool body_live = set.body_state != kNoState;
  const bool prefix_live = set.prefix_state != kNoState;
  const std::uint64_t* body_row =
      body_live ? bmask.state_words(set.body_state) : nullptr;
  const std::uint64_t* prefix_row =
      prefix_live ? pmask.state_words(set.prefix_state) : nullptr;
  const std::uint64_t* rule_words =
      rule_mask && !rule_mask->empty() ? rule_mask->words().data() : nullptr;

  // Body transitions: survivors of (state mask ∩ rule mask), token order.
  // A surviving bit's edge is found by rank: the number of set bits before
  // it in the *unmasked* state word, plus the running per-word base — a
  // popcount, not a pointer walk, so cost is words + survivors.
  if (body_live) {
    const std::uint32_t* targets =
        bmask.edge_targets.data() + bmask.edge_offsets[set.body_state];
    const std::uint32_t* ptargets =
        prefix_live ? pmask.edge_targets.data() : nullptr;
    std::uint32_t body_base = 0;
    std::uint32_t prefix_base =
        prefix_live ? pmask.edge_offsets[set.prefix_state] : 0;
    for (std::uint32_t w = 0; w < W; ++w) {
      const std::uint64_t word = body_row[w];
      const std::uint64_t surv = rule_words ? (word & rule_words[w]) : word;
      const std::uint64_t pword = prefix_live ? prefix_row[w] : 0;
      stats.words_scanned += 1;
      stats.pruned +=
          std::uint64_t(std::popcount(word)) - std::uint64_t(std::popcount(surv));
      std::uint64_t bits = surv;
      while (bits != 0) {
        const int b = std::countr_zero(bits);
        bits &= bits - 1;
        const TokenId token = static_cast<TokenId>(w * 64u + std::uint32_t(b));
        const std::uint32_t rank =
            body_base + std::uint32_t(std::popcount(word & ((1ull << b) - 1)));
        Step step{token, StateSet{kNoState, targets[rank]},
                  /*prefix_only=*/false, /*body_advanced=*/true};
        if ((pword >> b) & 1) {
          // Token reachable through both machines (the slow path's merge):
          // the body edge already fixed body_state, so only the prefix side
          // of the state pair is added.
          const std::uint32_t prank =
              prefix_base +
              std::uint32_t(std::popcount(pword & ((1ull << b) - 1)));
          step.next.prefix_state = ptargets[prank];
        }
        out.push_back(step);
      }
      body_base += std::uint32_t(std::popcount(word));
      if (prefix_live) prefix_base += std::uint32_t(std::popcount(pword));
    }
  }

  // Prefix transitions not shadowed by a body edge: appended prefix-only in
  // token order, exactly like the slow path. Decoding rules never prune
  // these (§2.4), so the rule mask is not consulted. Note a prefix edge
  // shadowed by a *rule-pruned* body edge stays dropped — same as the slow
  // path, where the merge marks it !prefix_only and the rule filter kills it.
  if (prefix_live) {
    const std::uint32_t* ptargets = pmask.edge_targets.data();
    std::uint32_t prefix_base = pmask.edge_offsets[set.prefix_state];
    for (std::uint32_t w = 0; w < W; ++w) {
      const std::uint64_t pword = prefix_row[w];
      stats.words_scanned += 1;
      std::uint64_t bits = pword & ~(body_live ? body_row[w] : 0ull);
      while (bits != 0) {
        const int b = std::countr_zero(bits);
        bits &= bits - 1;
        const TokenId token = static_cast<TokenId>(w * 64u + std::uint32_t(b));
        const std::uint32_t prank =
            prefix_base +
            std::uint32_t(std::popcount(pword & ((1ull << b) - 1)));
        const StateId to = ptargets[prank];
        const StateId body_after = prefix.is_final(to) ? body.start() : kNoState;
        out.push_back(Step{token, StateSet{to, body_after},
                           /*prefix_only=*/true, /*body_advanced=*/false});
      }
      prefix_base += std::uint32_t(std::popcount(pword));
    }
  }
}

bool CompiledQuery::is_match(const StateSet& set) const {
  return set.body_state != kNoState && artifact_->body.dfa.is_final(set.body_state);
}

bool CompiledQuery::has_continuation(const StateSet& set) const {
  const pipeline::QueryArtifact& a = *artifact_;
  if (set.body_state != kNoState && !a.body.dfa.edges(set.body_state).empty()) {
    return true;
  }
  if (set.prefix_state != kNoState &&
      !a.prefix.dfa.edges(set.prefix_state).empty()) {
    return true;
  }
  return false;
}

bool CompiledQuery::canonical_prefix_ok(std::span<const TokenId> body_tokens,
                                        const std::string& body_text) const {
  CanonState state;
  return canonical_prefix_advance(body_tokens, body_text, state);
}

bool CompiledQuery::canonical_prefix_advance(
    std::span<const TokenId> body_tokens, std::string_view body_text,
    CanonState& state) const {
  if (!artifact_->body.dynamic_canonical || body_tokens.empty()) return true;

  // Greedy longest-match decisions are final ("settled") at byte offset p as
  // soon as p + max_token_length <= len: every candidate token starting at p
  // is fully visible, so appending more input cannot change the choice. The
  // path must agree with the canonical encoding on every settled decision;
  // the canonical token at p is the longest vocabulary match, so any
  // *different* valid token there is a strict deviation from canonical form.
  // Resuming from `state` is sound because settled decisions depend only on
  // bytes that were already visible when they settled.
  const std::size_t len = body_text.size();
  const std::size_t max_tok = tok_->max_token_length();

  std::size_t canon_pos = state.pos;
  std::size_t path_idx = state.idx;
  while (canon_pos + max_tok <= len && path_idx < body_tokens.size()) {
    auto match = tok_->longest_match(body_text.substr(canon_pos));
    if (!match) return true;  // byte outside vocab: cannot judge, do not prune
    if (body_tokens[path_idx] != *match) return false;
    canon_pos += tok_->token_string(*match).size();
    ++path_idx;
    state.pos = static_cast<std::uint32_t>(canon_pos);
    state.idx = static_cast<std::uint32_t>(path_idx);
  }
  return true;
}

bool CompiledQuery::canonical_body(std::span<const TokenId> body_tokens,
                                   std::string_view body_text,
                                   CanonState state) const {
  if (!artifact_->body.dynamic_canonical) return true;

  // The string is complete, so every greedy decision is final: continue the
  // longest-match walk from the settled boundary and require the path tokens
  // to reproduce it exactly, consuming the whole text. Equivalent to
  // `encode(body_text) == body_tokens` (encode() is the same greedy walk)
  // without re-walking the settled prefix or materializing either buffer.
  const std::size_t len = body_text.size();
  std::size_t pos = state.pos;
  std::size_t idx = state.idx;
  while (pos < len) {
    auto match = tok_->longest_match(body_text.substr(pos));
    if (!match) {
      // encode() throws here too; a body built from vocabulary tokens can
      // only hit this if the vocabulary lacks single-byte coverage.
      throw relm::Error("byte not in tokenizer vocabulary during canonical "
                        "finalization");
    }
    if (idx >= body_tokens.size() || body_tokens[idx] != *match) return false;
    pos += tok_->token_string(*match).size();
    ++idx;
  }
  return idx == body_tokens.size();
}

}  // namespace relm::core
