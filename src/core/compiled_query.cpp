#include "core/compiled_query.hpp"

#include <algorithm>

#include "automata/ops.hpp"
#include "automata/regex.hpp"
#include "obs/trace.hpp"
#include "util/errors.hpp"

namespace relm::core {

using automata::kNoState;
using automata::StateId;
using tokenizer::TokenId;

CompiledQuery CompiledQuery::compile(const SimpleSearchQuery& query,
                                     const tokenizer::BpeTokenizer& tok) {
  RELM_TRACE_SPAN("compile.query");
  const std::string body_pattern = query.query_string.body_str();
  const std::string& prefix_pattern = query.query_string.prefix_str;

  automata::Dfa body_chars = automata::compile_regex(body_pattern);
  automata::Dfa prefix_chars =
      prefix_pattern.empty() ? automata::compile_regex("")
                             : automata::compile_regex(prefix_pattern);

  for (const auto& pre : query.preprocessors) {
    using Target = Preprocessor::Target;
    Target t = pre->target();
    if (t == Target::kBody || t == Target::kBoth) {
      body_chars = pre->apply(body_chars);
    }
    if ((t == Target::kPrefix || t == Target::kBoth) && !prefix_pattern.empty()) {
      prefix_chars = pre->apply(prefix_chars);
    }
  }

  if (automata::is_empty_language(body_chars)) {
    throw relm::QueryError("query body matches no strings after preprocessing");
  }

  TokenAutomaton body = compile_token_automaton(
      body_chars, tok, query.tokenization_strategy,
      query.canonical_enumeration_budget);
  TokenAutomaton prefix =
      prefix_pattern.empty()
          ? epsilon_token_automaton(tok)
          : compile_token_automaton(prefix_chars, tok, query.tokenization_strategy,
                                    query.canonical_enumeration_budget);
  return CompiledQuery(std::move(prefix), std::move(body), tok);
}

CompiledQuery::StateSet CompiledQuery::initial() const {
  StateSet set;
  set.prefix_state = prefix_.dfa.start();
  if (prefix_.dfa.is_final(set.prefix_state)) {
    set.body_state = body_.dfa.start();
  }
  return set;
}

std::vector<CompiledQuery::Step> CompiledQuery::expand(const StateSet& set) const {
  std::vector<Step> steps;

  // Body transitions.
  if (set.body_state != kNoState) {
    for (const automata::Edge& e : body_.dfa.edges(set.body_state)) {
      steps.push_back(Step{static_cast<TokenId>(e.symbol),
                           StateSet{kNoState, e.to}, /*prefix_only=*/false,
                           /*body_advanced=*/true});
    }
  }

  // Prefix transitions (merged with body steps on the same token).
  if (set.prefix_state != kNoState) {
    for (const automata::Edge& e : prefix_.dfa.edges(set.prefix_state)) {
      TokenId token = static_cast<TokenId>(e.symbol);
      StateId body_after = kNoState;
      if (prefix_.dfa.is_final(e.to)) body_after = body_.dfa.start();

      auto it = std::find_if(steps.begin(), steps.end(),
                             [&](const Step& s) { return s.token == token; });
      if (it != steps.end()) {
        // Token reachable through both machines: keep both live; not
        // prefix-only (the body interpretation is subject to rules, but the
        // prefix interpretation guarantees admission).
        it->next.prefix_state = e.to;
        if (it->next.body_state == kNoState) it->next.body_state = body_after;
        it->prefix_only = false;
      } else {
        steps.push_back(Step{token, StateSet{e.to, body_after},
                             /*prefix_only=*/true, /*body_advanced=*/false});
      }
    }
  }
  return steps;
}

bool CompiledQuery::is_match(const StateSet& set) const {
  return set.body_state != kNoState && body_.dfa.is_final(set.body_state);
}

bool CompiledQuery::has_continuation(const StateSet& set) const {
  if (set.body_state != kNoState && !body_.dfa.edges(set.body_state).empty()) {
    return true;
  }
  if (set.prefix_state != kNoState && !prefix_.dfa.edges(set.prefix_state).empty()) {
    return true;
  }
  return false;
}

bool CompiledQuery::canonical_prefix_ok(std::span<const TokenId> body_tokens,
                                        const std::string& body_text) const {
  if (!body_.dynamic_canonical || body_tokens.empty()) return true;

  // Greedy longest-match decisions are final ("settled") at byte offset p as
  // soon as p + max_token_length <= len: every candidate token starting at p
  // is fully visible, so appending more input cannot change the choice. The
  // path must agree with the canonical encoding on every settled decision;
  // the canonical token at p is the longest vocabulary match, so any
  // *different* valid token there is a strict deviation from canonical form.
  const std::size_t len = body_text.size();
  const std::size_t max_tok = tok_->max_token_length();

  std::size_t canon_pos = 0;
  std::size_t path_idx = 0;
  while (canon_pos + max_tok <= len && path_idx < body_tokens.size()) {
    auto match =
        tok_->longest_match(std::string_view(body_text).substr(canon_pos));
    if (!match) return true;  // byte outside vocab: cannot judge, do not prune
    if (body_tokens[path_idx] != *match) return false;
    canon_pos += tok_->token_string(*match).size();
    ++path_idx;
  }
  return true;
}

}  // namespace relm::core
