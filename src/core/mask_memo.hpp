#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "tokenizer/bpe.hpp"
#include "util/token_bitset.hpp"

namespace relm::core {

// Memo of decoding-rule masks keyed by the model-relevant context suffix.
// The mask admitted by a DecodingRules instance is a pure function of the
// model distribution, which is itself a pure function of the suffix — so
// suffix-equal expansions share one mask instead of re-scanning the full
// vocabulary in model::allowed_tokens(). Suffixes repeat mostly ACROSS the
// searches of a run (the same repetition the logit cache exploits), which is
// why the memo is a standalone object: hand the same instance to every query
// of a run via SimpleSearchQuery::mask_memo and the hit rate tracks the
// logit cache's instead of the near-zero within-search rate.
//
// A memo is only valid for one (decoding rules, model) combination.
// bind_tag() enforces this: the executor fingerprints its rules + vocabulary
// and falls back to a private memo when the tag does not match, so an
// accidentally shared memo degrades to correct-but-cold instead of serving
// masks computed under different rules.
//
// Not thread-safe. All access happens on the search coordinator thread, and
// a shared memo must only be used by searches that run sequentially.
class MaskMemo {
 public:
  using Mask = std::shared_ptr<const util::TokenBitset>;

  // Binds the memo to `tag` on first call; afterwards returns whether `tag`
  // is the bound one.
  bool bind_tag(std::uint64_t tag);

  // The memoized mask for `suffix` (whose hash is `hash`), or null. The full
  // suffix is compared to rule out hash collisions.
  Mask probe(std::uint64_t hash,
             std::span<const tokenizer::TokenId> suffix) const;

  // Memoizes `mask` for `suffix`. Duplicate inserts are ignored; on
  // overflow the memo is cleared wholesale, which keeps the policy a pure
  // function of the insertion sequence (an LRU would be too, but clearing is
  // simpler and overflow is rare).
  void insert(std::uint64_t hash, std::vector<tokenizer::TokenId> suffix,
              Mask mask);

  std::size_t size() const { return entries_; }

 private:
  struct Entry {
    std::vector<tokenizer::TokenId> suffix;
    Mask mask;
  };

  std::unordered_map<std::uint64_t, std::vector<Entry>> map_;
  std::size_t entries_ = 0;
  std::optional<std::uint64_t> tag_;
};

}  // namespace relm::core
