#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "automata/automaton.hpp"

namespace relm::core {

// Precomputed per-state transition index for a token automaton — the compile
// side of the Outlines-style mask-and-scan fast path (Willard & Louf). For
// every state it holds
//
//   * a dense bitmask of the outgoing token ids (`words_per_state` 64-bit
//     words, bit t set iff the state has an edge on token t), and
//   * a CSR edge index: per-state [edge_offsets[s], edge_offsets[s+1]) slices
//     of `edge_tokens`/`edge_targets`, sorted by token (the Dfa invariant).
//
// The executor intersects a state's mask with the decoding-rule mask word by
// word and recovers each surviving edge's target by *rank*: the i-th set bit
// of the state mask is the i-th CSR entry, and the rank of a surviving bit is
// a running popcount — O(vocab/64 + survivors) per expansion with no per-edge
// probing and no lockstep pointer walk.
//
// An empty table (num_states == 0) means "masks not built" (memory budget
// exceeded, or a v2 artifact saved without them); executors then fall back to
// the per-edge path. Emptiness is decided only by the query-independent
// budget below, so cached, fresh, and reloaded compiles agree on it.
struct TokenMaskTable {
  std::uint32_t num_states = 0;
  std::uint32_t words_per_state = 0;
  std::vector<std::uint64_t> words;          // num_states * words_per_state
  std::vector<std::uint32_t> edge_offsets;   // num_states + 1
  std::vector<std::uint32_t> edge_tokens;    // num_edges, per-state sorted
  std::vector<std::uint32_t> edge_targets;   // num_edges

  bool empty() const { return num_states == 0; }
  std::size_t num_edges() const {
    return edge_offsets.empty() ? 0 : edge_offsets.back();
  }

  const std::uint64_t* state_words(automata::StateId s) const {
    return words.data() + static_cast<std::size_t>(s) * words_per_state;
  }

  // Approximate heap footprint, for the build budget.
  std::size_t memory_bytes() const {
    return words.size() * sizeof(std::uint64_t) +
           (edge_offsets.size() + edge_tokens.size() + edge_targets.size()) *
               sizeof(std::uint32_t);
  }

  friend bool operator==(const TokenMaskTable&, const TokenMaskTable&) = default;
};

// Hard cap on the combined dense-mask footprint of one artifact (prefix +
// body tables). Dense masks cost num_states * ceil(vocab/64) * 8 bytes, which
// explodes for huge automata over large vocabularies; past the budget the
// compile skips mask materialization and executors keep the per-edge path.
// Must stay a compile-time constant independent of the query so that cache
// keys and artifacts remain deterministic.
inline constexpr std::size_t kTokenMaskBudgetBytes = 256ull << 20;  // 256 MiB

// Bytes build_token_masks(dfa) would allocate, without building it.
std::size_t token_mask_table_bytes(const automata::Dfa& dfa);

// Builds the dense mask + CSR index for a token automaton. The Dfa's
// per-state edge sortedness makes rank order == token order by construction.
TokenMaskTable build_token_masks(const automata::Dfa& dfa);

// Structural cross-check of a (possibly untrusted, e.g. deserialized) table
// against the automaton it claims to index: state/edge counts, offsets
// monotonicity, per-edge token/target agreement, and bit-for-bit mask
// equality. Returns a located diagnostic for the first mismatch, or nullopt
// when the table is exactly the recomputed edge set. Allocation-free.
std::optional<std::string> masks_mismatch(const automata::Dfa& dfa,
                                          const TokenMaskTable& table);

}  // namespace relm::core
