#include "core/generate/generate_engine.hpp"

#include <algorithm>

#include "model/language_model.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace relm::core::generate {

using tokenizer::TokenId;

namespace {

// Registry-backed generate metrics (docs/OBSERVABILITY.md catalogue). The
// per-engine GenerateStats stay the per-run attribution surface; these
// accumulate the same events process-wide for --metrics and bench snapshots.
struct GenerateMetrics {
  obs::Counter& ticks;
  obs::Counter& llm_calls;
  obs::Counter& batch_dedup_hits;
  obs::Counter& tokens;
  obs::Counter& streams_retired;
  obs::Counter& streams_dead_end;
  obs::Histogram& tick_occupancy;
  obs::Gauge& tokens_per_sec;

  static GenerateMetrics& get() {
    static GenerateMetrics m{
        obs::Registry::instance().counter("generate.ticks"),
        obs::Registry::instance().counter("generate.llm_calls"),
        obs::Registry::instance().counter("generate.batch_dedup_hits"),
        obs::Registry::instance().counter("generate.tokens"),
        obs::Registry::instance().counter("generate.streams_retired"),
        obs::Registry::instance().counter("generate.streams_dead_end"),
        obs::Registry::instance().histogram(
            "generate.tick_occupancy", obs::Histogram::default_size_bounds()),
        obs::Registry::instance().gauge("generate.tokens_per_sec")};
    return m;
  }
};

}  // namespace

GenerateEngine::GenerateEngine(const model::LanguageModel& model,
                               const CompiledQuery& compiled,
                               const SimpleSearchQuery& query,
                               std::uint64_t master_seed)
    : model_(model),
      compiled_(compiled),
      query_(query),
      master_seed_(master_seed),
      prefix_walks_(
          compiled.prefix_automaton(),
          std::min(query.sequence_length.value_or(model.max_sequence_length()),
                   model.max_sequence_length())) {}

GenerateEngine::StreamId GenerateEngine::add_stream(StreamSpec spec) {
  const StreamId id = streams_.size();
  const std::uint64_t rng_stream = spec.rng_stream.value_or(id);
  spec.rng_stream = rng_stream;
  streams_.emplace_back(model_, compiled_, query_, prefix_walks_,
                        std::move(spec),
                        util::StreamRng::stream(master_seed_, rng_stream));
  return id;
}

void GenerateEngine::suspend(StreamId id) { at(id).suspend(); }
void GenerateEngine::resume(StreamId id) { at(id).resume(); }

void GenerateEngine::cancel(StreamId id) {
  const std::size_t retired_before = stats_.streams_retired;
  at(id).cancel(stats_);
  GenerateMetrics::get().streams_retired.add(stats_.streams_retired -
                                             retired_before);
}

std::size_t GenerateEngine::live_streams() const {
  std::size_t live = 0;
  for (const GenStream& s : streams_) {
    switch (s.state()) {
      case StreamState::kPending:
      case StreamState::kRunning:
      case StreamState::kSuspended:
        ++live;
        break;
      default:
        break;
    }
  }
  return live;
}

bool GenerateEngine::tick() {
  RELM_TRACE_SPAN("generate.tick");
  GenerateMetrics& metrics = GenerateMetrics::get();

  // Admission: pending streams (late joiners included) go live this tick.
  // Activation draws the prefix from the stream's own RNG — no model call —
  // and may retire the stream on the spot (prefix dead-end).
  runnable_.clear();
  for (StreamId id = 0; id < streams_.size(); ++id) {
    GenStream& s = streams_[id];
    if (s.state() == StreamState::kPending) s.resume_pending_to_running();
    if (s.state() != StreamState::kRunning) continue;
    if (!s.activated()) {
      s.activate(stats_);
      const StreamState after = s.state();
      if (after == StreamState::kDeadEnd) metrics.streams_dead_end.add(1);
      if (after != StreamState::kRunning) {
        metrics.streams_retired.add(1);
        continue;
      }
    }
    runnable_.push_back(id);
  }
  if (runnable_.empty()) {
    stats_.elapsed_seconds = timer_.seconds();
    return false;
  }

  ++stats_.ticks;
  metrics.ticks.add(1);
  metrics.tick_occupancy.observe(static_cast<double>(runnable_.size()));

  // Phase 1: resolve steps that need no distribution (budget retirement,
  // free stops) and collect the rest for the batch.
  needs_eval_.clear();
  for (StreamId id : runnable_) {
    GenStream& s = streams_[id];
    if (s.needs_model()) {
      needs_eval_.push_back(id);
    } else {
      const std::size_t dead_before = stats_.streams_dead_end;
      s.advance_no_model(stats_);
      metrics.streams_retired.add(1);
      if (stats_.streams_dead_end != dead_before) {
        metrics.streams_dead_end.add(1);
      }
    }
  }
  if (needs_eval_.empty()) {
    stats_.elapsed_seconds = timer_.seconds();
    return true;
  }

  // Phase 2: context dedup through the relevant suffix — the same key the
  // suffix-keyed logit cache uses, so two streams in lock-step (or two
  // admissions of the same prompt) cost one model evaluation per tick, not
  // two. Keys compare by full token equality (hash only narrows the scan),
  // and slots are assigned in stream order, so the unique-context list is a
  // pure function of the runnable streams' states.
  unique_contexts_.clear();
  slot_of_stream_.clear();
  slot_of_stream_.reserve(needs_eval_.size());
  for (StreamId id : needs_eval_) {
    std::span<const TokenId> ctx = streams_[id].context();
    std::size_t slot = unique_contexts_.size();
    for (std::size_t u = 0; u < unique_contexts_.size(); ++u) {
      const std::vector<TokenId>& have = unique_contexts_[u];
      if (have.size() == ctx.size() &&
          std::equal(have.begin(), have.end(), ctx.begin())) {
        slot = u;
        break;
      }
    }
    if (slot == unique_contexts_.size()) {
      unique_contexts_.emplace_back(ctx.begin(), ctx.end());
    } else {
      ++stats_.batch_dedup_hits;
      metrics.batch_dedup_hits.add(1);
    }
    slot_of_stream_.push_back(slot);
  }

  // Phase 3: ONE batched evaluation for the whole tick. The model fans the
  // unique contexts across the shared ThreadPool; slot i holds
  // next_log_probs(unique_contexts_[i]) regardless of thread count.
  std::vector<std::vector<double>> lps =
      model_.next_log_probs_batch(unique_contexts_);
  stats_.llm_calls += unique_contexts_.size();
  metrics.llm_calls.add(unique_contexts_.size());

  // Phase 4: per-stream mask + sample, fanned across the pool. Each step is
  // a pure function of its own stream's cursor, its own RNG, and its own
  // slot's distribution, writing only its own stream plus a private stats
  // slot — the parallel_for contract — so outputs are identical at every
  // thread count. Stats fold back in stream order.
  step_stats_.assign(needs_eval_.size(), GenerateStats{});
  util::ThreadPool::shared().parallel_for(
      needs_eval_.size(), [&](std::size_t i) {
        streams_[needs_eval_[i]].advance(lps[slot_of_stream_[i]],
                                         step_stats_[i]);
      });
  for (const GenerateStats& step : step_stats_) {
    stats_.tokens_emitted += step.tokens_emitted;
    stats_.streams_retired += step.streams_retired;
    stats_.streams_done += step.streams_done;
    stats_.streams_dead_end += step.streams_dead_end;
    stats_.pruned_by_rules += step.pruned_by_rules;
    stats_.pruned_non_canonical += step.pruned_non_canonical;
    stats_.mask_words_scanned += step.mask_words_scanned;
    stats_.mask_pruned += step.mask_pruned;
    metrics.tokens.add(step.tokens_emitted);
    metrics.streams_retired.add(step.streams_retired);
    metrics.streams_dead_end.add(step.streams_dead_end);
  }

  stats_.elapsed_seconds = timer_.seconds();
  return true;
}

void GenerateEngine::run() {
  RELM_TRACE_SPAN("generate.run");
  while (tick()) {
  }
  stats_.elapsed_seconds = timer_.seconds();
  GenerateMetrics::get().tokens_per_sec.set(stats_.tokens_per_second());
}

}  // namespace relm::core::generate
