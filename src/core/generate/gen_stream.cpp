#include "core/generate/gen_stream.hpp"

#include <bit>
#include <cmath>

#include "core/token_masks.hpp"
#include "util/logging.hpp"

namespace relm::core::generate {

using tokenizer::TokenId;

const char* to_string(StreamState state) {
  switch (state) {
    case StreamState::kPending:
      return "pending";
    case StreamState::kRunning:
      return "running";
    case StreamState::kSuspended:
      return "suspended";
    case StreamState::kDone:
      return "done";
    case StreamState::kDeadEnd:
      return "dead_end";
    case StreamState::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

GenStream::GenStream(const model::LanguageModel& model,
                     const CompiledQuery& compiled,
                     const SimpleSearchQuery& query,
                     const automata::WalkCounts& prefix_walks, StreamSpec spec,
                     util::Pcg32 rng)
    : model_(&model),
      compiled_(&compiled),
      query_(&query),
      prefix_walks_(&prefix_walks),
      spec_(std::move(spec)),
      rng_(rng) {}

std::size_t GenStream::sequence_limit() const {
  return std::min(query_->sequence_length.value_or(model_->max_sequence_length()),
                  model_->max_sequence_length());
}

bool GenStream::budget_spent() const {
  return context_.size() >= sequence_limit() ||
         body_tokens_.size() >= spec_.max_new_tokens;
}

void GenStream::activate(GenerateStats& stats) {
  state_ = StreamState::kRunning;
  activated_ = true;
  // Empty-language fast path, before any RNG draw: the sampler skips the
  // attempt entirely, so the stream's RNG sequence stays aligned with it.
  if (compiled_->empty_language()) {
    dead_end(stats);
    return;
  }

  // Prefix phase: uniform over prefix walks (bypasses decoding rules),
  // byte-for-byte RandomSampler::sample_prefix_tokens.
  std::vector<TokenId> prefix;
  const automata::Dfa& pa = compiled_->prefix_automaton();
  if (query_->walk_normalized_sampling) {
    std::vector<automata::Symbol> walk;
    if (!prefix_walks_->sample_uniform_walk(pa, rng_, walk)) {
      dead_end(stats);
      return;
    }
    prefix.assign(walk.begin(), walk.end());
  } else {
    // Unnormalized ablation: each stop-or-edge decision is uniform.
    automata::StateId state = pa.start();
    const std::size_t limit = prefix_walks_->max_len();
    bool ok = false;
    for (std::size_t step = 0; step <= limit; ++step) {
      auto edges = pa.edges(state);
      bool can_stop = pa.is_final(state);
      std::size_t options = edges.size() + (can_stop ? 1 : 0);
      if (options == 0) break;
      std::size_t pick = rng_.bounded(static_cast<std::uint32_t>(options));
      if (can_stop && pick == edges.size()) {
        ok = true;
        break;
      }
      const automata::Edge& e = edges[pick];
      prefix.push_back(static_cast<TokenId>(e.symbol));
      state = e.to;
    }
    if (!ok) ok = pa.is_final(state);
    if (!ok) {
      dead_end(stats);
      return;
    }
  }

  context_ = std::move(prefix);
  prefix_len_ = context_.size();
  body_state_ = compiled_->body_automaton().start();
}

bool GenStream::needs_model() const {
  if (state_ != StreamState::kRunning || !activated_) return false;
  if (budget_spent()) return false;
  const automata::Dfa& ba = compiled_->body_automaton();
  // An unambiguous stop (final state, no way to continue) ends a plain
  // stream for free; a terminated query still owes p(EOS | string) and must
  // pay for a distribution.
  return !(ba.edges(body_state_).empty() && ba.is_final(body_state_) &&
           !query_->require_eos);
}

std::span<const TokenId> GenStream::context() const {
  return model::relevant_suffix(*model_, context_);
}

void GenStream::advance_no_model(GenerateStats& stats) {
  const automata::Dfa& ba = compiled_->body_automaton();
  const bool at_final = ba.is_final(body_state_);
  if (budget_spent()) {
    // Budget exhausted: a plain query accepts whatever the automaton
    // accepts; a terminated query cannot — the EOS it still owes would
    // exceed the budget. Exactly the sampler's budget semantics.
    if (at_final && !query_->require_eos) {
      accept(stats);
    } else {
      dead_end(stats);
    }
    return;
  }
  accept(stats);  // free stop: final state with no outgoing edge
}

void GenStream::advance(const std::vector<double>& lp, GenerateStats& stats) {
  RELM_DCHECK(lp.size() == model_->vocab_size(),
              "model distribution size must equal the vocabulary");
  const automata::Dfa& ba = compiled_->body_automaton();
  auto edges = ba.edges(body_state_);
  const bool at_final = ba.is_final(body_state_);

  const model::DecodingRules& dr = rules();
  util::TokenBitset mask;
  if (!dr.unrestricted()) mask = model::allowed_tokens(lp, dr);

  // Edges surviving the decoding rules, as indices into `edges`. Identical
  // to the sampler: the precompiled per-state bitmask intersected with the
  // rule mask word-wise, a surviving bit's rank within the state row being
  // its edge index; or the per-edge probe loop when masks are off.
  std::vector<std::size_t> allowed_idx;
  allowed_idx.reserve(edges.size());
  if (query_->use_token_masks && compiled_->has_masks()) {
    const TokenMaskTable& bm = compiled_->artifact().body.masks;
    const std::uint64_t* row = bm.state_words(body_state_);
    const std::uint64_t* rule_words =
        mask.empty() ? nullptr : mask.words().data();
    std::size_t rank_base = 0;
    for (std::uint32_t w = 0; w < bm.words_per_state; ++w) {
      const std::uint64_t word = row[w];
      const std::uint64_t surv = rule_words ? (word & rule_words[w]) : word;
      ++stats.mask_words_scanned;
      stats.mask_pruned += std::size_t(std::popcount(word)) -
                           std::size_t(std::popcount(surv));
      std::uint64_t bits = surv;
      while (bits != 0) {
        const int b = std::countr_zero(bits);
        bits &= bits - 1;
        allowed_idx.push_back(
            rank_base + std::size_t(std::popcount(word & ((1ull << b) - 1))));
      }
      rank_base += std::size_t(std::popcount(word));
    }
  } else {
    for (std::size_t i = 0; i < edges.size(); ++i) {
      TokenId t = static_cast<TokenId>(edges[i].symbol);
      if (!mask.empty() && !mask[t]) {
        ++stats.pruned_by_rules;
        continue;
      }
      allowed_idx.push_back(i);
    }
  }

  // Candidate weights: surviving automaton edges (plus EOS-as-stop at final
  // states), renormalized over true model probabilities (§3.3).
  std::vector<double> weights;
  weights.reserve(allowed_idx.size() + 1);
  std::vector<std::size_t> candidate_edges;
  for (std::size_t i : allowed_idx) {
    TokenId t = static_cast<TokenId>(edges[i].symbol);
    if (compiled_->dynamic_canonical()) {
      std::vector<TokenId> candidate(body_tokens_);
      candidate.push_back(t);
      std::string text = body_text_ + compiled_->tokenizer().token_string(t);
      if (!compiled_->canonical_prefix_ok(candidate, text)) {
        ++stats.pruned_non_canonical;
        continue;
      }
    }
    candidate_edges.push_back(i);
    weights.push_back(std::exp(lp[t]));
  }
  bool eos_stop_available = false;
  if (at_final) {
    TokenId eos = model_->eos();
    if (mask.empty() || mask[eos]) {
      eos_stop_available = true;
      weights.push_back(std::exp(lp[eos]));
    }
  }
  if (weights.empty()) {
    dead_end(stats);
    return;
  }
  std::size_t pick = rng_.weighted(weights);
  if (pick >= weights.size()) {
    dead_end(stats);
    return;
  }
  if (eos_stop_available && pick == weights.size() - 1) {
    body_log_prob_ += lp[model_->eos()];
    accept(stats);
    return;
  }

  const automata::Edge& e = edges[candidate_edges[pick]];
  TokenId t = static_cast<TokenId>(e.symbol);
  body_log_prob_ += lp[t];
  context_.push_back(t);
  body_tokens_.push_back(t);
  body_text_ += compiled_->tokenizer().token_string(t);
  body_state_ = e.to;
  ++stats.tokens_emitted;
}

void GenStream::accept(GenerateStats& stats) {
  // Final canonicality gate for dynamic-canonical queries: the completed
  // body must be exactly its canonical encoding.
  if (compiled_->dynamic_canonical()) {
    std::vector<TokenId> canonical = compiled_->tokenizer().encode(body_text_);
    if (canonical != body_tokens_) {
      ++stats.pruned_non_canonical;
      dead_end(stats);
      return;
    }
  }
  std::span<const TokenId> prefix(context_.data(), prefix_len_);
  std::string text = compiled_->tokenizer().decode(prefix) + body_text_;
  result_ = SearchResult{context_, std::move(text), body_log_prob_,
                         stats.llm_calls, stats.elapsed_seconds};
  state_ = StreamState::kDone;
  ++stats.streams_retired;
  ++stats.streams_done;
}

void GenStream::dead_end(GenerateStats& stats) {
  state_ = StreamState::kDeadEnd;
  ++stats.streams_retired;
  ++stats.streams_dead_end;
}

void GenStream::suspend() {
  if (state_ == StreamState::kRunning || state_ == StreamState::kPending) {
    state_ = StreamState::kSuspended;
  }
}

void GenStream::resume() {
  if (state_ == StreamState::kSuspended) state_ = StreamState::kRunning;
}

void GenStream::cancel(GenerateStats& stats) {
  if (state_ == StreamState::kDone || state_ == StreamState::kDeadEnd ||
      state_ == StreamState::kCancelled) {
    return;
  }
  state_ = StreamState::kCancelled;
  ++stats.streams_retired;
  ++stats.streams_cancelled;
}

}  // namespace relm::core::generate
