#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "automata/walks.hpp"
#include "core/compiled_query.hpp"
#include "core/executor.hpp"
#include "core/query.hpp"
#include "model/decoding.hpp"
#include "util/rng.hpp"

namespace relm::core::generate {

// One mask-guided generation stream: a resumable cursor over the sampler's
// attempt loop (RandomSampler::sample_once_impl), advanced one body token per
// engine tick instead of run-to-completion. The stream's emitted token
// sequence is a pure function of (compiled query, model, decoding rules,
// its own RNG stream) — never of co-tenant streams, admission order, or
// thread count — which is the invariant the whole generate subsystem is
// built around (and what Configuration H of the differential harness pins).

enum class StreamState {
  kPending,    // admitted; enters the scheduler at the next tick
  kRunning,    // live cursor; steps every tick
  kSuspended,  // frozen mid-generation; resume() re-enters at the next tick
  kDone,       // accepted: result() holds the emitted sample
  kDeadEnd,    // the attempt dead-ended (no admissible continuation)
  kCancelled,  // retired by the caller; no result
};

const char* to_string(StreamState state);

// Per-stream knobs. Everything not set inherits from the engine's query.
struct StreamSpec {
  // StreamRng index: the stream's randomness is
  // util::StreamRng::stream(engine master seed, rng_stream), a pure function
  // of the pair. Defaults to the stream's admission index. Two live streams
  // with the same index draw the same sequence — allowed (it is how the
  // differential harness replays a stream against itself) but usually not
  // what a caller wants.
  std::optional<std::uint64_t> rng_stream;

  // Budget on generated body tokens; the query/model sequence budget applies
  // on top. Exhausting it retires the stream exactly like the sampler's
  // sequence budget: accept at a final state (unless the query owes EOS),
  // dead-end otherwise.
  std::size_t max_new_tokens = SIZE_MAX;

  // Per-stream decoding rules (temperature / top-k / top-p); nullopt
  // inherits the query's rules.
  std::optional<model::DecodingRules> decoding;
};

// Counters shared by the streams and folded by the engine; mirrors the
// executor's SearchStats naming so dashboards read the same.
struct GenerateStats {
  std::size_t ticks = 0;
  std::size_t llm_calls = 0;          // unique contexts evaluated
  std::size_t batch_dedup_hits = 0;   // stream-steps served by a tick-mate's eval
  std::size_t tokens_emitted = 0;     // body tokens across all streams
  std::size_t streams_retired = 0;    // kDone + kDeadEnd + kCancelled
  std::size_t streams_done = 0;
  std::size_t streams_dead_end = 0;
  std::size_t streams_cancelled = 0;
  std::size_t pruned_by_rules = 0;
  std::size_t pruned_non_canonical = 0;
  std::size_t mask_words_scanned = 0;
  std::size_t mask_pruned = 0;
  double elapsed_seconds = 0.0;

  double tokens_per_second() const {
    return elapsed_seconds > 0
               ? static_cast<double>(tokens_emitted) / elapsed_seconds
               : 0.0;
  }
  double mean_tick_occupancy() const {
    return ticks ? static_cast<double>(llm_calls + batch_dedup_hits) /
                       static_cast<double>(ticks)
                 : 0.0;
  }
};

class GenStream {
 public:
  GenStream(const model::LanguageModel& model, const CompiledQuery& compiled,
            const SimpleSearchQuery& query,
            const automata::WalkCounts& prefix_walks, StreamSpec spec,
            util::Pcg32 rng);

  StreamState state() const { return state_; }
  const StreamSpec& spec() const { return spec_; }
  // The accepted sample; engaged exactly when state() == kDone. Fields mirror
  // RandomSampler's results (log_prob covers the body given the prefix), so
  // testing::Oracle::check_samples validates them unchanged.
  const std::optional<SearchResult>& result() const { return result_; }
  std::size_t body_len() const { return body_tokens_.size(); }

  // --- engine driver interface (one call sequence per tick) ---------------

  // Draws the prefix (RNG only, no model call) and either leaves the stream
  // kRunning or retires it (prefix dead-end / empty language). Called by the
  // engine on the first tick the stream runs; idempotent via activated().
  void activate(GenerateStats& stats);
  bool activated() const { return activated_; }

  // True when this tick's step needs a model distribution. When false,
  // advance_no_model() resolves the step (budget retirement, free stop).
  bool needs_model() const;

  // The model-relevant context for this step (the model's relevant suffix of
  // prefix + body so far). Valid while needs_model().
  std::span<const tokenizer::TokenId> context() const;

  // Resolves a step that needs no distribution: budget exhaustion or an
  // unambiguous free stop. Requires !needs_model().
  void advance_no_model(GenerateStats& stats);

  // One body step given this context's distribution: apply the stream's
  // decoding mask and the automaton mask (precompiled bitmask fast path when
  // available), renormalize over the surviving candidates plus EOS-as-stop at
  // final states, and draw with the stream's own RNG. Byte-for-byte the
  // sampler's body-loop semantics.
  void advance(const std::vector<double>& lp, GenerateStats& stats);

  // Cursor control. Suspend freezes the stream mid-generation (its RNG and
  // automaton state are untouched, so resuming later changes nothing about
  // its output); cancel retires it without a result. Both are no-ops on
  // already-retired streams.
  void suspend();
  void resume();
  void cancel(GenerateStats& stats);
  // Tick-start admission: kPending -> kRunning (activation follows).
  void resume_pending_to_running() {
    if (state_ == StreamState::kPending) state_ = StreamState::kRunning;
  }

 private:
  const model::DecodingRules& rules() const {
    return spec_.decoding ? *spec_.decoding : query_->decoding;
  }
  std::size_t sequence_limit() const;
  bool budget_spent() const;
  void accept(GenerateStats& stats);
  void dead_end(GenerateStats& stats);

  const model::LanguageModel* model_;
  const CompiledQuery* compiled_;
  const SimpleSearchQuery* query_;
  const automata::WalkCounts* prefix_walks_;
  StreamSpec spec_;
  util::Pcg32 rng_;

  StreamState state_ = StreamState::kPending;
  bool activated_ = false;
  std::vector<tokenizer::TokenId> context_;      // prefix + body tokens
  std::size_t prefix_len_ = 0;
  std::vector<tokenizer::TokenId> body_tokens_;
  std::string body_text_;
  double body_log_prob_ = 0.0;
  automata::StateId body_state_ = automata::kNoState;
  std::optional<SearchResult> result_;
};

}  // namespace relm::core::generate
