#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "core/generate/gen_stream.hpp"
#include "util/logging.hpp"

namespace relm::core::generate {

// Batched multi-stream mask-guided generation (the `relmd` session backend
// shape from ROADMAP.md): the engine owns a set of GenStreams and drives them
// with a step scheduler. Every tick it
//
//   1. admits pending streams (late joiners entered since the last tick),
//   2. gathers all runnable streams and resolves the steps that need no
//      model call (budget retirement, free stops),
//   3. deduplicates the remaining streams' model contexts through their
//      relevant suffixes (the same key the suffix-keyed logit cache uses),
//   4. submits ONE LanguageModel::next_log_probs_batch over the unique
//      contexts — fanned across util::ThreadPool::shared() by the model —
//   5. and applies each stream's decoding + automaton mask and samples its
//      next token with the stream's own RNG, retiring streams on EOS/budget.
//
// Determinism invariant (Configuration H of the differential harness, and
// tests/test_generate.cpp): every stream's emitted token sequence is
// byte-identical to running that stream alone, serially, at any thread count
// and any co-tenant mix. The ingredients: per-stream RNG streams are
// isolated (util::StreamRng — a pure function of the engine's master seed
// and the stream's index), next_log_probs_batch fills slot i with
// next_log_probs(contexts[i]) regardless of scheduling, and each step reads
// only its own stream's state plus its own slot. Batch composition therefore
// cannot leak into sampling order.
//
// Streams are resumable cursors: suspend/resume/cancel mid-generation, and
// streams added while the engine runs enter at the next tick.
class GenerateEngine {
 public:
  using StreamId = std::size_t;

  GenerateEngine(const model::LanguageModel& model,
                 const CompiledQuery& compiled, const SimpleSearchQuery& query,
                 std::uint64_t master_seed);

  // Admits a stream; it enters the scheduler at the next tick. The spec's
  // rng_stream defaults to the admission index, so an engine with default
  // specs numbers its streams 0, 1, 2, ... in admission order.
  StreamId add_stream(StreamSpec spec = {});

  // Cursor control; valid any time between ticks. Suspending keeps the
  // stream's RNG and automaton state frozen, so a later resume continues
  // exactly where it left off; cancelling retires it without a result.
  void suspend(StreamId id);
  void resume(StreamId id);
  void cancel(StreamId id);

  // One scheduler round. Returns false when no stream was runnable (all
  // retired or suspended) — the engine is idle, not necessarily finished:
  // suspended streams resume into later ticks.
  bool tick();

  // Ticks until no runnable streams remain.
  void run();

  std::size_t num_streams() const { return streams_.size(); }
  // Streams that still hold a live cursor (pending, running, or suspended).
  std::size_t live_streams() const;

  StreamState state(StreamId id) const { return at(id).state(); }
  // The accepted sample of a kDone stream (Oracle::check_samples-compatible;
  // see GenStream::result).
  const std::optional<SearchResult>& result(StreamId id) const {
    return at(id).result();
  }
  std::size_t body_len(StreamId id) const { return at(id).body_len(); }

  const GenerateStats& stats() const { return stats_; }

 private:
  const GenStream& at(StreamId id) const {
    RELM_DCHECK(id < streams_.size(), "stream id out of range");
    return streams_[id];
  }
  GenStream& at(StreamId id) {
    RELM_DCHECK(id < streams_.size(), "stream id out of range");
    return streams_[id];
  }

  const model::LanguageModel& model_;
  const CompiledQuery& compiled_;
  const SimpleSearchQuery& query_;
  const std::uint64_t master_seed_;
  automata::WalkCounts prefix_walks_;
  // deque, not vector: GenStream is not movable-stable under reallocation
  // concerns for outstanding references, and ids must stay dense and stable
  // while late joiners are admitted mid-run.
  std::deque<GenStream> streams_;
  GenerateStats stats_;
  util::Timer timer_;

  // Per-tick scratch, reused across ticks.
  std::vector<StreamId> runnable_;
  std::vector<StreamId> needs_eval_;
  std::vector<std::vector<tokenizer::TokenId>> unique_contexts_;
  std::vector<std::size_t> slot_of_stream_;
  std::vector<GenerateStats> step_stats_;
};

}  // namespace relm::core::generate
