#include "core/query.hpp"

#include "util/errors.hpp"
#include "util/strings.hpp"

namespace relm::core {

std::string QueryString::body_str() const {
  if (prefix_str.empty()) return query_str;
  if (!util::starts_with(query_str, prefix_str)) {
    throw relm::QueryError(
        "prefix_str must be a textual prefix of query_str (prefix: \"" +
        prefix_str + "\")");
  }
  return query_str.substr(prefix_str.size());
}

}  // namespace relm::core
