#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/query.hpp"
#include "tokenizer/bpe.hpp"

namespace relm::core {

// Static analysis of a query before execution: language sizes, automaton
// sizes, branching factors, and an LLM-call estimate. The paper's conclusion
// lists "additional logic for optimizing query execution" as future work;
// this is the first such piece — it tells a practitioner whether a query is
// multiple-choice-sized, enumeration-sized, or open-ended *before* spending
// model calls, and the CLI exposes it as `relm analyze`.
struct QueryAnalysis {
  // Character level (Natural Language Automaton), after preprocessors.
  std::size_t prefix_char_states = 0;
  std::size_t body_char_states = 0;
  bool body_infinite = false;
  // Number of body strings up to the enumeration budget (saturating);
  // exact when the language is finite and within bounds.
  std::uint64_t body_string_count = 0;
  std::optional<std::size_t> shortest_match_length;

  // Token level (LLM Automaton).
  std::size_t prefix_token_states = 0;
  std::size_t prefix_token_edges = 0;
  std::size_t body_token_states = 0;
  std::size_t body_token_edges = 0;
  bool dynamic_canonical = false;
  double prefix_token_paths = 0;  // encodings of the prefix language
  double body_token_paths = 0;    // encodings of the body language
  double max_body_branching = 0;  // worst-case out-degree

  // Rough LLM-call bounds for common executions.
  double exhaustive_call_estimate = 0;  // shortest path to exhaustion (<= paths)
  double per_sample_call_estimate = 0;  // random traversal, body steps/sample

  std::string summary() const;  // multi-line human-readable report
};

QueryAnalysis analyze_query(const SimpleSearchQuery& query,
                            const tokenizer::BpeTokenizer& tok);

}  // namespace relm::core
