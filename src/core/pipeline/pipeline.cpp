#include "core/pipeline/pipeline.hpp"

#include "automata/algebra.hpp"
#include "automata/determinize.hpp"
#include "automata/ops.hpp"
#include "automata/regex_parser.hpp"
#include "automata/thompson.hpp"
#include "core/token_masks.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/errors.hpp"
#include "util/logging.hpp"

namespace relm::core::pipeline {

namespace {

// Each pass opens its own trace span with a distinct literal (the macro
// stores names by pointer), so flame graphs show the compile chain stage by
// stage alongside the aggregate "compile.query" span.

class ParsePass : public Pass {
 public:
  const char* name() const override { return "parse"; }
  void run(CompileState& s) const override {
    RELM_TRACE_SPAN("compile.pass.parse");
    RELM_TRACE_SPAN("regex.parse");  // legacy name, kept for trace tooling
    s.body_pattern = s.query->query_string.body_str();
    s.prefix_pattern = s.query->query_string.prefix_str;
    s.body_ast = automata::parse_regex(s.body_pattern);
    if (!s.prefix_pattern.empty()) {
      s.prefix_ast = automata::parse_regex(s.prefix_pattern);
    }
  }
};

class ThompsonPass : public Pass {
 public:
  const char* name() const override { return "thompson"; }
  void run(CompileState& s) const override {
    RELM_TRACE_SPAN("compile.pass.thompson");
    RELM_TRACE_SPAN("regex.thompson");  // legacy name, kept for trace tooling
    // Boolean-algebra ASTs have no Thompson form; the determinize pass
    // compiles them whole through the algebra product construction.
    if (!automata::has_boolean_ops(*s.body_ast)) {
      s.body_nfa = automata::thompson_construct(*s.body_ast);
    }
    if (s.prefix_ast && !automata::has_boolean_ops(*s.prefix_ast)) {
      s.prefix_nfa = automata::thompson_construct(*s.prefix_ast);
    }
  }
};

class DeterminizePass : public Pass {
 public:
  const char* name() const override { return "determinize"; }
  void run(CompileState& s) const override {
    RELM_TRACE_SPAN("compile.pass.determinize");
    // One state budget covers the whole pass: subset construction for plain
    // NFAs, lazy product/subset construction for boolean-algebra ASTs.
    const std::size_t budget =
        s.query->determinize_state_budget != 0
            ? s.query->determinize_state_budget
            : automata::determinize_budget_from_env();
    automata::AlgebraOptions options;
    options.state_budget = budget;
    options.lazy = automata::lazy_determinize_from_env();

    auto compile_chars =
        [&](const automata::RegexPtr& ast,
            const std::optional<automata::Nfa>& nfa) -> automata::Dfa {
      if (nfa) return automata::trim(automata::determinize(*nfa, budget));
      return automata::compile_ast(*ast, options);
    };
    s.body_chars = compile_chars(s.body_ast, s.body_nfa);
    if (s.prefix_ast) {
      s.prefix_chars = compile_chars(s.prefix_ast, s.prefix_nfa);
    }
  }
};

class MinimizePass : public Pass {
 public:
  const char* name() const override { return "minimize"; }
  void run(CompileState& s) const override {
    RELM_TRACE_SPAN("compile.pass.minimize");
    s.body_chars = automata::minimize(*s.body_chars);
    if (s.prefix_chars) {
      s.prefix_chars = automata::minimize(*s.prefix_chars);
    }
  }
};

class PreprocessPass : public Pass {
 public:
  const char* name() const override { return "preprocess"; }
  void run(CompileState& s) const override {
    RELM_TRACE_SPAN("compile.pass.preprocess");
    for (const auto& pre : s.query->preprocessors) {
      using Target = Preprocessor::Target;
      Target t = pre->target();
      if (t == Target::kBody || t == Target::kBoth) {
        s.body_chars = pre->apply(*s.body_chars);
      }
      if ((t == Target::kPrefix || t == Target::kBoth) && s.prefix_chars) {
        s.prefix_chars = pre->apply(*s.prefix_chars);
      }
    }
    // An empty body language (a vacuous algebra query like `a & !a`, or a
    // preprocessor that filtered everything out) is NOT an error: the
    // assemble pass flags it and executors return zero matches with zero
    // model calls (the empty-language fast path).
  }
};

class TokenLiftPass : public Pass {
 public:
  const char* name() const override { return "token_lift"; }
  void run(CompileState& s) const override {
    RELM_TRACE_SPAN("compile.pass.token_lift");
    const SimpleSearchQuery& q = *s.query;
    s.body_tokens = compile_token_automaton(*s.body_chars, *s.tok,
                                            q.tokenization_strategy,
                                            q.canonical_enumeration_budget);
    s.prefix_tokens =
        s.prefix_chars
            ? compile_token_automaton(*s.prefix_chars, *s.tok,
                                      q.tokenization_strategy,
                                      q.canonical_enumeration_budget)
            : epsilon_token_automaton(*s.tok);
  }
};

class TokenMasksPass : public Pass {
 public:
  const char* name() const override { return "token_masks"; }
  void run(CompileState& s) const override {
    RELM_TRACE_SPAN("compile.pass.token_masks");
    // Combined budget for both tables: masks are all-or-nothing per artifact
    // so the executors never mix fast and slow paths within one query. The
    // budget depends only on the automata (never on executor flags), keeping
    // cached/fresh/reloaded compiles byte-identical.
    const std::size_t bytes = token_mask_table_bytes(s.prefix_tokens->dfa) +
                              token_mask_table_bytes(s.body_tokens->dfa);
    if (bytes > kTokenMaskBudgetBytes) return;
    s.prefix_tokens->masks = build_token_masks(s.prefix_tokens->dfa);
    s.body_tokens->masks = build_token_masks(s.body_tokens->dfa);
  }
};

class AssemblePass : public Pass {
 public:
  const char* name() const override { return "assemble"; }
  void run(CompileState& s) const override {
    RELM_TRACE_SPAN("compile.pass.assemble");
    QueryArtifact artifact;
    artifact.key = derive_artifact_key(*s.query, *s.tok)
                       .value_or(ArtifactKey{});  // zero = unkeyable
    artifact.vocab_fingerprint = vocab_fingerprint(*s.tok);
    artifact.strategy = s.query->tokenization_strategy;
    artifact.prefix = std::move(*s.prefix_tokens);
    artifact.body = std::move(*s.body_tokens);
    // Vacuous-query detection (`a & !a`, over-restrictive preprocessors, a
    // prefix no token sequence can spell): flagged here so executors bail
    // out before their first model call. Derived from the automata — the
    // loader recomputes it rather than trusting a file.
    artifact.empty_language = automata::is_empty_language(artifact.body.dfa) ||
                              automata::is_empty_language(artifact.prefix.dfa);
    if (artifact.empty_language) {
      static obs::Counter& empties =
          obs::Registry::instance().counter("compile.empty_language");
      empties.add();
    }
    s.artifact = std::move(artifact);
  }
};

}  // namespace

const Pipeline& Pipeline::standard() {
  static const Pipeline pipeline = [] {
    Pipeline p;
    p.add(std::make_unique<ParsePass>());
    p.add(std::make_unique<ThompsonPass>());
    p.add(std::make_unique<DeterminizePass>());
    p.add(std::make_unique<MinimizePass>());
    p.add(std::make_unique<PreprocessPass>());
    p.add(std::make_unique<TokenLiftPass>());
    p.add(std::make_unique<TokenMasksPass>());
    p.add(std::make_unique<AssemblePass>());
    return p;
  }();
  return pipeline;
}

Pipeline& Pipeline::add(std::unique_ptr<Pass> pass) {
  passes_.push_back(std::move(pass));
  return *this;
}

std::vector<const char*> Pipeline::pass_names() const {
  std::vector<const char*> names;
  names.reserve(passes_.size());
  for (const auto& pass : passes_) names.push_back(pass->name());
  return names;
}

CompileState Pipeline::run_to_state(const SimpleSearchQuery& query,
                                    const tokenizer::BpeTokenizer& tok,
                                    std::vector<PassRecord>* records) const {
  RELM_TRACE_SPAN("compile.query");
  CompileState state;
  state.query = &query;
  state.tok = &tok;
  for (const auto& pass : passes_) {
    util::Timer timer;
    pass->run(state);
    if (records) records->push_back({pass->name(), timer.seconds()});
  }
  return state;
}

CompileResult Pipeline::run(const SimpleSearchQuery& query,
                            const tokenizer::BpeTokenizer& tok) const {
  CompileResult result;
  CompileState state = run_to_state(query, tok, &result.passes);
  if (!state.artifact) {
    throw relm::QueryError(
        "compile pipeline produced no artifact (missing assemble pass?)");
  }
  result.artifact = std::move(*state.artifact);
  return result;
}

QueryArtifact compile_query_artifact(const SimpleSearchQuery& query,
                                     const tokenizer::BpeTokenizer& tok) {
  return Pipeline::standard().run(query, tok).artifact;
}

}  // namespace relm::core::pipeline
