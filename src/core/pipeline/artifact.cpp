#include "core/pipeline/artifact.hpp"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <string_view>

#include "automata/serialize.hpp"
#include "util/errors.hpp"

namespace relm::core::pipeline {

namespace {

// Two independent FNV-1a streams over the same tagged bytes give the
// 128-bit content address. Fields are length-prefixed so no two distinct
// field sequences serialize to the same stream.
struct KeyHasher {
  std::uint64_t a = 0xcbf29ce484222325ull;
  std::uint64_t b = 0x84222325cbf29ce4ull;

  void byte(unsigned char c) {
    a = (a ^ c) * 0x100000001b3ull;
    b = (b ^ c) * 0x100000001b3ull;
    b ^= b >> 29;
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) byte(static_cast<unsigned char>(v >> (8 * i)));
  }
  void str(std::string_view s) {
    u64(s.size());
    for (unsigned char c : s) byte(c);
  }
};

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
  return buf;
}

std::optional<std::uint64_t> parse_hex64(std::string_view s) {
  if (s.size() != 16) return std::nullopt;
  std::uint64_t v = 0;
  for (char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return std::nullopt;
    }
  }
  return v;
}

const char* strategy_tag(TokenizationStrategy s) {
  return s == TokenizationStrategy::kAllTokens ? "all" : "canonical";
}

[[noreturn]] void corrupt(const std::string& what) {
  throw relm::Error("RELM_ARTIFACT file: " + what);
}

// Reads "<label> <value>" and returns the value, diagnosing a wrong label
// or truncation.
std::string read_field(std::istream& in, const char* label) {
  std::string got, value;
  in >> got >> value;
  if (!in) corrupt(std::string("truncated at field \"") + label + "\"");
  if (got != label) {
    corrupt("expected field \"" + std::string(label) + "\", got \"" + got +
            "\"");
  }
  return value;
}

}  // namespace

std::string ArtifactKey::hex() const { return hex64(hi) + hex64(lo); }

std::optional<ArtifactKey> ArtifactKey::from_hex(std::string_view hex) {
  if (hex.size() != 32) return std::nullopt;
  auto hi = parse_hex64(hex.substr(0, 16));
  auto lo = parse_hex64(hex.substr(16));
  if (!hi || !lo) return std::nullopt;
  return ArtifactKey{*hi, *lo};
}

std::uint64_t vocab_fingerprint(const tokenizer::BpeTokenizer& tok) {
  KeyHasher h;
  h.u64(tok.vocab_size());
  h.u64(tok.eos());
  h.u64(tok.max_token_length());
  for (tokenizer::TokenId t = 0; t < tok.vocab_size(); ++t) {
    h.str(tok.token_string(t));
  }
  return h.a;
}

std::optional<ArtifactKey> derive_artifact_key(
    const SimpleSearchQuery& query, const tokenizer::BpeTokenizer& tok) {
  KeyHasher h;
  h.u64(QueryArtifact::kFormatVersion);
  h.str(query.query_string.prefix_str);
  h.str(query.query_string.body_str());
  h.str(strategy_tag(query.tokenization_strategy));
  h.u64(query.canonical_enumeration_budget);
  h.u64(query.preprocessors.size());
  for (const auto& pre : query.preprocessors) {
    std::string key = pre->cache_key();
    if (key.empty()) return std::nullopt;  // unkeyable preprocessor
    h.str(key);
  }
  h.u64(vocab_fingerprint(tok));
  ArtifactKey key{h.a, h.b};
  if (key.is_zero()) key.lo = 1;  // zero is reserved for "no key"
  return key;
}

std::uint64_t artifact_checksum(const QueryArtifact& artifact) {
  KeyHasher h;
  h.u64(automata::dfa_structural_hash(artifact.prefix.dfa));
  h.byte(artifact.prefix.dynamic_canonical ? 1 : 0);
  h.u64(automata::dfa_structural_hash(artifact.body.dfa));
  h.byte(artifact.body.dynamic_canonical ? 1 : 0);
  return h.a;
}

void save_artifact(const QueryArtifact& artifact, std::ostream& out) {
  out << "RELM_ARTIFACT v" << QueryArtifact::kFormatVersion << "\n";
  out << "key " << artifact.key.hex() << "\n";
  out << "vocab " << hex64(artifact.vocab_fingerprint) << "\n";
  out << "strategy " << strategy_tag(artifact.strategy) << "\n";
  out << "prefix_dynamic_canonical " << (artifact.prefix.dynamic_canonical ? 1 : 0)
      << "\n";
  out << "body_dynamic_canonical " << (artifact.body.dynamic_canonical ? 1 : 0)
      << "\n";
  out << "checksum " << hex64(artifact_checksum(artifact)) << "\n";
  out << "prefix\n";
  automata::save_dfa(artifact.prefix.dfa, out);
  out << "body\n";
  automata::save_dfa(artifact.body.dfa, out);
}

QueryArtifact load_artifact(std::istream& in) {
  std::string magic, version;
  in >> magic >> version;
  if (!in) corrupt("truncated before header");
  if (magic != "RELM_ARTIFACT") corrupt("bad magic \"" + magic + "\"");
  if (version != "v" + std::to_string(QueryArtifact::kFormatVersion)) {
    corrupt("unsupported version \"" + version + "\" (this build reads v" +
            std::to_string(QueryArtifact::kFormatVersion) + ")");
  }

  QueryArtifact artifact;
  auto key = ArtifactKey::from_hex(read_field(in, "key"));
  if (!key) corrupt("malformed key");
  artifact.key = *key;

  auto vocab = parse_hex64(read_field(in, "vocab"));
  if (!vocab) corrupt("malformed vocab fingerprint");
  artifact.vocab_fingerprint = *vocab;

  std::string strategy = read_field(in, "strategy");
  if (strategy == "all") {
    artifact.strategy = TokenizationStrategy::kAllTokens;
  } else if (strategy == "canonical") {
    artifact.strategy = TokenizationStrategy::kCanonicalTokens;
  } else {
    corrupt("unknown strategy \"" + strategy + "\"");
  }

  for (auto [label, flag] :
       {std::pair<const char*, bool*>{"prefix_dynamic_canonical",
                                      &artifact.prefix.dynamic_canonical},
        std::pair<const char*, bool*>{"body_dynamic_canonical",
                                      &artifact.body.dynamic_canonical}}) {
    std::string value = read_field(in, label);
    if (value != "0" && value != "1") {
      corrupt(std::string(label) + " must be 0/1");
    }
    *flag = value == "1";
  }

  auto checksum = parse_hex64(read_field(in, "checksum"));
  if (!checksum) corrupt("malformed checksum");

  for (auto [label, ta] :
       {std::pair<const char*, TokenAutomaton*>{"prefix", &artifact.prefix},
        std::pair<const char*, TokenAutomaton*>{"body", &artifact.body}}) {
    std::string section;
    in >> section;
    if (!in || section != label) {
      corrupt(std::string("missing \"") + label + "\" automaton section");
    }
    ta->dfa = automata::load_dfa(in);  // throws relm::Error with its own detail
  }

  if (artifact_checksum(artifact) != *checksum) {
    corrupt("checksum mismatch (payload corrupted)");
  }
  // Semantic invariant, not just integrity: all-tokens artifacts never need
  // dynamic pruning, so a set flag means the writer was buggy.
  if (artifact.strategy == TokenizationStrategy::kAllTokens &&
      (artifact.prefix.dynamic_canonical || artifact.body.dynamic_canonical)) {
    corrupt("dynamic_canonical set on an all-tokens artifact");
  }
  return artifact;
}

void save_artifact_file(const QueryArtifact& artifact, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw relm::Error("cannot open for writing: " + path);
  save_artifact(artifact, out);
  out.flush();
  if (!out) throw relm::Error("write failed: " + path);
}

QueryArtifact load_artifact_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw relm::Error("cannot open for reading: " + path);
  return load_artifact(in);
}

}  // namespace relm::core::pipeline
