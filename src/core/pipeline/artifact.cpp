#include "core/pipeline/artifact.hpp"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <string_view>

#include "automata/ops.hpp"
#include "automata/serialize.hpp"
#include "core/token_masks.hpp"
#include "util/errors.hpp"

namespace relm::core::pipeline {

namespace {

// Two independent FNV-1a streams over the same tagged bytes give the
// 128-bit content address. Fields are length-prefixed so no two distinct
// field sequences serialize to the same stream.
struct KeyHasher {
  std::uint64_t a = 0xcbf29ce484222325ull;
  std::uint64_t b = 0x84222325cbf29ce4ull;

  void byte(unsigned char c) {
    a = (a ^ c) * 0x100000001b3ull;
    b = (b ^ c) * 0x100000001b3ull;
    b ^= b >> 29;
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) byte(static_cast<unsigned char>(v >> (8 * i)));
  }
  void str(std::string_view s) {
    u64(s.size());
    for (unsigned char c : s) byte(c);
  }
};

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
  return buf;
}

std::optional<std::uint64_t> parse_hex64(std::string_view s) {
  if (s.size() != 16) return std::nullopt;
  std::uint64_t v = 0;
  for (char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return std::nullopt;
    }
  }
  return v;
}

const char* strategy_tag(TokenizationStrategy s) {
  return s == TokenizationStrategy::kAllTokens ? "all" : "canonical";
}

[[noreturn]] void corrupt(const std::string& what) {
  throw relm::Error("RELM_ARTIFACT file: " + what);
}

// Reads "<label> <value>" and returns the value, diagnosing a wrong label
// or truncation.
std::string read_field(std::istream& in, const char* label) {
  std::string got, value;
  in >> got >> value;
  if (!in) corrupt(std::string("truncated at field \"") + label + "\"");
  if (got != label) {
    corrupt("expected field \"" + std::string(label) + "\", got \"" + got +
            "\"");
  }
  return value;
}

}  // namespace

std::string ArtifactKey::hex() const { return hex64(hi) + hex64(lo); }

std::optional<ArtifactKey> ArtifactKey::from_hex(std::string_view hex) {
  if (hex.size() != 32) return std::nullopt;
  auto hi = parse_hex64(hex.substr(0, 16));
  auto lo = parse_hex64(hex.substr(16));
  if (!hi || !lo) return std::nullopt;
  return ArtifactKey{*hi, *lo};
}

std::uint64_t vocab_fingerprint(const tokenizer::BpeTokenizer& tok) {
  KeyHasher h;
  h.u64(tok.vocab_size());
  h.u64(tok.eos());
  h.u64(tok.max_token_length());
  for (tokenizer::TokenId t = 0; t < tok.vocab_size(); ++t) {
    h.str(tok.token_string(t));
  }
  return h.a;
}

std::optional<ArtifactKey> derive_artifact_key(
    const SimpleSearchQuery& query, const tokenizer::BpeTokenizer& tok) {
  KeyHasher h;
  h.u64(QueryArtifact::kFormatVersion);
  h.u64(QueryArtifact::kGrammarVersion);
  h.str(query.query_string.prefix_str);
  h.str(query.query_string.body_str());
  h.str(strategy_tag(query.tokenization_strategy));
  h.u64(query.canonical_enumeration_budget);
  h.u64(query.preprocessors.size());
  for (const auto& pre : query.preprocessors) {
    std::string key = pre->cache_key();
    if (key.empty()) return std::nullopt;  // unkeyable preprocessor
    h.str(key);
  }
  h.u64(vocab_fingerprint(tok));
  ArtifactKey key{h.a, h.b};
  if (key.is_zero()) key.lo = 1;  // zero is reserved for "no key"
  return key;
}

std::uint64_t artifact_checksum(const QueryArtifact& artifact) {
  KeyHasher h;
  h.u64(automata::dfa_structural_hash(artifact.prefix.dfa));
  h.byte(artifact.prefix.dynamic_canonical ? 1 : 0);
  h.u64(automata::dfa_structural_hash(artifact.body.dfa));
  h.byte(artifact.body.dynamic_canonical ? 1 : 0);
  return h.a;
}

namespace {

void hash_mask_table(KeyHasher& h, const core::TokenMaskTable& table) {
  h.u64(table.num_states);
  h.u64(table.words_per_state);
  h.u64(table.words.size());
  for (std::uint64_t w : table.words) h.u64(w);
  h.u64(table.edge_offsets.size());
  for (std::uint32_t v : table.edge_offsets) h.u64(v);
  h.u64(table.edge_tokens.size());
  for (std::uint32_t v : table.edge_tokens) h.u64(v);
  h.u64(table.edge_targets.size());
  for (std::uint32_t v : table.edge_targets) h.u64(v);
}

void save_masks(const core::TokenMaskTable& table, std::ostream& out) {
  out << "RELM_MASKS v1\n";
  out << "present " << (table.empty() ? 0 : 1) << "\n";
  if (table.empty()) return;
  out << "states " << table.num_states << " words " << table.words_per_state
      << " edges " << table.edge_offsets.back() << "\n";
  out << "offsets";
  for (std::uint32_t v : table.edge_offsets) out << ' ' << v;
  out << "\ntokens";
  for (std::uint32_t v : table.edge_tokens) out << ' ' << v;
  out << "\ntargets";
  for (std::uint32_t v : table.edge_targets) out << ' ' << v;
  out << "\nbits";
  for (std::uint64_t w : table.words) out << ' ' << hex64(w);
  out << "\n";
}

// Reads a RELM_MASKS section for an automaton whose DFA is already loaded.
// Dimensions are validated against the DFA *before* any array allocation, so
// a forged header can never trigger a multi-gigabyte allocation; the full
// bit-for-bit agreement check (masks_mismatch) runs in load_artifact once
// the whole container has parsed.
core::TokenMaskTable load_masks(std::istream& in, const automata::Dfa& dfa,
                                const char* name) {
  auto here = [&](const std::string& what) {
    corrupt(std::string(name) + " masks: " + what);
  };
  std::string magic, version;
  in >> magic >> version;
  if (!in) here("truncated before RELM_MASKS header");
  if (magic != "RELM_MASKS") here("bad magic \"" + magic + "\"");
  if (version != "v1") here("unsupported version \"" + version + "\"");

  std::string present = read_field(in, "present");
  if (present == "0") return {};
  if (present != "1") here("present must be 0/1, got \"" + present + "\"");

  core::TokenMaskTable table;
  std::uint64_t states = 0, words = 0, edges = 0;
  std::string label;
  in >> label >> states;
  if (!in || label != "states") here("malformed states field");
  in >> label >> words;
  if (!in || label != "words") here("malformed words field");
  in >> label >> edges;
  if (!in || label != "edges") here("malformed edges field");
  if (states != dfa.num_states()) {
    here("declares " + std::to_string(states) + " states, automaton has " +
         std::to_string(dfa.num_states()));
  }
  const std::uint64_t want_words =
      (static_cast<std::uint64_t>(dfa.num_symbols()) + 63) / 64;
  if (words != want_words) {
    here("declares " + std::to_string(words) + " words per state, want " +
         std::to_string(want_words));
  }
  if (edges != dfa.num_edges()) {
    here("declares " + std::to_string(edges) + " edges, automaton has " +
         std::to_string(dfa.num_edges()));
  }
  table.num_states = static_cast<std::uint32_t>(states);
  table.words_per_state = static_cast<std::uint32_t>(words);

  auto read_u32_array = [&](const char* what, std::size_t count,
                            std::vector<std::uint32_t>& out_vec) {
    in >> label;
    if (!in || label != what) {
      here(std::string("expected \"") + what + "\" array, got \"" + label +
           "\"");
    }
    out_vec.resize(count);
    for (std::size_t i = 0; i < count; ++i) {
      if (!(in >> out_vec[i])) {
        here(std::string("truncated in \"") + what + "\" array at entry " +
             std::to_string(i) + " of " + std::to_string(count));
      }
    }
  };
  read_u32_array("offsets", states + 1, table.edge_offsets);
  read_u32_array("tokens", edges, table.edge_tokens);
  read_u32_array("targets", edges, table.edge_targets);

  in >> label;
  if (!in || label != "bits") here("expected \"bits\" array, got \"" + label + "\"");
  const std::size_t num_bit_words = static_cast<std::size_t>(states * words);
  table.words.resize(num_bit_words);
  std::string word_hex;
  for (std::size_t i = 0; i < num_bit_words; ++i) {
    if (!(in >> word_hex)) {
      here("truncated in \"bits\" array at word " + std::to_string(i) + " of " +
           std::to_string(num_bit_words));
    }
    auto parsed = parse_hex64(word_hex);
    if (!parsed) here("malformed bitmask word \"" + word_hex + "\"");
    table.words[i] = *parsed;
  }
  return table;
}

}  // namespace

std::uint64_t artifact_masks_checksum(const QueryArtifact& artifact) {
  KeyHasher h;
  hash_mask_table(h, artifact.prefix.masks);
  hash_mask_table(h, artifact.body.masks);
  return h.a;
}

namespace {

void save_artifact_impl(const QueryArtifact& artifact, std::ostream& out,
                        std::uint32_t version) {
  out << "RELM_ARTIFACT v" << version << "\n";
  out << "key " << artifact.key.hex() << "\n";
  out << "vocab " << hex64(artifact.vocab_fingerprint) << "\n";
  out << "strategy " << strategy_tag(artifact.strategy) << "\n";
  out << "prefix_dynamic_canonical " << (artifact.prefix.dynamic_canonical ? 1 : 0)
      << "\n";
  out << "body_dynamic_canonical " << (artifact.body.dynamic_canonical ? 1 : 0)
      << "\n";
  out << "checksum " << hex64(artifact_checksum(artifact)) << "\n";
  if (version >= 2) {
    out << "masks_checksum " << hex64(artifact_masks_checksum(artifact)) << "\n";
  }
  out << "prefix\n";
  automata::save_dfa(artifact.prefix.dfa, out);
  if (version >= 2) save_masks(artifact.prefix.masks, out);
  out << "body\n";
  automata::save_dfa(artifact.body.dfa, out);
  if (version >= 2) save_masks(artifact.body.masks, out);
}

}  // namespace

void save_artifact(const QueryArtifact& artifact, std::ostream& out) {
  save_artifact_impl(artifact, out, QueryArtifact::kFormatVersion);
}

void save_artifact_v1(const QueryArtifact& artifact, std::ostream& out) {
  save_artifact_impl(artifact, out, 1);
}

QueryArtifact load_artifact(std::istream& in) {
  std::string magic, version;
  in >> magic >> version;
  if (!in) corrupt("truncated before header");
  if (magic != "RELM_ARTIFACT") corrupt("bad magic \"" + magic + "\"");
  std::uint32_t file_version = 0;
  if (version == "v1") {
    file_version = 1;
  } else if (version == "v2") {
    file_version = 2;
  } else {
    corrupt("unsupported version \"" + version + "\" (this build reads v1-v" +
            std::to_string(QueryArtifact::kFormatVersion) + ")");
  }

  QueryArtifact artifact;
  auto key = ArtifactKey::from_hex(read_field(in, "key"));
  if (!key) corrupt("malformed key");
  artifact.key = *key;

  auto vocab = parse_hex64(read_field(in, "vocab"));
  if (!vocab) corrupt("malformed vocab fingerprint");
  artifact.vocab_fingerprint = *vocab;

  std::string strategy = read_field(in, "strategy");
  if (strategy == "all") {
    artifact.strategy = TokenizationStrategy::kAllTokens;
  } else if (strategy == "canonical") {
    artifact.strategy = TokenizationStrategy::kCanonicalTokens;
  } else {
    corrupt("unknown strategy \"" + strategy + "\"");
  }

  for (auto [label, flag] :
       {std::pair<const char*, bool*>{"prefix_dynamic_canonical",
                                      &artifact.prefix.dynamic_canonical},
        std::pair<const char*, bool*>{"body_dynamic_canonical",
                                      &artifact.body.dynamic_canonical}}) {
    std::string value = read_field(in, label);
    if (value != "0" && value != "1") {
      corrupt(std::string(label) + " must be 0/1");
    }
    *flag = value == "1";
  }

  auto checksum = parse_hex64(read_field(in, "checksum"));
  if (!checksum) corrupt("malformed checksum");

  std::optional<std::uint64_t> masks_checksum;
  if (file_version >= 2) {
    masks_checksum = parse_hex64(read_field(in, "masks_checksum"));
    if (!masks_checksum) corrupt("malformed masks_checksum");
  }

  for (auto [label, ta] :
       {std::pair<const char*, TokenAutomaton*>{"prefix", &artifact.prefix},
        std::pair<const char*, TokenAutomaton*>{"body", &artifact.body}}) {
    std::string section;
    in >> section;
    if (!in || section != label) {
      corrupt(std::string("missing \"") + label + "\" automaton section");
    }
    ta->dfa = automata::load_dfa(in);  // throws relm::Error with its own detail
    if (file_version >= 2) ta->masks = load_masks(in, ta->dfa, label);
  }

  if (artifact_checksum(artifact) != *checksum) {
    corrupt("checksum mismatch (payload corrupted)");
  }
  if (file_version >= 2) {
    if (artifact_masks_checksum(artifact) != *masks_checksum) {
      corrupt("masks_checksum mismatch (mask payload corrupted)");
    }
    // Persisted masks must equal the edge sets recomputed from the automata
    // they index — integrity (the checksum above) is not enough, because a
    // consistently forged section would pass it; a wrong mask silently
    // steering the executor off the automaton is the one failure mode this
    // container must make impossible.
    for (auto [label, ta] :
         {std::pair<const char*, const TokenAutomaton*>{"prefix",
                                                        &artifact.prefix},
          std::pair<const char*, const TokenAutomaton*>{"body",
                                                        &artifact.body}}) {
      if (ta->masks.empty()) continue;
      if (auto mismatch = core::masks_mismatch(ta->dfa, ta->masks)) {
        corrupt(std::string(label) + " masks disagree with the automaton: " +
                *mismatch);
      }
    }
  } else {
    // v1 file: predates the token_masks pass. Recompute the masks under the
    // same budget rule the pipeline uses, so a reloaded v1 artifact drives
    // the executors identically to a fresh v2 compile of the same query.
    const std::size_t bytes = core::token_mask_table_bytes(artifact.prefix.dfa) +
                              core::token_mask_table_bytes(artifact.body.dfa);
    if (bytes <= core::kTokenMaskBudgetBytes) {
      artifact.prefix.masks = core::build_token_masks(artifact.prefix.dfa);
      artifact.body.masks = core::build_token_masks(artifact.body.dfa);
    }
  }
  // Semantic invariant, not just integrity: all-tokens artifacts never need
  // dynamic pruning, so a set flag means the writer was buggy.
  if (artifact.strategy == TokenizationStrategy::kAllTokens &&
      (artifact.prefix.dynamic_canonical || artifact.body.dynamic_canonical)) {
    corrupt("dynamic_canonical set on an all-tokens artifact");
  }
  // Derived, never trusted from the file: recompute the empty-language flag
  // exactly like the assemble pass does.
  artifact.empty_language = automata::is_empty_language(artifact.body.dfa) ||
                           automata::is_empty_language(artifact.prefix.dfa);
  return artifact;
}

void save_artifact_file(const QueryArtifact& artifact, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw relm::Error("cannot open for writing: " + path);
  save_artifact(artifact, out);
  out.flush();
  if (!out) throw relm::Error("write failed: " + path);
}

QueryArtifact load_artifact_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw relm::Error("cannot open for reading: " + path);
  return load_artifact(in);
}

}  // namespace relm::core::pipeline
