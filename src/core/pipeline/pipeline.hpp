#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "automata/automaton.hpp"
#include "automata/regex_ast.hpp"
#include "core/pipeline/artifact.hpp"
#include "core/query.hpp"
#include "tokenizer/bpe.hpp"

namespace relm::core::pipeline {

// The query compile path as an explicit pass pipeline. Each pass is a
// named, introspectable stage that reads the intermediates earlier passes
// produced and fills in its own; the standard sequence mirrors the paper's
// compile chain:
//
//   parse -> thompson -> determinize -> minimize -> preprocess
//         -> token_lift -> assemble
//
// ending in a self-contained QueryArtifact. Intermediates are write-once
// (each pass only fills fields that are still empty-for-it), so a completed
// CompileState is a faithful record of the compilation that tools can
// inspect — `relm analyze` reports sizes from it and tests assert on
// individual stages without re-deriving them.

// Shared scratchpad. `prefix_*` fields stay unset (nullopt / null AST) for
// an empty prefix pattern — the lift pass then produces the epsilon token
// automaton directly, like the paper's unconditional-generation case.
struct CompileState {
  const SimpleSearchQuery* query = nullptr;
  const tokenizer::BpeTokenizer* tok = nullptr;

  // parse
  std::string prefix_pattern;
  std::string body_pattern;
  automata::RegexPtr prefix_ast;
  automata::RegexPtr body_ast;
  // thompson
  std::optional<automata::Nfa> prefix_nfa;
  std::optional<automata::Nfa> body_nfa;
  // determinize / minimize / preprocess (each pass replaces these)
  std::optional<automata::Dfa> prefix_chars;
  std::optional<automata::Dfa> body_chars;
  // token_lift
  std::optional<TokenAutomaton> prefix_tokens;
  std::optional<TokenAutomaton> body_tokens;
  // assemble
  std::optional<QueryArtifact> artifact;
};

// One named stage. `name()` must return a string literal (trace spans store
// it by pointer).
class Pass {
 public:
  virtual ~Pass() = default;
  virtual const char* name() const = 0;
  virtual void run(CompileState& state) const = 0;
};

// Per-pass execution record, for introspection and tests.
struct PassRecord {
  const char* name;
  double seconds;
};

struct CompileResult {
  QueryArtifact artifact;
  std::vector<PassRecord> passes;
};

class Pipeline {
 public:
  // The standard compile sequence above. Built once; immutable thereafter.
  static const Pipeline& standard();

  Pipeline() = default;
  Pipeline& add(std::unique_ptr<Pass> pass);

  std::vector<const char*> pass_names() const;

  // Runs every pass in order. Each pass runs under a "compile.pass.<name>"
  // trace span and its wall time lands in the returned records. Throws
  // relm::RegexError / relm::QueryError exactly like the pre-pipeline
  // compile path did.
  CompileResult run(const SimpleSearchQuery& query,
                    const tokenizer::BpeTokenizer& tok) const;

  // As run(), but hands back the full CompileState for callers that want
  // the intermediates (relm analyze, tests).
  CompileState run_to_state(const SimpleSearchQuery& query,
                            const tokenizer::BpeTokenizer& tok,
                            std::vector<PassRecord>* records = nullptr) const;

 private:
  std::vector<std::unique_ptr<Pass>> passes_;
};

// Convenience: standard pipeline, artifact only.
QueryArtifact compile_query_artifact(const SimpleSearchQuery& query,
                                     const tokenizer::BpeTokenizer& tok);

}  // namespace relm::core::pipeline
