#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>

#include "core/compiler.hpp"
#include "core/query.hpp"
#include "tokenizer/bpe.hpp"

namespace relm::core::pipeline {

// Content address of a compiled query: a stable 128-bit hash over everything
// that determines the compile output — prefix pattern, body pattern, the
// ordered preprocessor configuration (Preprocessor::cache_key), tokenization
// strategy, enumeration budget, artifact format version, and the vocabulary
// fingerprint. Equal keys imply byte-identical artifacts, which is what lets
// the cache substitute a stored artifact for a fresh compile.
struct ArtifactKey {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  bool is_zero() const { return hi == 0 && lo == 0; }
  std::string hex() const;  // 32 lowercase hex chars
  static std::optional<ArtifactKey> from_hex(std::string_view hex);

  friend bool operator==(const ArtifactKey&, const ArtifactKey&) = default;
};

// The pipeline's end product: a self-contained compiled query. Everything
// the executors need — both token automata, their dynamic-canonical flags —
// plus the identity metadata that makes it safe to reuse: the content
// address, the fingerprint of the vocabulary it was compiled against, and
// the format version. Immutable after construction; CompiledQuery and the
// cache share artifacts by shared_ptr<const>.
struct QueryArtifact {
  // v2 added the persisted per-state token mask tables (token_masks pass).
  // The version is folded into the artifact key, so a version bump retires
  // every cached key at once; v1 *files* remain loadable (see load_artifact).
  static constexpr std::uint32_t kFormatVersion = 2;

  // Version of the *query grammar*, folded into the artifact key but NOT
  // into the container format: bumping it retires cached keys for patterns
  // whose meaning changed without invalidating existing artifact files.
  // 2 = the boolean query algebra (`&`, `~`/`!`, `-` became metacharacters,
  // so e.g. "a-b" now names a different language than it did under v1).
  static constexpr std::uint32_t kGrammarVersion = 2;

  ArtifactKey key;                      // zero when the query is unkeyable
  std::uint64_t vocab_fingerprint = 0;  // tokenizer identity at compile time
  TokenizationStrategy strategy = TokenizationStrategy::kCanonicalTokens;
  // Dfa has no default constructor; a 1-symbol empty machine stands in
  // until the assemble pass (or the loader) fills these.
  TokenAutomaton prefix{automata::Dfa(1), false, {}};
  TokenAutomaton body{automata::Dfa(1), false, {}};
  // True when no token sequence can match (vacuous algebra query such as
  // `a & !a`, or an over-restrictive preprocessor). Derived from the
  // automata — never serialized; the loader recomputes it.
  bool empty_language = false;
};

// Order-sensitive fingerprint of a tokenizer's observable identity: every
// token string, the EOS id, and max_token_length. Token automata are defined
// over token *ids*, so any vocabulary change invalidates them — the cache
// folds this into the key and artifact loading re-checks it.
std::uint64_t vocab_fingerprint(const tokenizer::BpeTokenizer& tok);

// Derives the content address, or nullopt when the query carries a
// preprocessor without a stable cache_key() (such queries compile fine but
// bypass the cache).
std::optional<ArtifactKey> derive_artifact_key(
    const SimpleSearchQuery& query, const tokenizer::BpeTokenizer& tok);

// RELM_ARTIFACT v2 container — a versioned envelope around two RELM_DFA
// sections plus the TokenAutomaton metadata and per-state mask tables:
//
//   RELM_ARTIFACT v2
//   key <32 hex>
//   vocab <16 hex>
//   strategy <all|canonical>
//   prefix_dynamic_canonical <0|1>
//   body_dynamic_canonical <0|1>
//   checksum <16 hex>          (structural hash over both DFAs + flags)
//   masks_checksum <16 hex>    (hash over both mask tables)
//   prefix
//   RELM_DFA v1 ...
//   RELM_MASKS v1 ...          (dense bitmask words + CSR edge index)
//   body
//   RELM_DFA v1 ...
//   RELM_MASKS v1 ...
//
// load_artifact validates the version, every field, both DFA sections
// (hardened automata::load_dfa), the payload checksums, and — for every
// non-empty mask section — that the persisted masks equal the edge set
// recomputed from the DFA (core::masks_mismatch), throwing relm::Error with
// a located diagnostic on any mismatch: a truncated or bit-flipped file is
// always detected, never half-loaded, and a forged mask section can never
// silently steer the executor off the automaton.
//
// v1 files (written before the mask pass existed) still load: their masks
// are recomputed from the deserialized automata under the same budget rule
// the compile pipeline uses, so a v1 artifact drives the executors
// bit-identically to a fresh v2 compile of the same query.
void save_artifact(const QueryArtifact& artifact, std::ostream& out);
QueryArtifact load_artifact(std::istream& in);

// Writes the legacy v1 container (no mask sections). Kept for the
// backward-compatibility tests and for generating v1 fixtures; production
// code always writes the current version via save_artifact.
void save_artifact_v1(const QueryArtifact& artifact, std::ostream& out);

void save_artifact_file(const QueryArtifact& artifact, const std::string& path);
QueryArtifact load_artifact_file(const std::string& path);

// The checksum stored in the container: structural hash of both automata
// and their flags (not the key/fingerprint header lines, which are covered
// by their own validation). Deliberately excludes the mask tables — it is
// the same value a v1 writer would have stored, which is what lets one
// checksum definition cover both container versions.
std::uint64_t artifact_checksum(const QueryArtifact& artifact);

// Hash over both mask tables (dimensions, bitmask words, CSR arrays); the
// v2 container's masks_checksum header field.
std::uint64_t artifact_masks_checksum(const QueryArtifact& artifact);

}  // namespace relm::core::pipeline
