#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/pipeline/artifact.hpp"

namespace relm::core::pipeline {

struct ArtifactCacheConfig {
  // In-memory entries across all shards. 0 disables the cache entirely
  // (lookups miss unconditionally and inserts drop, including disk).
  std::size_t capacity = 256;

  // Optional on-disk store. When non-empty, misses fall through to
  // "<disk_dir>/<key hex>.relmq" and fresh compiles are persisted there, so
  // hot queries survive process restarts. Created on first store.
  std::string disk_dir;
};

// Content-addressed cache of compiled query artifacts: a sharded in-memory
// LRU in front of an optional on-disk store, keyed by ArtifactKey (see
// artifact.hpp for what the key covers — notably the vocabulary
// fingerprint, so a retrained tokenizer can never serve stale automata).
//
// Correctness stance: a cache hit hands back the artifact shared_ptr
// verbatim; artifacts are immutable, so cached and fresh compiles are
// byte-identical by construction (tests/test_pipeline.cpp proves it
// end-to-end through the executors). A corrupt or truncated disk entry is
// counted, discarded, and recompiled over — never trusted, never fatal.
//
// Thread-safe. Counters also mirror into the obs registry as
// compile_cache.{hit,miss,evict,load,store,corrupt}.
class ArtifactCache {
 public:
  explicit ArtifactCache(ArtifactCacheConfig config = {});
  ~ArtifactCache();
  ArtifactCache(const ArtifactCache&) = delete;
  ArtifactCache& operator=(const ArtifactCache&) = delete;

  // Memory first, then disk (a disk hit is promoted into memory). Null on
  // miss or when `key` is zero (unkeyable query).
  std::shared_ptr<const QueryArtifact> lookup(const ArtifactKey& key);

  // Inserts into memory (evicting LRU entries beyond capacity) and, when a
  // disk store is configured, persists atomically (temp file + rename).
  // Zero keys are ignored.
  void insert(const ArtifactKey& key,
              std::shared_ptr<const QueryArtifact> artifact);

  struct Stats {
    std::size_t hits = 0;         // memory or disk
    std::size_t misses = 0;
    std::size_t evictions = 0;
    std::size_t disk_loads = 0;   // hits served from disk
    std::size_t disk_stores = 0;
    std::size_t disk_errors = 0;  // corrupt/unreadable entries skipped
    std::size_t entries = 0;      // current in-memory size
  };
  Stats stats() const;

  const ArtifactCacheConfig& config() const { return config_; }
  bool enabled() const { return config_.capacity > 0; }

  // The process-global cache relm::search and the CLI compile through.
  // Defaults to in-memory only; RELM_COMPILE_CACHE=<dir> in the environment
  // adds a disk store and RELM_COMPILE_CACHE=off disables caching.
  static ArtifactCache& global();

  // Replaces the global cache's configuration (CLI flags). Existing entries
  // are dropped.
  static void configure_global(ArtifactCacheConfig config);

 private:
  struct Shard;
  Shard& shard_for(const ArtifactKey& key);
  std::string disk_path(const ArtifactKey& key) const;
  void insert_memory_(Shard& shard, const ArtifactKey& key,
                      const std::shared_ptr<const QueryArtifact>& artifact);

  ArtifactCacheConfig config_;
  std::unique_ptr<Shard[]> shards_;
};

// Compile-through-cache: derives the query's content address, serves a hit
// or compiles via Pipeline::standard() and stores the result. Queries with
// unkeyable preprocessors (or a null/disabled cache) compile fresh. This is
// the entry point relm::search and CompiledQuery::compile route through.
std::shared_ptr<const QueryArtifact> compile_cached(
    const SimpleSearchQuery& query, const tokenizer::BpeTokenizer& tok,
    ArtifactCache* cache = &ArtifactCache::global());

}  // namespace relm::core::pipeline
