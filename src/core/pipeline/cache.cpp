#include "core/pipeline/cache.hpp"

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <list>
#include <unordered_map>

#include "core/pipeline/pipeline.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/errors.hpp"
#include "util/sync.hpp"

namespace relm::core::pipeline {

namespace {

constexpr std::size_t kShards = 8;

struct GlobalCounters {
  obs::Counter& hit = obs::Registry::instance().counter("compile_cache.hit");
  obs::Counter& miss = obs::Registry::instance().counter("compile_cache.miss");
  obs::Counter& evict = obs::Registry::instance().counter("compile_cache.evict");
  obs::Counter& load = obs::Registry::instance().counter("compile_cache.load");
  obs::Counter& store = obs::Registry::instance().counter("compile_cache.store");
  obs::Counter& corrupt =
      obs::Registry::instance().counter("compile_cache.corrupt");
};

GlobalCounters& counters() {
  static GlobalCounters c;
  return c;
}

}  // namespace

struct ArtifactCache::Shard {
  struct Entry {
    ArtifactKey key;
    std::shared_ptr<const QueryArtifact> artifact;
  };
  struct KeyHash {
    std::size_t operator()(const ArtifactKey& k) const noexcept {
      return static_cast<std::size_t>(k.lo ^ (k.hi * 0x9e3779b97f4a7c15ull));
    }
  };

  mutable util::Mutex mutex{util::LockRank::kCompileCacheShard};
  // front = most recently used
  std::list<Entry> lru RELM_GUARDED_BY(mutex);
  std::unordered_map<ArtifactKey, std::list<Entry>::iterator, KeyHash> index
      RELM_GUARDED_BY(mutex);
  // Set once in the ArtifactCache constructor before any concurrent use,
  // immutable afterwards — so not lock-guarded.
  std::size_t capacity = 0;

  // Instance counters (the obs registry mirrors are process-global).
  std::atomic<std::size_t> hits{0};
  std::atomic<std::size_t> misses{0};
  std::atomic<std::size_t> evictions{0};
  std::atomic<std::size_t> disk_loads{0};
  std::atomic<std::size_t> disk_stores{0};
  std::atomic<std::size_t> disk_errors{0};
};

ArtifactCache::ArtifactCache(ArtifactCacheConfig config)
    : config_(std::move(config)), shards_(new Shard[kShards]) {
  // Ceiling split so capacities below kShards still cache something per
  // shard they land in.
  const std::size_t per_shard = (config_.capacity + kShards - 1) / kShards;
  for (std::size_t i = 0; i < kShards; ++i) shards_[i].capacity = per_shard;
}

ArtifactCache::~ArtifactCache() = default;

ArtifactCache::Shard& ArtifactCache::shard_for(const ArtifactKey& key) {
  return shards_[key.lo % kShards];
}

std::string ArtifactCache::disk_path(const ArtifactKey& key) const {
  return config_.disk_dir + "/" + key.hex() + ".relmq";
}

std::shared_ptr<const QueryArtifact> ArtifactCache::lookup(
    const ArtifactKey& key) {
  if (!enabled() || key.is_zero()) return nullptr;
  Shard& shard = shard_for(key);
  {
    util::ScopedLock lock(shard.mutex);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      shard.hits.fetch_add(1, std::memory_order_relaxed);
      counters().hit.add();
      return it->second->artifact;
    }
  }

  if (!config_.disk_dir.empty()) {
    const std::string path = disk_path(key);
    std::error_code ec;
    if (std::filesystem::exists(path, ec)) {
      try {
        auto artifact =
            std::make_shared<const QueryArtifact>(load_artifact_file(path));
        if (artifact->key != key) {
          throw relm::Error("stored key does not match its filename");
        }
        shard.disk_loads.fetch_add(1, std::memory_order_relaxed);
        shard.hits.fetch_add(1, std::memory_order_relaxed);
        counters().load.add();
        counters().hit.add();
        insert_memory_(shard, key, artifact);
        return artifact;
      } catch (const relm::Error&) {
        // Corrupt entry: count it and fall through to a miss. The caller
        // recompiles and insert() overwrites the bad file.
        shard.disk_errors.fetch_add(1, std::memory_order_relaxed);
        counters().corrupt.add();
      }
    }
  }

  shard.misses.fetch_add(1, std::memory_order_relaxed);
  counters().miss.add();
  return nullptr;
}

void ArtifactCache::insert_memory_(
    Shard& shard, const ArtifactKey& key,
    const std::shared_ptr<const QueryArtifact>& artifact) {
  util::ScopedLock lock(shard.mutex);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    it->second->artifact = artifact;
    return;
  }
  shard.lru.push_front(Shard::Entry{key, artifact});
  shard.index[key] = shard.lru.begin();
  while (shard.lru.size() > shard.capacity) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    shard.evictions.fetch_add(1, std::memory_order_relaxed);
    counters().evict.add();
  }
}

void ArtifactCache::insert(const ArtifactKey& key,
                           std::shared_ptr<const QueryArtifact> artifact) {
  if (!enabled() || key.is_zero() || !artifact) return;
  Shard& shard = shard_for(key);
  insert_memory_(shard, key, artifact);

  if (config_.disk_dir.empty()) return;
  try {
    std::error_code ec;
    std::filesystem::create_directories(config_.disk_dir, ec);
    // Unique temp name per store, then an atomic rename: concurrent
    // processes warming the same directory never expose a partial file.
    static std::atomic<std::uint64_t> store_seq{0};
    const std::string path = disk_path(key);
    const std::string tmp =
        path + ".tmp" + std::to_string(store_seq.fetch_add(1)) + "-" +
        std::to_string(reinterpret_cast<std::uintptr_t>(this) & 0xffff);
    save_artifact_file(*artifact, tmp);
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
      std::filesystem::remove(tmp, ec);
      shard.disk_errors.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    shard.disk_stores.fetch_add(1, std::memory_order_relaxed);
    counters().store.add();
  } catch (const relm::Error&) {
    // An unwritable disk store degrades to memory-only; it must never fail
    // the compile that produced the artifact.
    shard.disk_errors.fetch_add(1, std::memory_order_relaxed);
  }
}

ArtifactCache::Stats ArtifactCache::stats() const {
  Stats stats;
  for (std::size_t i = 0; i < kShards; ++i) {
    const Shard& s = shards_[i];
    stats.hits += s.hits.load(std::memory_order_relaxed);
    stats.misses += s.misses.load(std::memory_order_relaxed);
    stats.evictions += s.evictions.load(std::memory_order_relaxed);
    stats.disk_loads += s.disk_loads.load(std::memory_order_relaxed);
    stats.disk_stores += s.disk_stores.load(std::memory_order_relaxed);
    stats.disk_errors += s.disk_errors.load(std::memory_order_relaxed);
    util::ScopedLock lock(s.mutex);
    stats.entries += s.lru.size();
  }
  return stats;
}

namespace {

// Read-mostly: every compile consults the singleton pointer, but it is only
// written at first use or by configure_global (tests).
util::SharedMutex g_global_mutex{util::LockRank::kCompileCacheConfig};
std::unique_ptr<ArtifactCache> g_global RELM_GUARDED_BY(g_global_mutex);

ArtifactCacheConfig global_config_from_env() {
  ArtifactCacheConfig config;
  if (const char* dir = std::getenv("RELM_COMPILE_CACHE"); dir && *dir) {
    std::string value = dir;
    if (value == "off" || value == "0") {
      config.capacity = 0;
    } else {
      config.disk_dir = value;
    }
  }
  return config;
}

}  // namespace

ArtifactCache& ArtifactCache::global() {
  {
    util::SharedScopedLock lock(g_global_mutex);
    if (g_global) return *g_global;
  }
  util::ScopedLock lock(g_global_mutex);
  if (!g_global) {
    g_global = std::make_unique<ArtifactCache>(global_config_from_env());
  }
  return *g_global;
}

void ArtifactCache::configure_global(ArtifactCacheConfig config) {
  util::ScopedLock lock(g_global_mutex);
  g_global = std::make_unique<ArtifactCache>(std::move(config));
}

std::shared_ptr<const QueryArtifact> compile_cached(
    const SimpleSearchQuery& query, const tokenizer::BpeTokenizer& tok,
    ArtifactCache* cache) {
  std::optional<ArtifactKey> key;
  if (cache && cache->enabled()) {
    key = derive_artifact_key(query, tok);
    if (key) {
      if (auto hit = cache->lookup(*key)) return hit;
    }
  }
  auto artifact =
      std::make_shared<const QueryArtifact>(compile_query_artifact(query, tok));
  if (cache && key) cache->insert(*key, artifact);
  return artifact;
}

}  // namespace relm::core::pipeline
