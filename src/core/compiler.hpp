#pragma once

#include "automata/automaton.hpp"
#include "core/query.hpp"
#include "core/token_masks.hpp"
#include "tokenizer/bpe.hpp"

namespace relm::core {

// A token-space automaton (the paper's "LLM Automaton", §3.2): states are
// inherited from the character automaton, symbols are BPE token ids. Always
// deterministic: from a fixed state, a token's character walk is unique in a
// character DFA.
struct TokenAutomaton {
  automata::Dfa dfa;

  // True when the canonical-encodings strategy could not be materialized
  // exactly (infinite or over-budget language): `dfa` then holds the full
  // set of encodings and the executor must prune non-canonical paths
  // dynamically during traversal (§3.2, "backtracking during runtime").
  bool dynamic_canonical = false;

  // Per-state token bitmasks + CSR edge index (the token_masks pipeline
  // pass). Empty when masks were skipped (memory budget) — executors then
  // use the per-edge expansion path.
  TokenMaskTable masks;
};

// Compiles a character-level DFA into a token automaton.
//
// kAllTokens implements the shortcut-edge construction of Appendix B
// literally: for every automaton state and every vocabulary token, the
// token's string is walked through the character DFA; surviving walks become
// token edges — O(V · k · m_max), the paper's bound. (A trie-sharing variant
// exists below; measured, the literal algorithm is ~2x faster on the dense
// cyclic automata real queries produce.)
//
// kCanonicalTokens implements §3.2's options in order of preference:
//   1. if the language is finite and has at most `enumeration_budget`
//      strings, enumerate them, encode each canonically, and build the exact
//      token trie (then minimize);
//   2. otherwise fall back to the full-encodings automaton with
//      dynamic_canonical = true.
TokenAutomaton compile_token_automaton(const automata::Dfa& char_dfa,
                                       const tokenizer::BpeTokenizer& tok,
                                       TokenizationStrategy strategy,
                                       std::size_t enumeration_budget = 50000);

// The trivial token automaton accepting only the empty string (used for
// empty prefixes).
TokenAutomaton epsilon_token_automaton(const tokenizer::BpeTokenizer& tok);

// The trie-sharing alternative construction: walks the vocabulary trie and
// the DFA in lockstep, sharing prefix work across tokens. Profitable only
// for large sparse automata (long literals); property-tested identical to
// the production construction and compared in bench/micro_compiler.
automata::Dfa build_all_tokens_trie_variant(const automata::Dfa& char_dfa,
                                            const tokenizer::BpeTokenizer& tok);

}  // namespace relm::core
