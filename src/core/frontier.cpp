#include "core/frontier.hpp"

#include <algorithm>
#include <vector>

#include "obs/metrics.hpp"
#include "util/errors.hpp"

namespace relm::core {

namespace {

struct FrontierMetrics {
  obs::Counter& shard_steals;

  static FrontierMetrics& get() {
    static FrontierMetrics m{
        obs::Registry::instance().counter("frontier.shard_steals")};
    return m;
  }
};

// Max-heap comparator that puts the entry_less-minimum at the front.
bool heap_after(const ShardedFrontier::Entry& a,
                const ShardedFrontier::Entry& b) {
  return ShardedFrontier::entry_less(b, a);
}

}  // namespace

struct ShardedFrontier::Shard {
  mutable util::Mutex mutex{util::LockRank::kFrontierShard};
  std::vector<Entry> heap RELM_GUARDED_BY(mutex);
  // Bumped under the lock on every mutation; the coordinator compares it
  // against its cached snapshot to skip relocking quiescent shards.
  std::atomic<std::uint64_t> version{0};
};

ShardedFrontier::ShardedFrontier()
    : shards_(std::make_unique<Shard[]>(kShards)),
      tops_(std::make_unique<CachedTop[]>(kShards)) {
  FrontierMetrics::get();  // touch so the counter exists even for empty runs
}

ShardedFrontier::~ShardedFrontier() {
  if (steals_ > 0) FrontierMetrics::get().shard_steals.add(steals_);
}

void ShardedFrontier::push(double cost, std::uint32_t node) {
  Shard& shard = shards_[node & (kShards - 1)];
  {
    util::ScopedLock lock(shard.mutex);
    shard.heap.push_back(Entry{cost, node});
    std::push_heap(shard.heap.begin(), shard.heap.end(), heap_after);
    shard.version.fetch_add(1, std::memory_order_relaxed);
  }
  size_.fetch_add(1, std::memory_order_relaxed);
}

void ShardedFrontier::refresh(std::size_t s) const {
  Shard& shard = shards_[s];
  CachedTop& cached = tops_[s];
  const std::uint64_t version = shard.version.load(std::memory_order_relaxed);
  if (cached.seen_version == version) return;
  util::ScopedLock lock(shard.mutex);
  // Re-read the version under the lock: a push may land between the relaxed
  // load above and the acquire; the lock orders us after it.
  cached.seen_version = shard.version.load(std::memory_order_relaxed);
  cached.has = !shard.heap.empty();
  if (cached.has) cached.top = shard.heap.front();
}

std::size_t ShardedFrontier::min_shard() const {
  std::size_t best = kShards;
  for (std::size_t s = 0; s < kShards; ++s) {
    refresh(s);
    if (!tops_[s].has) continue;
    if (best == kShards || entry_less(tops_[s].top, tops_[best].top)) best = s;
  }
  return best;
}

bool ShardedFrontier::empty() const { return min_shard() == kShards; }

ShardedFrontier::Entry ShardedFrontier::min() const {
  const std::size_t s = min_shard();
  RELM_DCHECK(s < kShards, "min() on an empty frontier");
  return tops_[s].top;
}

ShardedFrontier::Entry ShardedFrontier::pop() {
  const std::size_t s = min_shard();
  RELM_DCHECK(s < kShards, "pop() on an empty frontier");
  Shard& shard = shards_[s];
  Entry out;
  {
    util::ScopedLock lock(shard.mutex);
    out = shard.heap.front();
    std::pop_heap(shard.heap.begin(), shard.heap.end(), heap_after);
    shard.heap.pop_back();
    shard.version.fetch_add(1, std::memory_order_relaxed);
    CachedTop& cached = tops_[s];
    cached.seen_version = shard.version.load(std::memory_order_relaxed);
    cached.has = !shard.heap.empty();
    if (cached.has) cached.top = shard.heap.front();
  }
  size_.fetch_sub(1, std::memory_order_relaxed);
  if (last_shard_ != kShards && last_shard_ != s) ++steals_;
  last_shard_ = s;
  return out;
}

}  // namespace relm::core
