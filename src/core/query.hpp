#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/preprocessors.hpp"
#include "model/decoding.hpp"

namespace relm::core {

class MaskMemo;

// The regex portion of a query (Fig 11): the full pattern plus the prefix
// sub-pattern. The prefix is itself a regular expression; it is "defined to
// be in the language" (§2.4) — decoding rules never prune it — and the
// pattern proper is everything after it. `query_str` must start with the
// language of `prefix_str` textually: like the Python API, the caller writes
// the full query and names which leading part is the prefix.
struct QueryString {
  std::string query_str;
  std::string prefix_str;  // empty = unconditional generation

  // The pattern remainder after removing the literal prefix text. Throws
  // relm::QueryError if prefix_str is not a textual prefix of query_str.
  std::string body_str() const;
};

enum class SearchStrategy {
  kShortestPath,     // Dijkstra: most probable strings first (§3.3)
  kRandomSampling,   // unbiased randomized traversal (§3.3)
  kBeam,             // constrained beam search (approximate; bounded memory)
};

enum class TokenizationStrategy {
  kAllTokens,        // the full (ambiguous) set of encodings (§3.2, Fig 3a)
  kCanonicalTokens,  // canonical encodings only (§3.2, Fig 3b)
};

// A complete ReLM query (§3): language description, decoding/decision rules,
// and traversal algorithm. The LLM itself is passed to search() separately,
// mirroring the Python API.
struct SimpleSearchQuery {
  QueryString query_string;
  SearchStrategy search_strategy = SearchStrategy::kShortestPath;
  TokenizationStrategy tokenization_strategy = TokenizationStrategy::kCanonicalTokens;
  model::DecodingRules decoding;                 // top-k / top-p / temperature
  std::optional<std::size_t> sequence_length;    // token budget; default model max

  // Preprocessors (§3.4), applied in order to the query automata before
  // token compilation. Each may target the prefix, the body, or both.
  std::vector<std::shared_ptr<const Preprocessor>> preprocessors;

  // Terminate matches with EOS ("terminated" in §4.4): a string only counts
  // once the model emits EOS after it, and p(EOS | string) joins the cost.
  bool require_eos = false;

  // --- execution limits -----------------------------------------------------
  std::size_t max_results = 100;        // shortest path: matches to emit
  std::size_t max_expansions = 20000;   // shortest path: LLM call budget
  std::size_t num_samples = 100;        // random sampling: samples to draw
  std::size_t max_sample_attempts_factor = 16;  // retries per requested sample
  std::size_t beam_width = 8;           // beam search: live paths per step

  // Use the precompiled per-state token bitmasks (the token_masks pipeline
  // pass): executors intersect the decoding-rule mask with the state's mask
  // word-wise and visit only surviving bits instead of probing every edge.
  // An executor flag, not a compile input — it is deliberately excluded from
  // the artifact cache key, and the outputs are identical either way.
  bool use_token_masks = true;

  // Shortest path: nodes expanded per model round. 1 = strict Dijkstra.
  // Larger values batch frontier expansions through
  // LanguageModel::next_log_probs_batch — the CPU analogue of the paper's
  // GPU test-vector scheduling (§3.3). Results are identical for every
  // batch size: matches found ahead of settlement are held back until no
  // frontier node can beat them, so emission stays exact
  // most-probable-first.
  std::size_t expansion_batch_size = 1;

  // Shortest path: run the asynchronous producer/consumer pipeline instead
  // of pop-batch-settle lockstep. The coordinator speculatively pops nodes
  // ahead of settlement (up to `speculation_horizon` beyond the round's
  // minimum cost), submits their model evaluations as an async batch, and
  // retires slots in submission order while later slots still evaluate.
  // Batch size tracks frontier depth via `target_occupancy` (replacing the
  // fixed expansion_batch_size, which only the lockstep path reads). All
  // scheduling decisions are pure functions of search state — never thread
  // count — so outputs are byte-identical to the lockstep path and across
  // 1/2/4/8 threads (enforced by the differential harness).
  bool speculative_expansion = true;

  // Pipeline: hard cap on nodes popped per round (bounds wasted speculative
  // work after the last true match).
  std::size_t max_in_flight = 64;

  // Pipeline: the controller aims to keep this many evaluations in flight;
  // per-round batch = min(max_in_flight, max(1, min(frontier, 2*target))).
  std::size_t target_occupancy = 16;

  // Pipeline: nodes costlier than round_min + horizon are left for a later
  // round. Speculating past this is nearly always wasted (their children
  // cannot settle soon); executor.speculative.horizon_clips counts the cut.
  double speculation_horizon = 8.0;

  // Pipeline + restricted decoding: optional decoding-mask memo shared
  // across the sequential searches of a run (core/mask_memo.hpp). Suffixes
  // repeat mostly ACROSS searches, so sharing lifts the memo hit rate to the
  // logit cache's. Null = the search builds a private memo. The executor
  // fingerprints rules + vocabulary and ignores a mismatched memo.
  std::shared_ptr<MaskMemo> mask_memo;

  // Random sampling: weigh prefix edges by walk counts (the paper's
  // normalization, Appendix C). Disabled only by the Figure 9 ablation.
  bool walk_normalized_sampling = true;

  // Canonical compilation: languages with at most this many strings are
  // enumerated and encoded exactly (§3.2 option 1); larger ones fall back to
  // dynamic canonicality pruning during traversal (option 2).
  std::size_t canonical_enumeration_budget = 50000;

  // Determinize pass: cap on character-DFA states materialized by subset /
  // boolean-product construction; exceeding it throws relm::StateBudgetError
  // instead of blowing up compile memory. 0 defers to RELM_DETERMINIZE_BUDGET
  // (default 2^20). A compile limit, not a language change — deliberately
  // excluded from the artifact cache key (the minimized result is identical
  // for any budget large enough to finish).
  std::size_t determinize_state_budget = 0;
};

}  // namespace relm::core
