#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/preprocessors.hpp"
#include "model/decoding.hpp"

namespace relm::core {

// The regex portion of a query (Fig 11): the full pattern plus the prefix
// sub-pattern. The prefix is itself a regular expression; it is "defined to
// be in the language" (§2.4) — decoding rules never prune it — and the
// pattern proper is everything after it. `query_str` must start with the
// language of `prefix_str` textually: like the Python API, the caller writes
// the full query and names which leading part is the prefix.
struct QueryString {
  std::string query_str;
  std::string prefix_str;  // empty = unconditional generation

  // The pattern remainder after removing the literal prefix text. Throws
  // relm::QueryError if prefix_str is not a textual prefix of query_str.
  std::string body_str() const;
};

enum class SearchStrategy {
  kShortestPath,     // Dijkstra: most probable strings first (§3.3)
  kRandomSampling,   // unbiased randomized traversal (§3.3)
  kBeam,             // constrained beam search (approximate; bounded memory)
};

enum class TokenizationStrategy {
  kAllTokens,        // the full (ambiguous) set of encodings (§3.2, Fig 3a)
  kCanonicalTokens,  // canonical encodings only (§3.2, Fig 3b)
};

// A complete ReLM query (§3): language description, decoding/decision rules,
// and traversal algorithm. The LLM itself is passed to search() separately,
// mirroring the Python API.
struct SimpleSearchQuery {
  QueryString query_string;
  SearchStrategy search_strategy = SearchStrategy::kShortestPath;
  TokenizationStrategy tokenization_strategy = TokenizationStrategy::kCanonicalTokens;
  model::DecodingRules decoding;                 // top-k / top-p / temperature
  std::optional<std::size_t> sequence_length;    // token budget; default model max

  // Preprocessors (§3.4), applied in order to the query automata before
  // token compilation. Each may target the prefix, the body, or both.
  std::vector<std::shared_ptr<const Preprocessor>> preprocessors;

  // Terminate matches with EOS ("terminated" in §4.4): a string only counts
  // once the model emits EOS after it, and p(EOS | string) joins the cost.
  bool require_eos = false;

  // --- execution limits -----------------------------------------------------
  std::size_t max_results = 100;        // shortest path: matches to emit
  std::size_t max_expansions = 20000;   // shortest path: LLM call budget
  std::size_t num_samples = 100;        // random sampling: samples to draw
  std::size_t max_sample_attempts_factor = 16;  // retries per requested sample
  std::size_t beam_width = 8;           // beam search: live paths per step

  // Use the precompiled per-state token bitmasks (the token_masks pipeline
  // pass): executors intersect the decoding-rule mask with the state's mask
  // word-wise and visit only surviving bits instead of probing every edge.
  // An executor flag, not a compile input — it is deliberately excluded from
  // the artifact cache key, and the outputs are identical either way.
  bool use_token_masks = true;

  // Shortest path: nodes expanded per model round. 1 = strict Dijkstra.
  // Larger values batch frontier expansions through
  // LanguageModel::next_log_probs_batch — the CPU analogue of the paper's
  // GPU test-vector scheduling (§3.3). Results are identical for every
  // batch size: matches found ahead of settlement are held back until no
  // frontier node can beat them, so emission stays exact
  // most-probable-first.
  std::size_t expansion_batch_size = 1;

  // Random sampling: weigh prefix edges by walk counts (the paper's
  // normalization, Appendix C). Disabled only by the Figure 9 ablation.
  bool walk_normalized_sampling = true;

  // Canonical compilation: languages with at most this many strings are
  // enumerated and encoded exactly (§3.2 option 1); larger ones fall back to
  // dynamic canonicality pruning during traversal (option 2).
  std::size_t canonical_enumeration_budget = 50000;
};

}  // namespace relm::core
