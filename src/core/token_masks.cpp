#include "core/token_masks.hpp"

#include <bit>

namespace relm::core {

using automata::Dfa;
using automata::Edge;
using automata::StateId;

std::size_t token_mask_table_bytes(const Dfa& dfa) {
  const std::size_t words_per_state =
      (static_cast<std::size_t>(dfa.num_symbols()) + 63) / 64;
  return dfa.num_states() * words_per_state * sizeof(std::uint64_t) +
         (dfa.num_states() + 1 + 2 * dfa.num_edges()) * sizeof(std::uint32_t);
}

TokenMaskTable build_token_masks(const Dfa& dfa) {
  TokenMaskTable table;
  table.num_states = static_cast<std::uint32_t>(dfa.num_states());
  table.words_per_state = static_cast<std::uint32_t>(
      (static_cast<std::size_t>(dfa.num_symbols()) + 63) / 64);
  table.words.assign(
      static_cast<std::size_t>(table.num_states) * table.words_per_state, 0);
  table.edge_offsets.reserve(table.num_states + 1);
  table.edge_offsets.push_back(0);
  table.edge_tokens.reserve(dfa.num_edges());
  table.edge_targets.reserve(dfa.num_edges());

  for (StateId s = 0; s < table.num_states; ++s) {
    std::uint64_t* row =
        table.words.data() + static_cast<std::size_t>(s) * table.words_per_state;
    for (const Edge& e : dfa.edges(s)) {
      row[e.symbol / 64] |= 1ull << (e.symbol % 64);
      table.edge_tokens.push_back(e.symbol);
      table.edge_targets.push_back(e.to);
    }
    table.edge_offsets.push_back(
        static_cast<std::uint32_t>(table.edge_tokens.size()));
  }
  return table;
}

std::optional<std::string> masks_mismatch(const Dfa& dfa,
                                          const TokenMaskTable& table) {
  if (table.num_states != dfa.num_states()) {
    return "mask table covers " + std::to_string(table.num_states) +
           " states, automaton has " + std::to_string(dfa.num_states());
  }
  const std::size_t want_words =
      (static_cast<std::size_t>(dfa.num_symbols()) + 63) / 64;
  if (table.words_per_state != want_words) {
    return "mask table words_per_state " + std::to_string(table.words_per_state) +
           " does not cover the alphabet of " +
           std::to_string(dfa.num_symbols()) + " (want " +
           std::to_string(want_words) + ")";
  }
  if (table.words.size() !=
      static_cast<std::size_t>(table.num_states) * table.words_per_state) {
    return "mask word array has " + std::to_string(table.words.size()) +
           " words, want " +
           std::to_string(static_cast<std::size_t>(table.num_states) *
                          table.words_per_state);
  }
  if (table.edge_offsets.size() !=
      static_cast<std::size_t>(table.num_states) + 1) {
    return "mask edge_offsets has " + std::to_string(table.edge_offsets.size()) +
           " entries, want " + std::to_string(table.num_states + 1);
  }
  if (table.edge_offsets.front() != 0) {
    return "mask edge_offsets[0] must be 0";
  }
  if (table.edge_tokens.size() != table.edge_offsets.back() ||
      table.edge_targets.size() != table.edge_offsets.back()) {
    return "mask edge arrays (" + std::to_string(table.edge_tokens.size()) +
           " tokens, " + std::to_string(table.edge_targets.size()) +
           " targets) do not match edge_offsets total " +
           std::to_string(table.edge_offsets.back());
  }

  for (StateId s = 0; s < table.num_states; ++s) {
    const std::uint32_t begin = table.edge_offsets[s];
    const std::uint32_t end = table.edge_offsets[s + 1];
    if (end < begin) {
      return "mask edge_offsets decrease at state " + std::to_string(s);
    }
    auto edges = dfa.edges(s);
    if (end - begin != edges.size()) {
      return "state " + std::to_string(s) + ": mask indexes " +
             std::to_string(end - begin) + " edges, automaton has " +
             std::to_string(edges.size());
    }
    std::size_t popcount = 0;
    const std::uint64_t* row = table.state_words(s);
    for (std::uint32_t w = 0; w < table.words_per_state; ++w) {
      popcount += static_cast<std::size_t>(std::popcount(row[w]));
    }
    if (popcount != edges.size()) {
      return "state " + std::to_string(s) + ": mask popcount " +
             std::to_string(popcount) + " does not equal edge count " +
             std::to_string(edges.size());
    }
    for (std::size_t i = 0; i < edges.size(); ++i) {
      const Edge& e = edges[i];
      if (table.edge_tokens[begin + i] != e.symbol) {
        return "state " + std::to_string(s) + " edge " + std::to_string(i) +
               ": mask token " + std::to_string(table.edge_tokens[begin + i]) +
               " vs automaton token " + std::to_string(e.symbol);
      }
      if (table.edge_targets[begin + i] != e.to) {
        return "state " + std::to_string(s) + " edge " + std::to_string(i) +
               " (token " + std::to_string(e.symbol) + "): mask target " +
               std::to_string(table.edge_targets[begin + i]) +
               " vs automaton target " + std::to_string(e.to);
      }
      if (e.symbol / 64 >= table.words_per_state ||
          !((row[e.symbol / 64] >> (e.symbol % 64)) & 1u)) {
        return "state " + std::to_string(s) + ": mask bit for token " +
               std::to_string(e.symbol) + " is clear but the edge exists";
      }
    }
  }
  return std::nullopt;
}

}  // namespace relm::core
