#include "experiments/toxicity.hpp"

#include <unordered_set>

#include "automata/grep.hpp"
#include "automata/regex.hpp"
#include "core/compiled_query.hpp"
#include "core/executor.hpp"
#include "core/preprocessors.hpp"
#include "util/strings.hpp"

namespace relm::experiments {

std::vector<ToxicityCase> derive_toxicity_cases(const World& world,
                                                std::size_t max_cases) {
  automata::Dfa lexicon = automata::compile_regex(insult_lexicon_pattern());
  std::vector<ToxicityCase> cases;
  std::unordered_set<std::string> seen_sentences;

  for (const std::string& doc : world.corpus.scan_documents()) {
    for (const automata::GrepMatch& m : automata::grep_all(lexicon, doc)) {
      if (!seen_sentences.insert(doc).second) break;  // dedup repeated plants
      ToxicityCase item;
      item.sentence = doc;
      item.insult = doc.substr(m.offset, m.length);
      // Prompt stops before the profanity; the separating space moves into
      // the extraction target so token boundaries line up with training
      // (" snarfwit" is one pretoken; "snarfwit" after a dangling space is
      // not) — the tokenization-boundary issue §5 notes about bad_words_ids.
      std::size_t cut = m.offset;
      item.prompt = doc.substr(0, cut);
      while (!item.prompt.empty() && item.prompt.back() == ' ') {
        item.prompt.pop_back();
        item.insult = " " + item.insult;
      }
      if (item.prompt.empty()) continue;  // need a non-empty prompt
      cases.push_back(std::move(item));
      if (cases.size() >= max_cases) return cases;
      break;  // one case per document
    }
  }
  return cases;
}

namespace {

core::SimpleSearchQuery make_query(const ToxicitySettings& settings) {
  core::SimpleSearchQuery query;
  query.search_strategy = core::SearchStrategy::kShortestPath;
  query.tokenization_strategy = settings.all_encodings
                                    ? core::TokenizationStrategy::kAllTokens
                                    : core::TokenizationStrategy::kCanonicalTokens;
  query.decoding.top_k = settings.top_k;
  query.max_expansions = settings.max_expansions_per_case;
  query.sequence_length = 48;
  if (settings.edits) {
    query.preprocessors.push_back(std::make_shared<core::LevenshteinPreprocessor>(
        1, core::Preprocessor::Target::kBody));
  }
  return query;
}

}  // namespace

PromptedResult run_prompted_toxicity(const World& world,
                                     const model::NgramModel& model,
                                     const std::vector<ToxicityCase>& cases,
                                     const ToxicitySettings& settings) {
  PromptedResult result;
  for (const ToxicityCase& item : cases) {
    core::SimpleSearchQuery query = make_query(settings);
    query.query_string.prefix_str = util::regex_escape(item.prompt);
    query.query_string.query_str =
        query.query_string.prefix_str + util::regex_escape(item.insult);
    query.max_results = 1;

    core::CompiledQuery compiled =
        core::CompiledQuery::compile(query, *world.tokenizer);
    core::ShortestPathSearch search(model, compiled, query);
    ++result.attempted;
    if (search.next()) ++result.extracted;
  }
  return result;
}

UnpromptedResult run_unprompted_toxicity(const World& world,
                                         const model::NgramModel& model,
                                         const std::vector<ToxicityCase>& cases,
                                         const ToxicitySettings& settings) {
  UnpromptedResult result;
  for (const ToxicityCase& item : cases) {
    core::SimpleSearchQuery query = make_query(settings);
    query.query_string.prefix_str = "";
    query.query_string.query_str = util::regex_escape(item.sentence);
    query.max_results = settings.sequence_cap;

    core::CompiledQuery compiled =
        core::CompiledQuery::compile(query, *world.tokenizer);
    core::ShortestPathSearch search(model, compiled, query);
    // Volume measurement: count token tuples, not decoded strings (§4.3.2).
    search.set_dedup_text(false);
    std::size_t sequences = 0;
    while (search.next()) ++sequences;

    ++result.attempted;
    if (sequences > 0) ++result.inputs_with_extraction;
    result.total_sequences += sequences;
  }
  return result;
}

}  // namespace relm::experiments
