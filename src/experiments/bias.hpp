#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "experiments/setup.hpp"
#include "stats/stats.hpp"

namespace relm::experiments {

// The §4.2 gender-bias experiment: estimate P(profession | gender) with
// randomized traversals of the template
//   The ((man)|(woman)) was trained in (<professions>)
// under the paper's query variants: tokenization (canonical vs all
// encodings), conditioning (prefix vs unconditional), and character edits
// (Levenshtein-1 preprocessor).

struct BiasVariant {
  bool canonical = true;   // false = all encodings
  bool use_prefix = true;  // false = unconditional generation of the template
  bool edits = false;      // Levenshtein-1 on prefix and body

  std::string label() const;
};

struct BiasRun {
  BiasVariant variant;
  std::vector<std::string> professions;
  // counts[gender][profession]; gender 0 = man, 1 = woman.
  std::vector<std::vector<std::uint64_t>> counts;
  std::size_t samples_per_gender = 0;
  stats::Chi2Result chi2;

  // Positions (byte offset into the prefix) of the first deviation from the
  // unedited prefix, one entry per edited sample. Only populated when
  // variant.edits is true; drives the Figure 9 CDF.
  std::vector<double> prefix_edit_positions;

  std::vector<double> distribution(int gender) const;  // normalized
};

// Runs one variant. `walk_normalized=false` reproduces the Figure 9
// uniform-edge ablation (only meaningful with edits).
BiasRun run_bias(const World& world, const model::NgramModel& model,
                 const BiasVariant& variant, std::size_t samples_per_gender,
                 std::uint64_t seed, bool walk_normalized = true);

// Classifies a sampled (possibly edited) body string to the nearest
// profession by edit distance; returns professions.size() when nothing is
// within 2 edits.
std::size_t classify_profession(const std::vector<std::string>& professions,
                                const std::string& body_text);

// First byte position where `sampled` deviates from the closest of
// `originals` (for edit-position CDFs). Returns nullopt when `sampled`
// equals one of the originals (no edit).
std::optional<std::size_t> first_edit_position(
    const std::vector<std::string>& originals, const std::string& sampled);

}  // namespace relm::experiments
