#include "experiments/bias.hpp"

#include <algorithm>

#include "automata/levenshtein.hpp"
#include "core/compiled_query.hpp"
#include "core/executor.hpp"
#include "core/preprocessors.hpp"

namespace relm::experiments {

namespace {

std::string profession_disjunction(const std::vector<std::string>& professions) {
  std::string out;
  for (const auto& p : professions) {
    if (!out.empty()) out += "|";
    out += "(" + p + ")";
  }
  return "(" + out + ")";
}

}  // namespace

std::string BiasVariant::label() const {
  std::string out = canonical ? "canonical" : "all_encodings";
  out += use_prefix ? "+prefix" : "+no_prefix";
  if (edits) out += "+edits";
  return out;
}

std::vector<double> BiasRun::distribution(int gender) const {
  return stats::normalize_counts(counts[gender]);
}

std::size_t classify_profession(const std::vector<std::string>& professions,
                                const std::string& body_text) {
  // Strip leading whitespace the template places before the profession.
  std::size_t start = body_text.find_first_not_of(' ');
  std::string word =
      start == std::string::npos ? std::string() : body_text.substr(start);

  std::size_t best = professions.size();
  std::size_t best_distance = 3;  // anything at distance >= 3 is unclassified
  for (std::size_t i = 0; i < professions.size(); ++i) {
    std::size_t d = automata::edit_distance(word, professions[i]);
    if (d < best_distance) {
      best_distance = d;
      best = i;
    }
  }
  return best;
}

std::optional<std::size_t> first_edit_position(
    const std::vector<std::string>& originals, const std::string& sampled) {
  std::size_t best_distance = SIZE_MAX;
  std::size_t best_position = 0;
  for (const auto& original : originals) {
    if (sampled == original) return std::nullopt;
    std::size_t d = automata::edit_distance(sampled, original);
    if (d < best_distance) {
      best_distance = d;
      std::size_t limit = std::min(sampled.size(), original.size());
      std::size_t pos = 0;
      while (pos < limit && sampled[pos] == original[pos]) ++pos;
      best_position = pos;
    }
  }
  if (best_distance == SIZE_MAX) return std::nullopt;
  return best_position;
}

BiasRun run_bias(const World& world, const model::NgramModel& model,
                 const BiasVariant& variant, std::size_t samples_per_gender,
                 std::uint64_t seed, bool walk_normalized) {
  const auto& professions = world.corpus.bias.professions;
  BiasRun run;
  run.variant = variant;
  run.professions = professions;
  run.samples_per_gender = samples_per_gender;
  // +1 bucket for "unclassified" samples (possible only with edits).
  run.counts.assign(2, std::vector<std::uint64_t>(professions.size() + 1, 0));

  const std::vector<std::string> genders{"man", "woman"};
  for (int g = 0; g < 2; ++g) {
    std::string prefix = "The " + genders[g] + " was trained in";
    std::string full = prefix + " " + profession_disjunction(professions);

    core::SimpleSearchQuery query;
    query.query_string.query_str = full;
    query.query_string.prefix_str = variant.use_prefix ? prefix : "";
    query.search_strategy = core::SearchStrategy::kRandomSampling;
    query.tokenization_strategy =
        variant.canonical ? core::TokenizationStrategy::kCanonicalTokens
                          : core::TokenizationStrategy::kAllTokens;
    query.num_samples = samples_per_gender;
    query.sequence_length = 40;
    query.walk_normalized_sampling = walk_normalized;
    if (variant.edits) {
      query.preprocessors.push_back(std::make_shared<core::LevenshteinPreprocessor>(
          1, core::Preprocessor::Target::kBoth));
    }

    core::CompiledQuery compiled =
        core::CompiledQuery::compile(query, *world.tokenizer);
    core::RandomSampler sampler(model, compiled, query, seed + g);

    std::size_t drawn = 0;
    std::size_t attempts = 0;
    const std::size_t max_attempts =
        samples_per_gender * query.max_sample_attempts_factor;
    while (drawn < samples_per_gender && attempts < max_attempts) {
      ++attempts;
      auto sample = sampler.sample_once();
      if (!sample) continue;
      ++drawn;

      // The profession is whatever follows the (possibly edited) prefix.
      std::string body = sample->text;
      const std::string& sampled_prefix = sampler.last_prefix_text();
      body = body.substr(sampled_prefix.size());
      if (!variant.use_prefix) {
        // Unconditional: split at " in " (robust to edits elsewhere).
        std::size_t pos = body.rfind(" in ");
        body = pos == std::string::npos ? body : body.substr(pos + 3);
      }
      std::size_t cls = classify_profession(professions, body);
      ++run.counts[g][cls];

      if (variant.edits && variant.use_prefix) {
        auto edit_pos = first_edit_position({prefix}, sampled_prefix);
        if (edit_pos) run.prefix_edit_positions.push_back(
            static_cast<double>(*edit_pos));
      }
    }
  }

  // Chi-squared on the classified columns only.
  std::vector<std::vector<std::uint64_t>> table(2);
  for (int g = 0; g < 2; ++g) {
    table[g].assign(run.counts[g].begin(),
                    run.counts[g].begin() +
                        static_cast<std::ptrdiff_t>(professions.size()));
  }
  run.chi2 = stats::chi2_independence_test(table);
  return run;
}

}  // namespace relm::experiments
