#include "experiments/memorization.hpp"

#include <cctype>
#include <unordered_set>

#include "baselines/sampling_baseline.hpp"
#include "core/compiled_query.hpp"
#include "core/executor.hpp"
#include "core/relm.hpp"
#include "util/strings.hpp"

namespace relm::experiments {

std::size_t MemorizationRun::valid_unique() const {
  std::unordered_set<std::string> seen;
  for (const auto& e : events) {
    if (e.valid && !e.duplicate) seen.insert(e.url);
  }
  return seen.size();
}

std::size_t MemorizationRun::duplicates() const {
  std::size_t n = 0;
  for (const auto& e : events) n += e.duplicate ? 1 : 0;
  return n;
}

double MemorizationRun::total_seconds() const {
  return events.empty() ? 0.0 : events.back().seconds;
}

std::size_t MemorizationRun::total_llm_calls() const {
  return events.empty() ? 0 : events.back().llm_calls;
}

double MemorizationRun::throughput_per_1k_calls() const {
  std::size_t calls = total_llm_calls();
  if (calls == 0) return 0.0;
  return 1000.0 * static_cast<double>(valid_unique()) /
         static_cast<double>(calls);
}

std::string leading_url(const std::string& text) {
  // The URL body alphabet from the paper's pattern.
  auto is_url_char = [](unsigned char c) {
    return std::isalnum(c) || c == '-' || c == '_' || c == '#' || c == '%' ||
           c == '/' || c == '.' || c == ':';
  };
  std::size_t end = 0;
  while (end < text.size() && is_url_char(static_cast<unsigned char>(text[end]))) {
    ++end;
  }
  std::string url = text.substr(0, end);
  // Trim trailing sentence punctuation the generator may have appended.
  while (!url.empty() && (url.back() == '.' || url.back() == '/')) {
    url.pop_back();
  }
  return url;
}

MemorizationRun run_relm_url_extraction(const World& world,
                                        const model::NgramModel& model,
                                        std::size_t max_results,
                                        std::size_t max_expansions,
                                        const RelmRunOptions& options) {
  static constexpr const char* kUrlPrefix = "https://www.";
  core::SimpleSearchQuery query;
  query.query_string.prefix_str = kUrlPrefix;
  if (options.exclude_urls.empty()) {
    query.query_string.query_str = url_pattern();
  } else {
    // One-pass difference mode: subtract the excluded URLs inside the query
    // language (`A - B`, a single compiled automaton) instead of filtering
    // the executor's output afterwards. Both operands are expressed on the
    // pattern *body* (after the literal prefix) so prefix_str stays a
    // textual prefix of query_str.
    std::string body_a = std::string(url_pattern()).substr(
        std::string_view(kUrlPrefix).size());
    std::string body_b;
    for (const std::string& url : options.exclude_urls) {
      if (!url.starts_with(kUrlPrefix)) continue;  // can never match A
      if (!body_b.empty()) body_b += "|";
      body_b += "(" + util::regex_escape(url.substr(
                          std::string_view(kUrlPrefix).size())) + ")";
    }
    query.query_string.query_str =
        body_b.empty() ? std::string(url_pattern())
                       : std::string(kUrlPrefix) + "((" + body_a + ")-(" +
                             body_b + "))";
  }
  query.search_strategy = core::SearchStrategy::kShortestPath;
  // The URL language is infinite; the canonical strategy would fall back to
  // dynamic pruning. The paper uses top-k filtered search over encodings —
  // we use canonical-with-dynamic-pruning so each URL is visited once.
  query.tokenization_strategy = core::TokenizationStrategy::kCanonicalTokens;
  query.decoding.top_k = 40;
  query.max_results = max_results;
  query.max_expansions = max_expansions;
  query.sequence_length = 24;
  if (options.expansion_batch > 1) {
    query.expansion_batch_size = options.expansion_batch;
  }
  query.speculative_expansion = options.speculative;
  if (options.speculative) {
    query.target_occupancy = options.target_occupancy;
    query.max_in_flight = options.max_in_flight;
  }

  // Non-owning view of the caller's model; the CachingModel wrapper (when
  // requested) shares it without taking ownership.
  std::shared_ptr<const model::LanguageModel> eval_model(
      std::shared_ptr<void>(), &model);
  if (options.cache_capacity > 0) {
    eval_model = std::make_shared<model::CachingModel>(eval_model,
                                                      options.cache_capacity);
  }

  core::CompiledQuery compiled =
      core::CompiledQuery::compile(query, *world.tokenizer);
  core::ShortestPathSearch search(*eval_model, compiled, query);

  MemorizationRun run;
  run.label = options.label;
  while (auto result = search.next()) {
    ExtractionEvent event;
    event.url = result->text;
    event.valid = world.corpus.url_registry.is_valid(event.url);
    event.duplicate = false;  // by construction
    event.llm_calls = result->llm_calls_at_emission;
    event.seconds = result->seconds_at_emission;
    run.events.push_back(std::move(event));
  }
  run.search_stats = search.stats();
  return run;
}

MemorizationRun run_baseline_url_extraction(const World& world,
                                            const model::NgramModel& model,
                                            std::size_t stop_length,
                                            std::size_t attempts,
                                            std::uint64_t seed) {
  baselines::SamplingBaseline::Config config;
  config.stop_length = stop_length;
  config.decoding.top_k = 40;
  baselines::SamplingBaseline baseline(model, *world.tokenizer, config, seed);

  util::Timer timer;
  MemorizationRun run;
  run.label = "baseline_n" + std::to_string(stop_length);
  for (std::size_t i = 0; i < attempts; ++i) {
    auto attempt = baseline.attempt("https://www.");
    ExtractionEvent event;
    event.url = leading_url(attempt.text);
    event.valid = world.corpus.url_registry.is_valid(event.url);
    event.duplicate = attempt.duplicate;
    event.llm_calls = attempt.llm_calls;
    event.seconds = timer.seconds();
    run.events.push_back(std::move(event));
  }
  return run;
}

}  // namespace relm::experiments
