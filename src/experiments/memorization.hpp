#pragma once

#include <string>
#include <vector>

#include "core/executor.hpp"
#include "experiments/setup.hpp"

namespace relm::experiments {

// The §4.1 URL-memorization experiment: ReLM's shortest-path traversal of
// the URL pattern versus HuggingFace-style random sampling at fixed stop
// lengths. "Valid" means the URL exists in the corpus generator's registry —
// the in-process stand-in for the paper's HTTPS-status oracle.

struct ExtractionEvent {
  std::string url;
  bool valid;
  bool duplicate;           // baseline only; ReLM never duplicates (§4.1.2)
  std::size_t llm_calls;    // cumulative at this event
  double seconds;           // since run start
};

struct MemorizationRun {
  std::string label;
  std::vector<ExtractionEvent> events;  // one per attempt (baseline) / match (ReLM)
  // Executor statistics of the run (ReLM runs only; zero for baselines).
  // Includes the logit-cache hit/miss/eviction counters.
  core::SearchStats search_stats;

  std::size_t valid_unique() const;
  std::size_t duplicates() const;
  double total_seconds() const;
  std::size_t total_llm_calls() const;
  // Valid unique URLs per 1000 LLM calls — the throughput of Figure 6, with
  // model invocations as the deterministic clock (wall time is also
  // recorded).
  double throughput_per_1k_calls() const;
};

// Execution knobs for the ReLM run. Defaults reproduce the strict serial
// Dijkstra the paper's comparison uses; expansion_batch > 1 pops that many
// frontier nodes per (parallel) model batch, and cache_capacity > 0 wraps
// the model in the suffix-keyed CachingModel. Results are identical across
// thread counts for a fixed expansion_batch (see docs/PERFORMANCE.md).
struct RelmRunOptions {
  std::string label = "relm";
  std::size_t expansion_batch = 1;
  std::size_t cache_capacity = 0;
  // Async frontier pipeline (core::SimpleSearchQuery::speculative_expansion).
  // Off by default so the paper comparison keeps the strict serial Dijkstra;
  // the engine-optimization rows in fig06 turn it on per thread count.
  bool speculative = false;
  std::size_t target_occupancy = 16;
  std::size_t max_in_flight = 64;
  // One-pass difference-automaton mode: URLs listed here are subtracted from
  // the query language itself — the pattern becomes `(URL body) - (url_1 |
  // url_2 | ...)` and the executor never visits an excluded URL at all. This
  // replaces the two-pass "run, then filter the matches" flow with a single
  // compiled automaton (the boolean query algebra's `-` operator); the match
  // set is byte-identical to the two-pass filter. Entries that do not start
  // with the https://www. prefix are ignored (they can never match anyway).
  std::vector<std::string> exclude_urls;
};

// ReLM: shortest-path over the URL pattern with prefix https://www. and
// top-k 40 (§4.1).
MemorizationRun run_relm_url_extraction(const World& world,
                                        const model::NgramModel& model,
                                        std::size_t max_results,
                                        std::size_t max_expansions,
                                        const RelmRunOptions& options = {});

// Baseline: random sampling with stop length n and top-k 40, mirroring the
// HuggingFace generation example.
MemorizationRun run_baseline_url_extraction(const World& world,
                                            const model::NgramModel& model,
                                            std::size_t stop_length,
                                            std::size_t attempts,
                                            std::uint64_t seed);

// Extracts the maximal URL-shaped string starting at the front of `text`
// and validates it: must match the URL pattern and be registered.
std::string leading_url(const std::string& text);

}  // namespace relm::experiments
