#pragma once

#include <memory>
#include <string>

#include "corpus/corpus.hpp"
#include "model/ngram_model.hpp"
#include "tokenizer/bpe.hpp"

namespace relm::experiments {

// The full experimental world: the synthetic corpus (the Pile/LAMBADA
// substitute), a BPE tokenizer trained on it, and the two model sizes the
// paper evaluates (GPT-2 XL 1.5B and GPT-2 117M map to sim-xl and sim-small;
// see DESIGN.md). Everything is deterministic given the config.
struct World {
  corpus::Corpus corpus;
  std::shared_ptr<tokenizer::BpeTokenizer> tokenizer;
  std::shared_ptr<model::NgramModel> xl;     // high order, light smoothing
  std::shared_ptr<model::NgramModel> small;  // low order, heavy smoothing

  const model::NgramModel& model_by_name(const std::string& name) const;
};

struct WorldConfig {
  corpus::CorpusConfig corpus;
  std::size_t vocab_size = 768;
  std::size_t max_token_length = 10;  // keeps " artificial" multi-token (§4.2 confounder)
  model::NgramModel::Config xl{.order = 6,
                               .alpha = 0.15,
                               .max_sequence_length = 96,
                               .non_canonical_document_rate = 0.25,
                               .non_canonical_step_prob = 0.4};
  model::NgramModel::Config small{.order = 5,
                                  .alpha = 1.2,
                                  .max_sequence_length = 96,
                                  .non_canonical_document_rate = 0.25,
                                  .non_canonical_step_prob = 0.4};

  // scale < 1 shrinks the corpus workloads proportionally (quick CI runs);
  // scale > 1 grows them toward paper-sized runs.
  static WorldConfig scaled(double scale);
};

World build_world(const WorldConfig& config);

// Reads RELM_BENCH_SCALE from the environment (default 1.0) and builds the
// corresponding world. All bench binaries use this entry point so
// `for b in build/bench/*; do $b; done` works unattended.
World build_world_from_env();
double bench_scale_from_env();

// The paper's URL memorization pattern (§4.1), verbatim.
const char* url_pattern();

// The §4.3 insult-lexicon disjunction over the placeholder lexicon.
std::string insult_lexicon_pattern();

// Formatting helpers shared by the bench tables.
std::string format_double(double value, int precision = 2);

}  // namespace relm::experiments
