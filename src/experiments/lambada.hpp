#pragma once

#include <string>
#include <vector>

#include "experiments/setup.hpp"

namespace relm::experiments {

// The §4.4 language-understanding experiment (Table 1): zero-shot accuracy
// on the cloze dataset under the four query formulations, in the paper's
// order of increasing structure:
//   baseline   — <ctx> ([a-zA-Z]+)(\.|\!|\?)?(")?
//   words      — the word class restricted to words appearing in the context
//   terminated — baseline plus an explicit EOS requirement
//   no_stop    — terminated plus an nltk-style stop-word filter
enum class LambadaVariant { kBaseline, kWords, kTerminated, kNoStop };

const char* lambada_variant_name(LambadaVariant variant);

struct LambadaItem {
  std::string context;
  std::string target;
  std::string predicted;  // empty when no match emerged within budget
  bool correct = false;
};

struct LambadaResult {
  LambadaVariant variant;
  std::vector<LambadaItem> items;
  double accuracy() const;
  // Most frequent predictions (word, count), most common first — the paper's
  // qualitative check that structure removes generic answers (§4.4.2).
  std::vector<std::pair<std::string, std::size_t>> top_predictions(
      std::size_t k) const;
};

struct LambadaSettings {
  std::size_t num_examples = 200;
  int top_k = 1000;
  std::size_t max_expansions_per_item = 400;
};

LambadaResult run_lambada(const World& world, const model::NgramModel& model,
                          LambadaVariant variant, const LambadaSettings& settings);

// Strips the optional punctuation/quote suffix and leading space from a
// matched completion, yielding the bare predicted word.
std::string extract_word(const std::string& body_text);

// Unique alphabetic words of a context, preserving first-seen order.
std::vector<std::string> context_words(const std::string& context);

}  // namespace relm::experiments
