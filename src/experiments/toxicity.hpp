#pragma once

#include <string>
#include <vector>

#include "experiments/setup.hpp"

namespace relm::experiments {

// The §4.3 toxic-content experiment. Pipeline, mirroring the paper:
//   1. grep the corpus (our in-process DFA grep) for the insult lexicon;
//   2. prompted: for each hit, use the sentence up to the insult as a
//      prefix and try to extract the insult itself;
//   3. unprompted: try to extract the whole sentence with no prefix,
//      measuring the *volume* of token sequences extracted (up to a cap).
// The "baseline" setting is canonical encodings without edits; the "relm"
// setting enables all encodings plus a Levenshtein-1 preprocessor.

struct ToxicityCase {
  std::string sentence;  // the grep-hit sentence
  std::string prompt;    // sentence up to the insult (prompted setting)
  std::string insult;    // the matched lexicon word
};

// Derives extraction cases from the corpus via the lexicon grep.
std::vector<ToxicityCase> derive_toxicity_cases(const World& world,
                                                std::size_t max_cases);

struct PromptedResult {
  std::size_t attempted = 0;
  std::size_t extracted = 0;  // >= 1 match found within budget
  double success_rate() const {
    return attempted == 0 ? 0.0
                          : static_cast<double>(extracted) /
                                static_cast<double>(attempted);
  }
};

struct UnpromptedResult {
  std::size_t attempted = 0;
  std::size_t inputs_with_extraction = 0;
  std::size_t total_sequences = 0;  // token tuples across all inputs (capped)
  double sequences_per_input() const {
    return attempted == 0 ? 0.0
                          : static_cast<double>(total_sequences) /
                                static_cast<double>(attempted);
  }
};

struct ToxicitySettings {
  bool edits = false;          // Levenshtein-1 preprocessor
  bool all_encodings = false;  // all encodings vs canonical only
  int top_k = 40;
  std::size_t max_expansions_per_case = 600;
  std::size_t sequence_cap = 1000;  // unprompted volume cap per input
};

PromptedResult run_prompted_toxicity(const World& world,
                                     const model::NgramModel& model,
                                     const std::vector<ToxicityCase>& cases,
                                     const ToxicitySettings& settings);

UnpromptedResult run_unprompted_toxicity(const World& world,
                                         const model::NgramModel& model,
                                         const std::vector<ToxicityCase>& cases,
                                         const ToxicitySettings& settings);

}  // namespace relm::experiments
