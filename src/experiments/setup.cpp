#include "experiments/setup.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/errors.hpp"
#include "util/logging.hpp"

namespace relm::experiments {

const model::NgramModel& World::model_by_name(const std::string& name) const {
  if (name == "sim-xl") return *xl;
  if (name == "sim-small") return *small;
  throw relm::Error("unknown model name: " + name);
}

WorldConfig WorldConfig::scaled(double scale) {
  WorldConfig config;
  auto mul = [&](std::size_t n) {
    return static_cast<std::size_t>(std::max(1.0, std::round(n * scale)));
  };
  auto& c = config.corpus;
  c.num_filler_documents = mul(c.num_filler_documents);
  c.num_memorized_urls = mul(c.num_memorized_urls);
  c.num_rare_urls = mul(c.num_rare_urls);
  c.num_bias_sentences = mul(c.num_bias_sentences);
  c.num_art_overlap_documents = mul(c.num_art_overlap_documents);
  c.num_cloze_passages = mul(c.num_cloze_passages);
  return config;
}

World build_world(const WorldConfig& config) {
  util::Timer timer;
  World world;
  world.corpus = corpus::generate_corpus(config.corpus);
  RELM_LOG_INFO("corpus: %zu documents (%.1f KiB) in %.2fs",
                world.corpus.documents.size(),
                world.corpus.joined().size() / 1024.0, timer.seconds());

  timer.reset();
  tokenizer::BpeTokenizer::TrainConfig tok_config;
  tok_config.vocab_size = config.vocab_size;
  tok_config.max_token_length = config.max_token_length;
  // Insults are single vocabulary tokens, as common words are in GPT-2's
  // 50k-token vocabulary; the trained merge budget alone may stop short.
  for (const auto& insult : corpus::insult_lexicon()) {
    tok_config.force_tokens.push_back(" " + insult);
  }
  // Keep " art" the canonical leading token of the art-word family (the
  // §4.2.1 subword-overlap confounder); see BpeTokenizer::TrainConfig.
  tok_config.blocked_token_prefixes.push_back(" art");
  world.tokenizer = std::make_shared<tokenizer::BpeTokenizer>(
      tokenizer::BpeTokenizer::train(world.corpus.joined(), tok_config));
  RELM_LOG_INFO("tokenizer: %zu tokens in %.2fs", world.tokenizer->vocab_size(),
                timer.seconds());

  timer.reset();
  world.xl = model::NgramModel::train(*world.tokenizer, world.corpus.documents,
                                      config.xl,
                                      world.corpus.art_overlap_documents);
  world.small = model::NgramModel::train(*world.tokenizer,
                                         world.corpus.documents, config.small,
                                         world.corpus.art_overlap_documents);
  RELM_LOG_INFO("models: sim-xl %zu contexts, sim-small %zu contexts in %.2fs",
                world.xl->num_contexts(), world.small->num_contexts(),
                timer.seconds());
  return world;
}

double bench_scale_from_env() {
  const char* env = std::getenv("RELM_BENCH_SCALE");
  if (!env) return 1.0;
  double scale = std::atof(env);
  if (scale <= 0.0) return 1.0;
  return scale;
}

World build_world_from_env() {
  return build_world(WorldConfig::scaled(bench_scale_from_env()));
}

const char* url_pattern() {
  // `-` is the difference operator under the boolean query algebra, so the
  // literal hyphen in the paper's URL pattern must be escaped.
  return "https://www.([a-zA-Z0-9]|\\-|_|#|%)+.([a-zA-Z0-9]|\\-|_|#|%|/)+";
}

std::string insult_lexicon_pattern() {
  std::string pattern;
  for (const auto& word : corpus::insult_lexicon()) {
    if (!pattern.empty()) pattern += "|";
    pattern += "(" + word + ")";
  }
  return pattern;
}

std::string format_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

}  // namespace relm::experiments
