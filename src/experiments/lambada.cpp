#include "experiments/lambada.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <unordered_set>

#include "core/compiled_query.hpp"
#include "core/executor.hpp"
#include "core/preprocessors.hpp"
#include "util/strings.hpp"

namespace relm::experiments {

const char* lambada_variant_name(LambadaVariant variant) {
  switch (variant) {
    case LambadaVariant::kBaseline: return "baseline";
    case LambadaVariant::kWords: return "words";
    case LambadaVariant::kTerminated: return "terminated";
    case LambadaVariant::kNoStop: return "no_stop";
  }
  return "?";
}

double LambadaResult::accuracy() const {
  if (items.empty()) return 0.0;
  std::size_t correct = 0;
  for (const auto& item : items) correct += item.correct ? 1 : 0;
  return static_cast<double>(correct) / static_cast<double>(items.size());
}

std::vector<std::pair<std::string, std::size_t>> LambadaResult::top_predictions(
    std::size_t k) const {
  std::map<std::string, std::size_t> counts;
  for (const auto& item : items) {
    if (!item.predicted.empty()) ++counts[item.predicted];
  }
  std::vector<std::pair<std::string, std::size_t>> sorted(counts.begin(),
                                                          counts.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    return a.second > b.second || (a.second == b.second && a.first < b.first);
  });
  if (sorted.size() > k) sorted.resize(k);
  return sorted;
}

std::string extract_word(const std::string& body_text) {
  std::size_t start = 0;
  while (start < body_text.size() && body_text[start] == ' ') ++start;
  std::size_t end = body_text.size();
  while (end > start && !std::isalpha(static_cast<unsigned char>(body_text[end - 1]))) {
    --end;
  }
  return body_text.substr(start, end - start);
}

std::vector<std::string> context_words(const std::string& context) {
  std::vector<std::string> words;
  std::unordered_set<std::string> seen;
  std::string current;
  auto flush = [&] {
    if (!current.empty() && seen.insert(current).second) words.push_back(current);
    current.clear();
  };
  for (char c : context) {
    if (std::isalpha(static_cast<unsigned char>(c))) {
      current.push_back(c);
    } else {
      flush();
    }
  }
  flush();
  return words;
}

LambadaResult run_lambada(const World& world, const model::NgramModel& model,
                          LambadaVariant variant,
                          const LambadaSettings& settings) {
  LambadaResult result;
  result.variant = variant;

  const auto& passages = world.corpus.cloze_passages;
  const std::size_t n = std::min(settings.num_examples, passages.size());
  for (std::size_t i = 0; i < n; ++i) {
    const auto& passage = passages[i];

    std::string word_class;
    if (variant == LambadaVariant::kWords) {
      // <words>: the disjunction of words appearing in the context (§4.4).
      std::string disjunction;
      for (const auto& w : context_words(passage.context)) {
        if (!disjunction.empty()) disjunction += "|";
        disjunction += "(" + w + ")";
      }
      word_class = "(" + disjunction + ")";
    } else {
      word_class = "([a-zA-Z]+)";
    }

    core::SimpleSearchQuery query;
    query.query_string.prefix_str = util::regex_escape(passage.context);
    query.query_string.query_str =
        query.query_string.prefix_str + " " + word_class + "(\\.|\\!|\\?)?(\")?";
    query.search_strategy = core::SearchStrategy::kShortestPath;
    query.tokenization_strategy = core::TokenizationStrategy::kCanonicalTokens;
    query.decoding.top_k = settings.top_k;
    query.max_results = 1;
    query.max_expansions = settings.max_expansions_per_item;
    query.require_eos = variant == LambadaVariant::kTerminated ||
                        variant == LambadaVariant::kNoStop;
    if (variant == LambadaVariant::kNoStop) {
      // Filter " <stopword>" completions with optional punctuation, matching
      // the body language's shape.
      std::string stops;
      for (const auto& w : corpus::stop_words()) {
        if (!stops.empty()) stops += "|";
        stops += "(" + w + ")";
      }
      query.preprocessors.push_back(std::make_shared<core::FilterPreprocessor>(
          " ((" + stops + "))(\\.|\\!|\\?)?(\")?", core::Preprocessor::Target::kBody));
    }

    core::CompiledQuery compiled =
        core::CompiledQuery::compile(query, *world.tokenizer);
    core::ShortestPathSearch search(model, compiled, query);

    LambadaItem item;
    item.context = passage.context;
    item.target = passage.target;
    if (auto match = search.next()) {
      item.predicted = extract_word(match->text.substr(passage.context.size()));
      item.correct = item.predicted == passage.target;
    }
    result.items.push_back(std::move(item));
  }
  return result;
}

}  // namespace relm::experiments
