#include "stats/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/errors.hpp"

namespace relm::stats {

namespace {

// log of the lower regularized incomplete gamma P(a, x) via its power
// series; valid and stable for x < a + 1.
double log_gamma_p_series(double a, double x) {
  double sum = 1.0 / a;
  double term = sum;
  for (int n = 1; n < 2000; ++n) {
    term *= x / (a + n);
    sum += term;
    if (term < sum * 1e-17) break;
  }
  return a * std::log(x) - x - std::lgamma(a) + std::log(sum);
}

// log of the upper regularized incomplete gamma Q(a, x) via Lentz's
// continued fraction; valid for x >= a + 1. The prefactor is carried in log
// space so tail probabilities like 1e-229 are exact.
double log_gamma_q_cf(double a, double x) {
  const double tiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / tiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i < 2000; ++i) {
    double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < tiny) d = tiny;
    c = b + an / c;
    if (std::fabs(c) < tiny) c = tiny;
    d = 1.0 / d;
    double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < 1e-15) break;
  }
  return a * std::log(x) - x - std::lgamma(a) + std::log(h);
}

}  // namespace

double log_gamma_q(double a, double x) {
  if (a <= 0.0) throw relm::Error("log_gamma_q requires a > 0");
  if (x < 0.0) throw relm::Error("log_gamma_q requires x >= 0");
  if (x == 0.0) return 0.0;  // Q = 1
  if (x < a + 1.0) {
    // Q = 1 - P; P is small-to-moderate here so the subtraction is safe.
    double log_p = log_gamma_p_series(a, x);
    double p = std::exp(log_p);
    if (p >= 1.0) return -std::numeric_limits<double>::infinity();
    return std::log1p(-p);
  }
  return log_gamma_q_cf(a, x);
}

double Chi2Result::p_value() const {
  double log_p = log10_p_value * std::log(10.0);
  if (log_p < -700.0) return 0.0;
  return std::exp(log_p);
}

Chi2Result chi2_independence_test(
    const std::vector<std::vector<std::uint64_t>>& table) {
  if (table.empty() || table.front().empty()) {
    throw relm::Error("chi2 test requires a non-empty table");
  }
  const std::size_t cols = table.front().size();
  for (const auto& row : table) {
    if (row.size() != cols) throw relm::Error("chi2 table rows differ in width");
  }

  // Row/column totals; drop empty rows/columns.
  std::vector<double> row_totals, col_totals(cols, 0.0);
  std::vector<std::size_t> live_rows;
  for (std::size_t r = 0; r < table.size(); ++r) {
    double total = 0;
    for (std::size_t c = 0; c < cols; ++c) total += static_cast<double>(table[r][c]);
    if (total > 0) {
      live_rows.push_back(r);
      row_totals.push_back(total);
    }
  }
  std::vector<std::size_t> live_cols;
  for (std::size_t c = 0; c < cols; ++c) {
    double total = 0;
    for (std::size_t r : live_rows) total += static_cast<double>(table[r][c]);
    if (total > 0) {
      live_cols.push_back(c);
      col_totals[c] = total;
    }
  }
  if (live_rows.size() < 2 || live_cols.size() < 2) {
    throw relm::Error("chi2 test requires at least a 2x2 live table");
  }

  double grand = 0;
  for (double t : row_totals) grand += t;

  Chi2Result result;
  for (std::size_t i = 0; i < live_rows.size(); ++i) {
    for (std::size_t c : live_cols) {
      double expected = row_totals[i] * col_totals[c] / grand;
      double observed = static_cast<double>(table[live_rows[i]][c]);
      double diff = observed - expected;
      result.statistic += diff * diff / expected;
    }
  }
  result.degrees_of_freedom = (live_rows.size() - 1) * (live_cols.size() - 1);
  double log_p = log_gamma_q(static_cast<double>(result.degrees_of_freedom) / 2.0,
                             result.statistic / 2.0);
  result.log10_p_value = log_p / std::log(10.0);
  return result;
}

void EmpiricalCdf::ensure_sorted() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double EmpiricalCdf::at(double x) const {
  if (values_.empty()) return 0.0;
  ensure_sorted();
  auto it = std::upper_bound(values_.begin(), values_.end(), x);
  return static_cast<double>(it - values_.begin()) /
         static_cast<double>(values_.size());
}

double EmpiricalCdf::quantile(double q) const {
  if (values_.empty()) return 0.0;
  ensure_sorted();
  q = std::clamp(q, 0.0, 1.0);
  std::size_t idx = static_cast<std::size_t>(q * static_cast<double>(values_.size() - 1));
  return values_[idx];
}

std::vector<double> normalize_counts(const std::vector<std::uint64_t>& counts) {
  double total = 0;
  for (auto c : counts) total += static_cast<double>(c);
  std::vector<double> out(counts.size(), 0.0);
  if (total == 0) return out;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    out[i] = static_cast<double>(counts[i]) / total;
  }
  return out;
}

}  // namespace relm::stats
