#pragma once

#include <cstdint>
#include <vector>

namespace relm::stats {

// Result of a chi-squared independence test on a 2 x C contingency table
// (the paper's gender-bias significance test, §4.2.2).
struct Chi2Result {
  double statistic = 0.0;
  std::size_t degrees_of_freedom = 0;
  // log10 of the p-value. The paper reports p-values like 1e-229, far below
  // double's smallest positive normal, so the test is computed in log space.
  double log10_p_value = 0.0;

  double p_value() const;  // clamped to 0 when below representable range
};

// Chi-squared test of independence between rows and columns. Rows with zero
// total or columns with zero total are dropped (they contribute no
// information and would divide by zero).
Chi2Result chi2_independence_test(const std::vector<std::vector<std::uint64_t>>& table);

// Natural log of the upper regularized incomplete gamma function Q(a, x)
// (the chi-squared survival function is Q(k/2, x/2)). Accurate in log space
// for very small tail probabilities.
double log_gamma_q(double a, double x);

// Empirical CDF helper for Figure 9-style plots.
class EmpiricalCdf {
 public:
  void add(double value) {
    values_.push_back(value);
    sorted_ = false;
  }
  std::size_t size() const { return values_.size(); }
  // Fraction of samples <= x.
  double at(double x) const;
  // Quantile (0 <= q <= 1); returns 0 for an empty sample.
  double quantile(double q) const;

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

// Normalized frequency distribution over categories, for the bias plots.
std::vector<double> normalize_counts(const std::vector<std::uint64_t>& counts);

}  // namespace relm::stats
