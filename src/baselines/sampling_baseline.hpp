#pragma once

#include <string>
#include <vector>

#include "model/decoding.hpp"
#include "model/language_model.hpp"
#include "tokenizer/bpe.hpp"
#include "util/rng.hpp"

namespace relm::baselines {

// The paper's memorization baseline (§4.1): the official HuggingFace
// run_generation example — prompt the model with a fixed prefix and randomly
// sample continuations of a fixed stop length n. Each attempt is one
// generation; duplicates and malformed outputs are the baseline's problem,
// which is exactly what Figures 5/6/10 measure.
class SamplingBaseline {
 public:
  struct Config {
    std::size_t stop_length = 16;  // n: new tokens per attempt
    model::DecodingRules decoding; // typically top-k = 40
  };

  SamplingBaseline(const model::LanguageModel& model,
                   const tokenizer::BpeTokenizer& tokenizer, Config config,
                   std::uint64_t seed);

  struct Attempt {
    std::string text;         // prefix + decoded continuation
    std::size_t llm_calls;    // cumulative across attempts
    bool duplicate;           // text already produced by this baseline
  };

  // One sampled generation from `prefix_text`.
  Attempt attempt(const std::string& prefix_text);

  std::size_t llm_calls() const { return llm_calls_; }

 private:
  const model::LanguageModel& model_;
  const tokenizer::BpeTokenizer& tokenizer_;
  Config config_;
  util::Pcg32 rng_;
  std::size_t llm_calls_ = 0;
  std::vector<std::string> seen_;  // small; linear scan is fine
};

// The multiple-choice protocol (Fig 1a): rank a handful of completions by
// model log probability and answer with the argmax.
struct ScoredChoice {
  std::string completion;
  double log_prob;
};

// Scores each completion after `prompt`, highest probability first.
std::vector<ScoredChoice> rank_choices(const model::LanguageModel& model,
                                       const tokenizer::BpeTokenizer& tokenizer,
                                       const std::string& prompt,
                                       const std::vector<std::string>& completions);

}  // namespace relm::baselines
