#include "baselines/sampling_baseline.hpp"

#include <algorithm>

namespace relm::baselines {

SamplingBaseline::SamplingBaseline(const model::LanguageModel& model,
                                   const tokenizer::BpeTokenizer& tokenizer,
                                   Config config, std::uint64_t seed)
    : model_(model), tokenizer_(tokenizer), config_(config), rng_(seed) {}

SamplingBaseline::Attempt SamplingBaseline::attempt(const std::string& prefix_text) {
  std::vector<tokenizer::TokenId> prefix = tokenizer_.encode(prefix_text);
  std::vector<tokenizer::TokenId> generated = model::generate(
      model_, prefix, config_.stop_length, config_.decoding, rng_);
  llm_calls_ += generated.size();

  // Strip a trailing EOS: it is a stop signal, not text.
  while (!generated.empty() && generated.back() == model_.eos()) {
    generated.pop_back();
  }
  Attempt result;
  result.text = prefix_text + tokenizer_.decode(generated);
  result.llm_calls = llm_calls_;
  result.duplicate =
      std::find(seen_.begin(), seen_.end(), result.text) != seen_.end();
  if (!result.duplicate) seen_.push_back(result.text);
  return result;
}

std::vector<ScoredChoice> rank_choices(const model::LanguageModel& model,
                                       const tokenizer::BpeTokenizer& tokenizer,
                                       const std::string& prompt,
                                       const std::vector<std::string>& completions) {
  std::vector<tokenizer::TokenId> context = tokenizer.encode(prompt);
  std::vector<ScoredChoice> scored;
  scored.reserve(completions.size());
  for (const std::string& completion : completions) {
    std::vector<tokenizer::TokenId> tokens = tokenizer.encode(completion);
    scored.push_back(
        ScoredChoice{completion, model.sequence_log_prob(context, tokens)});
  }
  std::sort(scored.begin(), scored.end(),
            [](const ScoredChoice& a, const ScoredChoice& b) {
              return a.log_prob > b.log_prob;
            });
  return scored;
}

}  // namespace relm::baselines
