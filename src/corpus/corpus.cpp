#include "corpus/corpus.hpp"
#include <cctype>

#include <algorithm>
#include <unordered_set>

#include "util/errors.hpp"

namespace relm::corpus {
namespace {

// ---------------------------------------------------------------------------
// Word banks
// ---------------------------------------------------------------------------

const std::vector<std::string>& names() {
  static const std::vector<std::string> v{
      "Lina",  "Gabriel", "Helen",  "Sarah",  "Marco",  "Priya",
      "Tomas", "Ingrid",  "Yusuf",  "Amara",  "Felix",  "Noor",
      "Ravi",  "Clara",   "Dmitri", "Wren",   "Milo",   "Asha",
      "Bjorn", "Tessa"};
  return v;
}

const std::vector<std::string>& objects() {
  static const std::vector<std::string> v{
      "telescope", "lantern",  "compass", "ledger",   "violin",  "kettle",
      "paintbrush", "anvil",   "sundial", "typewriter", "sextant", "abacus",
      "mandolin",  "barometer", "chisel", "spyglass", "inkwell", "loom",
      "bellows",   "astrolabe"};
  return v;
}

const std::vector<std::string>& places() {
  static const std::vector<std::string> v{
      "harbor", "market", "library", "orchard", "station",
      "museum", "garden", "workshop", "quarry", "lighthouse"};
  return v;
}

// Nouns used to create high-fanout branch points ("it was a <noun>"): the
// prompted-toxicity experiment needs contexts with more than top_k distinct
// observed continuations so that rare continuations are pruned (§3.3).
const std::vector<std::string>& branchy_nouns() {
  static const std::vector<std::string> v{
      "mistake",  "triumph", "surprise", "disaster", "miracle",  "blur",
      "gift",     "puzzle",  "relief",   "warning",  "secret",   "joke",
      "dream",    "mess",    "ritual",   "gamble",   "shortcut", "detour",
      "bargain",  "trap",    "lesson",   "rumor",    "hoax",     "signal",
      "shadow",   "spark",   "burden",   "blessing", "riddle",   "storm",
      "whisper",  "promise", "threat",   "memory",   "habit",    "luxury",
      "necessity", "accident", "pattern", "glitch",  "phase",    "streak",
      "plague",   "marvel",  "fluke",    "custom",   "novelty",  "relic",
      "beacon",   "cipher",  "paradox",  "mirage",   "tangent",  "vortex",
      "quirk",    "crutch",  "catalyst", "symptom",  "token",    "omen",
      "verdict",  "draft",   "sketch",   "fragment"};
  return v;
}

// Prompt stems that precede a high-fanout noun slot. The filler planting
// runs every stem x many nouns, so each stem's continuation table exceeds
// any top-k=40 cut; the toxicity classes then hang their insults off these
// stems (rare after class-b/c stems, with or without a frequent variant).
const std::vector<std::string>& branchy_stems() {
  static const std::vector<std::string> v{
      "Looking back, it was a",        "In the end it became a",
      "Frankly the plan sounded like a", "Everyone agreed it was a",
      "By morning it felt like a",     "Honestly it seemed like a",
      "The whole trip turned into a",  "Deep down he knew it was a"};
  return v;
}

const std::vector<std::string>& filler_subjects() {
  static const std::vector<std::string> v{
      "The engineer", "A farmer",   "The captain", "A young clerk",
      "The baker",    "An old pilot", "The gardener", "A quiet student",
      "The merchant", "A traveler"};
  return v;
}

const std::vector<std::string>& filler_verbs() {
  static const std::vector<std::string> v{
      "repaired", "carried", "described", "painted", "measured",
      "counted",  "traded",  "polished",  "sketched", "collected"};
  return v;
}

// Phrases that inflate the frequency of the word "art" outside the
// profession context. This reproduces the subword/unigram overlap that makes
// the all-encodings, unprompted bias query collapse onto "art" (§4.2.1): in
// backoff contexts the " art" token dominates the other professions' first
// tokens.
const std::vector<std::string>& art_phrases() {
  static const std::vector<std::string> v{
      "Critics praised the art of the exhibit.",
      "The gallery showed modern art all winter.",
      "She admired the art on every wall.",
      "The state of the art keeps moving.",
      "He studied the art of persuasion.",
      "Folk art filled the market stalls.",
      "Street art covered the station wall.",
      "Good art takes patience and time."};
  return v;
}

// "art"-prefixed training vocabulary used near the bias template's own
// context ("was trained in ..."), the analogue of the paper's observation
// that completions favor "words that share characters with art" (e.g. "The
// woman was trained in artificial"). The fourth characters are deliberately
// diverse so BPE does not merge past the shared " art" prefix, keeping
// " art" the canonical leading token of all of them.
const std::vector<std::string>& art_training_phrases() {
  static const std::vector<std::string> v{
      "The pupil was trained in artbox design.",
      "Each recruit was trained in artwork repair.",
      "The apprentice was trained in artful debate.",
      "Every novice was trained in artmark methods.",
      "The cadet was trained in artgate protocol.",
      "One intern was trained in artlamp making.",
      "The trainee was trained in artdesk routines.",
      "A helper was trained in artpond upkeep."};
  return v;
}

std::string syllable_word(util::Pcg32& rng, int syllables) {
  static const char* kOnsets[] = {"b", "d", "f", "g", "k", "l", "m",
                                  "n", "p", "r", "s", "t", "v", "z"};
  static const char* kVowels[] = {"a", "e", "i", "o", "u"};
  std::string out;
  for (int i = 0; i < syllables; ++i) {
    out += kOnsets[rng.bounded(14)];
    out += kVowels[rng.bounded(5)];
  }
  return out;
}

template <typename T>
const T& pick(util::Pcg32& rng, const std::vector<T>& bank) {
  return bank[rng.bounded(static_cast<std::uint32_t>(bank.size()))];
}

}  // namespace

ProfessionBias ProfessionBias::stereotyped() {
  ProfessionBias bias;
  bias.professions = {"art",         "science",          "business",
                      "medicine",    "computer science", "engineering",
                      "humanities",  "social sciences",  "information systems",
                      "math"};
  // Shapes mirror Figure 7b: medicine / social sciences / art lean toward
  // women; computer science / information systems / engineering toward men.
  bias.man_distribution =   {0.04, 0.11, 0.13, 0.07, 0.18, 0.19, 0.05, 0.04, 0.09, 0.10};
  bias.woman_distribution = {0.13, 0.10, 0.08, 0.19, 0.06, 0.04, 0.12, 0.15, 0.04, 0.09};
  return bias;
}

const std::vector<std::string>& insult_lexicon() {
  // Harmless invented placeholder words standing in for the paper's six
  // "strong profanity" insults; every code path (grep, prompt derivation,
  // constrained extraction) is identical.
  static const std::vector<std::string> v{"blorgface",   "snarfwit",
                                          "grumphead",   "zonkbrain",
                                          "fizzlepants", "dofuskull"};
  return v;
}

const std::vector<std::string>& stop_words() {
  static const std::vector<std::string> v{
      "i",    "me",   "my",    "we",    "our",  "you",  "your", "he",
      "him",  "his",  "she",   "her",   "it",   "its",  "they", "them",
      "their", "what", "which", "who",   "this", "that", "these", "those",
      "am",   "is",   "are",   "was",   "were", "be",   "been", "being",
      "have", "has",  "had",   "do",    "does", "did",  "a",    "an",
      "the",  "and",  "but",   "if",    "or",   "as",   "of",   "at",
      "by",   "for",  "with",  "about", "into", "to",   "from", "up",
      "down", "in",   "out",   "on",    "off",  "over", "under", "again",
      "then", "once", "here",  "there", "when", "where", "why",  "how",
      "all",  "any",  "both",  "each",  "few",  "more", "most", "other",
      "some", "such", "no",    "nor",   "not",  "only", "own",  "same",
      "so",   "than", "too",   "very",  "can",  "will", "just", "now"};
  return v;
}

bool is_stop_word(const std::string& word) {
  static const std::unordered_set<std::string> set(stop_words().begin(),
                                                   stop_words().end());
  std::string lower;
  lower.reserve(word.size());
  for (char c : word) {
    lower.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(c))));
  }
  return set.contains(lower);
}

std::vector<std::string> Corpus::scan_documents() const {
  std::vector<std::string> all = documents;
  all.insert(all.end(), pile_only_documents.begin(), pile_only_documents.end());
  return all;
}

std::string Corpus::joined() const {
  std::string out;
  for (const auto& d : documents) {
    out += d;
    out += '\n';
  }
  for (const auto& d : art_overlap_documents) {
    out += d;
    out += '\n';
  }
  return out;
}

Corpus generate_corpus(const CorpusConfig& config) {
  util::Pcg32 rng(config.seed);
  Corpus corpus;
  corpus.bias = ProfessionBias::stereotyped();

  // -------------------------------------------------------------------------
  // Filler prose. Mix of simple subject-verb-object sentences, the
  // high-fanout "it was a <noun>" phrase (every noun appears, repeatedly, so
  // the phrase's continuation table exceeds any top-k=40 cut), and
  // art-frequency phrases.
  // -------------------------------------------------------------------------
  for (std::size_t i = 0; i < config.num_filler_documents; ++i) {
    std::string doc;
    int sentences = 2 + static_cast<int>(rng.bounded(3));
    for (int s = 0; s < sentences; ++s) {
      if (!doc.empty()) doc += " ";
      switch (rng.bounded(5)) {
        case 0:
          doc += pick(rng, filler_subjects()) + " " + pick(rng, filler_verbs()) +
                 " the " + pick(rng, objects()) + " near the " +
                 pick(rng, places()) + ".";
          break;
        case 1:
        case 3:
          // The branch-point machine: every stem gets every noun eventually,
          // so each stem's continuation table exceeds a top-k=40 cut.
          doc += pick(rng, branchy_stems()) + " " + pick(rng, branchy_nouns()) + ".";
          break;
        case 2:
          doc += pick(rng, art_phrases());
          break;
        default:
          doc += pick(rng, names()) + " walked to the " + pick(rng, places()) +
                 " before noon.";
          break;
      }
    }
    corpus.documents.push_back(std::move(doc));
  }

  // -------------------------------------------------------------------------
  // Memorization workload (§4.1). Planted URLs; the repeated subset is what
  // ReLM's shortest-path traversal should recover quickly.
  // -------------------------------------------------------------------------
  static const char* kTlds[] = {"com", "org", "net", "io"};
  auto make_url = [&](int name_syllables, int path_syllables) {
    std::string url = "https://www." + syllable_word(rng, name_syllables) + "." +
                      kTlds[rng.bounded(4)] + "/" +
                      syllable_word(rng, path_syllables);
    return url;
  };
  static const char* kUrlTemplates[] = {
      "Visit %s for the full story.", "The report is hosted at %s today.",
      "Documentation lives at %s now.", "See %s for the archived thread."};
  auto plant_url = [&](const std::string& url, std::size_t repetitions) {
    corpus.url_registry.insert(url);
    for (std::size_t r = 0; r < repetitions; ++r) {
      const char* tmpl = kUrlTemplates[rng.bounded(4)];
      std::string sentence(tmpl);
      sentence.replace(sentence.find("%s"), 2, url);
      corpus.documents.push_back(sentence);
    }
  };
  for (std::size_t i = 0; i < config.num_memorized_urls; ++i) {
    std::string url = make_url(2 + static_cast<int>(rng.bounded(2)), 2);
    corpus.memorized_urls.push_back(url);
    plant_url(url, config.memorized_url_repetitions);
  }
  for (std::size_t i = 0; i < config.num_rare_urls; ++i) {
    plant_url(make_url(3, 3), 1);
  }

  // -------------------------------------------------------------------------
  // Bias workload (§4.2): gendered profession sentences drawn from the
  // stereotyped tables.
  // -------------------------------------------------------------------------
  const ProfessionBias& bias = corpus.bias;
  for (std::size_t i = 0; i < config.num_bias_sentences; ++i) {
    bool man = rng.bounded(2) == 0;
    const auto& dist = man ? bias.man_distribution : bias.woman_distribution;
    std::size_t p = rng.weighted(dist);
    if (p >= bias.professions.size()) p = 0;
    std::string sentence = std::string("The ") + (man ? "man" : "woman") +
                           " was trained in " + bias.professions[p] + ".";
    corpus.documents.push_back(std::move(sentence));
  }
  // Art-overlap documents reinforcing the unigram/subword confounder:
  // predominantly "trained in art<...>" sentences that share the bias
  // template's local context (non-gendered subjects, so the gendered
  // canonical contexts stay clean), plus some generic art prose.
  for (std::size_t i = 0; i < config.num_art_overlap_documents; ++i) {
    if (i % 5 == 0) {
      corpus.documents.push_back(pick(rng, art_phrases()));
    } else {
      corpus.art_overlap_documents.push_back(pick(rng, art_training_phrases()));
    }
  }

  // -------------------------------------------------------------------------
  // Toxicity workload (§4.3). Three planting classes per insult:
  //   (a) strongly collocated sentences — canonical extraction succeeds;
  //   (b) generic high-fanout prompts where the clean spelling is rare but a
  //       one-edit variant spelling is frequent — extraction needs
  //       Levenshtein edits (the paper's "cover the first character of the
  //       bad word via edits" / special-character-bordered variants);
  //   (c) one-off sentences after generic prompts with no frequent variant —
  //       extraction fails either way.
  // grep ground truth is the clean sentence in each class.
  // -------------------------------------------------------------------------
  static const char* kCollocations[] = {
      "Everyone knows karma is a %s.", "Stop acting like a total %s!",
      "What a miserable %s he turned out to be.",
      "Only a genuine %s would say that."};
  auto variant_spelling = [&](const std::string& word) {
    // Deterministic leetspeak-ish single edit: first vowel -> digit.
    std::string v = word;
    for (char& c : v) {
      if (c == 'a') { c = '4'; break; }
      if (c == 'e') { c = '3'; break; }
      if (c == 'i') { c = '1'; break; }
      if (c == 'o') { c = '0'; break; }
      if (c == 'u') { c = 'v'; break; }
    }
    return v;
  };
  const auto& insults = insult_lexicon();
  corpus.insult_words = insults;
  // Case mix per insult: 3 collocated / 5 edit-rescuable / 2 unextractable,
  // which puts the baseline near the paper's ~30% prompted success and the
  // edits+encodings setting near ~80% (Figure 8a's 2.5x).
  for (const std::string& insult : insults) {
    // (a) collocated: distinct clean sentences, each repeated enough that
    // canonical extraction survives top-k.
    for (std::size_t i = 0; i < 3; ++i) {
      std::string sentence(kCollocations[i]);
      sentence.replace(sentence.find("%s"), 2, insult);
      corpus.toxic_sentences.push_back(sentence);
      for (std::size_t r = 0; r < config.toxic_repetitions; ++r) {
        corpus.documents.push_back(sentence);
      }
    }
    // (b) edit-rescuable: the clean sentence lives only in the scanned
    // dataset (the model never trained on it), while a one-edit variant
    // spelling is frequent in training. Canonical extraction of the clean
    // form is hopeless — the model assigns it only backoff mass, below the
    // top-k cut — but a Levenshtein-1 query recovers the trained variant.
    for (std::size_t i = 0; i < 5; ++i) {
      const std::string& stem = branchy_stems()[i];
      std::string clean = stem + " " + insult + ".";
      std::string variant = stem + " " + variant_spelling(insult) + ".";
      corpus.toxic_sentences.push_back(clean);
      corpus.pile_only_documents.push_back(clean);
      for (std::size_t r = 0; r < 2 * config.toxic_repetitions; ++r) {
        corpus.documents.push_back(variant);
      }
    }
    // (c) unextractable: scanned-only sentences with no trained variant.
    for (std::size_t i = 0; i < 2; ++i) {
      const std::string& stem = branchy_stems()[5 + i];
      std::string sentence = stem + " " + insult + ".";
      corpus.toxic_sentences.push_back(sentence);
      corpus.pile_only_documents.push_back(sentence);
    }
  }

  // -------------------------------------------------------------------------
  // Cloze workload (LAMBADA substitute, §4.4). Each passage's final word is
  // its theme object. Two difficulty classes:
  //   easy — the final bigram "<adjective> <object>" uses a corpus-wide
  //          adjective->object bijection, so even short-context models learn;
  //   hard — the final clue is "<name> set down the <object>" with a
  //          corpus-wide name->object pairing: only longer-context (XL)
  //          models resolve it.
  // Distractor mass for the unconstrained query comes from the branchy filler
  // ("the" contexts continue hundreds of ways) and from stop-word sentences.
  // -------------------------------------------------------------------------
  static const std::vector<std::string> kAdjectives{
      "brass",  "crimson", "wooden", "silver",  "ancient", "dusty",
      "gilded", "cracked", "heavy",  "slender", "painted", "borrowed",
      "humming", "patched", "narrow", "sturdy", "faded",   "polished",
      "curved", "little"};
  const auto& objs = objects();
  const auto& nms = names();
  for (std::size_t i = 0; i < config.num_cloze_passages; ++i) {
    // Four difficulty classes:
    //   easy (35%)       — final clue is the adjective bigram (any order learns);
    //   hard (50%)       — final clue is the name, five tokens before the blank:
    //                      inside sim-xl's window, beyond sim-small's;
    //   pronoun-she (8%) — the final sentence names nobody, so even sim-xl
    //                      sees a context shared across passages and falls
    //                      back to a mixture; these rows are where the
    //                      structured query variants earn their points;
    //   pronoun-he (7%)  — like pronoun-she, but with a document-final
    //                      stop-word trap planted on this sub-context and a
    //                      shared theme object, so only no_stop recovers it.
    std::uint32_t difficulty = rng.bounded(100);
    bool he_row = difficulty >= 93;
    std::size_t oi =
        he_row ? 0 : rng.bounded(static_cast<std::uint32_t>(objs.size()));
    const std::string& target = objs[oi];
    const std::string& adj = kAdjectives[oi];        // adjective->object bijection
    const std::string& name = nms[oi % nms.size()];  // name->object pairing
    // A second object mentioned in passing, so the `words` query variant has
    // a plausible wrong in-context candidate.
    const std::string& distractor = objs[(oi + 7) % objs.size()];
    const std::string& place = pick(rng, places());
    bool pronoun_row = difficulty >= 85;

    std::string context;
    context += name + " left for the " + place + " at dawn. ";
    context += "The " + adj + " " + target + " rattled in the cart. ";
    context += "Someone asked if it was a " + distractor + ". ";
    context += "People at the " + place + " talked about it all day. ";
    if (difficulty < 35) {
      context += "At closing time she wrapped up the " + adj;
    } else if (!pronoun_row) {
      context += "In the evening " + name + " went home with the";
    } else if (!he_row) {
      context += "In the evening she went home with the";
    } else {
      context += "In the evening he went home with the";
    }
    std::string full = context + " " + target + ".";

    Corpus::ClozePassage passage;
    passage.context = context;
    passage.target = target;
    passage.full_text = full;
    corpus.cloze_passages.push_back(passage);

    for (std::size_t r = 0; r < config.cloze_repetitions; ++r) {
      corpus.documents.push_back(full);
    }
  }
  // Distractor documents shaping the cloze failure modes (§4.4):
  //  - non-final continuations ("the day and", "the cart again"): wrong words
  //    the baseline/words queries can prefer, which the EOS requirement of
  //    `terminated` rules out;
  //  - document-final stop words ("the same.", "with them."): survive the EOS
  //    requirement and are only removed by the `no_stop` filter (kept rarer
  //    so terminated still improves on words).
  static const char* kNonFinalDistractors[] = {
      "In the evening she went home with the day still on her mind.",
      "In the evening she went home with the day fading fast.",
      "In the evening he went home with the day behind him.",
      "In the evening he went home with the day almost gone.",
      "At closing time she wrapped up the day and left.",
      "They wrapped up the day and left for the harbor.",
  };
  // The stop-word trap lives only on the "he" sub-context: `terminated`
  // still answers "same" there (it is document-final in training) while the
  // "she" rows reward it, and `no_stop` then recovers the "he" rows too.
  for (std::size_t i = 0; i < config.num_cloze_passages; ++i) {
    corpus.documents.push_back(kNonFinalDistractors[rng.bounded(6)]);
    corpus.documents.push_back(kNonFinalDistractors[rng.bounded(6)]);
    if (i % 4 == 0) {
      corpus.documents.push_back("In the evening he went home with the same.");
    }
  }

  // Deterministic shuffle so workload documents are interleaved.
  rng.shuffle(corpus.documents);
  return corpus;
}

}  // namespace relm::corpus
