#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "util/rng.hpp"

namespace relm::corpus {

// Oracle for URL "validation". The paper validates extracted URLs by issuing
// HTTPS requests and checking for status < 300 (§4.1); the corpus generator
// records every URL it plants, so registry membership is the exact analogue
// of "this URL really exists" for the synthetic web this corpus describes.
class UrlRegistry {
 public:
  void insert(const std::string& url) { urls_.insert(url); }
  bool is_valid(const std::string& url) const { return urls_.contains(url); }
  std::size_t size() const { return urls_.size(); }
  const std::unordered_set<std::string>& all() const { return urls_; }

 private:
  std::unordered_set<std::string> urls_;
};

// The gendered profession table (§4.2). Probabilities per gender must sum to
// 1 across the profession list.
struct ProfessionBias {
  std::vector<std::string> professions;
  std::vector<double> man_distribution;
  std::vector<double> woman_distribution;

  // The paper's 10 professions with a stereotyped skew consistent with what
  // Figure 7b reports (medicine/social sciences/art toward women;
  // computer science/information systems/engineering toward men).
  static ProfessionBias stereotyped();
};

struct CorpusConfig {
  std::uint64_t seed = 20230417;

  // Filler prose documents (tokenizer fodder and background statistics).
  std::size_t num_filler_documents = 1200;

  // Memorization workload: planted "real" URLs, each repeated so the model
  // memorizes it, plus single-occurrence URLs that are valid but hard to
  // extract, mirroring the long tail.
  std::size_t num_memorized_urls = 24;
  std::size_t memorized_url_repetitions = 40;
  std::size_t num_rare_urls = 60;

  // Bias workload: sentences "The <gender> was trained in <profession>."
  std::size_t num_bias_sentences = 2400;
  // Subword-overlap confounder (§4.2.1: non-canonical/unprompted queries
  // collapse onto "art" because of tokens shared with words like
  // "artificial"): documents containing art-prefixed vocabulary.
  std::size_t num_art_overlap_documents = 1600;

  // Toxicity workload: each insult gets a fixed 3/5/2 case mix (collocated /
  // edit-rescuable / unextractable); this controls how often the repeated
  // plantings occur.
  std::size_t toxic_repetitions = 12;

  // Cloze workload (LAMBADA substitute): passages whose final word is
  // determined by earlier context.
  std::size_t num_cloze_passages = 400;
  std::size_t cloze_repetitions = 3;
};

// A generated corpus plus the ground truth needed by the experiments.
struct Corpus {
  // Model training documents (the WebText analogue).
  std::vector<std::string> documents;

  // Extra documents that exist only in the scanned dataset, not in model
  // training. The paper greps The Pile while GPT-2 was trained on WebText —
  // overlapping but distinct corpora — and extraction fails precisely on
  // text the model never memorized. scan_documents() = documents +
  // pile_only_documents.
  std::vector<std::string> pile_only_documents;
  std::vector<std::string> scan_documents() const;

  // Art-overlap documents (the §4.2.1 subword confounder). Kept separate so
  // model training can feed them through the subword-prior (always
  // non-canonical) path; the tokenizer still trains on them via joined().
  std::vector<std::string> art_overlap_documents;

  UrlRegistry url_registry;
  std::vector<std::string> memorized_urls;  // the high-repetition subset

  ProfessionBias bias;

  std::vector<std::string> insult_words;      // the placeholder lexicon
  std::vector<std::string> toxic_sentences;   // planted ground truth

  struct ClozePassage {
    std::string context;   // everything before the final word
    std::string target;    // the final word (no punctuation)
    std::string full_text; // context + " " + target + "."
  };
  std::vector<ClozePassage> cloze_passages;

  // All documents joined with newlines: tokenizer training input and the
  // text the toxicity pipeline greps.
  std::string joined() const;
};

// Deterministically generates the full synthetic corpus.
Corpus generate_corpus(const CorpusConfig& config);

// The six-word placeholder insult lexicon (harmless invented words standing
// in for the paper's profanity list; the code path is identical).
const std::vector<std::string>& insult_lexicon();

// nltk-style English stop-word list used by the LAMBADA no_stop filter
// (§4.4) and by corpus generation.
const std::vector<std::string>& stop_words();
bool is_stop_word(const std::string& word);

}  // namespace relm::corpus
