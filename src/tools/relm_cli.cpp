// relm — command-line interface to the library.
//
//   relm build  --out DIR [--scale S]
//       Build the experiment world (corpus, tokenizer, sim-xl, sim-small)
//       and save the trained artifacts so later commands start instantly.
//
//   relm query  --dir DIR --pattern REGEX [--prefix REGEX]
//               [--model xl|small] [--strategy shortest|sample]
//               [--encodings canonical|all] [--edits N] [--top-k K]
//               [--top-p P] [--temperature T]
//               [--results N] [--samples N] [--require-eos] [--seed N]
//               [--threads N] [--cache-capacity N] [--batch N]
//               [--compile-cache [DIR]] [--no-compile-cache]
//               [--no-token-masks] [--determinize-budget N]
//               [--trace-out FILE] [--trace-jsonl FILE] [--metrics]
//       Run a ReLM query against a saved model and stream the matches.
//       Patterns may use the boolean query algebra — `A&B` (intersection),
//       `~A` / `!A` (complement over printable ASCII + whitespace), `A-B`
//       (difference); see docs/cli.md for the precedence table.
//       --determinize-budget caps the states the lazy subset construction
//       may materialize (default: RELM_DETERMINIZE_BUDGET, else 2^20).
//       (`relm run` is an alias.)
//       --threads sizes the shared evaluation pool (default: RELM_THREADS or
//       hardware concurrency); --cache-capacity bounds the suffix-keyed
//       logit cache (default 65536 entries, 0 disables); --batch sets the
//       shortest-path frontier expansion batch (default 1 = strict
//       Dijkstra). See docs/PERFORMANCE.md.
//       --no-token-masks disables the precomputed per-state token bitmask
//       fast path (mask-and-scan) and uses the per-edge probe loop instead;
//       results are identical, only the executor hot-loop cost changes.
//       --compile-cache persists compiled query artifacts to DIR (default
//       .relm-cache) so repeated queries skip compilation entirely;
//       --no-compile-cache disables the artifact cache (memory and disk).
//       RELM_COMPILE_CACHE=<dir|off> is the env equivalent. Cache hit/miss
//       counters appear in --metrics output (compile_cache.*). See
//       docs/ARCHITECTURE.md.
//       --trace-out writes a Chrome-trace JSON (chrome://tracing, Perfetto)
//       of the query's phases; --trace-jsonl streams the same events as
//       JSONL; --metrics dumps the process metrics registry (counters,
//       gauges, per-phase latency histograms) as one JSON line on exit.
//       See docs/OBSERVABILITY.md.
//
//   relm generate --dir DIR --pattern REGEX [--prefix REGEX] [--streams N]
//               [--seed S] [--max-tokens K] [--model xl|small]
//               [--top-k K] [--top-p P] [--temperature T] [--require-eos]
//               [--sequence-length N] [--threads N] [--cache-capacity N]
//               [--no-token-masks] [--compile-cache [DIR]]
//               [--no-compile-cache] [--metrics]
//       Batched multi-stream mask-guided generation: N independent sampling
//       streams share one batched model evaluation per scheduler tick, each
//       guided by the compiled query automaton and its own isolated RNG
//       stream (streams i = 0.. of --seed). Emits one JSONL line per stream
//       ({"stream":i,"state":...,"tokens":[...],"text":...,"log_prob":...});
//       per-stream output is byte-identical for any --streams/--threads
//       combination. --max-tokens caps generated tokens per stream. See
//       docs/cli.md and docs/PERFORMANCE.md (cross-stream batching).
//
//   relm grep   --dir DIR --pattern REGEX [--max N]
//       Scan the (regenerated) corpus with the DFA grep.
//
//   relm sample --dir DIR [--model xl|small] [--n N] [--top-k K] [--seed N]
//       Unconditional generations with canonicality flags (§3.2's
//       non-canonical-sample measurement).
//
//   relm info   --dir DIR
//       Show artifact metadata.
//
//   relm verify --dir DIR [--tolerance T] [--probes N] [--skip-queries]
//               [--cache DIR] [--compile-cache [DIR]] [--no-compile-cache]
//       Structurally verify saved artifacts: automata, model tables, model
//       distributions, and probe-query compilation (src/analysis). Prints a
//       diagnostic report and exits non-zero if any invariant is violated.
//       --cache DIR additionally audits an on-disk compile-cache directory:
//       every .relmq entry must load, checksum, match its filename key, and
//       pass the query-artifact invariants.
//
//   relm verify --equivalent A.dfa B.dfa
//       Decide language equivalence of two serialized automata (RELM_DFA
//       files) by a product walk over reachable state pairs. Exits 0 when
//       the languages are equal; otherwise prints a shortest distinguishing
//       word and exits 2. Works without --dir.
//
//   relm fuzz   [--trials N] [--seed S] [--out DIR] [--num-samples N]
//               [--max-failures N] [--no-shrink] [--mutate MODE]
//               [--replay FILE] [--shrink-trials N]
//       Differential fuzzing of query execution (docs/TESTING.md): each
//       trial draws a random (regex, vocabulary, model, query-params) case,
//       enumerates ground truth with the brute-force oracle, runs the
//       shortest-path, beam, and sampling executors under every cache
//       configuration, and compares. A failing case is greedily shrunk and
//       written to DIR/fuzz-repro-<seed>.json (atomic write), replayable
//       with --replay. --mutate <drop|perturb|swap|dup> injects a fault into
//       the executor output first — the harness self-test: a mutated run
//       MUST fail. Exits 0 when all trials pass (or are skipped as
//       too-large), 2 on any failure.
//
// Exit status: 0 on success, 1 on usage error, 2 on runtime error (including
// failed verification).

#include <cctype>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "analysis/verify.hpp"
#include "automata/grep.hpp"
#include "core/generate/generate_engine.hpp"
#include "automata/ops.hpp"
#include "automata/regex.hpp"
#include "automata/serialize.hpp"
#include "core/analyzer.hpp"
#include "core/pipeline/cache.hpp"
#include "core/relm.hpp"
#include "corpus/corpus.hpp"
#include "experiments/setup.hpp"
#include "model/decoding.hpp"
#include "model/ngram_model.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "testing/differential.hpp"
#include "testing/shrink.hpp"
#include "tokenizer/serialize.hpp"
#include "util/errors.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace relm;

// ---------------------------------------------------------------------------
// Tiny flag parser: --name value / --name (boolean).
// ---------------------------------------------------------------------------
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 0; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) == 0) {
        std::string name = arg.substr(2);
        if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
          values_[name] = argv[++i];
        } else {
          values_[name] = "";
        }
      } else {
        positional_.push_back(arg);
      }
    }
  }

  std::optional<std::string> get(const std::string& name) const {
    auto it = values_.find(name);
    if (it == values_.end()) return std::nullopt;
    used_.insert(name);
    return it->second;
  }
  std::string require(const std::string& name) const {
    auto v = get(name);
    if (!v || v->empty()) {
      throw relm::Error("missing required flag --" + name);
    }
    return *v;
  }
  std::string get_or(const std::string& name, const std::string& fallback) const {
    auto v = get(name);
    return (v && !v->empty()) ? *v : fallback;
  }
  // Numeric flags reject garbage with relm::Error (the no-abort policy for
  // user input): std::stol/stod on "banana" would throw std::invalid_argument
  // straight through main and terminate.
  long get_long(const std::string& name, long fallback) const {
    auto v = get(name);
    if (!v || v->empty()) return fallback;
    try {
      std::size_t end = 0;
      long parsed = std::stol(*v, &end);
      if (end != v->size()) throw std::invalid_argument(*v);
      return parsed;
    } catch (const std::exception&) {
      throw relm::Error("flag --" + name + " expects an integer, got \"" + *v +
                        "\"");
    }
  }
  std::optional<double> get_double(const std::string& name) const {
    auto v = get(name);
    if (!v || v->empty()) return std::nullopt;
    try {
      std::size_t end = 0;
      double parsed = std::stod(*v, &end);
      if (end != v->size()) throw std::invalid_argument(*v);
      return parsed;
    } catch (const std::exception&) {
      throw relm::Error("flag --" + name + " expects a number, got \"" + *v +
                        "\"");
    }
  }
  bool has(const std::string& name) const { return get(name).has_value(); }

  std::size_t num_positional() const { return positional_.size(); }
  const std::string& positional(std::size_t i) const { return positional_[i]; }

  // Flags that were provided but never consumed by the subcommand.
  std::vector<std::string> unused() const {
    std::vector<std::string> out;
    for (const auto& [name, _] : values_) {
      if (!used_.contains(name)) out.push_back(name);
    }
    return out;
  }

 private:
  std::map<std::string, std::string> values_;
  mutable std::set<std::string> used_;
  std::vector<std::string> positional_;
};

struct Artifacts {
  tokenizer::BpeTokenizer tokenizer;
  std::shared_ptr<model::NgramModel> xl;
  std::shared_ptr<model::NgramModel> small;
  double scale = 1.0;
};

void save_meta(const std::string& dir, double scale) {
  std::ofstream out(dir + "/meta.txt");
  if (!out) throw relm::Error("cannot write " + dir + "/meta.txt");
  out << "RELM_META v1\nscale " << scale << "\n";
}

double load_meta_scale(const std::string& dir) {
  std::ifstream in(dir + "/meta.txt");
  if (!in) throw relm::Error("no artifacts in " + dir + " (run `relm build` first)");
  std::string magic, version, tag;
  double scale = 1.0;
  in >> magic >> version >> tag >> scale;
  if (magic != "RELM_META") throw relm::Error("corrupt meta.txt");
  return scale;
}

Artifacts load_artifacts(const std::string& dir) {
  Artifacts art{tokenizer::load_tokenizer_file(dir + "/tokenizer.relm"),
                model::NgramModel::load_file(dir + "/sim-xl.relm"),
                model::NgramModel::load_file(dir + "/sim-small.relm"),
                load_meta_scale(dir)};
  return art;
}

// The corpus is not serialized: it regenerates deterministically from the
// recorded scale, which keeps the artifact directory small.
corpus::Corpus regen_corpus(double scale) {
  return corpus::generate_corpus(
      experiments::WorldConfig::scaled(scale).corpus);
}

// ---------------------------------------------------------------------------
// Shared option groups. Subcommands that accept the same flags parse them
// through these helpers so each flag is declared (and documented) once and
// `relm query` / `relm run` / `relm analyze` / `relm verify` cannot drift.
// ---------------------------------------------------------------------------

// Query-shape flags: --pattern, --prefix, --encodings, --edits. Used by
// `relm query` and `relm analyze`.
core::SimpleSearchQuery query_from_flags(const Args& args) {
  core::SimpleSearchQuery query;
  query.query_string.query_str = args.require("pattern");
  query.query_string.prefix_str = args.get_or("prefix", "");
  query.tokenization_strategy = args.get_or("encodings", "canonical") == "all"
                                    ? core::TokenizationStrategy::kAllTokens
                                    : core::TokenizationStrategy::kCanonicalTokens;
  long edits = args.get_long("edits", 0);
  if (edits > 0) {
    query.preprocessors.push_back(std::make_shared<core::LevenshteinPreprocessor>(
        static_cast<int>(edits)));
  }
  // --no-token-masks falls back to the per-edge probe path in the executors
  // (outputs are identical either way; the flag exists for benchmarking and
  // for bisecting fast-path suspicions in the field).
  if (args.has("no-token-masks")) query.use_token_masks = false;
  // --determinize-budget caps the states the (lazy) subset construction may
  // materialize for this query; 0 defers to RELM_DETERMINIZE_BUDGET. The
  // compile fails with a StateBudgetError instead of consuming unbounded
  // memory on adversarial algebra queries. Excluded from the artifact key:
  // any sufficient budget yields the identical minimized automaton.
  long budget = args.get_long("determinize-budget", 0);
  if (budget > 0) {
    query.determinize_state_budget = static_cast<std::size_t>(budget);
  }
  return query;
}

// Compile-cache flags: --compile-cache [DIR] adds an on-disk artifact store
// (default directory .relm-cache when DIR is omitted); --no-compile-cache
// disables artifact caching entirely. Without either flag the global cache
// keeps its RELM_COMPILE_CACHE-derived configuration (see
// src/core/pipeline/cache.hpp). Used by `relm query` and `relm verify`.
void apply_compile_cache_flags(const Args& args) {
  using core::pipeline::ArtifactCache;
  using core::pipeline::ArtifactCacheConfig;
  if (args.has("no-compile-cache")) {
    ArtifactCacheConfig config;
    config.capacity = 0;
    ArtifactCache::configure_global(config);
    return;
  }
  if (auto dir = args.get("compile-cache")) {
    ArtifactCacheConfig config;
    config.disk_dir = dir->empty() ? ".relm-cache" : *dir;
    ArtifactCache::configure_global(config);
  }
}

void print_compile_cache_stats(std::FILE* out) {
  const auto& cache = core::pipeline::ArtifactCache::global();
  if (!cache.enabled()) return;
  core::pipeline::ArtifactCache::Stats s = cache.stats();
  if (s.hits + s.misses == 0) return;
  std::fprintf(out,
               "[compile cache: %zu hits / %zu misses, %zu disk loads, "
               "%zu disk stores, %zu corrupt entries]\n",
               s.hits, s.misses, s.disk_loads, s.disk_stores, s.disk_errors);
}

// ---------------------------------------------------------------------------
// Subcommands
// ---------------------------------------------------------------------------

int cmd_build(const Args& args) {
  std::string dir = args.require("out");
  double scale = args.get_double("scale").value_or(1.0);

  util::Timer timer;
  experiments::World world =
      experiments::build_world(experiments::WorldConfig::scaled(scale));
  tokenizer::save_tokenizer_file(*world.tokenizer, dir + "/tokenizer.relm");
  world.xl->save_file(dir + "/sim-xl.relm");
  world.small->save_file(dir + "/sim-small.relm");
  save_meta(dir, scale);

  std::printf("built world (scale %.2f) in %.1fs:\n", scale, timer.seconds());
  std::printf("  %s/tokenizer.relm   (%zu tokens)\n", dir.c_str(),
              world.tokenizer->vocab_size());
  std::printf("  %s/sim-xl.relm      (order %zu, %zu contexts)\n", dir.c_str(),
              world.xl->config().order, world.xl->num_contexts());
  std::printf("  %s/sim-small.relm   (order %zu, %zu contexts)\n", dir.c_str(),
              world.small->config().order, world.small->num_contexts());
  return 0;
}

int cmd_query(const Args& args) {
  // Observability flags are read first so tracing covers artifact loading
  // and query compilation, not just the search.
  std::string trace_out = args.get_or("trace-out", "");
  std::string trace_jsonl = args.get_or("trace-jsonl", "");
  bool print_metrics = args.has("metrics");
  if (!trace_out.empty() || !trace_jsonl.empty()) obs::Trace::start();

  std::string dir = args.require("dir");
  apply_compile_cache_flags(args);
  Artifacts art = load_artifacts(dir);
  std::shared_ptr<model::NgramModel> ngram =
      args.get_or("model", "xl") == "small" ? art.small : art.xl;

  long threads = args.get_long("threads", 0);
  if (threads > 0) {
    util::ThreadPool::set_shared_threads(static_cast<std::size_t>(threads));
  }
  // Wrap the simulator in the suffix-keyed logit cache unless disabled.
  long cache_capacity = args.get_long("cache-capacity", 1 << 16);
  std::shared_ptr<const model::LanguageModel> model = ngram;
  if (cache_capacity > 0) {
    model = std::make_shared<model::CachingModel>(
        ngram, static_cast<std::size_t>(cache_capacity));
  }

  core::SimpleSearchQuery query = query_from_flags(args);
  query.search_strategy = args.get_or("strategy", "shortest") == "sample"
                              ? core::SearchStrategy::kRandomSampling
                              : core::SearchStrategy::kShortestPath;
  long top_k = args.get_long("top-k", 0);
  if (top_k > 0) query.decoding.top_k = static_cast<int>(top_k);
  if (auto top_p = args.get_double("top-p")) query.decoding.top_p = *top_p;
  if (auto temperature = args.get_double("temperature")) {
    query.decoding.temperature = *temperature;
  }
  query.max_results = static_cast<std::size_t>(args.get_long("results", 10));
  query.num_samples = static_cast<std::size_t>(args.get_long("samples", 10));
  query.require_eos = args.has("require-eos");
  long batch = args.get_long("batch", 1);
  if (batch > 1) query.expansion_batch_size = static_cast<std::size_t>(batch);
  std::uint64_t seed = static_cast<std::uint64_t>(args.get_long("seed", 0));

  util::Timer timer;
  SearchOutcome outcome = search(*model, art.tokenizer, query, seed);
  for (const auto& result : outcome.results) {
    std::printf("%10.3f  %s\n", result.log_prob, result.text.c_str());
  }
  std::fprintf(stderr,
               "[%zu results, %zu llm calls, %zu pruned by rules, "
               "%zu non-canonical pruned, %.2fs]\n",
               outcome.results.size(), outcome.stats.llm_calls,
               outcome.stats.pruned_by_rules, outcome.stats.pruned_non_canonical,
               timer.seconds());
  if (cache_capacity > 0) {
    std::fprintf(stderr,
                 "[cache: %zu hits / %zu misses (%.1f%% hit rate), "
                 "%zu evictions]\n",
                 outcome.stats.cache_hits, outcome.stats.cache_misses,
                 100.0 * outcome.stats.cache_hit_rate(),
                 outcome.stats.cache_evictions);
  }
  print_compile_cache_stats(stderr);
  if (!trace_out.empty()) {
    obs::Trace::write_chrome_trace_file(trace_out);
    std::fprintf(stderr, "[trace: %zu events -> %s]\n",
                 obs::Trace::event_count(), trace_out.c_str());
  }
  if (!trace_jsonl.empty()) obs::Trace::write_jsonl_file(trace_jsonl);
  if (print_metrics) {
    std::printf("METRICS %s\n",
                obs::Registry::instance().snapshot().to_json().c_str());
  }
  return 0;
}

int cmd_grep(const Args& args) {
  std::string dir = args.require("dir");
  double scale = load_meta_scale(dir);
  corpus::Corpus corpus = regen_corpus(scale);

  automata::Dfa pattern = automata::compile_regex(args.require("pattern"));
  long max_hits = args.get_long("max", 25);
  long shown = 0;
  for (const std::string& doc : corpus.scan_documents()) {
    for (const automata::GrepMatch& m : automata::grep_all(pattern, doc)) {
      std::printf("%s\n  match: \"%s\" at offset %zu\n", doc.c_str(),
                  doc.substr(m.offset, m.length).c_str(), m.offset);
      if (++shown >= max_hits) return 0;
    }
  }
  std::fprintf(stderr, "[%ld matches shown]\n", shown);
  return 0;
}

int cmd_sample(const Args& args) {
  std::string dir = args.require("dir");
  Artifacts art = load_artifacts(dir);
  const model::NgramModel& model =
      args.get_or("model", "xl") == "small" ? *art.small : *art.xl;

  long n = args.get_long("n", 10);
  model::DecodingRules rules;
  long top_k = args.get_long("top-k", 40);
  if (top_k > 0) rules.top_k = static_cast<int>(top_k);
  util::Pcg32 rng(static_cast<std::uint64_t>(args.get_long("seed", 1)));

  long non_canonical = 0;
  for (long i = 0; i < n; ++i) {
    auto tokens = model::generate(model, {}, 24, rules, rng);
    bool canonical = art.tokenizer.is_canonical(tokens);
    non_canonical += canonical ? 0 : 1;
    while (!tokens.empty() && tokens.back() == model.eos()) tokens.pop_back();
    std::printf("%s \"%s\"\n", canonical ? "          " : "[non-canon]",
                art.tokenizer.decode(tokens).c_str());
  }
  std::fprintf(stderr, "[%ld/%ld non-canonical]\n", non_canonical, n);
  return 0;
}

// `relm generate` — batched multi-stream mask-guided generation
// (core/generate): N independent sampling streams multiplexed through one
// next_log_probs_batch per tick, one JSONL line per stream on stdout.
// Determinism: stream i's line is a pure function of (artifacts, query,
// --seed, i) — independent of --streams, --threads, and co-tenants.
int cmd_generate(const Args& args) {
  bool print_metrics = args.has("metrics");
  std::string dir = args.require("dir");
  apply_compile_cache_flags(args);
  Artifacts art = load_artifacts(dir);
  std::shared_ptr<model::NgramModel> ngram =
      args.get_or("model", "xl") == "small" ? art.small : art.xl;

  long threads = args.get_long("threads", 0);
  if (threads > 0) {
    util::ThreadPool::set_shared_threads(static_cast<std::size_t>(threads));
  }
  long cache_capacity = args.get_long("cache-capacity", 1 << 16);
  std::shared_ptr<const model::LanguageModel> model = ngram;
  if (cache_capacity > 0) {
    model = std::make_shared<model::CachingModel>(
        ngram, static_cast<std::size_t>(cache_capacity));
  }

  core::SimpleSearchQuery query = query_from_flags(args);
  query.search_strategy = core::SearchStrategy::kRandomSampling;
  long top_k = args.get_long("top-k", 0);
  if (top_k > 0) query.decoding.top_k = static_cast<int>(top_k);
  if (auto top_p = args.get_double("top-p")) query.decoding.top_p = *top_p;
  if (auto temperature = args.get_double("temperature")) {
    query.decoding.temperature = *temperature;
  }
  query.require_eos = args.has("require-eos");
  long seq = args.get_long("sequence-length", 0);
  if (seq > 0) query.sequence_length = static_cast<std::size_t>(seq);

  const long streams = args.get_long("streams", 4);
  if (streams <= 0) throw relm::Error("--streams must be positive");
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_long("seed", 0));
  const long max_tokens = args.get_long("max-tokens", 0);

  core::CompiledQuery compiled = core::CompiledQuery::compile(query, art.tokenizer);
  core::generate::GenerateEngine engine(*model, compiled, query, seed);
  core::generate::StreamSpec spec;
  if (max_tokens > 0) spec.max_new_tokens = static_cast<std::size_t>(max_tokens);
  for (long i = 0; i < streams; ++i) engine.add_stream(spec);

  util::Timer timer;
  engine.run();

  for (std::size_t id = 0; id < engine.num_streams(); ++id) {
    testing::Json line = testing::Json::object();
    line.set("stream", testing::Json::number(static_cast<std::int64_t>(id)));
    line.set("state", testing::Json::string(
                          core::generate::to_string(engine.state(id))));
    const auto& result = engine.result(id);
    if (result) {
      testing::Json tokens = testing::Json::array();
      for (tokenizer::TokenId t : result->tokens) {
        tokens.push_back(testing::Json::number(static_cast<std::int64_t>(t)));
      }
      line.set("tokens", std::move(tokens));
      line.set("text", testing::Json::string(result->text));
      line.set("log_prob", testing::Json::number(result->log_prob));
    }
    std::printf("%s\n", line.dump().c_str());
  }

  const core::generate::GenerateStats& stats = engine.stats();
  std::fprintf(stderr,
               "[generate: %zu streams (%zu done, %zu dead-end), %zu ticks, "
               "%zu tokens, %zu llm calls, %zu dedup hits, "
               "occupancy %.1f streams/tick, %.0f tokens/sec, %.2fs]\n",
               engine.num_streams(), stats.streams_done, stats.streams_dead_end,
               stats.ticks, stats.tokens_emitted, stats.llm_calls,
               stats.batch_dedup_hits, stats.mean_tick_occupancy(),
               stats.tokens_per_second(), timer.seconds());
  print_compile_cache_stats(stderr);
  if (print_metrics) {
    std::printf("METRICS %s\n",
                obs::Registry::instance().snapshot().to_json().c_str());
  }
  return 0;
}

int cmd_analyze(const Args& args) {
  std::string dir = args.require("dir");
  Artifacts art = load_artifacts(dir);
  core::SimpleSearchQuery query = query_from_flags(args);
  core::QueryAnalysis analysis = core::analyze_query(query, art.tokenizer);
  std::printf("%s", analysis.summary().c_str());
  return 0;
}

int cmd_info(const Args& args) {
  std::string dir = args.require("dir");
  Artifacts art = load_artifacts(dir);
  std::printf("artifacts in %s (world scale %.2f):\n", dir.c_str(), art.scale);
  std::printf("  tokenizer: %zu tokens, max token length %zu\n",
              art.tokenizer.vocab_size(), art.tokenizer.max_token_length());
  std::printf("  sim-xl:    order %zu, alpha %.2f, %zu contexts\n",
              art.xl->config().order, art.xl->config().alpha,
              art.xl->num_contexts());
  std::printf("  sim-small: order %zu, alpha %.2f, %zu contexts\n",
              art.small->config().order, art.small->config().alpha,
              art.small->num_contexts());
  return 0;
}

// `relm verify --equivalent A.dfa B.dfa` — language-equivalence check for
// two serialized automata (RELM_DFA files), independent of --dir. Prints a
// shortest distinguishing word when the languages differ. Exit status: 0
// when equivalent, 2 when not (matching the verify-failure convention).
int cmd_verify_equivalent(const Args& args, const std::string& first) {
  if (args.num_positional() != 1) {
    throw relm::Error(
        "--equivalent expects exactly two files: "
        "relm verify --equivalent A.dfa B.dfa");
  }
  const std::string& second = args.positional(0);
  automata::Dfa a = automata::load_dfa_file(first);
  automata::Dfa b = automata::load_dfa_file(second);
  std::optional<std::vector<automata::Symbol>> witness =
      automata::dfa_distinguishing_word(a, b);
  if (!witness) {
    std::printf("verify: %s and %s are language-equivalent\n", first.c_str(),
                second.c_str());
    return 0;
  }
  // Render the witness bytes printably; non-byte (token) alphabets fall back
  // to the numeric form.
  std::string rendered;
  for (automata::Symbol sym : *witness) {
    if (sym < 256 && std::isprint(static_cast<int>(sym))) {
      rendered += static_cast<char>(sym);
    } else {
      rendered += "\\x{" + std::to_string(sym) + "}";
    }
  }
  std::fprintf(stderr,
               "verify: %s and %s differ: \"%s\" (%zu symbols) is accepted "
               "by exactly one of them\n",
               first.c_str(), second.c_str(), rendered.c_str(),
               witness->size());
  return 2;
}

int cmd_verify(const Args& args) {
  if (auto equivalent = args.get("equivalent"); equivalent && !equivalent->empty()) {
    return cmd_verify_equivalent(args, *equivalent);
  }
  std::string dir = args.require("dir");
  apply_compile_cache_flags(args);
  analysis::VerifyOptions options;
  if (auto tolerance = args.get_double("tolerance")) {
    options.model.tolerance = *tolerance;
  }
  long probes = args.get_long("probes", 0);
  if (probes > 0) options.model.probe_contexts = static_cast<std::size_t>(probes);
  if (args.has("skip-queries")) options.check_queries = false;
  std::string cache_dir = args.get_or("cache", "");

  util::Timer timer;
  analysis::InvariantReport report = analysis::verify_artifact_dir(dir, options);
  std::size_t cache_entries = 0;
  if (!cache_dir.empty()) {
    tokenizer::BpeTokenizer tok =
        tokenizer::load_tokenizer_file(dir + "/tokenizer.relm");
    cache_entries = analysis::verify_compile_cache_dir(cache_dir, &tok, report);
  }
  if (!report.ok()) {
    std::fprintf(stderr, "verify: %s FAILED\n%s", dir.c_str(),
                 report.to_string().c_str());
    return 2;
  }
  std::string cache_note =
      cache_dir.empty()
          ? ""
          : ", " + std::to_string(cache_entries) + " cached artifacts";
  std::printf("verify: %s ok (tokenizer, sim-xl, sim-small%s%s in %.2fs)\n",
              dir.c_str(), options.check_queries ? ", probe queries" : "",
              cache_note.c_str(), timer.seconds());
  return 0;
}

// ---------------------------------------------------------------------------
// relm fuzz — differential fuzzing of query execution (docs/TESTING.md)
// ---------------------------------------------------------------------------

testing::Mutation mutation_from_flag(const std::string& mode) {
  if (mode == "none") return testing::Mutation::kNone;
  if (mode == "drop") return testing::Mutation::kDropResult;
  if (mode == "perturb") return testing::Mutation::kPerturbLogProb;
  if (mode == "swap") return testing::Mutation::kSwapOrder;
  if (mode == "dup") return testing::Mutation::kDuplicateResult;
  throw relm::Error("--mutate expects none|drop|perturb|swap|dup, got \"" +
                    mode + "\"");
}

// Atomic write (temp file + rename), same convention as scripts/bench.sh:
// a watcher or CI artifact upload never sees a half-written repro.
void write_repro_file(const testing::TrialCase& trial,
                      const std::string& path) {
  const auto dir = std::filesystem::path(path).parent_path();
  if (!dir.empty()) std::filesystem::create_directories(dir);
  std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw relm::Error("cannot open " + tmp + " for writing");
    out << trial.to_json().dump(/*pretty=*/true);
    out.flush();
    if (!out) throw relm::Error("failed writing " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw relm::Error("cannot rename " + tmp + " to " + path);
  }
}

testing::TrialCase load_repro_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw relm::Error("cannot read repro file " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return testing::TrialCase::from_json(testing::Json::parse(buffer.str()));
}

int cmd_fuzz(const Args& args) {
  testing::DifferentialOptions options;
  options.mutate = mutation_from_flag(args.get_or("mutate", "none"));
  options.num_samples =
      static_cast<std::size_t>(args.get_long("num-samples", 24));

  if (auto replay = args.get("replay"); replay && !replay->empty()) {
    testing::TrialCase trial = load_repro_file(*replay);
    testing::TrialReport report = testing::run_trial(trial, options);
    switch (report.status) {
      case testing::TrialReport::Status::kPass:
        std::printf("replay %s: PASS (language size %zu)\n", replay->c_str(),
                    report.language_size);
        return 0;
      case testing::TrialReport::Status::kSkip:
        std::printf("replay %s: SKIP (%s)\n", replay->c_str(),
                    report.detail.c_str());
        return 0;
      case testing::TrialReport::Status::kFail:
        std::fprintf(stderr, "replay %s: FAIL [%s]\n%s\n", replay->c_str(),
                     report.failure_kind.c_str(), report.detail.c_str());
        return 2;
    }
  }

  const long trials = args.get_long("trials", 200);
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_long("seed", 1));
  const std::string out_dir = args.get_or("out", ".");
  const bool shrink = !args.has("no-shrink");
  const long max_failures = args.get_long("max-failures", 1);
  const std::size_t shrink_trials =
      static_cast<std::size_t>(args.get_long("shrink-trials", 400));

  util::Timer timer;
  std::size_t passed = 0, skipped = 0;
  long failures = 0;
  for (long i = 0; i < trials; ++i) {
    const std::uint64_t trial_seed = seed + static_cast<std::uint64_t>(i);
    testing::TrialCase trial = testing::generate_case(trial_seed);
    testing::TrialReport report = testing::run_trial(trial, options);
    switch (report.status) {
      case testing::TrialReport::Status::kPass:
        ++passed;
        break;
      case testing::TrialReport::Status::kSkip:
        ++skipped;
        break;
      case testing::TrialReport::Status::kFail: {
        ++failures;
        std::fprintf(stderr, "fuzz: seed %llu FAIL [%s]\n%s\n",
                     static_cast<unsigned long long>(trial_seed),
                     report.failure_kind.c_str(), report.detail.c_str());
        testing::TrialCase repro = trial;
        if (shrink) {
          testing::ShrinkResult minimized =
              testing::shrink_case(trial, options, shrink_trials);
          repro = minimized.best;
          std::fprintf(stderr,
                       "fuzz: shrunk to body \"%s\" over %zu tokens "
                       "(%zu shrink trials)\n",
                       repro.body.c_str(), repro.vocab.size(),
                       minimized.trials);
        }
        std::string path = out_dir + "/fuzz-repro-" +
                           std::to_string(trial_seed) + ".json";
        write_repro_file(repro, path);
        std::fprintf(stderr, "fuzz: wrote %s\n", path.c_str());
        break;
      }
    }
    if (failures >= max_failures) break;
    if ((i + 1) % 100 == 0) {
      std::fprintf(stderr, "fuzz: %ld/%ld trials (%zu pass, %zu skip)\n",
                   i + 1, trials, passed, skipped);
    }
  }
  std::printf(
      "fuzz: %zu passed, %zu skipped, %ld failed (seed %llu, %.1fs)\n",
      passed, skipped, failures, static_cast<unsigned long long>(seed),
      timer.seconds());
  return failures ? 2 : 0;
}

void usage() {
  std::fprintf(stderr,
               "usage: relm <build|query|generate|analyze|grep|sample|info|verify|fuzz> [flags]\n"
               "       (`relm run` is an alias for `relm query`)\n"
               "see the header of src/tools/relm_cli.cpp for flag reference\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 1;
  }
  std::string command = argv[1];
  Args args(argc - 2, argv + 2);
  try {
    int status;
    if (command == "build") {
      status = cmd_build(args);
    } else if (command == "query" || command == "run") {
      status = cmd_query(args);
    } else if (command == "grep") {
      status = cmd_grep(args);
    } else if (command == "sample") {
      status = cmd_sample(args);
    } else if (command == "generate") {
      status = cmd_generate(args);
    } else if (command == "analyze") {
      status = cmd_analyze(args);
    } else if (command == "info") {
      status = cmd_info(args);
    } else if (command == "verify") {
      status = cmd_verify(args);
    } else if (command == "fuzz") {
      status = cmd_fuzz(args);
    } else {
      usage();
      return 1;
    }
    for (const std::string& flag : args.unused()) {
      std::fprintf(stderr, "warning: unused flag --%s\n", flag.c_str());
    }
    return status;
  } catch (const relm::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
