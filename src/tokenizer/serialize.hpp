#pragma once

#include <iosfwd>
#include <string>

#include "tokenizer/bpe.hpp"

namespace relm::tokenizer {

// Text serialization for trained tokenizers, so a world can be trained once
// and reused by tools (see tools/relm_cli). Token strings are hex-encoded —
// exact byte round-trip, no escaping rules to get wrong.
//
// Format:
//   RELM_BPE v1
//   <vocab_size> <eos_id> <max_token_length>
//   <hex-encoded token string>          (vocab_size lines; EOS line is empty)
void save_tokenizer(const BpeTokenizer& tok, std::ostream& out);
BpeTokenizer load_tokenizer(std::istream& in);  // throws relm::Error on bad input

void save_tokenizer_file(const BpeTokenizer& tok, const std::string& path);
BpeTokenizer load_tokenizer_file(const std::string& path);

}  // namespace relm::tokenizer
