#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/rng.hpp"

namespace relm::tokenizer {

using TokenId = std::uint32_t;

// Byte-level BPE tokenizer, trained from scratch on a corpus.
//
// This substitutes for the GPT-2 tokenizer (§3.2): everything ReLM needs from
// a tokenizer is (a) a subword vocabulary where strings admit multiple
// tokenizations — `The` can be T|h|e, Th|e, T|he, or The once those merges
// exist — and (b) a deterministic *canonical* encoding. Training follows
// Gage (1994)/GPT-2: pretokenize into space-prefixed word chunks, then
// iteratively merge the most frequent adjacent symbol pair.
//
// Canonical encoding is greedy longest-match over the learned vocabulary.
// This satisfies the paper's characterization of the canonical form — it is
// (near-)shortest and, critically, *stable under repeated encodings and
// decodings* — while being simple enough to reason about in the graph
// compiler. The deviation from merge-order BPE is documented in DESIGN.md.
class BpeTokenizer {
 public:
  struct TrainConfig {
    std::size_t vocab_size = 512;   // including base bytes and EOS
    std::size_t min_pair_count = 2; // stop merging below this frequency
    std::size_t max_token_length = 16;
    // Strings guaranteed to be single tokens regardless of merge order or
    // max_token_length (added after training if the merges did not produce
    // them). Models like GPT-2 carry many whole-word tokens the merge budget
    // of a small trained vocabulary would miss.
    std::vector<std::string> force_tokens;
    // No token may strictly extend any of these prefixes (the prefixes
    // themselves may exist as tokens). Keeps a designated subword — e.g.
    // " art" — the canonical leading token of a word family, the situation
    // ReLM's §4.2.1 subword-overlap analysis hinges on.
    std::vector<std::string> blocked_token_prefixes;
  };

  static BpeTokenizer train(std::string_view corpus, const TrainConfig& config);

  // Builds a tokenizer from an explicit vocabulary (deserialization, custom
  // vocabularies). Exactly one entry must be the empty string — it becomes
  // EOS — and entries must be unique. Throws relm::Error otherwise.
  static BpeTokenizer from_vocab(std::vector<std::string> tokens);

  // Canonical encoding (greedy longest match). Throws relm::Error if the
  // input contains a byte absent from the base vocabulary.
  std::vector<TokenId> encode(std::string_view text) const;

  // A randomized, generally non-canonical encoding: at each position, with
  // probability `step_prob` a uniformly random matching token is taken
  // instead of the longest match. Used to train simulators that — like
  // GPT-2, per §3.2's observation that 2-3% of its unprompted samples are
  // non-canonical — place real probability mass on alternative encodings.
  std::vector<TokenId> encode_random(std::string_view text, util::Pcg32& rng,
                                     double step_prob = 0.5) const;

  // Inverse of any encoding. EOS decodes to the empty string.
  std::string decode(std::span<const TokenId> tokens) const;

  std::size_t vocab_size() const { return tokens_.size(); }
  TokenId eos() const { return eos_; }
  const std::string& token_string(TokenId id) const { return tokens_[id]; }
  std::size_t max_token_length() const { return max_token_length_; }

  // Token id whose string equals `text` exactly, if any.
  std::optional<TokenId> find(std::string_view text) const;

  // Longest vocabulary token that is a prefix of `text`, if any.
  std::optional<TokenId> longest_match(std::string_view text) const;

  // Number of distinct token sequences that decode to `text` (the full set
  // of encodings of §3.2; for a fully-merged n-char string this is 2^(n-1)).
  // Saturates as a double.
  double count_encodings(std::string_view text) const;

  // True iff `tokens` is the canonical encoding of its own decoding. The
  // paper observes ~2-3% of GPT-2's unprompted samples are non-canonical.
  bool is_canonical(std::span<const TokenId> tokens) const;

  // All (token, end_position) pairs matching at text[pos..]: every vocabulary
  // token that is a prefix of the remaining text. Used by tests and by the
  // encoding-count DP.
  std::vector<TokenId> matches_at(std::string_view text, std::size_t pos) const;

  // Read-only view of the vocabulary byte trie, used by ReLM's graph
  // compiler (§3.2) to walk the trie and a character automaton in lockstep
  // when adding token "shortcut" edges. kNoTrieNode marks an absent child.
  static constexpr std::uint32_t kNoTrieNode = 0xffffffffu;
  std::uint32_t trie_root() const { return 0; }
  std::uint32_t trie_child(std::uint32_t node, unsigned char c) const {
    return trie_[node].child[c];
  }
  // Token ending exactly at `node`, if any.
  std::optional<TokenId> trie_token(std::uint32_t node) const {
    TokenId t = trie_[node].token_at;
    return t == static_cast<TokenId>(-1) ? std::nullopt : std::optional<TokenId>(t);
  }

 private:
  BpeTokenizer() = default;
  void build_trie();

  std::vector<std::string> tokens_;
  std::unordered_map<std::string, TokenId> index_;
  TokenId eos_ = 0;
  std::size_t max_token_length_ = 1;

  // Byte trie for longest-match lookups. Node 0 is the root; kNoChild marks
  // an absent edge; `token_at` is the token ending at this node, if any.
  static constexpr std::uint32_t kNoChild = 0xffffffffu;
  struct TrieNode {
    std::array<std::uint32_t, 256> child;
    TokenId token_at;
  };
  std::vector<TrieNode> trie_;
};

}  // namespace relm::tokenizer
