#include "tokenizer/serialize.hpp"

#include <fstream>
#include <sstream>

#include "util/errors.hpp"

namespace relm::tokenizer {

namespace {
std::string to_hex(const std::string& bytes) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (unsigned char c : bytes) {
    out.push_back(kDigits[c >> 4]);
    out.push_back(kDigits[c & 0xf]);
  }
  return out;
}

std::string from_hex(const std::string& hex) {
  if (hex.size() % 2 != 0) throw relm::Error("tokenizer file: odd hex length");
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    throw relm::Error("tokenizer file: bad hex digit");
  };
  std::string out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    out.push_back(static_cast<char>((nibble(hex[i]) << 4) | nibble(hex[i + 1])));
  }
  return out;
}
}  // namespace

void save_tokenizer(const BpeTokenizer& tok, std::ostream& out) {
  out << "RELM_BPE v1\n";
  out << tok.vocab_size() << ' ' << tok.eos() << ' ' << tok.max_token_length()
      << '\n';
  for (TokenId id = 0; id < tok.vocab_size(); ++id) {
    out << to_hex(tok.token_string(id)) << '\n';
  }
}

BpeTokenizer load_tokenizer(std::istream& in) {
  std::string magic, version;
  in >> magic >> version;
  if (magic != "RELM_BPE" || version != "v1") {
    throw relm::Error("not a RELM_BPE v1 tokenizer file");
  }
  std::size_t vocab_size = 0, max_len = 0;
  TokenId eos = 0;
  in >> vocab_size >> eos >> max_len;
  if (!in || vocab_size == 0 || eos >= vocab_size) {
    throw relm::Error("tokenizer file: corrupt header");
  }
  std::vector<std::string> tokens;
  tokens.reserve(vocab_size);
  std::string line;
  std::getline(in, line);  // finish the header line
  for (std::size_t i = 0; i < vocab_size; ++i) {
    if (!std::getline(in, line)) throw relm::Error("tokenizer file: truncated");
    tokens.push_back(from_hex(line));
  }
  BpeTokenizer tok = BpeTokenizer::from_vocab(std::move(tokens));
  if (tok.eos() != eos) throw relm::Error("tokenizer file: EOS id mismatch");
  return tok;
}

void save_tokenizer_file(const BpeTokenizer& tok, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw relm::Error("cannot open for writing: " + path);
  save_tokenizer(tok, out);
}

BpeTokenizer load_tokenizer_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw relm::Error("cannot open for reading: " + path);
  return load_tokenizer(in);
}

}  // namespace relm::tokenizer
