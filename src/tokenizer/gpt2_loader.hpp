#pragma once

#include <array>
#include <iosfwd>
#include <string>

#include "tokenizer/bpe.hpp"

namespace relm::tokenizer {

// Loads a HuggingFace/GPT-2-style `vocab.json` ({"token": id, ...}) into a
// BpeTokenizer, so ReLM queries can run against the real GPT-2 vocabulary
// when its files are available (the canonical encoder is this library's
// greedy longest-match; see DESIGN.md on that substitution).
//
// GPT-2 stores tokens in its byte-to-unicode alias alphabet (space = 'Ġ' =
// U+0120, newline = 'Ċ', ...); the loader inverts that mapping back to raw
// bytes. "<|endoftext|>" becomes this library's EOS; any other special
// (non-byte-decodable) token is kept id-stable under a private placeholder
// spelling that cannot match query text.
//
// Throws relm::Error on malformed JSON or non-contiguous ids.
BpeTokenizer load_gpt2_vocab(std::istream& in);
BpeTokenizer load_gpt2_vocab_file(const std::string& path);

// The GPT-2 byte <-> unicode alias tables (exposed for tests).
// byte_to_unicode()[b] is the code point GPT-2 prints for byte b.
const std::array<char32_t, 256>& gpt2_byte_to_unicode();

}  // namespace relm::tokenizer
