#include "tokenizer/gpt2_loader.hpp"

#include <array>
#include <fstream>
#include <map>
#include <sstream>
#include <unordered_map>

#include "util/errors.hpp"

namespace relm::tokenizer {

const std::array<char32_t, 256>& gpt2_byte_to_unicode() {
  static const std::array<char32_t, 256> table = [] {
    std::array<char32_t, 256> out{};
    std::array<bool, 256> direct{};
    auto mark = [&](int lo, int hi) {
      for (int b = lo; b <= hi; ++b) {
        direct[b] = true;
        out[b] = static_cast<char32_t>(b);
      }
    };
    mark('!', '~');        // 33..126
    mark(0xa1, 0xac);      // 161..172
    mark(0xae, 0xff);      // 174..255
    char32_t next = 256;
    for (int b = 0; b < 256; ++b) {
      if (!direct[b]) out[b] = next++;
    }
    return out;
  }();
  return table;
}

namespace {

// Minimal JSON parsing for the {"string": int, ...} shape of vocab.json.
class JsonVocabParser {
 public:
  explicit JsonVocabParser(std::istream& in) {
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text_ = buffer.str();
  }

  std::map<long, std::string> parse() {
    std::map<long, std::string> by_id;
    skip_ws();
    expect('{');
    skip_ws();
    if (peek() == '}') return by_id;
    for (;;) {
      std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      long id = parse_int();
      if (!by_id.emplace(id, std::move(key)).second) {
        throw relm::Error("vocab.json: duplicate token id " + std::to_string(id));
      }
      skip_ws();
      char c = take();
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}'");
      skip_ws();
    }
    return by_id;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw relm::Error("vocab.json: " + what + " at offset " + std::to_string(pos_));
  }
  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }
  char take() { return peek(), text_[pos_++]; }
  void expect(char c) {
    if (take() != c) fail(std::string("expected '") + c + "'");
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' || text_[pos_] == '\t' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  long parse_int() {
    bool negative = false;
    if (peek() == '-') {
      negative = true;
      ++pos_;
    }
    if (!std::isdigit(static_cast<unsigned char>(peek()))) fail("expected digit");
    long value = 0;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      value = value * 10 + (text_[pos_++] - '0');
    }
    return negative ? -value : value;
  }

  // Parses a JSON string into UTF-8 bytes (escapes resolved; \uXXXX pairs
  // for surrogates handled).
  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      char c = take();
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      char esc = take();
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          char32_t cp = parse_hex4();
          if (cp >= 0xd800 && cp <= 0xdbff) {  // surrogate pair
            expect('\\');
            expect('u');
            char32_t low = parse_hex4();
            if (low < 0xdc00 || low > 0xdfff) fail("bad surrogate pair");
            cp = 0x10000 + ((cp - 0xd800) << 10) + (low - 0xdc00);
          }
          append_utf8(out, cp);
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  char32_t parse_hex4() {
    char32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      char c = take();
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<char32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<char32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<char32_t>(c - 'A' + 10);
      else fail("bad hex digit");
    }
    return value;
  }

  static void append_utf8(std::string& out, char32_t cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xc0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xe0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    } else {
      out.push_back(static_cast<char>(0xf0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3f)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    }
  }

  std::string text_;
  std::size_t pos_ = 0;
};

// Decodes one UTF-8 code point from `s` at `i` (advancing it); returns
// 0xFFFFFFFF on malformed input.
char32_t next_code_point(const std::string& s, std::size_t& i) {
  unsigned char c = s[i];
  if (c < 0x80) {
    ++i;
    return c;
  }
  int extra = 0;
  char32_t cp = 0;
  if ((c & 0xe0) == 0xc0) { extra = 1; cp = c & 0x1f; }
  else if ((c & 0xf0) == 0xe0) { extra = 2; cp = c & 0x0f; }
  else if ((c & 0xf8) == 0xf0) { extra = 3; cp = c & 0x07; }
  else return 0xFFFFFFFF;
  if (i + extra >= s.size()) return 0xFFFFFFFF;
  for (int k = 1; k <= extra; ++k) {
    unsigned char cc = s[i + k];
    if ((cc & 0xc0) != 0x80) return 0xFFFFFFFF;
    cp = (cp << 6) | (cc & 0x3f);
  }
  i += extra + 1;
  return cp;
}

}  // namespace

BpeTokenizer load_gpt2_vocab(std::istream& in) {
  std::map<long, std::string> by_id = JsonVocabParser(in).parse();
  if (by_id.empty()) throw relm::Error("vocab.json: empty vocabulary");
  if (by_id.begin()->first != 0 ||
      by_id.rbegin()->first != static_cast<long>(by_id.size()) - 1) {
    throw relm::Error("vocab.json: token ids must be contiguous from 0");
  }

  // Inverse alias table: code point -> byte.
  std::unordered_map<char32_t, unsigned char> to_byte;
  const auto& alias = gpt2_byte_to_unicode();
  for (int b = 0; b < 256; ++b) to_byte.emplace(alias[b], static_cast<unsigned char>(b));

  std::vector<std::string> tokens(by_id.size());
  bool saw_eos = false;
  for (const auto& [id, aliased] : by_id) {
    if (aliased == "<|endoftext|>") {
      tokens[static_cast<std::size_t>(id)] = "";  // becomes EOS
      saw_eos = true;
      continue;
    }
    std::string raw;
    bool decodable = true;
    std::size_t i = 0;
    while (i < aliased.size()) {
      char32_t cp = next_code_point(aliased, i);
      auto it = to_byte.find(cp);
      if (it == to_byte.end()) {
        decodable = false;
        break;
      }
      raw.push_back(static_cast<char>(it->second));
    }
    if (!decodable) {
      // Special token outside the byte alphabet: keep the id stable with a
      // spelling no query text can contain (0xff is not a valid UTF-8 lead
      // in our printable queries).
      raw = std::string("\xff") + std::to_string(id);
    }
    tokens[static_cast<std::size_t>(id)] = std::move(raw);
  }
  if (!saw_eos) {
    throw relm::Error("vocab.json: no <|endoftext|> token to use as EOS");
  }
  return BpeTokenizer::from_vocab(std::move(tokens));
}

BpeTokenizer load_gpt2_vocab_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw relm::Error("cannot open for reading: " + path);
  return load_gpt2_vocab(in);
}

}  // namespace relm::tokenizer
