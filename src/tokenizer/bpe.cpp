#include "tokenizer/bpe.hpp"

#include <algorithm>
#include <map>

#include "util/errors.hpp"

namespace relm::tokenizer {
namespace {

// GPT-2-style pretokenization: a chunk is an (optional leading space +)
// alphabetic run, an (optional leading space +) digit run, or a single other
// byte. BPE merges never cross chunk boundaries, which is what confines
// tokens to word-like units.
std::vector<std::string> pretokenize(std::string_view text) {
  std::vector<std::string> chunks;
  std::size_t i = 0;
  auto is_alpha = [](unsigned char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
  };
  auto is_digit = [](unsigned char c) { return c >= '0' && c <= '9'; };
  while (i < text.size()) {
    std::size_t start = i;
    unsigned char c = text[i];
    if (c == ' ' && i + 1 < text.size() &&
        (is_alpha(text[i + 1]) || is_digit(text[i + 1]))) {
      ++i;
      c = text[i];
    }
    if (is_alpha(c)) {
      while (i < text.size() && is_alpha(static_cast<unsigned char>(text[i]))) ++i;
    } else if (is_digit(c)) {
      while (i < text.size() && is_digit(static_cast<unsigned char>(text[i]))) ++i;
    } else {
      ++i;
    }
    chunks.emplace_back(text.substr(start, i - start));
  }
  return chunks;
}

}  // namespace

BpeTokenizer BpeTokenizer::train(std::string_view corpus, const TrainConfig& config) {
  // Chunk frequency table.
  std::map<std::string, std::uint64_t> chunk_counts;
  for (auto& chunk : pretokenize(corpus)) ++chunk_counts[std::move(chunk)];

  BpeTokenizer tok;

  // Base vocabulary: printable ASCII + common whitespace, plus any byte seen
  // in the corpus. Guarantees every printable string is encodable.
  std::array<bool, 256> base{};
  for (int b = 0x20; b <= 0x7e; ++b) base[b] = true;
  base['\n'] = base['\t'] = base['\r'] = true;
  for (const auto& [chunk, _] : chunk_counts) {
    for (unsigned char c : chunk) base[c] = true;
  }
  for (int b = 0; b < 256; ++b) {
    if (base[b]) {
      std::string s(1, static_cast<char>(b));
      tok.index_.emplace(s, static_cast<TokenId>(tok.tokens_.size()));
      tok.tokens_.push_back(std::move(s));
    }
  }

  // Each chunk as a sequence of current symbols (token strings).
  struct Word {
    std::vector<std::string> symbols;
    std::uint64_t count;
  };
  std::vector<Word> words;
  words.reserve(chunk_counts.size());
  for (const auto& [chunk, count] : chunk_counts) {
    Word w;
    w.count = count;
    for (unsigned char c : chunk) w.symbols.emplace_back(1, static_cast<char>(c));
    words.push_back(std::move(w));
  }

  auto merge_blocked = [&config](const std::string& merged) {
    for (const std::string& prefix : config.blocked_token_prefixes) {
      if (merged.size() > prefix.size() &&
          merged.compare(0, prefix.size(), prefix) == 0) {
        return true;
      }
    }
    return false;
  };

  // Iterative merging of the most frequent adjacent pair. A std::map keyed by
  // the pair keeps tie-breaking deterministic (lexicographically smallest
  // pair wins ties), so trained vocabularies are reproducible.
  const std::size_t budget = config.vocab_size > tok.tokens_.size() + 1
                                 ? config.vocab_size - tok.tokens_.size() - 1
                                 : 0;  // reserve one slot for EOS
  for (std::size_t round = 0; round < budget; ++round) {
    std::map<std::pair<std::string, std::string>, std::uint64_t> pair_counts;
    for (const Word& w : words) {
      for (std::size_t i = 0; i + 1 < w.symbols.size(); ++i) {
        if (w.symbols[i].size() + w.symbols[i + 1].size() > config.max_token_length) {
          continue;
        }
        if (merge_blocked(w.symbols[i] + w.symbols[i + 1])) continue;
        pair_counts[{w.symbols[i], w.symbols[i + 1]}] += w.count;
      }
    }
    if (pair_counts.empty()) break;
    auto best = pair_counts.begin();
    for (auto it = pair_counts.begin(); it != pair_counts.end(); ++it) {
      if (it->second > best->second) best = it;
    }
    if (best->second < config.min_pair_count) break;

    std::string merged = best->first.first + best->first.second;
    if (!tok.index_.contains(merged)) {
      tok.index_.emplace(merged, static_cast<TokenId>(tok.tokens_.size()));
      tok.tokens_.push_back(merged);
    }

    // Apply the merge everywhere.
    for (Word& w : words) {
      std::vector<std::string> next;
      next.reserve(w.symbols.size());
      std::size_t i = 0;
      while (i < w.symbols.size()) {
        if (i + 1 < w.symbols.size() && w.symbols[i] == best->first.first &&
            w.symbols[i + 1] == best->first.second) {
          next.push_back(merged);
          i += 2;
        } else {
          next.push_back(w.symbols[i]);
          ++i;
        }
      }
      w.symbols = std::move(next);
    }
  }

  for (const std::string& forced : config.force_tokens) {
    if (!forced.empty() && !tok.index_.contains(forced)) {
      tok.index_.emplace(forced, static_cast<TokenId>(tok.tokens_.size()));
      tok.tokens_.push_back(forced);
    }
  }

  // EOS is the last id; its string is empty so decode() naturally skips it.
  tok.eos_ = static_cast<TokenId>(tok.tokens_.size());
  tok.tokens_.emplace_back("");

  for (const auto& t : tok.tokens_) {
    tok.max_token_length_ = std::max(tok.max_token_length_, t.size());
  }
  tok.build_trie();
  return tok;
}

BpeTokenizer BpeTokenizer::from_vocab(std::vector<std::string> tokens) {
  BpeTokenizer tok;
  tok.tokens_ = std::move(tokens);
  bool saw_eos = false;
  for (TokenId id = 0; id < tok.tokens_.size(); ++id) {
    const std::string& s = tok.tokens_[id];
    if (s.empty()) {
      if (saw_eos) throw relm::Error("from_vocab: multiple empty (EOS) tokens");
      saw_eos = true;
      tok.eos_ = id;
      continue;
    }
    if (!tok.index_.emplace(s, id).second) {
      throw relm::Error("from_vocab: duplicate token string");
    }
    tok.max_token_length_ = std::max(tok.max_token_length_, s.size());
  }
  if (!saw_eos) throw relm::Error("from_vocab: missing empty (EOS) token");
  tok.build_trie();
  return tok;
}

void BpeTokenizer::build_trie() {
  trie_.clear();
  TrieNode root;
  root.child.fill(kNoChild);
  root.token_at = static_cast<TokenId>(-1);
  trie_.push_back(root);
  for (TokenId id = 0; id < tokens_.size(); ++id) {
    const std::string& s = tokens_[id];
    if (s.empty()) continue;  // EOS
    std::uint32_t node = 0;
    for (unsigned char c : s) {
      if (trie_[node].child[c] == kNoChild) {
        trie_[node].child[c] = static_cast<std::uint32_t>(trie_.size());
        TrieNode fresh;
        fresh.child.fill(kNoChild);
        fresh.token_at = static_cast<TokenId>(-1);
        trie_.push_back(fresh);
      }
      node = trie_[node].child[c];
    }
    trie_[node].token_at = id;
  }
}

std::vector<TokenId> BpeTokenizer::encode(std::string_view text) const {
  std::vector<TokenId> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::optional<TokenId> best = longest_match(text.substr(pos));
    if (!best) {
      throw relm::Error("byte not in tokenizer vocabulary: \\x" +
                        std::to_string(static_cast<unsigned char>(text[pos])));
    }
    out.push_back(*best);
    pos += tokens_[*best].size();
  }
  return out;
}

std::vector<TokenId> BpeTokenizer::encode_random(std::string_view text,
                                                 util::Pcg32& rng,
                                                 double step_prob) const {
  std::vector<TokenId> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::vector<TokenId> candidates = matches_at(text, pos);
    if (candidates.empty()) {
      throw relm::Error("byte not in tokenizer vocabulary in encode_random");
    }
    TokenId chosen;
    if (candidates.size() > 1 && rng.uniform() < step_prob) {
      chosen = candidates[rng.bounded(static_cast<std::uint32_t>(candidates.size()))];
    } else {
      chosen = candidates.back();  // matches_at returns shortest..longest
    }
    out.push_back(chosen);
    pos += tokens_[chosen].size();
  }
  return out;
}

std::string BpeTokenizer::decode(std::span<const TokenId> tokens) const {
  std::string out;
  for (TokenId id : tokens) {
    if (id >= tokens_.size()) throw relm::Error("token id out of range in decode");
    out += tokens_[id];
  }
  return out;
}

std::optional<TokenId> BpeTokenizer::find(std::string_view text) const {
  auto it = index_.find(std::string(text));
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

std::optional<TokenId> BpeTokenizer::longest_match(std::string_view text) const {
  std::uint32_t node = 0;
  std::optional<TokenId> best;
  for (unsigned char c : text) {
    std::uint32_t next = trie_[node].child[c];
    if (next == kNoChild) break;
    node = next;
    if (trie_[node].token_at != static_cast<TokenId>(-1)) {
      best = trie_[node].token_at;
    }
  }
  return best;
}

std::vector<TokenId> BpeTokenizer::matches_at(std::string_view text,
                                              std::size_t pos) const {
  std::vector<TokenId> out;
  std::uint32_t node = 0;
  for (std::size_t i = pos; i < text.size(); ++i) {
    std::uint32_t next = trie_[node].child[static_cast<unsigned char>(text[i])];
    if (next == kNoChild) break;
    node = next;
    if (trie_[node].token_at != static_cast<TokenId>(-1)) {
      out.push_back(trie_[node].token_at);
    }
  }
  return out;
}

double BpeTokenizer::count_encodings(std::string_view text) const {
  // ways[i] = number of tokenizations of text[i..]; ways[n] = 1.
  std::vector<double> ways(text.size() + 1, 0.0);
  ways[text.size()] = 1.0;
  for (std::size_t i = text.size(); i-- > 0;) {
    double total = 0.0;
    for (TokenId t : matches_at(text, i)) {
      total += ways[i + tokens_[t].size()];
      if (total > 1e300) {
        total = 1e300;
        break;
      }
    }
    ways[i] = total;
  }
  return ways[0];
}

bool BpeTokenizer::is_canonical(std::span<const TokenId> tokens) const {
  // A trailing EOS is a sequence terminator, not part of the text encoding.
  while (!tokens.empty() && tokens.back() == eos_) {
    tokens = tokens.first(tokens.size() - 1);
  }
  std::vector<TokenId> reencoded = encode(decode(tokens));
  return reencoded.size() == tokens.size() &&
         std::equal(reencoded.begin(), reencoded.end(), tokens.begin());
}

}  // namespace relm::tokenizer
