#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "automata/automaton.hpp"
#include "core/compiled_query.hpp"
#include "core/pipeline/artifact.hpp"
#include "model/language_model.hpp"
#include "model/ngram_model.hpp"
#include "tokenizer/bpe.hpp"

namespace relm::analysis {

// Machine-checked invariants for the structures ReLM's correctness rests on
// (PAPER.md §4): the compiled query automaton must be a faithful
// intersection of the regex language with the model's token language, and
// the model must emit genuine probability distributions. A silently
// malformed DFA or an unnormalized n-gram row corrupts every downstream
// result, so these checkers audit the full structure — unlike RELM_DCHECK
// (util/errors.hpp), which guards only O(1) conditions on hot paths, these
// are O(states + edges) / O(rows) sweeps meant for load/compile boundaries,
// tests, and the `relm verify` CLI subcommand.
//
// Checkers never throw and never abort: they append violations to an
// InvariantReport, so a caller sees every broken invariant of an artifact in
// one pass, not just the first.

// One violated invariant. `check` is a stable dotted identifier (e.g.
// "dfa.transition-range") that tests and tools can match on; `detail` is the
// human diagnostic with the offending indices and values.
struct Violation {
  std::string check;
  std::string detail;
};

class InvariantReport {
 public:
  // Records a violation. Per check id, only the first kMaxPerCheck details
  // are kept (a corrupt 30k-row model would otherwise flood the report); a
  // final "... further violations suppressed" entry marks the truncation.
  void fail(const std::string& check, const std::string& detail);

  bool ok() const { return violations_.empty(); }
  const std::vector<Violation>& violations() const { return violations_; }

  // True if some violation has this check id (truncated or not).
  bool has(const std::string& check) const;

  // Multi-line diagnostic report: "ok" when clean, otherwise one line per
  // violation, suitable for printing to stderr.
  std::string to_string() const;

  static constexpr std::size_t kMaxPerCheck = 8;

 private:
  std::vector<Violation> violations_;
  std::vector<std::pair<std::string, std::size_t>> counts_;
};

// --- (a) automata ------------------------------------------------------------

// Structural validity of a DFA: start state in range, every transition
// target in range (no dangling transitions), every symbol inside the
// alphabet (which also rules out kEpsilon — epsilon-freeness), and per-state
// edge lists strictly ascending by symbol (sortedness plus determinism: a
// duplicate symbol is a nondeterministic choice). `name` prefixes the
// diagnostics so reports over several machines stay readable.
void check_dfa(const automata::Dfa& dfa, InvariantReport& report,
               const std::string& name = "dfa");

// Structural validity of an NFA: like check_dfa but epsilon edges are legal
// and determinism is not required.
void check_nfa(const automata::Nfa& nfa, InvariantReport& report,
               const std::string& name = "nfa");

// No epsilon edges remain (what determinization must guarantee).
void check_epsilon_free(const automata::Nfa& nfa, InvariantReport& report,
                        const std::string& name = "nfa");

// Trimness: every state is reachable from the start AND can reach an
// accepting state. Compiler outputs are trimmed/minimized, so an unreachable
// accepting state or a non-co-reachable (dead) state in one is a bug. The
// canonical empty-language machine — a single non-final start state with no
// edges — passes.
void check_trim(const automata::Dfa& dfa, InvariantReport& report,
                const std::string& name = "dfa");

// Token-automaton totality against the tokenizer vocabulary: the alphabet
// size must equal vocab_size(), every edge symbol must be a real token id,
// and no edge may consume EOS (EOS is the reserved stop symbol, §3.3).
// Includes check_dfa.
void check_token_automaton(const automata::Dfa& dfa,
                           const tokenizer::BpeTokenizer& tok,
                           InvariantReport& report,
                           const std::string& name = "token-automaton");

// --- (b) models --------------------------------------------------------------

struct ModelCheckOptions {
  // |sum(exp(log p)) - 1| tolerance for distribution rows.
  double tolerance = 1e-6;
  // Number of probe contexts evaluated through next_log_probs.
  std::size_t probe_contexts = 32;
  // Maximum probe context length (random walks through the model itself).
  std::size_t probe_depth = 8;
  std::uint64_t seed = 42;
};

// Black-box distribution checks through the LanguageModel interface: on a
// deterministic set of probe contexts (empty, EOS-anchored, and seeded
// random walks drawn from the model), next_log_probs must return exactly
// vocab_size() entries, no NaN and no positive log-probability (a +Inf or
// p > 1 means a broken normalizer; -Inf is legal underflow), and the
// exponentiated row must sum to 1 within tolerance.
void check_model_distributions(const model::LanguageModel& model,
                               InvariantReport& report,
                               const ModelCheckOptions& options = {},
                               const std::string& name = "model");

// White-box n-gram table audit via NgramModel::visit_context_rows: every
// stored row's total must equal the sum of its per-token counts (the row
// normalizer — a mismatch un-normalizes every distribution interpolated
// through it), counts must be nonzero, token ids must be inside the
// vocabulary, and the smoothing config (order, alpha, max_sequence_length)
// must be finite and positive. Includes check_model_distributions.
void check_ngram_model(const model::NgramModel& model, InvariantReport& report,
                       const ModelCheckOptions& options = {},
                       const std::string& name = "ngram");

// --- (c) compiled queries ----------------------------------------------------

// Compiler-output audit: the prefix and body token automata must both pass
// check_token_automaton and check_trim against the query's tokenizer, and
// the initial execution state must reference in-range states.
void check_compiled_query(const core::CompiledQuery& compiled,
                          InvariantReport& report,
                          const std::string& name = "query");

// Pipeline-artifact audit (what `relm verify --cache DIR` runs on every
// cached .relmq entry): the embedded checksum must re-verify, both token
// automata must pass check_dfa and check_trim, and the strategy flags must
// be coherent — an all-tokens artifact never needs dynamic canonical
// pruning. When `tok` is non-null and the artifact's vocabulary fingerprint
// matches it, the automata are additionally audited as token automata over
// that vocabulary (alphabet totality, no EOS edges); a fingerprint mismatch
// alone is NOT a violation (a shared cache directory can legitimately hold
// entries for several vocabularies).
void check_query_artifact(const core::pipeline::QueryArtifact& artifact,
                          const tokenizer::BpeTokenizer* tok,
                          InvariantReport& report,
                          const std::string& name = "artifact");

}  // namespace relm::analysis
