#include "analysis/verify.hpp"

#include <algorithm>
#include <filesystem>
#include <unordered_set>

#include "core/compiled_query.hpp"
#include "core/pipeline/artifact.hpp"
#include "core/query.hpp"
#include "tokenizer/serialize.hpp"
#include "util/errors.hpp"

namespace relm::analysis {

void verify_tokenizer(const tokenizer::BpeTokenizer& tok,
                      InvariantReport& report) {
  if (tok.vocab_size() == 0) {
    report.fail("tokenizer.vocab-empty", "tokenizer has an empty vocabulary");
    return;
  }
  if (tok.eos() >= tok.vocab_size()) {
    report.fail("tokenizer.eos-range",
                "EOS token " + std::to_string(tok.eos()) +
                    " outside the vocabulary of " +
                    std::to_string(tok.vocab_size()));
    return;
  }
  std::unordered_set<std::string> seen;
  for (tokenizer::TokenId t = 0; t < tok.vocab_size(); ++t) {
    const std::string& s = tok.token_string(t);
    if (s.empty() && t != tok.eos()) {
      report.fail("tokenizer.empty-token",
                  "token " + std::to_string(t) +
                      " has an empty string but is not EOS");
      continue;
    }
    if (!seen.insert(s).second) {
      report.fail("tokenizer.duplicate-token",
                  "token string of id " + std::to_string(t) +
                      " appears more than once in the vocabulary");
    }
    if (s.size() > tok.max_token_length()) {
      report.fail("tokenizer.token-length",
                  "token " + std::to_string(t) + " is " +
                      std::to_string(s.size()) +
                      " bytes, above max_token_length " +
                      std::to_string(tok.max_token_length()));
    }
    // Canonical encoding must round-trip every vocabulary string: greedy
    // longest-match is stable under re-encoding (§3.2), so decode(encode(s))
    // changing the bytes means the trie and the vocabulary disagree.
    if (!s.empty()) {
      std::vector<tokenizer::TokenId> enc = tok.encode(s);
      if (tok.decode(enc) != s) {
        report.fail("tokenizer.round-trip",
                    "token " + std::to_string(t) +
                        " does not survive encode/decode");
      }
    }
  }
}

void verify_model(const model::NgramModel& model,
                  const tokenizer::BpeTokenizer& tok, const std::string& name,
                  InvariantReport& report, const ModelCheckOptions& options) {
  if (model.vocab_size() != tok.vocab_size()) {
    report.fail("artifact.vocab-mismatch",
                name + " vocabulary (" + std::to_string(model.vocab_size()) +
                    ") does not match the tokenizer (" +
                    std::to_string(tok.vocab_size()) + ")");
  }
  if (model.eos() != tok.eos()) {
    report.fail("artifact.eos-mismatch",
                name + " EOS (" + std::to_string(model.eos()) +
                    ") does not match the tokenizer EOS (" +
                    std::to_string(tok.eos()) + ")");
  }
  check_ngram_model(model, report, options, name);
}

void verify_query_compilation(const tokenizer::BpeTokenizer& tok,
                              const std::vector<std::string>& patterns,
                              InvariantReport& report) {
  for (const std::string& pattern : patterns) {
    for (core::TokenizationStrategy strategy :
         {core::TokenizationStrategy::kCanonicalTokens,
          core::TokenizationStrategy::kAllTokens}) {
      core::SimpleSearchQuery query;
      query.query_string.query_str = pattern;
      query.tokenization_strategy = strategy;
      const char* kind =
          strategy == core::TokenizationStrategy::kAllTokens ? "all" : "canonical";
      try {
        core::CompiledQuery compiled = core::CompiledQuery::compile(query, tok);
        check_compiled_query(compiled, report,
                             "query[" + pattern + "," + kind + "]");
      } catch (const relm::Error& e) {
        // The probe patterns are fixed valid regexes; failure to compile one
        // is itself a broken invariant of the (tokenizer, compiler) pair.
        report.fail("query.compile",
                    "pattern \"" + pattern + "\" (" + kind +
                        ") failed to compile: " + e.what());
      }
    }
  }
}

InvariantReport verify_artifact_dir(const std::string& dir,
                                    const VerifyOptions& options) {
  InvariantReport report;

  tokenizer::BpeTokenizer tok =
      tokenizer::load_tokenizer_file(dir + "/tokenizer.relm");
  verify_tokenizer(tok, report);

  for (const char* name : {"sim-xl", "sim-small"}) {
    std::shared_ptr<model::NgramModel> model =
        model::NgramModel::load_file(dir + "/" + name + ".relm");
    verify_model(*model, tok, name, report, options.model);
  }

  if (options.check_queries) {
    verify_query_compilation(tok, options.probe_patterns, report);
  }
  return report;
}

std::size_t verify_compile_cache_dir(const std::string& cache_dir,
                                     const tokenizer::BpeTokenizer* tok,
                                     InvariantReport& report) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(cache_dir, ec)) {
    report.fail("cache.missing-dir",
                cache_dir + " is not a readable directory");
    return 0;
  }

  // Sort for deterministic report ordering across filesystems.
  std::vector<std::string> entries;
  for (const fs::directory_entry& entry : fs::directory_iterator(cache_dir)) {
    if (entry.path().extension() == ".relmq") {
      entries.push_back(entry.path().string());
    }
  }
  std::sort(entries.begin(), entries.end());

  for (const std::string& path : entries) {
    const std::string stem = fs::path(path).stem().string();
    core::pipeline::QueryArtifact artifact;
    try {
      artifact = core::pipeline::load_artifact_file(path);
    } catch (const relm::Error& e) {
      // The cache treats a corrupt entry as a miss and recompiles over it;
      // verify's job is to surface it anyway.
      report.fail("cache.corrupt-entry", path + ": " + e.what());
      continue;
    }
    // The filename is the lookup key: a mismatch means the entry can be
    // served for a query it was not compiled from.
    auto expected = core::pipeline::ArtifactKey::from_hex(stem);
    if (!expected) {
      report.fail("cache.entry-name",
                  path + ": filename is not a 32-hex-digit artifact key");
    } else if (!(artifact.key == *expected)) {
      report.fail("cache.key-mismatch",
                  path + ": stored key " + artifact.key.hex() +
                      " does not match the filename");
    }
    check_query_artifact(artifact, tok, report, "cache[" + stem + "]");
  }
  return entries.size();
}

}  // namespace relm::analysis
