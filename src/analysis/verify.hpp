#pragma once

#include <string>
#include <vector>

#include "analysis/invariants.hpp"
#include "model/ngram_model.hpp"
#include "tokenizer/bpe.hpp"

namespace relm::analysis {

// End-to-end structural verification of saved ReLM artifacts — the engine
// behind `relm verify --dir DIR`. Where invariants.hpp gives the individual
// checkers, this layer knows what a trained world looks like on disk
// (tokenizer.relm, sim-xl.relm, sim-small.relm; see tools/relm_cli.cpp) and
// which invariants tie the pieces together: the models must emit proper
// distributions over the tokenizer's vocabulary, and queries compiled
// against the tokenizer must produce structurally sound token automata.

struct VerifyOptions {
  ModelCheckOptions model;

  // Regexes compiled (canonical and all-encodings) against the tokenizer,
  // with the outputs audited by check_compiled_query. Defaults chosen to
  // exercise both compiler paths: a finite enumerable language and an
  // infinite one that forces the all-tokens construction.
  std::vector<std::string> probe_patterns{
      "(cat)|(dog)",
      "The ((man)|(woman)) was trained in ((art)|(science))",
      "a(b|(cd))*e",
  };
  bool check_queries = true;
};

// Cross-checks one model against the tokenizer it was trained with
// (vocabulary agreement, EOS agreement) and runs the full n-gram audit.
void verify_model(const model::NgramModel& model,
                  const tokenizer::BpeTokenizer& tok, const std::string& name,
                  InvariantReport& report, const ModelCheckOptions& options = {});

// Tokenizer self-checks: usable EOS, unique token strings, and canonical
// encode/decode round-trips on the token strings themselves.
void verify_tokenizer(const tokenizer::BpeTokenizer& tok,
                      InvariantReport& report);

// Compiles each probe pattern against the tokenizer under both tokenization
// strategies and audits the compiler output.
void verify_query_compilation(const tokenizer::BpeTokenizer& tok,
                              const std::vector<std::string>& patterns,
                              InvariantReport& report);

// Loads and verifies a `relm build` artifact directory. Violations land in
// the returned report; unreadable/unparseable files throw relm::Error (I/O
// failure is an error, not an invariant violation).
InvariantReport verify_artifact_dir(const std::string& dir,
                                    const VerifyOptions& options = {});

// Audits an on-disk compile-cache directory (`relm verify --cache DIR`, see
// src/core/pipeline/cache.hpp): every *.relmq entry must load (version,
// fields, checksum — a corrupt entry is a violation here, even though the
// cache itself tolerates it at lookup time), its stored key must match its
// filename, and the artifact must pass check_query_artifact. `tok` may be
// null; when given, entries compiled against that vocabulary get the full
// token-automaton audit. Returns the number of entries examined.
std::size_t verify_compile_cache_dir(const std::string& cache_dir,
                                     const tokenizer::BpeTokenizer* tok,
                                     InvariantReport& report);

}  // namespace relm::analysis
