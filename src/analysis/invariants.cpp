#include "analysis/invariants.hpp"

#include <cmath>
#include <deque>
#include <sstream>

#include "core/token_masks.hpp"
#include "util/rng.hpp"

namespace relm::analysis {

namespace {

using automata::Dfa;
using automata::Edge;
using automata::Nfa;
using automata::StateId;
using tokenizer::TokenId;

std::string state_str(const std::string& name, StateId s) {
  return name + " state " + std::to_string(s);
}

}  // namespace

// ---------------------------------------------------------------------------
// InvariantReport
// ---------------------------------------------------------------------------

void InvariantReport::fail(const std::string& check, const std::string& detail) {
  for (auto& [id, count] : counts_) {
    if (id != check) continue;
    ++count;
    if (count <= kMaxPerCheck) {
      violations_.push_back(Violation{check, detail});
    } else if (count == kMaxPerCheck + 1) {
      violations_.push_back(Violation{check, "... further violations suppressed"});
    }
    return;
  }
  counts_.emplace_back(check, 1);
  violations_.push_back(Violation{check, detail});
}

bool InvariantReport::has(const std::string& check) const {
  for (const auto& [id, count] : counts_) {
    if (id == check) return count > 0;
  }
  return false;
}

std::string InvariantReport::to_string() const {
  if (ok()) return "ok\n";
  std::ostringstream out;
  out << violations_.size() << " invariant violation"
      << (violations_.size() == 1 ? "" : "s") << ":\n";
  for (const Violation& v : violations_) {
    out << "  [" << v.check << "] " << v.detail << '\n';
  }
  return out.str();
}

// ---------------------------------------------------------------------------
// (a) automata
// ---------------------------------------------------------------------------

void check_dfa(const Dfa& dfa, InvariantReport& report, const std::string& name) {
  const std::size_t n = dfa.num_states();
  if (n == 0) {
    report.fail("dfa.empty", name + " has no states");
    return;
  }
  if (dfa.start() >= n) {
    report.fail("dfa.start-range",
                name + " start state " + std::to_string(dfa.start()) +
                    " out of range (num_states " + std::to_string(n) + ")");
  }
  for (StateId s = 0; s < n; ++s) {
    auto edges = dfa.edges(s);
    for (std::size_t i = 0; i < edges.size(); ++i) {
      const Edge& e = edges[i];
      if (e.to >= n) {
        report.fail("dfa.transition-range",
                    state_str(name, s) + " has a dangling transition on symbol " +
                        std::to_string(e.symbol) + " to state " +
                        std::to_string(e.to) + " (num_states " +
                        std::to_string(n) + ")");
      }
      // An out-of-alphabet symbol covers kEpsilon too: a DFA must be
      // epsilon-free, and kEpsilon == 0xffffffff can never be < num_symbols.
      if (e.symbol >= dfa.num_symbols()) {
        report.fail("dfa.symbol-range",
                    state_str(name, s) + " edge " + std::to_string(i) +
                        (e.symbol == automata::kEpsilon
                             ? " is an epsilon transition (DFAs must be epsilon-free)"
                             : " symbol " + std::to_string(e.symbol) +
                                   " outside alphabet of " +
                                   std::to_string(dfa.num_symbols())));
      }
      if (i > 0 && edges[i - 1].symbol >= e.symbol) {
        report.fail(
            "dfa.determinism",
            state_str(name, s) +
                (edges[i - 1].symbol == e.symbol
                     ? " has two transitions on symbol " + std::to_string(e.symbol) +
                           " (nondeterministic)"
                     : " edge list is not sorted by symbol (next() is a binary "
                       "search over sorted edges)"));
      }
    }
  }
}

void check_nfa(const Nfa& nfa, InvariantReport& report, const std::string& name) {
  const std::size_t n = nfa.num_states();
  if (n == 0) {
    report.fail("nfa.empty", name + " has no states");
    return;
  }
  if (nfa.start() >= n) {
    report.fail("nfa.start-range",
                name + " start state " + std::to_string(nfa.start()) +
                    " out of range (num_states " + std::to_string(n) + ")");
  }
  for (StateId s = 0; s < n; ++s) {
    for (const Edge& e : nfa.edges(s)) {
      if (e.to >= n) {
        report.fail("nfa.transition-range",
                    state_str(name, s) + " has a dangling transition to state " +
                        std::to_string(e.to));
      }
      if (e.symbol != automata::kEpsilon && e.symbol >= nfa.num_symbols()) {
        report.fail("nfa.symbol-range",
                    state_str(name, s) + " symbol " + std::to_string(e.symbol) +
                        " outside alphabet of " +
                        std::to_string(nfa.num_symbols()));
      }
    }
  }
}

void check_epsilon_free(const Nfa& nfa, InvariantReport& report,
                        const std::string& name) {
  for (StateId s = 0; s < nfa.num_states(); ++s) {
    for (const Edge& e : nfa.edges(s)) {
      if (e.symbol == automata::kEpsilon) {
        report.fail("nfa.epsilon-free",
                    state_str(name, s) + " still has an epsilon transition to " +
                        std::to_string(e.to));
      }
    }
  }
}

void check_trim(const Dfa& dfa, InvariantReport& report, const std::string& name) {
  const std::size_t n = dfa.num_states();
  if (n == 0 || dfa.start() >= n) return;  // check_dfa reports these

  bool any_final = false;
  for (StateId s = 0; s < n; ++s) any_final = any_final || dfa.is_final(s);
  if (!any_final) {
    // The canonical empty-language machine: one bare non-final start state.
    if (n != 1 || !dfa.edges(0).empty()) {
      report.fail("dfa.accept-reachability",
                  name + " has no accepting state but is not the canonical "
                         "single-state empty machine");
    }
    return;
  }

  // Forward reachability from the start state.
  std::vector<bool> reachable(n, false);
  std::deque<StateId> work{dfa.start()};
  reachable[dfa.start()] = true;
  while (!work.empty()) {
    StateId s = work.front();
    work.pop_front();
    for (const Edge& e : dfa.edges(s)) {
      if (e.to < n && !reachable[e.to]) {
        reachable[e.to] = true;
        work.push_back(e.to);
      }
    }
  }

  // Backward reachability from accepting states.
  std::vector<std::vector<StateId>> reverse(n);
  for (StateId s = 0; s < n; ++s) {
    for (const Edge& e : dfa.edges(s)) {
      if (e.to < n) reverse[e.to].push_back(s);
    }
  }
  std::vector<bool> productive(n, false);
  for (StateId s = 0; s < n; ++s) {
    if (dfa.is_final(s)) {
      productive[s] = true;
      work.push_back(s);
    }
  }
  while (!work.empty()) {
    StateId s = work.front();
    work.pop_front();
    for (StateId p : reverse[s]) {
      if (!productive[p]) {
        productive[p] = true;
        work.push_back(p);
      }
    }
  }

  bool accept_reachable = false;
  for (StateId s = 0; s < n; ++s) {
    if (dfa.is_final(s) && reachable[s]) accept_reachable = true;
    if (!reachable[s]) {
      report.fail("dfa.reachability",
                  state_str(name, s) +
                      (dfa.is_final(s) ? " (accepting)" : "") +
                      " is unreachable from the start state");
    } else if (!productive[s]) {
      report.fail("dfa.coreachability",
                  state_str(name, s) +
                      " cannot reach an accepting state (dead state)");
    }
  }
  if (!accept_reachable) {
    report.fail("dfa.accept-reachability",
                name + " has accepting states but none is reachable from the "
                       "start state");
  }
}

void check_token_automaton(const Dfa& dfa, const tokenizer::BpeTokenizer& tok,
                           InvariantReport& report, const std::string& name) {
  check_dfa(dfa, report, name);
  if (dfa.num_symbols() != tok.vocab_size()) {
    report.fail("token.alphabet",
                name + " alphabet size " + std::to_string(dfa.num_symbols()) +
                    " does not equal the tokenizer vocabulary (" +
                    std::to_string(tok.vocab_size()) + ")");
  }
  for (StateId s = 0; s < dfa.num_states(); ++s) {
    for (const Edge& e : dfa.edges(s)) {
      if (e.symbol == tok.eos()) {
        report.fail("token.eos-edge",
                    state_str(name, s) + " consumes EOS (token " +
                        std::to_string(tok.eos()) +
                        ") as a transition; EOS is the reserved stop symbol");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// (b) models
// ---------------------------------------------------------------------------

namespace {

// Checks one distribution row; returns the row so walks can continue on it,
// or an empty vector when the row is unusable.
std::vector<double> check_row(const model::LanguageModel& model,
                              std::span<const TokenId> context,
                              InvariantReport& report, double tolerance,
                              const std::string& name) {
  std::vector<double> lp = model.next_log_probs(context);
  std::string where = name + " context of length " + std::to_string(context.size());
  if (lp.size() != model.vocab_size()) {
    report.fail("model.distribution-size",
                where + ": next_log_probs returned " + std::to_string(lp.size()) +
                    " entries for a vocabulary of " +
                    std::to_string(model.vocab_size()));
    return {};
  }
  double sum = 0.0;
  for (std::size_t t = 0; t < lp.size(); ++t) {
    if (std::isnan(lp[t])) {
      report.fail("model.nan-logit",
                  where + ": log p(token " + std::to_string(t) + ") is NaN");
      return {};
    }
    // -Inf is legal underflow (p == 0); anything meaningfully positive means
    // p > 1, a broken normalizer.
    if (lp[t] > tolerance) {
      report.fail("model.positive-logit",
                  where + ": log p(token " + std::to_string(t) + ") = " +
                      std::to_string(lp[t]) + " > 0 (probability above 1)");
    }
    sum += std::exp(lp[t]);
  }
  if (std::abs(sum - 1.0) > tolerance) {
    report.fail("model.row-sum",
                where + ": probabilities sum to " + std::to_string(sum) +
                    ", expected 1 +/- " + std::to_string(tolerance));
  }
  return lp;
}

}  // namespace

void check_model_distributions(const model::LanguageModel& model,
                               InvariantReport& report,
                               const ModelCheckOptions& options,
                               const std::string& name) {
  if (model.vocab_size() == 0) {
    report.fail("model.vocab-empty", name + " has an empty vocabulary");
    return;
  }
  if (model.eos() >= model.vocab_size()) {
    report.fail("model.eos-range",
                name + " EOS token " + std::to_string(model.eos()) +
                    " outside the vocabulary of " +
                    std::to_string(model.vocab_size()));
    return;
  }

  util::Pcg32 rng(options.seed);
  std::size_t evaluated = 0;
  auto probe = [&](std::span<const TokenId> ctx) {
    ++evaluated;
    return check_row(model, ctx, report, options.tolerance, name);
  };

  // Fixed probes: the unconditional row and the post-EOS (document start) row.
  probe({});
  std::vector<TokenId> ctx{model.eos()};
  probe(ctx);

  // Random-walk probes through the model itself, so stored statistics (not
  // just backoff paths) are exercised; every step's row is checked.
  while (evaluated < options.probe_contexts) {
    ctx.clear();
    for (std::size_t depth = 0; depth < options.probe_depth; ++depth) {
      if (evaluated >= options.probe_contexts) break;
      std::vector<double> lp = probe(ctx);
      if (lp.empty()) return;  // row was unusable; report already has it
      TokenId next;
      if (rng.uniform() < 0.5) {
        // Uniform token: exercises unseen contexts and the backoff path.
        next = static_cast<TokenId>(
            rng.bounded(static_cast<std::uint32_t>(model.vocab_size())));
      } else {
        std::vector<double> weights(lp.size());
        for (std::size_t t = 0; t < lp.size(); ++t) weights[t] = std::exp(lp[t]);
        std::size_t pick = rng.weighted(weights);
        if (pick >= weights.size()) break;
        next = static_cast<TokenId>(pick);
      }
      if (next == model.eos()) break;
      ctx.push_back(next);
    }
  }
}

void check_ngram_model(const model::NgramModel& model, InvariantReport& report,
                       const ModelCheckOptions& options, const std::string& name) {
  const model::NgramModel::Config& config = model.config();
  if (config.order < 1) {
    report.fail("ngram.config", name + " order must be >= 1, got " +
                                    std::to_string(config.order));
  }
  if (!std::isfinite(config.alpha) || config.alpha <= 0.0) {
    report.fail("ngram.config",
                name + " interpolation weight alpha must be finite and > 0, got " +
                    std::to_string(config.alpha));
  }
  if (config.max_sequence_length == 0) {
    report.fail("ngram.config", name + " max_sequence_length must be > 0");
  }

  bool tokens_in_range = true;
  model.visit_context_rows([&](const model::NgramModel::ContextRowView& row) {
    std::string where = name + " order-" + std::to_string(row.order_k) +
                        " row " + std::to_string(row.key);
    if (row.counts->empty() || row.total == 0) {
      report.fail("ngram.row-empty",
                  where + " is stored but has no continuations");
      return;
    }
    std::uint64_t sum = 0;
    for (const auto& [token, count] : *row.counts) {
      if (token >= model.vocab_size()) {
        tokens_in_range = false;
        report.fail("ngram.token-range",
                    where + " counts token " + std::to_string(token) +
                        " outside the vocabulary of " +
                        std::to_string(model.vocab_size()));
      }
      if (count == 0) {
        report.fail("ngram.zero-count",
                    where + " stores a zero count for token " +
                        std::to_string(token));
      }
      sum += count;
    }
    // The row total is the normalizer of p(token | context): a mismatch
    // silently un-normalizes every distribution interpolated through the row.
    if (sum != row.total) {
      report.fail("ngram.row-total",
                  where + " total " + std::to_string(row.total) +
                      " does not equal the sum of its counts (" +
                      std::to_string(sum) + ")");
    }
  });

  // Evaluating a table that references out-of-vocabulary tokens is undefined:
  // next_log_probs scatters counts by token id into a vocab_size_-long buffer.
  // The structural violation is already reported; don't compound it.
  if (tokens_in_range) {
    check_model_distributions(model, report, options, name);
  }
}

// ---------------------------------------------------------------------------
// (c) compiled queries
// ---------------------------------------------------------------------------

void check_compiled_query(const core::CompiledQuery& compiled,
                          InvariantReport& report, const std::string& name) {
  const tokenizer::BpeTokenizer& tok = compiled.tokenizer();
  check_token_automaton(compiled.prefix_automaton(), tok, report,
                        name + ".prefix");
  check_token_automaton(compiled.body_automaton(), tok, report, name + ".body");
  // Compiler outputs are trimmed (all-tokens path) or minimized (canonical
  // enumeration path); junk states in either machine are compiler bugs.
  check_trim(compiled.prefix_automaton(), report, name + ".prefix");
  check_trim(compiled.body_automaton(), report, name + ".body");

  core::CompiledQuery::StateSet initial = compiled.initial();
  if (initial.prefix_state == automata::kNoState &&
      initial.body_state == automata::kNoState) {
    report.fail("query.initial",
                name + " initial state has neither machine live");
  }
  if (initial.prefix_state != automata::kNoState &&
      initial.prefix_state >= compiled.prefix_automaton().num_states()) {
    report.fail("query.initial", name + " initial prefix state out of range");
  }
  if (initial.body_state != automata::kNoState &&
      initial.body_state >= compiled.body_automaton().num_states()) {
    report.fail("query.initial", name + " initial body state out of range");
  }
}

void check_query_artifact(const core::pipeline::QueryArtifact& artifact,
                          const tokenizer::BpeTokenizer* tok,
                          InvariantReport& report, const std::string& name) {
  // File-level checksum validation happens in load_artifact; here the
  // artifact is already in memory, so the audit is structural.
  check_dfa(artifact.prefix.dfa, report, name + ".prefix");
  check_dfa(artifact.body.dfa, report, name + ".body");
  check_trim(artifact.prefix.dfa, report, name + ".prefix");
  check_trim(artifact.body.dfa, report, name + ".body");

  if (artifact.prefix.dfa.num_symbols() != artifact.body.dfa.num_symbols()) {
    report.fail("artifact.alphabet",
                name + " prefix alphabet (" +
                    std::to_string(artifact.prefix.dfa.num_symbols()) +
                    ") does not match body alphabet (" +
                    std::to_string(artifact.body.dfa.num_symbols()) + ")");
  }
  // All-tokens automata admit every encoding by construction; a set
  // dynamic-canonical flag under that strategy marks a buggy writer (and
  // would make the executor prune encodings the query asked for).
  if (artifact.strategy == core::TokenizationStrategy::kAllTokens &&
      (artifact.prefix.dynamic_canonical || artifact.body.dynamic_canonical)) {
    report.fail("artifact.strategy-flags",
                name + " uses the all-tokens strategy but has a "
                       "dynamic-canonical flag set");
  }

  // Persisted token-mask tables must equal the edge sets recomputed from
  // their automata — a mask that disagrees would silently steer the
  // executor fast path off the automaton. Empty tables are legal (the
  // compile-time memory budget skipped the pass); a half-present pair is
  // not, because the executors treat masks as all-or-nothing per artifact.
  if (artifact.prefix.masks.empty() != artifact.body.masks.empty()) {
    report.fail("artifact.token-masks",
                name + " has a mask table for only one automaton "
                       "(executors require both or neither)");
  }
  if (!artifact.prefix.masks.empty()) {
    if (auto mismatch =
            core::masks_mismatch(artifact.prefix.dfa, artifact.prefix.masks)) {
      report.fail("artifact.token-masks",
                  name + ".prefix masks disagree with the automaton: " +
                      *mismatch);
    }
  }
  if (!artifact.body.masks.empty()) {
    if (auto mismatch =
            core::masks_mismatch(artifact.body.dfa, artifact.body.masks)) {
      report.fail("artifact.token-masks",
                  name + ".body masks disagree with the automaton: " + *mismatch);
    }
  }

  if (tok != nullptr &&
      artifact.vocab_fingerprint == core::pipeline::vocab_fingerprint(*tok)) {
    check_token_automaton(artifact.prefix.dfa, *tok, report, name + ".prefix");
    check_token_automaton(artifact.body.dfa, *tok, report, name + ".body");
  }
}

}  // namespace relm::analysis
